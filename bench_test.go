package vaq

// Benchmark harness: one testing.B benchmark per paper table/figure (each
// iteration regenerates the experiment at a reduced scale and discards the
// textual output), plus micro-benchmarks for the hot paths (encoding, the
// three scan modes, lookup-table construction).
//
// Regenerate a figure's actual rows with cmd/vaqbench, e.g.:
//
//	go run ./cmd/vaqbench -exp fig7
//
// Run the benches with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"vaq/internal/core"
	"vaq/internal/dataset"
	"vaq/internal/experiments"
	"vaq/internal/history"
	"vaq/internal/workload"
)

// benchScale keeps every figure bench to seconds per iteration.
var benchScale = experiments.Scale{N: 1500, NQ: 8, GalleryCount: 8, GalleryTrain: 250, Seed: 7}

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1QuantizationComparison(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFig3VarianceSpectra(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkFig4SubspaceOmission(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig6AccuracyRuntime(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7PruningAblation(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkFig8HardwareAccelerated(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig9SubspaceBitAblation(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkTab1SpecMatrix(b *testing.B)             { benchExperiment(b, "tab1") }
func BenchmarkTab2GalleryAverages(b *testing.B)        { benchExperiment(b, "tab2") }
func BenchmarkFig10StatisticalRanking(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig11TreeIndexComparison(b *testing.B)   { benchExperiment(b, "fig11") }
func BenchmarkFig12HNSWComparison(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkAblationAllocStrategies(b *testing.B)    { benchExperiment(b, "ablation-alloc") }
func BenchmarkAblationTIVisitFraction(b *testing.B)    { benchExperiment(b, "ablation-ti") }
func BenchmarkScaleSweep(b *testing.B)                 { benchExperiment(b, "scale") }
func BenchmarkExtraBaselines(b *testing.B)             { benchExperiment(b, "extra-baselines") }

// --- micro-benchmarks -----------------------------------------------------

func benchIndex(b *testing.B, n, d, segs, budget int) (*core.Index, *dataset.Dataset) {
	b.Helper()
	ds, err := dataset.Large("SALD", n, 16, 7)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := core.Build(ds.Train, ds.Base, core.Config{
		NumSubspaces: segs, Budget: budget, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ix, ds
}

// BenchmarkBuild measures full index construction (PCA + allocation +
// dictionary training + encoding + TI clustering).
func BenchmarkBuild(b *testing.B) {
	ds, err := dataset.Large("SALD", 4000, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(ds.Train, ds.Base, core.Config{
			NumSubspaces: 16, Budget: 128, Seed: 7,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// The three scan modes on the same index: the Figure 7 cascade as a
// micro-benchmark.
func benchSearchMode(b *testing.B, mode core.SearchMode, frac float64) {
	ix, ds := benchIndex(b, 20000, 128, 32, 256)
	s := ix.NewSearcher()
	queries := ds.Queries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries.Row(i % queries.Rows)
		if _, err := s.Search(q, 100, core.SearchOptions{Mode: mode, VisitFrac: frac}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchHeap(b *testing.B)   { benchSearchMode(b, core.ModeHeap, 0) }
func BenchmarkSearchEA(b *testing.B)     { benchSearchMode(b, core.ModeEA, 0) }
func BenchmarkSearchTIEA25(b *testing.B) { benchSearchMode(b, core.ModeTIEA, 0.25) }
func BenchmarkSearchTIEA10(b *testing.B) { benchSearchMode(b, core.ModeTIEA, 0.10) }

// --- scan-layout A/B pairs ------------------------------------------------
//
// Same index content, same queries, same mode — only the physical layout
// the kernels scan differs. Compare pairs with:
//
//	GOMAXPROCS=1 go test -bench='ScanLayout' -count=10 | benchstat
//
// Both members of a pair return byte-identical results (enforced by
// TestScanLayoutEquivalence in internal/core), so any delta is pure
// memory-layout effect.

type scanBenchKey struct {
	layout   core.ScanLayout
	accuracy core.AccuracyMode
}

var scanLayoutBenchCache = map[scanBenchKey]*core.Index{}
var scanLayoutBenchData *dataset.Dataset

func scanLayoutBenchIndex(b *testing.B, layout core.ScanLayout, accuracy core.AccuracyMode) (*core.Index, *dataset.Dataset) {
	b.Helper()
	// 100k codes x 32 subspaces spill any private cache level: the pair
	// then measures layout (miss-rate) effects, not just instruction mix.
	if scanLayoutBenchData == nil {
		ds, err := dataset.Large("SALD", 100000, 16, 7)
		if err != nil {
			b.Fatal(err)
		}
		scanLayoutBenchData = ds
	}
	ds := scanLayoutBenchData
	key := scanBenchKey{layout, accuracy}
	if ix, ok := scanLayoutBenchCache[key]; ok {
		return ix, ds
	}
	// Train on a sample: the pair compares scan throughput, and a smaller
	// training set keeps the one-time build out of the measured budget.
	ix, err := core.Build(ds.Train.SliceRows(0, 4000), ds.Base, core.Config{
		NumSubspaces: 32, Budget: 256, Seed: 7,
		ScanLayout: layout, AccuracyMode: accuracy,
	})
	if err != nil {
		b.Fatal(err)
	}
	scanLayoutBenchCache[key] = ix
	return ix, ds
}

func benchScanLayout(b *testing.B, layout core.ScanLayout, accuracy core.AccuracyMode, mode core.SearchMode, frac float64) {
	ix, ds := scanLayoutBenchIndex(b, layout, accuracy)
	s := ix.NewSearcher()
	// Pre-project the queries: rotation cost is identical under either
	// layout, so the pair isolates LUT construction + scan.
	projected := make([][]float32, ds.Queries.Rows)
	for i := range projected {
		qz, err := ix.ProjectQuery(ds.Queries.Row(i))
		if err != nil {
			b.Fatal(err)
		}
		projected[i] = qz
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qz := projected[i%len(projected)]
		if _, err := s.SearchProjected(qz, 100, core.SearchOptions{Mode: mode, VisitFrac: frac}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanLayoutTIEABlocked(b *testing.B) {
	benchScanLayout(b, core.LayoutBlocked, core.AccuracyExact, core.ModeTIEA, 0.25)
}
func BenchmarkScanLayoutTIEARowMajor(b *testing.B) {
	benchScanLayout(b, core.LayoutRowMajor, core.AccuracyExact, core.ModeTIEA, 0.25)
}
func BenchmarkScanLayoutHeapBlocked(b *testing.B) {
	benchScanLayout(b, core.LayoutBlocked, core.AccuracyExact, core.ModeHeap, 0)
}
func BenchmarkScanLayoutHeapRowMajor(b *testing.B) {
	benchScanLayout(b, core.LayoutRowMajor, core.AccuracyExact, core.ModeHeap, 0)
}

// The Fast pair runs the integer kernel (uint8 LUTs, packed 4-bit codes
// where dictionaries allow) on the same blocked index content. Unlike
// the layout pairs these are NOT bit-identical to their exact twins —
// TestFastKernelRecallAgainstExact bounds the answer drift — so compare
// throughput only against ScanLayoutTIEABlocked/HeapBlocked.
func BenchmarkScanLayoutTIEAFast(b *testing.B) {
	benchScanLayout(b, core.LayoutBlocked, core.AccuracyFast, core.ModeTIEA, 0.25)
}
func BenchmarkScanLayoutHeapFast(b *testing.B) {
	benchScanLayout(b, core.LayoutBlocked, core.AccuracyFast, core.ModeHeap, 0)
}

// BenchmarkSearchMetricsOn/Off isolate the hot-path cost of the
// index-wide telemetry registry (two time.Now calls plus a handful of
// atomic adds per query). Compare with:
//
//	go test -bench='SearchMetrics(On|Off)' -count=10 | benchstat
//
// The delta is the observability tax; the acceptance bar is <2%.
func benchMetricsToggle(b *testing.B, disable bool) {
	// Kept small enough that -count=10 runs rebuild the index in seconds:
	// the measurement is a relative delta, not an absolute throughput.
	ds, err := dataset.Large("SALD", 8000, 64, 7)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := core.Build(ds.Train, ds.Base, core.Config{
		NumSubspaces: 16, Budget: 128, Seed: 7, DisableMetrics: disable,
	})
	if err != nil {
		b.Fatal(err)
	}
	s := ix.NewSearcher()
	queries := ds.Queries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries.Row(i % queries.Rows)
		if _, err := s.Search(q, 100, core.SearchOptions{Mode: core.ModeTIEA, VisitFrac: 0.25}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchMetricsOn(b *testing.B)  { benchMetricsToggle(b, false) }
func BenchmarkSearchMetricsOff(b *testing.B) { benchMetricsToggle(b, true) }

// BenchmarkSearchCaptureOn measures the workload-capture tax at the
// production sampling rate (1/64): one atomic increment per query plus a
// record copy on sampled ones. Compare against BenchmarkSearchMetricsOn
// (same workload, capture off); the acceptance bar is <5% overhead.
func BenchmarkSearchCaptureOn(b *testing.B) {
	ds, err := dataset.Large("SALD", 8000, 64, 7)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := core.Build(ds.Train, ds.Base, core.Config{
		NumSubspaces: 16, Budget: 128, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	ix.EnableCapture(workload.Config{SampleRate: 1.0 / 64})
	s := ix.NewSearcher()
	queries := ds.Queries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries.Row(i % queries.Rows)
		if _, err := s.Search(q, 100, core.SearchOptions{Mode: core.ModeTIEA, VisitFrac: 0.25}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchHistoryOn/Off isolate the query-path cost of an armed
// metrics history collector. The sampler runs on its own goroutine and
// reads the same atomics the Prometheus scraper does, so the query path
// itself gains nothing — the On arm must stay within noise of Off; the
// acceptance bar is the same <5% used for the flight recorder.
func benchHistoryToggle(b *testing.B, armed bool) {
	ds, err := dataset.Large("SALD", 8000, 64, 7)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := core.Build(ds.Train, ds.Base, core.Config{
		NumSubspaces: 16, Budget: 128, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	if armed {
		// An aggressive 10ms cadence (100x the production default) so the
		// measured overhead bounds any real deployment.
		if _, err := ix.EnableHistory("bench_index", history.Config{Interval: 10 * time.Millisecond}); err != nil {
			b.Fatal(err)
		}
		defer ix.DisableHistory()
	}
	s := ix.NewSearcher()
	queries := ds.Queries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries.Row(i % queries.Rows)
		if _, err := s.Search(q, 100, core.SearchOptions{Mode: core.ModeTIEA, VisitFrac: 0.25}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchHistoryOn(b *testing.B)  { benchHistoryToggle(b, true) }
func BenchmarkSearchHistoryOff(b *testing.B) { benchHistoryToggle(b, false) }

// BenchmarkEncodeLargeDict exercises the hierarchical k-means path for
// dictionaries above 2^10 entries (DESIGN.md §5).
func BenchmarkEncodeLargeDict(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	data := dataset.RandomWalk(rng, 6000, 64, 0.7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(data, data, core.Config{
			NumSubspaces: 4, Budget: 44, MinBits: 8, MaxBits: 12, Seed: 7,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPISearch measures the user-facing Search path including
// result conversion.
func BenchmarkPublicAPISearch(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	raw := dataset.RandomWalk(rng, 10000, 64, 0.6)
	rows := make([][]float32, raw.Rows)
	for i := range rows {
		rows[i] = raw.Row(i)
	}
	ix, err := Build(rows, Config{NumSubspaces: 16, Budget: 128, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	q := rows[123]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocationMILP isolates the bit-allocation solver.
func BenchmarkAllocationMILP(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	data := dataset.RandomWalk(rng, 2000, 128, 0.7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(data.SliceRows(0, 500), data.SliceRows(0, 500), core.Config{
			NumSubspaces: 32, Budget: 256, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleBuild() {
	data := [][]float32{
		{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1},
		{1, 1, 0, 0}, {0, 1, 1, 0}, {0, 0, 1, 1}, {1, 0, 0, 1},
	}
	ix, err := Build(data, Config{NumSubspaces: 2, Budget: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	res, err := ix.Search([]float32{1, 0, 0, 0}, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res))
	// Output: 1
}
