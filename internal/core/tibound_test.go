package core

import (
	"math"
	"math/rand"
	"testing"

	"vaq/internal/vec"
)

// The heart of data skipping (§III-E): for every encoded vector, the
// triangle bound |d(q, centroid) - d(code, centroid)| computed in the
// prefix space must never exceed the true ADC distance between the query
// and that code. If this invariant held only approximately, pruning would
// silently drop true neighbors.
func TestTriangleBoundIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	x := skewedData(rng, 800, 24, 1.2)
	for _, prefix := range []int{0, 2, 4} { // 0 = all subspaces
		ix, err := Build(x, x, Config{
			NumSubspaces: 6, Budget: 36, Seed: 81, TIClusters: 25,
			TIPrefixSubspaces: prefix,
		})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			q := append([]float32(nil), x.Row(rng.Intn(x.Rows))...)
			for j := range q {
				q[j] += float32(rng.NormFloat64() * 0.1)
			}
			qz, err := ix.ProjectQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			lut := ix.cb.BuildLUT(qz)
			clustD := ix.ti.queryClusterDistancesSq(qz, nil)
			for c, members := range ix.ti.clusters {
				dq := math.Sqrt(float64(clustD[c]))
				for _, e := range members {
					bound := math.Abs(dq - float64(e.dist))
					adc := float64(lut.Distance(ix.codes.Row(e.id)))
					if bound*bound > adc*(1+1e-4)+1e-4 {
						t.Fatalf("prefix=%d cluster=%d id=%d: bound² %v exceeds ADC %v",
							prefix, c, e.id, bound*bound, adc)
					}
				}
			}
		}
	}
}

// Cached member distances must equal the prefix distance between the
// decoded code and its centroid (they are what the bound relies on).
func TestCachedDistancesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	x := skewedData(rng, 400, 16, 1.0)
	ix, err := Build(x, x, Config{NumSubspaces: 4, Budget: 24, Seed: 82, TIClusters: 12})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float32, ix.ti.prefixDim)
	for c, members := range ix.ti.clusters {
		for _, e := range members {
			decodePrefix(ix.cb, ix.codes.Row(e.id), ix.ti.prefixSubspaces, buf)
			want := math.Sqrt(float64(vec.SquaredL2(buf, ix.ti.centroids.Row(c))))
			if math.Abs(want-float64(e.dist)) > 1e-4*(1+want) {
				t.Fatalf("cluster %d id %d: cached %v, actual %v", c, e.id, e.dist, want)
			}
		}
	}
}
