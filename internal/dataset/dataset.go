// Package dataset provides the synthetic workloads that stand in for the
// paper's benchmark data (see DESIGN.md "Substitutions"). Each generator is
// seeded and deterministic; the generators are chosen to reproduce the
// property that drives the paper's results — the skew of the PCA variance
// spectrum — at laptop scale:
//
//   - SyntheticSIFT: clustered, non-negative gradient-histogram-like
//     vectors with a moderate spectrum decay (stands in for SIFT1B).
//   - SyntheticDEEP: L2-normalized Gaussian-mixture embeddings
//     (stands in for DEEP1B).
//   - RandomWalk: z-normalized random-walk series whose smoothness knob
//     moves the spectrum from very skewed (SALD-like) to flatter
//     (SEISMIC-like); used for SEISMIC/SALD/ASTRO.
//   - CBF: the classic cylinder-bell-funnel generator (high noise,
//     spread spectrum — paper Figure 3 left).
//   - SLCLike: smooth periodic curves with low noise and a very skewed
//     spectrum (paper Figure 3 right, StarLightCurves).
//   - UCRGallery: 128 seeded datasets drawn from 8 generator families with
//     varying size and dimensionality (stands in for the UCR archive).
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"vaq/internal/vec"
)

// Dataset bundles a database, its training sample and a query workload.
type Dataset struct {
	Name string
	// Base is the database to encode and search.
	Base *vec.Matrix
	// Train is the learning sample (often Base itself).
	Train *vec.Matrix
	// Queries is the query workload.
	Queries *vec.Matrix
}

// Dim returns the dataset dimensionality.
func (d *Dataset) Dim() int { return d.Base.Cols }

// Spec identifies one of the five large-scale benchmark stand-ins.
type Spec struct {
	Name string
	Dim  int
}

// LargeSpecs mirrors the paper's five large-scale datasets (dimensions as
// reported in §IV "Datasets").
var LargeSpecs = []Spec{
	{Name: "SIFT", Dim: 128},
	{Name: "SEISMIC", Dim: 256},
	{Name: "SALD", Dim: 128},
	{Name: "DEEP", Dim: 96},
	{Name: "ASTRO", Dim: 256},
}

// Large generates the named large-scale stand-in with n base vectors and
// nq queries.
func Large(name string, n, nq int, seed int64) (*Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	var base *vec.Matrix
	switch name {
	case "SIFT":
		base = SyntheticSIFT(rng, n, 128)
	case "DEEP":
		base = SyntheticDEEP(rng, n, 96)
	case "SEISMIC":
		base = RandomWalk(rng, n, 256, 0.3)
	case "SALD":
		base = RandomWalk(rng, n, 128, 0.75)
	case "ASTRO":
		base = RandomWalk(rng, n, 256, 0.65)
	default:
		return nil, fmt.Errorf("dataset: unknown large dataset %q", name)
	}
	queries := NoisyQueries(rng, base, nq, 0.02, 0.3)
	return &Dataset{Name: name, Base: base, Train: base, Queries: queries}, nil
}

// SyntheticSIFT produces clustered, quantized, non-negative vectors that
// mimic SIFT descriptors: each vector is a cluster center plus noise,
// clipped to [0, 255] and lightly sparsified.
func SyntheticSIFT(rng *rand.Rand, n, d int) *vec.Matrix {
	const (
		clusters = 256
		rank     = 12 // latent gradient-pattern factors; real SIFT bins
		// are strongly correlated, giving a skewed PCA spectrum
	)
	// Non-negative factor dictionary: each factor is a sparse bundle of
	// co-activated bins (an edge orientation lighting several histogram
	// cells at once).
	factors := vec.NewMatrix(rank, d)
	for f := 0; f < rank; f++ {
		r := factors.Row(f)
		for j := 0; j < d; j++ {
			if rng.Float64() < 0.3 {
				r[j] = float32(rng.Float64())
			}
		}
	}
	centers := vec.NewMatrix(clusters, d)
	for i := 0; i < clusters; i++ {
		r := centers.Row(i)
		for f := 0; f < rank; f++ {
			// 1/f loading decay concentrates variance in few factors.
			w := float32(math.Abs(rng.NormFloat64()) * 160 / float64(f+1))
			fr := factors.Row(f)
			for j := 0; j < d; j++ {
				r[j] += w * fr[j]
			}
		}
	}
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		c := centers.Row(rng.Intn(clusters))
		r := x.Row(i)
		for j := 0; j < d; j++ {
			v := float64(c[j]) + rng.NormFloat64()*12
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			r[j] = float32(math.Floor(v))
		}
	}
	return x
}

// SyntheticDEEP produces unit-norm embeddings from a Gaussian mixture with
// anisotropic within-cluster covariance, mimicking CNN descriptor geometry.
func SyntheticDEEP(rng *rand.Rand, n, d int) *vec.Matrix {
	const clusters = 128
	centers := vec.NewMatrix(clusters, d)
	for i := range centers.Data {
		centers.Data[i] = float32(rng.NormFloat64())
	}
	// Per-dimension decay so the spectrum is skewed but not extreme.
	scales := make([]float64, d)
	for j := range scales {
		scales[j] = 1 / math.Sqrt(float64(j+1))
	}
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		c := centers.Row(rng.Intn(clusters))
		r := x.Row(i)
		for j := 0; j < d; j++ {
			r[j] = c[j]*float32(scales[j])*2 + float32(rng.NormFloat64()*0.4*scales[j])
		}
		vec.Normalize(r)
	}
	return x
}

// RandomWalk produces z-normalized series following the structure the
// paper's Figure 3 discussion attributes to natural series: an informative
// smooth component (a 1/f mixture of sinusoids whose low frequencies
// dominate, packing variance into the first PCs) plus flat, noisy,
// non-informative content (per-point noise and a weak drift).
// smoothness in [0,1] controls the mix — 1 is very smooth (SALD-like),
// 0 is noise-dominated (SEISMIC-like, flat spectrum).
func RandomWalk(rng *rand.Rand, n, d int, smoothness float64) *vec.Matrix {
	const harmonics = 8
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		// Smooth informative component: 1/f sinusoid mixture.
		amps := make([]float64, harmonics)
		phases := make([]float64, harmonics)
		for h := range amps {
			amps[h] = rng.NormFloat64() / float64(h+1)
			phases[h] = rng.Float64() * 2 * math.Pi
		}
		// Weak drift so the spectrum decays gradually rather than being
		// exactly low-rank.
		var drift float64
		for j := 0; j < d; j++ {
			tt := float64(j) / float64(d)
			var smooth float64
			for h := 0; h < harmonics; h++ {
				smooth += amps[h] * math.Sin(2*math.Pi*float64(h+1)*tt+phases[h])
			}
			drift += rng.NormFloat64()
			noise := rng.NormFloat64() + 0.2*drift/math.Sqrt(float64(d))
			r[j] = float32(smoothness*smooth + (1-smoothness)*noise)
		}
		vec.ZNormalize(r)
	}
	return x
}

// CBF generates the classic cylinder-bell-funnel dataset: three shape
// classes plus heavy noise (paper Figure 3a).
func CBF(rng *rand.Rand, n, d int) *vec.Matrix {
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		cbfSeries(x.Row(i), rng.Intn(3), rng)
	}
	return x
}

// cbfSeries fills out with one cylinder/bell/funnel series.
func cbfSeries(out []float32, class int, rng *rand.Rand) {
	d := len(out)
	a := d/8 + rng.Intn(d/4+1)     // onset
	b := a + d/8 + rng.Intn(d/3+1) // offset
	if b >= d {
		b = d - 1
	}
	amp := 6 + rng.NormFloat64()
	for j := range out {
		out[j] = float32(rng.NormFloat64()) // noise everywhere
	}
	for j := a; j <= b; j++ {
		var shape float64
		switch class {
		case 0: // cylinder
			shape = 1
		case 1: // bell: ramp up
			shape = float64(j-a) / float64(b-a+1)
		default: // funnel: ramp down
			shape = float64(b-j) / float64(b-a+1)
		}
		out[j] += float32(amp * shape)
	}
	vec.ZNormalize(out)
}

// SLCLike generates smooth periodic light-curve-like series: low noise and
// a very skewed variance spectrum (paper Figure 3b).
func SLCLike(rng *rand.Rand, n, d int) *vec.Matrix {
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		class := rng.Intn(3)
		// Light curves are phase-folded, so shapes are aligned: only a
		// small phase jitter, with amplitude and asymmetry varying.
		phase := rng.NormFloat64() * 0.1
		amp := 1 + rng.Float64()*0.5
		skew := 0.3 + 0.4*float64(class) + rng.NormFloat64()*0.05
		for j := 0; j < d; j++ {
			tt := float64(j) / float64(d)
			v := amp * math.Sin(2*math.Pi*tt+phase)
			v += skew * math.Sin(4*math.Pi*tt+2*phase) // asymmetry
			v += rng.NormFloat64() * 0.03              // low noise
			r[j] = float32(v)
		}
		vec.ZNormalize(r)
	}
	return x
}

// NoisyQueries draws nq base vectors and perturbs them with progressively
// larger Gaussian noise, from minNoise to maxNoise relative to the data's
// per-dimension scale — mirroring how the paper's SEISMIC/SALD/ASTRO
// queries were generated ("progressively adding larger amounts of noise").
func NoisyQueries(rng *rand.Rand, base *vec.Matrix, nq int, minNoise, maxNoise float64) *vec.Matrix {
	q := vec.NewMatrix(nq, base.Cols)
	// Per-dimension std for scaling the noise.
	vars := vec.ColumnVariances(base)
	stds := make([]float64, base.Cols)
	for j, v := range vars {
		stds[j] = math.Sqrt(v)
		if stds[j] == 0 {
			stds[j] = 1
		}
	}
	for i := 0; i < nq; i++ {
		level := minNoise
		if nq > 1 {
			level += (maxNoise - minNoise) * float64(i) / float64(nq-1)
		}
		src := base.Row(rng.Intn(base.Rows))
		dst := q.Row(i)
		for j := 0; j < base.Cols; j++ {
			dst[j] = src[j] + float32(rng.NormFloat64()*level*stds[j])
		}
	}
	return q
}
