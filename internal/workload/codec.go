package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Log is a replayable workload: the capture-time index fingerprint, the
// query dimensionality, and the recorded queries in capture order.
type Log struct {
	// Version is the on-disk format version the log was read from (or
	// FormatVersion for freshly captured logs).
	Version uint32
	// Fingerprint is the capturing index's config fingerprint (the
	// vaqbench sha256-of-canonical-config scheme). Replay warns — but does
	// not refuse — when the target index's fingerprint differs: replaying
	// against a rebuild is the point.
	Fingerprint string
	// Dim is the raw query dimensionality of the capturing index.
	Dim int
	// Shards is the shard count of the capturing index: 1 for a sharded
	// build with one shard, >1 for a scatter-gather capture, 0 for an
	// unsharded capture (or any log read from the version-1 format, which
	// predates the field).
	Shards int
	// Records are the captured queries, capture order.
	Records []Record
}

// On-disk .vaqwl format (version 2), everything little-endian:
//
//	magic "VAQW" | u32 version | u16 fplen + fingerprint bytes | u32 dim
//	u32 shards (version >= 2 only) | u32 count, then per record:
//	  u64 offset_ns | u64 latency_ns | u64 trace_seq
//	  u32 k | u32 mode | f64 visit_frac | u32 subspaces | u8 projected
//	  u32 qlen + f32[qlen] query
//	  u32 nres + i32[nres] ids + f32[nres] dists
//
// Version 1 (no shards field) is still read; WriteTo re-emits a log in
// the version it was read from, so the encoding stays a pure function of
// the Log contents (no timestamps, no padding entropy) and read→write
// round-trips byte-identically — the property the round-trip determinism
// test pins. Freshly captured logs are version 2.
const (
	// FormatVersion is the current .vaqwl on-disk version.
	FormatVersion = 2

	logMagic = "VAQW"

	maxFingerprintLen = 1 << 10
	maxRecords        = 1 << 28
	maxVecLen         = 1 << 24
)

// WriteTo serializes the log in .vaqwl format.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if len(l.Fingerprint) > maxFingerprintLen {
		return 0, fmt.Errorf("workload: fingerprint too long (%d bytes)", len(l.Fingerprint))
	}
	if len(l.Records) > maxRecords {
		return 0, fmt.Errorf("workload: too many records (%d)", len(l.Records))
	}
	version := l.Version
	if version == 0 {
		version = FormatVersion
	}
	if version > FormatVersion {
		return 0, fmt.Errorf("workload: cannot write log version %d (have %d)", version, FormatVersion)
	}
	cw.bytes([]byte(logMagic))
	cw.u32(version)
	cw.u16(uint16(len(l.Fingerprint)))
	cw.bytes([]byte(l.Fingerprint))
	cw.u32(uint32(l.Dim))
	if version >= 2 {
		cw.u32(uint32(l.Shards))
	}
	cw.u32(uint32(len(l.Records)))
	for i := range l.Records {
		r := &l.Records[i]
		if len(r.Query) > maxVecLen || len(r.IDs) > maxVecLen || len(r.IDs) != len(r.Dists) {
			return cw.n, fmt.Errorf("workload: record %d has invalid lengths (query %d, ids %d, dists %d)",
				i, len(r.Query), len(r.IDs), len(r.Dists))
		}
		cw.u64(uint64(r.OffsetNs))
		cw.u64(uint64(r.LatencyNs))
		cw.u64(r.TraceSeq)
		cw.u32(uint32(r.K))
		cw.u32(uint32(r.Mode))
		cw.u64(math.Float64bits(r.VisitFrac))
		cw.u32(uint32(r.Subspaces))
		if r.Projected {
			cw.u8(1)
		} else {
			cw.u8(0)
		}
		cw.u32(uint32(len(r.Query)))
		for _, v := range r.Query {
			cw.u32(math.Float32bits(v))
		}
		cw.u32(uint32(len(r.IDs)))
		for _, id := range r.IDs {
			cw.u32(uint32(id))
		}
		for _, d := range r.Dists {
			cw.u32(math.Float32bits(d))
		}
	}
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// ReadLog parses a .vaqwl stream.
func ReadLog(rd io.Reader) (*Log, error) {
	cr := &reader{r: bufio.NewReaderSize(rd, 1<<16)}
	magic := cr.bytes(4)
	if cr.err != nil {
		return nil, fmt.Errorf("workload: reading magic: %w", cr.err)
	}
	if string(magic) != logMagic {
		return nil, fmt.Errorf("workload: bad magic %q (not a .vaqwl log)", magic)
	}
	version := cr.u32()
	if cr.err == nil && (version < 1 || version > FormatVersion) {
		return nil, fmt.Errorf("workload: unsupported log version %d (have %d)", version, FormatVersion)
	}
	fplen := int(cr.u16())
	if cr.err == nil && fplen > maxFingerprintLen {
		return nil, fmt.Errorf("workload: fingerprint length %d too large", fplen)
	}
	fp := cr.bytes(fplen)
	dim := int(cr.u32())
	shards := 0
	if version >= 2 {
		shards = int(cr.u32())
	}
	count := int(cr.u32())
	if cr.err == nil && count > maxRecords {
		return nil, fmt.Errorf("workload: record count %d too large", count)
	}
	if cr.err != nil {
		return nil, fmt.Errorf("workload: reading header: %w", cr.err)
	}
	l := &Log{
		Version:     version,
		Fingerprint: string(fp),
		Dim:         dim,
		Shards:      shards,
		Records:     make([]Record, count),
	}
	for i := range l.Records {
		r := &l.Records[i]
		r.OffsetNs = int64(cr.u64())
		r.LatencyNs = int64(cr.u64())
		r.TraceSeq = cr.u64()
		r.K = int32(cr.u32())
		r.Mode = int32(cr.u32())
		r.VisitFrac = math.Float64frombits(cr.u64())
		r.Subspaces = int32(cr.u32())
		r.Projected = cr.u8() != 0
		qlen := int(cr.u32())
		if cr.err == nil && qlen > maxVecLen {
			return nil, fmt.Errorf("workload: record %d query length %d too large", i, qlen)
		}
		if cr.err != nil {
			return nil, fmt.Errorf("workload: reading record %d: %w", i, cr.err)
		}
		r.Query = make([]float32, qlen)
		for j := range r.Query {
			r.Query[j] = math.Float32frombits(cr.u32())
		}
		nres := int(cr.u32())
		if cr.err == nil && nres > maxVecLen {
			return nil, fmt.Errorf("workload: record %d result count %d too large", i, nres)
		}
		if cr.err != nil {
			return nil, fmt.Errorf("workload: reading record %d: %w", i, cr.err)
		}
		r.IDs = make([]int32, nres)
		r.Dists = make([]float32, nres)
		for j := range r.IDs {
			r.IDs[j] = int32(cr.u32())
		}
		for j := range r.Dists {
			r.Dists[j] = math.Float32frombits(cr.u32())
		}
		if cr.err != nil {
			return nil, fmt.Errorf("workload: reading record %d: %w", i, cr.err)
		}
	}
	return l, nil
}

// Save writes the log to path atomically enough for tooling (temp-free
// direct write; callers needing atomicity can write to a temp file first).
func (l *Log) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := l.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadLog reads a .vaqwl file from disk.
func LoadLog(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLog(f)
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
	buf [8]byte
}

func (c *countingWriter) bytes(b []byte) {
	if c.err != nil {
		return
	}
	n, err := c.w.Write(b)
	c.n += int64(n)
	c.err = err
}

func (c *countingWriter) u8(v uint8) {
	c.buf[0] = v
	c.bytes(c.buf[:1])
}

func (c *countingWriter) u16(v uint16) {
	binary.LittleEndian.PutUint16(c.buf[:2], v)
	c.bytes(c.buf[:2])
}

func (c *countingWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(c.buf[:4], v)
	c.bytes(c.buf[:4])
}

func (c *countingWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(c.buf[:8], v)
	c.bytes(c.buf[:8])
}

type reader struct {
	r   io.Reader
	err error
	buf [8]byte
}

func (c *reader) bytes(n int) []byte {
	if c.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(c.r, b); err != nil {
		c.err = err
		return nil
	}
	return b
}

func (c *reader) fill(n int) []byte {
	if c.err != nil {
		return c.buf[:n] // zeroed leftovers; callers check err
	}
	if _, err := io.ReadFull(c.r, c.buf[:n]); err != nil {
		c.err = err
		for i := 0; i < n; i++ {
			c.buf[i] = 0
		}
	}
	return c.buf[:n]
}

func (c *reader) u8() uint8   { return c.fill(1)[0] }
func (c *reader) u16() uint16 { return binary.LittleEndian.Uint16(c.fill(2)) }
func (c *reader) u32() uint32 { return binary.LittleEndian.Uint32(c.fill(4)) }
func (c *reader) u64() uint64 { return binary.LittleEndian.Uint64(c.fill(8)) }
