package history

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vaq/internal/metrics"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestCollectorSamplesWatchedRegistries(t *testing.T) {
	m1 := metrics.New()
	m2 := metrics.New()
	c := New("test", Config{Interval: 10 * time.Millisecond, DisableBurn: true})
	defer c.Close()
	c.Watch("a", m1)
	c.Watch("a", m1) // duplicate: no-op
	c.Watch("b", m2)

	for i := 0; i < 25; i++ {
		m1.RecordSearch(metrics.SearchRecord{CodesConsidered: 100, CodesSkippedTI: 60}, time.Millisecond)
	}
	waitFor(t, 2*time.Second, "queries series on both targets", func() bool {
		qa, qb := c.Series("a", "queries"), c.Series("b", "queries")
		if qa == nil || qb == nil {
			return false
		}
		p, ok := qa.Last()
		return ok && p.Val == 25
	})

	if got := c.Targets(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("targets %v, want [a b]", got)
	}
	if c.Series("a", "nope") != nil || c.Series("nope", "queries") != nil {
		t.Fatal("unknown series/target should be nil")
	}
	// Derived gauges appear once a sweep sees a counter delta against its
	// previous snapshot, so keep traffic flowing (same 60% skip ratio)
	// while waiting.
	waitFor(t, 2*time.Second, "derived prune-rate series", func() bool {
		for i := 0; i < 5; i++ {
			m1.RecordSearch(metrics.SearchRecord{CodesConsidered: 100, CodesSkippedTI: 60}, time.Millisecond)
		}
		s := c.Series("a", "ti_prune_rate")
		if s == nil {
			return false
		}
		p, ok := s.Last()
		return ok && p.Val > 0.59 && p.Val < 0.61
	})
	if c.Samples() == 0 {
		t.Fatal("no sampling sweeps counted")
	}
}

// TestCollectorScrapeIndependentGauges verifies the collector refreshes
// windowed SLO gauges on its own cadence: the budget series moves without
// anyone calling a Prometheus scrape or external Snapshot.
func TestCollectorScrapeIndependentGauges(t *testing.T) {
	m := metrics.New()
	m.ConfigureSLO(metrics.SLO{LatencyTarget: time.Nanosecond, Window: 64}, nil)
	c := New("test", Config{Interval: 10 * time.Millisecond, DisableBurn: true})
	defer c.Close()
	c.Watch("ix", m)
	for i := 0; i < 64; i++ {
		m.RecordSearch(metrics.SearchRecord{}, time.Millisecond) // always violates
	}
	waitFor(t, 2*time.Second, "slo budget gauge to go negative", func() bool {
		s := c.Series("ix", "slo_latency_budget")
		if s == nil {
			return false
		}
		p, ok := s.Last()
		return ok && p.Val < 0
	})
}

func TestCollectorCloseIdempotentAndFinalSweep(t *testing.T) {
	m := metrics.New()
	c := New("test", Config{Interval: time.Hour, DisableBurn: true}) // only the arming sweep
	c.Watch("ix", m)
	waitFor(t, 2*time.Second, "first sweep", func() bool { return c.Samples() >= 1 })
	before := c.Samples()
	m.RecordSearch(metrics.SearchRecord{}, time.Millisecond)
	c.Close()
	c.Close() // idempotent
	if c.Samples() <= before {
		t.Fatal("Close did not run a final sweep")
	}
	p, ok := c.Series("ix", "queries").Last()
	if !ok || p.Val != 1 {
		t.Fatalf("final sweep missed the last query: %+v ok=%v", p, ok)
	}
}

// TestBurnRuleLifecycle drives a registry whose every query violates its
// latency SLO through a collector with a sub-second burn window and
// verifies the canonical ladder end to end: delegation replaces the
// instantaneous edge, the fast rule fires once eligible, the status lands
// in the registry snapshot, and Close hands the edge back.
func TestBurnRuleLifecycle(t *testing.T) {
	m := metrics.New()
	m.ConfigureSLO(metrics.SLO{LatencyTarget: time.Nanosecond, Window: 64}, nil)
	var edges atomic.Int32
	var lastStatus atomic.Pointer[metrics.BurnRuleStatus]
	c := New("test", Config{
		Interval: 10 * time.Millisecond,
		Burn:     []BurnRule{{Name: "fast", Window: 300 * time.Millisecond, Confirm: 50 * time.Millisecond, Threshold: 2}},
		OnBurn: func(target string, st metrics.BurnRuleStatus) {
			if target != "ix" {
				t.Errorf("burn edge for target %q, want ix", target)
			}
			edges.Add(1)
			lastStatus.Store(&st)
		},
	})
	c.Watch("ix", m)

	waitFor(t, 2*time.Second, "SLO edge delegation", m.SLODelegated)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				m.RecordSearch(metrics.SearchRecord{}, time.Millisecond) // always violates
				time.Sleep(time.Millisecond)
			}
		}
	}()
	defer func() { close(stop); <-done }()

	waitFor(t, 5*time.Second, "vaq.burn.latency.fast to fire", func() bool {
		return m.Alerts().Lookup("vaq.burn.latency.fast").Firing()
	})
	if got := edges.Load(); got != 1 {
		t.Fatalf("burn edge fired %d times, want exactly 1", got)
	}
	st := lastStatus.Load()
	if st == nil || st.Objective != "latency" || st.Rule != "fast" || !st.Eligible || !st.Firing {
		t.Fatalf("edge status %+v", st)
	}
	if st.Burn < st.Threshold || st.ShortBurn < st.Threshold {
		t.Fatalf("firing status below threshold: %+v", st)
	}
	// Delegation suppressed the legacy instantaneous latch.
	if m.Alerts().Lookup("vaq.slo.latency").Firing() {
		t.Fatal("instantaneous SLO edge fired while delegated to burn rules")
	}
	// The combined status is exported through the registry snapshot.
	snap := m.Snapshot()
	if snap.Burn == nil || len(snap.Burn.Rules) != 1 || !snap.Burn.Rules[0].Firing {
		t.Fatalf("snapshot burn block %+v", snap.Burn)
	}

	c.Close()
	if m.SLODelegated() {
		t.Fatal("Close did not hand the SLO edge back")
	}
}

// TestBurnColdStoreIneligible: a rule whose window dwarfs retained history
// must not page, no matter how hot the burn.
func TestBurnColdStoreIneligible(t *testing.T) {
	m := metrics.New()
	m.ConfigureSLO(metrics.SLO{LatencyTarget: time.Nanosecond, Window: 64}, nil)
	c := New("test", Config{
		Interval: 10 * time.Millisecond,
		Burn:     []BurnRule{{Name: "slow", Window: time.Hour, Threshold: 2}},
	})
	defer c.Close()
	c.Watch("ix", m)
	for i := 0; i < 50; i++ {
		m.RecordSearch(metrics.SearchRecord{}, time.Millisecond)
	}
	waitFor(t, 2*time.Second, "burn status export", func() bool {
		b := m.Burn()
		return b != nil && len(b.Rules) == 1
	})
	time.Sleep(100 * time.Millisecond)
	st := m.Burn().Rules[0]
	if st.Eligible || st.Firing {
		t.Fatalf("hour-window rule eligible after 100ms of history: %+v", st)
	}
	if m.Alerts().Lookup("vaq.burn.latency.slow").Firing() {
		t.Fatal("ineligible rule fired")
	}
}

func TestBurnRuleDefaults(t *testing.T) {
	r := BurnRule{Name: "x", Window: time.Hour}.withDefaults()
	if r.Confirm != 5*time.Minute {
		t.Fatalf("confirm %s, want window/12 = 5m", r.Confirm)
	}
	if r.Threshold != 1 {
		t.Fatalf("threshold %g, want 1", r.Threshold)
	}
	if r = (BurnRule{Name: "y", Window: 6 * time.Second}).withDefaults(); r.Confirm != time.Second {
		t.Fatalf("confirm %s, want 1s floor", r.Confirm)
	}
	rules := DefaultBurnRules()
	if len(rules) != 2 || rules[0].Name != "fast" || rules[1].Name != "slow" {
		t.Fatalf("default ladder %+v", rules)
	}
}

func TestDumpAndValidate(t *testing.T) {
	m := metrics.New()
	c := New("dumpme", Config{Interval: 10 * time.Millisecond, DisableBurn: true})
	defer c.Close()
	c.Watch("ix", m)
	m.RecordSearch(metrics.SearchRecord{CodesConsidered: 10}, time.Millisecond)
	waitFor(t, 2*time.Second, "a few sweeps", func() bool { return c.Samples() >= 3 })

	d := c.Dump()
	if d.Collector != "dumpme" || d.SchemaVersion != DumpSchemaVersion {
		t.Fatalf("dump header %+v", d)
	}
	if len(d.Targets) != 1 || d.Targets[0].Name != "ix" || len(d.Targets[0].Series) == 0 {
		t.Fatalf("dump targets %+v", d.Targets)
	}
	if err := ValidateDump(d); err != nil {
		t.Fatalf("live dump failed validation: %v", err)
	}

	corrupt := []struct {
		name string
		mut  func(d *Dump)
		want string
	}{
		{"schema", func(d *Dump) { d.SchemaVersion = 99 }, "unsupported schema version"},
		{"raw-regress", func(d *Dump) {
			s := &d.Targets[0].Series[0]
			s.Raw = []Point{{TS: 100, Val: 1}, {TS: 50, Val: 2}}
		}, "timestamps regress"},
		{"empty-bucket", func(d *Dump) {
			d.Targets[0].Series[0].Mid = []Bucket{{Start: 0, End: 10}}
		}, "is empty"},
		{"inverted-bucket", func(d *Dump) {
			d.Targets[0].Series[0].Long = []Bucket{{Start: 10, End: 10, Count: 1}}
		}, "start 10 >= end 10"},
		{"envelope", func(d *Dump) {
			d.Targets[0].Series[0].Mid = []Bucket{{Start: 0, End: 10, Count: 1, Min: 5, Max: 1}}
		}, "min 5 > max 1"},
		{"bucket-order", func(d *Dump) {
			d.Targets[0].Series[0].Mid = []Bucket{
				{Start: 100, End: 110, Count: 1},
				{Start: 0, End: 10, Count: 1},
			}
		}, "starts before"},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			bad := c.Dump()
			tc.mut(bad)
			err := ValidateDump(bad)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("validation err %v, want substring %q", err, tc.want)
			}
		})
	}
	if err := ValidateDump(nil); err == nil {
		t.Fatal("nil dump validated")
	}
}
