package bolt

import (
	"math/rand"
	"testing"

	"vaq/internal/quantizer"
	"vaq/internal/vec"
)

func clustered(rng *rand.Rand, n, d int) *vec.Matrix {
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		for j := 0; j < d; j++ {
			r[j] = float32(rng.Intn(4))*2 + float32(rng.NormFloat64()*0.2)
		}
	}
	return x
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := clustered(rng, 100, 16)
	if _, err := Build(x, x, Config{Budget: 0}); err == nil {
		t.Fatal("budget 0 must fail")
	}
	if _, err := Build(x, x, Config{Budget: 6}); err == nil {
		t.Fatal("non-multiple-of-4 budget must fail")
	}
	if _, err := Build(x, x, Config{Budget: 4}); err == nil {
		t.Fatal("odd subspace count must fail")
	}
	if _, err := Build(x, x, Config{Budget: 128}); err == nil {
		t.Fatal("m > d must fail")
	}
	if _, err := Build(x, vec.NewMatrix(10, 8), Config{Budget: 16}); err == nil {
		t.Fatal("dim mismatch must fail")
	}
}

func TestSearchBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := clustered(rng, 800, 16)
	ix, err := Build(x, x, Config{Budget: 32, Train: quantizer.TrainConfig{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 800 || ix.Dim() != 16 {
		t.Fatalf("shape %d %d", ix.Len(), ix.Dim())
	}
	res, err := ix.Search(x.Row(5), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
	if _, err := ix.Search(make([]float32, 3), 5); err == nil {
		t.Fatal("bad dim must fail")
	}
	if _, err := ix.Search(x.Row(0), 0); err == nil {
		t.Fatal("k=0 must fail")
	}
}

func TestSelfRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := clustered(rng, 1000, 16)
	ix, err := Build(x, x, Config{Budget: 64, Train: quantizer.TrainConfig{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for trial := 0; trial < 20; trial++ {
		qi := rng.Intn(1000)
		res, err := ix.Search(x.Row(qi), 20)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.ID == qi {
				hits++
				break
			}
		}
	}
	if hits < 12 {
		t.Fatalf("self-recall %d/20 too low for a 4-bit quantizer", hits)
	}
}

func TestQuantizedDistanceCorrelation(t *testing.T) {
	// De-quantized Bolt distances should approximate the float ADC
	// distances of the same codebooks: the nearest Bolt answer should have
	// a small true distance relative to the dataset scale.
	rng := rand.New(rand.NewSource(4))
	x := clustered(rng, 500, 8)
	ix, err := Build(x, x, Config{Budget: 16, Train: quantizer.TrainConfig{Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	q := x.Row(7)
	res, err := ix.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	trueNearest := vec.NewTopK(5)
	for i := 0; i < x.Rows; i++ {
		trueNearest.Push(i, vec.SquaredL2(q, x.Row(i)))
	}
	worstTrue := trueNearest.Results()[4].Dist
	// Bolt's best answer must not be absurdly far in true distance.
	best := res[0].ID
	if d := vec.SquaredL2(q, x.Row(best)); d > worstTrue*20+10 {
		t.Fatalf("bolt nearest is far in true space: %v vs %v", d, worstTrue)
	}
}
