package tc

import (
	"math"
	"math/rand"
	"testing"

	"vaq/internal/vec"
)

func skewed(rng *rand.Rand, n, d int) *vec.Matrix {
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		for j := 0; j < d; j++ {
			scale := math.Pow(float64(j+1), -1)
			r[j] = float32((float64(rng.Intn(3)-1) + rng.NormFloat64()*0.3) * scale)
		}
	}
	return x
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := skewed(rng, 100, 8)
	if _, err := Build(x, x, Config{Budget: 0}); err == nil {
		t.Fatal("budget 0 must fail")
	}
	if _, err := Build(x, vec.NewMatrix(5, 9), Config{Budget: 16}); err == nil {
		t.Fatal("dim mismatch must fail")
	}
}

func TestBitAllocationFavorsHighVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := skewed(rng, 600, 16)
	ix, err := Build(x, x, Config{Budget: 32})
	if err != nil {
		t.Fatal(err)
	}
	bits := ix.Bits()
	total := 0
	for j, b := range bits {
		total += b
		if j > 0 && b > bits[0] {
			t.Fatalf("later component out-allocated the first: %v", bits)
		}
	}
	if total != 32 {
		t.Fatalf("bits sum to %d: %v", total, bits)
	}
	if bits[0] < 4 {
		t.Fatalf("dominant component should get several bits: %v", bits)
	}
	// With a small budget some components must be dropped entirely —
	// TC's dimensionality-reduction behaviour (paper §II-C on KSSQ/TC).
	dropped := 0
	for _, b := range bits {
		if b == 0 {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatalf("expected dropped components at 32 bits over 16 dims: %v", bits)
	}
}

func TestSearchBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := skewed(rng, 900, 16)
	ix, err := Build(x, x, Config{Budget: 64})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 900 || ix.Dim() != 16 {
		t.Fatalf("shape %d %d", ix.Len(), ix.Dim())
	}
	hits := 0
	for trial := 0; trial < 20; trial++ {
		qi := rng.Intn(900)
		res, err := ix.Search(x.Row(qi), 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 10 {
			t.Fatalf("got %d results", len(res))
		}
		for _, r := range res {
			if r.ID == qi {
				hits++
				break
			}
		}
	}
	if hits < 14 {
		t.Fatalf("self-recall %d/20", hits)
	}
	if _, err := ix.Search(make([]float32, 3), 5); err == nil {
		t.Fatal("bad dim must fail")
	}
	if _, err := ix.Search(x.Row(0), 0); err == nil {
		t.Fatal("k=0 must fail")
	}
}

func TestNearestLevel(t *testing.T) {
	centers := []float32{-2, 0, 2}
	cases := []struct {
		v    float32
		want uint16
	}{{-5, 0}, {-1.5, 0}, {-0.9, 1}, {0.9, 1}, {1.1, 2}, {9, 2}}
	for _, c := range cases {
		if got := nearestLevel(centers, c.v); got != c.want {
			t.Fatalf("nearestLevel(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}
