package vaq

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
)

// TestShardedPublicAPI walks the ShardedIndex surface end to end: build,
// search parity with the unsharded index under exhaustive settings,
// batch search, Add, persistence, metrics and replay.
func TestShardedPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := genData(rng, 900, 32)
	cfg := Config{NumSubspaces: 8, Budget: 48, Seed: 3, Shards: 4}
	sx, err := BuildSharded(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sx.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", sx.Shards())
	}
	if sx.Len() != 900 || sx.Dim() != 32 {
		t.Fatalf("shape (%d, %d), want (900, 32)", sx.Len(), sx.Dim())
	}
	ux, err := Build(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := SearchOptions{Mode: ModeTIEA, VisitFrac: 1.0}
	for qi := 0; qi < 20; qi++ {
		q := data[qi*7]
		want, err := ux.SearchWith(q, 10, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sx.SearchWith(q, 10, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d rank %d: %+v != %+v", qi, i, got[i], want[i])
			}
		}
	}

	queries := genData(rng, 12, 32)
	batch, err := sx.SearchBatch(queries, 5, SearchOptions{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 12 {
		t.Fatalf("batch returned %d slots, want 12", len(batch))
	}
	for i, res := range batch {
		if len(res) != 5 {
			t.Fatalf("batch query %d returned %d results, want 5", i, len(res))
		}
	}

	first, err := sx.Add(genData(rng, 3, 32))
	if err != nil {
		t.Fatal(err)
	}
	if first != 900 || sx.Len() != 903 {
		t.Fatalf("Add: first=%d Len=%d, want 900/903", first, sx.Len())
	}

	snap := sx.Metrics()
	if snap.Queries == 0 {
		t.Fatal("merged metrics recorded no queries")
	}

	path := filepath.Join(t.TempDir(), "ix.vaqs")
	if err := sx.Save(path); err != nil {
		t.Fatal(err)
	}
	lx, err := LoadSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	if lx.Shards() != sx.Shards() || lx.Len() != sx.Len() {
		t.Fatalf("loaded shape (%d, %d) != (%d, %d)", lx.Shards(), lx.Len(), sx.Shards(), sx.Len())
	}
	if lx.ConfigFingerprint() != sx.ConfigFingerprint() {
		t.Fatal("fingerprint changed across save/load")
	}
	var buf bytes.Buffer
	if _, err := sx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSharded(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

// TestShardedReplayFromUnshardedCapture pins the public capture→replay
// bridge: a workload captured on an unsharded index replays through the
// sharded scatter-gather with full overlap at exhaustive settings.
func TestShardedReplayFromUnshardedCapture(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := genData(rng, 600, 24)
	cfg := Config{NumSubspaces: 6, Budget: 36, Seed: 5}
	ux, err := Build(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cap := ux.EnableCapture(CaptureConfig{SampleRate: 1})
	for qi := 0; qi < 15; qi++ {
		if _, err := ux.SearchWith(data[qi*11], 8, SearchOptions{VisitFrac: 1.0}); err != nil {
			t.Fatal(err)
		}
	}
	log := cap.Snapshot()
	cfg.Shards = 4
	sx, err := BuildSharded(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := sx.ReplayWorkload(log, ReplayOptions{
		Thresholds: ReplayThresholds{MinOverlap: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("sharded replay failed: %v", rep.Violations)
	}
	if rep.MeanOverlap != 1.0 {
		t.Fatalf("mean overlap %v, want 1.0", rep.MeanOverlap)
	}
}

// TestShardedS1MatchesUnsharded pins the public degenerate case: Shards=1
// (and the Shards=0 default) answers identically to Build.
func TestShardedS1MatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := genData(rng, 500, 24)
	cfg := Config{NumSubspaces: 6, Budget: 36, Seed: 7}
	ux, err := Build(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 1} {
		cfg.Shards = shards
		sx, err := BuildSharded(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sx.Shards() != 1 {
			t.Fatalf("Shards=%d built %d shards, want 1", shards, sx.Shards())
		}
		if sx.ConfigFingerprint() != ux.ConfigFingerprint() {
			t.Fatalf("Shards=%d fingerprint %q != unsharded %q", shards, sx.ConfigFingerprint(), ux.ConfigFingerprint())
		}
		for qi := 0; qi < 10; qi++ {
			q := data[qi*13]
			want, err := ux.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sx.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Shards=%d query %d rank %d: %+v != %+v", shards, qi, i, got[i], want[i])
				}
			}
		}
	}
}
