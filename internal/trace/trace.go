// Package trace is the per-query diagnostic layer of the VAQ index: where
// internal/metrics answers "how much pruning happened across all queries",
// trace answers "where did THIS query spend its time". A Tracer owns a
// fixed-size lock-free ring of recent QueryTraces plus a reservoir of
// slow-query exemplars above a configurable latency threshold; a Recorder
// is the per-Searcher scratch that collects one query's timed spans
// (projection, LUT fill, cluster ranking, per-cluster scan, EA resume)
// without locking. Everything is stdlib-only and every recording method is
// nil-safe, so the disabled cost at a call site is one pointer check.
package trace

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"vaq/internal/metrics"
)

// Span names used by the core query kernels. Exported so exporters and
// tests share one vocabulary.
const (
	SpanProject     = "project"      // PCA rotation of the raw query
	SpanLUTFill     = "lut_fill"     // per-subspace lookup-table build
	SpanLUTQuant    = "lut_quant"    // uint8 LUT quantization (AccuracyFast)
	SpanClusterRank = "cluster_rank" // TI centroid distances + quickselect
	SpanClusterScan = "cluster_scan" // one visited TI cluster's member walk
	SpanEAResume    = "ea_resume"    // aggregate post-first-chunk resumes
	SpanScan        = "scan"         // whole-dataset scan (EA / heap modes)
	SpanRerank      = "rerank"       // exact re-rank of int-scan candidates
)

// Span names used by the sharded scatter-gather path (internal/shard). A
// sharded query files one parent QueryTrace whose spans carry a Shard id:
// per shard a wait span (dispatch/queue delay on the bounded worker pool)
// and a scan span (the shard's whole search, pruning attribution inline),
// plus instantaneous bound-feedback events and one trailing merge span.
const (
	SpanShardWait     = "shard_wait"     // scatter start → worker pickup
	SpanShardScan     = "shard_scan"     // one shard's complete search
	SpanShardMerge    = "shard_merge"    // deterministic k-way merge
	SpanBoundFeedback = "bound_feedback" // a shard tightened the global k-th bound
)

// ShardSpan reports whether name is one of the scatter-gather span names
// whose Shard field is meaningful.
func ShardSpan(name string) bool {
	switch name {
	case SpanShardWait, SpanShardScan, SpanBoundFeedback:
		return true
	}
	return false
}

// Span is one timed phase of a query. Start is the offset from the query's
// start; aggregate spans (SpanEAResume) carry the summed duration of many
// short stretches and the stretch count in Count.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
	// Cluster and Rank identify a SpanClusterScan: the TI cluster id and
	// its position in the query's nearest-first visit order (-1 otherwise).
	Cluster int `json:"cluster,omitempty"`
	Rank    int `json:"rank,omitempty"`
	// Count is the number of aggregated stretches (SpanEAResume) or codes
	// walked (SpanClusterScan).
	Count int `json:"count,omitempty"`
	// SkippedTI, AbandonedEA and Lookups are the pruning work attributed
	// to this span (SpanClusterScan, the whole-scan spans, and
	// SpanShardScan — where they are the shard's whole-search attribution;
	// on SpanBoundFeedback, AbandonedEA/SkippedTI instead credit the prunes
	// the published bound enabled in shards that started after it).
	SkippedTI   int `json:"skipped_ti,omitempty"`
	AbandonedEA int `json:"abandoned_ea,omitempty"`
	Lookups     int `json:"lookups,omitempty"`
	// Shard identifies which scatter-gather shard this span describes.
	// Meaningful only on the shard span names (ShardSpan); like Cluster,
	// the zero value on other spans carries no information.
	Shard int `json:"shard,omitempty"`
	// Hits is how many of the query's final merged top-k results this
	// shard served (SpanShardScan only).
	Hits int `json:"hits,omitempty"`
	// Bound is the global k-th distance a SpanBoundFeedback event
	// published (0 elsewhere).
	Bound float64 `json:"bound,omitempty"`
}

// QueryTrace is one completed query: its spans, total wall time, and the
// pruning counters the metrics registry aggregates index-wide.
type QueryTrace struct {
	// Seq is a monotonically increasing id assigned at completion (unique
	// per Tracer, so exemplars and ring entries can be correlated).
	Seq uint64 `json:"seq"`
	// Start is the wall-clock time the query began.
	Start time.Time `json:"start"`
	// Total is the query's end-to-end duration (projection included when
	// the query came in raw).
	Total time.Duration `json:"total_ns"`
	Mode  string        `json:"mode"`
	K     int           `json:"k"`
	Spans []Span        `json:"spans"`
	// DroppedSpans counts spans discarded once the per-query cap was hit
	// (very wide visit fractions); the kept spans are the earliest.
	DroppedSpans int                  `json:"dropped_spans,omitempty"`
	Stats        metrics.SearchRecord `json:"stats"`
}

// Config tunes a Tracer. The zero value is usable: 128 recent traces, 16
// slow exemplars above 10ms, at most 192 spans kept per query.
type Config struct {
	// RingSize is how many recent traces are retained (default 128).
	RingSize int
	// SlowThreshold is the latency above which a query is eligible for the
	// exemplar reservoir (default 10ms).
	SlowThreshold time.Duration
	// Exemplars is the reservoir size for slow queries (default 16).
	Exemplars int
	// MaxSpans caps the spans kept per query (default 192); later spans
	// are counted in DroppedSpans instead of stored.
	MaxSpans int
	// Seed drives reservoir sampling (0 = a fixed default, so tests are
	// deterministic).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.RingSize <= 0 {
		c.RingSize = 128
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 10 * time.Millisecond
	}
	if c.Exemplars <= 0 {
		c.Exemplars = 16
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 192
	}
	return c
}

// Tracer collects completed QueryTraces from any number of Recorders. The
// ring append is lock-free (an atomic sequence plus per-slot atomic
// pointers); only slow queries — rare by construction — take the reservoir
// mutex.
type Tracer struct {
	cfg  Config
	seq  atomic.Uint64
	ring []atomic.Pointer[QueryTrace]

	mu       sync.Mutex
	rng      *rand.Rand
	slow     []*QueryTrace
	slowSeen uint64
}

// New returns a Tracer with the given configuration.
func New(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Tracer{
		cfg:  cfg,
		ring: make([]atomic.Pointer[QueryTrace], cfg.RingSize),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Config reports the tracer's effective (defaulted) configuration.
func (t *Tracer) Config() Config { return t.cfg }

// add files one completed trace and returns its sequence id: always into
// the ring, and into the slow reservoir when it crossed the threshold
// (Algorithm R, so every slow query has equal probability of surviving as
// an exemplar).
func (t *Tracer) add(qt *QueryTrace) uint64 {
	qt.Seq = t.seq.Add(1)
	t.ring[int((qt.Seq-1)%uint64(len(t.ring)))].Store(qt)
	if qt.Total < t.cfg.SlowThreshold {
		return qt.Seq
	}
	t.mu.Lock()
	t.slowSeen++
	if len(t.slow) < t.cfg.Exemplars {
		t.slow = append(t.slow, qt)
	} else if j := t.rng.Intn(int(t.slowSeen)); j < len(t.slow) {
		t.slow[j] = qt
	}
	t.mu.Unlock()
	return qt.Seq
}

// Recent returns the retained traces, oldest first. The ring is read
// without locks, so under heavy concurrent traffic the copy is a
// near-consistent sample, not an atomic cut — fine for diagnostics.
func (t *Tracer) Recent() []*QueryTrace {
	if t == nil {
		return nil
	}
	out := make([]*QueryTrace, 0, len(t.ring))
	head := t.seq.Load() // next slot to overwrite is head % size
	n := uint64(len(t.ring))
	for i := uint64(0); i < n; i++ {
		if qt := t.ring[int((head+i)%n)].Load(); qt != nil {
			out = append(out, qt)
		}
	}
	return out
}

// Slowest returns the slow-query exemplars sorted worst-first, and the
// total number of threshold-crossing queries observed (>= len of the
// returned slice: the reservoir subsamples).
func (t *Tracer) Slowest() ([]*QueryTrace, uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	out := make([]*QueryTrace, len(t.slow))
	copy(out, t.slow)
	seen := t.slowSeen
	t.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Total > out[j-1].Total; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, seen
}

// Count reports how many traces have been recorded in total.
func (t *Tracer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}

// NewRecorder returns a per-goroutine span collector feeding this tracer.
// A nil Tracer yields a nil Recorder, on which every method is a no-op.
func (t *Tracer) NewRecorder() *Recorder {
	if t == nil {
		return nil
	}
	return &Recorder{tr: t}
}

// Recorder accumulates one query's spans without synchronization; it is
// owned by a single Searcher. Begin/Add/End on a nil Recorder are no-ops,
// so call sites pay one pointer check when tracing is off.
type Recorder struct {
	tr      *Tracer
	t0      time.Time
	spans   []Span
	dropped int
}

// Begin starts a new query trace. backdate shifts the origin earlier by
// work already done (query projection happens before the traced window
// opens), so the projection span occupies [0, backdate) without
// overlapping the scan phases.
func (r *Recorder) Begin(backdate time.Duration) {
	if r == nil {
		return
	}
	r.t0 = time.Now().Add(-backdate)
	r.spans = r.spans[:0]
	r.dropped = 0
}

// Clock returns the offset from the query start; pair two calls around a
// phase to produce a Span.
func (r *Recorder) Clock() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.t0)
}

// Active reports whether this recorder is collecting (always false for a
// nil Recorder). Kernels use it to skip attribution bookkeeping wholesale.
func (r *Recorder) Active() bool { return r != nil }

// Add appends one span, or counts it as dropped past the per-query cap.
func (r *Recorder) Add(s Span) {
	if r == nil {
		return
	}
	if len(r.spans) >= r.tr.cfg.MaxSpans {
		r.dropped++
		return
	}
	r.spans = append(r.spans, s)
}

// End completes the trace, files it with the tracer, and returns the
// assigned trace sequence id (0 for a nil Recorder) so callers — the
// workload capture — can correlate a log entry with its exemplar. The total
// is measured against the (possibly backdated) origin, so it includes the
// projection cost the metrics histogram deliberately excludes.
func (r *Recorder) End(mode string, k int, stats metrics.SearchRecord) uint64 {
	if r == nil {
		return 0
	}
	qt := &QueryTrace{
		Start:        r.t0,
		Total:        time.Since(r.t0),
		Mode:         mode,
		K:            k,
		Spans:        append([]Span(nil), r.spans...),
		DroppedSpans: r.dropped,
		Stats:        stats,
	}
	return r.tr.add(qt)
}
