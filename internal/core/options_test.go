package core

import (
	"math"
	"math/rand"
	"testing"
)

// The EA check interval changes when abandonment happens, never the
// answers: EACheckEvery=1 and =4 must return identical results.
func TestEACheckIntervalInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	x := skewedData(rng, 900, 24, 1.2)
	build := func(every int) *Index {
		ix, err := Build(x, x, Config{
			NumSubspaces: 6, Budget: 48, Seed: 71, TIClusters: 20, EACheckEvery: every,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	ix1 := build(1)
	ix4 := build(4)
	for trial := 0; trial < 10; trial++ {
		q := append([]float32(nil), x.Row(rng.Intn(x.Rows))...)
		for j := range q {
			q[j] += float32(rng.NormFloat64() * 0.05)
		}
		a, err := ix1.SearchWith(q, 9, SearchOptions{Mode: ModeEA})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ix4.SearchWith(q, 9, SearchOptions{Mode: ModeEA})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("check interval changed results: %v vs %v", a[i], b[i])
			}
		}
	}
}

// TI pruning with a proper prefix (fewer subspaces in the centroids) must
// remain exact at full visiting: the prefix bound is still a valid lower
// bound on the full ADC distance.
func TestTIPrefixSubspacesExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	x := skewedData(rng, 1200, 24, 1.2)
	ix, err := Build(x, x, Config{
		NumSubspaces: 8, Budget: 48, Seed: 72, TIClusters: 30, TIPrefixSubspaces: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 12; trial++ {
		q := append([]float32(nil), x.Row(rng.Intn(x.Rows))...)
		for j := range q {
			q[j] += float32(rng.NormFloat64() * 0.05)
		}
		heap, err := ix.SearchWith(q, 10, SearchOptions{Mode: ModeHeap})
		if err != nil {
			t.Fatal(err)
		}
		tiea, err := ix.SearchWith(q, 10, SearchOptions{Mode: ModeTIEA, VisitFrac: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := range heap {
			if math.Abs(float64(heap[i].Dist-tiea[i].Dist)) > 1e-5*(1+float64(heap[i].Dist)) {
				t.Fatalf("prefix TI pruning changed distances at %d: %v vs %v", i, tiea[i], heap[i])
			}
		}
	}
	// The prefix must actually be shorter than the full dimensionality.
	if ix.ti.prefixDim >= 24 {
		t.Fatalf("prefix dim %d should be < 24", ix.ti.prefixDim)
	}
}

func TestCenterPCABuild(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	// Data with a large mean offset: centering should not break anything.
	x := skewedData(rng, 500, 16, 1.0)
	for i := range x.Data {
		x.Data[i] += 100
	}
	ix, err := Build(x, x, Config{
		NumSubspaces: 4, Budget: 24, Seed: 73, TIClusters: 10, CenterPCA: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for trial := 0; trial < 10; trial++ {
		qi := rng.Intn(500)
		res, err := ix.SearchWith(x.Row(qi), 5, SearchOptions{VisitFrac: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.ID == qi {
				hits++
				break
			}
		}
	}
	if hits < 8 {
		t.Fatalf("centered build self-recall %d/10", hits)
	}
}

func TestSeparateTrainSet(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	all := skewedData(rng, 1500, 16, 1.2)
	train := all.SliceRows(0, 500)
	data := all.SliceRows(500, 1500)
	ix, err := Build(train, data, Config{NumSubspaces: 4, Budget: 32, Seed: 74, TIClusters: 15})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1000 {
		t.Fatalf("len %d", ix.Len())
	}
	hits := 0
	for trial := 0; trial < 10; trial++ {
		qi := rng.Intn(1000)
		res, err := ix.SearchWith(data.Row(qi), 10, SearchOptions{VisitFrac: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.ID == qi {
				hits++
				break
			}
		}
	}
	if hits < 7 {
		t.Fatalf("separate-train self-recall %d/10", hits)
	}
}

// Subspace variance shares exposed by the index must sum to ~1 and be
// non-increasing (global importance ordering, §III-B).
func TestSubspaceVarianceInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for _, nonUniform := range []bool{false, true} {
		x := skewedData(rng, 700, 32, 1.5)
		ix, err := Build(x, x, Config{
			NumSubspaces: 8, Budget: 40, Seed: 75, TIClusters: 10, NonUniform: nonUniform,
		})
		if err != nil {
			t.Fatal(err)
		}
		vars := ix.SubspaceVariances()
		var sum float64
		for i, v := range vars {
			sum += v
			if i > 0 && v > vars[i-1]+1e-9 {
				t.Fatalf("nonUniform=%v: importance ordering violated: %v", nonUniform, vars)
			}
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("nonUniform=%v: variances sum to %v", nonUniform, sum)
		}
		lengths := ix.SubspaceLengths()
		total := 0
		for _, l := range lengths {
			if l < 1 {
				t.Fatalf("empty subspace: %v", lengths)
			}
			total += l
		}
		if total != 32 {
			t.Fatalf("lengths %v don't cover 32 dims", lengths)
		}
	}
}
