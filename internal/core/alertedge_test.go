package core

import (
	"math/rand"
	"testing"
	"time"

	"vaq/internal/alert"
	"vaq/internal/metrics"
)

// TestAlertLatchBreachRecoverRearm drives each of the three production
// alert latches — vaq.drift (quantization drift on Add), vaq.skew
// (windowed shard skew), vaq.slo.latency (latency error budget) — through
// the full latch lifecycle on the shared alert bus: breach fires exactly
// one edge no matter how many observations stay in breach, recovery
// re-arms it (counted), a registry Reset re-arms it WITHOUT counting a
// recovery, and a re-breach after either re-arm fires a fresh edge. Before
// the shared alert.Source each implementation hand-rolled its own CAS
// latch; this table is the regression net across all three.
func TestAlertLatchBreachRecoverRearm(t *testing.T) {
	cases := []struct {
		name   string
		source string
		// setup returns the bus plus the three drivers: breach pushes
		// real traffic until the latch fires (and keeps breaching when
		// called while latched), recover pushes traffic until it clears,
		// reset re-arms through the registry Reset path.
		setup func(t *testing.T) (bus *alert.Bus, breach, recover, reset func())
	}{
		{
			name:   "drift",
			source: "vaq.drift",
			setup: func(t *testing.T) (*alert.Bus, func(), func(), func()) {
				rng := rand.New(rand.NewSource(907))
				x := skewedData(rng, 1600, 24, 1.2)
				ix, err := Build(x, x, Config{
					NumSubspaces: 8, Budget: 48, Seed: 907, TIClusters: 30,
					DriftAlertRatio: 1.5,
				})
				if err != nil {
					t.Fatal(err)
				}
				bus := ix.Metrics().Alerts()
				src := bus.Source("vaq.drift")
				breach := func() {
					for i := 0; i < 16 && !src.Firing(); i++ {
						shifted := skewedData(rng, 400, 24, 1.2)
						for j := range shifted.Data {
							shifted.Data[j] = shifted.Data[j]*10 + 5
						}
						if _, err := ix.Add(shifted); err != nil {
							t.Fatal(err)
						}
					}
					if !src.Firing() {
						// Already-latched calls land here too; one more
						// in-breach batch proves re-observation is edge-free.
						t.Fatal("drift latch did not fire after 16 shifted batches")
					}
				}
				recover := func() {
					// In-distribution batches decay the EWMA back toward the
					// baseline (alpha ~0.28 per 400-vector batch).
					for i := 0; i < 50 && src.Firing(); i++ {
						if _, err := ix.Add(skewedData(rng, 400, 24, 1.2)); err != nil {
							t.Fatal(err)
						}
					}
					if src.Firing() {
						t.Fatal("drift latch did not recover after 50 in-distribution batches")
					}
				}
				return bus, breach, recover, func() { ix.Metrics().Reset() }
			},
		},
		{
			name:   "skew",
			source: "vaq.skew",
			setup: func(t *testing.T) (*alert.Bus, func(), func(), func()) {
				m := metrics.NewSized(3, 2)
				m.ConfigureSharded(metrics.ShardedConfig{
					Shards: 2, Window: 2, SkewAlertRatio: 1.5,
				}, nil)
				bus := m.Alerts()
				src := bus.Source("vaq.skew")
				breach := func() {
					// Ratio 1900*2/2000 = 1.9 per query fills the 2-wide
					// window above the 1.5 threshold.
					for i := 0; i < 4 && !src.Firing(); i++ {
						m.RecordScatter(metrics.ScatterRecord{ShardLatencyNs: []int64{100, 1900}})
					}
					if !src.Firing() {
						t.Fatal("skew latch did not fire")
					}
				}
				recover := func() {
					for i := 0; i < 4 && src.Firing(); i++ {
						m.RecordScatter(metrics.ScatterRecord{ShardLatencyNs: []int64{1000, 1000}})
					}
					if src.Firing() {
						t.Fatal("skew latch did not recover on balanced scatters")
					}
				}
				return bus, breach, recover, func() { m.Reset() }
			},
		},
		{
			name:   "slo-latency",
			source: "vaq.slo.latency",
			setup: func(t *testing.T) (*alert.Bus, func(), func(), func()) {
				m := metrics.New()
				m.ConfigureSLO(metrics.SLO{LatencyTarget: time.Millisecond, Window: 8}, nil)
				bus := m.Alerts()
				src := bus.Source("vaq.slo.latency")
				breach := func() {
					// Tiny windows allow one violation; the second exhausts
					// the budget.
					for i := 0; i < 4 && !src.Firing(); i++ {
						m.RecordSearch(metrics.SearchRecord{}, 2*time.Millisecond)
					}
					if !src.Firing() {
						t.Fatal("slo latch did not fire")
					}
				}
				recover := func() {
					// Fast queries overwrite the violation slots in the
					// 8-wide ring, restoring the budget.
					for i := 0; i < 16 && src.Firing(); i++ {
						m.RecordSearch(metrics.SearchRecord{}, time.Microsecond)
					}
					if src.Firing() {
						t.Fatal("slo latch did not recover on fast queries")
					}
				}
				return bus, breach, recover, func() { m.Reset() }
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bus, breach, recover, reset := tc.setup(t)
			src := bus.Lookup(tc.source)
			if src == nil {
				t.Fatalf("source %q not registered on the bus", tc.source)
			}
			if src.Firing() {
				t.Fatal("latch firing before any traffic")
			}

			breach()
			if got := src.Fires(); got != 1 {
				t.Fatalf("after breach: %d fires, want 1", got)
			}
			breach() // still in breach: re-observation must not re-fire
			if got := src.Fires(); got != 1 {
				t.Fatalf("latched breach re-fired: %d fires, want 1", got)
			}

			recover()
			if got := src.Recoveries(); got != 1 {
				t.Fatalf("after recovery: %d recoveries, want 1", got)
			}
			breach() // recovery re-armed the latch
			if got := src.Fires(); got != 2 {
				t.Fatalf("breach after recovery: %d fires, want 2", got)
			}

			reset() // registry Reset re-arms while firing...
			if src.Firing() {
				t.Fatal("latch still firing after registry Reset")
			}
			if got := src.Recoveries(); got != 1 {
				t.Fatalf("registry Reset counted a recovery: %d, want 1", got)
			}
			breach() // ...and the next breach is a fresh edge
			if got := src.Fires(); got != 3 {
				t.Fatalf("breach after Reset: %d fires, want 3", got)
			}

			// Every edge above went through the shared bus: 3 breaches + 1
			// recovery from this source (Reset publishes nothing).
			var fired, recovered int
			for _, ev := range bus.History() {
				if ev.Source != tc.source {
					continue
				}
				if ev.Firing {
					fired++
				} else {
					recovered++
				}
			}
			if fired != 3 || recovered != 1 {
				t.Fatalf("bus history: %d breach / %d recovery events, want 3/1", fired, recovered)
			}
		})
	}
}
