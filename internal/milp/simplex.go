// Package milp provides a small, exact mixed-integer linear programming
// solver: a two-phase primal simplex for the LP relaxation and depth-first
// branch & bound for integrality. The VAQ paper (§III-C) formulates
// subspace bit allocation as "maximize Wᵀ·y subject to A·y ≤ b, y ≥ 0,
// y ∈ Zᵈ" and notes that "standard solvers with branch and bound
// optimization can solve it efficiently"; this package is that solver.
//
// Problems in this repository are tiny (≤ 64 integer variables, a few
// hundred constraints), so the implementation favours robustness: a dense
// tableau and Bland's anti-cycling pivot rule.
package milp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a linear constraint.
type Sense int

const (
	LE Sense = iota // Σ aᵢxᵢ <= b
	GE              // Σ aᵢxᵢ >= b
	EQ              // Σ aᵢxᵢ == b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Constraint is one row of the constraint system. Coeffs must have exactly
// one entry per problem variable.
type Constraint struct {
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// Problem is a linear (or mixed-integer) program in maximization form.
// All variables are implicitly >= 0; use Lower/Upper for tighter bounds.
type Problem struct {
	// Objective coefficients; the solver maximizes Objective · x.
	Objective []float64
	// Constraints to satisfy.
	Constraints []Constraint
	// Integer marks which variables must take integral values
	// (ignored by SolveLP; nil means all-continuous).
	Integer []bool
	// Lower holds per-variable lower bounds (nil = all zero).
	Lower []float64
	// Upper holds per-variable upper bounds (nil or +Inf entries = unbounded).
	Upper []float64
}

// Solution holds an optimal assignment.
type Solution struct {
	X         []float64
	Objective float64
}

// ErrInfeasible is returned when no assignment satisfies the constraints.
var ErrInfeasible = errors.New("milp: infeasible")

// ErrUnbounded is returned when the objective can grow without limit.
var ErrUnbounded = errors.New("milp: unbounded")

func (p *Problem) validate() (int, error) {
	n := len(p.Objective)
	if n == 0 {
		return 0, errors.New("milp: empty objective")
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return 0, fmt.Errorf("milp: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), n)
		}
	}
	if p.Integer != nil && len(p.Integer) != n {
		return 0, fmt.Errorf("milp: Integer length %d, want %d", len(p.Integer), n)
	}
	if p.Lower != nil && len(p.Lower) != n {
		return 0, fmt.Errorf("milp: Lower length %d, want %d", len(p.Lower), n)
	}
	if p.Upper != nil && len(p.Upper) != n {
		return 0, fmt.Errorf("milp: Upper length %d, want %d", len(p.Upper), n)
	}
	return n, nil
}

// expandedConstraints returns the constraint rows including bound rows.
func (p *Problem) expandedConstraints(n int) []Constraint {
	rows := make([]Constraint, 0, len(p.Constraints)+2*n)
	rows = append(rows, p.Constraints...)
	for j := 0; j < n; j++ {
		if p.Lower != nil && p.Lower[j] > 0 {
			c := Constraint{Coeffs: make([]float64, n), Sense: GE, RHS: p.Lower[j]}
			c.Coeffs[j] = 1
			rows = append(rows, c)
		}
		if p.Upper != nil && !math.IsInf(p.Upper[j], 1) {
			c := Constraint{Coeffs: make([]float64, n), Sense: LE, RHS: p.Upper[j]}
			c.Coeffs[j] = 1
			rows = append(rows, c)
		}
	}
	return rows
}

// SolveLP solves the continuous relaxation (integrality ignored).
func SolveLP(p *Problem) (*Solution, error) {
	n, err := p.validate()
	if err != nil {
		return nil, err
	}
	rows := p.expandedConstraints(n)
	return simplex(p.Objective, rows)
}

const eps = 1e-9

// simplex runs the two-phase primal simplex method with Bland's rule.
func simplex(objective []float64, rows []Constraint) (*Solution, error) {
	n := len(objective)
	m := len(rows)
	// Count auxiliary columns.
	nSlack := 0
	nArt := 0
	for _, r := range rows {
		switch r.Sense {
		case LE, GE:
			nSlack++
		}
	}
	// Artificial variables: needed for GE and EQ rows (and LE rows with
	// negative RHS, which normalize to GE-like rows). Normalize first.
	norm := make([]Constraint, m)
	for i, r := range rows {
		c := Constraint{Coeffs: append([]float64(nil), r.Coeffs...), Sense: r.Sense, RHS: r.RHS}
		if c.RHS < 0 {
			for j := range c.Coeffs {
				c.Coeffs[j] = -c.Coeffs[j]
			}
			c.RHS = -c.RHS
			switch c.Sense {
			case LE:
				c.Sense = GE
			case GE:
				c.Sense = LE
			}
		}
		norm[i] = c
	}
	nSlack = 0
	for _, r := range norm {
		if r.Sense != EQ {
			nSlack++
		}
		if r.Sense != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt
	// Tableau: m rows x (total + 1); last column is RHS.
	t := make([][]float64, m)
	basis := make([]int, m)
	slackCol := n
	artCol := n + nSlack
	artStart := artCol
	for i, r := range norm {
		row := make([]float64, total+1)
		copy(row, r.Coeffs)
		row[total] = r.RHS
		switch r.Sense {
		case LE:
			row[slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			basis[i] = artCol
			artCol++
		}
		t[i] = row
	}

	pivot := func(pr, pc int) {
		pv := t[pr][pc]
		inv := 1 / pv
		for j := 0; j <= total; j++ {
			t[pr][j] *= inv
		}
		for i := 0; i < m; i++ {
			if i == pr {
				continue
			}
			f := t[i][pc]
			if f == 0 {
				continue
			}
			for j := 0; j <= total; j++ {
				t[i][j] -= f * t[pr][j]
			}
		}
		basis[pr] = pc
	}

	// run optimizes the objective vector obj (maximization) over the
	// current tableau. allowed limits candidate entering columns.
	run := func(obj []float64, limit int) error {
		// Reduced costs: z_j - c_j computed from scratch each iteration
		// (m and n are tiny; clarity over speed).
		for iter := 0; iter < 10000; iter++ {
			// reduced[j] = obj[j] - sum_i obj[basis[i]] * t[i][j]
			entering := -1
			var bestRed float64
			for j := 0; j < limit; j++ {
				red := obj[j]
				for i := 0; i < m; i++ {
					if basis[i] < len(obj) && obj[basis[i]] != 0 {
						red -= obj[basis[i]] * t[i][j]
					}
				}
				if red > eps {
					// Bland's rule: choose the lowest-index improving
					// column. (bestRed kept for clarity/debugging.)
					entering = j
					bestRed = red
					break
				}
			}
			_ = bestRed
			if entering == -1 {
				return nil // optimal
			}
			// Ratio test (Bland: smallest index on ties).
			leave := -1
			var bestRatio float64
			for i := 0; i < m; i++ {
				if t[i][entering] > eps {
					ratio := t[i][total] / t[i][entering]
					if leave == -1 || ratio < bestRatio-eps ||
						(math.Abs(ratio-bestRatio) <= eps && basis[i] < basis[leave]) {
						leave = i
						bestRatio = ratio
					}
				}
			}
			if leave == -1 {
				return ErrUnbounded
			}
			pivot(leave, entering)
		}
		return errors.New("milp: simplex iteration limit exceeded")
	}

	// Phase 1: maximize -(sum of artificials).
	if nArt > 0 {
		obj1 := make([]float64, total)
		for j := artStart; j < artStart+nArt; j++ {
			obj1[j] = -1
		}
		if err := run(obj1, total); err != nil {
			return nil, err
		}
		// Check artificial sum ~ 0.
		var artSum float64
		for i := 0; i < m; i++ {
			if basis[i] >= artStart {
				artSum += t[i][total]
			}
		}
		if artSum > 1e-6 {
			return nil, ErrInfeasible
		}
		// Drive remaining artificials out of the basis when possible.
		for i := 0; i < m; i++ {
			if basis[i] >= artStart {
				done := false
				for j := 0; j < artStart && !done; j++ {
					if math.Abs(t[i][j]) > eps {
						pivot(i, j)
						done = true
					}
				}
				// If the row is all zeros over structural+slack columns it
				// is redundant; leaving the artificial basic at value 0 is
				// harmless as long as phase 2 never lets it grow — ensured
				// by restricting entering columns to < artStart below.
			}
		}
	}

	// Phase 2: maximize the real objective over structural + slack columns.
	obj2 := make([]float64, total)
	copy(obj2, objective)
	if err := run(obj2, artStart); err != nil {
		return nil, err
	}
	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = t[i][total]
		}
	}
	var objVal float64
	for j := 0; j < n; j++ {
		if x[j] < 0 && x[j] > -1e-9 {
			x[j] = 0
		}
		objVal += objective[j] * x[j]
	}
	return &Solution{X: x, Objective: objVal}, nil
}
