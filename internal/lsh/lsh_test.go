package lsh

import (
	"math/rand"
	"testing"

	"vaq/internal/eval"
	"vaq/internal/vec"
)

func clustered(rng *rand.Rand, n, d int) *vec.Matrix {
	centers := vec.NewMatrix(16, d)
	for i := range centers.Data {
		centers.Data[i] = float32(rng.NormFloat64() * 4)
	}
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		c := centers.Row(rng.Intn(16))
		r := x.Row(i)
		for j := 0; j < d; j++ {
			r[j] = c[j] + float32(rng.NormFloat64()*0.5)
		}
	}
	return x
}

// perturbedQueries draws database rows and jitters them, so true neighbors
// exist at LSH-findable distances.
func perturbedQueries(rng *rand.Rand, x *vec.Matrix, nq int) *vec.Matrix {
	q := vec.NewMatrix(nq, x.Cols)
	for i := 0; i < nq; i++ {
		src := x.Row(rng.Intn(x.Rows))
		dst := q.Row(i)
		for j := range dst {
			dst[j] = src[j] + float32(rng.NormFloat64()*0.2)
		}
	}
	return q
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(vec.NewMatrix(0, 4), Config{}); err == nil {
		t.Fatal("empty must fail")
	}
	x := clustered(rand.New(rand.NewSource(1)), 50, 8)
	if _, err := Build(x, Config{Hashes: 17}); err == nil {
		t.Fatal("too many hashes must fail")
	}
	if _, err := Build(x, Config{Probes: -1}); err == nil {
		t.Fatal("negative probes must fail")
	}
}

func TestSearchFindsClusterNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := clustered(rng, 3000, 16)
	ix, err := Build(x, Config{Tables: 10, Hashes: 6, Probes: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3000 {
		t.Fatalf("len %d", ix.Len())
	}
	queries := perturbedQueries(rng, x, 20)
	gt, _ := eval.GroundTruth(x, queries, 10)
	results := make([][]int, queries.Rows)
	for qi := 0; qi < queries.Rows; qi++ {
		res, err := ix.Search(queries.Row(qi), 10)
		if err != nil {
			t.Fatal(err)
		}
		results[qi] = eval.IDs(res)
	}
	recall := eval.Recall(results, gt, 10)
	if recall < 0.5 {
		t.Fatalf("LSH recall@10 = %v too low", recall)
	}
	// Candidates must be a strict subset of the database (pruning).
	cands := ix.CandidateCount(queries.Row(0))
	if cands <= 0 || cands >= 3000 {
		t.Fatalf("candidate count %d implausible", cands)
	}
}

func TestMoreTablesMoreRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := clustered(rng, 2000, 12)
	queries := perturbedQueries(rng, x, 15)
	gt, _ := eval.GroundTruth(x, queries, 10)
	recallWith := func(tables int) float64 {
		ix, err := Build(x, Config{Tables: tables, Hashes: 8, Probes: 2, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		results := make([][]int, queries.Rows)
		for qi := 0; qi < queries.Rows; qi++ {
			res, _ := ix.Search(queries.Row(qi), 10)
			results[qi] = eval.IDs(res)
		}
		return eval.Recall(results, gt, 10)
	}
	few, many := recallWith(2), recallWith(16)
	if many < few-0.05 {
		t.Fatalf("more tables should not reduce recall: %v vs %v", few, many)
	}
}

func TestSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := clustered(rng, 200, 8)
	ix, err := Build(x, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(make([]float32, 3), 5); err == nil {
		t.Fatal("bad dim must fail")
	}
	if _, err := ix.Search(x.Row(0), 0); err == nil {
		t.Fatal("k=0 must fail")
	}
}

func TestExplicitWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := clustered(rng, 300, 8)
	ix, err := Build(x, Config{Width: 3.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ix.width != 3.5 {
		t.Fatalf("width %v", ix.width)
	}
}
