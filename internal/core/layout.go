package core

import (
	"math"
	"time"

	"vaq/internal/quantizer"
	"vaq/internal/trace"
)

// ScanLayout selects the physical layout of the encoded dataset that the
// scan kernels read. The canonical row-major codes (original id order) are
// always kept — they are what Add, serialization and decoding operate on —
// but the default layout additionally derives a cache-friendly copy the
// query kernels scan instead.
type ScanLayout int

const (
	// LayoutBlocked (default) stores a second, scan-optimized copy of the
	// codes: each TI cluster's members are physically contiguous in the
	// cluster's ascending-centroid-distance order, and within a cluster
	// codes are group-transposed in blocks of blockLanes — for one block,
	// all subspace-0 indices are adjacent, then all subspace-1 indices,
	// and so on — so LUT accumulation streams memory sequentially.
	// Subspaces whose dictionaries hold at most 256 entries (the common
	// case under the paper's bit budgets) are stored as uint8, halving
	// scan bandwidth; wider subspaces keep uint16.
	LayoutBlocked ScanLayout = iota
	// LayoutRowMajor is the legacy layout: kernels scan the canonical
	// row-major codes directly, gathering one row per surviving code.
	// Kept for A/B benchmarking.
	LayoutRowMajor
)

func (l ScanLayout) String() string {
	switch l {
	case LayoutBlocked:
		return "blocked"
	case LayoutRowMajor:
		return "rowmajor"
	}
	return "unknown"
}

// blockLanes is the number of codes per transposed block. 16 lanes keep a
// whole narrow block (blockLanes x subspaces bytes) inside a few cache
// lines while leaving the per-subspace groups long enough to unroll.
// Must be a power of two (the kernels use mask arithmetic).
const blockLanes = 16

// blockedStore is the scan-optimized physical copy of the encoded dataset
// used by LayoutBlocked (see the constant's doc for the layout itself).
// Cluster c occupies physical positions [start[c], start[c+1]); position p
// holds the code of original id perm[p]. Narrow (<=256-entry dictionary)
// subspaces live in data8, wide ones in data16; ord[s] is subspace s's
// ordinal within its width class, so the group of subspace s inside a
// block of cnt lanes starting at physical position q begins at byte
// q*mN + ord[s]*cnt of data8 (respectively element q*mW + ord[s]*cnt of
// data16).
type blockedStore struct {
	m      int    // subspaces per code
	mN, mW int    // narrow / wide subspace counts (mN + mW == m)
	narrow []bool // per subspace: indices fit uint8
	ord    []int  // per subspace: ordinal within its width class
	perm   []int32
	start  []int32 // len = clusters+1; start[c] is cluster c's first position
	data8  []uint8
	data16 []uint16
}

// buildBlockedStore derives the blocked layout from the canonical codes
// and the TI cluster structure. It is deterministic given its inputs, so
// it is rebuilt (not serialized) on load and after Add.
func buildBlockedStore(cb *quantizer.Codebooks, codes *quantizer.Codes, ti *tiIndex) *blockedStore {
	m := codes.M
	bs := &blockedStore{m: m, narrow: make([]bool, m), ord: make([]int, m)}
	for s := 0; s < m; s++ {
		if cb.Books[s].Rows <= 256 {
			bs.narrow[s] = true
			bs.ord[s] = bs.mN
			bs.mN++
		} else {
			bs.ord[s] = bs.mW
			bs.mW++
		}
	}
	n := codes.N
	bs.perm = make([]int32, n)
	bs.start = make([]int32, len(ti.clusters)+1)
	bs.data8 = make([]uint8, n*bs.mN)
	bs.data16 = make([]uint16, n*bs.mW)
	pos := 0
	for c, members := range ti.clusters {
		bs.start[c] = int32(pos)
		for b := 0; b < len(members); b += blockLanes {
			cnt := len(members) - b
			if cnt > blockLanes {
				cnt = blockLanes
			}
			q := pos + b
			off8, off16 := q*bs.mN, q*bs.mW
			for lane := 0; lane < cnt; lane++ {
				id := members[b+lane].id
				bs.perm[q+lane] = int32(id)
				row := codes.Row(id)
				for s := 0; s < m; s++ {
					if bs.narrow[s] {
						bs.data8[off8+bs.ord[s]*cnt+lane] = uint8(row[s])
					} else {
						bs.data16[off16+bs.ord[s]*cnt+lane] = row[s]
					}
				}
			}
		}
		pos += len(members)
	}
	bs.start[len(ti.clusters)] = int32(pos)
	return bs
}

// accumChunk computes the first-EA-chunk partial distances for every lane
// of one transposed block: acc[j] receives lane j's sum over subspaces
// [0, chunk), each lane's terms added in subspace order (the association
// every kernel shares). Streaming the block subspace-major replaces one
// serial dependency chain per lane with blockLanes independent
// accumulators, so the loads and adds of the hottest stretch of a TI+EA
// scan — most survivors abandon at the first chunk boundary — can issue
// in parallel.
func (bs *blockedStore) accumChunk(dist []float32, offsets []int, q, cnt, chunk int, acc *[blockLanes]float32) {
	for j := 0; j < cnt; j++ {
		acc[j] = 0
	}
	off8, off16 := q*bs.mN, q*bs.mW
	for sI := 0; sI < chunk; sI++ {
		table := dist[offsets[sI]:offsets[sI+1]]
		if bs.narrow[sI] {
			o := off8 + bs.ord[sI]*cnt
			g := bs.data8[o : o+cnt]
			j := 0
			for ; j+4 <= cnt; j += 4 {
				a0 := table[g[j]]
				a1 := table[g[j+1]]
				a2 := table[g[j+2]]
				a3 := table[g[j+3]]
				acc[j] += a0
				acc[j+1] += a1
				acc[j+2] += a2
				acc[j+3] += a3
			}
			for ; j < cnt; j++ {
				acc[j] += table[g[j]]
			}
		} else {
			o := off16 + bs.ord[sI]*cnt
			g := bs.data16[o : o+cnt]
			j := 0
			for ; j+4 <= cnt; j += 4 {
				a0 := table[g[j]]
				a1 := table[g[j+1]]
				a2 := table[g[j+2]]
				a3 := table[g[j+3]]
				acc[j] += a0
				acc[j+1] += a1
				acc[j+2] += a2
				acc[j+3] += a3
			}
			for ; j < cnt; j++ {
				acc[j] += table[g[j]]
			}
		}
	}
}

// eaResumeLane continues one lane (one code) of a transposed block from
// subspace sI with partial distance d already accumulated (by accumChunk),
// keeping the early-abandon cadence of eaAccumulate: q is the block's
// first physical position, cnt its lane count, lane the code's index
// within it. Accumulation order and float association match the row
// kernels exactly, so both layouts produce bit-identical distances and
// prune stats; the returned lookup count is the absolute subspace index
// reached, covering the precomputed prefix.
func (bs *blockedStore) eaResumeLane(dist []float32, offsets []int, d float32, sI, q, cnt, lane, useSub, check int, bsf float32, notFull bool) (float32, int, bool) {
	if bs.mW == 0 {
		// All-narrow codes (every dictionary <= 256 entries — the common
		// case under the paper's budgets): ord[s] == s, everything lives
		// in data8, and the per-subspace width branch disappears.
		return bs.eaResumeLaneNarrow(dist, offsets, d, sI, q, cnt, lane, useSub, check, bsf, notFull)
	}
	base8 := q*bs.mN + lane
	base16 := q*bs.mW + lane
	if !notFull {
		for sI+check <= useSub {
			end := sI + check
			for ; sI < end; sI++ {
				var code int
				if bs.narrow[sI] {
					code = int(bs.data8[base8+bs.ord[sI]*cnt])
				} else {
					code = int(bs.data16[base16+bs.ord[sI]*cnt])
				}
				d += dist[offsets[sI]+code]
			}
			if d > bsf {
				return d, sI, true
			}
		}
	}
	for ; sI < useSub; sI++ {
		var code int
		if bs.narrow[sI] {
			code = int(bs.data8[base8+bs.ord[sI]*cnt])
		} else {
			code = int(bs.data16[base16+bs.ord[sI]*cnt])
		}
		d += dist[offsets[sI]+code]
	}
	return d, useSub, false
}

// eaResumeLaneNarrow is eaResumeLane for all-uint8 stores: the lane's
// terms sit cnt bytes apart starting at q*mN+lane. Same cadence, same
// sequential float association.
func (bs *blockedStore) eaResumeLaneNarrow(dist []float32, offsets []int, d float32, sI, q, cnt, lane, useSub, check int, bsf float32, notFull bool) (float32, int, bool) {
	g := bs.data8[q*bs.mN+lane:]
	if !notFull {
		for sI+check <= useSub {
			end := sI + check
			for ; sI+4 <= end; sI += 4 {
				a0 := dist[offsets[sI]+int(g[sI*cnt])]
				a1 := dist[offsets[sI+1]+int(g[(sI+1)*cnt])]
				a2 := dist[offsets[sI+2]+int(g[(sI+2)*cnt])]
				a3 := dist[offsets[sI+3]+int(g[(sI+3)*cnt])]
				d += a0
				d += a1
				d += a2
				d += a3
			}
			for ; sI < end; sI++ {
				d += dist[offsets[sI]+int(g[sI*cnt])]
			}
			if d > bsf {
				return d, sI, true
			}
		}
	}
	for ; sI+4 <= useSub; sI += 4 {
		a0 := dist[offsets[sI]+int(g[sI*cnt])]
		a1 := dist[offsets[sI+1]+int(g[(sI+1)*cnt])]
		a2 := dist[offsets[sI+2]+int(g[(sI+2)*cnt])]
		a3 := dist[offsets[sI+3]+int(g[(sI+3)*cnt])]
		d += a0
		d += a1
		d += a2
		d += a3
	}
	for ; sI < useSub; sI++ {
		d += dist[offsets[sI]+int(g[sI*cnt])]
	}
	return d, useSub, false
}

// scanHeapBlocked is the exhaustive scan over the blocked layout: blocks
// stream sequentially, and each subspace group feeds a 4-wide unrolled
// accumulation into per-lane partial sums. Per-lane addition order is the
// subspace order, matching scanHeap's float association exactly.
func (s *Searcher) scanHeapBlocked(useSub int) {
	bs := s.ix.blocked
	dist, offsets := s.lut.Dist, s.lut.Offsets
	var acc [blockLanes]float32
	for c := 0; c+1 < len(bs.start); c++ {
		cEnd := int(bs.start[c+1])
		for q := int(bs.start[c]); q < cEnd; q += blockLanes {
			cnt := cEnd - q
			if cnt > blockLanes {
				cnt = blockLanes
			}
			for j := 0; j < cnt; j++ {
				acc[j] = 0
			}
			off8, off16 := q*bs.mN, q*bs.mW
			for sI := 0; sI < useSub; sI++ {
				table := dist[offsets[sI]:offsets[sI+1]]
				if bs.narrow[sI] {
					o := off8 + bs.ord[sI]*cnt
					g := bs.data8[o : o+cnt]
					j := 0
					for ; j+4 <= cnt; j += 4 {
						a0 := table[g[j]]
						a1 := table[g[j+1]]
						a2 := table[g[j+2]]
						a3 := table[g[j+3]]
						acc[j] += a0
						acc[j+1] += a1
						acc[j+2] += a2
						acc[j+3] += a3
					}
					for ; j < cnt; j++ {
						acc[j] += table[g[j]]
					}
				} else {
					o := off16 + bs.ord[sI]*cnt
					g := bs.data16[o : o+cnt]
					j := 0
					for ; j+4 <= cnt; j += 4 {
						a0 := table[g[j]]
						a1 := table[g[j+1]]
						a2 := table[g[j+2]]
						a3 := table[g[j+3]]
						acc[j] += a0
						acc[j+1] += a1
						acc[j+2] += a2
						acc[j+3] += a3
					}
					for ; j < cnt; j++ {
						acc[j] += table[g[j]]
					}
				}
			}
			for j := 0; j < cnt; j++ {
				s.topk.Push(int(bs.perm[q+j]), acc[j])
			}
		}
	}
	s.stats.CodesConsidered = s.ix.codes.N
	s.stats.Lookups = s.ix.codes.N * useSub
}

// scanTIEABlocked is scanTIEA over the blocked layout: the visited
// cluster's codes are physically contiguous (in exactly the member order
// the triangle-inequality walk uses), so survivors accumulate out of a
// cache-resident block instead of gathering random rows. When the first
// survivor of a block is reached, accumChunk computes the first-EA-chunk
// partials for the whole block in one subspace-major stream; each
// survivor then tests its precomputed partial against the threshold
// current at ITS scan time — decisions stay per-lane, so results and
// SearchStats match the canonical kernel bit for bit. Partials computed
// for lanes the TI bound later skips are a physical-layout artifact and
// are not counted in Lookups, which (like every other stat) counts the
// algorithmic work of the canonical scan.
func (s *Searcher) scanTIEABlocked(qz []float32, visitFrac float64, useSub int) {
	ix := s.ix
	ti := ix.ti
	bs := ix.blocked
	dist, offsets := s.lut.Dist, s.lut.Offsets
	check := ix.cfg.EACheckEvery
	rec := s.rec
	rankStart := rec.Clock()
	visit := s.orderClusters(qz, visitFrac)
	if rec.Active() {
		rec.Add(trace.Span{Name: trace.SpanClusterRank, Start: rankStart, Dur: rec.Clock() - rankStart, Count: visit})
	}
	s.stats.ClustersVisited = visit
	// Aggregate EA-resume span: most survivors abandon straight off the
	// precomputed first chunk, so the (rare) resume stretches are summed
	// into one span instead of flooding the ring with microspans.
	var resumeStart, resumeDur time.Duration
	resumeCnt := 0
	// chunk == check exactly when the canonical cadence has at least one
	// abandon boundary; with fewer usable subspaces than the cadence the
	// precompute covers the whole (boundary-free) accumulation.
	chunk := check
	if chunk > useSub {
		chunk = useSub
	}
	var acc [blockLanes]float32
	accQ := -1 // block (by first physical position) acc currently holds
	for v := 0; v < visit; v++ {
		c := s.clustIdx[v]
		rk := clampRank(v, len(s.stats.TISkipsByRank))
		var spanStart time.Duration
		var before SearchStats
		if rec.Active() {
			spanStart = rec.Clock()
			before = s.stats
		}
		// The ranking sorted squared distances; the triangle bound needs
		// the plain distance, taken only for the visited fraction.
		dq := float32(math.Sqrt(float64(s.clustD[c])))
		members := ti.clusters[c]
		cStart := int(bs.start[c])
		s.stats.CodesConsidered += len(members)
		for mi, e := range members {
			if s.topk.Pruning() {
				bsfSq := s.topk.Threshold()
				diff := dq - e.dist
				if diff < 0 {
					diff = -diff
				}
				if diff*diff >= bsfSq {
					if e.dist >= dq {
						// Members are sorted ascending by ds: every later
						// member has an even larger bound. Stop the cluster.
						s.stats.CodesSkippedTI += len(members) - mi
						if s.stats.TISkipsByRank != nil {
							s.stats.TISkipsByRank[rk] += uint32(len(members) - mi)
						}
						break
					}
					s.stats.CodesSkippedTI++
					if s.stats.TISkipsByRank != nil {
						s.stats.TISkipsByRank[rk]++
					}
					continue
				}
			}
			blockStart := mi &^ (blockLanes - 1)
			cnt := len(members) - blockStart
			if cnt > blockLanes {
				cnt = blockLanes
			}
			q := cStart + blockStart
			if q != accQ {
				bs.accumChunk(dist, offsets, q, cnt, chunk, &acc)
				accQ = q
			}
			bsf := s.topk.Threshold()
			notFull := !s.topk.Pruning()
			d := acc[mi-blockStart]
			if !notFull && chunk == check && d > bsf {
				// First-boundary abandon straight off the precomputed
				// partial — the canonical kernel's commonest exit.
				s.stats.Lookups += chunk
				s.stats.CodesAbandonedEA++
				if s.stats.AbandonDepths != nil {
					s.stats.AbandonDepths[chunk]++
				}
				continue
			}
			var t0 time.Duration
			if rec.Active() {
				t0 = rec.Clock()
			}
			d, lookups, abandoned := bs.eaResumeLane(dist, offsets, d, chunk,
				q, cnt, mi-blockStart, useSub, check, bsf, notFull)
			if rec.Active() {
				if resumeCnt == 0 {
					resumeStart = t0
				}
				resumeDur += rec.Clock() - t0
				resumeCnt++
			}
			s.stats.Lookups += lookups
			if abandoned {
				s.stats.CodesAbandonedEA++
				if s.stats.AbandonDepths != nil {
					s.stats.AbandonDepths[lookups]++
				}
			} else {
				s.topk.Push(e.id, d)
			}
		}
		if rec.Active() {
			rec.Add(clusterScanSpan(spanStart, rec.Clock(), c, v, len(members), &before, &s.stats))
		}
	}
	if resumeCnt > 0 {
		rec.Add(trace.Span{Name: trace.SpanEAResume, Start: resumeStart, Dur: resumeDur, Count: resumeCnt})
	}
}
