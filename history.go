package vaq

import (
	"vaq/internal/history"
)

// HistoryConfig tunes a metrics history collector: sampling cadence,
// per-tier ring capacities and bucket widths, and the multi-window
// burn-rate rule ladder (see the field docs in internal/history.Config).
type HistoryConfig = history.Config

// HistoryCollector is an armed metrics history collector: a background
// goroutine sampling the index's telemetry into per-series lock-free ring
// buffers with tiered retention (raw cadence → 10s → 1m aggregates).
// Obtain one with EnableHistory; query it with Series/Dump or through the
// /debug/vaq/history endpoint (PublishHistory).
type HistoryCollector = history.Collector

// HistorySeries is one retained series; its Range, RateOverWindow,
// DeltaOverWindow and Last methods are safe to call while sampling runs.
type HistorySeries = history.Series

// HistoryDump is a frozen capture of everything a collector retains — the
// JSON body of /debug/vaq/history and the history.json incident-bundle
// member.
type HistoryDump = history.Dump

// BurnRule is one window of the multi-window multi-burn-rate SLO alert
// ladder a collector evaluates (default: fast 5m at 14.4x plus slow 1h at
// 6x the allowed error rate).
type BurnRule = history.BurnRule

// DefaultBurnRules returns the default two-window burn-rate ladder.
func DefaultBurnRules() []BurnRule { return history.DefaultBurnRules() }

// ValidateHistoryDump checks a dump's schema version and per-series
// invariants (monotonic raw timestamps, well-formed downsampled buckets).
func ValidateHistoryDump(d *HistoryDump) error { return history.ValidateDump(d) }

// PublishHistory registers a collector under name on the
// /debug/vaq/history endpoint (JSON dumps and ranges, ?format=text
// sparkline view). Publishing nil removes the name.
func PublishHistory(name string, c *HistoryCollector) { history.Publish(name, c) }

// EnableHistory arms a metrics history collector on the index: trends
// (QPS, prune rate, drift slope, recall), downsampled retention, and —
// when an SLO is configured and cfg.DisableBurn is false — canonical
// multi-window multi-burn-rate alerting (vaq.burn.* sources on the alert
// bus) replacing the instantaneous SLO exhaustion edge while armed. name
// labels the merged target (use the published index name). Disarm with
// DisableHistory.
func (ix *Index) EnableHistory(name string, cfg HistoryConfig) (*HistoryCollector, error) {
	return ix.inner.EnableHistory(name, cfg)
}

// DisableHistory stops the collector after a final sweep and hands SLO
// alerting back to the instantaneous exhaustion edge. No-op when none is
// armed.
func (ix *Index) DisableHistory() { ix.inner.DisableHistory() }

// History returns the armed collector, or nil.
func (ix *Index) History() *HistoryCollector { return ix.inner.History() }

// EnableHistory arms a history collector on the sharded index: the merged
// registry is watched under name and every per-shard registry under
// name/shard-i, so per-shard trends are queryable next to the merged ones.
// Burn-rate rules arm only on the merged registry (the one carrying the
// end-to-end SLO).
func (ix *ShardedIndex) EnableHistory(name string, cfg HistoryConfig) (*HistoryCollector, error) {
	return ix.inner.EnableHistory(name, cfg)
}

// DisableHistory stops the collector after a final sweep and hands SLO
// alerting back to the instantaneous exhaustion edge. No-op when none is
// armed.
func (ix *ShardedIndex) DisableHistory() { ix.inner.DisableHistory() }

// History returns the armed collector, or nil.
func (ix *ShardedIndex) History() *HistoryCollector { return ix.inner.History() }
