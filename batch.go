package vaq

import (
	"fmt"
	"runtime"
	"sync"
)

// SearchBatch answers many queries, distributing them across worker
// goroutines (one reusable Searcher each). Results are returned in query
// order. workers <= 0 uses GOMAXPROCS.
func (ix *Index) SearchBatch(queries [][]float32, k int, opt SearchOptions, workers int) ([][]Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("vaq: k must be >= 1, got %d", k)
	}
	n := len(queries)
	out := make([][]Result, n)
	if n == 0 {
		return out, nil
	}
	for i, q := range queries {
		if len(q) != ix.Dim() {
			return nil, fmt.Errorf("vaq: query %d has dimension %d, index has %d", i, len(q), ix.Dim())
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := ix.NewSearcher()
			for qi := range next {
				res, err := s.Search(queries[qi], k, opt)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("vaq: query %d: %w", qi, err)
					}
					mu.Unlock()
					continue
				}
				out[qi] = res
			}
		}()
	}
	for qi := 0; qi < n; qi++ {
		next <- qi
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
