package core

import (
	"math/rand"
	"testing"
)

// The Figure 7 cascade, asserted deterministically through work counters
// instead of wall time: EA performs strictly fewer lookups than the plain
// scan, and TI+EA considers fewer codes and performs fewer lookups than
// EA.
func TestSearchStatsCascade(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	x := skewedData(rng, 3000, 24, 1.3)
	ix, err := Build(x, x, Config{NumSubspaces: 8, Budget: 48, Seed: 85, TIClusters: 40})
	if err != nil {
		t.Fatal(err)
	}
	s := ix.NewSearcher()
	var heapLookups, eaLookups, tieaLookups int
	var tieaConsidered int
	queries := 10
	for trial := 0; trial < queries; trial++ {
		q := append([]float32(nil), x.Row(rng.Intn(x.Rows))...)
		for j := range q {
			q[j] += float32(rng.NormFloat64() * 0.05)
		}
		if _, err := s.Search(q, 10, SearchOptions{Mode: ModeHeap}); err != nil {
			t.Fatal(err)
		}
		st := s.LastStats()
		if st.CodesConsidered != 3000 || st.Lookups != 3000*8 {
			t.Fatalf("heap stats wrong: %+v", st)
		}
		if st.ClustersVisited != 0 || st.CodesSkippedTI != 0 || st.CodesAbandonedEA != 0 {
			t.Fatalf("heap should not prune: %+v", st)
		}
		heapLookups += st.Lookups

		if _, err := s.Search(q, 10, SearchOptions{Mode: ModeEA}); err != nil {
			t.Fatal(err)
		}
		st = s.LastStats()
		if st.CodesConsidered != 3000 {
			t.Fatalf("EA must consider all codes: %+v", st)
		}
		if st.CodesAbandonedEA == 0 {
			t.Fatalf("EA abandoned nothing on skewed data: %+v", st)
		}
		eaLookups += st.Lookups

		if _, err := s.Search(q, 10, SearchOptions{Mode: ModeTIEA, VisitFrac: 0.25}); err != nil {
			t.Fatal(err)
		}
		st = s.LastStats()
		if st.ClustersVisited != 10 {
			t.Fatalf("expected 10 visited clusters: %+v", st)
		}
		tieaLookups += st.Lookups
		tieaConsidered += st.CodesConsidered
	}
	if eaLookups >= heapLookups {
		t.Fatalf("EA (%d lookups) must beat Heap (%d)", eaLookups, heapLookups)
	}
	if tieaLookups >= eaLookups {
		t.Fatalf("TI+EA (%d lookups) must beat EA (%d)", tieaLookups, eaLookups)
	}
	if tieaConsidered >= queries*3000 {
		t.Fatalf("TI must skip whole clusters: considered %d", tieaConsidered)
	}
}

// Accounting identity inside visited clusters: every considered code is
// either TI-skipped, EA-abandoned, or fully accumulated.
func TestSearchStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	x := skewedData(rng, 1200, 16, 1.0)
	ix, err := Build(x, x, Config{NumSubspaces: 4, Budget: 24, Seed: 86, TIClusters: 15})
	if err != nil {
		t.Fatal(err)
	}
	s := ix.NewSearcher()
	for trial := 0; trial < 8; trial++ {
		q := x.Row(rng.Intn(x.Rows))
		if _, err := s.Search(q, 5, SearchOptions{Mode: ModeTIEA, VisitFrac: 0.5}); err != nil {
			t.Fatal(err)
		}
		st := s.LastStats()
		touched := st.CodesConsidered - st.CodesSkippedTI
		// Every touched code performed between 1 and NumSubspaces lookups.
		if st.Lookups < touched || st.Lookups > touched*4 {
			t.Fatalf("lookup accounting off: touched %d lookups %d (%+v)", touched, st.Lookups, st)
		}
		if st.CodesSkippedTI+st.CodesAbandonedEA > st.CodesConsidered {
			t.Fatalf("pruned more than considered: %+v", st)
		}
	}
}
