package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"vaq/internal/metrics"
)

// The process-wide sharded-index registry behind /debug/vaq/shards,
// mirroring the report registry in internal/diag: Publish rebinds an
// existing name instead of erroring, and the registry stores the index,
// not a report — every scrape recomputes against live counters.
var published sync.Map // name -> *Index

// Publish registers x under name for the /debug/vaq/shards handler
// (installed on http.DefaultServeMux at package init, like net/http/pprof
// does — metrics.ServeDebug serves that mux). Publishing a nil index
// removes the name. Index.PublishExpvar calls this automatically.
func Publish(name string, x *Index) {
	if x == nil {
		published.Delete(name)
		return
	}
	published.Store(name, x)
}

func init() {
	http.HandleFunc("/debug/vaq/shards", handleShards)
}

// ShardReport is one shard's block inside a ShardsReport: its size plus
// the headline per-shard query counters and the merged registry's
// attribution for it.
type ShardReport struct {
	Shard int `json:"shard"`
	// Len is the shard's current vector count.
	Len int `json:"len"`
	// Queries and the pruning counters come from the shard's own registry
	// (the name/shard-i one): work done inside this shard only.
	Queries          uint64 `json:"queries"`
	CodesConsidered  uint64 `json:"codes_considered"`
	CodesSkippedTI   uint64 `json:"codes_skipped_ti"`
	CodesAbandonedEA uint64 `json:"codes_abandoned_ea"`
	// MeanLatencyMs / P99LatencyMs summarize the shard-local scan latency.
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	P99LatencyMs  float64 `json:"p99_latency_ms"`
	// CriticalPath and Hits are the merged registry's attribution: how
	// often this shard was the scatter's slowest, and how many final top-k
	// results it served.
	CriticalPath uint64 `json:"critical_path"`
	Hits         uint64 `json:"hits"`
}

// ShardsReport is the /debug/vaq/shards payload for one published sharded
// index: the scatter shape, the merged scatter telemetry, and one block
// per shard.
type ShardsReport struct {
	Shards  int    `json:"shards"`
	Len     int    `json:"len"`
	Policy  string `json:"policy"`
	Workers int    `json:"workers"`
	// Merged is the merged registry's scatter telemetry (nil when metrics
	// are disabled).
	Merged   *metrics.ShardedSnapshot `json:"merged,omitempty"`
	PerShard []ShardReport            `json:"per_shard"`
}

// Report assembles the current ShardsReport for this index.
func (x *Index) Report() *ShardsReport {
	rep := &ShardsReport{
		Shards:  len(x.states),
		Len:     x.Len(),
		Policy:  x.opts.Policy.String(),
		Workers: x.workerCount(),
		Merged:  x.reg.ShardedSnapshot(),
	}
	lens := x.ShardLens()
	rep.PerShard = make([]ShardReport, len(x.states))
	for i, st := range x.states {
		sr := ShardReport{Shard: i, Len: lens[i]}
		if m := st.ix.Metrics(); m != nil {
			snap := m.Snapshot()
			sr.Queries = snap.Queries
			sr.CodesConsidered = snap.CodesConsidered
			sr.CodesSkippedTI = snap.CodesSkippedTI
			sr.CodesAbandonedEA = snap.CodesAbandonedEA
			sr.MeanLatencyMs = snap.Latency.Mean().Seconds() * 1e3
			sr.P99LatencyMs = snap.Latency.Quantile(0.99).Seconds() * 1e3
		}
		if rep.Merged != nil && i < len(rep.Merged.CriticalPath) {
			sr.CriticalPath = rep.Merged.CriticalPath[i]
			if i < len(rep.Merged.Hits) {
				sr.Hits = rep.Merged.Hits[i]
			}
		}
		rep.PerShard[i] = sr
	}
	return rep
}

// handleShards serves the registered sharded indexes. Query parameters:
//
//	?index=X       only the index published as X (default: all)
//	?format=text   human-readable dump; default is JSON, one object per
//	               published index keyed by name
func handleShards(w http.ResponseWriter, r *http.Request) {
	wantName := r.URL.Query().Get("index")
	var names []string
	published.Range(func(k, _ any) bool {
		if wantName == "" || k.(string) == wantName {
			names = append(names, k.(string))
		}
		return true
	})
	sort.Strings(names)
	if wantName != "" && len(names) == 0 {
		http.Error(w, fmt.Sprintf("no sharded index published as %q", wantName), http.StatusNotFound)
		return
	}
	reports := make(map[string]*ShardsReport, len(names))
	for _, name := range names {
		v, ok := published.Load(name)
		if !ok {
			continue
		}
		reports[name] = v.(*Index).Report()
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, name := range names {
			if rep := reports[name]; rep != nil {
				fmt.Fprintf(w, "== sharded index %q\n", name)
				writeShardsText(w, rep) //nolint:errcheck // best-effort HTTP body
				fmt.Fprintln(w)
			}
		}
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(reports) //nolint:errcheck // best-effort HTTP body
}

// writeShardsText emits one report as the human-readable dump behind
// ?format=text.
func writeShardsText(w http.ResponseWriter, rep *ShardsReport) error {
	_, err := fmt.Fprintf(w, "shards=%d len=%d policy=%s workers=%d\n",
		rep.Shards, rep.Len, rep.Policy, rep.Workers)
	if err != nil {
		return err
	}
	if m := rep.Merged; m != nil {
		fmt.Fprintf(w, "window=%d/%d skew_ratio=%.3f load_imbalance=%.3f",
			m.WindowQueries, m.Window, m.SkewRatio, m.LoadImbalance)
		if m.SkewAlertRatio > 0 {
			fmt.Fprintf(w, " skew_alert=%v (threshold %.2f)", m.SkewAlert, m.SkewAlertRatio)
		}
		fmt.Fprintf(w, "\nstraggler_delta p50=%s p99=%s mean=%s\n",
			m.StragglerDelta.Quantile(0.50), m.StragglerDelta.Quantile(0.99),
			m.StragglerDelta.Mean())
	}
	for _, sr := range rep.PerShard {
		if _, err := fmt.Fprintf(w,
			"  shard %-3d len=%-8d queries=%-8d considered=%-10d critical_path=%-6d hits=%-6d mean=%.3fms p99=%.3fms\n",
			sr.Shard, sr.Len, sr.Queries, sr.CodesConsidered,
			sr.CriticalPath, sr.Hits, sr.MeanLatencyMs, sr.P99LatencyMs); err != nil {
			return err
		}
	}
	return nil
}
