// Package lsh implements a data-independent E2LSH-style baseline (paper
// §II-B): L hash tables, each keyed by the concatenation of T p-stable
// projections h(x) = floor((a·x + b)/w), with multi-probe querying over
// the buckets adjacent to the query's. Data-independent hashing needs many
// tables for good recall — the storage/accuracy trade-off the paper cites
// as the reason learning-to-hash methods (and quantization) supplanted it.
package lsh

import (
	"fmt"
	"math"
	"math/rand"

	"vaq/internal/vec"
)

// Config controls Build.
type Config struct {
	// Tables is the number of hash tables L (default 8).
	Tables int
	// Hashes is the number of concatenated projections per table T
	// (default 8).
	Hashes int
	// Width is the quantization width w of each projection; 0 picks a
	// data-driven default (the mean pairwise distance of a small sample).
	Width float64
	// Probes per table beyond the exact bucket (multi-probe; default 2).
	Probes int
	// Seed drives the random projections.
	Seed int64
}

type table struct {
	a       []float32 // Hashes x d projection vectors, flattened
	b       []float32 // Hashes offsets
	buckets map[uint64][]int32
}

// Index is a built LSH index over an in-memory dataset (raw vectors are
// retained for exact candidate ranking, the standard E2LSH usage).
type Index struct {
	data   *vec.Matrix
	tables []table
	hashes int
	width  float32
	probes int
	n      int
}

// Build hashes every row of data into the L tables.
func Build(data *vec.Matrix, cfg Config) (*Index, error) {
	if data.Rows == 0 {
		return nil, fmt.Errorf("lsh: empty data")
	}
	if cfg.Tables <= 0 {
		cfg.Tables = 8
	}
	if cfg.Hashes <= 0 {
		cfg.Hashes = 8
	}
	if cfg.Hashes > 16 {
		return nil, fmt.Errorf("lsh: Hashes=%d exceeds 16 (key packing)", cfg.Hashes)
	}
	if cfg.Probes < 0 {
		return nil, fmt.Errorf("lsh: negative probe count")
	}
	if cfg.Probes == 0 {
		cfg.Probes = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	width := cfg.Width
	if width <= 0 {
		width = sampleMeanDistance(data, rng) / 2
		if width <= 0 {
			width = 1
		}
	}
	d := data.Cols
	ix := &Index{
		data:   data,
		hashes: cfg.Hashes,
		width:  float32(width),
		probes: cfg.Probes,
		n:      data.Rows,
	}
	for t := 0; t < cfg.Tables; t++ {
		tb := table{
			a:       make([]float32, cfg.Hashes*d),
			b:       make([]float32, cfg.Hashes),
			buckets: make(map[uint64][]int32),
		}
		for i := range tb.a {
			tb.a[i] = float32(rng.NormFloat64())
		}
		for i := range tb.b {
			tb.b[i] = float32(rng.Float64()) * ix.width
		}
		ix.tables = append(ix.tables, tb)
	}
	for i := 0; i < data.Rows; i++ {
		row := data.Row(i)
		for t := range ix.tables {
			key := ix.hashKey(&ix.tables[t], row, -1, 0)
			ix.tables[t].buckets[key] = append(ix.tables[t].buckets[key], int32(i))
		}
	}
	return ix, nil
}

// sampleMeanDistance estimates the distance scale from random pairs.
func sampleMeanDistance(data *vec.Matrix, rng *rand.Rand) float64 {
	const pairs = 100
	var sum float64
	for p := 0; p < pairs; p++ {
		i, j := rng.Intn(data.Rows), rng.Intn(data.Rows)
		sum += math.Sqrt(float64(vec.SquaredL2(data.Row(i), data.Row(j))))
	}
	return sum / pairs
}

// hashKey computes the packed bucket key of v under table tb. If
// perturbHash >= 0, that projection's bin is shifted by perturbDelta
// (multi-probe).
func (ix *Index) hashKey(tb *table, v []float32, perturbHash, perturbDelta int) uint64 {
	d := len(v)
	var key uint64
	for h := 0; h < ix.hashes; h++ {
		dot := vec.Dot(tb.a[h*d:(h+1)*d], v)
		bin := int(math.Floor(float64((dot + tb.b[h]) / ix.width)))
		if h == perturbHash {
			bin += perturbDelta
		}
		// Pack 4 bits of bin per hash (wraps; collisions are acceptable —
		// they only add candidates).
		key = key<<4 | uint64(bin&0xF)
	}
	return key
}

// Len reports the number of indexed vectors.
func (ix *Index) Len() int { return ix.n }

// Search collects candidates from the query's bucket in every table (plus
// multi-probe perturbations) and ranks them by exact distance.
func (ix *Index) Search(q []float32, k int) ([]vec.Neighbor, error) {
	if len(q) != ix.data.Cols {
		return nil, fmt.Errorf("lsh: query dim %d, index dim %d", len(q), ix.data.Cols)
	}
	if k < 1 {
		return nil, fmt.Errorf("lsh: k must be >= 1, got %d", k)
	}
	seen := make(map[int32]bool)
	tk := vec.NewTopK(k)
	consider := func(ids []int32) {
		for _, id := range ids {
			if seen[id] {
				continue
			}
			seen[id] = true
			tk.Push(int(id), vec.SquaredL2(q, ix.data.Row(int(id))))
		}
	}
	for t := range ix.tables {
		tb := &ix.tables[t]
		consider(tb.buckets[ix.hashKey(tb, q, -1, 0)])
		// Multi-probe: perturb the first `probes` projections by ±1.
		for p := 0; p < ix.probes && p < ix.hashes; p++ {
			consider(tb.buckets[ix.hashKey(tb, q, p, +1)])
			consider(tb.buckets[ix.hashKey(tb, q, p, -1)])
		}
	}
	return tk.Results(), nil
}

// CandidateCount reports how many distinct candidates a query would touch
// (for instrumentation in experiments).
func (ix *Index) CandidateCount(q []float32) int {
	seen := make(map[int32]bool)
	for t := range ix.tables {
		tb := &ix.tables[t]
		for _, id := range tb.buckets[ix.hashKey(tb, q, -1, 0)] {
			seen[id] = true
		}
		for p := 0; p < ix.probes && p < ix.hashes; p++ {
			for _, id := range tb.buckets[ix.hashKey(tb, q, p, +1)] {
				seen[id] = true
			}
			for _, id := range tb.buckets[ix.hashKey(tb, q, p, -1)] {
				seen[id] = true
			}
		}
	}
	return len(seen)
}
