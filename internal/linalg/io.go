package linalg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

var magicDense = [4]byte{'V', 'A', 'Q', '8'}

// WriteTo serializes the matrix in little-endian binary.
func (m *Dense) WriteTo(w io.Writer) (int64, error) {
	var hdr [20]byte
	copy(hdr[:4], magicDense[:])
	binary.LittleEndian.PutUint64(hdr[4:], uint64(m.Rows))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(m.Cols))
	n, err := w.Write(hdr[:])
	total := int64(n)
	if err != nil {
		return total, err
	}
	buf := make([]byte, 8*4096)
	for off := 0; off < len(m.Data); {
		chunk := len(m.Data) - off
		if chunk > 4096 {
			chunk = 4096
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(m.Data[off+i]))
		}
		n, err := w.Write(buf[:8*chunk])
		total += int64(n)
		if err != nil {
			return total, err
		}
		off += chunk
	}
	return total, nil
}

// ReadDense deserializes a matrix written by WriteTo.
func ReadDense(r io.Reader) (*Dense, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("linalg: reading dense header: %w", err)
	}
	if [4]byte(hdr[:4]) != magicDense {
		return nil, errors.New("linalg: bad dense magic")
	}
	rows := int(binary.LittleEndian.Uint64(hdr[4:]))
	cols := int(binary.LittleEndian.Uint64(hdr[12:]))
	if rows < 0 || cols < 0 || (cols != 0 && rows > (1<<37)/cols) {
		return nil, fmt.Errorf("linalg: implausible dense shape %dx%d", rows, cols)
	}
	m := NewDense(rows, cols)
	buf := make([]byte, 8*4096)
	for off := 0; off < len(m.Data); {
		chunk := len(m.Data) - off
		if chunk > 4096 {
			chunk = 4096
		}
		if _, err := io.ReadFull(r, buf[:8*chunk]); err != nil {
			return nil, fmt.Errorf("linalg: reading dense body: %w", err)
		}
		for i := 0; i < chunk; i++ {
			m.Data[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		off += chunk
	}
	return m, nil
}

// WriteFloat64s writes a length-prefixed float64 slice.
func WriteFloat64s(w io.Writer, v []float64) error {
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(v)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	_, err := w.Write(buf)
	return err
}

// ReadFloat64s reads a slice written by WriteFloat64s.
func ReadFloat64s(r io.Reader) ([]float64, error) {
	var lenBuf [8]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(lenBuf[:])
	if n > 1<<32 {
		return nil, fmt.Errorf("linalg: implausible slice length %d", n)
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}
