package vec

import "sort"

// Neighbor is one search result: the index of a database vector and its
// distance to the query. Distances are whatever metric the producer used
// (typically squared or plain Euclidean) but are always "smaller is closer".
type Neighbor struct {
	ID   int
	Dist float32
}

// TopK is a bounded max-heap of the K closest neighbors seen so far.
// The root holds the current worst (largest-distance) retained neighbor, so
// Threshold is an O(1) best-so-far bound for pruning.
//
// An external bound (SetBound) caps admission before the heap fills: a
// scatter-gather merge can feed the running global k-th distance into each
// partition's collector, so candidates provably outside the merged top-k
// are pruned with the same machinery as heap-full early abandoning.
//
// The zero value is unusable; construct with NewTopK.
type TopK struct {
	k     int
	bound float32
	heap  []Neighbor
}

// NewTopK returns a collector for the k nearest neighbors. k must be >= 1.
func NewTopK(k int) *TopK {
	if k < 1 {
		panic("vec: TopK requires k >= 1")
	}
	return &TopK{k: k, bound: maxFloat32, heap: make([]Neighbor, 0, k)}
}

// Len reports how many neighbors are currently retained (<= k).
func (t *TopK) Len() int { return len(t.heap) }

// Full reports whether k neighbors have been collected.
func (t *TopK) Full() bool { return len(t.heap) == t.k }

// SetBound installs an external admission bound: candidates with
// dist > b are rejected even while the heap is not yet full, and Threshold
// reports min(b, previous bound) until k retained neighbors beat it. A
// bound only ever tightens; Reset keeps it (reuse NewTopK for a clean
// collector). Boundary ties (dist == b) are still admitted so an external
// k-th distance never evicts its own tie cohort.
func (t *TopK) SetBound(b float32) {
	if b < t.bound {
		t.bound = b
	}
}

// Pruning reports whether Threshold is an actionable pruning bound: the
// heap is full, or an external bound was installed via SetBound.
func (t *TopK) Pruning() bool { return len(t.heap) == t.k || t.bound < maxFloat32 }

// Threshold returns the distance of the worst retained neighbor, or the
// external bound (+Inf behaviourally, math.MaxFloat32, when none was set)
// while fewer than k neighbors are held.
func (t *TopK) Threshold() float32 {
	if len(t.heap) < t.k {
		return t.bound
	}
	return t.heap[0].Dist
}

const maxFloat32 = float32(3.4028234663852886e+38)

// Push offers a candidate. It is accepted if the heap is not yet full (and
// the candidate does not exceed the external bound) or the candidate beats
// the current worst. Returns true if accepted.
func (t *TopK) Push(id int, dist float32) bool {
	if len(t.heap) < t.k {
		if dist > t.bound {
			return false
		}
		t.heap = append(t.heap, Neighbor{ID: id, Dist: dist})
		t.siftUp(len(t.heap) - 1)
		return true
	}
	if dist >= t.heap[0].Dist {
		return false
	}
	t.heap[0] = Neighbor{ID: id, Dist: dist}
	t.siftDown(0)
	return true
}

// Reset empties the collector for reuse.
func (t *TopK) Reset() { t.heap = t.heap[:0] }

// Heap exposes the retained neighbors in internal heap order, without
// copying or sorting. The caller must not mutate the slice, and any Push
// or Reset invalidates it — it aliases the collector's backing array.
func (t *TopK) Heap() []Neighbor { return t.heap }

// Results returns the retained neighbors sorted ascending by distance
// (ties broken by ID). The collector remains valid afterwards.
func (t *TopK) Results() []Neighbor {
	out := make([]Neighbor, len(t.heap))
	copy(out, t.heap)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.heap[p].Dist >= t.heap[i].Dist {
			return
		}
		t.heap[p], t.heap[i] = t.heap[i], t.heap[p]
		i = p
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && t.heap[l].Dist > t.heap[big].Dist {
			big = l
		}
		if r < n && t.heap[r].Dist > t.heap[big].Dist {
			big = r
		}
		if big == i {
			return
		}
		t.heap[i], t.heap[big] = t.heap[big], t.heap[i]
		i = big
	}
}
