// Package metrics is the observability substrate for the VAQ index: an
// atomic, concurrency-safe registry aggregating per-query pruning
// counters (the paper's §III-E SearchStats currency) and fixed-bucket
// latency histograms across all searchers of an index, plus build-phase
// timing and an expvar/pprof serving hook. Everything is stdlib-only and
// the hot recording path is lock-free (a handful of atomic adds), so it
// can stay enabled in production.
package metrics

import (
	"sync/atomic"
	"time"
)

// SearchRecord carries one query's pruning counters into the registry. It
// mirrors core.SearchStats field-for-field; the duplication keeps this
// package dependency-free so every layer (core, the public API, the cmd
// tools) can import it without cycles.
type SearchRecord struct {
	ClustersVisited  int
	CodesConsidered  int
	CodesSkippedTI   int
	CodesAbandonedEA int
	Lookups          int
}

// IndexMetrics aggregates query telemetry for one index. All methods are
// safe for concurrent use and nil-safe: a nil *IndexMetrics records
// nothing, which is how metrics are disabled without branching at call
// sites beyond a single pointer check.
type IndexMetrics struct {
	queries          atomic.Uint64
	errors           atomic.Uint64
	clustersVisited  atomic.Uint64
	codesConsidered  atomic.Uint64
	codesSkippedTI   atomic.Uint64
	codesAbandonedEA atomic.Uint64
	lookups          atomic.Uint64
	latency          Histogram
}

// New returns an empty registry.
func New() *IndexMetrics { return &IndexMetrics{} }

// RecordSearch folds one completed query into the registry.
func (m *IndexMetrics) RecordSearch(r SearchRecord, d time.Duration) {
	if m == nil {
		return
	}
	m.queries.Add(1)
	m.clustersVisited.Add(uint64(r.ClustersVisited))
	m.codesConsidered.Add(uint64(r.CodesConsidered))
	m.codesSkippedTI.Add(uint64(r.CodesSkippedTI))
	m.codesAbandonedEA.Add(uint64(r.CodesAbandonedEA))
	m.lookups.Add(uint64(r.Lookups))
	m.latency.Observe(d)
}

// RecordError counts a query that failed validation or execution.
func (m *IndexMetrics) RecordError() {
	if m == nil {
		return
	}
	m.errors.Add(1)
}

// Reset zeroes every counter and the histogram. Not atomic with respect
// to concurrent recording; intended for benchmarks and tests.
func (m *IndexMetrics) Reset() {
	if m == nil {
		return
	}
	m.queries.Store(0)
	m.errors.Store(0)
	m.clustersVisited.Store(0)
	m.codesConsidered.Store(0)
	m.codesSkippedTI.Store(0)
	m.codesAbandonedEA.Store(0)
	m.lookups.Store(0)
	m.latency.Reset()
}

// Snapshot returns a point-in-time copy of all counters. A nil registry
// yields the zero snapshot.
func (m *IndexMetrics) Snapshot() Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	s.Queries = m.queries.Load()
	s.Errors = m.errors.Load()
	s.ClustersVisited = m.clustersVisited.Load()
	s.CodesConsidered = m.codesConsidered.Load()
	s.CodesSkippedTI = m.codesSkippedTI.Load()
	s.CodesAbandonedEA = m.codesAbandonedEA.Load()
	s.Lookups = m.lookups.Load()
	s.Latency = m.latency.Snapshot()
	return s
}

// Snapshot is an immutable copy of an IndexMetrics, suitable for JSON
// export and for diffing (see Sub).
type Snapshot struct {
	Queries          uint64            `json:"queries"`
	Errors           uint64            `json:"errors"`
	ClustersVisited  uint64            `json:"clusters_visited"`
	CodesConsidered  uint64            `json:"codes_considered"`
	CodesSkippedTI   uint64            `json:"codes_skipped_ti"`
	CodesAbandonedEA uint64            `json:"codes_abandoned_ea"`
	Lookups          uint64            `json:"lookups"`
	Latency          HistogramSnapshot `json:"latency"`
}

// Sub returns the counter-wise difference s - prev (histogram excluded:
// bucket-wise subtraction of a live histogram is rarely meaningful, so the
// newer snapshot's histogram is kept as-is).
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := s
	out.Queries -= prev.Queries
	out.Errors -= prev.Errors
	out.ClustersVisited -= prev.ClustersVisited
	out.CodesConsidered -= prev.CodesConsidered
	out.CodesSkippedTI -= prev.CodesSkippedTI
	out.CodesAbandonedEA -= prev.CodesAbandonedEA
	out.Lookups -= prev.Lookups
	return out
}

// TIPruneRate is the fraction of considered codes eliminated by the
// triangle-inequality bound before any table lookup.
func (s Snapshot) TIPruneRate() float64 {
	if s.CodesConsidered == 0 {
		return 0
	}
	return float64(s.CodesSkippedTI) / float64(s.CodesConsidered)
}

// EAAbandonRate is the fraction of considered codes whose lookup
// accumulation was cut short by early abandoning.
func (s Snapshot) EAAbandonRate() float64 {
	if s.CodesConsidered == 0 {
		return 0
	}
	return float64(s.CodesAbandonedEA) / float64(s.CodesConsidered)
}

// BuildReport is the wall-clock cost of each build phase (Algorithm 5's
// stages). Captured once at Build time and immutable afterwards.
type BuildReport struct {
	// Total is end-to-end Build time (>= the sum of the phases below;
	// the gap is glue: matrix projection, validation, copies).
	Total time.Duration `json:"total"`
	// PCA is the eigendecomposition of the training matrix (Algorithm 1).
	PCA time.Duration `json:"pca"`
	// Allocation is the bit-budget solve (Algorithm 2: MILP, transform
	// coding, or uniform).
	Allocation time.Duration `json:"allocation"`
	// Training is per-subspace dictionary learning (k-means, Algorithm 3).
	Training time.Duration `json:"training"`
	// Encoding is dataset quantization against the trained dictionaries.
	Encoding time.Duration `json:"encoding"`
	// TIClustering is the triangle-inequality skip-structure build
	// (Algorithm 3 lines 24-48).
	TIClustering time.Duration `json:"ti_clustering"`
	// Layout is the derivation of the scan-optimized physical code
	// layout (cluster-contiguous blocked transposition; zero when the
	// legacy row-major layout was requested).
	Layout time.Duration `json:"layout"`
}
