// Package shard partitions a dataset across S independent VAQ indexes and
// presents them as one: training happens once on a shared sample (so every
// shard quantizes against the same rotation, bit allocation and
// dictionaries and their distances are directly comparable), encoding runs
// per-shard in parallel, queries scatter to per-shard searchers on a
// bounded worker pool and gather through a deterministic k-way merge, and
// Add routes whole batches to one shard so concurrent ingest no longer
// serializes on a single write lock.
//
// Vectors are striped round-robin at build time: global id g lives in
// shard g mod S at local id g div S. Each shard keeps a local-to-global id
// mapping (an immutable slice behind an atomic pointer — Add publishes a
// grown copy), so per-shard results are mapped before merging. The merge
// is ordered by (distance, global id), the same strict total order the
// single-index kernel's Results() uses; with S=1 the shard index is
// bit-identical to an unsharded build, serialized bytes included.
//
// While shards drain one by one, the running global k-th distance is fed
// back into not-yet-started shards as SearchOptions.InitialThreshold, so
// cross-shard pruning compounds the way the single index's own heap
// threshold does within one scan.
package shard

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vaq/internal/bundle"
	"vaq/internal/core"
	"vaq/internal/diag"
	"vaq/internal/history"
	"vaq/internal/metrics"
	"vaq/internal/trace"
	"vaq/internal/vec"
	"vaq/internal/workload"
)

// Policy selects how Add routes incoming batches to shards.
type Policy uint8

const (
	// PolicyRoundRobin rotates whole batches across shards (default).
	PolicyRoundRobin Policy = iota
	// PolicyLeastLoaded sends each batch to the currently smallest shard,
	// rebalancing skew from uneven batch sizes.
	PolicyLeastLoaded
)

func (p Policy) String() string {
	switch p {
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyLeastLoaded:
		return "least-loaded"
	}
	return "unknown"
}

// Options shape the sharded index around one core.Config.
type Options struct {
	// Shards is the partition count S (clamped to the dataset size; 1 is
	// the degenerate single-index case).
	Shards int
	// Policy selects the Add routing policy (default PolicyRoundRobin).
	Policy Policy
	// Workers bounds the per-query scatter concurrency (0 = min(S,
	// GOMAXPROCS)). Runtime-only: not serialized.
	Workers int
	// SkewAlertRatio fires the edge-triggered vaq.skew alert when the
	// windowed mean shard skew ratio (slowest shard latency over mean
	// shard latency per query) reaches this threshold. 0 disables the
	// alert; the skew telemetry itself is always on when metrics are.
	// Runtime-only: not serialized.
	SkewAlertRatio float64
}

// shardState is one partition: its index, the local-to-global id mapping
// (copy-on-write behind an atomic pointer so queries never lock), a pool
// of reusable searchers, and the per-shard Add lock.
type shardState struct {
	ix  *core.Index
	ids atomic.Pointer[[]int32]
	// unordered latches when concurrent Adds interleave batches on this
	// shard so the mapping is no longer monotone; mapped result lists are
	// then re-sorted before merging to keep the (dist, global id) order.
	unordered atomic.Bool
	pool      sync.Pool // *core.Searcher
	addMu     sync.Mutex
}

func (st *shardState) getSearcher() *core.Searcher {
	if s, ok := st.pool.Get().(*core.Searcher); ok {
		return s
	}
	return st.ix.NewSearcher()
}

func (st *shardState) putSearcher(s *core.Searcher) { st.pool.Put(s) }

// Index is a sharded VAQ index: S partitions sharing one trained model.
type Index struct {
	opts   Options
	dim    int
	states []*shardState
	// nextID is the global id allocator: Build seeds it with the dataset
	// size, Add reserves ranges with one atomic add (the lock-free half of
	// the ingest path — only the chosen shard's encode takes a lock).
	nextID atomic.Int64
	// rr drives round-robin batch routing.
	rr atomic.Uint64
	// reg is the merged end-to-end registry: one RecordSearch per global
	// query (per-shard pruning stats summed, latency measured around the
	// whole scatter-gather). The per-shard registries stay live for
	// per-shard publishing. nil under DisableMetrics.
	reg    *metrics.IndexMetrics
	logger *slog.Logger
	// tracer, when set (EnableTracing/AttachTracer), files one parent
	// QueryTrace per sharded query with per-shard wait/scan child spans
	// and bound-feedback events. capture, when set (EnableCapture),
	// samples merged queries into a replayable workload log. Both are
	// atomic so they can be toggled while queries are in flight; off,
	// each costs the hot path one pointer load.
	tracer  atomic.Pointer[trace.Tracer]
	capture atomic.Pointer[workload.Capture]
	// flight is the armed incident recorder (EnableFlightRecorder); the
	// scatter path never touches it — it subscribes to reg's alert bus.
	flight atomic.Pointer[bundle.Recorder]
	// hist is the armed metrics history collector (EnableHistory),
	// sampling the merged and per-shard registries on its own goroutine.
	hist atomic.Pointer[history.Collector]
}

// Build trains once on train (falling back to data) and encodes S
// partitions of data in parallel. cfg.RecallSampleRate and cfg.SLO are
// per-single-index features: the recall estimator is stripped from shard
// configs (a shard-local recall estimate would not be a global recall@k),
// and the SLO attaches to the merged registry where latency means
// end-to-end query latency.
func Build(train, data *vec.Matrix, cfg core.Config, opts Options) (*Index, error) {
	if data == nil || data.Rows == 0 {
		return nil, errors.New("shard: empty data matrix")
	}
	if int64(data.Rows) > math.MaxInt32+1 {
		// The local-to-global mapping stores ids as int32.
		return nil, fmt.Errorf("shard: %d rows exceed the int32 global id space", data.Rows)
	}
	if train == nil {
		train = data
	}
	if train.Cols != data.Cols {
		return nil, fmt.Errorf("shard: train dim %d != data dim %d", train.Cols, data.Cols)
	}
	s := opts.Shards
	if s < 1 {
		return nil, fmt.Errorf("shard: Shards=%d invalid (need >= 1)", s)
	}
	if s > data.Rows {
		s = data.Rows // never build an empty shard
	}
	if opts.Policy != PolicyRoundRobin && opts.Policy != PolicyLeastLoaded {
		return nil, fmt.Errorf("shard: unknown policy %d", opts.Policy)
	}
	opts.Shards = s
	shardCfg := cfg
	shardCfg.RecallSampleRate = 0
	shardCfg.SLO = nil

	t, err := core.Train(train, shardCfg)
	if err != nil {
		return nil, err
	}
	parts := partition(data, s)
	states := make([]*shardState, s)
	errs := make([]error, s)
	workers := s
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				si := int(next.Add(1)) - 1
				if si >= s {
					return
				}
				ix, err := t.EncodeIndex(parts[si])
				if err != nil {
					errs[si] = fmt.Errorf("shard %d: %w", si, err)
					continue
				}
				st := &shardState{ix: ix}
				ids := stripeIDs(si, s, parts[si].Rows)
				st.ids.Store(&ids)
				states[si] = st
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	x := &Index{opts: opts, dim: data.Cols, states: states, logger: cfg.Logger}
	x.nextID.Store(int64(data.Rows))
	if !cfg.DisableMetrics {
		m := states[0].ix.Codebooks().Sub.M()
		x.reg = metrics.NewSized(m+1, m)
		if cfg.SLO != nil {
			x.reg.ConfigureSLO(*cfg.SLO, x.sloBreach)
		}
		x.reg.ConfigureSharded(metrics.ShardedConfig{
			Shards:         s,
			SkewAlertRatio: opts.SkewAlertRatio,
		}, x.skewBreach)
	}
	if cfg.Logger != nil {
		cfg.Logger.Info("vaq.shard.build",
			slog.Int("n", data.Rows), slog.Int("shards", s),
			slog.Int("build_workers", workers),
			slog.String("policy", opts.Policy.String()))
	}
	return x, nil
}

// partition stripes data rows round-robin into s matrices: global row g
// goes to partition g mod s at local row g div s.
func partition(data *vec.Matrix, s int) []*vec.Matrix {
	parts := make([]*vec.Matrix, s)
	for si := 0; si < s; si++ {
		rows := (data.Rows - si + s - 1) / s
		p := &vec.Matrix{Rows: rows, Cols: data.Cols}
		p.Data = make([]float32, 0, rows*data.Cols)
		for g := si; g < data.Rows; g += s {
			p.Data = append(p.Data, data.Row(g)...)
		}
		parts[si] = p
	}
	return parts
}

// stripeIDs is the build-time local-to-global mapping of partition si:
// local l holds global l*s + si.
func stripeIDs(si, s, rows int) []int32 {
	ids := make([]int32, rows)
	for l := range ids {
		ids[l] = int32(l*s + si)
	}
	return ids
}

// sloBreach surfaces merged-registry SLO budget exhaustion through the
// structured logger, mirroring the single-index event.
func (x *Index) sloBreach(kind string, remaining, burn float64) {
	if x.logger == nil {
		return
	}
	x.logger.Warn("vaq.slo",
		slog.String("objective", kind),
		slog.Float64("budget_remaining", remaining),
		slog.Float64("burn_rate", burn),
		slog.Int("shards", len(x.states)))
}

// skewBreach surfaces the merged registry's windowed shard-skew alert
// through the structured logger, mirroring the drift and SLO events.
func (x *Index) skewBreach(skew, imbalance float64, criticalShard int) {
	if x.logger == nil {
		return
	}
	x.logger.Warn("vaq.skew",
		slog.Float64("skew_ratio", skew),
		slog.Float64("load_imbalance", imbalance),
		slog.Int("critical_shard", criticalShard),
		slog.Int("shards", len(x.states)))
}

// EnableTracing installs a fresh per-query tracer built from cfg and
// returns it. From the next query on, every sharded search files one
// parent QueryTrace: a wait and a scan span per shard (the scan span
// carries that shard's TI/EA/lookup attribution), one bound-feedback
// event per cross-shard bound tightening, and a trailing merge span.
// Disabled, tracing costs the scatter path one pointer check.
func (x *Index) EnableTracing(cfg trace.Config) *trace.Tracer {
	t := trace.New(cfg)
	x.tracer.Store(t)
	return t
}

// DisableTracing detaches the tracer; in-flight queries may still file
// one last trace.
func (x *Index) DisableTracing() { x.tracer.Store(nil) }

// Tracer returns the active tracer, or nil when tracing is disabled.
func (x *Index) Tracer() *trace.Tracer { return x.tracer.Load() }

// AttachTracer points the scatter path at an existing tracer (nil
// detaches), so a caller can aggregate several indexes into one ring.
func (x *Index) AttachTracer(t *trace.Tracer) { x.tracer.Store(t) }

// EnableCapture installs a workload capture buffer on the merged query
// path and returns it. Sampled queries record the merged global result
// list — the scatter-gather ground truth — with the sharded config
// fingerprint and shard count in the log's provenance, so a replay can
// gate merge correctness across different shard counts. Off by default;
// off, the scatter path pays one pointer load.
func (x *Index) EnableCapture(cfg workload.Config) *workload.Capture {
	cfg.Fingerprint = x.ConfigFingerprint()
	cfg.Dim = x.dim
	cfg.Shards = len(x.states)
	c := workload.NewCapture(cfg)
	x.capture.Store(c)
	return c
}

// DisableCapture detaches the capture buffer; records already stored stay
// readable through the Capture returned by EnableCapture.
func (x *Index) DisableCapture() { x.capture.Store(nil) }

// Capture returns the active workload capture, or nil when capture is
// off.
func (x *Index) Capture() *workload.Capture { return x.capture.Load() }

// Len reports the total number of encoded vectors across all shards.
func (x *Index) Len() int { return int(x.nextID.Load()) }

// Dim reports the expected query dimensionality.
func (x *Index) Dim() int { return x.dim }

// Shards reports the partition count S.
func (x *Index) Shards() int { return len(x.states) }

// Shard exposes one partition's underlying index (read-only use: tests,
// diagnostics, the S=1 bit-identity gate).
func (x *Index) Shard(i int) *core.Index { return x.states[i].ix }

// ShardLens reports each shard's current vector count.
func (x *Index) ShardLens() []int {
	lens := make([]int, len(x.states))
	for i, st := range x.states {
		lens[i] = len(*st.ids.Load())
	}
	return lens
}

// Options returns the sharding options (with Shards clamped to the value
// actually built).
func (x *Index) Options() Options { return x.opts }

// Metrics returns the merged telemetry registry: one record per global
// query, pruning counters summed across the shards that served it, latency
// measured end-to-end around scatter and merge. nil when metrics are
// disabled. Per-shard registries remain reachable via Shard(i).Metrics().
func (x *Index) Metrics() *metrics.IndexMetrics { return x.reg }

// BuildReports returns each shard's per-phase build timings. The training
// phases (PCA, allocation, dictionary training) are shared work counted
// once but reported in every shard's view; the encode phases are genuinely
// per-shard and ran in parallel.
func (x *Index) BuildReports() []metrics.BuildReport {
	reps := make([]metrics.BuildReport, len(x.states))
	for i, st := range x.states {
		reps[i] = st.ix.BuildReport()
	}
	return reps
}

// PublishExpvar registers the merged registry under name and every
// per-shard registry under name/shard-i, all visible on /debug/vars and
// the Prometheus endpoint, plus the per-shard breakdown report on
// /debug/vaq/shards.
func (x *Index) PublishExpvar(name string) {
	Publish(name, x)
	if x.reg != nil {
		metrics.Publish(name, x.reg)
	}
	for i, st := range x.states {
		sub := fmt.Sprintf("%s/shard-%d", name, i)
		if m := st.ix.Metrics(); m != nil {
			metrics.Publish(sub, m)
		}
		st.ix.SetProfileLabel(sub)
	}
}

// PublishDiagnostics registers every shard's index-quality report provider
// under name/shard-i (GET /debug/vaq/report?index=...).
func (x *Index) PublishDiagnostics(name string) {
	for i, st := range x.states {
		diag.Publish(fmt.Sprintf("%s/shard-%d", name, i), st.ix.Diagnose)
	}
}

// Diagnose computes every shard's index-quality report.
func (x *Index) Diagnose() []*diag.Report {
	reps := make([]*diag.Report, len(x.states))
	for i, st := range x.states {
		reps[i] = st.ix.Diagnose()
	}
	return reps
}

// workerCount resolves the per-query scatter concurrency.
func (x *Index) workerCount() int {
	w := x.opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if s := len(x.states); w > s {
		w = s
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Search projects q once (all shards share the same trained rotation) and
// scatters it. Distances are squared Euclidean in the quantized space.
func (x *Index) Search(q []float32, k int, opt core.SearchOptions) ([]vec.Neighbor, error) {
	if k < 1 {
		x.reg.RecordError()
		return nil, fmt.Errorf("shard: k must be >= 1, got %d", k)
	}
	qz, err := x.states[0].ix.ProjectQuery(q)
	if err != nil {
		x.reg.RecordError()
		return nil, err
	}
	return x.searchProjected(qz, q, k, opt)
}

// SearchProjected runs one query already rotated into the shared PCA
// space.
func (x *Index) SearchProjected(qz []float32, k int, opt core.SearchOptions) ([]vec.Neighbor, error) {
	if k < 1 {
		x.reg.RecordError()
		return nil, fmt.Errorf("shard: k must be >= 1, got %d", k)
	}
	return x.searchProjected(qz, nil, k, opt)
}

// gatherState accumulates the scatter results under one mutex: the running
// global top-k (whose k-th distance feeds back to later shards), the
// summed per-shard pruning stats, and the per-shard result lists for the
// final deterministic merge.
type gatherState struct {
	mu      sync.Mutex
	tracker *vec.TopK
	lists   [][]vec.Neighbor
	errs    []error
	stats   core.SearchStats
	depths  []uint32
	ranks   []uint32
	// events are the bound-feedback events (tracing only), appended under
	// mu; boundEpoch mirrors len(events) so shards can snapshot "how many
	// bounds were live when I started" with one atomic load.
	events     []boundEvent
	boundEpoch atomic.Uint32
}

// fold merges one shard's mapped results and stats, and returns the
// tightened global bound; ok is false until the global tracker has k
// entries (an explicit flag, so a genuine k-th distance of exactly 0.0
// still propagates as a cross-shard bound).
func (g *gatherState) fold(si int, mapped []vec.Neighbor, st core.SearchStats) (bound float32, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.lists[si] = mapped
	for _, nb := range mapped {
		g.tracker.Push(nb.ID, nb.Dist)
	}
	g.stats.ClustersVisited += st.ClustersVisited
	g.stats.CodesConsidered += st.CodesConsidered
	g.stats.CodesSkippedTI += st.CodesSkippedTI
	g.stats.CodesAbandonedEA += st.CodesAbandonedEA
	g.stats.Lookups += st.Lookups
	if g.depths != nil && st.AbandonDepths != nil {
		for i, v := range st.AbandonDepths {
			if i < len(g.depths) {
				g.depths[i] += v
			}
		}
		for i, v := range st.TISkipsByRank {
			if i < len(g.ranks) {
				g.ranks[i] += v
			}
		}
	}
	if g.tracker.Full() {
		return g.tracker.Threshold(), true
	}
	return 0, false
}

// shardTiming is one shard's scatter evidence, written only by the worker
// that ran the shard (the scatter's wg.Wait publishes it to the gather
// side): queue wait, completion offset, the shard's own pruning stats, and
// the bound-event epoch the shard observed when it started.
type shardTiming struct {
	pickup time.Duration // scatter start → worker pickup
	done   time.Duration // scatter start → shard search finished
	stats  core.SearchStats
	epoch  uint32 // bound events already published when this shard started
}

// boundEvent records one cross-shard bound tightening for the parent
// trace: which shard published it, when, the bound value, and — filled in
// after the scatter — the downstream shards that started under it and the
// prunes they performed while it (or a successor) was in force.
type boundEvent struct {
	at           time.Duration
	shard        int
	bound        float32
	downShards   int
	downSkips    int
	downAbandons int
}

// recordBoundEvent appends one bound-feedback event under the gather lock
// and bumps the epoch counter so shards starting later can attribute their
// prunes to it.
func (g *gatherState) recordBoundEvent(si int, b float32, at time.Duration) {
	g.mu.Lock()
	g.events = append(g.events, boundEvent{at: at, shard: si, bound: b})
	g.boundEpoch.Store(uint32(len(g.events)))
	g.mu.Unlock()
}

func (x *Index) searchProjected(qz, rawQ []float32, k int, opt core.SearchOptions) ([]vec.Neighbor, error) {
	tr := x.tracer.Load()
	wcap := x.capture.Load()
	// Any observer needs the per-shard clocks; with all three off the
	// scatter path takes no timestamps at all.
	observed := x.reg != nil || tr != nil || wcap != nil
	var start time.Time
	if observed {
		start = time.Now()
	}
	s := len(x.states)
	g := &gatherState{
		tracker: vec.NewTopK(k),
		lists:   make([][]vec.Neighbor, s),
		errs:    make([]error, s),
	}
	if x.reg != nil {
		g.depths = make([]uint32, x.states[0].ix.Codebooks().Sub.M()+1)
		g.ranks = make([]uint32, metrics.ClusterRankBuckets)
	}
	var times []shardTiming
	if observed {
		times = make([]shardTiming, s)
	}
	traceOn := tr != nil
	// bound carries the running global k-th distance from finished shards
	// into not-yet-started ones: boundSet | float32 bits, so "no bound
	// yet" (0) is distinct from a genuine bound of 0.0.
	var bound atomic.Uint64
	var next atomic.Int64
	workers := x.workerCount()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				si := int(next.Add(1)) - 1
				if si >= s {
					return
				}
				st := x.states[si]
				var tm *shardTiming
				if times != nil {
					tm = &times[si]
					tm.pickup = time.Since(start)
					if traceOn {
						tm.epoch = g.boundEpoch.Load()
					}
				}
				o := opt
				if v := bound.Load(); v != 0 {
					bf := math.Float32frombits(uint32(v))
					if bf == 0 {
						// core treats InitialThreshold==0 as unset; the
						// smallest positive float still admits dist==0
						// ties (admission rejects strictly greater only)
						// while pruning everything else, which is exactly
						// what a 0.0 k-th distance allows.
						bf = math.SmallestNonzeroFloat32
					}
					if o.InitialThreshold == 0 || bf < o.InitialThreshold {
						o.InitialThreshold = bf
					}
				}
				sr := st.getSearcher()
				res, err := sr.SearchProjected(qz, k, o)
				if err != nil {
					st.putSearcher(sr)
					g.errs[si] = fmt.Errorf("shard %d: %w", si, err)
					continue
				}
				stats := sr.LastStats()
				ids := *st.ids.Load()
				mapped := make([]vec.Neighbor, len(res))
				for i, nb := range res {
					mapped[i] = vec.Neighbor{ID: int(ids[nb.ID]), Dist: nb.Dist}
				}
				if st.unordered.Load() {
					sort.Slice(mapped, func(a, b int) bool {
						return neighborLess(mapped[a], mapped[b])
					})
				}
				b, full := g.fold(si, mapped, stats)
				st.putSearcher(sr)
				if tm != nil {
					tm.done = time.Since(start)
					tm.stats = stats
				}
				if full && tightenBound(&bound, b) && traceOn {
					g.recordBoundEvent(si, b, time.Since(start))
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range g.errs {
		if err != nil {
			x.reg.RecordError()
			return nil, err
		}
	}
	var mergeStart time.Duration
	if observed {
		mergeStart = time.Since(start)
	}
	res := mergeTopK(g.lists, k)
	var mergeEnd time.Duration
	if observed {
		mergeEnd = time.Since(start)
	}
	var hits []int
	if x.reg != nil || traceOn {
		hits = shardHits(g.lists, res, s)
	}
	if x.reg != nil {
		g.stats.AbandonDepths = g.depths
		g.stats.TISkipsByRank = g.ranks
		x.reg.RecordSearch(metrics.SearchRecord{
			ClustersVisited:  g.stats.ClustersVisited,
			CodesConsidered:  g.stats.CodesConsidered,
			CodesSkippedTI:   g.stats.CodesSkippedTI,
			CodesAbandonedEA: g.stats.CodesAbandonedEA,
			Lookups:          g.stats.Lookups,
			AbandonDepths:    g.stats.AbandonDepths,
			TISkipsByRank:    g.stats.TISkipsByRank,
		}, time.Since(start))
		lat := make([]int64, s)
		for si := range times {
			lat[si] = (times[si].done - times[si].pickup).Nanoseconds()
		}
		x.reg.RecordScatter(metrics.ScatterRecord{ShardLatencyNs: lat, Hits: hits})
	}
	var traceSeq uint64
	if traceOn {
		traceSeq = x.fileTrace(tr, start, times, g, mergeStart, mergeEnd, k, opt, hits)
	}
	if wcap.ShouldSample() {
		x.captureQuery(wcap, qz, rawQ, k, opt, res, time.Since(start), traceSeq)
	}
	return res, nil
}

// shardHits attributes each final top-k result to the shard that served
// it (global ids live in exactly one shard, so the merged id set
// intersected with each shard's list partitions the answer).
func shardHits(lists [][]vec.Neighbor, res []vec.Neighbor, s int) []int {
	final := make(map[int]struct{}, len(res))
	for _, nb := range res {
		final[nb.ID] = struct{}{}
	}
	hits := make([]int, s)
	for si, list := range lists {
		for _, nb := range list {
			if _, ok := final[nb.ID]; ok {
				hits[si]++
			}
		}
	}
	return hits
}

// fileTrace assembles the parent QueryTrace for one sharded query: per
// shard a wait span and a scan span carrying that shard's pruning
// attribution, one bound-feedback event per cross-shard tightening
// (credited with the prunes of every shard that started under it), and the
// trailing merge span. Runs single-threaded after the scatter barrier, so
// it reads the per-shard timing slots without synchronization.
func (x *Index) fileTrace(tr *trace.Tracer, start time.Time, times []shardTiming,
	g *gatherState, mergeStart, mergeEnd time.Duration, k int, opt core.SearchOptions, hits []int) uint64 {
	// Credit each shard's prunes to the newest bound event it saw at start:
	// those skips ran under that bound (or a tighter successor).
	for si := range times {
		tm := &times[si]
		if tm.epoch == 0 || int(tm.epoch) > len(g.events) {
			continue
		}
		ev := &g.events[tm.epoch-1]
		ev.downShards++
		ev.downSkips += tm.stats.CodesSkippedTI
		ev.downAbandons += tm.stats.CodesAbandonedEA
	}
	rec := tr.NewRecorder()
	rec.Begin(time.Since(start))
	for si := range times {
		tm := &times[si]
		rec.Add(trace.Span{
			Name:  trace.SpanShardWait,
			Start: 0,
			Dur:   tm.pickup,
			Shard: si,
		})
		scan := trace.Span{
			Name:        trace.SpanShardScan,
			Start:       tm.pickup,
			Dur:         tm.done - tm.pickup,
			Shard:       si,
			Count:       tm.stats.CodesConsidered,
			SkippedTI:   tm.stats.CodesSkippedTI,
			AbandonedEA: tm.stats.CodesAbandonedEA,
			Lookups:     tm.stats.Lookups,
		}
		if hits != nil {
			scan.Hits = hits[si]
		}
		rec.Add(scan)
	}
	for _, ev := range g.events {
		rec.Add(trace.Span{
			Name:        trace.SpanBoundFeedback,
			Start:       ev.at,
			Shard:       ev.shard,
			Bound:       float64(ev.bound),
			Count:       ev.downShards,
			SkippedTI:   ev.downSkips,
			AbandonedEA: ev.downAbandons,
		})
	}
	rec.Add(trace.Span{
		Name:  trace.SpanShardMerge,
		Start: mergeStart,
		Dur:   mergeEnd - mergeStart,
	})
	return rec.End(opt.Mode.String(), k, metrics.SearchRecord{
		ClustersVisited:  g.stats.ClustersVisited,
		CodesConsidered:  g.stats.CodesConsidered,
		CodesSkippedTI:   g.stats.CodesSkippedTI,
		CodesAbandonedEA: g.stats.CodesAbandonedEA,
		Lookups:          g.stats.Lookups,
	})
}

// captureQuery files one sampled sharded query into the workload capture:
// the merged global result list is the recorded ground truth, so a replay
// gates the whole scatter-gather (including the merge) and stays
// comparable across rebuilds with different shard counts.
func (x *Index) captureQuery(c *workload.Capture, qz, rawQ []float32, k int,
	opt core.SearchOptions, res []vec.Neighbor, lat time.Duration, traceSeq uint64) {
	q, projected := rawQ, false
	if q == nil {
		q, projected = qz, true
	}
	r := &workload.Record{
		LatencyNs: lat.Nanoseconds(),
		TraceSeq:  traceSeq,
		K:         int32(k),
		Mode:      int32(opt.Mode),
		VisitFrac: opt.VisitFrac,
		Subspaces: int32(opt.Subspaces),
		Projected: projected,
		Query:     append([]float32(nil), q...),
		IDs:       make([]int32, len(res)),
		Dists:     make([]float32, len(res)),
	}
	for i, nb := range res {
		r.IDs[i] = int32(nb.ID)
		r.Dists[i] = nb.Dist
	}
	c.Add(r)
}

// boundSet flags a published cross-shard bound: the low 32 bits hold the
// float32 distance, so a bound of exactly 0.0 is still distinguishable
// from the unset state (the whole word being 0).
const boundSet = uint64(1) << 32

// tightenBound lowers the shared bound to b if b is tighter (CAS loop —
// bounds only ever shrink) and reports whether it actually lowered it.
func tightenBound(state *atomic.Uint64, b float32) bool {
	nv := boundSet | uint64(math.Float32bits(b))
	for {
		old := state.Load()
		if old != 0 && math.Float32frombits(uint32(old)) <= b {
			return false
		}
		if state.CompareAndSwap(old, nv) {
			return true
		}
	}
}

// Add encodes a batch into one shard chosen by the assignment policy. The
// global id range [firstID, firstID+rows) is reserved with a lock-free
// CAS, so concurrent Adds to different shards proceed fully in parallel
// and only batches routed to the same shard serialize on its lock.
func (x *Index) Add(vectors *vec.Matrix) (firstID int, err error) {
	if vectors == nil || vectors.Rows == 0 {
		return int(x.nextID.Load()), nil
	}
	if vectors.Cols != x.dim {
		return 0, fmt.Errorf("shard: Add dimension %d, index dimension %d", vectors.Cols, x.dim)
	}
	rows := vectors.Rows
	var first int64
	for {
		cur := x.nextID.Load()
		// The mapping stores global ids as int32: refuse the reservation
		// rather than silently wrapping negative past 2^31 vectors.
		if cur+int64(rows) > math.MaxInt32+1 {
			return 0, fmt.Errorf("shard: Add of %d rows at %d existing would exceed the int32 global id space", rows, cur)
		}
		if x.nextID.CompareAndSwap(cur, cur+int64(rows)) {
			first = cur
			break
		}
	}
	st := x.pickShard()
	st.addMu.Lock()
	defer st.addMu.Unlock()
	old := *st.ids.Load()
	if len(old) > 0 && old[len(old)-1] > int32(first) {
		// A concurrent batch with later global ids won the shard lock
		// first: the mapping is no longer monotone, so result lists from
		// this shard must be re-sorted before merging.
		st.unordered.Store(true)
	}
	grown := make([]int32, len(old)+rows)
	copy(grown, old)
	for i := 0; i < rows; i++ {
		grown[len(old)+i] = int32(first) + int32(i)
	}
	// Publish the grown mapping BEFORE encoding. st.ix.Add releases the
	// core write lock before returning control here, so a search racing
	// this call can already see the new codes; if the mapping were still
	// the old length, ids[nb.ID] would be out of range. The trailing
	// entries are unreachable until the codes exist, so pre-publishing is
	// safe — and core.Add fails only before any code becomes visible
	// (dimension check and projection precede its critical section), so
	// rolling back to the old mapping on error is equally safe.
	st.ids.Store(&grown)
	if _, err := st.ix.Add(vectors); err != nil {
		st.ids.Store(&old)
		return 0, err
	}
	if testHookPostEncode != nil {
		testHookPostEncode(st)
	}
	return int(first), nil
}

// testHookPostEncode, when non-nil, runs under the shard's Add lock at
// the first point where the batch's codes are visible to searches. Tests
// use it to pin the publication invariant: any search that can see a
// shard's codes must also see a mapping covering their local ids.
var testHookPostEncode func(*shardState)

// pickShard applies the assignment policy.
func (x *Index) pickShard() *shardState {
	switch x.opts.Policy {
	case PolicyLeastLoaded:
		best := x.states[0]
		bestLen := len(*best.ids.Load())
		for _, st := range x.states[1:] {
			if l := len(*st.ids.Load()); l < bestLen {
				best, bestLen = st, l
			}
		}
		return best
	default:
		return x.states[x.rr.Add(1)%uint64(len(x.states))]
	}
}

// ConfigFingerprint identifies the search-relevant configuration. S=1 is
// the single index's own fingerprint (the degenerate case answers
// bit-identically, so captured workloads replay as same-config); S>1
// derives a sharded fingerprint from it.
func (x *Index) ConfigFingerprint() string {
	base := x.states[0].ix.ConfigFingerprint()
	if len(x.states) == 1 {
		return base
	}
	return fingerprintSharded(base, len(x.states))
}

// ReplayRunner adapts the sharded index to the workload replay engine, so
// capture-replay gates cover the scatter-gather merge path.
func (x *Index) ReplayRunner() workload.RunFunc {
	return func(r *workload.Record) ([]int32, []float32, error) {
		opt := core.SearchOptions{
			Mode:      core.SearchMode(r.Mode),
			VisitFrac: r.VisitFrac,
			Subspaces: int(r.Subspaces),
		}
		var res []vec.Neighbor
		var err error
		if r.Projected {
			res, err = x.SearchProjected(r.Query, int(r.K), opt)
		} else {
			res, err = x.Search(r.Query, int(r.K), opt)
		}
		if err != nil {
			return nil, nil, err
		}
		ids := make([]int32, len(res))
		dists := make([]float32, len(res))
		for i, nb := range res {
			ids[i] = int32(nb.ID)
			dists[i] = nb.Dist
		}
		return ids, dists, nil
	}
}
