package vaq

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"vaq/internal/metrics"
)

// TestShardedResetMetrics pins the reset contract: after traffic,
// ResetMetrics zeroes the merged registry AND every per-shard name/shard-i
// registry, including the scatter attribution.
func TestShardedResetMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := genData(rng, 600, 24)
	cfg := Config{NumSubspaces: 6, Budget: 36, Seed: 11, Shards: 3}
	sx, err := BuildSharded(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 6; qi++ {
		if _, err := sx.Search(data[qi*17], 5); err != nil {
			t.Fatal(err)
		}
	}
	// Preconditions: merged, per-shard and scatter counters all moved.
	if snap := sx.Metrics(); snap.Queries != 6 || snap.Sharded == nil || snap.Sharded.WindowQueries != 6 {
		t.Fatalf("precondition: merged snapshot %+v", snap)
	}
	for i := 0; i < sx.Shards(); i++ {
		if s := sx.inner.Shard(i).Metrics().Snapshot(); s.Queries == 0 {
			t.Fatalf("precondition: shard %d registry saw no queries", i)
		}
	}

	sx.ResetMetrics()

	snap := sx.Metrics()
	if snap.Queries != 0 || snap.CodesConsidered != 0 || snap.Lookups != 0 {
		t.Errorf("merged registry not zero after ResetMetrics: %+v", snap)
	}
	if snap.Sharded == nil {
		t.Fatal("ResetMetrics dropped the scatter configuration")
	}
	if snap.Sharded.WindowQueries != 0 {
		t.Errorf("scatter window has %d queries after ResetMetrics", snap.Sharded.WindowQueries)
	}
	for i, v := range snap.Sharded.CriticalPath {
		if v != 0 {
			t.Errorf("critical path[%d] = %d after ResetMetrics", i, v)
		}
	}
	for i := 0; i < sx.Shards(); i++ {
		s := sx.inner.Shard(i).Metrics().Snapshot()
		if s.Queries != 0 || s.CodesConsidered != 0 || s.Lookups != 0 {
			t.Errorf("shard %d registry not zero after ResetMetrics: queries=%d considered=%d",
				i, s.Queries, s.CodesConsidered)
		}
	}

	// The registries keep recording after the reset.
	if _, err := sx.Search(data[0], 5); err != nil {
		t.Fatal(err)
	}
	if snap := sx.Metrics(); snap.Queries != 1 {
		t.Errorf("post-reset traffic recorded %d queries, want 1", snap.Queries)
	}
}

// TestShardedSLOBreachGauge walks the vaq_slo_breach gauge through a
// breach/recover/re-breach cycle on a sharded index's merged registry,
// scraping the Prometheus text surface each step.
func TestShardedSLOBreachGauge(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := genData(rng, 400, 16)
	cfg := Config{
		NumSubspaces: 4, Budget: 24, Seed: 13, Shards: 2,
		SLO: &SLO{LatencyTarget: time.Millisecond, LatencyObjective: 0.5, Window: 4},
	}
	sx, err := BuildSharded(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sx.PublishExpvar("slo_breach_sharded")
	defer func() {
		metrics.Publish("slo_breach_sharded", nil)
		for i := 0; i < sx.Shards(); i++ {
			metrics.Publish(fmt.Sprintf("slo_breach_sharded/shard-%d", i), nil)
		}
	}()

	gauge := func() string {
		t.Helper()
		var b strings.Builder
		if err := metrics.WritePrometheus(&b, "slo_breach_sharded"); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(b.String(), "\n") {
			if strings.HasPrefix(line, `vaq_slo_breach{index="slo_breach_sharded"}`) {
				return line[strings.LastIndex(line, " ")+1:]
			}
		}
		t.Fatal("scrape missing vaq_slo_breach for the sharded merged registry")
		return ""
	}

	// Real scatter latencies are nondeterministic, so drive the merged
	// registry's SLO evaluation with crafted durations — the same entry
	// point the scatter path uses.
	reg := sx.inner.Metrics()
	fast, slow := 50*time.Microsecond, 20*time.Millisecond

	reg.RecordSearch(metrics.SearchRecord{}, fast)
	if g := gauge(); g != "0" {
		t.Fatalf("healthy sharded gauge = %s, want 0", g)
	}
	for i := 0; i < 3; i++ {
		reg.RecordSearch(metrics.SearchRecord{}, slow)
	}
	if g := gauge(); g != "1" {
		t.Fatalf("breached sharded gauge = %s, want 1", g)
	}
	for i := 0; i < 4; i++ {
		reg.RecordSearch(metrics.SearchRecord{}, fast)
	}
	if g := gauge(); g != "0" {
		t.Fatalf("recovered sharded gauge = %s, want 0 (latch must re-arm)", g)
	}
	for i := 0; i < 3; i++ {
		reg.RecordSearch(metrics.SearchRecord{}, slow)
	}
	if g := gauge(); g != "1" {
		t.Fatalf("re-breached sharded gauge = %s, want 1", g)
	}
	if snap := sx.Metrics(); snap.SLO == nil {
		t.Error("sharded snapshot missing the SLO evaluation")
	}
}
