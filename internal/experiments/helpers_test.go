package experiments

import (
	"bytes"
	"strings"
	"testing"

	"vaq/internal/vec"
)

func TestRerank(t *testing.T) {
	base, _ := vec.FromRows([][]float32{
		{0, 0}, {5, 0}, {1, 0}, {10, 0},
	})
	q := []float32{0.4, 0}
	// Candidates in arbitrary order; rerank must sort by true distance.
	got := rerank(base, q, []int{3, 1, 0, 2}, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("rerank got %v", got)
	}
	// k larger than candidate list clamps.
	got = rerank(base, q, []int{1}, 5)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("clamped rerank got %v", got)
	}
	if out := rerank(base, q, nil, 3); len(out) != 0 {
		t.Fatalf("empty candidates: %v", out)
	}
}

func TestPrintTableSpeedupColumn(t *testing.T) {
	rows := []measured{
		{name: "ref", recall: 0.9, mapScore: 0.8, avgQuerySec: 0.002, buildSeconds: 1},
		{name: "fast", recall: 0.85, mapScore: 0.75, avgQuerySec: 0.001, buildSeconds: 2},
	}
	var buf bytes.Buffer
	printTable(&buf, rows, "ref")
	out := buf.String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "2.00x") {
		t.Fatalf("speedup column missing:\n%s", out)
	}
	buf.Reset()
	printTable(&buf, rows, "")
	if strings.Contains(buf.String(), "speedup") {
		t.Fatalf("speedup column should be absent:\n%s", buf.String())
	}
}

func TestBuildTimedPropagatesErrors(t *testing.T) {
	_, err := buildTimed("boom", func() (searchFunc, error) {
		return nil, errBoom
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error not propagated: %v", err)
	}
}

var errBoom = &strErr{"synthetic failure"}

type strErr struct{ s string }

func (e *strErr) Error() string { return e.s }
