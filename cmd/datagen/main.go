// Command datagen writes the repository's synthetic datasets to disk in
// the binary format understood by dataset.Load / cmd/vaqsearch.
//
// Usage:
//
//	datagen -name SIFT -n 100000 -nq 100 -out sift.vaqd
//	datagen -family slc -n 2000 -d 128 -nq 50 -out slc.vaqd
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"vaq/internal/dataset"
)

func main() {
	var (
		name   = flag.String("name", "", "large dataset stand-in: SIFT, SEISMIC, SALD, DEEP, ASTRO")
		family = flag.String("family", "", "gallery family: cbf, slc, sine-mix, random-walk, arma, gmm, box, burst")
		n      = flag.Int("n", 10000, "number of base vectors")
		d      = flag.Int("d", 128, "dimensionality (family mode only)")
		nq     = flag.Int("nq", 100, "number of queries")
		seed   = flag.Int64("seed", 42, "generator seed")
		out    = flag.String("out", "", "output file path (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}
	var ds *dataset.Dataset
	switch {
	case *name != "":
		var err error
		ds, err = dataset.Large(*name, *n, *nq, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
	case *family != "":
		rng := rand.New(rand.NewSource(*seed))
		base := dataset.GenerateFamily(*family, rng, *n, *d)
		queries := dataset.NoisyQueries(rng, base, *nq, 0.05, 0.3)
		ds = &dataset.Dataset{
			Name:    fmt.Sprintf("%s-n%d-d%d", *family, *n, *d),
			Base:    base,
			Train:   base,
			Queries: queries,
		}
	default:
		fmt.Fprintln(os.Stderr, "datagen: one of -name or -family is required")
		os.Exit(2)
	}
	if err := ds.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: saving: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d base vectors, %d queries, dim %d\n",
		*out, ds.Base.Rows, ds.Queries.Rows, ds.Dim())
}
