package vec

import "testing"

// TestTopKSetBound pins the external-bound contract the sharded
// scatter-gather relies on: a bound arms pruning before the heap fills,
// rejects strictly-worse candidates while keeping boundary ties, only
// ever tightens, and survives Reset.
func TestTopKSetBound(t *testing.T) {
	tk := NewTopK(3)
	if tk.Pruning() {
		t.Fatal("fresh TopK reports Pruning")
	}
	tk.SetBound(5.0)
	if !tk.Pruning() {
		t.Fatal("bounded TopK does not report Pruning")
	}
	if got := tk.Threshold(); got != 5.0 {
		t.Fatalf("Threshold() = %v before full, want the bound 5.0", got)
	}
	// Strictly beyond the bound is rejected even though the heap has room.
	if tk.Push(1, 6.0) {
		t.Fatal("Push beyond bound succeeded")
	}
	// A boundary tie is kept: it could be a global top-k member.
	if !tk.Push(2, 5.0) {
		t.Fatal("Push at exactly the bound was rejected")
	}
	if !tk.Push(3, 1.0) || !tk.Push(4, 2.0) {
		t.Fatal("Push under bound rejected")
	}
	// Full now: Threshold reverts to the heap's kth distance.
	if !tk.Full() {
		t.Fatal("heap not full after 3 pushes")
	}
	if got := tk.Threshold(); got != 5.0 {
		t.Fatalf("Threshold() = %v when full, want heap max 5.0", got)
	}
	if tk.Push(5, 0.5) != true {
		t.Fatal("better candidate rejected when full")
	}
	res := tk.Results()
	if len(res) != 3 || res[0].ID != 5 || res[1].ID != 3 || res[2].ID != 4 {
		t.Fatalf("unexpected results %+v", res)
	}

	// Bounds only tighten.
	tk2 := NewTopK(2)
	tk2.SetBound(1.0)
	tk2.SetBound(9.0)
	if got := tk2.Threshold(); got != 1.0 {
		t.Fatalf("loosening SetBound took effect: Threshold() = %v, want 1.0", got)
	}

	// Reset keeps the bound (the fast-kernel re-rank depends on it).
	tk2.Push(0, 0.5)
	tk2.Reset()
	if !tk2.Pruning() {
		t.Fatal("Reset dropped the external bound")
	}
	if got := tk2.Threshold(); got != 1.0 {
		t.Fatalf("Threshold() after Reset = %v, want 1.0", got)
	}
	if tk2.Push(1, 1.5) {
		t.Fatal("Push beyond retained bound succeeded after Reset")
	}
}
