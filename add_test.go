package vaq

import (
	"math/rand"
	"testing"
)

func TestPublicAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	data := genData(rng, 500, 16)
	ix, err := Build(data[:400], Config{NumSubspaces: 4, Budget: 24, Seed: 61, TIClusters: 10})
	if err != nil {
		t.Fatal(err)
	}
	id, err := ix.Add(data[400:])
	if err != nil {
		t.Fatal(err)
	}
	if id != 400 || ix.Len() != 500 {
		t.Fatalf("id %d len %d", id, ix.Len())
	}
	res, err := ix.SearchWith(data[450], 5, SearchOptions{VisitFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.ID == 450 {
			found = true
		}
	}
	if !found {
		t.Fatalf("added vector not found: %v", res)
	}
	if _, err := ix.Add([][]float32{{1, 2}}); err == nil {
		t.Fatal("bad dimension must fail")
	}
	if _, err := ix.Add([][]float32{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged rows must fail")
	}
}
