package diag

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"vaq/internal/quantizer"
	"vaq/internal/vec"
)

// handBuiltInput constructs a tiny index state directly (no core build):
// two subspaces of 2 dims, 1 bit and 0 bits, four vectors. The 0-bit
// subspace has a single-entry dictionary — the degenerate shape a
// reverse-water-filling allocator produces for near-zero-variance
// components — and must flow through every report field without dividing
// by its bit count.
func handBuiltInput() Input {
	sub, err := quantizer.FromLengths([]int{2, 2})
	if err != nil {
		panic(err)
	}
	book0 := &vec.Matrix{Rows: 2, Cols: 2, Data: []float32{-1, -1, 1, 1}}
	book1 := &vec.Matrix{Rows: 1, Cols: 2, Data: []float32{0, 0}}
	cb := &quantizer.Codebooks{Sub: sub, Bits: []int{1, 0}, Books: []*vec.Matrix{book0, book1}}
	codes := &quantizer.Codes{N: 4, M: 2, Data: []uint16{
		0, 0,
		0, 0,
		1, 0,
		1, 0,
	}}
	proj := &vec.Matrix{Rows: 4, Cols: 4, Data: []float32{
		-1, -1, 0.1, 0,
		-1, -1, -0.1, 0,
		1, 1, 0.1, 0,
		1, 1, -0.1, 0,
	}}
	return Input{
		N: 4, Dim: 4,
		Bits:           []int{1, 0},
		VarianceShares: []float64{0.9, 0.1},
		Codebooks:      cb,
		Codes:          codes,
		ClusterSizes:   []int{2, 2},
		Projected:      proj,
	}
}

func TestComputeHandBuilt(t *testing.T) {
	rep := Compute(handBuiltInput())
	if rep.Partial {
		t.Fatal("projected vectors supplied, report must not be partial")
	}
	if len(rep.Subspaces) != 2 {
		t.Fatalf("subspaces = %d, want 2", len(rep.Subspaces))
	}
	s0, s1 := &rep.Subspaces[0], &rep.Subspaces[1]
	// Subspace 0 reconstructs exactly: MSE 0, both codewords used.
	if s0.MSE != 0 || s0.MSEShare != 0 {
		t.Errorf("subspace 0 MSE=%v share=%v, want exact reconstruction", s0.MSE, s0.MSEShare)
	}
	if s0.DeadCodewords != 0 || s0.Entries != 2 {
		t.Errorf("subspace 0 dead=%d entries=%d", s0.DeadCodewords, s0.Entries)
	}
	if math.Abs(s0.UtilizationEntropyBits-1) > 1e-12 || math.Abs(s0.EntropyUtilization-1) > 1e-12 {
		t.Errorf("subspace 0 entropy=%v util=%v, want 1 bit fully utilized", s0.UtilizationEntropyBits, s0.EntropyUtilization)
	}
	// Subspace 1: 0-bit single-entry dictionary at the data mean — MSE is
	// exactly the subspace variance, so the share is 1.
	if s1.Entries != 1 || s1.DeadCodewords != 0 {
		t.Errorf("subspace 1 entries=%d dead=%d", s1.Entries, s1.DeadCodewords)
	}
	if s1.UtilizationEntropyBits != 0 || s1.EntropyUtilization != 1 {
		t.Errorf("subspace 1 entropy=%v util=%v, want 0 bits / fully utilized", s1.UtilizationEntropyBits, s1.EntropyUtilization)
	}
	if math.Abs(s1.MSEShare-1) > 1e-5 {
		t.Errorf("subspace 1 MSE share = %v, want 1 (codeword sits at the mean)", s1.MSEShare)
	}
	// Totals: MSE comes only from subspace 1.
	if math.Abs(rep.TotalMSE-s1.MSE) > 1e-12 {
		t.Errorf("TotalMSE=%v, want %v", rep.TotalMSE, s1.MSE)
	}
	if rep.MSEShare <= 0 || rep.MSEShare > 1 {
		t.Errorf("MSEShare=%v out of (0,1]", rep.MSEShare)
	}
	// Balance: two clusters of two.
	if rep.TI.Clusters != 2 || rep.TI.Gini != 0 || rep.TI.ImbalanceRatio != 1 {
		t.Errorf("TI balance = %+v, want perfectly balanced", rep.TI)
	}
	checkConsistency(t, rep)
}

// checkConsistency asserts the internal invariants every report must
// satisfy: occupancy histograms sum to the dictionary size, utilization
// accounts for exactly N codes, entropy within [0, bits], shares sane.
func checkConsistency(t *testing.T, rep *Report) {
	t.Helper()
	deadTotal := 0
	for i := range rep.Subspaces {
		s := &rep.Subspaces[i]
		sum := 0
		for _, c := range s.OccupancyHist {
			sum += c
		}
		if sum != s.Entries {
			t.Errorf("subspace %d occupancy histogram sums to %d, want %d entries", s.Index, sum, s.Entries)
		}
		if s.OccupancyHist[0] != s.DeadCodewords {
			t.Errorf("subspace %d occupancy[0]=%d != dead=%d", s.Index, s.OccupancyHist[0], s.DeadCodewords)
		}
		if s.UtilizationEntropyBits < -1e-9 || (s.Bits > 0 && s.UtilizationEntropyBits > float64(s.Bits)+1e-9) {
			t.Errorf("subspace %d entropy %v out of [0, %d]", s.Index, s.UtilizationEntropyBits, s.Bits)
		}
		if s.MaxCodewordShare < 0 || s.MaxCodewordShare > 1 {
			t.Errorf("subspace %d max codeword share %v out of [0,1]", s.Index, s.MaxCodewordShare)
		}
		if !rep.Partial && (s.MSE < 0 || s.MSEShare < 0) {
			t.Errorf("subspace %d negative distortion: mse=%v share=%v", s.Index, s.MSE, s.MSEShare)
		}
		deadTotal += s.DeadCodewords
	}
	if deadTotal != rep.DeadCodewordsTotal {
		t.Errorf("DeadCodewordsTotal=%d, subspace sum %d", rep.DeadCodewordsTotal, deadTotal)
	}
	if rep.TI.Gini < 0 || rep.TI.Gini > 1 {
		t.Errorf("gini %v out of [0,1]", rep.TI.Gini)
	}
}

func TestComputePartialWithoutProjected(t *testing.T) {
	in := handBuiltInput()
	in.Projected = nil
	rep := Compute(in)
	if !rep.Partial {
		t.Fatal("no projected vectors: report must be partial")
	}
	if rep.TotalMSE != 0 || rep.MSEShare != 0 {
		t.Errorf("partial report carries distortion values: mse=%v share=%v", rep.TotalMSE, rep.MSEShare)
	}
	// Utilization and balance still fully populated.
	if rep.Subspaces[0].UtilizationEntropyBits == 0 {
		t.Error("partial report lost utilization entropy")
	}
	if rep.TI.Clusters != 2 {
		t.Error("partial report lost cluster balance")
	}
	checkConsistency(t, rep)
}

func TestUtilizationCountsDeadCodewords(t *testing.T) {
	in := handBuiltInput()
	// Map every code of subspace 0 to codeword 1: codeword 0 goes dead.
	for i := 0; i < in.Codes.N; i++ {
		in.Codes.Row(i)[0] = 1
	}
	rep := Compute(in)
	s0 := &rep.Subspaces[0]
	if s0.DeadCodewords != 1 || rep.DeadCodewordsTotal != 1 {
		t.Errorf("dead=%d total=%d, want 1", s0.DeadCodewords, rep.DeadCodewordsTotal)
	}
	if s0.UtilizationEntropyBits != 0 || s0.MaxCodewordShare != 1 {
		t.Errorf("entropy=%v maxShare=%v, want degenerate usage", s0.UtilizationEntropyBits, s0.MaxCodewordShare)
	}
	checkConsistency(t, rep)
}

func TestClusterBalanceSkew(t *testing.T) {
	b := clusterBalance([]int{0, 0, 10, 90})
	if b.Clusters != 4 || b.EmptyClusters != 2 || b.MinSize != 0 || b.MaxSize != 90 {
		t.Fatalf("balance = %+v", b)
	}
	if b.MeanSize != 25 || b.ImbalanceRatio != 3.6 {
		t.Errorf("mean=%v imbalance=%v", b.MeanSize, b.ImbalanceRatio)
	}
	if b.Gini <= 0.5 || b.Gini > 1 {
		t.Errorf("gini=%v, want strongly skewed", b.Gini)
	}
	if even := clusterBalance([]int{5, 5, 5, 5}); even.Gini != 0 {
		t.Errorf("balanced gini=%v, want 0", even.Gini)
	}
}

func TestOccupancyBuckets(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 1 << 25: OccupancyBuckets - 1}
	for count, want := range cases {
		if got := occupancyBucket(count); got != want {
			t.Errorf("occupancyBucket(%d) = %d, want %d", count, got, want)
		}
	}
}

// TestComputeLargerRandom cross-checks the invariants on a bigger random
// instance with wide (>256-entry) dictionaries.
func TestComputeLargerRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, dims = 3000, 6
	sub, _ := quantizer.FromLengths([]int{3, 3})
	bits := []int{9, 2} // 512 entries: exercises the uint16-range codeword path
	books := make([]*vec.Matrix, 2)
	for s := range books {
		books[s] = vec.NewMatrix(1<<bits[s], 3)
		for i := range books[s].Data {
			books[s].Data[i] = float32(rng.NormFloat64())
		}
	}
	cb := &quantizer.Codebooks{Sub: sub, Bits: bits, Books: books}
	proj := vec.NewMatrix(n, dims)
	for i := range proj.Data {
		proj.Data[i] = float32(rng.NormFloat64())
	}
	codes, err := cb.Encode(proj, false)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{n / 2, n / 4, n / 4}
	rep := Compute(Input{
		N: n, Dim: dims, Bits: bits, VarianceShares: []float64{0.7, 0.3},
		Codebooks: cb, Codes: codes, ClusterSizes: sizes, Projected: proj,
	})
	checkConsistency(t, rep)
	// Random codebooks over random data: distortion must be positive and
	// below total energy.
	if rep.TotalMSE <= 0 || rep.MSEShare <= 0 || rep.MSEShare >= 1 {
		t.Errorf("TotalMSE=%v MSEShare=%v", rep.TotalMSE, rep.MSEShare)
	}
	// 512 random centroids over 3000 points: some go unused, none in the
	// 4-entry dictionary's league. Just pin that the wide dictionary's
	// histogram shape holds.
	if rep.Subspaces[0].Entries != 512 {
		t.Errorf("entries=%d, want 512", rep.Subspaces[0].Entries)
	}
}

func TestPublishAndHTTPHandler(t *testing.T) {
	rep := Compute(handBuiltInput())
	Publish("diag_test_index", func() *Report { return rep })
	defer Publish("diag_test_index", nil)

	r := httptest.NewRequest("GET", "/debug/vaq/report?index=diag_test_index", nil)
	w := httptest.NewRecorder()
	handleReport(w, r)
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	var decoded map[string]*Report
	if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	got := decoded["diag_test_index"]
	if got == nil || got.N != 4 || len(got.Subspaces) != 2 {
		t.Fatalf("decoded report = %+v", got)
	}

	r = httptest.NewRequest("GET", "/debug/vaq/report?index=diag_test_index&format=text", nil)
	w = httptest.NewRecorder()
	handleReport(w, r)
	body := w.Body.String()
	for _, needle := range []string{"index:", "ti clusters:", "dead codewords:"} {
		if !strings.Contains(body, needle) {
			t.Errorf("text report missing %q:\n%s", needle, body)
		}
	}

	r = httptest.NewRequest("GET", "/debug/vaq/report?index=nope", nil)
	w = httptest.NewRecorder()
	handleReport(w, r)
	if w.Code != 404 {
		t.Errorf("unknown index: status %d, want 404", w.Code)
	}
}

func TestWriteTextPartialAndDrift(t *testing.T) {
	in := handBuiltInput()
	in.Projected = nil
	rep := Compute(in)
	rep.Drift = &DriftReport{Ratio: 2.5, AlertRatio: 1.5, Alert: true}
	var sb strings.Builder
	if err := WriteText(&sb, rep); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "partial report") {
		t.Errorf("partial marker missing:\n%s", out)
	}
	if !strings.Contains(out, "ALERT") {
		t.Errorf("drift alert missing:\n%s", out)
	}
}
