package metrics

import (
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusBurnFamilies pins the vaq_burn_* exposition block: a
// registry with a published BurnSnapshot emits one row per (objective,
// rule) pair across all four families, in order, and a registry without
// one scrapes byte-identical to the pre-burn format (the families are
// gated, so the full-body golden above stays valid).
func TestWritePrometheusBurnFamilies(t *testing.T) {
	m := NewSized(3, 2)
	promTestRecord(m)
	Publish("burn_golden", m)

	var before strings.Builder
	if err := WritePrometheus(&before, "burn_golden"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(before.String(), "vaq_burn") {
		t.Fatal("burn families emitted without a burn snapshot")
	}

	m.SetBurn(&BurnSnapshot{
		UpdatedAt: time.Now(),
		Rules: []BurnRuleStatus{
			{Objective: "latency", Rule: "fast", Window: 5 * time.Minute, Confirm: 25 * time.Second,
				Threshold: 14.4, Burn: 100, ShortBurn: 50, Covered: 4 * time.Minute, Eligible: true, Firing: true},
			{Objective: "latency", Rule: "slow", Window: time.Hour, Confirm: 5 * time.Minute,
				Threshold: 6, Burn: 2.5, ShortBurn: 50, Covered: 4 * time.Minute},
		},
	})
	var b strings.Builder
	if err := WritePrometheus(&b, "burn_golden"); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	want := `# HELP vaq_burn_rate Error-budget burn rate over the rule's long window (1 = spending exactly the budget).
# TYPE vaq_burn_rate gauge
vaq_burn_rate{index="burn_golden",objective="latency",rule="fast"} 100
vaq_burn_rate{index="burn_golden",objective="latency",rule="slow"} 2.5
# HELP vaq_burn_short_rate Error-budget burn rate over the rule's short confirmation window.
# TYPE vaq_burn_short_rate gauge
vaq_burn_short_rate{index="burn_golden",objective="latency",rule="fast"} 50
vaq_burn_short_rate{index="burn_golden",objective="latency",rule="slow"} 50
# HELP vaq_burn_threshold Burn rate at or above which the rule fires (both windows must agree).
# TYPE vaq_burn_threshold gauge
vaq_burn_threshold{index="burn_golden",objective="latency",rule="fast"} 14.4
vaq_burn_threshold{index="burn_golden",objective="latency",rule="slow"} 6
# HELP vaq_burn_alert 1 while the multi-window burn-rate rule is firing (the vaq.burn.* edge latch).
# TYPE vaq_burn_alert gauge
vaq_burn_alert{index="burn_golden",objective="latency",rule="fast"} 1
vaq_burn_alert{index="burn_golden",objective="latency",rule="slow"} 0
`
	if !strings.Contains(got, want) {
		t.Errorf("burn block missing or malformed\n--- got scrape ---\n%s\n--- want block ---\n%s", got, want)
	}
	// The block is additive: the pre-burn families survive unchanged.
	for _, fam := range []string{"vaq_queries_total", "vaq_query_latency_seconds_count"} {
		if !strings.Contains(got, fam) {
			t.Errorf("burn emission dropped family %s", fam)
		}
	}
}

// TestBurnSnapshotLifecycle covers the registry-side state: SetBurn
// publishes, Snapshot embeds, Reset clears, and the delegation flag
// round-trips.
func TestBurnSnapshotLifecycle(t *testing.T) {
	m := New()
	if m.Burn() != nil {
		t.Fatal("fresh registry has a burn snapshot")
	}
	bs := &BurnSnapshot{UpdatedAt: time.Now(), Rules: []BurnRuleStatus{{Objective: "latency", Rule: "fast"}}}
	m.SetBurn(bs)
	if got := m.Burn(); got != bs {
		t.Fatal("SetBurn did not publish")
	}
	if snap := m.Snapshot(); snap.Burn == nil || len(snap.Burn.Rules) != 1 {
		t.Fatalf("snapshot burn block %+v", snap.Burn)
	}
	if m.SLODelegated() {
		t.Fatal("fresh registry delegated")
	}
	m.DelegateSLOEdges(true)
	if !m.SLODelegated() {
		t.Fatal("delegation did not stick")
	}
	m.DelegateSLOEdges(false)
	if m.SLODelegated() {
		t.Fatal("delegation did not clear")
	}
	m.SetBurn(bs)
	m.Reset()
	if m.Burn() != nil {
		t.Fatal("Reset kept the burn snapshot")
	}
	// Nil-registry safety, matching the rest of the metrics API.
	var nilM *IndexMetrics
	nilM.SetBurn(bs)
	nilM.DelegateSLOEdges(true)
	if nilM.Burn() != nil || nilM.SLODelegated() {
		t.Fatal("nil registry not inert")
	}
}

// TestDelegatedSLOSkipsInstantaneousEdge proves the handoff: with
// delegation armed, violating traffic still counts violations (the burn
// input) but never trips the legacy vaq.slo.latency latch; with it off,
// the latch pages as before.
func TestDelegatedSLOSkipsInstantaneousEdge(t *testing.T) {
	mkViolating := func() *IndexMetrics {
		m := New()
		m.ConfigureSLO(SLO{LatencyTarget: time.Nanosecond, Window: 8}, nil)
		return m
	}

	m := mkViolating()
	m.DelegateSLOEdges(true)
	for i := 0; i < 32; i++ {
		m.RecordSearch(SearchRecord{}, time.Millisecond)
	}
	if m.Alerts().Lookup("vaq.slo.latency").Firing() {
		t.Fatal("instantaneous edge fired while delegated")
	}
	if snap := m.SLOSnapshot(); snap.LatencyViolationsTotal != 32 {
		t.Fatalf("violations total %d, want 32 (burn input must keep counting)", snap.LatencyViolationsTotal)
	}

	m = mkViolating()
	for i := 0; i < 32; i++ {
		m.RecordSearch(SearchRecord{}, time.Millisecond)
	}
	if !m.Alerts().Lookup("vaq.slo.latency").Firing() {
		t.Fatal("undelegated instantaneous edge did not fire")
	}
}
