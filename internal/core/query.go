package core

import (
	"fmt"
	"math"
	"runtime/pprof"
	"time"

	"vaq/internal/metrics"
	"vaq/internal/quantizer"
	"vaq/internal/trace"
	"vaq/internal/vec"
)

// SearchMode selects the query-execution pruning strategy (the Figure 7
// ablation axes).
type SearchMode int

const (
	// ModeTIEA is full VAQ: triangle-inequality data skipping cascaded
	// with early-abandon subspace skipping (Algorithm 4).
	ModeTIEA SearchMode = iota
	// ModeEA scans every code but abandons lookup accumulation early.
	ModeEA
	// ModeHeap is the plain exhaustive ADC scan with a top-k heap.
	ModeHeap
)

func (m SearchMode) String() string {
	switch m {
	case ModeTIEA:
		return "ti+ea"
	case ModeEA:
		return "ea"
	case ModeHeap:
		return "heap"
	}
	return "unknown"
}

// SearchOptions tune one query.
type SearchOptions struct {
	// Mode selects the pruning strategy (default ModeTIEA).
	Mode SearchMode
	// VisitFrac overrides the fraction of TI clusters visited
	// (0 = the index's DefaultVisitFrac). Only meaningful for ModeTIEA.
	VisitFrac float64
	// Subspaces limits distance accumulation to the first t subspaces
	// (0 = all). Used by the Figure 4 subspace-omission experiment; it
	// forces a full scan (TI bounds are invalid on truncated distances).
	Subspaces int
	// InitialThreshold seeds the top-k collector with an external
	// admission bound (a squared distance; 0 = none): candidates farther
	// than it are pruned — by TI skipping, early abandoning and heap
	// admission — even before k neighbors have been collected. The
	// scatter-gather path feeds the running global k-th distance into
	// per-shard searches so later shards inherit the earlier shards'
	// pruning power. A bound equal to the true k-th distance keeps
	// boundary ties (admission rejects strictly-greater only).
	InitialThreshold float32
}

// Search returns the approximate k nearest neighbors of q with default
// options. Distances are squared Euclidean in the quantized space.
func (ix *Index) Search(q []float32, k int) ([]vec.Neighbor, error) {
	return ix.SearchWith(q, k, SearchOptions{})
}

// SearchWith returns the approximate k nearest neighbors of q under the
// given options.
func (ix *Index) SearchWith(q []float32, k int, opt SearchOptions) ([]vec.Neighbor, error) {
	s := ix.newSearcher()
	return s.Search(q, k, opt)
}

// SearchStats instruments one query: how much work each pruning layer
// saved. Lookups counts per-subspace table accumulations; a plain scan
// performs exactly Codes x Subspaces of them.
type SearchStats struct {
	// ClustersVisited is the number of TI clusters scanned (0 for the
	// non-TI modes).
	ClustersVisited int
	// CodesConsidered counts encoded vectors reached by the scan loop
	// (TI-unvisited clusters are excluded).
	CodesConsidered int
	// CodesSkippedTI counts vectors pruned by the triangle bound before
	// any lookup.
	CodesSkippedTI int
	// CodesAbandonedEA counts vectors whose accumulation was cut short.
	CodesAbandonedEA int
	// Lookups counts subspace table accumulations actually performed.
	Lookups int
	// AbandonDepths attributes early abandons to the lookup count at which
	// they happened: AbandonDepths[i] counts codes cut short after exactly
	// i table lookups (nonzero entries sit at multiples of EACheckEvery).
	// Nil when metrics are disabled; the slice aliases per-Searcher scratch,
	// valid until the next query on the same Searcher.
	AbandonDepths []uint32
	// TISkipsByRank attributes triangle-inequality pruning to the visit
	// rank of the cluster it happened in: TISkipsByRank[r] counts codes
	// pruned inside the r-th nearest visited cluster, with ranks past the
	// last bucket clamped into it. Same lifetime as AbandonDepths.
	TISkipsByRank []uint32
}

// record converts the stats to the dependency-free currency the metrics
// registry and tracer share. The attribution slices are passed by reference
// (RecordSearch folds them immediately; the tracer stores the record only in
// a completed QueryTrace, which deep-copies via recordCopy).
func (st *SearchStats) record() metrics.SearchRecord {
	return metrics.SearchRecord{
		ClustersVisited:  st.ClustersVisited,
		CodesConsidered:  st.CodesConsidered,
		CodesSkippedTI:   st.CodesSkippedTI,
		CodesAbandonedEA: st.CodesAbandonedEA,
		Lookups:          st.Lookups,
		AbandonDepths:    st.AbandonDepths,
		TISkipsByRank:    st.TISkipsByRank,
	}
}

// recordCopy is record with the attribution slices deep-copied, safe to
// retain past the next query (QueryTraces live in the tracer ring).
func (st *SearchStats) recordCopy() metrics.SearchRecord {
	r := st.record()
	r.AbandonDepths = append([]uint32(nil), r.AbandonDepths...)
	r.TISkipsByRank = append([]uint32(nil), r.TISkipsByRank...)
	return r
}

// Searcher holds per-query scratch buffers so batch workloads don't
// allocate per query. Not safe for concurrent use; create one per
// goroutine via NewSearcher.
type Searcher struct {
	ix   *Index
	lut  *quantizer.LUT
	flut []float32 // float tables over the fast store's scan dictionaries
	ilut intLUT    // uint8 quantization of flut; filled only for fast scans
	// pushed records the candidates the integer scan accepted into the
	// top-k — id plus the dequantized distance it was pushed with — the
	// candidate set rerankFast rescores with exact float arithmetic. The
	// stored distance lets the re-rank skip candidates whose quantized
	// estimate already proves them outside the exact top-k.
	pushed   []pushCand
	clustD   []float32
	clustIdx []int
	topk     *vec.TopK
	stats    SearchStats
	// rec collects per-query spans when the index had a tracer attached at
	// Searcher creation (nil otherwise: every Recorder method is nil-safe).
	rec *trace.Recorder
	// projDur backdates the trace origin by the query-projection time,
	// which happens before run opens the traced window. Consumed by run.
	projDur time.Duration
	// rawQ holds the caller's unprojected query for the duration of one
	// Search call (nil for SearchProjected) so the workload capture can
	// record the portable raw vector instead of the PCA-space one.
	rawQ []float32
	// depthScratch/rankScratch back stats.AbandonDepths/TISkipsByRank so
	// batch workloads don't allocate attribution per query.
	depthScratch []uint32
	rankScratch  []uint32
}

// LastStats reports the instrumentation of the most recent query. Its
// attribution slices alias Searcher scratch: copy them before the next
// query on this Searcher if they must outlive it.
func (s *Searcher) LastStats() SearchStats { return s.stats }

// NewSearcher returns a reusable query context for this index.
func (ix *Index) NewSearcher() *Searcher { return ix.newSearcher() }

func (ix *Index) newSearcher() *Searcher {
	return &Searcher{ix: ix, rec: ix.tracer.Load().NewRecorder()}
}

// AttachTracer re-points this Searcher at t (nil detaches). Searchers pick
// up the index tracer at creation; long-lived ones built before
// EnableTracing use this to opt in without being recreated.
func (s *Searcher) AttachTracer(t *trace.Tracer) { s.rec = t.NewRecorder() }

// Search runs one query through the reusable context. q is the RAW
// (unprojected) query.
func (s *Searcher) Search(q []float32, k int, opt SearchOptions) ([]vec.Neighbor, error) {
	if k < 1 {
		s.ix.metrics.RecordError()
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	var projStart time.Time
	if s.rec.Active() {
		projStart = time.Now()
	}
	if pc := s.ix.profCtx.Load(); pc != nil {
		// Label the projection phase; run switches to lut_fill/scan and
		// clears the labels when the query finishes.
		pprof.SetGoroutineLabels(pc.project)
	}
	qz, err := s.ix.ProjectQuery(q)
	if err != nil {
		if pc := s.ix.profCtx.Load(); pc != nil {
			pprof.SetGoroutineLabels(pc.clear)
		}
		s.ix.metrics.RecordError()
		return nil, err
	}
	if s.rec.Active() {
		s.projDur = time.Since(projStart)
	}
	s.rawQ = q
	return s.run(qz, k, opt), nil
}

// SearchProjected runs one query that is already in the index's PCA space.
func (s *Searcher) SearchProjected(qz []float32, k int, opt SearchOptions) ([]vec.Neighbor, error) {
	if k < 1 {
		s.ix.metrics.RecordError()
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if len(qz) != s.ix.cb.Sub.Dim() {
		s.ix.metrics.RecordError()
		return nil, fmt.Errorf("core: projected query dim %d, want %d", len(qz), s.ix.cb.Sub.Dim())
	}
	s.rawQ = nil
	return s.run(qz, k, opt), nil
}

func (s *Searcher) run(qz []float32, k int, opt SearchOptions) []vec.Neighbor {
	ix := s.ix
	// Queries read codes/ti/blocked/retained, which Add mutates in place
	// under the write lock; uncontended RLock is noise next to the scan.
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	rec := s.rec
	pc := ix.profCtx.Load()
	wcap := ix.capture.Load()
	var start time.Time
	if ix.metrics != nil || wcap != nil {
		start = time.Now()
	}
	if rec.Active() {
		// Backdate the trace origin so the projection (done by the caller)
		// occupies [0, projDur) of the timeline.
		rec.Begin(s.projDur)
		if s.projDur > 0 {
			rec.Add(trace.Span{Name: trace.SpanProject, Dur: s.projDur})
		}
		s.projDur = 0
	}
	mSub := ix.cb.Sub.M()
	useSub := mSub
	if opt.Subspaces > 0 && opt.Subspaces < mSub {
		useSub = opt.Subspaces
	}
	mode := opt.Mode
	if useSub < mSub && mode == ModeTIEA {
		// Truncated distances invalidate the TI bound; degrade gracefully.
		mode = ModeEA
	}
	// The integer kernels accumulate the full subspace range (truncated
	// distances would need their own delta/scale) and ModeEA's contract is
	// original-id scan order over the canonical codes — both fall back to
	// the exact kernels.
	fast := ix.fast != nil && useSub == mSub && mode != ModeEA
	// Build or refill the lookup tables (Algorithm 4 lines 5-13). The fast
	// path fills the (much smaller) tables over the integer store's scan
	// dictionaries and quantizes those; the full-dictionary LUT is neither
	// filled nor read — the exact re-rank goes back to the codebooks.
	if pc != nil {
		pprof.SetGoroutineLabels(pc.lut)
	}
	lutStart := rec.Clock()
	if fast {
		s.flut = ix.fast.fillFloatLUT(qz, s.flut)
	} else if s.lut == nil {
		s.lut = ix.cb.BuildLUT(qz)
	} else {
		ix.cb.FillLUT(qz, s.lut)
	}
	if rec.Active() {
		rec.Add(trace.Span{Name: trace.SpanLUTFill, Start: lutStart, Dur: rec.Clock() - lutStart})
	}
	s.topk = vec.NewTopK(k)
	if opt.InitialThreshold > 0 {
		s.topk.SetBound(opt.InitialThreshold)
	}
	s.stats = SearchStats{}

	if ix.metrics != nil {
		// Attach the pruning-attribution scratch; the kernels increment it
		// behind one nil check, so the metrics-off path pays nothing.
		if len(s.depthScratch) != mSub+1 {
			s.depthScratch = make([]uint32, mSub+1)
			s.rankScratch = make([]uint32, metrics.ClusterRankBuckets)
		} else {
			clear(s.depthScratch)
			clear(s.rankScratch)
		}
		s.stats.AbandonDepths = s.depthScratch
		s.stats.TISkipsByRank = s.rankScratch
	}
	if fast {
		quantStart := rec.Clock()
		s.ilut.quantize(s.flut, ix.fast.offsets, mSub)
		s.pushed = s.pushed[:0]
		if rec.Active() {
			rec.Add(trace.Span{Name: trace.SpanLUTQuant, Start: quantStart, Dur: rec.Clock() - quantStart})
		}
	}
	if pc != nil {
		pprof.SetGoroutineLabels(pc.scan)
	}
	scanStart := rec.Clock()
	switch mode {
	case ModeHeap:
		if fast {
			s.scanHeapFast()
		} else if ix.blocked != nil {
			s.scanHeapBlocked(useSub)
		} else {
			s.scanHeap(useSub)
		}
	case ModeEA:
		// EA's observable semantics (threshold evolution, abandon counts)
		// are tied to its original-id scan order, which is already a
		// sequential walk of the canonical row-major codes — both layouts
		// share this kernel.
		s.scanEA(useSub)
	default:
		if fast {
			s.scanTIEAFast(qz, opt.VisitFrac)
		} else if ix.blocked != nil {
			s.scanTIEABlocked(qz, opt.VisitFrac, useSub)
		} else {
			s.scanTIEA(qz, opt.VisitFrac, useSub)
		}
	}
	if rec.Active() && mode != ModeTIEA {
		// The TI+EA kernels emit per-cluster spans themselves; the
		// whole-dataset modes get one span covering the scan.
		rec.Add(trace.Span{
			Name: trace.SpanScan, Start: scanStart, Dur: rec.Clock() - scanStart,
			Count:       s.stats.CodesConsidered,
			AbandonedEA: s.stats.CodesAbandonedEA,
			Lookups:     s.stats.Lookups,
		})
	}
	if fast {
		rerankStart := rec.Clock()
		s.rerankFast(qz)
		if rec.Active() {
			rec.Add(trace.Span{Name: trace.SpanRerank, Start: rerankStart,
				Dur: rec.Clock() - rerankStart, Count: len(s.pushed)})
		}
	}
	var lat time.Duration
	if ix.metrics != nil || wcap != nil {
		lat = time.Since(start)
	}
	if ix.metrics != nil {
		ix.metrics.RecordSearch(s.stats.record(), lat)
	}
	var traceSeq uint64
	if rec.Active() {
		traceSeq = rec.End(mode.String(), k, s.stats.recordCopy())
	}
	res := s.topk.Results()
	// The workload capture happens after the trace closes so the record
	// can carry the exemplar's sequence id; the sampling stride only
	// advances while a capture is attached.
	if wcap != nil && wcap.ShouldSample() {
		s.captureQuery(wcap, qz, k, opt, res, lat.Nanoseconds(), traceSeq)
	}
	// Shadow-exact recall sampling happens after the trace closes so the
	// exemplar durations measure the approximate query, not the audit.
	if ix.recallEvery > 0 && ix.recallCtr.Add(1)%ix.recallEvery == 0 {
		s.shadowRecallSample(qz, k, res)
	}
	if pc != nil {
		pprof.SetGoroutineLabels(pc.clear)
	}
	return res
}

// shadowRecallSample audits one answer against an exact scan of the
// retained projected dataset. PCA rotation is orthogonal, so exact squared
// L2 in the projected space ranks identically to the raw space; the hit
// count folds into the registry's online recall estimate.
func (s *Searcher) shadowRecallSample(qz []float32, k int, approx []vec.Neighbor) {
	data := s.ix.retained
	if data == nil {
		return
	}
	exact := vec.NewTopK(k)
	for i := 0; i < data.Rows; i++ {
		exact.Push(i, vec.SquaredL2(qz, data.Row(i)))
	}
	truth := exact.Results()
	got := make(map[int]struct{}, len(approx))
	for _, nb := range approx {
		got[nb.ID] = struct{}{}
	}
	hits := 0
	for _, nb := range truth {
		if _, ok := got[nb.ID]; ok {
			hits++
		}
	}
	s.ix.metrics.RecordRecallSample(hits, len(truth))
}

// eaAccumulate accumulates one row-major code word against the lookup
// tables with the early-abandon cadence of §III-E: every check subspaces
// (and only once the top-k heap was full when the code was reached —
// notFull snapshots that), the partial distance is tested against the
// best-so-far threshold bsf. It returns the accumulated distance, the
// number of lookups performed, and whether the code was abandoned.
//
// The chunked loop preserves the exact semantics of the historical
// per-term "(sI+1)%check == 0" test — abandons happen only at chunk
// boundaries and the tail after the last full chunk is never tested —
// while replacing the modulo with loop structure and giving the compiler
// a 4-wide unrolled body whose loads can issue in parallel. Additions stay
// strictly sequential in subspace order so every kernel (and both scan
// layouts) produces bit-identical float32 distances.
func eaAccumulate(dist []float32, offsets []int, row []uint16, useSub, check int, bsf float32, notFull bool) (float32, int, bool) {
	var d float32
	sI := 0
	if !notFull {
		for sI+check <= useSub {
			end := sI + check
			for ; sI+4 <= end; sI += 4 {
				a0 := dist[offsets[sI]+int(row[sI])]
				a1 := dist[offsets[sI+1]+int(row[sI+1])]
				a2 := dist[offsets[sI+2]+int(row[sI+2])]
				a3 := dist[offsets[sI+3]+int(row[sI+3])]
				d += a0
				d += a1
				d += a2
				d += a3
			}
			for ; sI < end; sI++ {
				d += dist[offsets[sI]+int(row[sI])]
			}
			if d > bsf {
				return d, sI, true
			}
		}
	}
	for ; sI+4 <= useSub; sI += 4 {
		a0 := dist[offsets[sI]+int(row[sI])]
		a1 := dist[offsets[sI+1]+int(row[sI+1])]
		a2 := dist[offsets[sI+2]+int(row[sI+2])]
		a3 := dist[offsets[sI+3]+int(row[sI+3])]
		d += a0
		d += a1
		d += a2
		d += a3
	}
	for ; sI < useSub; sI++ {
		d += dist[offsets[sI]+int(row[sI])]
	}
	return d, useSub, false
}

// scanHeap is the no-pruning baseline: accumulate every subspace of every
// code (Figure 7 "Heap").
func (s *Searcher) scanHeap(useSub int) {
	ix := s.ix
	codes := ix.codes
	lut := s.lut
	m := codes.M
	for i := 0; i < codes.N; i++ {
		row := codes.Data[i*m : i*m+useSub]
		var d float32
		for sI, c := range row {
			d += lut.Dist[lut.Offsets[sI]+int(c)]
		}
		s.topk.Push(i, d)
	}
	s.stats.CodesConsidered = codes.N
	s.stats.Lookups = codes.N * useSub
}

// scanEA scans every code but early-abandons the subspace accumulation
// when the partial distance already exceeds the best-so-far k-th distance
// (§III-E "Subspace Skipping"; Figure 7 "EA"). Because the subspaces are
// importance-ordered, the first few terms dominate and most lookups are
// skipped.
func (s *Searcher) scanEA(useSub int) {
	ix := s.ix
	codes := ix.codes
	dist, offsets := s.lut.Dist, s.lut.Offsets
	m := codes.M
	check := ix.cfg.EACheckEvery
	for i := 0; i < codes.N; i++ {
		row := codes.Data[i*m : i*m+useSub]
		bsf := s.topk.Threshold()
		notFull := !s.topk.Pruning()
		d, lookups, abandoned := eaAccumulate(dist, offsets, row, useSub, check, bsf, notFull)
		s.stats.Lookups += lookups
		if abandoned {
			s.stats.CodesAbandonedEA++
			if s.stats.AbandonDepths != nil {
				s.stats.AbandonDepths[lookups]++
			}
		} else {
			s.topk.Push(i, d)
		}
	}
	s.stats.CodesConsidered = codes.N
}

// orderClusters ranks the TI clusters for one query: it fills s.clustD
// with the SQUARED prefix distances to every centroid, sorts cluster ids
// ascending by that (squared distance is order-equivalent to plain, so
// the ranking needs no roots), and returns how many clusters the visit
// fraction admits. The kernels take the root only for clusters they
// actually visit — the triangle bound needs plain distances — saving
// ~(1-visitFrac)*TIClusters sqrt calls per query.
func (s *Searcher) orderClusters(qz []float32, visitFrac float64) int {
	ix := s.ix
	ti := ix.ti
	if visitFrac <= 0 {
		visitFrac = ix.cfg.DefaultVisitFrac
	}
	if visitFrac > 1 {
		visitFrac = 1
	}
	nClusters := len(ti.clusters)
	visit := int(math.Ceil(visitFrac * float64(nClusters)))
	if visit < 1 {
		visit = 1
	}
	if visit > nClusters {
		visit = nClusters
	}
	s.clustD = ti.queryClusterDistancesSq(qz, s.clustD)
	if cap(s.clustIdx) < nClusters {
		s.clustIdx = make([]int, nClusters)
	}
	s.clustIdx = s.clustIdx[:nClusters]
	for i := range s.clustIdx {
		s.clustIdx[i] = i
	}
	s.selectNearestClusters(visit)
	return visit
}

// selectNearestClusters reorders s.clustIdx so its first visit entries are
// the visit nearest clusters in ascending (squared distance, cluster id)
// order. Only the visited prefix needs an order, so a quickselect narrows
// the boundary segment in expected O(nClusters) comparisons and the final
// sort covers visit entries instead of all of them — at the default visit
// fractions that removes most of the per-query ranking cost. The id
// tiebreak makes the key a strict total order, so the visited set and its
// order are deterministic even when two centroids are equidistant.
func (s *Searcher) selectNearestClusters(visit int) {
	idx, d := s.clustIdx, s.clustD
	less := func(a, b int) bool {
		if d[a] != d[b] {
			return d[a] < d[b]
		}
		return a < b
	}
	lo, hi := 0, len(idx)
	for hi-lo > 16 {
		// Median-of-three pivot from the segment's ends and middle.
		mid := lo + (hi-lo)/2
		if less(idx[mid], idx[lo]) {
			idx[mid], idx[lo] = idx[lo], idx[mid]
		}
		if less(idx[hi-1], idx[lo]) {
			idx[hi-1], idx[lo] = idx[lo], idx[hi-1]
		}
		if less(idx[hi-1], idx[mid]) {
			idx[hi-1], idx[mid] = idx[mid], idx[hi-1]
		}
		pivot := idx[mid]
		i, j := lo, hi-1
		for i <= j {
			for less(idx[i], pivot) {
				i++
			}
			for less(pivot, idx[j]) {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		// Keys are distinct, so [lo..j] < pivot-zone < [i..hi). Descend
		// into whichever side still straddles the visit boundary.
		if visit <= j+1 {
			hi = j + 1
		} else if visit >= i {
			lo = i
		} else {
			// The boundary falls in the (single-element) pivot zone:
			// membership of idx[:visit] is already settled.
			lo, hi = visit, visit
		}
	}
	// Insertion-sort the small segment that still straddles the boundary,
	// settling which elements belong in the prefix.
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && less(idx[j], idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sortClustersByDist(idx[:visit], d)
}

// sortClustersByDist sorts cluster indices ascending by (squared distance,
// id) — the same strict total order selectNearestClusters partitions by,
// so any correct sort yields the identical sequence. A concrete
// median-of-three quicksort instead of sort.Slice: the visited prefix is
// sorted on every query, and the reflection-based swapper was a measurable
// slice of per-query ranking cost.
func sortClustersByDist(idx []int, d []float32) {
	for len(idx) > 12 {
		mid := len(idx) / 2
		hi := len(idx) - 1
		if clusterDistLess(idx[mid], idx[0], d) {
			idx[mid], idx[0] = idx[0], idx[mid]
		}
		if clusterDistLess(idx[hi], idx[0], d) {
			idx[hi], idx[0] = idx[0], idx[hi]
		}
		if clusterDistLess(idx[hi], idx[mid], d) {
			idx[hi], idx[mid] = idx[mid], idx[hi]
		}
		pivot := idx[mid]
		i, j := 0, hi
		for i <= j {
			for clusterDistLess(idx[i], pivot, d) {
				i++
			}
			for clusterDistLess(pivot, idx[j], d) {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		// Recurse into the smaller side, iterate on the larger.
		if j+1 < len(idx)-i {
			sortClustersByDist(idx[:j+1], d)
			idx = idx[i:]
		} else {
			sortClustersByDist(idx[i:], d)
			idx = idx[:j+1]
		}
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && clusterDistLess(idx[j], idx[j-1], d); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

func clusterDistLess(a, b int, d []float32) bool {
	if d[a] != d[b] {
		return d[a] < d[b]
	}
	return a < b
}

// scanTIEA is the full cascade (Algorithm 4): order TI clusters by query
// distance, visit only the nearest fraction, skip members via the triangle
// inequality, and early-abandon lookups for survivors.
func (s *Searcher) scanTIEA(qz []float32, visitFrac float64, useSub int) {
	ix := s.ix
	ti := ix.ti
	codes := ix.codes
	dist, offsets := s.lut.Dist, s.lut.Offsets
	m := codes.M
	check := ix.cfg.EACheckEvery
	rec := s.rec
	rankStart := rec.Clock()
	visit := s.orderClusters(qz, visitFrac)
	if rec.Active() {
		rec.Add(trace.Span{Name: trace.SpanClusterRank, Start: rankStart, Dur: rec.Clock() - rankStart, Count: visit})
	}
	s.stats.ClustersVisited = visit
	for v := 0; v < visit; v++ {
		c := s.clustIdx[v]
		rk := clampRank(v, len(s.stats.TISkipsByRank))
		var spanStart time.Duration
		var before SearchStats
		if rec.Active() {
			spanStart = rec.Clock()
			before = s.stats
		}
		// The ranking sorted squared distances; the triangle bound needs
		// the plain distance, taken only for the visited fraction.
		dq := float32(math.Sqrt(float64(s.clustD[c])))
		members := ti.clusters[c]
		s.stats.CodesConsidered += len(members)
		for mi, e := range members {
			if s.topk.Pruning() {
				bsfSq := s.topk.Threshold()
				// Triangle inequality in the prefix space: the
				// query-to-member distance is at least |dq - ds|, and the
				// full ADC distance is at least the squared prefix bound.
				diff := dq - e.dist
				if diff < 0 {
					diff = -diff
				}
				if diff*diff >= bsfSq {
					if e.dist >= dq {
						// Members are sorted ascending by ds: every later
						// member has an even larger bound. Stop the cluster.
						s.stats.CodesSkippedTI += len(members) - mi
						if s.stats.TISkipsByRank != nil {
							s.stats.TISkipsByRank[rk] += uint32(len(members) - mi)
						}
						break
					}
					s.stats.CodesSkippedTI++
					if s.stats.TISkipsByRank != nil {
						s.stats.TISkipsByRank[rk]++
					}
					continue
				}
			}
			// Early-abandon accumulation for the survivor.
			row := codes.Data[e.id*m : e.id*m+useSub]
			bsf := s.topk.Threshold()
			notFull := !s.topk.Pruning()
			d, lookups, abandoned := eaAccumulate(dist, offsets, row, useSub, check, bsf, notFull)
			s.stats.Lookups += lookups
			if abandoned {
				s.stats.CodesAbandonedEA++
				if s.stats.AbandonDepths != nil {
					s.stats.AbandonDepths[lookups]++
				}
			} else {
				s.topk.Push(e.id, d)
			}
		}
		if rec.Active() {
			rec.Add(clusterScanSpan(spanStart, rec.Clock(), c, v, len(members), &before, &s.stats))
		}
	}
}

// clampRank maps a cluster visit rank into the attribution buckets (the
// tail shares the last bucket). buckets == 0 means attribution is off; the
// return value is unused then.
func clampRank(v, buckets int) int {
	if v >= buckets {
		return buckets - 1
	}
	return v
}

// clusterScanSpan builds the SpanClusterScan for one visited cluster from
// the stat deltas it produced.
func clusterScanSpan(start, end time.Duration, cluster, rank, members int, before, after *SearchStats) trace.Span {
	return trace.Span{
		Name: trace.SpanClusterScan, Start: start, Dur: end - start,
		Cluster: cluster, Rank: rank, Count: members,
		SkippedTI:   after.CodesSkippedTI - before.CodesSkippedTI,
		AbandonedEA: after.CodesAbandonedEA - before.CodesAbandonedEA,
		Lookups:     after.Lookups - before.Lookups,
	}
}
