package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzRead ensures the index deserializer fails cleanly on corrupt input:
// no panics, no runaway allocations, and anything it accepts must answer
// queries without crashing.
func FuzzRead(f *testing.F) {
	rng := rand.New(rand.NewSource(91))
	x := skewedData(rng, 120, 8, 1.0)
	ix, err := Build(x, x, Config{NumSubspaces: 2, Budget: 8, Seed: 91, TIClusters: 4})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0xFF
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got.Len() < 0 || got.Dim() <= 0 {
			t.Fatalf("accepted index with shape %d/%d", got.Len(), got.Dim())
		}
		q := make([]float32, got.Dim())
		// Any accepted index must survive a query (codes may be garbage;
		// answers just need to come back without a crash).
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("query on accepted index panicked: %v", r)
			}
		}()
		_, _ = got.Search(q, 3)
	})
}
