// Command vaqreplay re-runs a captured query workload (a .vaqwl log
// written by vaqsearch -capture or Index.EnableCapture) against a VAQ
// index and diffs every answer against the recorded ground truth: result
// overlap@k, distance drift, and latency. Replaying against the index
// configuration that captured the log (a deterministic rebuild) must
// reproduce it exactly; replaying against a candidate configuration
// measures how far it diverges on real traffic — a portable regression
// suite made from production queries.
//
// Usage:
//
//	datagen -name SALD -n 5000 -nq 50 -out sald.vaqd
//	vaqsearch -data sald.vaqd -subspaces 16 -budget 128 -capture run.vaqwl
//	vaqreplay -log run.vaqwl -data sald.vaqd -subspaces 16 -budget 128 -min-overlap 1
//	vaqreplay -log run.vaqwl -data sald.vaqd -subspaces 16 -budget 16   # candidate config
//	vaqreplay -log run.vaqwl -data sald.vaqd ... -accuracy fast -min-overlap 0.95  # int-kernel recall gate
//	vaqreplay -log run.vaqwl -data sald.vaqd ... -shards 4 -min-overlap 0.97  # scatter-gather merge gate
//	vaqreplay -log run.vaqwl -data sald.vaqd ... -speed recorded        # paced replay
//
// Exit status: 0 when every configured threshold holds, 1 on a threshold
// violation (or any replayed query erroring), 2 on bad usage or input.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vaq/internal/core"
	"vaq/internal/dataset"
	"vaq/internal/shard"
	"vaq/internal/workload"
)

func main() {
	var (
		logPath   = flag.String("log", "", "captured .vaqwl workload log (required)")
		dataPath  = flag.String("data", "", "dataset file from cmd/datagen to rebuild the target index from (required)")
		budget    = flag.Int("budget", 256, "bit budget per vector")
		subspaces = flag.Int("subspaces", 32, "number of subspaces")
		minBits   = flag.Int("minbits", 1, "minimum bits per subspace")
		maxBits   = flag.Int("maxbits", 13, "maximum bits per subspace")
		nonUnif   = flag.Bool("nonuniform", false, "cluster dimensions into non-uniform subspaces")
		layoutStr = flag.String("layout", "blocked", "scan layout: blocked or rowmajor")
		accStr    = flag.String("accuracy", "exact", "scan arithmetic: exact or fast (integer kernel)")
		seed      = flag.Int64("seed", 42, "build seed")
		shards    = flag.Int("shards", 1, "shard count: >1 rebuilds a sharded scatter-gather index, so the replay gates merge correctness")
		speed     = flag.String("speed", "max", "replay speed: max (back to back) or recorded (reproduce capture spacing)")
		minOvl    = flag.Float64("min-overlap", 0, "minimum acceptable mean overlap@k in [0,1] (0 disables)")
		maxDrift  = flag.Float64("max-drift", -1, "maximum acceptable relative distance drift (negative disables; 0 demands bit-equal distances)")
		maxLatFac = flag.Float64("max-latency-factor", 0, "maximum acceptable replay-p99 over recorded-p99 ratio (0 disables)")
		verbose   = flag.Bool("v", false, "print every diverging query")
	)
	flag.Parse()
	if *logPath == "" || *dataPath == "" {
		fmt.Fprintln(os.Stderr, "vaqreplay: -log and -data are required")
		os.Exit(2)
	}
	var layout core.ScanLayout
	switch *layoutStr {
	case "blocked":
		layout = core.LayoutBlocked
	case "rowmajor":
		layout = core.LayoutRowMajor
	default:
		fmt.Fprintf(os.Stderr, "vaqreplay: unknown layout %q (blocked or rowmajor)\n", *layoutStr)
		os.Exit(2)
	}
	var accuracy core.AccuracyMode
	switch *accStr {
	case "", "exact":
		accuracy = core.AccuracyExact
	case "fast":
		accuracy = core.AccuracyFast
	default:
		fmt.Fprintf(os.Stderr, "vaqreplay: unknown accuracy %q (exact or fast)\n", *accStr)
		os.Exit(2)
	}
	var paced bool
	switch *speed {
	case "max":
	case "recorded":
		paced = true
	default:
		fmt.Fprintf(os.Stderr, "vaqreplay: unknown speed %q (max or recorded)\n", *speed)
		os.Exit(2)
	}

	log, err := workload.LoadLog(*logPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vaqreplay: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("log %s: %d queries, dim %d, fingerprint %s\n",
		*logPath, len(log.Records), log.Dim, log.Fingerprint)
	if log.Shards > 0 {
		fmt.Printf("log provenance: captured on a %d-shard scatter-gather index\n", log.Shards)
		if *shards != log.Shards {
			fmt.Printf("note: replaying with -shards %d against a %d-shard capture — diffing across scatter shapes\n",
				*shards, log.Shards)
		}
	}

	ds, err := dataset.Load(*dataPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vaqreplay: %v\n", err)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "vaqreplay: -shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	cfg := core.Config{
		NumSubspaces: *subspaces,
		Budget:       *budget,
		MinBits:      *minBits,
		MaxBits:      *maxBits,
		NonUniform:   *nonUnif,
		Seed:         *seed,
		ScanLayout:   layout,
		AccuracyMode: accuracy,
	}
	start := time.Now()
	// The replay runner and fingerprint come from whichever index shape
	// was requested; S=1 shares the unsharded fingerprint because it
	// answers bit-identically.
	var (
		runner workload.RunFunc
		fp     string
		n, dim int
	)
	if *shards > 1 {
		x, err := shard.Build(ds.Train, ds.Base, cfg, shard.Options{Shards: *shards})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vaqreplay: sharded build: %v\n", err)
			os.Exit(2)
		}
		runner, fp, n, dim = x.ReplayRunner(), x.ConfigFingerprint(), x.Len(), x.Dim()
		fmt.Printf("index: %d shards (scatter-gather replay)\n", x.Shards())
	} else {
		ix, err := core.Build(ds.Train, ds.Base, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vaqreplay: build: %v\n", err)
			os.Exit(2)
		}
		runner, fp, n, dim = ix.ReplayRunner(), ix.ConfigFingerprint(), ix.Len(), ix.Dim()
	}
	fmt.Printf("index: %d vectors, dim %d, fingerprint %s, built in %.2fs\n",
		n, dim, fp, time.Since(start).Seconds())
	if log.Fingerprint != "" && log.Fingerprint != fp {
		fmt.Printf("note: config fingerprints differ (%s captured vs %s replaying) — diffing a candidate configuration\n",
			log.Fingerprint, fp)
	}

	opt := workload.Options{
		Paced: paced,
		Thresholds: workload.Thresholds{
			MinOverlap:       *minOvl,
			MaxDistDrift:     *maxDrift,
			DistDriftSet:     *maxDrift == 0,
			MaxLatencyFactor: *maxLatFac,
		},
	}
	rep, diffs, err := workload.Replay(log, runner, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vaqreplay: %v\n", err)
		os.Exit(2)
	}

	if *verbose {
		for _, d := range diffs {
			if d.Err != nil {
				fmt.Printf("query %4d: ERROR %v\n", d.Index, d.Err)
				continue
			}
			if d.Overlap < 1 || d.DistDrift > 0 {
				fmt.Printf("query %4d: overlap %.4f, drift %.6g, %s recorded -> %s replayed\n",
					d.Index, d.Overlap, d.DistDrift,
					d.Recorded.Round(time.Microsecond), d.Replayed.Round(time.Microsecond))
			}
		}
	}
	fmt.Printf("replayed %d queries (%d errors): mean overlap@k %.4f, worst %.4f",
		rep.Queries, rep.Errors, rep.MeanOverlap, rep.WorstOverlap)
	if rep.WorstQuery >= 0 && rep.WorstOverlap < 1 {
		fmt.Printf(" (query %d)", rep.WorstQuery)
	}
	fmt.Printf(", %d/%d exact\n", rep.ExactMatches, rep.Queries)
	fmt.Printf("distance drift: max %.6g, mean %.6g\n", rep.MaxDistDrift, rep.MeanDistDrift)
	fmt.Printf("latency: recorded p50 %s p99 %s, replay p50 %s p99 %s (factor %.2f)\n",
		rep.RecordedP50.Round(time.Microsecond), rep.RecordedP99.Round(time.Microsecond),
		rep.ReplayP50.Round(time.Microsecond), rep.ReplayP99.Round(time.Microsecond),
		rep.LatencyFactor)
	if !rep.Passed() {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "vaqreplay: VIOLATION: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("replay within thresholds")
}
