package history

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vaq/internal/metrics"
)

// Config shapes a Collector. The zero value is usable: 1s cadence, ~8.5
// minutes of raw samples, an hour of 10s aggregates, a day of 1m
// aggregates, and the default two-window burn-rate ladder on any watched
// registry with a configured SLO.
type Config struct {
	// Interval is the sampling cadence (default 1s, clamped to >= 10ms).
	Interval time.Duration
	// RawCapacity is the per-series raw ring size (default 512 samples).
	RawCapacity int
	// MidCapacity is the mid-tier ring size (default 360 buckets).
	MidCapacity int
	// LongCapacity is the long-tier ring size (default 1440 buckets).
	LongCapacity int
	// MidBucket is the mid-tier bucket width (default 10s).
	MidBucket time.Duration
	// LongBucket is the long-tier bucket width (default 1m).
	LongBucket time.Duration
	// Burn is the burn-rate rule ladder; nil selects DefaultBurnRules.
	Burn []BurnRule
	// DisableBurn keeps the collector a pure sampler: no vaq.burn sources
	// are registered and the registry's instantaneous SLO edge is left in
	// charge. The bundle recorder's fallback collector runs in this mode.
	DisableBurn bool
	// OnBurn, if set, is invoked from the collector goroutine on each
	// false→true burn-rule edge (after the alert source latches).
	OnBurn func(target string, st metrics.BurnRuleStatus)
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Interval < 10*time.Millisecond {
		c.Interval = 10 * time.Millisecond
	}
	if c.RawCapacity <= 0 {
		c.RawCapacity = 512
	}
	if c.MidCapacity <= 0 {
		c.MidCapacity = 360
	}
	if c.LongCapacity <= 0 {
		c.LongCapacity = 1440
	}
	if c.MidBucket <= 0 {
		c.MidBucket = 10 * time.Second
	}
	if c.LongBucket <= 0 {
		c.LongBucket = time.Minute
	}
	if c.Burn == nil {
		c.Burn = DefaultBurnRules()
	}
	return c
}

// target is one watched registry and its retained series. The series map
// grows only from the collector goroutine; readers go through lookup/each,
// which take the read lock.
type target struct {
	name string
	m    *metrics.IndexMetrics

	mu     sync.RWMutex
	series map[string]*Series
	order  []string

	prev     metrics.Snapshot
	prevAt   time.Time
	havePrev bool

	burn *burnTarget
}

func (t *target) lookup(name string) *Series {
	t.mu.RLock()
	s := t.series[name]
	t.mu.RUnlock()
	return s
}

// each visits the target's series in creation order.
func (t *target) each(fn func(*Series)) {
	t.mu.RLock()
	names := append([]string(nil), t.order...)
	t.mu.RUnlock()
	for _, n := range names {
		if s := t.lookup(n); s != nil {
			fn(s)
		}
	}
}

// Collector samples watched IndexMetrics registries on a fixed cadence
// into per-series ring buffers. One Collector owns one sampling goroutine;
// all series writes happen on it.
type Collector struct {
	name string
	cfg  Config

	mu      sync.RWMutex
	targets []*target
	byName  map[string]*target

	kick     chan struct{}
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	startedAt time.Time
	samples   atomic.Uint64
}

// New starts a collector. name labels it at /debug/vaq/history and in
// dumps; callers register it there with Publish.
func New(name string, cfg Config) *Collector {
	c := &Collector{
		name:      name,
		cfg:       cfg.withDefaults(),
		byName:    make(map[string]*target),
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		startedAt: time.Now(),
	}
	go c.run()
	return c
}

// Name reports the collector's published name.
func (c *Collector) Name() string { return c.name }

// Interval reports the effective sampling cadence.
func (c *Collector) Interval() time.Duration { return c.cfg.Interval }

// Samples reports how many sampling sweeps have run.
func (c *Collector) Samples() uint64 { return c.samples.Load() }

// Watch adds a registry under the given target name (the merged index uses
// its published name; shards append "/shard-N"). Watching the same name
// again is a no-op. The new target is sampled on the collector goroutine
// almost immediately (the run loop is kicked), not synchronously — but if
// burn rules will arm (the registry has an SLO and DisableBurn is off),
// the instantaneous SLO edge is delegated away right here, so violating
// traffic in the gap before the first sweep cannot trip the legacy latch.
func (c *Collector) Watch(name string, m *metrics.IndexMetrics) {
	if m == nil {
		return
	}
	c.mu.Lock()
	if _, ok := c.byName[name]; ok {
		c.mu.Unlock()
		return
	}
	t := &target{name: name, m: m, series: make(map[string]*Series)}
	c.byName[name] = t
	c.targets = append(c.targets, t)
	c.mu.Unlock()
	if !c.cfg.DisableBurn && m.SLOConfig() != nil {
		m.DelegateSLOEdges(true)
	}
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Targets lists watched target names, merged-first then sorted shards.
func (c *Collector) Targets() []string {
	c.mu.RLock()
	out := make([]string, len(c.targets))
	for i, t := range c.targets {
		out[i] = t.name
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Series returns one retained series (nil if the target or series does not
// exist yet). Safe to call concurrently with sampling.
func (c *Collector) Series(targetName, series string) *Series {
	c.mu.RLock()
	t := c.byName[targetName]
	c.mu.RUnlock()
	if t == nil {
		return nil
	}
	return t.lookup(series)
}

// Close stops the sampling goroutine after one final sweep and hands the
// instantaneous SLO edge back to any registry the collector had delegated
// away from. The retained series stay readable.
func (c *Collector) Close() {
	c.stopOnce.Do(func() {
		close(c.stop)
		<-c.done
		c.mu.RLock()
		for _, t := range c.targets {
			// Restore any target whose edge Watch delegated eagerly, even if
			// the burn ladder never armed (e.g. closed before the first sweep).
			if t.burn != nil || (!c.cfg.DisableBurn && t.m.SLOConfig() != nil) {
				t.m.DelegateSLOEdges(false)
			}
		}
		c.mu.RUnlock()
	})
}

func (c *Collector) run() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	c.sampleAll(time.Now())
	for {
		select {
		case <-c.stop:
			c.sampleAll(time.Now())
			return
		case <-c.kick:
			c.sampleAll(time.Now())
		case now := <-ticker.C:
			c.sampleAll(now)
		}
	}
}

func (c *Collector) sampleAll(now time.Time) {
	c.mu.RLock()
	targets := append([]*target(nil), c.targets...)
	c.mu.RUnlock()
	for _, t := range targets {
		c.sample(t, now)
	}
	c.samples.Add(1)
}

// ensure returns the named series, creating it on first use. Collector
// goroutine only (creation takes the write lock; steady-state sampling
// stays on the read path).
func (t *target) ensure(name string, kind Kind, cfg *Config) *Series {
	if s := t.lookup(name); s != nil {
		return s
	}
	s := newSeries(name, kind, cfg.RawCapacity, cfg.MidCapacity, cfg.LongCapacity, cfg.MidBucket, cfg.LongBucket)
	t.mu.Lock()
	t.series[name] = s
	t.order = append(t.order, name)
	t.mu.Unlock()
	return s
}

// sample takes one sweep over a target: snapshot the registry (which also
// recomputes the windowed skew/imbalance/SLO gauges on our cadence, so
// recorded history no longer depends on an external Prometheus scraper),
// append the counter and gauge series, derive rates against the previous
// sweep, then run burn-rate evaluation.
func (c *Collector) sample(t *target, now time.Time) {
	snap := t.m.Snapshot()
	ms := now.UnixMilli()
	rec := func(name string, kind Kind, v float64) {
		t.ensure(name, kind, &c.cfg).append(ms, v)
	}

	rec("queries", Counter, float64(snap.Queries))
	rec("errors", Counter, float64(snap.Errors))
	rec("codes_considered", Counter, float64(snap.CodesConsidered))
	rec("codes_skipped_ti", Counter, float64(snap.CodesSkippedTI))
	rec("codes_abandoned_ea", Counter, float64(snap.CodesAbandonedEA))
	rec("lookups", Counter, float64(snap.Lookups))
	rec("recall_hits", Counter, float64(snap.RecallHits))
	rec("recall_expected", Counter, float64(snap.RecallExpected))

	rec("latency_p50_s", Gauge, snap.Latency.Quantile(0.50).Seconds())
	rec("latency_p99_s", Gauge, snap.Latency.Quantile(0.99).Seconds())
	rec("drift_ratio", Gauge, snap.DriftRatio)
	rec("dead_codewords", Gauge, float64(snap.DeadCodewords))

	if snap.SLO != nil {
		rec("slo_latency_violations", Counter, float64(snap.SLO.LatencyViolationsTotal))
		rec("slo_latency_budget", Gauge, snap.SLO.LatencyBudgetRemaining)
		rec("slo_burn_rate", Gauge, snap.SLO.BurnRate)
		if snap.SLO.MinRecall > 0 {
			rec("slo_recall_budget", Gauge, snap.SLO.RecallBudgetRemaining)
		}
	}
	if snap.Sharded != nil {
		rec("shard_skew_ratio", Gauge, snap.Sharded.SkewRatio)
		rec("shard_load_imbalance", Gauge, snap.Sharded.LoadImbalance)
	}

	if t.havePrev {
		dt := now.Sub(t.prevAt).Seconds()
		if dt > 0 {
			rec("qps", Gauge, counterDelta(snap.Queries, t.prev.Queries)/dt)
			if dc := counterDelta(snap.CodesConsidered, t.prev.CodesConsidered); dc > 0 {
				rec("ti_prune_rate", Gauge, counterDelta(snap.CodesSkippedTI, t.prev.CodesSkippedTI)/dc)
				rec("ea_abandon_rate", Gauge, counterDelta(snap.CodesAbandonedEA, t.prev.CodesAbandonedEA)/dc)
			}
			if de := counterDelta(snap.RecallExpected, t.prev.RecallExpected); de > 0 {
				rec("recall", Gauge, counterDelta(snap.RecallHits, t.prev.RecallHits)/de)
			}
			// Drift slope in ratio points per minute: ROADMAP item 4's
			// retrain trigger wants the trend, not the level.
			rec("drift_slope", Gauge, (snap.DriftRatio-t.prev.DriftRatio)/dt*60)
		}
	}
	t.prev, t.prevAt, t.havePrev = snap, now, true

	if !c.cfg.DisableBurn {
		if t.burn == nil {
			if slo := t.m.SLOConfig(); slo != nil {
				c.armBurn(t, slo)
			}
		}
		if t.burn != nil {
			c.evaluateBurn(t, now)
		}
	}
}

// counterDelta is a reset-aware counter difference: a decrease means the
// registry was reset, and the new epoch counts from its current value.
func counterDelta(cur, prev uint64) float64 {
	if cur >= prev {
		return float64(cur - prev)
	}
	return float64(cur)
}
