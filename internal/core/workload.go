package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"vaq/internal/vec"
	"vaq/internal/workload"
)

// fingerprintConfig is the canonical serialization the config fingerprint
// hashes: every build parameter that changes what a query returns. It
// deliberately excludes runtime-only knobs (metrics, tracing, logging,
// recall sampling, profiling) — two indexes differing only in telemetry
// answer identically.
type fingerprintConfig struct {
	Dim               int     `json:"dim"`
	Subspaces         int     `json:"subspaces"`
	Budget            int     `json:"budget"`
	MinBits           int     `json:"min_bits"`
	MaxBits           int     `json:"max_bits"`
	NonUniform        bool    `json:"non_uniform"`
	NoPartialBalance  bool    `json:"no_partial_balance,omitempty"`
	Alloc             int     `json:"alloc"`
	TargetVariance    float64 `json:"target_variance"`
	TIClusters        int     `json:"ti_clusters"`
	TIPrefixSubspaces int     `json:"ti_prefix_subspaces"`
	DefaultVisitFrac  float64 `json:"visit_frac"`
	EACheckEvery      int     `json:"ea_check_every"`
	Seed              int64   `json:"seed"`
	Layout            string  `json:"layout"`
	// Accuracy is "" for exact mode (omitted, so every fingerprint minted
	// before the integer kernel existed is unchanged) and "fast" when the
	// integer kernel answers queries — a different-answers config.
	Accuracy string `json:"accuracy,omitempty"`
}

// ConfigFingerprint is a stable short hash of the search-relevant build
// configuration — the same sha256-over-canonical-JSON, first-8-bytes-hex
// scheme vaqbench stamps into -json summaries. Workload logs carry it so a
// replay can tell "same config rebuild" from "different index".
func (ix *Index) ConfigFingerprint() string {
	fp := fingerprintConfig{
		Dim:               ix.queryDim,
		Subspaces:         ix.cfg.NumSubspaces,
		Budget:            ix.cfg.Budget,
		MinBits:           ix.cfg.MinBits,
		MaxBits:           ix.cfg.MaxBits,
		NonUniform:        ix.cfg.NonUniform,
		NoPartialBalance:  ix.cfg.DisablePartialBalance,
		Alloc:             int(ix.cfg.Alloc),
		TargetVariance:    ix.cfg.TargetVariance,
		TIClusters:        ix.cfg.TIClusters,
		TIPrefixSubspaces: ix.cfg.TIPrefixSubspaces,
		DefaultVisitFrac:  ix.cfg.DefaultVisitFrac,
		EACheckEvery:      ix.cfg.EACheckEvery,
		Seed:              ix.cfg.Seed,
		Layout:            ix.cfg.ScanLayout.String(),
	}
	if ix.cfg.AccuracyMode != AccuracyExact {
		fp.Accuracy = ix.cfg.AccuracyMode.String()
	}
	blob, err := json.Marshal(fp)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:8])
}

// EnableCapture installs a workload capture buffer and returns it. From the
// next query on, every sampled search (deterministic stride, like the
// recall estimator) appends its query, options, result list and latency to
// the buffer; Snapshot on the returned Capture yields a serializable Log.
// cfg.Fingerprint and cfg.Dim are filled in from the index. Safe to call
// while queries are in flight; off by default, and when off the query path
// pays one atomic pointer load.
func (ix *Index) EnableCapture(cfg workload.Config) *workload.Capture {
	cfg.Fingerprint = ix.ConfigFingerprint()
	cfg.Dim = ix.queryDim
	c := workload.NewCapture(cfg)
	ix.capture.Store(c)
	return c
}

// DisableCapture detaches the capture buffer; records already stored stay
// readable through the Capture returned by EnableCapture.
func (ix *Index) DisableCapture() { ix.capture.Store(nil) }

// Capture returns the active workload capture, or nil when capture is off.
func (ix *Index) Capture() *workload.Capture { return ix.capture.Load() }

// ReplayRunner adapts one reusable Searcher to the workload replay engine:
// raw-captured queries go through the full Search path (projection
// included), projected captures through SearchProjected.
func (ix *Index) ReplayRunner() workload.RunFunc {
	s := ix.newSearcher()
	return func(r *workload.Record) ([]int32, []float32, error) {
		opt := SearchOptions{
			Mode:      SearchMode(r.Mode),
			VisitFrac: r.VisitFrac,
			Subspaces: int(r.Subspaces),
		}
		var res []vec.Neighbor
		var err error
		if r.Projected {
			res, err = s.SearchProjected(r.Query, int(r.K), opt)
		} else {
			res, err = s.Search(r.Query, int(r.K), opt)
		}
		if err != nil {
			return nil, nil, err
		}
		ids := make([]int32, len(res))
		dists := make([]float32, len(res))
		for i, nb := range res {
			ids[i] = int32(nb.ID)
			dists[i] = nb.Dist
		}
		return ids, dists, nil
	}
}

// captureQuery files one sampled query into the capture buffer. qz is the
// projected query run executed; the raw query (when the search came in
// unprojected) is preferred so a replay can target a rebuild with a
// different PCA rotation.
func (s *Searcher) captureQuery(c *workload.Capture, qz []float32, k int, opt SearchOptions, res []vec.Neighbor, lat int64, traceSeq uint64) {
	q, projected := s.rawQ, false
	if q == nil {
		q, projected = qz, true
	}
	r := &workload.Record{
		LatencyNs: lat,
		TraceSeq:  traceSeq,
		K:         int32(k),
		Mode:      int32(opt.Mode),
		VisitFrac: opt.VisitFrac,
		Subspaces: int32(opt.Subspaces),
		Projected: projected,
		Query:     append([]float32(nil), q...),
		IDs:       make([]int32, len(res)),
		Dists:     make([]float32, len(res)),
	}
	for i, nb := range res {
		r.IDs[i] = int32(nb.ID)
		r.Dists[i] = nb.Dist
	}
	c.Add(r)
}
