package core

import (
	"bytes"
	"log/slog"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"vaq/internal/metrics"
	"vaq/internal/trace"
	"vaq/internal/vec"
)

// TestSearchRecordMirrorsSearchStats pins the contract metrics.SearchRecord
// documents: it stays field-for-field identical (name, type, order) with
// core.SearchStats, so the conversion in record() can never silently drop a
// counter when one side grows a field.
func TestSearchRecordMirrorsSearchStats(t *testing.T) {
	st := reflect.TypeOf(SearchStats{})
	rt := reflect.TypeOf(metrics.SearchRecord{})
	if st.NumField() != rt.NumField() {
		t.Fatalf("core.SearchStats has %d fields, metrics.SearchRecord %d — keep them in sync",
			st.NumField(), rt.NumField())
	}
	for i := 0; i < st.NumField(); i++ {
		sf, rf := st.Field(i), rt.Field(i)
		if sf.Name != rf.Name || sf.Type != rf.Type {
			t.Errorf("field %d: core.SearchStats.%s %v vs metrics.SearchRecord.%s %v",
				i, sf.Name, sf.Type, rf.Name, rf.Type)
		}
	}
}

func observeTestIndex(t *testing.T, cfg Config) (*Index, *vec.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(907))
	x := skewedData(rng, 1600, 24, 1.2)
	if cfg.NumSubspaces == 0 {
		cfg = Config{NumSubspaces: 8, Budget: 48, Seed: 907, TIClusters: 30}
	}
	ix, err := Build(x, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix, x
}

func TestTracingEndToEnd(t *testing.T) {
	ix, x := observeTestIndex(t, Config{})
	tr := ix.EnableTracing(trace.Config{RingSize: 32, SlowThreshold: 1, Exemplars: 4})
	if ix.Tracer() != tr {
		t.Fatal("Tracer() does not return the enabled tracer")
	}
	s := ix.NewSearcher()
	const queries = 10
	for i := 0; i < queries; i++ {
		if _, err := s.Search(x.Row(i), 5, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != queries {
		t.Fatalf("traced %d queries, want %d", tr.Count(), queries)
	}
	rec := tr.Recent()
	qt := rec[len(rec)-1]
	st := s.LastStats()

	if qt.Mode != "ti+ea" || qt.K != 5 {
		t.Errorf("trace metadata: mode=%q k=%d", qt.Mode, qt.K)
	}
	names := map[string]int{}
	for _, sp := range qt.Spans {
		names[sp.Name]++
		if sp.Dur < 0 || sp.Start < 0 {
			t.Errorf("span %s has negative timing: start=%v dur=%v", sp.Name, sp.Start, sp.Dur)
		}
	}
	if names[trace.SpanProject] != 1 || names[trace.SpanLUTFill] != 1 || names[trace.SpanClusterRank] != 1 {
		t.Errorf("setup spans wrong: %v", names)
	}
	if names[trace.SpanClusterScan] != st.ClustersVisited {
		t.Errorf("%d cluster_scan spans, visited %d clusters", names[trace.SpanClusterScan], st.ClustersVisited)
	}
	// Per-cluster attribution must sum back to the query totals.
	var skipped, abandoned, lookups int
	for _, sp := range qt.Spans {
		if sp.Name == trace.SpanClusterScan {
			skipped += sp.SkippedTI
			abandoned += sp.AbandonedEA
			lookups += sp.Lookups
		}
	}
	if skipped != st.CodesSkippedTI || abandoned != st.CodesAbandonedEA || lookups != st.Lookups {
		t.Errorf("span sums (%d,%d,%d) != stats (%d,%d,%d)",
			skipped, abandoned, lookups, st.CodesSkippedTI, st.CodesAbandonedEA, st.Lookups)
	}
	// The embedded record matches the stats and owns its own slices.
	if qt.Stats.CodesConsidered != st.CodesConsidered || qt.Stats.Lookups != st.Lookups {
		t.Errorf("trace stats %+v != searcher stats %+v", qt.Stats, st)
	}
	if len(st.AbandonDepths) > 0 && &qt.Stats.AbandonDepths[0] == &st.AbandonDepths[0] {
		t.Error("trace retained the searcher's scratch slice (must deep-copy)")
	}

	// With a 1ns threshold every query is a slow-query candidate.
	slow, seen := tr.Slowest()
	if seen != queries || len(slow) != 4 {
		t.Errorf("exemplars: seen %d kept %d, want %d/4", seen, len(slow), queries)
	}

	// EA and heap modes produce one whole-scan span instead.
	for _, mode := range []SearchMode{ModeEA, ModeHeap} {
		if _, err := s.Search(x.Row(0), 5, SearchOptions{Mode: mode}); err != nil {
			t.Fatal(err)
		}
		rec = tr.Recent()
		qt = rec[len(rec)-1]
		var scans int
		for _, sp := range qt.Spans {
			if sp.Name == trace.SpanScan {
				scans++
			}
			if sp.Name == trace.SpanClusterScan {
				t.Errorf("mode %v emitted a cluster_scan span", mode)
			}
		}
		if scans != 1 || qt.Mode != mode.String() {
			t.Errorf("mode %v: %d scan spans, mode %q", mode, scans, qt.Mode)
		}
	}

	// Disabling stops new searchers; existing recorders can be detached.
	ix.DisableTracing()
	if ix.Tracer() != nil {
		t.Fatal("DisableTracing left a tracer")
	}
	count := tr.Count()
	s2 := ix.NewSearcher()
	if _, err := s2.Search(x.Row(1), 5, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	s.AttachTracer(nil)
	if _, err := s.Search(x.Row(1), 5, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != count {
		t.Errorf("queries traced after disable: %d -> %d", count, tr.Count())
	}
}

// TestTracingLayoutParity: both scan layouts emit the same span structure
// with identical attribution (timings differ, structure must not).
func TestTracingLayoutParity(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	x := skewedData(rng, 2000, 32, 1.2)
	base := Config{NumSubspaces: 8, Budget: 56, Seed: 311, TIClusters: 40}
	blocked, err := Build(x, x, base)
	if err != nil {
		t.Fatal(err)
	}
	base.ScanLayout = LayoutRowMajor
	rowmajor, err := Build(x, x, base)
	if err != nil {
		t.Fatal(err)
	}
	tb := blocked.EnableTracing(trace.Config{SlowThreshold: 1})
	tra := rowmajor.EnableTracing(trace.Config{SlowThreshold: 1})
	sb, sr := blocked.NewSearcher(), rowmajor.NewSearcher()
	for i := 0; i < 5; i++ {
		if _, err := sb.Search(x.Row(i), 10, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
		if _, err := sr.Search(x.Row(i), 10, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
		qb := tb.Recent()[i]
		qr := tra.Recent()[i]
		cb := clusterSpansByCluster(qb)
		cr := clusterSpansByCluster(qr)
		if len(cb) != len(cr) {
			t.Fatalf("query %d: %d vs %d cluster spans", i, len(cb), len(cr))
		}
		for c, spb := range cb {
			spr, ok := cr[c]
			if !ok {
				t.Fatalf("query %d: cluster %d only traced in blocked layout", i, c)
			}
			if spb.Rank != spr.Rank || spb.Count != spr.Count ||
				spb.SkippedTI != spr.SkippedTI || spb.AbandonedEA != spr.AbandonedEA ||
				spb.Lookups != spr.Lookups {
				t.Errorf("query %d cluster %d attribution differs:\nblocked  %+v\nrowmajor %+v", i, c, spb, spr)
			}
		}
	}
}

func clusterSpansByCluster(qt *trace.QueryTrace) map[int]trace.Span {
	out := map[int]trace.Span{}
	for _, sp := range qt.Spans {
		if sp.Name == trace.SpanClusterScan {
			out[sp.Cluster] = sp
		}
	}
	return out
}

// TestAttributionSumsMatchCounters: per-query attribution histograms must
// total exactly the scalar counters, in every mode and both layouts.
func TestAttributionSumsMatchCounters(t *testing.T) {
	for _, layout := range []ScanLayout{LayoutBlocked, LayoutRowMajor} {
		ix, x := observeTestIndex(t, Config{NumSubspaces: 8, Budget: 48, Seed: 907, TIClusters: 30, ScanLayout: layout})
		s := ix.NewSearcher()
		for _, opt := range []SearchOptions{
			{}, {VisitFrac: 1}, {Mode: ModeEA}, {Mode: ModeHeap}, {Subspaces: 5},
		} {
			for i := 0; i < 5; i++ {
				if _, err := s.Search(x.Row(i), 10, opt); err != nil {
					t.Fatal(err)
				}
				st := s.LastStats()
				var depths, ranks int
				for _, v := range st.AbandonDepths {
					depths += int(v)
				}
				for _, v := range st.TISkipsByRank {
					ranks += int(v)
				}
				if depths != st.CodesAbandonedEA {
					t.Fatalf("layout %v opt %+v: abandon depths sum %d != %d abandons",
						layout, opt, depths, st.CodesAbandonedEA)
				}
				if ranks != st.CodesSkippedTI {
					t.Fatalf("layout %v opt %+v: rank skips sum %d != %d TI skips",
						layout, opt, ranks, st.CodesSkippedTI)
				}
			}
		}
		// And the registry folded the same totals.
		snap := ix.Metrics().Snapshot()
		var depths, ranks uint64
		for _, v := range snap.AbandonDepths {
			depths += v
		}
		for _, v := range snap.TISkipsByRank {
			ranks += v
		}
		if depths != snap.CodesAbandonedEA || ranks != snap.CodesSkippedTI {
			t.Fatalf("layout %v: registry attribution (%d,%d) != counters (%d,%d)",
				layout, depths, ranks, snap.CodesAbandonedEA, snap.CodesSkippedTI)
		}
	}
}

func TestSampleStride(t *testing.T) {
	cases := []struct {
		rate float64
		want uint64
	}{{1, 1}, {2, 1}, {0.5, 2}, {0.25, 4}, {0.01, 100}, {0.003, 333}}
	for _, c := range cases {
		if got := sampleStride(c.rate); got != c.want {
			t.Errorf("sampleStride(%v) = %d, want %d", c.rate, got, c.want)
		}
	}
}

func TestRecallSampling(t *testing.T) {
	ix, x := observeTestIndex(t, Config{NumSubspaces: 8, Budget: 48, Seed: 907, TIClusters: 30, RecallSampleRate: 0.5})
	if got := ix.RecallSampling(); got != 2 {
		t.Fatalf("RecallSampling() = %d, want every 2nd query", got)
	}
	s := ix.NewSearcher()
	const queries, k = 20, 5
	for i := 0; i < queries; i++ {
		if _, err := s.Search(x.Row(i), k, SearchOptions{VisitFrac: 1}); err != nil {
			t.Fatal(err)
		}
	}
	snap := ix.Metrics().Snapshot()
	if snap.RecallSamples != queries/2 {
		t.Fatalf("sampled %d queries, want %d", snap.RecallSamples, queries/2)
	}
	if snap.RecallExpected != uint64(queries/2*k) {
		t.Fatalf("expected neighbors %d, want %d", snap.RecallExpected, queries/2*k)
	}
	recall := snap.ObservedRecall()
	if recall <= 0 || recall > 1 {
		t.Fatalf("ObservedRecall = %v", recall)
	}
	// Queries are database rows and the full cluster set is visited, so the
	// measured recall@5 must be decent — this is a sanity bound, not a
	// quality benchmark.
	if recall < 0.3 {
		t.Errorf("implausibly low recall %v for self-queries at VisitFrac 1", recall)
	}
}

func TestRecallSamplingCoversAdd(t *testing.T) {
	ix, x := observeTestIndex(t, Config{NumSubspaces: 8, Budget: 48, Seed: 907, TIClusters: 30, RecallSampleRate: 1})
	extra := vec.NewMatrix(30, x.Cols)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < extra.Rows; i++ {
		copy(extra.Row(i), x.Row(rng.Intn(x.Rows)))
	}
	if _, err := ix.Add(extra); err != nil {
		t.Fatal(err)
	}
	if ix.retained.Rows != ix.n {
		t.Fatalf("retained %d rows, index has %d — the shadow scan would miss Add'd ids",
			ix.retained.Rows, ix.n)
	}
	s := ix.NewSearcher()
	for i := 0; i < 5; i++ {
		if _, err := s.Search(extra.Row(i), 3, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	snap := ix.Metrics().Snapshot()
	if snap.RecallSamples != 5 {
		t.Fatalf("sampled %d, want every query at rate 1", snap.RecallSamples)
	}
}

func TestRecallSamplingOffByDefaultAndAfterLoad(t *testing.T) {
	ix, x := observeTestIndex(t, Config{})
	if ix.RecallSampling() != 0 {
		t.Fatal("recall sampling on without RecallSampleRate")
	}
	src, _ := observeTestIndex(t, Config{NumSubspaces: 8, Budget: 48, Seed: 907, TIClusters: 30, RecallSampleRate: 1})
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.RecallSampling() != 0 {
		t.Fatal("retention must not survive serialization (it is runtime-only)")
	}
	if _, err := loaded.SearchWith(x.Row(0), 3, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	if snap := loaded.Metrics().Snapshot(); snap.RecallSamples != 0 {
		t.Fatalf("loaded index sampled recall: %+v", snap)
	}
}

func TestStructuredLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	rng := rand.New(rand.NewSource(907))
	x := skewedData(rng, 1200, 24, 1.2)
	ix, err := Build(x, x, Config{NumSubspaces: 8, Budget: 48, Seed: 907, TIClusters: 30, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	extra := vec.NewMatrix(4, x.Cols)
	if _, err := ix.Add(extra); err != nil {
		t.Fatal(err)
	}
	var ser bytes.Buffer
	if _, err := ix.WriteTo(&ser); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLogged(bytes.NewReader(ser.Bytes()), logger); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"vaq.build", "vaq.add", "vaq.serialize", "vaq.read", "layout=blocked"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
	// No logger: all paths stay silent and alive (Build above logs, the
	// default must not).
	quiet, err := Build(x, x, Config{NumSubspaces: 8, Budget: 48, Seed: 907, TIClusters: 30})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := quiet.Add(extra); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentTracedSearches keeps the race job honest: many goroutines
// search one traced index (ring appends, reservoir mutation, metrics folds
// and shadow recall sampling all active) while readers drain the tracer.
func TestConcurrentTracedSearches(t *testing.T) {
	ix, x := observeTestIndex(t, Config{NumSubspaces: 8, Budget: 48, Seed: 907, TIClusters: 30, RecallSampleRate: 0.25})
	tr := ix.EnableTracing(trace.Config{RingSize: 16, SlowThreshold: 1})
	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := ix.NewSearcher()
			for i := 0; i < perWorker; i++ {
				if _, err := s.Search(x.Row((w*perWorker+i)%x.Rows), 5, SearchOptions{}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				tr.Recent()
				tr.Slowest()
				ix.Metrics().Snapshot()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(done)
	if tr.Count() != workers*perWorker {
		t.Fatalf("traced %d, want %d", tr.Count(), workers*perWorker)
	}
	snap := ix.Metrics().Snapshot()
	if snap.Queries != workers*perWorker {
		t.Fatalf("recorded %d queries, want %d", snap.Queries, workers*perWorker)
	}
	if snap.RecallSamples != workers*perWorker/4 {
		t.Fatalf("recall samples %d, want %d", snap.RecallSamples, workers*perWorker/4)
	}
}
