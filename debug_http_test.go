package vaq

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestPublishIdempotent pins the re-publish contract of every debug
// surface: registering a second index under a name an earlier index
// already used must rebind, not panic (expvar.Publish panics on
// duplicates — hostile to tests and index reloads), and subsequent
// scrapes must reflect the newest index.
func TestPublishIdempotent(t *testing.T) {
	build := func() *Index {
		ix, _ := metricsTestIndex(t, 400, 8, Config{NumSubspaces: 4, Budget: 16, Seed: 3})
		return ix
	}
	cases := []struct {
		name    string
		publish func(ix *Index, as string)
	}{
		{"expvar", func(ix *Index, as string) { ix.PublishExpvar(as) }},
		{"diagnostics", func(ix *Index, as string) { ix.PublishDiagnostics(as) }},
		{"trace", func(ix *Index, as string) {
			PublishTrace(as, ix.EnableTracing(TraceConfig{RingSize: 8}))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			name := "vaq_republish_" + tc.name
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("double publish under %q panicked: %v", name, r)
				}
			}()
			first, second := build(), build()
			tc.publish(first, name)
			tc.publish(second, name) // must rebind silently
			tc.publish(second, name) // and stay idempotent
		})
	}

	// The rebind is live, not just panic-free: after republishing, the
	// metrics endpoint serves the new index's counters.
	old, data := metricsTestIndex(t, 400, 8, Config{NumSubspaces: 4, Budget: 16, Seed: 3})
	fresh, _ := metricsTestIndex(t, 400, 8, Config{NumSubspaces: 4, Budget: 16, Seed: 4})
	old.PublishExpvar("vaq_rebind_check")
	if _, err := old.Search(data[0], 3); err != nil {
		t.Fatal(err)
	}
	fresh.PublishExpvar("vaq_rebind_check")
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vaq/metrics?index=vaq_rebind_check", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := `vaq_queries_total{index="vaq_rebind_check"} 0`; !strings.Contains(string(body), want) {
		t.Errorf("rebind did not take effect: missing %q in\n%.400s", want, body)
	}
}

// TestServeDebugShutdown pins the server lifecycle: a second ServeDebug on
// another port coexists with the first, Close stops accepting new
// connections, and the released address does not wedge future listens.
func TestServeDebugShutdown(t *testing.T) {
	srv1, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		srv1.Close()
		t.Fatalf("second ServeDebug: %v", err)
	}
	for _, srv := range []*http.Server{srv1, srv2} {
		resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", srv.Addr))
		if err != nil {
			t.Fatalf("GET %s: %v", srv.Addr, err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", srv.Addr, resp.StatusCode)
		}
	}
	if err := srv2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The closed server must refuse new connections (promptly — not hang).
	client := &http.Client{Timeout: 2 * time.Second}
	if resp, err := client.Get(fmt.Sprintf("http://%s/debug/vars", srv2.Addr)); err == nil {
		resp.Body.Close()
		t.Errorf("closed server still answered on %s", srv2.Addr)
	}
	// The first server is unaffected by its sibling's shutdown.
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", srv1.Addr))
	if err != nil {
		t.Fatalf("surviving server: %v", err)
	}
	resp.Body.Close()
	if err := srv1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The released port is reusable immediately.
	srv3, err := ServeDebug(srv1.Addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", srv1.Addr, err)
	}
	srv3.Close()
}
