package history

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vaq/internal/metrics"
)

func getHistory(t *testing.T, query string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/debug/vaq/history"+query, nil)
	rr := httptest.NewRecorder()
	handleHistory(rr, req)
	return rr
}

func TestHistoryEndpoint(t *testing.T) {
	m := metrics.New()
	c := New("pub_test", Config{Interval: 10 * time.Millisecond, DisableBurn: true})
	defer c.Close()
	c.Watch("ix", m)
	Publish("pub_test", c)
	defer Publish("pub_test", nil)
	m.RecordSearch(metrics.SearchRecord{CodesConsidered: 10}, time.Millisecond)
	waitFor(t, 2*time.Second, "sweeps", func() bool { return c.Samples() >= 2 })

	t.Run("json-dump", func(t *testing.T) {
		rr := getHistory(t, "")
		if rr.Code != http.StatusOK {
			t.Fatalf("status %d", rr.Code)
		}
		var dumps map[string]*Dump
		if err := json.Unmarshal(rr.Body.Bytes(), &dumps); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		d := dumps["pub_test"]
		if d == nil {
			t.Fatalf("no pub_test dump in %v", dumps)
		}
		if err := ValidateDump(d); err != nil {
			t.Fatalf("served dump invalid: %v", err)
		}
	})

	t.Run("index-filter", func(t *testing.T) {
		rr := getHistory(t, "?index=pub_test")
		var dumps map[string]*Dump
		if err := json.Unmarshal(rr.Body.Bytes(), &dumps); err != nil || len(dumps) != 1 {
			t.Fatalf("filtered dump: err=%v n=%d", err, len(dumps))
		}
	})

	t.Run("unknown-index-404", func(t *testing.T) {
		if rr := getHistory(t, "?index=nope"); rr.Code != http.StatusNotFound {
			t.Fatalf("status %d, want 404", rr.Code)
		}
	})

	t.Run("text-sparklines", func(t *testing.T) {
		rr := getHistory(t, "?format=text")
		body := rr.Body.String()
		if !strings.Contains(body, "== pub_test ==") || !strings.Contains(body, "-- ix --") {
			t.Fatalf("text view missing headers:\n%s", body)
		}
		if !strings.Contains(body, "queries") {
			t.Fatalf("text view missing series rows:\n%s", body)
		}
	})

	t.Run("series-range", func(t *testing.T) {
		rr := getHistory(t, "?series=queries&window=1h")
		var ranges map[string]map[string][]Point
		if err := json.Unmarshal(rr.Body.Bytes(), &ranges); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		pts := ranges["pub_test"]["ix"]
		if len(pts) == 0 {
			t.Fatalf("no points in range response %v", ranges)
		}
		if last := pts[len(pts)-1]; last.Val != 1 {
			t.Fatalf("last queries point %+v, want 1", last)
		}
	})

	t.Run("bad-window-400", func(t *testing.T) {
		if rr := getHistory(t, "?series=queries&window=bogus"); rr.Code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", rr.Code)
		}
	})
}

func TestPublishRebindAndRemove(t *testing.T) {
	c1 := New("rebind", Config{Interval: time.Hour, DisableBurn: true})
	defer c1.Close()
	c2 := New("rebind", Config{Interval: time.Hour, DisableBurn: true})
	defer c2.Close()
	Publish("rebind", c1)
	Publish("rebind", c2) // rebinding replaces, no error
	defer Publish("rebind", nil)
	if v, _ := collectors.Load("rebind"); v != c2 {
		t.Fatal("rebind did not replace the collector")
	}
	Publish("rebind", nil)
	if _, ok := collectors.Load("rebind"); ok {
		t.Fatal("nil publish did not remove the name")
	}
}

func TestSparkline(t *testing.T) {
	if s := Sparkline(nil, 10); s != "" {
		t.Fatalf("empty points rendered %q", s)
	}
	pts := []Point{{TS: 0, Val: 0}, {TS: 1, Val: 1}, {TS: 2, Val: 2}, {TS: 3, Val: 3}}
	s := Sparkline(pts, 4)
	if len([]rune(s)) != 4 {
		t.Fatalf("width %d, want 4", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != sparkRunes[0] || runes[3] != sparkRunes[len(sparkRunes)-1] {
		t.Fatalf("ramp %q should start low and end high", s)
	}
	// A gap in time leaves blank columns.
	gap := Sparkline([]Point{{TS: 0, Val: 1}, {TS: 100, Val: 2}}, 10)
	if !strings.Contains(gap, " ") {
		t.Fatalf("gapped series %q has no blank columns", gap)
	}
	// Flat series renders without dividing by a zero range.
	flat := Sparkline([]Point{{TS: 0, Val: 5}, {TS: 1, Val: 5}}, 2)
	if len([]rune(flat)) != 2 {
		t.Fatalf("flat series %q", flat)
	}
}

func TestWriteTrends(t *testing.T) {
	m := metrics.New()
	c := New("trend", Config{Interval: 10 * time.Millisecond, DisableBurn: true})
	defer c.Close()
	c.Watch("ix", m)
	m.RecordSearch(metrics.SearchRecord{}, time.Millisecond)
	waitFor(t, 2*time.Second, "sweeps", func() bool { return c.Samples() >= 3 })
	var sb strings.Builder
	WriteTrends(&sb, c.Dump())
	out := sb.String()
	if !strings.Contains(out, "ix/queries:") || !strings.Contains(out, "n=") {
		t.Fatalf("trend summary missing series lines:\n%s", out)
	}
}
