package quantizer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vaq/internal/vec"
)

func TestUniformSubspaces(t *testing.T) {
	s, err := UniformSubspaces(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.M() != 4 || s.Dim() != 8 {
		t.Fatalf("bad layout %+v", s)
	}
	for i := 0; i < 4; i++ {
		if s.Lengths[i] != 2 || s.Offsets[i] != 2*i {
			t.Fatalf("bad layout %+v", s)
		}
	}
	// Non-divisible: earlier subspaces take the remainder.
	s, err = UniformSubspaces(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 3, 2, 2}
	for i, l := range want {
		if s.Lengths[i] != l {
			t.Fatalf("lengths %v want %v", s.Lengths, want)
		}
	}
	if s.Dim() != 10 {
		t.Fatalf("dim %d", s.Dim())
	}
}

func TestUniformSubspacesErrors(t *testing.T) {
	if _, err := UniformSubspaces(4, 0); err == nil {
		t.Fatal("m=0 must fail")
	}
	if _, err := UniformSubspaces(2, 4); err == nil {
		t.Fatal("m>d must fail")
	}
	if _, err := UniformSubspaces(0, 1); err == nil {
		t.Fatal("d=0 must fail")
	}
}

func TestFromLengths(t *testing.T) {
	s, err := FromLengths([]int{3, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 8 || s.Offsets[2] != 4 {
		t.Fatalf("bad layout %+v", s)
	}
	if _, err := FromLengths(nil); err == nil {
		t.Fatal("empty must fail")
	}
	if _, err := FromLengths([]int{2, 0}); err == nil {
		t.Fatal("zero length must fail")
	}
}

func TestSubspaceOf(t *testing.T) {
	s, _ := FromLengths([]int{2, 3})
	v := []float32{1, 2, 3, 4, 5}
	got := s.Of(v, 1)
	if len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("got %v", got)
	}
}

// clusteredData makes data with per-subspace cluster structure so encoding
// is meaningful.
func clusteredData(rng *rand.Rand, n, d int) *vec.Matrix {
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		for j := 0; j < d; j++ {
			center := float32(rng.Intn(4))*3 - 4.5
			r[j] = center + float32(rng.NormFloat64()*0.2)
		}
	}
	return x
}

func TestTrainCodebooksShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := clusteredData(rng, 400, 8)
	sub, _ := UniformSubspaces(8, 4)
	cb, err := TrainCodebooks(x, sub, []int{4, 4, 2, 3}, TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := []int{16, 16, 4, 8}
	for i, b := range cb.Books {
		if b.Rows != wantRows[i] || b.Cols != 2 {
			t.Fatalf("book %d is %dx%d", i, b.Rows, b.Cols)
		}
	}
}

func TestTrainCodebooksErrors(t *testing.T) {
	x := vec.NewMatrix(10, 8)
	sub, _ := UniformSubspaces(8, 4)
	if _, err := TrainCodebooks(x, sub, []int{4, 4}, TrainConfig{}); err == nil {
		t.Fatal("bits length mismatch must fail")
	}
	if _, err := TrainCodebooks(x, sub, []int{4, 4, 0, 4}, TrainConfig{}); err == nil {
		t.Fatal("zero bits must fail")
	}
	if _, err := TrainCodebooks(x, sub, []int{4, 4, 4, 17}, TrainConfig{}); err == nil {
		t.Fatal("17 bits must fail")
	}
	if _, err := TrainCodebooks(vec.NewMatrix(0, 8), sub, []int{4, 4, 4, 4}, TrainConfig{}); err == nil {
		t.Fatal("empty training data must fail")
	}
	sub2, _ := UniformSubspaces(6, 3)
	if _, err := TrainCodebooks(x, sub2, []int{4, 4, 4}, TrainConfig{}); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := clusteredData(rng, 500, 8)
	sub, _ := UniformSubspaces(8, 4)
	cb, err := TrainCodebooks(x, sub, []int{6, 6, 6, 6}, TrainConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	codes, err := cb.Encode(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if codes.N != 500 || codes.M != 4 {
		t.Fatalf("codes %dx%d", codes.N, codes.M)
	}
	// Codes must be valid indices.
	for i := 0; i < codes.N; i++ {
		for s, c := range codes.Row(i) {
			if int(c) >= cb.Books[s].Rows {
				t.Fatalf("code out of range at (%d,%d): %d", i, s, c)
			}
		}
	}
	// Reconstruction error must be small for tightly clustered data.
	mse := cb.ReconstructionError(x, codes)
	if mse > 1.0 {
		t.Fatalf("reconstruction error too high: %v", mse)
	}
	// Parallel encode must match serial.
	codesP, err := cb.Encode(x, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range codes.Data {
		if codes.Data[i] != codesP.Data[i] {
			t.Fatal("parallel encode differs")
		}
	}
}

func TestEncodeVecMatchesNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := clusteredData(rng, 200, 6)
	sub, _ := UniformSubspaces(6, 3)
	cb, _ := TrainCodebooks(x, sub, []int{3, 3, 3}, TrainConfig{Seed: 3})
	v := x.Row(17)
	code := make([]uint16, 3)
	cb.EncodeVec(v, code)
	for s := 0; s < 3; s++ {
		sv := sub.Of(v, s)
		best := -1
		bestD := float32(math.MaxFloat32)
		for c := 0; c < cb.Books[s].Rows; c++ {
			d := vec.SquaredL2(sv, cb.Books[s].Row(c))
			if d < bestD {
				bestD = d
				best = c
			}
		}
		if int(code[s]) != best {
			t.Fatalf("subspace %d: code %d, nearest %d", s, code[s], best)
		}
	}
}

func TestEncodeDimensionError(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := clusteredData(rng, 50, 6)
	sub, _ := UniformSubspaces(6, 3)
	cb, _ := TrainCodebooks(x, sub, []int{2, 2, 2}, TrainConfig{Seed: 4})
	if _, err := cb.Encode(vec.NewMatrix(3, 7), false); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
}

func TestCodesBytes(t *testing.T) {
	c := NewCodes(100, 4)
	if got := c.Bytes([]int{8, 8, 8, 8}); got != 400 {
		t.Fatalf("got %d", got)
	}
	if got := c.Bytes([]int{1, 2, 3, 4}); got != (10*100+7)/8 {
		t.Fatalf("got %d", got)
	}
}

func TestLUTDistanceMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := clusteredData(rng, 300, 8)
	sub, _ := UniformSubspaces(8, 4)
	cb, _ := TrainCodebooks(x, sub, []int{4, 3, 4, 2}, TrainConfig{Seed: 5})
	codes, _ := cb.Encode(x, false)
	q := x.Row(0)
	lut := cb.BuildLUT(q)
	// LUT.Distance must equal distance between q and the reconstruction.
	buf := make([]float32, 8)
	for i := 0; i < 20; i++ {
		cb.Decode(codes.Row(i), buf)
		want := vec.SquaredL2(q, buf)
		got := lut.Distance(codes.Row(i))
		if math.Abs(float64(got-want)) > 1e-4*(1+float64(want)) {
			t.Fatalf("vector %d: lut %v explicit %v", i, got, want)
		}
	}
	// Variable-size tables must be sized per book.
	for s := 0; s < 4; s++ {
		if len(lut.Table(s)) != cb.Books[s].Rows {
			t.Fatalf("table %d has %d entries, book has %d", s, len(lut.Table(s)), cb.Books[s].Rows)
		}
	}
}

func TestFillLUTReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := clusteredData(rng, 100, 4)
	sub, _ := UniformSubspaces(4, 2)
	cb, _ := TrainCodebooks(x, sub, []int{3, 3}, TrainConfig{Seed: 6})
	lut := cb.BuildLUT(x.Row(0))
	fresh := cb.BuildLUT(x.Row(1))
	cb.FillLUT(x.Row(1), lut)
	for i := range lut.Dist {
		if lut.Dist[i] != fresh.Dist[i] {
			t.Fatal("FillLUT differs from BuildLUT")
		}
	}
}

func TestScanADCFindsEncodedSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := clusteredData(rng, 400, 8)
	sub, _ := UniformSubspaces(8, 4)
	cb, _ := TrainCodebooks(x, sub, []int{6, 6, 6, 6}, TrainConfig{Seed: 7})
	codes, _ := cb.Encode(x, false)
	// Query with a database vector: it should be among the top answers.
	hits := 0
	for trial := 0; trial < 20; trial++ {
		qi := rng.Intn(400)
		lut := cb.BuildLUT(x.Row(qi))
		res := ScanADC(codes, lut, 10)
		for _, r := range res {
			if r.ID == qi {
				hits++
				break
			}
		}
	}
	if hits < 16 {
		t.Fatalf("self-query recall too low: %d/20", hits)
	}
}

func TestPQSearchRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := clusteredData(rng, 1000, 16)
	pq, err := TrainPQ(x, x, PQConfig{M: 4, BitsPerSubspace: 6, Train: TrainConfig{Seed: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if pq.Len() != 1000 {
		t.Fatalf("len %d", pq.Len())
	}
	recall := recallAt10(t, rng, x, func(q []float32) []vec.Neighbor {
		res, err := pq.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		return res
	})
	if recall < 0.5 {
		t.Fatalf("PQ recall@10 too low: %v", recall)
	}
	if _, err := pq.Search(make([]float32, 3), 5); err == nil {
		t.Fatal("bad query dim must fail")
	}
}

// recallAt10 runs 20 queries (perturbed database vectors) and measures
// overlap with exact top-10.
func recallAt10(t *testing.T, rng *rand.Rand, x *vec.Matrix, search func([]float32) []vec.Neighbor) float64 {
	t.Helper()
	totalHits := 0
	for trial := 0; trial < 20; trial++ {
		q := append([]float32(nil), x.Row(rng.Intn(x.Rows))...)
		for j := range q {
			q[j] += float32(rng.NormFloat64() * 0.05)
		}
		exact := vec.NewTopK(10)
		for i := 0; i < x.Rows; i++ {
			exact.Push(i, vec.SquaredL2(q, x.Row(i)))
		}
		truth := map[int]bool{}
		for _, r := range exact.Results() {
			truth[r.ID] = true
		}
		for _, r := range search(q) {
			if truth[r.ID] {
				totalHits++
			}
		}
	}
	return float64(totalHits) / float64(20*10)
}

func TestEigenvalueAllocationBalances(t *testing.T) {
	ev := []float64{100, 50, 10, 8, 4, 2, 1, 0.5}
	perm, err := EigenvalueAllocation(ev, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != 8 {
		t.Fatalf("perm %v", perm)
	}
	// Check it is a permutation.
	seen := map[int]bool{}
	for _, p := range perm {
		if seen[p] {
			t.Fatalf("duplicate %d in %v", p, perm)
		}
		seen[p] = true
	}
	// Bucket log-products should be closer than the naive contiguous split.
	logProd := func(dims []int) float64 {
		var s float64
		for _, d := range dims {
			s += math.Log(ev[d])
		}
		return s
	}
	b1, b2 := perm[:4], perm[4:]
	balanced := math.Abs(logProd(b1) - logProd(b2))
	naive := math.Abs(logProd([]int{0, 1, 2, 3}) - logProd([]int{4, 5, 6, 7}))
	if balanced > naive {
		t.Fatalf("allocation did not balance: %v vs naive %v (perm %v)", balanced, naive, perm)
	}
}

func TestEigenvalueAllocationErrors(t *testing.T) {
	if _, err := EigenvalueAllocation([]float64{1}, 2); err == nil {
		t.Fatal("d < m must fail")
	}
	// Non-divisible d: capacities mirror UniformSubspaces (3 = 2 + 1).
	perm, err := EigenvalueAllocation([]float64{3, 2, 1}, 2)
	if err != nil || len(perm) != 3 {
		t.Fatalf("non-divisible allocation: %v %v", perm, err)
	}
	seen := map[int]bool{}
	for _, p := range perm {
		if seen[p] {
			t.Fatalf("duplicate in %v", perm)
		}
		seen[p] = true
	}
}

func TestOPQSearchBeatsOrMatchesPQOnAnisotropic(t *testing.T) {
	// Strongly anisotropic data with correlated dims: OPQ's rotation should
	// help (or at least not hurt much) versus PQ on raw dims.
	rng := rand.New(rand.NewSource(9))
	n, d := 1200, 16
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		base := rng.NormFloat64() * 5
		for j := 0; j < d; j++ {
			scale := 1.0 / float64(j+1)
			r[j] = float32(base*scale + rng.NormFloat64()*0.3)
		}
	}
	opq, err := TrainOPQ(x, x, OPQConfig{M: 4, BitsPerSubspace: 4, Train: TrainConfig{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if opq.Len() != n {
		t.Fatalf("len %d", opq.Len())
	}
	rngQ := rand.New(rand.NewSource(10))
	opqRecall := recallAt10(t, rngQ, x, func(q []float32) []vec.Neighbor {
		res, err := opq.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		return res
	})
	if opqRecall < 0.3 {
		t.Fatalf("OPQ recall@10 too low: %v", opqRecall)
	}
	if _, err := opq.Search(make([]float32, 2), 5); err == nil {
		t.Fatal("bad query dim must fail")
	}
}

func TestOPQNonParametricRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := clusteredData(rng, 400, 8)
	opq, err := TrainOPQ(x, x, OPQConfig{
		M: 4, BitsPerSubspace: 3, NonParametricIters: 2,
		Train: TrainConfig{Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opq.Search(x.Row(5), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("results %v", res)
	}
}

func TestVQ(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := clusteredData(rng, 500, 4)
	vq, err := TrainVQ(x, x, VQConfig{Bits: 6, Train: TrainConfig{Seed: 12}})
	if err != nil {
		t.Fatal(err)
	}
	if vq.Len() != 500 {
		t.Fatalf("len %d", vq.Len())
	}
	res, err := vq.Search(x.Row(3), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	if _, err := TrainVQ(x, x, VQConfig{Bits: 0}); err == nil {
		t.Fatal("bits=0 must fail")
	}
	if _, err := vq.Search(make([]float32, 9), 2); err == nil {
		t.Fatal("bad query dim must fail")
	}
}

// Property: ADC distance from the LUT always equals the sum of per-subspace
// squared distances between the query subvector and the assigned centroid.
func TestADCDecompositionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := clusteredData(rng, 200, 6)
	sub, _ := UniformSubspaces(6, 3)
	cb, _ := TrainCodebooks(x, sub, []int{3, 2, 3}, TrainConfig{Seed: 13})
	codes, _ := cb.Encode(x, false)
	f := func(qi, vi uint8) bool {
		q := x.Row(int(qi) % x.Rows)
		i := int(vi) % x.Rows
		lut := cb.BuildLUT(q)
		got := lut.Distance(codes.Row(i))
		var want float32
		for s := 0; s < 3; s++ {
			want += vec.SquaredL2(sub.Of(q, s), cb.Books[s].Row(int(codes.Row(i)[s])))
		}
		return math.Abs(float64(got-want)) <= 1e-4*(1+float64(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
