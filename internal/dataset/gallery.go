package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"vaq/internal/vec"
)

// FamilyName identifies one of the gallery's generator families. The eight
// families span the diversity axes (noise level, spectrum skew,
// dimensionality, shape structure) that determine how quantization methods
// rank on the UCR archive.
var FamilyNames = []string{
	"cbf", "slc", "sine-mix", "random-walk", "arma", "gmm", "box", "burst",
}

// GalleryOptions controls UCRGallery.
type GalleryOptions struct {
	// Count is the number of datasets (paper: 128).
	Count int
	// Seed drives all generators.
	Seed int64
	// MaxTrain / MaxDim cap dataset size so the full gallery stays fast;
	// defaults 2000 and 256.
	MaxTrain int
	MaxDim   int
	// Queries per dataset (default 30).
	Queries int
}

// UCRGallery generates Count diverse, z-normalized datasets standing in
// for the UCR archive (paper §IV: up to 24,000 sequences, length up to
// 2,844, z-normalized, many domains). Sizes cycle deterministically
// through the option ranges.
func UCRGallery(opt GalleryOptions) []*Dataset {
	if opt.Count <= 0 {
		opt.Count = 128
	}
	if opt.MaxTrain <= 0 {
		opt.MaxTrain = 2000
	}
	if opt.MaxDim <= 0 {
		opt.MaxDim = 256
	}
	if opt.Queries <= 0 {
		opt.Queries = 30
	}
	dims := []int{64, 96, 128, 192, 256, 320, 384, 512}
	sizes := []int{500, 800, 1200, 1600, 2000, 2400, 3000}
	out := make([]*Dataset, 0, opt.Count)
	for i := 0; i < opt.Count; i++ {
		rng := rand.New(rand.NewSource(opt.Seed + int64(i)*7907))
		family := FamilyNames[i%len(FamilyNames)]
		d := dims[(i/len(FamilyNames))%len(dims)]
		if d > opt.MaxDim {
			d = opt.MaxDim
		}
		n := sizes[(i/3)%len(sizes)]
		if n > opt.MaxTrain {
			n = opt.MaxTrain
		}
		base := GenerateFamily(family, rng, n, d)
		queries := NoisyQueries(rng, base, opt.Queries, 0.05, 0.4)
		out = append(out, &Dataset{
			Name:    fmt.Sprintf("ucr-%03d-%s-n%d-d%d", i, family, n, d),
			Base:    base,
			Train:   base,
			Queries: queries,
		})
	}
	return out
}

// GenerateFamily produces one z-normalized dataset from the named family.
func GenerateFamily(family string, rng *rand.Rand, n, d int) *vec.Matrix {
	var x *vec.Matrix
	switch family {
	case "cbf":
		x = CBF(rng, n, d)
	case "slc":
		x = SLCLike(rng, n, d)
	case "sine-mix":
		x = sineMix(rng, n, d)
	case "random-walk":
		x = RandomWalk(rng, n, d, 0.2+rng.Float64()*0.6)
	case "arma":
		x = arma(rng, n, d)
	case "gmm":
		x = gmm(rng, n, d)
	case "box":
		x = boxShapes(rng, n, d)
	case "burst":
		x = noiseBurst(rng, n, d)
	default:
		x = RandomWalk(rng, n, d, 0.5)
	}
	vec.ZNormalizeRows(x)
	return x
}

// sineMix: sums of 2-4 sinusoids with class-dependent frequencies.
func sineMix(rng *rand.Rand, n, d int) *vec.Matrix {
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		class := rng.Intn(4)
		k := 2 + class
		for h := 0; h < k; h++ {
			freq := float64(h+1) + float64(class)*0.5
			amp := 1 / float64(h+1)
			phase := rng.Float64() * 2 * math.Pi
			for j := 0; j < d; j++ {
				tt := float64(j) / float64(d)
				r[j] += float32(amp * math.Sin(2*math.Pi*freq*tt+phase))
			}
		}
		for j := 0; j < d; j++ {
			r[j] += float32(rng.NormFloat64() * 0.1)
		}
	}
	return x
}

// arma: AR(2) processes with class-dependent coefficients.
func arma(rng *rand.Rand, n, d int) *vec.Matrix {
	x := vec.NewMatrix(n, d)
	coeffs := [][2]float64{{0.6, 0.2}, {0.9, -0.3}, {0.3, 0.5}, {1.2, -0.5}}
	for i := 0; i < n; i++ {
		r := x.Row(i)
		c := coeffs[rng.Intn(len(coeffs))]
		var p1, p2 float64
		for j := 0; j < d; j++ {
			v := c[0]*p1 + c[1]*p2 + rng.NormFloat64()
			r[j] = float32(v)
			p2, p1 = p1, v
		}
	}
	return x
}

// gmm: plain Gaussian-mixture vectors (non-series "multivariate" data).
func gmm(rng *rand.Rand, n, d int) *vec.Matrix {
	const clusters = 16
	centers := vec.NewMatrix(clusters, d)
	for i := range centers.Data {
		centers.Data[i] = float32(rng.NormFloat64() * 3)
	}
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		c := centers.Row(rng.Intn(clusters))
		r := x.Row(i)
		for j := 0; j < d; j++ {
			r[j] = c[j] + float32(rng.NormFloat64()*0.5)
		}
	}
	return x
}

// boxShapes: square pulses of varying position/width/height.
func boxShapes(rng *rand.Rand, n, d int) *vec.Matrix {
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		nBoxes := 1 + rng.Intn(3)
		for b := 0; b < nBoxes; b++ {
			start := rng.Intn(d)
			width := d/16 + rng.Intn(d/4+1)
			h := float32(rng.NormFloat64() * 3)
			for j := start; j < start+width && j < d; j++ {
				r[j] += h
			}
		}
		for j := 0; j < d; j++ {
			r[j] += float32(rng.NormFloat64() * 0.2)
		}
	}
	return x
}

// noiseBurst: mostly flat with localized high-variance bursts — the
// "flat, noisy, non-informative" regions of paper Figure 3 taken to the
// extreme.
func noiseBurst(rng *rand.Rand, n, d int) *vec.Matrix {
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		start := rng.Intn(d * 3 / 4)
		width := d / 8
		for j := 0; j < d; j++ {
			r[j] = float32(rng.NormFloat64() * 0.05)
		}
		for j := start; j < start+width && j < d; j++ {
			r[j] = float32(rng.NormFloat64() * 2)
		}
	}
	return x
}
