package eval

import (
	"math"
	"math/rand"
	"testing"

	"vaq/internal/vec"
)

func TestGroundTruthExact(t *testing.T) {
	base, _ := vec.FromRows([][]float32{
		{0, 0}, {1, 0}, {2, 0}, {3, 0}, {10, 10},
	})
	queries, _ := vec.FromRows([][]float32{{0.1, 0}, {9, 9}})
	gt, err := GroundTruth(base, queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt) != 2 {
		t.Fatalf("got %d", len(gt))
	}
	if gt[0][0] != 0 || gt[0][1] != 1 || gt[0][2] != 2 {
		t.Fatalf("query 0 truth %v", gt[0])
	}
	if gt[1][0] != 4 {
		t.Fatalf("query 1 truth %v", gt[1])
	}
}

func TestGroundTruthErrors(t *testing.T) {
	base := vec.NewMatrix(3, 2)
	if _, err := GroundTruth(base, vec.NewMatrix(1, 3), 1); err == nil {
		t.Fatal("dim mismatch must fail")
	}
	if _, err := GroundTruth(base, vec.NewMatrix(1, 2), 0); err == nil {
		t.Fatal("k=0 must fail")
	}
	// k clamps to n.
	gt, err := GroundTruth(base, vec.NewMatrix(1, 2), 10)
	if err != nil || len(gt[0]) != 3 {
		t.Fatalf("clamp: %v %v", gt, err)
	}
}

func TestGroundTruthMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := vec.NewMatrix(500, 8)
	for i := range base.Data {
		base.Data[i] = rng.Float32()
	}
	queries := vec.NewMatrix(20, 8)
	for i := range queries.Data {
		queries.Data[i] = rng.Float32()
	}
	gt, err := GroundTruth(base, queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < queries.Rows; qi++ {
		tk := vec.NewTopK(5)
		for i := 0; i < base.Rows; i++ {
			tk.Push(i, vec.SquaredL2(queries.Row(qi), base.Row(i)))
		}
		want := tk.Results()
		for j, r := range want {
			if gt[qi][j] != r.ID {
				t.Fatalf("query %d rank %d: %d vs %d", qi, j, gt[qi][j], r.ID)
			}
		}
	}
}

func TestRecall(t *testing.T) {
	truth := [][]int{{1, 2, 3}, {4, 5, 6}}
	results := [][]int{{1, 2, 9}, {4, 5, 6}}
	if got := Recall(results, truth, 3); math.Abs(got-(2.0/3+1)/2) > 1e-12 {
		t.Fatalf("recall %v", got)
	}
	if got := Recall(nil, nil, 3); got != 0 {
		t.Fatalf("empty recall %v", got)
	}
	// Perfect and zero.
	if got := Recall([][]int{{1, 2, 3}}, [][]int{{3, 2, 1}}, 3); got != 1 {
		t.Fatalf("order-free recall %v", got)
	}
	if got := Recall([][]int{{7, 8, 9}}, [][]int{{1, 2, 3}}, 3); got != 0 {
		t.Fatalf("zero recall %v", got)
	}
	// Short result lists count misses.
	if got := Recall([][]int{{1}}, [][]int{{1, 2}}, 2); got != 0.5 {
		t.Fatalf("short recall %v", got)
	}
}

func TestMAP(t *testing.T) {
	truth := [][]int{{1, 2}}
	// Returned: true, false, true(2nd) -> but k=2 limits to first 2.
	results := [][]int{{1, 9}}
	// AP = (1/1) / 2 = 0.5
	if got := MAP(results, truth, 2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("map %v", got)
	}
	// Perfect ranking = 1.
	if got := MAP([][]int{{1, 2}}, truth, 2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("map %v", got)
	}
	// Correct items late rank lower than early.
	early := MAP([][]int{{1, 9, 8, 7}}, [][]int{{1}}, 1)
	late := MAP([][]int{{9, 8, 7, 1}}, [][]int{{1}}, 1)
	if early <= late {
		t.Fatalf("MAP must reward early hits: %v vs %v", early, late)
	}
	if got := MAP(nil, nil, 2); got != 0 {
		t.Fatalf("empty map %v", got)
	}
}

func TestMAPLessEqualRecall(t *testing.T) {
	// MAP is always <= Recall for the same lists.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		truth := [][]int{rng.Perm(20)[:5]}
		results := [][]int{rng.Perm(25)[:5]}
		r := Recall(results, truth, 5)
		m := MAP(results, truth, 5)
		if m > r+1e-12 {
			t.Fatalf("MAP %v > recall %v", m, r)
		}
	}
}

func TestIDs(t *testing.T) {
	res := []vec.Neighbor{{ID: 3, Dist: 1}, {ID: 7, Dist: 2}}
	ids := IDs(res)
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 7 {
		t.Fatalf("ids %v", ids)
	}
}

func TestWilcoxonDetectsDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := rng.Float64()
		a[i] = base + 0.2 + rng.NormFloat64()*0.02 // consistently higher
		b[i] = base
	}
	_, p, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.01 {
		t.Fatalf("clear difference not detected: p=%v", p)
	}
	// No difference: p should be large.
	c := make([]float64, n)
	d := make([]float64, n)
	for i := range c {
		c[i] = rng.NormFloat64()
		d[i] = c[i] + rng.NormFloat64()*0.5
	}
	_, p2, err := WilcoxonSignedRank(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if p2 < 0.001 {
		t.Fatalf("noise flagged significant: p=%v", p2)
	}
}

func TestWilcoxonErrors(t *testing.T) {
	if _, _, err := WilcoxonSignedRank([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, _, err := WilcoxonSignedRank([]float64{1, 1}, []float64{1, 1}); err == nil {
		t.Fatal("too few non-zero diffs must fail")
	}
}

func TestFriedmanRanksAndSignificance(t *testing.T) {
	// Algorithm 0 always best, 2 always worst, across 30 datasets.
	n := 30
	scores := make([][]float64, n)
	rng := rand.New(rand.NewSource(4))
	for i := range scores {
		base := rng.Float64()
		scores[i] = []float64{base + 0.3, base + 0.15, base}
	}
	ranks, chi2, p, err := FriedmanTest(scores)
	if err != nil {
		t.Fatal(err)
	}
	if ranks[0] != 1 || ranks[1] != 2 || ranks[2] != 3 {
		t.Fatalf("ranks %v", ranks)
	}
	if chi2 <= 0 || p > 1e-6 {
		t.Fatalf("chi2=%v p=%v should be highly significant", chi2, p)
	}
	cd, err := NemenyiCD(3, n)
	if err != nil {
		t.Fatal(err)
	}
	if cd <= 0 || cd > 2 {
		t.Fatalf("implausible CD %v", cd)
	}
	// With perfect separation, adjacent ranks differ by 1 > CD? CD for
	// k=3, n=30 is 2.343*sqrt(12/180) = 0.605, so 1 > CD: significant.
	if ranks[1]-ranks[0] < cd {
		t.Fatalf("expected significant separation: gap 1 vs CD %v", cd)
	}
}

func TestFriedmanTiesAndErrors(t *testing.T) {
	// All equal scores: average ranks identical, chi2 ~ 0, p ~ 1.
	scores := [][]float64{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}}
	ranks, chi2, p, err := FriedmanTest(scores)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ranks {
		if math.Abs(r-2) > 1e-12 {
			t.Fatalf("tied ranks %v", ranks)
		}
	}
	if chi2 > 1e-9 || p < 0.99 {
		t.Fatalf("ties: chi2=%v p=%v", chi2, p)
	}
	if _, _, _, err := FriedmanTest([][]float64{{1, 2}}); err == nil {
		t.Fatal("one dataset must fail")
	}
	if _, _, _, err := FriedmanTest([][]float64{{1}, {2}}); err == nil {
		t.Fatal("one algorithm must fail")
	}
	if _, _, _, err := FriedmanTest([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged scores must fail")
	}
}

func TestNemenyiErrors(t *testing.T) {
	if _, err := NemenyiCD(11, 30); err == nil {
		t.Fatal("k out of table must fail")
	}
	if _, err := NemenyiCD(3, 1); err == nil {
		t.Fatal("n < 2 must fail")
	}
	cd4, _ := NemenyiCD(4, 128)
	cd8, _ := NemenyiCD(8, 128)
	if cd8 <= cd4 {
		t.Fatalf("CD must grow with k: %v vs %v", cd4, cd8)
	}
}

func TestChiSquareSurvival(t *testing.T) {
	// Known values: P(X >= 3.841 | df=1) ~= 0.05.
	if got := chiSquareSurvival(3.841, 1); math.Abs(got-0.05) > 0.002 {
		t.Fatalf("chi2(3.841, 1) = %v", got)
	}
	// P(X >= 5.991 | df=2) ~= 0.05.
	if got := chiSquareSurvival(5.991, 2); math.Abs(got-0.05) > 0.002 {
		t.Fatalf("chi2(5.991, 2) = %v", got)
	}
	// P(X >= 0) = 1.
	if got := chiSquareSurvival(0, 3); got != 1 {
		t.Fatalf("chi2(0) = %v", got)
	}
	// Large x: tiny survival.
	if got := chiSquareSurvival(100, 2); got > 1e-10 {
		t.Fatalf("chi2(100, 2) = %v", got)
	}
}

func TestNormalCDF(t *testing.T) {
	if math.Abs(normalCDF(0)-0.5) > 1e-12 {
		t.Fatal("Phi(0)")
	}
	if math.Abs(normalCDF(1.959964)-0.975) > 1e-5 {
		t.Fatalf("Phi(1.96) = %v", normalCDF(1.959964))
	}
}
