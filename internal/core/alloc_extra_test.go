package core

import (
	"math/rand"
	"testing"

	"vaq/internal/milp"
)

func TestAllocateMILPExtraConstraints(t *testing.T) {
	base := allocParams{
		Weights:        []float64{0.5, 0.25, 0.15, 0.1},
		Budget:         20,
		MinBits:        1,
		MaxBits:        8,
		TargetVariance: 0.99,
	}
	// Without constraints the head subspace gets the most bits.
	free, err := allocateBits(AllocMILP, base)
	if err != nil {
		t.Fatal(err)
	}
	// Cap the first subspace at 5 bits (e.g. a lookup-latency SLA).
	capped := base
	capped.Extra = []BitConstraint{{
		Coeffs: []float64{1, 0, 0, 0},
		Sense:  milp.LE,
		RHS:    5,
	}}
	bits, err := allocateBits(AllocMILP, capped)
	if err != nil {
		t.Fatal(err)
	}
	checkAllocation(t, bits, capped)
	if bits[0] > 5 {
		t.Fatalf("constraint violated: %v", bits)
	}
	if free[0] <= 5 {
		t.Fatalf("test vacuous: unconstrained already %v", free)
	}
}

func TestAllocateMILPExtraConstraintJointCap(t *testing.T) {
	p := allocParams{
		Weights:        []float64{0.4, 0.3, 0.2, 0.1},
		Budget:         16,
		MinBits:        1,
		MaxBits:        8,
		TargetVariance: 0.99,
		// First two subspaces together at most 9 bits.
		Extra: []BitConstraint{{
			Coeffs: []float64{1, 1, 0, 0},
			Sense:  milp.LE,
			RHS:    9,
		}},
	}
	bits, err := allocateBits(AllocMILP, p)
	if err != nil {
		t.Fatal(err)
	}
	checkAllocation(t, bits, p)
	if bits[0]+bits[1] > 9 {
		t.Fatalf("joint cap violated: %v", bits)
	}
}

func TestAllocateMILPExtraConstraintErrors(t *testing.T) {
	p := allocParams{
		Weights:        []float64{0.6, 0.4},
		Budget:         8,
		MinBits:        1,
		MaxBits:        8,
		TargetVariance: 0.99,
		Extra:          []BitConstraint{{Coeffs: []float64{1}, Sense: milp.LE, RHS: 4}},
	}
	if _, err := allocateBits(AllocMILP, p); err == nil {
		t.Fatal("wrong coefficient count must fail")
	}
	// Infeasible user constraint must surface as an error.
	p.Extra = []BitConstraint{{Coeffs: []float64{1, 1}, Sense: milp.LE, RHS: 3}}
	if _, err := allocateBits(AllocMILP, p); err == nil {
		t.Fatal("infeasible constraint must fail")
	}
}

func TestBuildWithAllocConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := skewedData(rng, 600, 16, 1.5)
	coeffs := make([]float64, 8)
	coeffs[0] = 1
	ix, err := Build(x, x, Config{
		NumSubspaces: 8,
		Budget:       40,
		Seed:         41,
		TIClusters:   10,
		AllocConstraints: []BitConstraint{
			{Coeffs: coeffs, Sense: milp.LE, RHS: 6},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bits := ix.Bits(); bits[0] > 6 {
		t.Fatalf("user constraint not honored: %v", bits)
	}
	if _, err := ix.Search(x.Row(0), 3); err != nil {
		t.Fatal(err)
	}
}
