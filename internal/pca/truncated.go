package pca

import (
	"errors"
	"fmt"

	"vaq/internal/linalg"
	"vaq/internal/vec"
)

// TruncatedModel is a rank-k PCA: the k leading eigenpairs only, computed
// with the subspace-iteration eigensolver so the cost stays O(d²·k)
// instead of O(d³). Used where only the top of the spectrum matters
// (ITQ's code length, exploratory spectra on very long series).
type TruncatedModel struct {
	Dim         int
	K           int
	Eigenvalues []float64     // k values, descending, clamped to >= 0
	Components  *linalg.Dense // d x k, columns are eigenvectors
	Mean        []float64     // nil when not centered
	// TotalVariance is the full trace of the covariance, so explained
	// ratios remain well defined despite truncation.
	TotalVariance float64
}

// FitTruncated computes the k leading principal components of x.
func FitTruncated(x *vec.Matrix, k int, opt Options) (*TruncatedModel, error) {
	if x.Rows == 0 || x.Cols == 0 {
		return nil, errors.New("pca: empty input")
	}
	if k < 1 || k > x.Cols {
		return nil, fmt.Errorf("pca: truncated k=%d out of range [1,%d]", k, x.Cols)
	}
	cov := linalg.Covariance(x, opt.Center)
	var trace float64
	for i := 0; i < cov.Rows; i++ {
		trace += cov.At(i, i)
	}
	eig, err := linalg.TopKEig(cov, k, 40, 1)
	if err != nil {
		return nil, fmt.Errorf("pca: %w", err)
	}
	vals := make([]float64, k)
	for i, v := range eig.Values {
		if v < 0 {
			v = 0
		}
		vals[i] = v
	}
	m := &TruncatedModel{
		Dim:           x.Cols,
		K:             k,
		Eigenvalues:   vals,
		Components:    eig.Vectors,
		TotalVariance: trace,
	}
	if opt.Center {
		m.Mean = vec.ColumnMeans(x)
	}
	return m, nil
}

// ExplainedVarianceRatio returns each retained component's share of the
// TOTAL variance (so the ratios sum to <= 1; the remainder lives in the
// truncated tail).
func (m *TruncatedModel) ExplainedVarianceRatio() []float64 {
	out := make([]float64, m.K)
	if m.TotalVariance <= 0 {
		return out
	}
	for i, v := range m.Eigenvalues {
		out[i] = v / m.TotalVariance
	}
	return out
}

// Project maps x (n x d) onto the k retained components, producing n x k
// scores.
func (m *TruncatedModel) Project(x *vec.Matrix) (*vec.Matrix, error) {
	if x.Cols != m.Dim {
		return nil, fmt.Errorf("pca: project dimension %d, model has %d", x.Cols, m.Dim)
	}
	out := vec.NewMatrix(x.Rows, m.K)
	row := make([]float64, m.Dim)
	for i := 0; i < x.Rows; i++ {
		src := x.Row(i)
		for j := 0; j < m.Dim; j++ {
			row[j] = float64(src[j])
			if m.Mean != nil {
				row[j] -= m.Mean[j]
			}
		}
		dst := out.Row(i)
		for j := 0; j < m.K; j++ {
			var s float64
			for t := 0; t < m.Dim; t++ {
				s += row[t] * m.Components.At(t, j)
			}
			dst[j] = float32(s)
		}
	}
	return out, nil
}
