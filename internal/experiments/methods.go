package experiments

import (
	"vaq/internal/bolt"
	"vaq/internal/core"
	"vaq/internal/dataset"
	"vaq/internal/eval"
	"vaq/internal/itq"
	"vaq/internal/pqfs"
	"vaq/internal/quantizer"
)

// trainCfg is the shared k-means configuration for all quantizers so
// comparisons are apples-to-apples.
func trainCfg(seed int64) quantizer.TrainConfig {
	return quantizer.TrainConfig{Seed: seed, MaxIter: 20, Parallel: true, HierarchicalThreshold: 1024}
}

// buildVAQ constructs a VAQ index method with the given search options.
func buildVAQ(name string, ds *dataset.Dataset, cfg core.Config, opt core.SearchOptions) (*method, error) {
	return buildTimed(name, func() (searchFunc, error) {
		ix, err := core.Build(ds.Train, ds.Base, cfg)
		if err != nil {
			return nil, err
		}
		s := ix.NewSearcher()
		return func(q []float32, k int) ([]int, error) {
			res, err := s.Search(q, k, opt)
			if err != nil {
				return nil, err
			}
			return eval.IDs(res), nil
		}, nil
	})
}

// vaqConfig is the paper's default VAQ setting for a budget/subspace pair.
// The paper uses MinBits 1 / MaxBits 13 on million-scale data; a 2^13
// dictionary at this reproduction's 20k scale would hold ~40% of the
// dataset and its per-query lookup tables would dominate the scan, so the
// cap is scaled down one notch to 2^12 — accuracy is preserved (the head
// subspaces still get orders of magnitude more dictionary items than the
// tail) while the lookup tables stay amortizable.
func vaqConfig(budget, m int, seed int64) core.Config {
	return core.Config{
		NumSubspaces: m,
		Budget:       budget,
		MinBits:      1,
		MaxBits:      12,
		Seed:         seed,
		KMeansIters:  20,
	}
}

func buildPQ(name string, ds *dataset.Dataset, m, bits int, seed int64) (*method, error) {
	return buildTimed(name, func() (searchFunc, error) {
		pq, err := quantizer.TrainPQ(ds.Train, ds.Base, quantizer.PQConfig{
			M: m, BitsPerSubspace: bits, Train: trainCfg(seed),
		})
		if err != nil {
			return nil, err
		}
		return func(q []float32, k int) ([]int, error) {
			res, err := pq.Search(q, k)
			if err != nil {
				return nil, err
			}
			return eval.IDs(res), nil
		}, nil
	})
}

func buildOPQ(name string, ds *dataset.Dataset, m, bits int, seed int64) (*method, error) {
	return buildTimed(name, func() (searchFunc, error) {
		opq, err := quantizer.TrainOPQ(ds.Train, ds.Base, quantizer.OPQConfig{
			M: m, BitsPerSubspace: bits, Train: trainCfg(seed),
		})
		if err != nil {
			return nil, err
		}
		return func(q []float32, k int) ([]int, error) {
			res, err := opq.Search(q, k)
			if err != nil {
				return nil, err
			}
			return eval.IDs(res), nil
		}, nil
	})
}

func buildBolt(name string, ds *dataset.Dataset, budget int, seed int64) (*method, error) {
	return buildTimed(name, func() (searchFunc, error) {
		ix, err := bolt.Build(ds.Train, ds.Base, bolt.Config{Budget: budget, Train: trainCfg(seed)})
		if err != nil {
			return nil, err
		}
		return func(q []float32, k int) ([]int, error) {
			res, err := ix.Search(q, k)
			if err != nil {
				return nil, err
			}
			return eval.IDs(res), nil
		}, nil
	})
}

func buildPQFS(name string, ds *dataset.Dataset, m, bits int, seed int64) (*method, error) {
	return buildTimed(name, func() (searchFunc, error) {
		ix, err := pqfs.Build(ds.Train, ds.Base, pqfs.Config{M: m, BitsPerSubspace: bits, Train: trainCfg(seed)})
		if err != nil {
			return nil, err
		}
		return func(q []float32, k int) ([]int, error) {
			res, err := ix.Search(q, k)
			if err != nil {
				return nil, err
			}
			return eval.IDs(res), nil
		}, nil
	})
}

func buildITQ(name string, ds *dataset.Dataset, bits int, seed int64) (*method, error) {
	return buildTimed(name, func() (searchFunc, error) {
		b := bits
		if b > ds.Dim() {
			b = ds.Dim()
		}
		ix, err := itq.Build(ds.Train, ds.Base, itq.Config{Bits: b, Seed: seed, Iterations: 20})
		if err != nil {
			return nil, err
		}
		return func(q []float32, k int) ([]int, error) {
			res, err := ix.Search(q, k)
			if err != nil {
				return nil, err
			}
			return eval.IDs(res), nil
		}, nil
	})
}
