package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// The process-wide tracer registry behind /debug/vaq/traces, mirroring the
// expvar indirection in internal/metrics: Publish rebinds an existing name
// instead of erroring, so index reloads and tests stay simple.
var tracers sync.Map // name -> *Tracer

// Publish registers t under name for the /debug/vaq/traces handler (which
// is installed on http.DefaultServeMux at package init, like net/http/pprof
// does — ServeDebug in internal/metrics serves that mux). Publishing a nil
// tracer removes the name.
func Publish(name string, t *Tracer) {
	if t == nil {
		tracers.Delete(name)
		return
	}
	tracers.Store(name, t)
}

func init() {
	http.HandleFunc("/debug/vaq/traces", handleTraces)
}

// handleTraces serves the registered tracers. Query parameters:
//
//	?name=X         only the tracer published as X (default: all)
//	?format=chrome  Chrome trace-event JSON (load in chrome://tracing
//	                or Perfetto); default is a human-readable dump
//	?slow=1         restrict to the slow-query exemplar reservoir
func handleTraces(w http.ResponseWriter, r *http.Request) {
	wantName := r.URL.Query().Get("name")
	slowOnly := r.URL.Query().Get("slow") == "1"
	var names []string
	tracers.Range(func(k, _ any) bool {
		if wantName == "" || k.(string) == wantName {
			names = append(names, k.(string))
		}
		return true
	})
	sort.Strings(names)
	if wantName != "" && len(names) == 0 {
		http.Error(w, fmt.Sprintf("no tracer published as %q", wantName), http.StatusNotFound)
		return
	}
	collect := func(name string) []*QueryTrace {
		v, ok := tracers.Load(name)
		if !ok {
			return nil
		}
		t := v.(*Tracer)
		if slowOnly {
			qts, _ := t.Slowest()
			return qts
		}
		return t.Recent()
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var all []*QueryTrace
		for _, name := range names {
			all = append(all, collect(name)...)
		}
		WriteChromeTrace(w, all) //nolint:errcheck // best-effort HTTP body
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, name := range names {
		v, _ := tracers.Load(name)
		t, _ := v.(*Tracer)
		if t == nil {
			continue
		}
		fmt.Fprintf(w, "== tracer %q: %d traces recorded", name, t.Count())
		if slowOnly {
			_, seen := t.Slowest()
			fmt.Fprintf(w, ", %d over the %s slow threshold", seen, t.cfg.SlowThreshold)
		}
		fmt.Fprintln(w)
		WriteText(w, collect(name)) //nolint:errcheck // best-effort HTTP body
	}
}

// chromeEvent is one Chrome trace-event ("X" = complete event). Times are
// microseconds; each query gets its own tid so spans never interleave.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace emits the traces as a Chrome trace-event JSON array
// (the chrome://tracing / Perfetto interchange format). Each query is one
// "thread": a top-level event spanning the whole query plus one event per
// recorded span, timestamped on the shared wall clock so concurrent
// queries line up. Sharded parent traces fan out further: every shard's
// wait/scan spans land on their own derived tid, so a scatter renders as
// one flame per shard under the parent query event.
func WriteChromeTrace(w io.Writer, qts []*QueryTrace) error {
	events := make([]chromeEvent, 0, len(qts)*4)
	for _, qt := range qts {
		base := float64(qt.Start.UnixNano()) / 1e3
		events = append(events, chromeEvent{
			Name: "query", Ph: "X", Ts: base, Dur: us(qt.Total), Pid: 1, Tid: qt.Seq,
			Args: map[string]any{
				"mode": qt.Mode, "k": qt.K,
				"codes_considered": qt.Stats.CodesConsidered,
				"codes_skipped_ti": qt.Stats.CodesSkippedTI,
				"abandoned_ea":     qt.Stats.CodesAbandonedEA,
				"lookups":          qt.Stats.Lookups,
			},
		})
		for _, s := range qt.Spans {
			ev := chromeEvent{
				Name: s.Name, Ph: "X", Ts: base + us(s.Start), Dur: us(s.Dur),
				Pid: 1, Tid: qt.Seq,
			}
			switch {
			case s.Name == SpanClusterScan:
				ev.Args = map[string]any{
					"cluster": s.Cluster, "rank": s.Rank, "members": s.Count,
					"skipped_ti": s.SkippedTI, "abandoned_ea": s.AbandonedEA,
					"lookups": s.Lookups,
				}
			case s.Name == SpanShardScan:
				ev.Tid = shardTid(qt.Seq, s.Shard)
				ev.Args = map[string]any{
					"shard": s.Shard, "codes_considered": s.Count,
					"skipped_ti": s.SkippedTI, "abandoned_ea": s.AbandonedEA,
					"lookups": s.Lookups, "hits": s.Hits,
				}
			case s.Name == SpanShardWait:
				ev.Tid = shardTid(qt.Seq, s.Shard)
				ev.Args = map[string]any{"shard": s.Shard}
			case s.Name == SpanBoundFeedback:
				ev.Tid = shardTid(qt.Seq, s.Shard)
				ev.Args = map[string]any{
					"shard": s.Shard, "bound": s.Bound,
					"downstream_shards":      s.Count,
					"downstream_ti_skips":    s.SkippedTI,
					"downstream_ea_abandons": s.AbandonedEA,
				}
			case s.Count > 0:
				ev.Args = map[string]any{"count": s.Count}
			}
			events = append(events, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// shardTid derives a per-shard thread id under a sharded parent trace, so
// concurrent shard spans never stack on one lane.
func shardTid(seq uint64, shard int) uint64 {
	return seq<<10 | uint64(shard+1)
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteText emits a human-readable dump: one block per trace, one line per
// span, with the pruning attribution inline.
func WriteText(w io.Writer, qts []*QueryTrace) error {
	for _, qt := range qts {
		_, err := fmt.Fprintf(w, "query #%d %s mode=%s k=%d considered=%d ti_skipped=%d ea_abandoned=%d lookups=%d\n",
			qt.Seq, qt.Total, qt.Mode, qt.K,
			qt.Stats.CodesConsidered, qt.Stats.CodesSkippedTI,
			qt.Stats.CodesAbandonedEA, qt.Stats.Lookups)
		if err != nil {
			return err
		}
		for _, s := range qt.Spans {
			fmt.Fprintf(w, "  %-14s +%-12s %-12s", s.Name, s.Start, s.Dur)
			switch {
			case s.Name == SpanClusterScan:
				fmt.Fprintf(w, " cluster=%d rank=%d members=%d skipped=%d abandoned=%d lookups=%d",
					s.Cluster, s.Rank, s.Count, s.SkippedTI, s.AbandonedEA, s.Lookups)
			case s.Name == SpanShardScan:
				fmt.Fprintf(w, " shard=%d considered=%d skipped=%d abandoned=%d lookups=%d hits=%d",
					s.Shard, s.Count, s.SkippedTI, s.AbandonedEA, s.Lookups, s.Hits)
			case s.Name == SpanShardWait:
				fmt.Fprintf(w, " shard=%d", s.Shard)
			case s.Name == SpanBoundFeedback:
				fmt.Fprintf(w, " shard=%d bound=%g downstream_shards=%d downstream_skips=%d downstream_abandons=%d",
					s.Shard, s.Bound, s.Count, s.SkippedTI, s.AbandonedEA)
			case s.Count > 0:
				fmt.Fprintf(w, " count=%d", s.Count)
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if qt.DroppedSpans > 0 {
			if _, err := fmt.Fprintf(w, "  (+%d spans dropped past cap)\n", qt.DroppedSpans); err != nil {
				return err
			}
		}
	}
	return nil
}
