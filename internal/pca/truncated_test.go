package pca

import (
	"math"
	"math/rand"
	"testing"

	"vaq/internal/vec"
)

func TestFitTruncatedMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := anisotropic(rng, 800, 12, []float64{8, 5, 3, 2, 1, 1, 0.5, 0.5, 0.2, 0.2, 0.1, 0.1})
	full, err := Fit(x, Options{Center: true})
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	trunc, err := FitTruncated(x, k, Options{Center: true})
	if err != nil {
		t.Fatal(err)
	}
	if trunc.K != k || trunc.Dim != 12 {
		t.Fatalf("shape %d %d", trunc.K, trunc.Dim)
	}
	for i := 0; i < k; i++ {
		rel := math.Abs(trunc.Eigenvalues[i]-full.Eigenvalues[i]) / (1 + full.Eigenvalues[i])
		if rel > 1e-5 {
			t.Fatalf("eigenvalue %d: %v vs %v", i, trunc.Eigenvalues[i], full.Eigenvalues[i])
		}
	}
	// Projections agree up to per-component sign.
	zFull, _ := full.Project(x)
	zTrunc, err := trunc.Project(x)
	if err != nil {
		t.Fatal(err)
	}
	if zTrunc.Cols != k {
		t.Fatalf("projected cols %d", zTrunc.Cols)
	}
	for j := 0; j < k; j++ {
		sign := float32(1)
		if zFull.At(0, j)*zTrunc.At(0, j) < 0 {
			sign = -1
		}
		for i := 0; i < 50; i++ {
			a, b := zFull.At(i, j), sign*zTrunc.At(i, j)
			if math.Abs(float64(a-b)) > 1e-3*(1+math.Abs(float64(a))) {
				t.Fatalf("projection mismatch at (%d,%d): %v vs %v", i, j, a, b)
			}
		}
	}
}

func TestTruncatedExplainedRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := anisotropic(rng, 500, 6, []float64{5, 2, 1, 0.5, 0.2, 0.1})
	trunc, err := FitTruncated(x, 3, Options{Center: true})
	if err != nil {
		t.Fatal(err)
	}
	ratios := trunc.ExplainedVarianceRatio()
	var sum float64
	for i, r := range ratios {
		if r < 0 || r > 1 {
			t.Fatalf("ratio %d out of range: %v", i, r)
		}
		if i > 0 && r > ratios[i-1]+1e-9 {
			t.Fatalf("ratios not descending: %v", ratios)
		}
		sum += r
	}
	if sum > 1+1e-9 {
		t.Fatalf("ratios exceed total variance: %v", sum)
	}
	// The dominant axis should explain the bulk.
	if ratios[0] < 0.5 {
		t.Fatalf("dominant ratio %v too small", ratios[0])
	}
}

func TestFitTruncatedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := anisotropic(rng, 50, 4, []float64{1, 1, 1, 1})
	if _, err := FitTruncated(vec.NewMatrix(0, 4), 2, Options{}); err == nil {
		t.Fatal("empty must fail")
	}
	if _, err := FitTruncated(x, 0, Options{}); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := FitTruncated(x, 5, Options{}); err == nil {
		t.Fatal("k>d must fail")
	}
	m, _ := FitTruncated(x, 2, Options{})
	if _, err := m.Project(vec.NewMatrix(1, 5)); err == nil {
		t.Fatal("bad projection dim must fail")
	}
}
