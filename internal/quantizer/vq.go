package quantizer

import (
	"fmt"

	"vaq/internal/kmeans"
	"vaq/internal/vec"
)

// VQ is plain vector quantization (paper §II-C): a single dictionary over
// all dimensions. It is only practical for tiny budgets and serves as the
// conceptual baseline PQ generalizes.
type VQ struct {
	centroids *vec.Matrix
	assign    []uint16
	n         int
}

// VQConfig configures TrainVQ.
type VQConfig struct {
	Bits  int // dictionary size = 2^Bits (<= 16)
	Train TrainConfig
}

// TrainVQ learns a single dictionary on train and encodes data.
func TrainVQ(train, data *vec.Matrix, cfg VQConfig) (*VQ, error) {
	if cfg.Bits < 1 || cfg.Bits > 16 {
		return nil, fmt.Errorf("quantizer: VQ bits=%d out of range [1,16]", cfg.Bits)
	}
	if train.Cols != data.Cols {
		return nil, fmt.Errorf("quantizer: train dim %d != data dim %d", train.Cols, data.Cols)
	}
	res, err := kmeans.Train(train, kmeans.Config{
		K:        1 << cfg.Bits,
		Seed:     cfg.Train.Seed,
		MaxIter:  cfg.Train.MaxIter,
		Parallel: cfg.Train.Parallel,
	})
	if err != nil {
		return nil, err
	}
	assign := make([]uint16, data.Rows)
	for i := 0; i < data.Rows; i++ {
		assign[i] = uint16(kmeans.AssignNearest(res.Centroids, data.Row(i)))
	}
	return &VQ{centroids: res.Centroids, assign: assign, n: data.Rows}, nil
}

// Len reports the number of encoded vectors.
func (v *VQ) Len() int { return v.n }

// Search returns the approximate k nearest neighbors: each encoded vector
// is scored by the distance between the query and its codeword (ADC with a
// single subspace).
func (v *VQ) Search(q []float32, k int) ([]vec.Neighbor, error) {
	if len(q) != v.centroids.Cols {
		return nil, fmt.Errorf("quantizer: query dim %d, index dim %d", len(q), v.centroids.Cols)
	}
	lut := make([]float32, v.centroids.Rows)
	for c := range lut {
		lut[c] = vec.SquaredL2(q, v.centroids.Row(c))
	}
	tk := vec.NewTopK(k)
	for i, a := range v.assign {
		tk.Push(i, lut[a])
	}
	return tk.Results(), nil
}
