package metrics

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestSLODefaults(t *testing.T) {
	m := New()
	m.ConfigureSLO(SLO{LatencyTarget: time.Millisecond}, nil)
	cfg := m.SLOConfig()
	if cfg.LatencyObjective != 0.99 || cfg.Window != 4096 || cfg.RecallWindow != 256 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	var nilM *IndexMetrics
	nilM.ConfigureSLO(SLO{}, nil) // must not panic
	if nilM.SLOConfig() != nil || nilM.SLOSnapshot() != nil {
		t.Fatal("nil registry returned SLO state")
	}
	if New().SLOSnapshot() != nil {
		t.Fatal("unconfigured registry returned an SLO snapshot")
	}
}

func TestSLOLatencyBudget(t *testing.T) {
	m := New()
	// Window 100, objective 0.9: 10 violations allowed.
	m.ConfigureSLO(SLO{LatencyTarget: time.Millisecond, LatencyObjective: 0.9, Window: 100}, nil)
	for i := 0; i < 95; i++ {
		m.RecordSearch(SearchRecord{}, 100*time.Microsecond)
	}
	for i := 0; i < 5; i++ {
		m.RecordSearch(SearchRecord{}, 5*time.Millisecond)
	}
	s := m.SLOSnapshot()
	if s.WindowQueries != 100 || s.LatencyViolations != 5 {
		t.Fatalf("window state: %+v", s)
	}
	// allowed = 10, bad = 5 → remaining 0.5; burn = (5/100)/0.1 = 0.5.
	if diff := s.LatencyBudgetRemaining - 0.5; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("budget remaining = %v, want 0.5", s.LatencyBudgetRemaining)
	}
	if diff := s.BurnRate - 0.5; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("burn rate = %v, want 0.5", s.BurnRate)
	}
	if s.LatencyExhausted {
		t.Error("budget not exhausted yet")
	}

	// Slide the window: 100 fast queries push the violations out.
	for i := 0; i < 100; i++ {
		m.RecordSearch(SearchRecord{}, 100*time.Microsecond)
	}
	s = m.SLOSnapshot()
	if s.LatencyViolations != 0 || s.LatencyBudgetRemaining != 1 {
		t.Errorf("sliding window kept old violations: %+v", s)
	}
}

func TestSLORecallBudget(t *testing.T) {
	m := New()
	m.ConfigureSLO(SLO{MinRecall: 0.8, RecallWindow: 10}, nil)
	s := m.SLOSnapshot()
	if s.RecallBudgetRemaining != 1 {
		t.Fatalf("no samples must mean full budget, got %v", s.RecallBudgetRemaining)
	}
	for i := 0; i < 10; i++ {
		m.RecordRecallSample(9, 10) // observed 0.9
	}
	s = m.SLOSnapshot()
	if s.WindowRecall != 0.9 {
		t.Fatalf("window recall = %v, want 0.9", s.WindowRecall)
	}
	// (0.9 - 0.8) / 0.2 = 0.5
	if s.RecallBudgetRemaining != 0.5 {
		t.Errorf("recall budget = %v, want 0.5", s.RecallBudgetRemaining)
	}
	// Ten bad samples slide the good ones out and blow the objective.
	for i := 0; i < 10; i++ {
		m.RecordRecallSample(5, 10)
	}
	s = m.SLOSnapshot()
	if s.WindowRecall != 0.5 || s.RecallBudgetRemaining >= 0 || !s.RecallExhausted {
		t.Errorf("blown recall objective not reflected: %+v", s)
	}
	if s.RecallBudgetRemaining != -1 {
		t.Errorf("budget not clamped to -1: %v", s.RecallBudgetRemaining)
	}
}

// TestSLOBreachEdgeTriggered pins the edge semantics: the callback fires
// exactly once per crossing into exhaustion, re-arms on recovery, and fires
// once again on the next crossing.
func TestSLOBreachEdgeTriggered(t *testing.T) {
	var breaches atomic.Int64
	var lastKind atomic.Value
	m := New()
	// Window 10, objective 0.9 → 1 violation allowed; the 2nd exhausts.
	m.ConfigureSLO(SLO{LatencyTarget: time.Millisecond, LatencyObjective: 0.9, Window: 10},
		func(kind string, remaining, burn float64) {
			breaches.Add(1)
			lastKind.Store(kind)
			if remaining >= 0 {
				t.Errorf("breach with non-negative budget %v", remaining)
			}
		})
	slow, fast := 5*time.Millisecond, 10*time.Microsecond
	m.RecordSearch(SearchRecord{}, slow)
	if breaches.Load() != 0 {
		t.Fatal("breach fired inside the budget")
	}
	m.RecordSearch(SearchRecord{}, slow)
	if breaches.Load() != 1 {
		t.Fatalf("breaches = %d after exhaustion, want 1", breaches.Load())
	}
	// Staying exhausted must not re-fire.
	m.RecordSearch(SearchRecord{}, slow)
	m.RecordSearch(SearchRecord{}, slow)
	if breaches.Load() != 1 {
		t.Fatalf("level-triggered firing: %d breaches", breaches.Load())
	}
	if lastKind.Load().(string) != "latency" {
		t.Fatalf("kind = %v", lastKind.Load())
	}
	// Recover: slide all violations out of the window, then exhaust again.
	for i := 0; i < 10; i++ {
		m.RecordSearch(SearchRecord{}, fast)
	}
	if s := m.SLOSnapshot(); s.LatencyExhausted {
		t.Fatal("latch did not re-arm after recovery")
	}
	m.RecordSearch(SearchRecord{}, slow)
	m.RecordSearch(SearchRecord{}, slow)
	if breaches.Load() != 2 {
		t.Fatalf("second crossing fired %d times total, want 2", breaches.Load())
	}
}

func TestSLORecallBreachEdge(t *testing.T) {
	var breaches atomic.Int64
	m := New()
	m.ConfigureSLO(SLO{MinRecall: 0.9, RecallWindow: 4},
		func(kind string, remaining, burn float64) {
			if kind == "recall" {
				breaches.Add(1)
			}
		})
	m.RecordRecallSample(10, 10)
	m.RecordRecallSample(0, 10) // window observed 0.5 < 0.9 → edge
	m.RecordRecallSample(0, 10) // still exhausted, no re-fire
	if breaches.Load() != 1 {
		t.Fatalf("recall breaches = %d, want 1", breaches.Load())
	}
}

func TestSLOSnapshotInMetricsSnapshot(t *testing.T) {
	m := New()
	if s := m.Snapshot(); s.SLO != nil {
		t.Fatal("unconfigured snapshot carries SLO")
	}
	m.ConfigureSLO(SLO{LatencyTarget: time.Millisecond}, nil)
	m.RecordSearch(SearchRecord{}, 2*time.Millisecond)
	s := m.Snapshot()
	if s.SLO == nil || s.SLO.WindowQueries != 1 || s.SLO.LatencyViolations != 1 {
		t.Fatalf("snapshot SLO block: %+v", s.SLO)
	}
	m.Reset()
	s = m.Snapshot()
	if s.SLO.WindowQueries != 0 || s.SLO.LatencyViolations != 0 || s.SLO.LatencyExhausted {
		t.Fatalf("Reset left SLO state: %+v", s.SLO)
	}
}
