package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// comparedMetric is one row of the -compare delta table. higherIsBetter
// decides which direction of change counts as a regression.
type comparedMetric struct {
	name           string
	baseline, next float64
	format         func(float64) string
	higherIsBetter bool
}

// fmtQPS and fmtNs render metric values for the delta table.
func fmtQPS(v float64) string { return fmt.Sprintf("%.0f", v) }
func fmtNs(v float64) string  { return time.Duration(v).Round(time.Microsecond).String() }
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// runCompare diffs two vaqbench -json summaries and fails (exit 1) when
// any tracked metric regresses by more than thresholdPct percent. Two
// summaries are only comparable when their config fingerprints match
// (same dataset, params and layout); a mismatch exits 2 unless force is
// set, so a perf tracker never silently compares apples to oranges.
func runCompare(baselinePath, nextPath string, thresholdPct float64, force bool) int {
	base, err := loadSummary(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vaqbench: %v\n", err)
		return 2
	}
	next, err := loadSummary(nextPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vaqbench: %v\n", err)
		return 2
	}
	if accuracyName(base.Params.Accuracy) != accuracyName(next.Params.Accuracy) {
		// Not forceable: an exact and a fast run answer queries differently,
		// so their perf deltas are meaningless and a CI gate comparing them
		// would silently wave through a kernel swap.
		fmt.Fprintf(os.Stderr, "vaqbench: accuracy modes differ (%s vs %s): summaries are never comparable\n",
			accuracyName(base.Params.Accuracy), accuracyName(next.Params.Accuracy))
		return 2
	}
	if base.Provenance.ConfigFingerprint != next.Provenance.ConfigFingerprint {
		fmt.Fprintf(os.Stderr, "vaqbench: config fingerprints differ (%s vs %s): summaries are not comparable\n",
			base.Provenance.ConfigFingerprint, next.Provenance.ConfigFingerprint)
		if !force {
			fmt.Fprintln(os.Stderr, "vaqbench: pass -force to compare anyway")
			return 2
		}
	}

	rows := []comparedMetric{
		{"qps", base.Search.QPS, next.Search.QPS, fmtQPS, true},
		{"latency_p50", float64(base.Search.LatencyP50Ns), float64(next.Search.LatencyP50Ns), fmtNs, false},
		{"latency_p95", float64(base.Search.LatencyP95Ns), float64(next.Search.LatencyP95Ns), fmtNs, false},
		{"latency_p99", float64(base.Search.LatencyP99Ns), float64(next.Search.LatencyP99Ns), fmtNs, false},
		{"ti_prune_rate", base.Search.TIPruneRate, next.Search.TIPruneRate, fmtPct, true},
		{"ea_abandon_rate", base.Search.EAAbandonRate, next.Search.EAAbandonRate, fmtPct, true},
	}
	// Answer-quality rows, diffed only when both summaries carry the data
	// (recall needs -recall-sample runs; mse_share needs -report runs) — a
	// QPS win that silently trades recall away must show up here.
	if base.Metrics.RecallSamples > 0 && next.Metrics.RecallSamples > 0 {
		rows = append(rows, comparedMetric{
			"observed_recall", base.Metrics.ObservedRecall(), next.Metrics.ObservedRecall(), fmtPct, true,
		})
	}
	if base.Report != nil && next.Report != nil {
		rows = append(rows, comparedMetric{
			"mse_share", base.Report.MSEShare, next.Report.MSEShare, fmtPct, false,
		})
	}

	fmt.Printf("comparing %s -> %s (threshold %.1f%%)\n", baselinePath, nextPath, thresholdPct)
	fmt.Printf("%-16s %14s %14s %9s\n", "metric", "baseline", "new", "delta")
	regressed := false
	for _, r := range rows {
		deltaPct := 0.0
		if r.baseline != 0 {
			deltaPct = 100 * (r.next - r.baseline) / r.baseline
		}
		mark := ""
		bad := deltaPct < -thresholdPct
		if !r.higherIsBetter {
			bad = deltaPct > thresholdPct
		}
		if bad {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Printf("%-16s %14s %14s %+8.1f%%%s\n",
			r.name, r.format(r.baseline), r.format(r.next), deltaPct, mark)
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "vaqbench: regression beyond %.1f%% threshold\n", thresholdPct)
		return 1
	}
	fmt.Println("no regression beyond threshold")
	return 0
}

// loadSummary reads one vaqbench -json document. Three shapes are
// accepted: a plain benchSummary, a -layout both/all layoutComparison
// (its blocked exact arm is the one compared — the default production
// configuration), and
// pre-provenance summaries, whose fingerprint is synthesized from the
// embedded params with the same scheme provenanceFor stamps today, so old
// committed baselines stay comparable.
func loadSummary(path string) (*benchSummary, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s benchSummary
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Params.Dataset == "" {
		// Not a flat summary — try the -layout both comparison document.
		var cmp layoutComparison
		if err := json.Unmarshal(b, &cmp); err == nil && cmp.Blocked != nil && cmp.Blocked.Params.Dataset != "" {
			fmt.Fprintf(os.Stderr, "vaqbench: %s is a layout-comparison document; comparing its blocked (exact) arm\n", path)
			s = *cmp.Blocked
		}
	}
	if s.Params.Dataset == "" {
		return nil, fmt.Errorf("%s: no benchmark params (not a vaqbench -json summary?)", path)
	}
	if s.Provenance.ConfigFingerprint == "" {
		s.Provenance = provenanceFor(s.Params)
	}
	return &s, nil
}
