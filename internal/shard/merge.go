package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"vaq/internal/vec"
)

// neighborLess is the strict total order shared with the single-index
// kernel's Results(): primary ascending distance, ties broken by
// ascending (global) id. Using the identical comparator is what makes
// S=1 bit-identical to an unsharded index and keeps cross-shard ties
// deterministic regardless of which shard finished first.
func neighborLess(a, b vec.Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// mergeTopK performs the gather half of scatter-gather: a k-way merge of
// per-shard result lists (each already sorted by neighborLess) into the
// global top k. Lists may be shorter than k (small or drained shards),
// empty, or nil; the output length is min(k, total candidates).
//
// S and k are both small, so the simple linear scan over list heads costs
// O(k*S) and beats a heap of heads until S is far larger than any
// realistic shard count.
func mergeTopK(lists [][]vec.Neighbor, k int) []vec.Neighbor {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if k > total {
		k = total
	}
	out := make([]vec.Neighbor, 0, k)
	heads := make([]int, len(lists))
	for len(out) < k {
		best := -1
		for si, l := range lists {
			h := heads[si]
			if h >= len(l) {
				continue
			}
			if best == -1 || neighborLess(l[h], lists[best][heads[best]]) {
				best = si
			}
		}
		if best == -1 {
			break
		}
		out = append(out, lists[best][heads[best]])
		heads[best]++
	}
	return out
}

// fingerprintSharded derives the S>1 config fingerprint from the shared
// single-shard fingerprint. Same shape as the core fingerprint: first 8
// bytes of a sha256, hex.
func fingerprintSharded(base string, shards int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s/shards=%d", base, shards)))
	return hex.EncodeToString(sum[:8])
}
