package core

import (
	"bytes"
	"log/slog"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"vaq/internal/diag"
)

// checkReportConsistency asserts the invariants every IndexReport must
// satisfy against the index it came from, whatever the config.
func checkReportConsistency(t *testing.T, ix *Index, rep *diag.Report) {
	t.Helper()
	if rep.N != ix.Len() {
		t.Errorf("report N %d, index Len %d", rep.N, ix.Len())
	}
	if len(rep.Subspaces) != len(ix.Bits()) {
		t.Fatalf("report has %d subspaces, index %d", len(rep.Subspaces), len(ix.Bits()))
	}
	deadTotal := 0
	for _, sr := range rep.Subspaces {
		deadTotal += sr.DeadCodewords
		if sr.Entries != 1<<sr.Bits {
			t.Errorf("subspace %d: %d entries for %d bits", sr.Index, sr.Entries, sr.Bits)
		}
		histSum := 0
		for _, c := range sr.OccupancyHist {
			histSum += c
		}
		if histSum != sr.Entries {
			t.Errorf("subspace %d: occupancy histogram sums to %d, want %d entries",
				sr.Index, histSum, sr.Entries)
		}
		if sr.OccupancyHist[0] != sr.DeadCodewords {
			t.Errorf("subspace %d: dead bucket %d != dead codewords %d",
				sr.Index, sr.OccupancyHist[0], sr.DeadCodewords)
		}
		// Live codewords account for all N codes: at most Entries-dead
		// distinct codewords share them, so the most popular one covers at
		// least 1/(Entries-dead) of the codes.
		live := sr.Entries - sr.DeadCodewords
		if rep.N > 0 && live > 0 && sr.MaxCodewordShare < 1/float64(live)-1e-9 {
			t.Errorf("subspace %d: max codeword share %g impossible with %d live codewords",
				sr.Index, sr.MaxCodewordShare, live)
		}
		if !rep.Partial && sr.MSEShare > 1+1e-6 {
			t.Errorf("subspace %d: MSE share %g exceeds 1 (losing more than the subspace's energy)",
				sr.Index, sr.MSEShare)
		}
	}
	if deadTotal != rep.DeadCodewordsTotal {
		t.Errorf("dead codewords total %d != per-subspace sum %d", rep.DeadCodewordsTotal, deadTotal)
	}
	if rep.TI.Clusters != ix.TIClusterCount() {
		t.Errorf("report TI clusters %d, index %d", rep.TI.Clusters, ix.TIClusterCount())
	}
	if rep.TI.Clusters > 0 {
		if got := rep.TI.MeanSize * float64(rep.TI.Clusters); got < float64(rep.N)-1e-6 || got > float64(rep.N)+1e-6 {
			t.Errorf("TI cluster sizes account for %.2f vectors, want %d", got, rep.N)
		}
	}
}

// TestDiagnoseMSEShareMonotonicInBits pins the property the variance-aware
// allocator exists to produce: on skewed SALD-style data, subspaces given
// more bits lose a smaller fraction of their energy to quantization. The
// check groups subspaces by allocated bits and requires the group-mean MSE
// share to be non-increasing in bits.
func TestDiagnoseMSEShareMonotonicInBits(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := skewedData(rng, 2000, 32, 1.1)
	ix, err := Build(x, x, Config{NumSubspaces: 8, Budget: 56, Seed: 31, TIClusters: 20})
	if err != nil {
		t.Fatal(err)
	}
	rep := ix.Diagnose()
	if rep.Partial {
		t.Fatal("fresh build reported Partial")
	}
	checkReportConsistency(t, ix, rep)
	byBits := map[int][]float64{}
	for _, sr := range rep.Subspaces {
		byBits[sr.Bits] = append(byBits[sr.Bits], sr.MSEShare)
	}
	bits := make([]int, 0, len(byBits))
	for b := range byBits {
		bits = append(bits, b)
	}
	sort.Ints(bits)
	if len(bits) < 3 {
		t.Fatalf("allocation produced only %d distinct bit levels %v — not a meaningful monotonicity check", len(bits), bits)
	}
	prev := -1.0
	for i := len(bits) - 1; i >= 0; i-- {
		var mean float64
		for _, s := range byBits[bits[i]] {
			mean += s
		}
		mean /= float64(len(byBits[bits[i]]))
		if mean < prev-1e-9 {
			t.Errorf("mean MSE share %.4f at %d bits < %.4f at %d bits — more bits should not lose more energy",
				prev, bits[i+1], mean, bits[i])
		}
		prev = mean
	}
}

// TestDiagnoseAfterReadPartial pins the serialization contract: the
// distortion baseline is runtime-only, so an index loaded from disk
// degrades to an explicitly Partial report (utilization and balance still
// computed) instead of reporting zeroed MSE fields as if they were real.
func TestDiagnoseAfterReadPartial(t *testing.T) {
	ix, _ := observeTestIndex(t, Config{})
	before := ix.Diagnose()
	if before.Partial || before.MSESource == "" {
		t.Fatalf("fresh build: Partial=%v MSESource=%q, want a sourced distortion block",
			before.Partial, before.MSESource)
	}
	if before.Drift == nil {
		t.Fatal("fresh build: no drift block despite a live baseline")
	}

	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	after := loaded.Diagnose()
	if !after.Partial {
		t.Fatal("loaded index: report not Partial despite having no retained vectors and no baseline")
	}
	if after.MSESource != "" {
		t.Fatalf("loaded index: Partial report claims MSE source %q", after.MSESource)
	}
	if after.TotalMSE != 0 || after.MSEShare != 0 {
		t.Fatalf("loaded index: Partial report carries distortion totals (MSE %g, share %g)",
			after.TotalMSE, after.MSEShare)
	}
	if after.Drift != nil {
		t.Fatal("loaded index: drift block present without a baseline to compare against")
	}
	checkReportConsistency(t, loaded, after)
	// Utilization and balance derive from serialized state, so they round-trip.
	if after.DeadCodewordsTotal != before.DeadCodewordsTotal {
		t.Errorf("dead codewords changed across serialization: %d -> %d",
			before.DeadCodewordsTotal, after.DeadCodewordsTotal)
	}
	if after.TI != before.TI {
		t.Errorf("TI balance changed across serialization: %+v -> %+v", before.TI, after.TI)
	}
}

// TestDiagnoseSingleClusterExhaustive covers the degenerate TIClusters=1
// store (every query scans everything): the balance block must describe
// one full cluster, not divide by zero or report imbalance.
func TestDiagnoseSingleClusterExhaustive(t *testing.T) {
	ix, _ := observeTestIndex(t, Config{NumSubspaces: 8, Budget: 48, Seed: 907, TIClusters: 1})
	rep := ix.Diagnose()
	checkReportConsistency(t, ix, rep)
	ti := rep.TI
	if ti.Clusters != 1 || ti.MinSize != ix.Len() || ti.MaxSize != ix.Len() {
		t.Fatalf("single-cluster balance: %+v, want one cluster of %d", ti, ix.Len())
	}
	if ti.Gini != 0 || ti.ImbalanceRatio != 1 || ti.EmptyClusters != 0 {
		t.Fatalf("single-cluster balance not degenerate-clean: %+v", ti)
	}
}

// TestDiagnoseWideDictionaries covers dictionaries past the uint8 boundary
// (>256 entries, uint16 codes): utilization accounting must track every
// entry of the wide books, dead ones included.
func TestDiagnoseWideDictionaries(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	x := skewedData(rng, 1200, 16, 1.0)
	ix, err := Build(x, x, Config{NumSubspaces: 2, Budget: 20, Seed: 55, TIClusters: 10})
	if err != nil {
		t.Fatal(err)
	}
	rep := ix.Diagnose()
	checkReportConsistency(t, ix, rep)
	wide := 0
	for _, sr := range rep.Subspaces {
		if sr.Entries > 256 {
			wide++
			// 1200 vectors cannot touch 1024+ entries; the gap must be
			// accounted as dead, not dropped.
			if min := sr.Entries - ix.Len(); sr.DeadCodewords < min {
				t.Errorf("subspace %d: %d dead codewords, but %d entries can cover at most %d vectors",
					sr.Index, sr.DeadCodewords, sr.Entries, ix.Len())
			}
		}
	}
	if wide == 0 {
		t.Fatalf("allocation %v produced no dictionary wider than 256 entries — raise the budget", ix.Bits())
	}
}

// TestDiagnoseAfterAddConsistency mutates the index with Add and checks the
// report tracks the new state: N grows, utilization still accounts for
// every dictionary entry, the fresh distortion stays a sane energy
// fraction, and the drift block reflects the fold.
func TestDiagnoseAfterAddConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(907))
	x := skewedData(rng, 1600, 24, 1.2)
	// RecallSampleRate retains the projected dataset, so the post-Add
	// report recomputes distortion over ALL vectors, added ones included.
	ix, err := Build(x, x, Config{NumSubspaces: 8, Budget: 48, Seed: 907, TIClusters: 30, RecallSampleRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	extra := skewedData(rng, 400, 24, 1.2)
	if _, err := ix.Add(extra); err != nil {
		t.Fatal(err)
	}
	rep := ix.Diagnose()
	if rep.N != 2000 {
		t.Fatalf("post-Add N %d, want 2000", rep.N)
	}
	if rep.Partial || rep.MSESource != diag.MSEFresh {
		t.Fatalf("retained index post-Add: Partial=%v MSESource=%q, want fresh",
			rep.Partial, rep.MSESource)
	}
	checkReportConsistency(t, ix, rep)
	if rep.MSEShare <= 0 || rep.MSEShare > 1 {
		t.Fatalf("post-Add MSE share %g outside (0,1]", rep.MSEShare)
	}
	if rep.Drift == nil {
		t.Fatal("post-Add report has no drift block")
	}
	// Same-distribution vectors must not register as heavy drift.
	if rep.Drift.Ratio < 0.5 || rep.Drift.Ratio > 2 {
		t.Fatalf("same-distribution Add drifted to ratio %g", rep.Drift.Ratio)
	}
	snap := ix.Metrics().Snapshot()
	if snap.DriftRatio != rep.Drift.Ratio {
		t.Errorf("gauge drift ratio %g != report %g", snap.DriftRatio, rep.Drift.Ratio)
	}
	if len(snap.SubspaceMSE) != len(rep.Drift.SubspaceMSEEWMA) {
		t.Fatalf("gauge has %d subspace MSE entries, report %d",
			len(snap.SubspaceMSE), len(rep.Drift.SubspaceMSEEWMA))
	}
}

// TestDriftAlertOnDistributionShift feeds the index vectors scaled far
// outside the training distribution and checks the whole alert path: the
// ratio crosses the configured threshold, the vaq.drift event is logged
// once (not per batch), and the alert gauge latches on.
func TestDriftAlertOnDistributionShift(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	rng := rand.New(rand.NewSource(907))
	x := skewedData(rng, 1600, 24, 1.2)
	ix, err := Build(x, x, Config{
		NumSubspaces: 8, Budget: 48, Seed: 907, TIClusters: 30,
		DriftAlertRatio: 1.5, Logger: logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	shifted := skewedData(rng, 400, 24, 1.2)
	for i := range shifted.Data {
		shifted.Data[i] = shifted.Data[i]*10 + 5
	}
	for batch := 0; batch < 8; batch++ {
		if _, err := ix.Add(shifted); err != nil {
			t.Fatal(err)
		}
	}
	rep := ix.Diagnose()
	if rep.Drift == nil || !rep.Drift.Alert {
		t.Fatalf("no drift alert after out-of-distribution Adds: %+v", rep.Drift)
	}
	if rep.Drift.Ratio <= 1.5 {
		t.Fatalf("alert set but ratio %g below threshold", rep.Drift.Ratio)
	}
	snap := ix.Metrics().Snapshot()
	if !snap.DriftAlert {
		t.Error("drift alert gauge not set")
	}
	if got := strings.Count(buf.String(), "vaq.drift"); got != 1 {
		t.Errorf("vaq.drift logged %d times, want exactly once (edge-triggered)\n%s", got, buf.String())
	}
}

// TestConcurrentDiagnoseSearchAdd drives Diagnose, Search and Add at the
// same time — the race detector (CI's race job) proves the RWMutex
// covers every touch point of the mutable state.
func TestConcurrentDiagnoseSearchAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(907))
	x := skewedData(rng, 1600, 24, 1.2)
	ix, err := Build(x, x, Config{NumSubspaces: 8, Budget: 48, Seed: 907, TIClusters: 30, RecallSampleRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 20
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		batchRng := rand.New(rand.NewSource(11))
		for i := 0; i < rounds; i++ {
			if _, err := ix.Add(skewedData(batchRng, 20, 24, 1.2)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		s := ix.NewSearcher()
		for i := 0; i < rounds*5; i++ {
			if _, err := s.Search(x.Row(i%x.Rows), 10, SearchOptions{Mode: ModeTIEA, VisitFrac: 0.3}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			rep := ix.Diagnose()
			if rep.N < 1600 {
				t.Errorf("Diagnose saw N %d below the initial 1600", rep.N)
				return
			}
		}
	}()
	wg.Wait()
	checkReportConsistency(t, ix, ix.Diagnose())
}
