// Command vaqbench regenerates the tables and figures of the VAQ paper,
// and doubles as the cross-PR performance tracker.
//
// Usage:
//
//	vaqbench -list
//	vaqbench -exp fig1            # one experiment at the default scale
//	vaqbench -exp all -scale quick
//	vaqbench -exp tab2 -n 50000 -gallery 128
//	vaqbench -json BENCH_sald.json -n 20000 -nq 200   # perf summary
//	vaqbench -json BENCH_pr2.json -layout both        # scan-layout A/B
//	vaqbench -json BENCH_pr6.json -layout all         # + integer-kernel arm
//	vaqbench -json BENCH_pr7.json -layout all -shards 4,8  # + sharded arms
//	vaqbench -json BENCH_sald.json -report            # + IndexReport quality block
//	vaqbench -json - -metrics-addr localhost:6060     # live expvar/pprof
//	vaqbench -compare BENCH_old.json BENCH_new.json -threshold 5
//
// Experiment output is plain text: the same rows/series each figure
// plots, so shapes can be compared against the paper directly (see
// EXPERIMENTS.md). The -json mode instead builds one index, drives the
// query workload through a Searcher pool, and emits a machine-readable
// summary (build-phase timings, QPS, p50/p95/p99 latency, TI/EA prune
// rates) for tracking the perf trajectory across PRs; -layout both runs
// the workload once per scan layout and records the blocked-over-rowmajor
// throughput ratio, and -layout all adds a third arm measuring the integer
// fast-scan kernel (blocked layout, -accuracy fast) against blocked exact;
// -report additionally embeds the index-quality IndexReport (distortion,
// utilization, TI balance) in the summary. The -compare mode diffs two
// -json summaries metric by metric and exits 1 when QPS drops or a latency
// percentile rises beyond -threshold percent (exit 2 when the summaries'
// config fingerprints or accuracy modes do not match — the latter is never
// forceable, exact and fast runs answer differently). With
// -metrics-addr, either mode serves live metrics on /debug/vars and
// profiles on /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"vaq/internal/experiments"
	"vaq/internal/metrics"
)

// parseShardCounts parses the -shards comma list ("4,8") into shard
// counts. Empty means no sharded arms.
func parseShardCounts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -shards value %q (want positive integers, e.g. '4,8')", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		exp         = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list        = flag.Bool("list", false, "list available experiments")
		scale       = flag.String("scale", "default", "preset scale: quick or default")
		n           = flag.Int("n", 0, "override base-vector count for large datasets")
		nq          = flag.Int("nq", 0, "override query count")
		gallery     = flag.Int("gallery", 0, "override gallery dataset count")
		seed        = flag.Int64("seed", 0, "override data seed")
		jsonOut     = flag.String("json", "", "run the search benchmark and write a JSON summary to this path ('-' for stdout)")
		benchData   = flag.String("dataset", "SALD", "dataset for -json (SIFT, DEEP, SEISMIC, SALD, ASTRO)")
		subspaces   = flag.Int("subspaces", 16, "subspaces for -json")
		budget      = flag.Int("budget", 128, "bit budget for -json")
		maxBits     = flag.Int("maxbits", 0, "max bits per subspace for -json (0 = default; 8 keeps every dictionary uint8-addressable)")
		k           = flag.Int("k", 100, "neighbors per query for -json")
		visit       = flag.Float64("visit", 0.25, "TI visit fraction for -json")
		workers     = flag.Int("workers", 0, "query workers for -json (0 = GOMAXPROCS)")
		passes      = flag.Int("passes", 3, "timed passes over the query set for -json")
		layout      = flag.String("layout", "blocked", "scan layout for -json: blocked, rowmajor, both (exact A/B), int (blocked + integer kernel), or all (three-arm A/B)")
		shards      = flag.String("shards", "", "comma-separated shard counts for extra scatter-gather arms in -json -layout all (e.g. '4,8'; each runs both accuracy modes and records recall@k vs brute force)")
		accuracy    = flag.String("accuracy", "", "scan arithmetic for -json: exact (default) or fast (integer kernel; single-layout runs only)")
		report      = flag.Bool("report", false, "embed the index-quality IndexReport in the -json summary")
		recallRate  = flag.Float64("recall-sample", 0, "fraction of -json queries shadow-checked against an exact scan (populates observed recall; 0 disables)")
		compare     = flag.Bool("compare", false, "diff two -json summaries (args: baseline.json new.json); exit 1 on regression")
		threshold   = flag.Float64("threshold", 5, "regression threshold for -compare, in percent")
		force       = flag.Bool("force", false, "let -compare proceed despite mismatched config fingerprints")
		metricsAddr = flag.String("metrics-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address")
		flightRec   = flag.Bool("flight-recorder", false, "arm an (idle) flight recorder on every -json arm, measuring the armed-but-quiet overhead; runtime-only, so the config fingerprint is unchanged")
		historyOn   = flag.Bool("history", false, "arm a metrics history collector on every -json arm, measuring the collector-armed overhead; runtime-only, so the config fingerprint is unchanged")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "vaqbench: -compare needs exactly two summary files: baseline.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold, *force))
	}

	if *metricsAddr != "" {
		srv, err := metrics.ServeDebug(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vaqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "vaqbench: serving metrics on http://%s/debug/vars\n", srv.Addr)
	}
	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}
	if *jsonOut != "" {
		p := benchParams{
			Dataset: *benchData, N: *n, NQ: *nq, Seed: *seed,
			Subspaces: *subspaces, Budget: *budget, MaxBits: *maxBits, K: *k,
			VisitFrac: *visit, Workers: *workers, Passes: *passes,
			Layout: *layout, Accuracy: *accuracy, RecallRate: *recallRate,
		}
		if p.N <= 0 {
			p.N = 20000
		}
		if p.NQ <= 0 {
			p.NQ = 200
		}
		if p.Seed == 0 {
			p.Seed = 7
		}
		shardCounts, err := parseShardCounts(*shards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vaqbench: %v\n", err)
			os.Exit(2)
		}
		armFlightRecorder = *flightRec
		armHistory = *historyOn
		if err := runJSONBench(*jsonOut, p, *report, shardCounts); err != nil {
			fmt.Fprintf(os.Stderr, "vaqbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "vaqbench: -exp is required (try -list)")
		os.Exit(2)
	}
	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.QuickScale
	case "default":
		s = experiments.DefaultScale
	default:
		fmt.Fprintf(os.Stderr, "vaqbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *n > 0 {
		s.N = *n
	}
	if *nq > 0 {
		s.NQ = *nq
	}
	if *gallery > 0 {
		s.GalleryCount = *gallery
	}
	if *seed != 0 {
		s.Seed = *seed
	}

	run := func(e experiments.Experiment) {
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		fmt.Printf("scale: n=%d nq=%d gallery=%d seed=%d\n\n", s.N, s.NQ, s.GalleryCount, s.Seed)
		start := time.Now()
		if err := e.Run(os.Stdout, s); err != nil {
			fmt.Fprintf(os.Stderr, "vaqbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, e := range experiments.Registry() {
			run(e)
		}
		return
	}
	e, ok := experiments.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "vaqbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
