// Package pqfs reimplements the PQ Fast Scan baseline (André et al.,
// VLDB'15; paper §II-C) in a hardware-oblivious way: standard 8-bit PQ
// dictionaries, but the scan first accumulates a uint8-quantized lookup
// table whose entries are FLOOR-quantized so the integer sum is a lower
// bound on the true ADC distance; only candidates whose lower bound beats
// the current k-th best distance are re-checked against the float tables.
//
// This preserves PQ's accuracy exactly (the filter only discards codes
// that provably cannot enter the top-k) while scanning small integer
// tables — matching the paper's observation that PQFS keeps PQ's recall
// but is slower than Bolt (Figures 1 and 8).
package pqfs

import (
	"fmt"

	"vaq/internal/quantizer"
	"vaq/internal/vec"
)

// Index is a built PQ Fast Scan index.
type Index struct {
	cb    *quantizer.Codebooks
	codes *quantizer.Codes
	n     int
	m     int
	dim   int
	books int // entries per dictionary (256)
}

// Config configures Build.
type Config struct {
	// M is the subspace count.
	M int
	// BitsPerSubspace is the dictionary size exponent (default 8, the PQ
	// literature standard; the paper's Figure 1 configuration uses 4).
	BitsPerSubspace int
	Train           quantizer.TrainConfig
}

// Build trains the PQ dictionaries and stores codes.
func Build(train, data *vec.Matrix, cfg Config) (*Index, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("pqfs: M must be >= 1, got %d", cfg.M)
	}
	if cfg.BitsPerSubspace == 0 {
		cfg.BitsPerSubspace = 8
	}
	if cfg.BitsPerSubspace < 1 || cfg.BitsPerSubspace > 12 {
		return nil, fmt.Errorf("pqfs: BitsPerSubspace=%d out of range [1,12]", cfg.BitsPerSubspace)
	}
	if train.Cols != data.Cols {
		return nil, fmt.Errorf("pqfs: train dim %d != data dim %d", train.Cols, data.Cols)
	}
	sub, err := quantizer.UniformSubspaces(train.Cols, cfg.M)
	if err != nil {
		return nil, err
	}
	bits := make([]int, cfg.M)
	for i := range bits {
		bits[i] = cfg.BitsPerSubspace
	}
	cb, err := quantizer.TrainCodebooks(train, sub, bits, cfg.Train)
	if err != nil {
		return nil, err
	}
	codes, err := cb.Encode(data, true)
	if err != nil {
		return nil, err
	}
	return &Index{cb: cb, codes: codes, n: data.Rows, m: cfg.M, dim: train.Cols,
		books: 1 << cfg.BitsPerSubspace}, nil
}

// Len reports the number of encoded vectors.
func (ix *Index) Len() int { return ix.n }

// Dim reports the expected query dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Search returns the approximate k nearest neighbors with exactly PQ's
// accuracy (squared distances).
func (ix *Index) Search(q []float32, k int) ([]vec.Neighbor, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("pqfs: query dim %d, index dim %d", len(q), ix.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("pqfs: k must be >= 1, got %d", k)
	}
	m := ix.m
	lut := ix.cb.BuildLUT(q)
	// Quantize with FLOOR so integer sums lower-bound the float distance.
	qtable := make([]uint8, m*ix.books)
	mins := make([]float32, m)
	var offset float32
	var maxRange float32
	for s := 0; s < m; s++ {
		t := lut.Table(s)
		mn, mx := t[0], t[0]
		for _, v := range t[1:] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		mins[s] = mn
		offset += mn
		if mx-mn > maxRange {
			maxRange = mx - mn
		}
	}
	if maxRange == 0 {
		maxRange = 1
	}
	step := maxRange / 255
	inv := 1 / step
	for s := 0; s < m; s++ {
		t := lut.Table(s)
		for c, v := range t {
			qv := (v - mins[s]) * inv
			if qv > 255 {
				qv = 255
			}
			qtable[s*ix.books+c] = uint8(qv) // truncation = floor
		}
	}
	tk := vec.NewTopK(k)
	codes := ix.codes
	for i := 0; i < ix.n; i++ {
		row := codes.Data[i*m : (i+1)*m]
		// Integer first pass: lower bound on the scaled distance.
		var acc uint32
		for s := 0; s < m; s++ {
			acc += uint32(qtable[s*ix.books+int(row[s])])
		}
		lower := float32(acc)*step + offset
		if tk.Full() && lower >= tk.Threshold() {
			continue
		}
		// Candidate: exact float re-check.
		var d float32
		for s := 0; s < m; s++ {
			d += lut.Dist[lut.Offsets[s]+int(row[s])]
		}
		tk.Push(i, d)
	}
	return tk.Results(), nil
}
