package workload

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// RunFunc re-executes one captured query against a target index and returns
// the fresh result list. core.Index.ReplayRunner adapts a Searcher to this
// signature; keeping it a function type keeps this package dependency-free.
type RunFunc func(*Record) (ids []int32, dists []float32, err error)

// Thresholds gate a replay. Zero values disable each gate, so the zero
// Thresholds never fails a replay.
type Thresholds struct {
	// MinOverlap is the minimum acceptable MEAN overlap@k fraction in
	// [0, 1] (e.g. 1.0 demands identical result sets on every query).
	MinOverlap float64
	// MaxDistDrift is the maximum acceptable per-query relative distance
	// drift over IDs present in both result lists (negative disables; 0 is
	// an active gate demanding bit-equal distances).
	MaxDistDrift float64
	// DistDriftSet marks MaxDistDrift as an active gate even at 0.
	DistDriftSet bool
	// MaxLatencyFactor is the maximum acceptable replay-p99 over
	// recorded-p99 ratio (<= 0 disables). Only meaningful when replaying
	// on hardware comparable to the capture host.
	MaxLatencyFactor float64
}

// Options tune a replay run.
type Options struct {
	// Paced reproduces the recorded arrival spacing (sleep until each
	// record's capture offset). Off = max speed, back to back.
	Paced bool
	// Thresholds gate the run; violations land in Report.Violations.
	Thresholds Thresholds
}

// QueryDiff is the per-query comparison of a replayed answer against the
// recorded ground truth.
type QueryDiff struct {
	Index     int           // record index in the log
	Overlap   float64       // |recorded ∩ replayed| / |recorded|, 1.0 when both empty
	DistDrift float64       // max relative |Δdist| over shared IDs
	Recorded  time.Duration // recorded latency
	Replayed  time.Duration // replay latency
	Err       error         // non-nil when the replay call itself failed
}

// Report aggregates a replay run.
type Report struct {
	Queries                  int     // records replayed
	Errors                   int     // records whose replay call errored
	MeanOverlap              float64 // mean per-query overlap@k
	WorstOverlap             float64 // minimum per-query overlap@k
	WorstQuery               int     // record index of the worst overlap (-1 if none)
	ExactMatches             int     // queries whose ID lists matched exactly, in order
	MaxDistDrift             float64 // max per-query relative distance drift
	MeanDistDrift            float64
	RecordedP50, RecordedP99 time.Duration
	ReplayP50, ReplayP99     time.Duration
	// LatencyFactor is ReplayP99 / RecordedP99 (0 when either is unknown).
	LatencyFactor float64
	// Violations lists every threshold the run crossed; empty = pass.
	Violations []string
}

// Passed reports whether the run satisfied every configured threshold.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

// Replay re-runs every record of the log through run, diffing each answer
// against the recorded ground truth, and returns the aggregate report plus
// the per-query diffs (same order as the log). The error return covers only
// malformed inputs; threshold violations are reported, not returned.
func Replay(l *Log, run RunFunc, opt Options) (*Report, []QueryDiff, error) {
	if l == nil || run == nil {
		return nil, nil, fmt.Errorf("workload: nil log or run function")
	}
	diffs := make([]QueryDiff, 0, len(l.Records))
	rep := &Report{Queries: len(l.Records), WorstOverlap: 1, WorstQuery: -1}
	start := time.Now()
	var recLat, repLat []time.Duration
	var overlapSum, driftSum float64
	for i := range l.Records {
		r := &l.Records[i]
		if opt.Paced {
			if wait := time.Duration(r.OffsetNs) - time.Since(start); wait > 0 {
				time.Sleep(wait)
			}
		}
		q0 := time.Now()
		ids, dists, err := run(r)
		lat := time.Since(q0)
		d := QueryDiff{
			Index:    i,
			Recorded: time.Duration(r.LatencyNs),
			Replayed: lat,
			Err:      err,
		}
		if err != nil {
			rep.Errors++
			d.Overlap = 0
		} else {
			d.Overlap = overlap(r.IDs, ids)
			d.DistDrift = distDrift(r.IDs, r.Dists, ids, dists)
			if exactMatch(r.IDs, ids) {
				rep.ExactMatches++
			}
			recLat = append(recLat, d.Recorded)
			repLat = append(repLat, lat)
		}
		overlapSum += d.Overlap
		driftSum += d.DistDrift
		if d.DistDrift > rep.MaxDistDrift {
			rep.MaxDistDrift = d.DistDrift
		}
		if d.Overlap < rep.WorstOverlap {
			rep.WorstOverlap = d.Overlap
			rep.WorstQuery = i
		}
		diffs = append(diffs, d)
	}
	if rep.Queries > 0 {
		rep.MeanOverlap = overlapSum / float64(rep.Queries)
		rep.MeanDistDrift = driftSum / float64(rep.Queries)
	} else {
		rep.MeanOverlap = 1
		rep.WorstOverlap = 1
	}
	rep.RecordedP50 = percentile(recLat, 0.50)
	rep.RecordedP99 = percentile(recLat, 0.99)
	rep.ReplayP50 = percentile(repLat, 0.50)
	rep.ReplayP99 = percentile(repLat, 0.99)
	if rep.RecordedP99 > 0 && rep.ReplayP99 > 0 {
		rep.LatencyFactor = float64(rep.ReplayP99) / float64(rep.RecordedP99)
	}
	rep.Violations = opt.Thresholds.check(rep)
	return rep, diffs, nil
}

func (t Thresholds) check(rep *Report) []string {
	var v []string
	if rep.Errors > 0 {
		v = append(v, fmt.Sprintf("%d of %d replayed queries errored", rep.Errors, rep.Queries))
	}
	if t.MinOverlap > 0 && rep.MeanOverlap < t.MinOverlap {
		v = append(v, fmt.Sprintf("mean overlap@k %.4f below threshold %.4f (worst %.4f at query %d)",
			rep.MeanOverlap, t.MinOverlap, rep.WorstOverlap, rep.WorstQuery))
	}
	if (t.DistDriftSet || t.MaxDistDrift > 0) && rep.MaxDistDrift > t.MaxDistDrift {
		v = append(v, fmt.Sprintf("max distance drift %.6g above threshold %.6g", rep.MaxDistDrift, t.MaxDistDrift))
	}
	if t.MaxLatencyFactor > 0 && rep.LatencyFactor > t.MaxLatencyFactor {
		v = append(v, fmt.Sprintf("replay p99 %.2fx recorded p99, above threshold %.2fx", rep.LatencyFactor, t.MaxLatencyFactor))
	}
	return v
}

// overlap is |recorded ∩ replayed| / |recorded| (set semantics; order is
// judged by ExactMatches instead). Both empty → 1.
func overlap(recorded, replayed []int32) float64 {
	if len(recorded) == 0 {
		return 1
	}
	set := make(map[int32]struct{}, len(recorded))
	for _, id := range recorded {
		set[id] = struct{}{}
	}
	hits := 0
	for _, id := range replayed {
		if _, ok := set[id]; ok {
			hits++
			delete(set, id) // duplicates count once
		}
	}
	return float64(hits) / float64(len(recorded))
}

// distDrift is the maximum relative distance change over IDs present in
// both result lists. IDs only one side returned contribute nothing here —
// the overlap metric already charges for them.
func distDrift(recIDs []int32, recD []float32, repIDs []int32, repD []float32) float64 {
	old := make(map[int32]float32, len(recIDs))
	for i, id := range recIDs {
		old[id] = recD[i]
	}
	var worst float64
	for i, id := range repIDs {
		od, ok := old[id]
		if !ok {
			continue
		}
		diff := math.Abs(float64(repD[i]) - float64(od))
		base := math.Abs(float64(od))
		if base < 1e-12 {
			if diff > 0 {
				worst = math.Max(worst, diff) // absolute near zero
			}
			continue
		}
		worst = math.Max(worst, diff/base)
	}
	return worst
}

func exactMatch(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// percentile is the nearest-rank percentile of the given durations (0 when
// empty). Sorts a copy.
func percentile(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
