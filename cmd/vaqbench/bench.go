package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"vaq/internal/bundle"
	"vaq/internal/core"
	"vaq/internal/dataset"
	"vaq/internal/diag"
	"vaq/internal/eval"
	"vaq/internal/history"
	"vaq/internal/metrics"
	"vaq/internal/shard"
	"vaq/internal/vec"
)

// benchParams configures the machine-readable search benchmark
// (vaqbench -json).
type benchParams struct {
	Dataset   string  `json:"dataset"`
	N         int     `json:"n"`
	NQ        int     `json:"nq"`
	Seed      int64   `json:"seed"`
	Subspaces int     `json:"subspaces"`
	Budget    int     `json:"budget"`
	MaxBits   int     `json:"max_bits,omitempty"`
	K         int     `json:"k"`
	VisitFrac float64 `json:"visit_frac"`
	Workers   int     `json:"workers"`
	Passes    int     `json:"passes"`
	Layout    string  `json:"layout"` // "blocked", "rowmajor", "both", "int", or "all"
	// Accuracy is the scan arithmetic: "" or "exact" for the float kernels,
	// "fast" for the integer fast-scan kernel. omitempty keeps every
	// exact-mode fingerprint identical to pre-int-kernel summaries.
	Accuracy string `json:"accuracy,omitempty"`
	// RecallRate enables the online recall estimator during the timed
	// passes, so the summary's ObservedRecall is populated and -compare can
	// diff answer quality. omitempty keeps the config fingerprint of
	// recall-free runs identical to older summaries.
	RecallRate float64 `json:"recall_sample,omitempty"`
	// Shards marks a sharded scatter-gather arm (-shards): the dataset is
	// partitioned across this many indexes sharing one trained model.
	// omitempty keeps unsharded fingerprints identical to older summaries.
	Shards int `json:"shards,omitempty"`
}

// parseLayout maps the -layout flag value to a core.ScanLayout.
func parseLayout(name string) (core.ScanLayout, error) {
	switch name {
	case "", "blocked":
		return core.LayoutBlocked, nil
	case "rowmajor":
		return core.LayoutRowMajor, nil
	}
	return 0, fmt.Errorf("unknown layout %q (blocked, rowmajor, both, int or all)", name)
}

// parseAccuracy maps the accuracy param to a core.AccuracyMode.
func parseAccuracy(name string) (core.AccuracyMode, error) {
	switch name {
	case "", "exact":
		return core.AccuracyExact, nil
	case "fast":
		return core.AccuracyFast, nil
	}
	return 0, fmt.Errorf("unknown accuracy %q (exact or fast)", name)
}

// accuracyName normalizes a params accuracy string for comparison ("" and
// "exact" are the same mode).
func accuracyName(a string) string {
	if a == "" {
		return "exact"
	}
	return a
}

// benchProvenance records where a summary came from, so numbers from
// different machines, toolchains or configs are never compared as equals
// (the schema is documented in DESIGN.md §7).
type benchProvenance struct {
	// SchemaVersion is bumped whenever the summary document's shape
	// changes incompatibly.
	SchemaVersion int `json:"schema_version"`
	// GoVersion/GOOS/GOARCH identify the toolchain and platform.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GOMAXPROCS and NumCPU pin the parallelism the run had available.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// ConfigFingerprint is a short sha256 of the canonical params JSON:
	// two summaries are comparable iff their fingerprints match.
	ConfigFingerprint string `json:"config_fingerprint"`
	// Layout is the scan layout this run measured.
	Layout string `json:"layout"`
	// Accuracy is the scan arithmetic this run measured ("" = exact).
	Accuracy string `json:"accuracy,omitempty"`
	// SearchWorkers is the resolved worker-pool width this arm actually
	// ran with (the -workers flag with 0 resolved to GOMAXPROCS; sharded
	// arms run one outer stream and scatter internally). Recorded here —
	// not in params — so the config fingerprint no longer bakes in the
	// machine's GOMAXPROCS and stays comparable across machines.
	SearchWorkers int `json:"search_workers,omitempty"`
	// Shards is the shard count of a sharded arm (0 = unsharded).
	Shards int `json:"shards,omitempty"`
	// Caveats flag conditions that make this arm's numbers
	// non-representative — e.g. a sharded arm measured with one CPU, where
	// the scatter serializes and QPS ratios vs the unsharded arm say
	// nothing about real multi-core speedup.
	Caveats []string `json:"caveats,omitempty"`
	// FlightRecorder marks an arm measured with an armed (but idle) flight
	// recorder (-flight-recorder). Runtime-only — it lives here, not in
	// params, so the config fingerprint stays comparable with unarmed runs;
	// the point of the flag is showing armed-idle is within noise.
	FlightRecorder bool `json:"flight_recorder,omitempty"`
	// History marks an arm measured with an armed metrics history collector
	// (-history). Runtime-only for the same reason: the sampler reads
	// telemetry off the query path, so summaries with and without it share
	// a config fingerprint and stay -compare-able.
	History bool `json:"history,omitempty"`
}

// benchSchemaVersion tracks the benchSummary document shape.
// v3: params.workers stays as-given (0 = auto) instead of baking in the
// machine's GOMAXPROCS; the resolved width moved to
// provenance.search_workers, and sharded arms add params.shards,
// provenance.shards and search.recall_at_k.
const benchSchemaVersion = 3

// provenanceFor stamps the environment and the params fingerprint.
func provenanceFor(p benchParams) benchProvenance {
	canonical, _ := json.Marshal(p) // struct marshal: cannot fail
	sum := sha256.Sum256(canonical)
	return benchProvenance{
		SchemaVersion:     benchSchemaVersion,
		GoVersion:         runtime.Version(),
		GOOS:              runtime.GOOS,
		GOARCH:            runtime.GOARCH,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		NumCPU:            runtime.NumCPU(),
		ConfigFingerprint: hex.EncodeToString(sum[:8]),
		Layout:            p.Layout,
		Accuracy:          p.Accuracy,
		FlightRecorder:    armFlightRecorder,
		History:           armHistory,
	}
}

// armFlightRecorder is the -flight-recorder flag: arm an idle recorder on
// every benchmark arm. Deliberately not part of benchParams (it cannot
// change what a query returns), so summaries with and without it share a
// config fingerprint and stay -compare-able.
var armFlightRecorder bool

// armFlight arms a flight recorder writing into a throwaway temp
// directory on one benchmark arm's index; the returned cleanup disarms it
// and removes the directory. No alerts are configured in bench arms, so
// the recorder stays idle — the measurement is pure armed overhead
// (snapshot ticker plus workload-ring sampling on the query path).
func armFlight(ix interface {
	EnableFlightRecorder(string, bundle.Config) (*bundle.Recorder, error)
	DisableFlightRecorder() error
}, name string) (func(), error) {
	dir, err := os.MkdirTemp("", "vaqbench-bundles-")
	if err != nil {
		return nil, err
	}
	if _, err := ix.EnableFlightRecorder(name, bundle.Config{Dir: dir}); err != nil {
		os.RemoveAll(dir) //nolint:errcheck // best-effort temp cleanup
		return nil, err
	}
	return func() {
		ix.DisableFlightRecorder() //nolint:errcheck // idle recorder: nothing pending
		os.RemoveAll(dir)          //nolint:errcheck // best-effort temp cleanup
	}, nil
}

// armHistory is the -history flag: arm a metrics history collector on
// every benchmark arm. Like armFlightRecorder it is deliberately not part
// of benchParams — the collector samples telemetry off the query path and
// cannot change what a query returns — so summaries with and without it
// share a config fingerprint and stay -compare-able.
var armHistory bool

// armHist arms a history collector at the default production cadence on
// one benchmark arm's index; the returned cleanup disarms it. Bench arms
// configure no SLO, so no burn rules arm — the measurement is pure
// collector-armed overhead (the background sampler reading counters and
// quantiles while the query workload runs).
func armHist(ix interface {
	EnableHistory(string, history.Config) (*history.Collector, error)
	DisableHistory()
}, name string) (func(), error) {
	if _, err := ix.EnableHistory(name, history.Config{}); err != nil {
		return nil, err
	}
	return ix.DisableHistory, nil
}

// benchSummary is the JSON document vaqbench -json emits: everything a
// cross-PR perf tracker needs to plot build cost, throughput, tail
// latency and prune effectiveness over time, plus the provenance needed
// to know which runs are comparable.
type benchSummary struct {
	Params     benchParams         `json:"params"`
	Provenance benchProvenance     `json:"provenance"`
	Build      metrics.BuildReport `json:"build"`
	Search     struct {
		Queries       uint64  `json:"queries"`
		WallSeconds   float64 `json:"wall_seconds"`
		QPS           float64 `json:"qps"`
		LatencyP50Ns  int64   `json:"latency_p50_ns"`
		LatencyP95Ns  int64   `json:"latency_p95_ns"`
		LatencyP99Ns  int64   `json:"latency_p99_ns"`
		LatencyMeanNs int64   `json:"latency_mean_ns"`
		TIPruneRate   float64 `json:"ti_prune_rate"`
		EAAbandonRate float64 `json:"ea_abandon_rate"`
		// RecallAtK is recall@k against brute-force ground truth in the
		// raw space, measured on one extra untimed pass. Only computed
		// when the run has sharded arms to compare against (-shards), so
		// plain runs keep their old cost.
		RecallAtK float64 `json:"recall_at_k,omitempty"`
	} `json:"search"`
	Metrics metrics.Snapshot `json:"metrics"`
	// Report is the index-quality IndexReport (-report flag): quantization
	// distortion, codeword utilization and TI balance alongside the perf
	// numbers, so a perf tracker can correlate throughput with quality.
	Report *diag.Report `json:"report,omitempty"`
	// ShardBreakdown is the per-shard block of a sharded arm (nil on
	// unsharded arms): each shard's size, query counters and latency
	// summary plus the merged critical-path/hit attribution — the same
	// document /debug/vaq/shards serves live.
	ShardBreakdown *shard.ShardsReport `json:"shard_breakdown,omitempty"`
}

// layoutComparison is the JSON document emitted by -layout both / all: the
// same workload measured once per arm, plus the headline ratios the perf
// tracker watches (blocked TIEA throughput over row-major, and — with the
// -layout all third arm — the integer kernel's throughput over blocked
// exact).
type layoutComparison struct {
	Blocked        *benchSummary `json:"blocked"`
	RowMajor       *benchSummary `json:"rowmajor"`
	TIEAQPSSpeedup float64       `json:"tiea_qps_speedup"`
	// BlockedInt is the -layout all third arm: the blocked layout scanned
	// by the integer fast kernel (accuracy "fast").
	BlockedInt        *benchSummary `json:"blocked_int,omitempty"`
	IntTIEAQPSSpeedup float64       `json:"int_tiea_qps_speedup,omitempty"`
	// Sharded holds the scatter-gather arms (-shards): one per requested
	// shard count and accuracy mode, each stamped with its QPS ratio over
	// the blocked exact baseline arm.
	Sharded []*shardedArm `json:"sharded,omitempty"`
}

// shardedArm is one sharded measurement plus its headline ratio. The
// summary is embedded by value, not pointer: encoding/json can marshal an
// embedded pointer to an unexported struct but refuses to unmarshal one
// ("cannot set embedded pointer to unexported struct"), which would make
// -compare reject every committed document with sharded arms.
type shardedArm struct {
	benchSummary
	// QPSSpeedupVsBlocked is this arm's throughput over the unsharded
	// blocked arm of the same accuracy mode on the same workload, so the
	// ratio isolates scatter-gather parallelism from kernel arithmetic.
	QPSSpeedupVsBlocked float64 `json:"qps_speedup_vs_blocked"`
}

// runJSONBench builds an index (or, with -layout both, one per scan
// layout) over a synthetic dataset, drives the query workload through a
// worker pool of reusable Searchers, and writes the summary to path
// ("-" for stdout). With -shards, additional scatter-gather arms run
// after the layout arms, each compared against blocked exact on both
// throughput and brute-force recall@k.
func runJSONBench(path string, p benchParams, withReport bool, shardCounts []int) error {
	ds, err := dataset.Large(p.Dataset, p.N, p.NQ, p.Seed)
	if err != nil {
		return err
	}
	if len(shardCounts) > 0 && p.Layout != "all" {
		return fmt.Errorf("-shards needs -layout all (the sharded arms compare against the blocked exact arm)")
	}
	if p.Layout == "both" || p.Layout == "all" {
		if accuracyName(p.Accuracy) != "exact" {
			return fmt.Errorf("-layout %s runs its own accuracy arms; drop -accuracy", p.Layout)
		}
		// Ground truth is only needed when sharded arms will compare
		// recall; plain layout A/Bs keep their old cost.
		var gt [][]int
		if len(shardCounts) > 0 {
			gt, err = eval.GroundTruth(ds.Base, ds.Queries, p.K)
			if err != nil {
				return err
			}
		}
		pb, pr := p, p
		pb.Layout, pr.Layout = "blocked", "rowmajor"
		blocked, err := runBenchOnce(ds, pb, withReport, gt)
		if err != nil {
			return err
		}
		rowmajor, err := runBenchOnce(ds, pr, withReport, nil)
		if err != nil {
			return err
		}
		cmp := layoutComparison{
			Blocked:        blocked,
			RowMajor:       rowmajor,
			TIEAQPSSpeedup: blocked.Search.QPS / rowmajor.Search.QPS,
		}
		line := fmt.Sprintf("layouts: blocked %.0f qps, rowmajor %.0f qps, speedup %.2fx",
			cmp.Blocked.Search.QPS, cmp.RowMajor.Search.QPS, cmp.TIEAQPSSpeedup)
		if p.Layout == "all" {
			pi := p
			pi.Layout, pi.Accuracy = "blocked", "fast"
			blockedInt, err := runBenchOnce(ds, pi, withReport, gt)
			if err != nil {
				return err
			}
			cmp.BlockedInt = blockedInt
			cmp.IntTIEAQPSSpeedup = blockedInt.Search.QPS / blocked.Search.QPS
			line += fmt.Sprintf(", int %.0f qps (%.2fx over blocked)",
				blockedInt.Search.QPS, cmp.IntTIEAQPSSpeedup)
			if r := blockedInt.Metrics.ObservedRecall(); blockedInt.Metrics.RecallSamples > 0 {
				line += fmt.Sprintf(", int recall %.3f", r)
			}
			for _, s := range shardCounts {
				for _, acc := range []string{"", "fast"} {
					ps := p
					ps.Layout, ps.Accuracy, ps.Shards = "blocked", acc, s
					arm, err := runShardedOnce(ds, ps, withReport, gt)
					if err != nil {
						return err
					}
					base := blocked
					if acc == "fast" {
						base = blockedInt
					}
					cmp.Sharded = append(cmp.Sharded, &shardedArm{
						benchSummary:        *arm,
						QPSSpeedupVsBlocked: arm.Search.QPS / base.Search.QPS,
					})
					line += fmt.Sprintf(", S=%d %s %.0f qps (%.2fx, recall %.3f)",
						s, accuracyName(acc), arm.Search.QPS,
						arm.Search.QPS/base.Search.QPS, arm.Search.RecallAtK)
				}
			}
			if len(cmp.Sharded) > 0 && len(cmp.Sharded[0].Provenance.Caveats) > 0 {
				line += " [caveat: single-core run, sharded ratios not representative]"
			}
		}
		return writeJSONDoc(path, cmp, line)
	}
	if p.Layout == "int" {
		// Shorthand for the integer arm alone: blocked layout, fast kernel.
		p.Layout, p.Accuracy = "blocked", "fast"
	}
	sum, err := runBenchOnce(ds, p, withReport, nil)
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%.0f qps, p50 %s, p95 %s, p99 %s, TI prune %.1f%%, EA abandon %.1f%%",
		sum.Search.QPS,
		time.Duration(sum.Search.LatencyP50Ns),
		time.Duration(sum.Search.LatencyP95Ns),
		time.Duration(sum.Search.LatencyP99Ns),
		100*sum.Search.TIPruneRate, 100*sum.Search.EAAbandonRate)
	return writeJSONDoc(path, sum, line)
}

// runBenchOnce builds one index at p's layout and measures the query
// workload against it. A non-nil gt adds one untimed pass measuring
// recall@k against brute-force ground truth.
func runBenchOnce(ds *dataset.Dataset, p benchParams, withReport bool, gt [][]int) (*benchSummary, error) {
	layout, err := parseLayout(p.Layout)
	if err != nil {
		return nil, err
	}
	accuracy, err := parseAccuracy(p.Accuracy)
	if err != nil {
		return nil, err
	}
	ix, err := core.Build(ds.Train, ds.Base, core.Config{
		NumSubspaces:     p.Subspaces,
		Budget:           p.Budget,
		MaxBits:          p.MaxBits,
		Seed:             p.Seed,
		ScanLayout:       layout,
		AccuracyMode:     accuracy,
		RecallSampleRate: p.RecallRate,
	})
	if err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	metrics.Publish("vaqbench_index", ix.Metrics())
	if armFlightRecorder {
		cleanup, err := armFlight(ix, "vaqbench_index")
		if err != nil {
			return nil, err
		}
		defer cleanup()
	}
	if armHistory {
		cleanup, err := armHist(ix, "vaqbench_index")
		if err != nil {
			return nil, err
		}
		defer cleanup()
	}

	// Resolve the pool width without writing it back into p: params keep
	// the flag as given (0 = auto) so the config fingerprint stays
	// machine-independent; the resolved width lands in provenance.
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if p.Passes < 1 {
		p.Passes = 1
	}
	opt := core.SearchOptions{Mode: core.ModeTIEA, VisitFrac: p.VisitFrac}
	nq := ds.Queries.Rows
	qz, err := projectQueries(ix, ds)
	if err != nil {
		return nil, err
	}

	// Warmup pass (dictionary LUT allocation, page faults), then reset so
	// the summary reflects steady state only.
	runPool(ix, qz, p.K, opt, workers)
	ix.Metrics().Reset()

	start := time.Now()
	for pass := 0; pass < p.Passes; pass++ {
		runPool(ix, qz, p.K, opt, workers)
	}
	wall := time.Since(start)

	sum := &benchSummary{}
	sum.Params = p
	sum.Provenance = provenanceFor(p)
	sum.Provenance.SearchWorkers = workers
	sum.Build = ix.BuildReport()
	sum.Metrics = ix.Metrics().Snapshot()
	sum.Search.Queries = sum.Metrics.Queries
	sum.Search.WallSeconds = wall.Seconds()
	sum.Search.QPS = float64(p.Passes*nq) / wall.Seconds()
	sum.Search.LatencyP50Ns = int64(sum.Metrics.Latency.Quantile(0.50))
	sum.Search.LatencyP95Ns = int64(sum.Metrics.Latency.Quantile(0.95))
	sum.Search.LatencyP99Ns = int64(sum.Metrics.Latency.Quantile(0.99))
	sum.Search.LatencyMeanNs = int64(sum.Metrics.Latency.Mean())
	sum.Search.TIPruneRate = sum.Metrics.TIPruneRate()
	sum.Search.EAAbandonRate = sum.Metrics.EAAbandonRate()
	if gt != nil {
		s := ix.NewSearcher()
		sum.Search.RecallAtK, err = measureRecall(func(qi int) ([]vec.Neighbor, error) {
			return s.SearchProjected(qz[qi], p.K, opt)
		}, nq, gt, p.K)
		if err != nil {
			return nil, err
		}
	}
	if withReport {
		sum.Report = ix.Diagnose()
	}
	return sum, nil
}

// runShardedOnce builds a sharded scatter-gather index sharing one
// trained model across p.Shards partitions and measures the same query
// workload as a single outer stream: every query's latency includes the
// scatter, the per-shard scans (bounded internal worker pool, running
// global k-th distance fed back as a cross-shard threshold) and the
// deterministic merge.
func runShardedOnce(ds *dataset.Dataset, p benchParams, withReport bool, gt [][]int) (*benchSummary, error) {
	layout, err := parseLayout(p.Layout)
	if err != nil {
		return nil, err
	}
	accuracy, err := parseAccuracy(p.Accuracy)
	if err != nil {
		return nil, err
	}
	buildStart := time.Now()
	x, err := shard.Build(ds.Train, ds.Base, core.Config{
		NumSubspaces:     p.Subspaces,
		Budget:           p.Budget,
		MaxBits:          p.MaxBits,
		Seed:             p.Seed,
		ScanLayout:       layout,
		AccuracyMode:     accuracy,
		RecallSampleRate: p.RecallRate,
	}, shard.Options{Shards: p.Shards})
	if err != nil {
		return nil, fmt.Errorf("sharded build (S=%d): %w", p.Shards, err)
	}
	buildWall := time.Since(buildStart)
	if armFlightRecorder {
		cleanup, err := armFlight(x, "vaqbench_index")
		if err != nil {
			return nil, err
		}
		defer cleanup()
	}
	if armHistory {
		cleanup, err := armHist(x, "vaqbench_index")
		if err != nil {
			return nil, err
		}
		defer cleanup()
	}

	if p.Passes < 1 {
		p.Passes = 1
	}
	opt := core.SearchOptions{Mode: core.ModeTIEA, VisitFrac: p.VisitFrac}
	nq := ds.Queries.Rows
	qz := make([][]float32, nq)
	for qi := range qz {
		z, err := x.Shard(0).ProjectQuery(ds.Queries.Row(qi))
		if err != nil {
			return nil, fmt.Errorf("project query %d: %w", qi, err)
		}
		qz[qi] = z
	}

	runShardedPass := func() error {
		for qi := range qz {
			if _, err := x.SearchProjected(qz[qi], p.K, opt); err != nil {
				return fmt.Errorf("sharded query %d: %v", qi, err)
			}
		}
		return nil
	}
	if err := runShardedPass(); err != nil { // warmup
		return nil, err
	}
	x.Metrics().Reset()
	for i := 0; i < x.Shards(); i++ {
		// The per-shard registries feed the shard breakdown block; reset
		// them with the merged one so both reflect steady state only.
		x.Shard(i).Metrics().Reset()
	}

	start := time.Now()
	for pass := 0; pass < p.Passes; pass++ {
		if err := runShardedPass(); err != nil {
			return nil, err
		}
	}
	wall := time.Since(start)

	sum := &benchSummary{}
	sum.Params = p
	sum.Provenance = provenanceFor(p)
	// One outer stream: all parallelism is the internal scatter.
	sum.Provenance.SearchWorkers = 1
	sum.Provenance.Shards = x.Shards()
	if runtime.NumCPU() == 1 || runtime.GOMAXPROCS(0) == 1 {
		sum.Provenance.Caveats = append(sum.Provenance.Caveats,
			"single-core run: the per-query scatter serializes, so sharded QPS "+
				"ratios vs unsharded arms measure coordination overhead, not "+
				"scatter-gather speedup")
	}
	// Shard 0's per-phase timings with Total replaced by the observed
	// end-to-end wall, so Total < sum-of-shard-encodes measures the
	// parallel-build speedup.
	sum.Build = x.BuildReports()[0]
	sum.Build.Total = buildWall
	sum.Metrics = x.Metrics().Snapshot()
	sum.Search.Queries = sum.Metrics.Queries
	sum.Search.WallSeconds = wall.Seconds()
	sum.Search.QPS = float64(p.Passes*nq) / wall.Seconds()
	sum.Search.LatencyP50Ns = int64(sum.Metrics.Latency.Quantile(0.50))
	sum.Search.LatencyP95Ns = int64(sum.Metrics.Latency.Quantile(0.95))
	sum.Search.LatencyP99Ns = int64(sum.Metrics.Latency.Quantile(0.99))
	sum.Search.LatencyMeanNs = int64(sum.Metrics.Latency.Mean())
	sum.Search.TIPruneRate = sum.Metrics.TIPruneRate()
	sum.Search.EAAbandonRate = sum.Metrics.EAAbandonRate()
	if gt != nil {
		sum.Search.RecallAtK, err = measureRecall(func(qi int) ([]vec.Neighbor, error) {
			return x.SearchProjected(qz[qi], p.K, opt)
		}, nq, gt, p.K)
		if err != nil {
			return nil, err
		}
	}
	if withReport {
		sum.Report = x.Diagnose()[0]
	}
	sum.ShardBreakdown = x.Report()
	return sum, nil
}

// measureRecall runs every query once through search and scores the
// returned ids against brute-force ground truth.
func measureRecall(search func(qi int) ([]vec.Neighbor, error), nq int, gt [][]int, k int) (float64, error) {
	results := make([][]int, nq)
	for qi := 0; qi < nq; qi++ {
		res, err := search(qi)
		if err != nil {
			return 0, fmt.Errorf("recall query %d: %w", qi, err)
		}
		results[qi] = eval.IDs(res)
	}
	return eval.Recall(results, gt, k), nil
}

// writeJSONDoc marshals doc to path ("-" for stdout) and prints the
// one-line human summary when writing to a file.
func writeJSONDoc(path string, doc any, line string) error {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s\n", path, line)
	return nil
}

// projectQueries rotates the whole query set into the index's PCA space
// once, so the timed passes measure the index scan path — the thing the
// summary's latency percentiles already cover (RecordSearch starts after
// projection) and the thing -layout both compares.
func projectQueries(ix *core.Index, ds *dataset.Dataset) ([][]float32, error) {
	qz := make([][]float32, ds.Queries.Rows)
	for qi := range qz {
		z, err := ix.ProjectQuery(ds.Queries.Row(qi))
		if err != nil {
			return nil, fmt.Errorf("project query %d: %w", qi, err)
		}
		qz[qi] = z
	}
	return qz, nil
}

// runPool runs every projected query once across workers reusable
// Searchers.
func runPool(ix *core.Index, qz [][]float32, k int, opt core.SearchOptions, workers int) {
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := ix.NewSearcher()
			for qi := range next {
				if _, err := s.SearchProjected(qz[qi], k, opt); err != nil {
					fmt.Fprintf(os.Stderr, "vaqbench: query %d: %v\n", qi, err)
				}
			}
		}()
	}
	for qi := range qz {
		next <- qi
	}
	close(next)
	wg.Wait()
}
