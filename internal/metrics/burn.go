package metrics

import "time"

// BurnRuleStatus is the latest evaluation of one (objective, rule) pair of
// the multi-window multi-burn-rate SLO alerting the history collector runs
// on this registry. Burn is the error-budget burn rate over the long
// Window, ShortBurn over the Confirm window; the rule fires while both sit
// at or above Threshold. Eligible reports whether retained history covers
// enough of the window to evaluate at all (a cold store must not page).
type BurnRuleStatus struct {
	Objective string        `json:"objective"` // "latency" or "recall"
	Rule      string        `json:"rule"`      // "fast", "slow", ...
	Window    time.Duration `json:"window_ns"`
	Confirm   time.Duration `json:"confirm_ns"`
	Threshold float64       `json:"threshold"`
	Burn      float64       `json:"burn"`
	ShortBurn float64       `json:"short_burn"`
	Covered   time.Duration `json:"covered_ns"`
	Eligible  bool          `json:"eligible"`
	Firing    bool          `json:"firing"`
}

// BurnSnapshot is the full burn-rate evaluation written back by the
// history collector each sampling sweep, exported as the vaq_burn_*
// Prometheus families and carried in Snapshot.Burn.
type BurnSnapshot struct {
	UpdatedAt time.Time        `json:"updated_at"`
	Rules     []BurnRuleStatus `json:"rules"`
}

// SetBurn stores the latest burn-rate evaluation (the history collector is
// the only writer). nil clears it.
func (m *IndexMetrics) SetBurn(b *BurnSnapshot) {
	if m == nil {
		return
	}
	m.burn.Store(b)
}

// Burn returns the latest burn-rate evaluation, or nil when no history
// collector is armed on this registry.
func (m *IndexMetrics) Burn() *BurnSnapshot {
	if m == nil {
		return nil
	}
	return m.burn.Load()
}

// DelegateSLOEdges hands SLO objective alerting over to (or back from) a
// history collector's multi-window burn-rate evaluation. While delegated,
// observeLatency/observeRecall keep maintaining the sliding windows — the
// budget gauges stay live — but the instantaneous exhaustion edge
// (vaq.slo.latency / vaq.slo.recall) no longer latches; the collector's
// vaq.burn.* sources carry the alerts instead.
func (m *IndexMetrics) DelegateSLOEdges(delegated bool) {
	if m == nil {
		return
	}
	m.sloDelegated.Store(delegated)
}

// SLODelegated reports whether SLO alerting is currently delegated to a
// history collector.
func (m *IndexMetrics) SLODelegated() bool {
	return m != nil && m.sloDelegated.Load()
}
