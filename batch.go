package vaq

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// SearchBatch answers many queries, distributing them across worker
// goroutines (one reusable Searcher each). Results are returned in query
// order. workers <= 0 uses runtime.GOMAXPROCS(0).
//
// A k < 1 is rejected up front with a nil result slice. Per-query faults
// (a query with the wrong dimensionality, execution errors) do not abort
// the batch: every other query still runs, its result is kept, and its
// telemetry is recorded; each failed query is counted once in the metrics
// registry's error counter, its slot is nil in the returned slice, and the
// per-query errors come back joined (errors.Join) with their query indices.
func (ix *Index) SearchBatch(queries [][]float32, k int, opt SearchOptions, workers int) ([][]Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("vaq: k must be >= 1, got %d", k)
	}
	n := len(queries)
	out := make([][]Result, n)
	if n == 0 {
		return out, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	qErrs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := ix.NewSearcher()
			for qi := range next {
				res, err := s.Search(queries[qi], k, opt)
				if err != nil {
					qErrs[qi] = fmt.Errorf("vaq: query %d: %w", qi, err)
					continue
				}
				out[qi] = res
			}
		}()
	}
	for qi := 0; qi < n; qi++ {
		next <- qi
	}
	close(next)
	wg.Wait()
	return out, errors.Join(qErrs...)
}
