package rvq

import (
	"math"
	"math/rand"
	"testing"

	"vaq/internal/quantizer"
	"vaq/internal/vec"
)

func clustered(rng *rand.Rand, n, d int) *vec.Matrix {
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		for j := 0; j < d; j++ {
			r[j] = float32(rng.Intn(4))*2 + float32(rng.NormFloat64()*0.3)
		}
	}
	return x
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := clustered(rng, 100, 8)
	if _, err := Build(x, x, Config{Stages: 0}); err == nil {
		t.Fatal("stages=0 must fail")
	}
	if _, err := Build(x, x, Config{Stages: 2, BitsPerStage: 13}); err == nil {
		t.Fatal("13 bits must fail")
	}
	if _, err := Build(x, vec.NewMatrix(5, 9), Config{Stages: 2}); err == nil {
		t.Fatal("dim mismatch must fail")
	}
	if _, err := Build(vec.NewMatrix(0, 8), vec.NewMatrix(0, 8), Config{Stages: 2}); err == nil {
		t.Fatal("empty must fail")
	}
}

func TestResidualStagesReduceError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := clustered(rng, 800, 16)
	var prev float64 = math.Inf(1)
	for _, stages := range []int{1, 2, 4} {
		ix, err := Build(x, x, Config{Stages: stages, BitsPerStage: 6, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		mse := ix.ReconstructionError(x)
		if mse > prev+1e-9 {
			t.Fatalf("%d stages increased error: %v > %v", stages, mse, prev)
		}
		prev = mse
	}
	// Relative check: 4 stages x 6 bits should remove ~90% of the data's
	// total variance on this workload.
	var totalVar float64
	for _, v := range vec.ColumnVariances(x) {
		totalVar += v
	}
	if prev > 0.15*totalVar {
		t.Fatalf("4-stage reconstruction error %v too high vs variance %v", prev, totalVar)
	}
}

func TestADCDistanceIsExact(t *testing.T) {
	// The norm-corrected ADC must equal the explicit distance between the
	// query and the decoded reconstruction.
	rng := rand.New(rand.NewSource(3))
	x := clustered(rng, 400, 12)
	ix, err := Build(x, x, Config{Stages: 3, BitsPerStage: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := x.Row(7)
	res, err := ix.Search(q, 20)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float32, 12)
	for _, r := range res {
		ix.Decode(r.ID, buf)
		want := vec.SquaredL2(q, buf)
		if math.Abs(float64(r.Dist-want)) > 1e-3*(1+float64(want)) {
			t.Fatalf("ADC %v != explicit %v for id %d", r.Dist, want, r.ID)
		}
	}
}

func TestSearchBasicsAndSelfRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := clustered(rng, 1000, 16)
	ix, err := Build(x, x, Config{Stages: 4, BitsPerStage: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1000 || ix.Dim() != 16 {
		t.Fatalf("shape %d %d", ix.Len(), ix.Dim())
	}
	hits := 0
	for trial := 0; trial < 20; trial++ {
		qi := rng.Intn(1000)
		res, err := ix.Search(x.Row(qi), 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.ID == qi {
				hits++
				break
			}
		}
	}
	if hits < 17 {
		t.Fatalf("self-recall %d/20", hits)
	}
	if _, err := ix.Search(make([]float32, 3), 5); err == nil {
		t.Fatal("bad dim must fail")
	}
	if _, err := ix.Search(x.Row(0), 0); err == nil {
		t.Fatal("k=0 must fail")
	}
}

// RVQ at the same budget should beat PQ on reconstruction error for data
// with global (cross-subspace) structure — the accuracy edge of additive
// families that Table I records.
func TestRVQBeatsPQReconstructionOnCorrelatedData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, d := 1200, 16
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		base := rng.NormFloat64() * 3
		r := x.Row(i)
		for j := 0; j < d; j++ {
			r[j] = float32(base + rng.NormFloat64()*0.4)
		}
	}
	// 32-bit budget: RVQ 4 stages x 8 bits; PQ 4 subspaces x 8 bits.
	rvqIx, err := Build(x, x, Config{Stages: 4, BitsPerStage: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := quantizer.TrainPQ(x, x, quantizer.PQConfig{
		M: 4, BitsPerSubspace: 8, Train: quantizer.TrainConfig{Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	rvqMSE := rvqIx.ReconstructionError(x)
	pqMSE := pq.Codebooks().ReconstructionError(x, pq.Codes())
	if rvqMSE > pqMSE {
		t.Fatalf("RVQ MSE %v should beat PQ MSE %v on globally-correlated data", rvqMSE, pqMSE)
	}
}
