package core

import (
	"errors"
	"log/slog"

	"vaq/internal/history"
	"vaq/internal/metrics"
)

// EnableHistory arms the metrics history collector on the index: a
// background goroutine sampling the registry on cfg.Interval into tiered
// ring buffers (raw cadence → 10s → 1m aggregates), from which trends,
// rates and the /debug/vaq/history endpoint are served. When the index has
// a configured SLO and cfg.DisableBurn is false, the collector also takes
// over objective alerting: the canonical multi-window multi-burn-rate
// rules (cfg.Burn, default fast 5m + slow 1h) evaluate on cadence, fire
// vaq.burn.* sources on the index's alert bus, and the instantaneous
// exhaustion edge (vaq.slo.*) is delegated quiet while armed.
//
// name labels the collector's merged target (use the name the index is
// published under). Errors if metrics are disabled or a collector is
// already armed. Disarm with DisableHistory.
func (ix *Index) EnableHistory(name string, cfg history.Config) (*history.Collector, error) {
	if ix.metrics == nil {
		return nil, errors.New("vaq: history collector requires metrics (Config.DisableMetrics is set)")
	}
	if ix.hist.Load() != nil {
		return nil, errors.New("vaq: history collector already armed")
	}
	if cfg.OnBurn == nil {
		cfg.OnBurn = ix.burnEvent
	}
	c := history.New(name, cfg)
	c.Watch(name, ix.metrics)
	if !ix.hist.CompareAndSwap(nil, c) {
		c.Close()
		return nil, errors.New("vaq: history collector already armed")
	}
	return c, nil
}

// DisableHistory stops the collector after a final sweep and hands SLO
// alerting back to the instantaneous exhaustion edge. No-op when none is
// armed. The retained series stay readable through the returned collector
// of EnableHistory, but the index drops its reference.
func (ix *Index) DisableHistory() {
	if c := ix.hist.Swap(nil); c != nil {
		c.Close()
	}
}

// History returns the armed collector, or nil.
func (ix *Index) History() *history.Collector { return ix.hist.Load() }

// burnEvent is the default history.Config.OnBurn: one vaq.burn slog event
// per burn-rule breach edge (the alert source latches the edge, so this
// fires exactly once per crossing and re-arms on recovery). Runs on the
// collector goroutine, never the query path.
func (ix *Index) burnEvent(target string, st metrics.BurnRuleStatus) {
	if ix.cfg.Logger == nil {
		return
	}
	ix.cfg.Logger.Warn("vaq.burn",
		slog.String("target", target),
		slog.String("objective", st.Objective),
		slog.String("rule", st.Rule),
		slog.Float64("burn", st.Burn),
		slog.Float64("short_burn", st.ShortBurn),
		slog.Float64("threshold", st.Threshold),
		slog.String("window", st.Window.String()),
		slog.String("confirm", st.Confirm.String()))
}
