// Command vaqbench regenerates the tables and figures of the VAQ paper.
//
// Usage:
//
//	vaqbench -list
//	vaqbench -exp fig1            # one experiment at the default scale
//	vaqbench -exp all -scale quick
//	vaqbench -exp tab2 -n 50000 -gallery 128
//
// Output is plain text: the same rows/series each figure plots, so shapes
// can be compared against the paper directly (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vaq/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		scale   = flag.String("scale", "default", "preset scale: quick or default")
		n       = flag.Int("n", 0, "override base-vector count for large datasets")
		nq      = flag.Int("nq", 0, "override query count")
		gallery = flag.Int("gallery", 0, "override gallery dataset count")
		seed    = flag.Int64("seed", 0, "override data seed")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "vaqbench: -exp is required (try -list)")
		os.Exit(2)
	}
	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.QuickScale
	case "default":
		s = experiments.DefaultScale
	default:
		fmt.Fprintf(os.Stderr, "vaqbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *n > 0 {
		s.N = *n
	}
	if *nq > 0 {
		s.NQ = *nq
	}
	if *gallery > 0 {
		s.GalleryCount = *gallery
	}
	if *seed != 0 {
		s.Seed = *seed
	}

	run := func(e experiments.Experiment) {
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		fmt.Printf("scale: n=%d nq=%d gallery=%d seed=%d\n\n", s.N, s.NQ, s.GalleryCount, s.Seed)
		start := time.Now()
		if err := e.Run(os.Stdout, s); err != nil {
			fmt.Fprintf(os.Stderr, "vaqbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, e := range experiments.Registry() {
			run(e)
		}
		return
	}
	e, ok := experiments.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "vaqbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
