package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vaq/internal/vec"
)

// blobs generates n points around k well-separated centers.
func blobs(rng *rand.Rand, n, d, k int, sep float64) (*vec.Matrix, []int) {
	centers := vec.NewMatrix(k, d)
	for i := range centers.Data {
		centers.Data[i] = float32(rng.NormFloat64() * sep)
	}
	x := vec.NewMatrix(n, d)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		labels[i] = c
		row := x.Row(i)
		cr := centers.Row(c)
		for j := 0; j < d; j++ {
			row[j] = cr[j] + float32(rng.NormFloat64()*0.1)
		}
	}
	return x, labels
}

func TestTrainRecoverClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, labels := blobs(rng, 600, 4, 3, 10)
	res, err := Train(x, Config{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids.Rows != 3 {
		t.Fatalf("centroids %d", res.Centroids.Rows)
	}
	// All points of the same true cluster must map to the same centroid.
	mapping := map[int]int{}
	for i, a := range res.Assign {
		if prev, ok := mapping[labels[i]]; ok && prev != a {
			t.Fatalf("cluster %d split across centroids %d and %d", labels[i], prev, a)
		}
		mapping[labels[i]] = a
	}
	if len(mapping) != 3 {
		t.Fatalf("expected 3 distinct centroids, got %d", len(mapping))
	}
	if res.Inertia > float64(x.Rows)*0.1*0.1*4*3 {
		t.Fatalf("inertia too high: %v", res.Inertia)
	}
}

func TestTrainErrors(t *testing.T) {
	x := vec.NewMatrix(5, 2)
	if _, err := Train(x, Config{K: 0}); err == nil {
		t.Fatal("K=0 must fail")
	}
	if _, err := Train(vec.NewMatrix(0, 2), Config{K: 1}); err == nil {
		t.Fatal("empty input must fail")
	}
}

func TestTrainKGreaterThanN(t *testing.T) {
	x, _ := vec.FromRows([][]float32{{0, 0}, {10, 10}})
	res, err := Train(x, Config{K: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids.Rows != 2 {
		t.Fatalf("K should clamp to n: got %d centroids", res.Centroids.Rows)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("2 points, 2 centroids should have zero inertia: %v", res.Inertia)
	}
}

func TestTrainK1(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, _ := blobs(rng, 100, 3, 1, 1)
	res, err := Train(x, Config{K: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	means := vec.ColumnMeans(x)
	for j := 0; j < 3; j++ {
		if math.Abs(float64(res.Centroids.At(0, j))-means[j]) > 1e-4 {
			t.Fatalf("single centroid should be the mean: %v vs %v", res.Centroids.Row(0), means)
		}
	}
}

func TestTrainDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, _ := blobs(rng, 300, 5, 4, 5)
	r1, _ := Train(x, Config{K: 4, Seed: 7})
	r2, _ := Train(x, Config{K: 4, Seed: 7})
	if !r1.Centroids.Equal(r2.Centroids) {
		t.Fatal("same seed must give same centroids")
	}
}

func TestTrainParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, _ := blobs(rng, 3000, 8, 5, 5)
	r1, _ := Train(x, Config{K: 5, Seed: 9, Parallel: false})
	r2, _ := Train(x, Config{K: 5, Seed: 9, Parallel: true})
	if math.Abs(r1.Inertia-r2.Inertia) > 1e-6*(1+r1.Inertia) {
		t.Fatalf("parallel inertia %v != serial %v", r2.Inertia, r1.Inertia)
	}
	if !r1.Centroids.Equal(r2.Centroids) {
		t.Fatal("parallel centroids differ from serial")
	}
}

func TestTrainDuplicatePoints(t *testing.T) {
	// Degenerate input: all points identical. Must not loop or crash.
	x := vec.NewMatrix(50, 3)
	for i := 0; i < 50; i++ {
		copy(x.Row(i), []float32{1, 2, 3})
	}
	res, err := Train(x, Config{K: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("identical points: inertia %v", res.Inertia)
	}
}

func TestHierarchicalTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, _ := blobs(rng, 4000, 6, 16, 8)
	res, err := Train(x, Config{
		K:                     128,
		Seed:                  11,
		HierarchicalThreshold: 64,
		HierarchicalBranch:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids.Rows != 128 {
		t.Fatalf("want 128 centroids, got %d", res.Centroids.Rows)
	}
	// Hierarchical should still achieve low inertia on well-separated blobs.
	flat, err := Train(x, Config{K: 128, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > flat.Inertia*3+1 {
		t.Fatalf("hierarchical inertia %v too far above flat %v", res.Inertia, flat.Inertia)
	}
	for _, a := range res.Assign {
		if a < 0 || a >= 128 {
			t.Fatalf("assignment out of range: %d", a)
		}
	}
}

func TestAssignNearest(t *testing.T) {
	centroids, _ := vec.FromRows([][]float32{{0, 0}, {10, 0}, {0, 10}})
	if got := AssignNearest(centroids, []float32{9, 1}); got != 1 {
		t.Fatalf("got %d", got)
	}
	if got := AssignNearest(centroids, []float32{1, 1}); got != 0 {
		t.Fatalf("got %d", got)
	}
}

// Property: Lloyd iterations never increase inertia relative to assigning
// with the final centroids; centroids count is always min(K, n); every
// assignment index is valid.
func TestTrainInvariantsProperty(t *testing.T) {
	f := func(seed int64, kRaw, nRaw uint8) bool {
		k := int(kRaw)%6 + 1
		n := int(nRaw)%80 + 5
		rng := rand.New(rand.NewSource(seed))
		x := vec.NewMatrix(n, 3)
		for i := range x.Data {
			x.Data[i] = rng.Float32() * 4
		}
		res, err := Train(x, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		wantK := k
		if n < k {
			wantK = n
		}
		if res.Centroids.Rows != wantK {
			return false
		}
		var check float64
		for i := 0; i < n; i++ {
			a := res.Assign[i]
			if a < 0 || a >= wantK {
				return false
			}
			d := float64(vec.SquaredL2(x.Row(i), res.Centroids.Row(a)))
			// The recorded assignment must be the argmin.
			best := AssignNearest(res.Centroids, x.Row(i))
			bd := float64(vec.SquaredL2(x.Row(i), res.Centroids.Row(best)))
			if d > bd+1e-5 {
				return false
			}
			check += d
		}
		return math.Abs(check-res.Inertia) < 1e-3*(1+check)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSegment1DExact(t *testing.T) {
	vals := []float64{10, 9.5, 9, 2, 1.8, 0.2, 0.1, 0.05}
	lengths, err := Segment1D(vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(lengths) != 3 {
		t.Fatalf("lengths %v", lengths)
	}
	sum := 0
	for _, l := range lengths {
		if l <= 0 {
			t.Fatalf("empty segment: %v", lengths)
		}
		sum += l
	}
	if sum != len(vals) {
		t.Fatalf("lengths %v don't sum to %d", lengths, len(vals))
	}
	// The natural split is {10,9.5,9} {2,1.8} {0.2,0.1,0.05}.
	if lengths[0] != 3 || lengths[1] != 2 || lengths[2] != 3 {
		t.Fatalf("unexpected segmentation %v", lengths)
	}
}

func TestSegment1DEdgeCases(t *testing.T) {
	if _, err := Segment1D(nil, 1); err == nil {
		t.Fatal("empty input must fail")
	}
	if _, err := Segment1D([]float64{1}, 0); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := Segment1D([]float64{1, 2}, 1); err == nil {
		t.Fatal("ascending input must fail")
	}
	if _, err := Segment1D([]float64{2, 1}, 3); err == nil {
		t.Fatal("k > n must fail")
	}
	l, err := Segment1D([]float64{5, 4, 3}, 3)
	if err != nil || l[0] != 1 || l[1] != 1 || l[2] != 1 {
		t.Fatalf("k=n should give singletons: %v %v", l, err)
	}
	l, err = Segment1D([]float64{5, 4, 3, 2}, 1)
	if err != nil || l[0] != 4 {
		t.Fatalf("k=1 should give one segment: %v %v", l, err)
	}
}

// Property: Segment1D returns k positive lengths summing to n, and its cost
// is no worse than the uniform split's cost.
func TestSegment1DProperty(t *testing.T) {
	segCost := func(vals []float64, lengths []int) float64 {
		var total float64
		start := 0
		for _, l := range lengths {
			seg := vals[start : start+l]
			var mean float64
			for _, v := range seg {
				mean += v
			}
			mean /= float64(l)
			for _, v := range seg {
				total += (v - mean) * (v - mean)
			}
			start += l
		}
		return total
	}
	f := func(seed int64, kRaw, nRaw uint8) bool {
		n := int(nRaw)%30 + 2
		k := int(kRaw)%n + 1
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 10
		}
		// sort descending
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if vals[j] > vals[i] {
					vals[i], vals[j] = vals[j], vals[i]
				}
			}
		}
		lengths, err := Segment1D(vals, k)
		if err != nil {
			return false
		}
		sum := 0
		for _, l := range lengths {
			if l <= 0 {
				return false
			}
			sum += l
		}
		if sum != n {
			return false
		}
		// Compare against uniform split cost.
		uniform := make([]int, k)
		base, rem := n/k, n%k
		for i := range uniform {
			uniform[i] = base
			if i < rem {
				uniform[i]++
			}
		}
		return segCost(vals, lengths) <= segCost(vals, uniform)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
