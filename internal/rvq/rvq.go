// Package rvq implements Residual Vector Quantization, the simplest member
// of the additive-quantization family (AQ/CQ in the paper's Table I and
// §II-C): a vector is represented as the SUM of one codeword per stage,
// each stage quantizing the residual left by the previous stages. Additive
// families improve recall over product quantization at the same budget but
// pay encoding and query-time overheads — exactly the trade-off Table I
// records ("Recall/Accuracy Improvement: yes; runtime/encoding overheads:
// yes"), which is why the paper positions VAQ against OPQ instead.
//
// The ADC trick for additive codes: with x̂ = Σ_s c_s,
//
//	||q - x̂||² = ||q||² - 2·Σ_s ⟨q, c_s⟩ + ||x̂||²,
//
// so queries precompute ⟨q, c⟩ tables per stage and each database vector
// stores its reconstruction norm — one extra float per vector, the storage
// overhead Table I notes.
package rvq

import (
	"fmt"

	"vaq/internal/kmeans"
	"vaq/internal/vec"
)

// Config controls Build.
type Config struct {
	// Stages is the number of additive codebooks M.
	Stages int
	// BitsPerStage is each codebook's size exponent (default 8).
	BitsPerStage int
	// Train seeds and bounds the k-means runs.
	Seed    int64
	MaxIter int
}

// Index is a built RVQ index.
type Index struct {
	books  []*vec.Matrix // Stages x (2^bits x d)
	codes  []uint16      // n x Stages
	norms  []float32     // ||x̂||² per vector
	stages int
	n      int
	dim    int
}

// Build trains the stage codebooks on train (sequential residual k-means)
// and encodes data greedily.
func Build(train, data *vec.Matrix, cfg Config) (*Index, error) {
	if cfg.Stages < 1 {
		return nil, fmt.Errorf("rvq: Stages must be >= 1, got %d", cfg.Stages)
	}
	if cfg.BitsPerStage == 0 {
		cfg.BitsPerStage = 8
	}
	if cfg.BitsPerStage < 1 || cfg.BitsPerStage > 12 {
		return nil, fmt.Errorf("rvq: BitsPerStage=%d out of range [1,12]", cfg.BitsPerStage)
	}
	if train.Cols != data.Cols {
		return nil, fmt.Errorf("rvq: train dim %d != data dim %d", train.Cols, data.Cols)
	}
	if train.Rows == 0 || data.Rows == 0 {
		return nil, fmt.Errorf("rvq: empty train or data")
	}
	d := train.Cols
	ix := &Index{stages: cfg.Stages, n: data.Rows, dim: d}
	// Train on residuals.
	resid := train.Clone()
	for s := 0; s < cfg.Stages; s++ {
		res, err := kmeans.Train(resid, kmeans.Config{
			K:        1 << cfg.BitsPerStage,
			Seed:     cfg.Seed + int64(s)*31,
			MaxIter:  cfg.MaxIter,
			Parallel: true,
		})
		if err != nil {
			return nil, fmt.Errorf("rvq: stage %d: %w", s, err)
		}
		ix.books = append(ix.books, res.Centroids)
		// Subtract assigned centroids to form the next stage's residuals.
		for i := 0; i < resid.Rows; i++ {
			row := resid.Row(i)
			c := res.Centroids.Row(res.Assign[i])
			for j := 0; j < d; j++ {
				row[j] -= c[j]
			}
		}
	}
	// Encode data greedily stage by stage.
	ix.codes = make([]uint16, data.Rows*cfg.Stages)
	ix.norms = make([]float32, data.Rows)
	buf := make([]float32, d)
	recon := make([]float32, d)
	for i := 0; i < data.Rows; i++ {
		copy(buf, data.Row(i))
		for j := range recon {
			recon[j] = 0
		}
		for s := 0; s < cfg.Stages; s++ {
			c := kmeans.AssignNearest(ix.books[s], buf)
			ix.codes[i*cfg.Stages+s] = uint16(c)
			cr := ix.books[s].Row(c)
			for j := 0; j < d; j++ {
				buf[j] -= cr[j]
				recon[j] += cr[j]
			}
		}
		ix.norms[i] = vec.Dot(recon, recon)
	}
	return ix, nil
}

// Len reports the number of encoded vectors.
func (ix *Index) Len() int { return ix.n }

// Dim reports the expected query dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Decode reconstructs vector i's approximation into out.
func (ix *Index) Decode(i int, out []float32) {
	for j := range out {
		out[j] = 0
	}
	for s := 0; s < ix.stages; s++ {
		c := ix.books[s].Row(int(ix.codes[i*ix.stages+s]))
		for j := range out {
			out[j] += c[j]
		}
	}
}

// Search returns the approximate k nearest neighbors. Distances are exact
// squared Euclidean distances between q and each reconstruction.
func (ix *Index) Search(q []float32, k int) ([]vec.Neighbor, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("rvq: query dim %d, index dim %d", len(q), ix.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("rvq: k must be >= 1, got %d", k)
	}
	// Inner-product tables per stage.
	offsets := make([]int, ix.stages+1)
	total := 0
	for s := 0; s < ix.stages; s++ {
		offsets[s] = total
		total += ix.books[s].Rows
	}
	offsets[ix.stages] = total
	lut := make([]float32, total)
	for s := 0; s < ix.stages; s++ {
		book := ix.books[s]
		for c := 0; c < book.Rows; c++ {
			lut[offsets[s]+c] = vec.Dot(q, book.Row(c))
		}
	}
	qNorm := vec.Dot(q, q)
	tk := vec.NewTopK(k)
	for i := 0; i < ix.n; i++ {
		base := i * ix.stages
		var dot float32
		for s := 0; s < ix.stages; s++ {
			dot += lut[offsets[s]+int(ix.codes[base+s])]
		}
		tk.Push(i, qNorm-2*dot+ix.norms[i])
	}
	return tk.Results(), nil
}

// ReconstructionError reports the mean squared reconstruction error of the
// encoded dataset against data (which must be the matrix passed to Build).
func (ix *Index) ReconstructionError(data *vec.Matrix) float64 {
	buf := make([]float32, ix.dim)
	var total float64
	for i := 0; i < ix.n; i++ {
		ix.Decode(i, buf)
		total += float64(vec.SquaredL2(data.Row(i), buf))
	}
	return total / float64(ix.n)
}
