package metrics

import (
	"math"
	"sync/atomic"
	"time"

	"vaq/internal/alert"
)

// ShardedConfig shapes the scatter-gather telemetry extension of a merged
// registry (ConfigureSharded): per-query slowest-shard attribution, shard
// skew-ratio and load-imbalance gauges over a sliding window, per-shard
// hit attribution, and an edge-triggered skew alert.
type ShardedConfig struct {
	// Shards is the shard count S (required, >= 1).
	Shards int
	// Window is the sliding window in queries over which the skew-ratio
	// and load-imbalance gauges are evaluated (default 1024).
	Window int
	// SkewAlertRatio fires the skew alert when the windowed mean skew
	// ratio (slowest shard latency over mean shard latency, per query)
	// crosses this threshold. 0 disables the alert; useful values are
	// > 1 (a perfectly balanced scatter has ratio 1).
	SkewAlertRatio float64
}

func (c ShardedConfig) withDefaults() ShardedConfig {
	if c.Window <= 0 {
		c.Window = 1024
	}
	return c
}

// SkewBreachFunc is called exactly once per skew-alert edge: when the
// windowed mean skew ratio crosses from below SkewAlertRatio to at or
// above it. Called from the query path — keep it cheap and non-blocking
// (internal/shard's implementation emits one vaq.skew slog event). The
// latch re-arms when the windowed ratio recovers below the threshold.
type SkewBreachFunc func(skewRatio, loadImbalance float64, criticalShard int)

// ScatterRecord carries one sharded query's per-shard evidence into the
// registry: each shard's wall time inside the scatter and how many of the
// final merged top-k results it contributed.
type ScatterRecord struct {
	// ShardLatencyNs[i] is shard i's search wall time within the scatter.
	ShardLatencyNs []int64
	// Hits[i] is the number of final top-k results shard i contributed
	// (nil when the caller did not attribute hits).
	Hits []int
}

// shardedState is the lock-free scatter telemetry behind a merged
// registry. The sliding windows are rings updated with Swap, mirroring
// sloState: the overwritten slot's value adjusts a running total, so the
// windowed aggregates stay consistent without locks.
type shardedState struct {
	cfg     ShardedConfig
	onAlert SkewBreachFunc

	// criticalPath[i] counts queries where shard i was the slowest
	// (critical path of the scatter); hits[i] totals final top-k results
	// shard i contributed.
	criticalPath []atomic.Uint64
	hits         []atomic.Uint64
	// stragglerDelta is the distribution of (slowest - second slowest)
	// shard latency per query: the wall time a query would save if its
	// straggler kept up with the runner-up.
	stragglerDelta Histogram

	// seen counts scatters ever recorded; the rings below are indexed by
	// (seen-1) mod Window.
	seen atomic.Uint64
	// skewSlots holds per-query skew ratios scaled by skewScale (so the
	// running sum stays an integer add); skewSum is the windowed total.
	skewSlots []atomic.Uint64
	skewSum   atomic.Int64
	// latSlots is a W x S ring of per-shard latencies (slot q*S+i);
	// latSums[i] is shard i's windowed latency total, feeding the
	// load-imbalance gauge.
	latSlots []atomic.Int64
	latSums  []atomic.Int64

	// src is the skew-alert latch, registered on the registry's alert bus
	// as vaq.skew.
	src *alert.Source
}

// skewScale fixes the precision of the windowed skew-ratio mean: ratios
// are stored in units of 1/1024.
const skewScale = 1024

// ConfigureSharded installs (or replaces) the scatter-gather telemetry
// extension on this registry. onAlert may be nil. A nil registry ignores
// the call.
func (m *IndexMetrics) ConfigureSharded(cfg ShardedConfig, onAlert SkewBreachFunc) {
	if m == nil || cfg.Shards < 1 {
		return
	}
	cfg = cfg.withDefaults()
	s := &shardedState{
		cfg:          cfg,
		onAlert:      onAlert,
		criticalPath: make([]atomic.Uint64, cfg.Shards),
		hits:         make([]atomic.Uint64, cfg.Shards),
		skewSlots:    make([]atomic.Uint64, cfg.Window),
		latSlots:     make([]atomic.Int64, cfg.Window*cfg.Shards),
		latSums:      make([]atomic.Int64, cfg.Shards),
		src:          m.Alerts().Source("vaq.skew"),
	}
	// Reconfiguring restarts the window, so the latch re-arms too.
	s.src.Reset()
	m.sharded.Store(s)
}

// RecordScatter folds one sharded query's per-shard evidence into the
// telemetry: slowest-shard attribution, the straggler-delta histogram,
// the windowed skew and load aggregates, hit attribution, and the skew
// alert edge. Ignored unless ConfigureSharded matched the record's shape.
func (m *IndexMetrics) RecordScatter(r ScatterRecord) {
	if m == nil {
		return
	}
	s := m.sharded.Load()
	if s == nil || len(r.ShardLatencyNs) != s.cfg.Shards {
		return
	}
	// Critical path: the slowest shard (ties break to the lowest index so
	// the attribution is deterministic), runner-up for the delta.
	slowest, runnerUp := 0, int64(-1)
	var total int64
	for i, ns := range r.ShardLatencyNs {
		total += ns
		if ns > r.ShardLatencyNs[slowest] {
			slowest = i
		}
	}
	for i, ns := range r.ShardLatencyNs {
		if i != slowest && ns > runnerUp {
			runnerUp = ns
		}
	}
	s.criticalPath[slowest].Add(1)
	if runnerUp >= 0 {
		s.stragglerDelta.Observe(time.Duration(r.ShardLatencyNs[slowest] - runnerUp))
	}
	if len(r.Hits) == s.cfg.Shards {
		for i, h := range r.Hits {
			if h > 0 {
				s.hits[i].Add(uint64(h))
			}
		}
	}
	// Per-query skew ratio: slowest over mean shard latency (1 for a
	// perfectly balanced scatter, or when latencies are too small to
	// resolve).
	ratio := 1.0
	if total > 0 {
		ratio = float64(r.ShardLatencyNs[slowest]) * float64(s.cfg.Shards) / float64(total)
	}
	q := (s.seen.Add(1) - 1) % uint64(s.cfg.Window)
	scaled := uint64(ratio*skewScale + 0.5)
	if old := s.skewSlots[q].Swap(scaled); old != scaled {
		s.skewSum.Add(int64(scaled) - int64(old))
	}
	base := int(q) * s.cfg.Shards
	for i, ns := range r.ShardLatencyNs {
		if old := s.latSlots[base+i].Swap(ns); old != ns {
			s.latSums[i].Add(ns - old)
		}
	}
	// Edge-triggered skew alert over the windowed mean, on the shared
	// alert.Source latch: fire once on crossing, re-arm on recovery, both
	// edges published to the registry's alert bus.
	if s.cfg.SkewAlertRatio > 0 {
		skew, imbalance := s.windowed()
		if s.src.Set(skew >= s.cfg.SkewAlertRatio) && s.onAlert != nil {
			s.onAlert(skew, imbalance, slowest)
		}
	}
}

// windowed computes the windowed mean skew ratio and the load-imbalance
// ratio (the busiest shard's windowed latency total over the mean).
func (s *shardedState) windowed() (skew, imbalance float64) {
	n := s.seen.Load()
	if n > uint64(s.cfg.Window) {
		n = uint64(s.cfg.Window)
	}
	if n == 0 {
		return 0, 0
	}
	skew = float64(s.skewSum.Load()) / skewScale / float64(n)
	var maxSum, totalSum int64
	for i := range s.latSums {
		v := s.latSums[i].Load()
		totalSum += v
		if v > maxSum {
			maxSum = v
		}
	}
	if totalSum > 0 {
		imbalance = float64(maxSum) * float64(s.cfg.Shards) / float64(totalSum)
	}
	return skew, imbalance
}

// reset re-zeroes the scatter telemetry and re-arms the skew-alert latch.
func (s *shardedState) reset() {
	if s == nil {
		return
	}
	for i := range s.criticalPath {
		s.criticalPath[i].Store(0)
	}
	for i := range s.hits {
		s.hits[i].Store(0)
	}
	s.stragglerDelta.Reset()
	s.seen.Store(0)
	for i := range s.skewSlots {
		s.skewSlots[i].Store(0)
	}
	s.skewSum.Store(0)
	for i := range s.latSlots {
		s.latSlots[i].Store(0)
	}
	for i := range s.latSums {
		s.latSums[i].Store(0)
	}
	s.src.Reset()
}

// ShardedSnapshot is a point-in-time view of the scatter-gather
// telemetry: cumulative attribution counters plus the windowed skew and
// imbalance gauges.
type ShardedSnapshot struct {
	Shards int `json:"shards"`
	Window int `json:"window"`
	// WindowQueries is the number of scatters currently inside the
	// sliding window (<= Window).
	WindowQueries uint64 `json:"window_queries"`
	// CriticalPath[i] counts queries where shard i was the slowest —
	// the scatter's critical path. Their sum is the total scatter count.
	CriticalPath []uint64 `json:"critical_path"`
	// Hits[i] totals final top-k results shard i contributed.
	Hits []uint64 `json:"hits,omitempty"`
	// SkewRatio is the windowed mean of per-query (slowest shard latency
	// / mean shard latency): 1 = perfectly balanced, S = one shard does
	// all the work. LoadImbalance is the busiest shard's windowed latency
	// total over the mean shard's — persistent skew as opposed to
	// per-query jitter.
	SkewRatio     float64 `json:"skew_ratio"`
	LoadImbalance float64 `json:"load_imbalance"`
	// SkewAlertRatio echoes the configured threshold (0 = alert off);
	// SkewAlert reports the latch: true while the windowed skew ratio
	// sits at or above it.
	SkewAlertRatio float64 `json:"skew_alert_ratio,omitempty"`
	SkewAlert      bool    `json:"skew_alert,omitempty"`
	// StragglerDelta is the distribution of (slowest - second slowest)
	// shard latency per query.
	StragglerDelta HistogramSnapshot `json:"straggler_delta"`
}

// ShardedSnapshot returns the current scatter telemetry, or nil when
// ConfigureSharded was never called (including on a nil registry).
func (m *IndexMetrics) ShardedSnapshot() *ShardedSnapshot {
	if m == nil {
		return nil
	}
	s := m.sharded.Load()
	if s == nil {
		return nil
	}
	out := &ShardedSnapshot{
		Shards:         s.cfg.Shards,
		Window:         s.cfg.Window,
		SkewAlertRatio: s.cfg.SkewAlertRatio,
		SkewAlert:      s.src.Firing(),
		CriticalPath:   make([]uint64, s.cfg.Shards),
		Hits:           make([]uint64, s.cfg.Shards),
		StragglerDelta: s.stragglerDelta.Snapshot(),
	}
	for i := range out.CriticalPath {
		out.CriticalPath[i] = s.criticalPath[i].Load()
	}
	for i := range out.Hits {
		out.Hits[i] = s.hits[i].Load()
	}
	n := s.seen.Load()
	if n > uint64(s.cfg.Window) {
		n = uint64(s.cfg.Window)
	}
	out.WindowQueries = n
	out.SkewRatio, out.LoadImbalance = s.windowed()
	if math.IsNaN(out.SkewRatio) {
		out.SkewRatio = 0
	}
	return out
}
