package shard

import (
	"errors"

	"vaq/internal/bundle"
	"vaq/internal/diag"
	"vaq/internal/history"
	"vaq/internal/trace"
	"vaq/internal/workload"
)

// EnableFlightRecorder arms an incident flight recorder on the sharded
// index — the scatter-gather analog of core's: it subscribes to the
// merged registry's alert bus (vaq.skew, vaq.slo.*), keeps a windowed
// metric-snapshot ring, and on any breach edge or manual Trigger freezes
// the recent context into an incident bundle whose .vaqwl carries the
// merged (global) result lists and the shard count in its provenance, so
// the embedded workload replays through the same scatter shape. name is
// the identity stamped into each bundle (use the published index name).
//
// When no workload capture is attached, a ring-shaped one is installed
// (newest cfg.WorkloadRing sampled queries at cfg.WorkloadSampleRate); an
// existing EnableCapture buffer is reused untouched. Errors under
// DisableMetrics or when a recorder is already armed.
func (x *Index) EnableFlightRecorder(name string, cfg bundle.Config) (*bundle.Recorder, error) {
	if x.reg == nil {
		return nil, errors.New("vaq: flight recorder requires metrics (Options.DisableMetrics is set)")
	}
	if x.flight.Load() != nil {
		return nil, errors.New("vaq: flight recorder already armed")
	}
	if x.capture.Load() == nil {
		x.EnableCapture(workload.Config{
			SampleRate: cfg.WorkloadSampleRate,
			MaxRecords: cfg.WorkloadRing,
			Ring:       true,
		})
	}
	rec, err := bundle.New(cfg, bundle.Info{
		Name:        name,
		Fingerprint: x.ConfigFingerprint(),
		Shards:      len(x.states),
	}, bundle.Hooks{
		Metrics: x.reg,
		Alerts:  x.reg.Alerts(),
		Tracer:  func() *trace.Tracer { return x.tracer.Load() },
		Workload: func() *workload.Log {
			return x.capture.Load().Snapshot()
		},
		Reports: func() []*diag.Report { return x.Diagnose() },
		History: func() *history.Dump {
			if c := x.hist.Load(); c != nil {
				return c.Dump()
			}
			return nil // recorder falls back to its own sampler
		},
	})
	if err != nil {
		return nil, err
	}
	if !x.flight.CompareAndSwap(nil, rec) {
		rec.Close() //nolint:errcheck // racing arm loses; nothing written yet
		return nil, errors.New("vaq: flight recorder already armed")
	}
	return rec, nil
}

// DisableFlightRecorder disarms the flight recorder, flushing pending
// alert-triggered bundles first, and returns the last write error. No-op
// when none is armed; the workload capture stays attached.
func (x *Index) DisableFlightRecorder() error {
	rec := x.flight.Swap(nil)
	return rec.Close()
}

// FlightRecorder returns the armed recorder, or nil.
func (x *Index) FlightRecorder() *bundle.Recorder { return x.flight.Load() }
