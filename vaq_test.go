package vaq

import (
	"math"
	"math/rand"
	"testing"
)

func genData(rng *rand.Rand, n, d int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		row := make([]float32, d)
		for j := 0; j < d; j++ {
			scale := math.Pow(float64(j+1), -1)
			row[j] = float32((float64(rng.Intn(3)-1)*2 + rng.NormFloat64()*0.3) * scale)
		}
		out[i] = row
	}
	return out
}

func TestBuildAndSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := genData(rng, 1500, 32)
	ix, err := Build(data, Config{NumSubspaces: 8, Budget: 64, Seed: 1, TIClusters: 30})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1500 || ix.Dim() != 32 {
		t.Fatalf("shape %d %d", ix.Len(), ix.Dim())
	}
	res, err := ix.Search(data[7], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("results %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
	stats := ix.Stats()
	if stats.N != 1500 || stats.Dim != 32 || len(stats.BitsPerSubspace) != 8 {
		t.Fatalf("stats %+v", stats)
	}
	sum := 0
	for _, b := range stats.BitsPerSubspace {
		sum += b
	}
	if sum != 64 {
		t.Fatalf("bits sum %d", sum)
	}
	if stats.CodeBytes != (64*1500+7)/8 {
		t.Fatalf("code bytes %d", stats.CodeBytes)
	}
	if stats.TIClusters != 30 {
		t.Fatalf("clusters %d", stats.TIClusters)
	}
	var varSum float64
	for _, v := range stats.SubspaceVariances {
		varSum += v
	}
	if math.Abs(varSum-1) > 1e-6 {
		t.Fatalf("subspace variances sum to %v", varSum)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Config{NumSubspaces: 2, Budget: 8}); err == nil {
		t.Fatal("empty data must fail")
	}
	if _, err := Build([][]float32{{1, 2}, {1}}, Config{NumSubspaces: 1, Budget: 8}); err == nil {
		t.Fatal("ragged rows must fail")
	}
	rng := rand.New(rand.NewSource(2))
	data := genData(rng, 50, 8)
	if _, err := Build(data, Config{NumSubspaces: 0, Budget: 8}); err == nil {
		t.Fatal("m=0 must fail")
	}
}

func TestBuildWithTrainingSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := genData(rng, 500, 16)
	data := genData(rng, 1000, 16)
	ix, err := BuildWithTrainingSet(train, data, Config{NumSubspaces: 4, Budget: 32, Seed: 3, TIClusters: 15})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1000 {
		t.Fatalf("len %d", ix.Len())
	}
	if _, err := BuildWithTrainingSet([][]float32{{1}, {1, 2}}, data, Config{}); err == nil {
		t.Fatal("ragged train must fail")
	}
	if _, err := BuildWithTrainingSet(train, [][]float32{{1}, {1, 2}}, Config{}); err == nil {
		t.Fatal("ragged data must fail")
	}
}

func TestBuildFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, d := 600, 16
	flat := make([]float32, n*d)
	for i := range flat {
		flat[i] = float32(rng.NormFloat64())
	}
	ix, err := BuildFlat(flat, n, d, Config{NumSubspaces: 4, Budget: 16, Seed: 4, TIClusters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != n {
		t.Fatalf("len %d", ix.Len())
	}
	if _, err := BuildFlat(flat, n, d+1, Config{}); err == nil {
		t.Fatal("bad n*d must fail")
	}
	if _, err := BuildFlat(flat, 0, 0, Config{}); err == nil {
		t.Fatal("zero shape must fail")
	}
}

func TestSearchWithOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := genData(rng, 1000, 16)
	ix, err := Build(data, Config{NumSubspaces: 4, Budget: 32, Seed: 5, TIClusters: 25})
	if err != nil {
		t.Fatal(err)
	}
	q := data[3]
	full, err := ix.SearchWith(q, 5, SearchOptions{Mode: ModeHeap})
	if err != nil {
		t.Fatal(err)
	}
	tiea, err := ix.SearchWith(q, 5, SearchOptions{Mode: ModeTIEA, VisitFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if math.Abs(float64(full[i].Dist-tiea[i].Dist)) > 1e-5 {
			t.Fatalf("modes disagree at %d: %v vs %v", i, full[i], tiea[i])
		}
	}
	if _, err := ix.SearchWith(make([]float32, 3), 5, SearchOptions{}); err == nil {
		t.Fatal("bad dim must fail")
	}
}

func TestSearcherReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := genData(rng, 500, 16)
	ix, err := Build(data, Config{NumSubspaces: 4, Budget: 24, Seed: 6, TIClusters: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := ix.NewSearcher()
	for trial := 0; trial < 5; trial++ {
		q := data[rng.Intn(500)]
		a, err := s.Search(q, 5, SearchOptions{VisitFrac: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ix.SearchWith(q, 5, SearchOptions{VisitFrac: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("searcher disagrees: %v vs %v", a[i], b[i])
			}
		}
	}
	if _, err := s.Search(make([]float32, 2), 3, SearchOptions{}); err == nil {
		t.Fatal("bad dim must fail")
	}
}

func TestSelfRecallPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := genData(rng, 2000, 32)
	ix, err := Build(data, Config{NumSubspaces: 8, Budget: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for trial := 0; trial < 20; trial++ {
		qi := rng.Intn(2000)
		res, err := ix.SearchWith(data[qi], 10, SearchOptions{VisitFrac: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.ID == qi {
				hits++
				break
			}
		}
	}
	if hits < 15 {
		t.Fatalf("self recall %d/20", hits)
	}
}
