// Command vaqdiag computes and prints the index-quality IndexReport for a
// VAQ index: per-subspace variance vs. allocated bits, quantization MSE
// and its share of subspace energy, codeword-utilization entropy and dead
// counts, and triangle-inequality cluster balance (DESIGN.md §7).
//
// Usage:
//
//	datagen -name SALD -n 20000 -nq 50 -out sald.vaqd
//	vaqdiag -data sald.vaqd                      # build, then report (text)
//	vaqdiag -data sald.vaqd -json                # machine-readable report
//	vaqdiag -index index.vaq                     # report on a serialized index
//	vaqdiag -data sald.vaqd -json -validate      # CI: exit 1 on inconsistency
//	vaqdiag -bundle bundles/bundle-000001-vaq.skew   # inspect one incident bundle
//	vaqdiag -bundle bundles -json                # validate every bundle under a dir
//
// -bundle switches the command into incident-bundle mode: the argument is
// either one bundle directory (holding a manifest.json) or a directory of
// bundles (as written by the flight recorder under -bundle-dir), and every
// selected bundle is integrity-checked end to end — manifest version,
// per-file sizes and sha256s, JSON well-formedness, the history.json
// metrics-history dump (schema version, monotonic timestamps, well-formed
// downsampled buckets), workload-log decode and record count. Valid
// bundles print a per-series trend summary from their history dump in
// text mode. Exit 1 when any bundle fails; -json emits the validated
// manifests.
//
// An index loaded with -index reports utilization and balance only: the
// distortion baseline is runtime-only state, so its report is Partial.
// -validate cross-checks the report's internal invariants (occupancy
// histograms sum to the dictionary size, dead counts match, cluster sizes
// account for every vector) and exits nonzero when any fail, which makes
// the command double as a CI smoke check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"vaq/internal/bundle"
	"vaq/internal/core"
	"vaq/internal/dataset"
	"vaq/internal/diag"
	"vaq/internal/history"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "dataset file from cmd/datagen: build an index, then diagnose it")
		indexPath = flag.String("index", "", "serialized index file (from WriteTo): diagnose without rebuilding")
		budget    = flag.Int("budget", 256, "bit budget per vector (with -data)")
		subspaces = flag.Int("subspaces", 32, "number of subspaces (with -data)")
		minBits   = flag.Int("minbits", 1, "minimum bits per subspace (with -data)")
		maxBits   = flag.Int("maxbits", 13, "maximum bits per subspace (with -data)")
		seed      = flag.Int64("seed", 42, "build seed (with -data)")
		bundleArg = flag.String("bundle", "", "incident bundle directory (or a directory of them, as written by vaqsearch -bundle-dir): validate and print instead of diagnosing an index")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON instead of text")
		validate  = flag.Bool("validate", false, "check the report's internal invariants; exit 1 on any failure")
	)
	flag.Parse()
	if *bundleArg != "" {
		os.Exit(runBundle(*bundleArg, *jsonOut))
	}
	if (*dataPath == "") == (*indexPath == "") {
		fmt.Fprintln(os.Stderr, "vaqdiag: exactly one of -data or -index is required")
		os.Exit(2)
	}

	var (
		ix  *core.Index
		err error
	)
	if *dataPath != "" {
		var ds *dataset.Dataset
		ds, err = dataset.Load(*dataPath)
		if err == nil {
			ix, err = core.Build(ds.Train, ds.Base, core.Config{
				NumSubspaces: *subspaces,
				Budget:       *budget,
				MinBits:      *minBits,
				MaxBits:      *maxBits,
				Seed:         *seed,
			})
		}
	} else {
		var f *os.File
		f, err = os.Open(*indexPath)
		if err == nil {
			ix, err = core.Read(f)
			f.Close()
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vaqdiag: %v\n", err)
		os.Exit(1)
	}

	rep := ix.Diagnose()
	if *jsonOut {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "vaqdiag: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(b, '\n'))
	} else if err := diag.WriteText(os.Stdout, rep); err != nil {
		fmt.Fprintf(os.Stderr, "vaqdiag: %v\n", err)
		os.Exit(1)
	}
	if *validate {
		problems := validateReport(rep)
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "vaqdiag: INVALID: %s\n", p)
		}
		if len(problems) > 0 {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "vaqdiag: report valid")
	}
}

// runBundle is the -bundle mode: validate one incident bundle, or every
// bundle under a directory of them, and print each (text or JSON). Returns
// the process exit code: 0 all valid, 1 any invalid or none found.
func runBundle(path string, jsonOut bool) int {
	// A directory holding a manifest.json is one bundle; anything else is
	// treated as a root of bundle directories.
	var dirs []string
	if _, err := os.Stat(filepath.Join(path, bundle.ManifestName)); err == nil {
		dirs = []string{path}
	} else {
		mans, err := bundle.List(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vaqdiag: %v\n", err)
			return 1
		}
		for _, m := range mans {
			dirs = append(dirs, m.Dir)
		}
		if len(dirs) == 0 {
			fmt.Fprintf(os.Stderr, "vaqdiag: no incident bundles under %s\n", path)
			return 1
		}
	}
	var valid []*bundle.Manifest
	bad := 0
	for _, dir := range dirs {
		man, err := bundle.Validate(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vaqdiag: INVALID: %v\n", err)
			bad++
			continue
		}
		valid = append(valid, man)
		if !jsonOut {
			man.Fprint(os.Stdout)
			if err := printHistoryTrends(dir); err != nil {
				fmt.Fprintf(os.Stderr, "vaqdiag: INVALID: %s: %v\n", dir, err)
				bad++
			}
		}
	}
	if jsonOut {
		b, err := json.MarshalIndent(valid, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "vaqdiag: %v\n", err)
			return 1
		}
		os.Stdout.Write(append(b, '\n'))
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "vaqdiag: %d of %d bundle(s) invalid\n", bad, len(dirs))
		return 1
	}
	fmt.Fprintf(os.Stderr, "vaqdiag: %d bundle(s) valid\n", len(valid))
	return 0
}

// printHistoryTrends prints the per-series trend summary of a bundle's
// history.json member, when present. Validate has already checked the
// member's hash and internal invariants (schema version, monotonic
// timestamps, well-formed buckets); any error here is real corruption.
func printHistoryTrends(dir string) error {
	b, err := os.ReadFile(filepath.Join(dir, "history.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil // pre-v2 bundle, or no metrics at capture time
		}
		return err
	}
	var d history.Dump
	if err := json.Unmarshal(b, &d); err != nil {
		return fmt.Errorf("history.json: %w", err)
	}
	if err := history.ValidateDump(&d); err != nil {
		return fmt.Errorf("history.json: %w", err)
	}
	fmt.Printf("  history: %d sample(s) at %s intervals\n",
		d.Samples, time.Duration(d.IntervalMs)*time.Millisecond)
	history.WriteTrends(os.Stdout, &d)
	return nil
}

// validateReport cross-checks the invariants every well-formed IndexReport
// must satisfy, regardless of dataset or config. Returns one message per
// violation.
func validateReport(r *diag.Report) []string {
	var bad []string
	fail := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }
	if r.N < 0 {
		fail("negative N %d", r.N)
	}
	if len(r.Subspaces) == 0 {
		fail("no subspaces")
	}
	if r.ProjectedDim <= 0 {
		fail("non-positive projected dim %d", r.ProjectedDim)
	}
	if r.Partial && r.MSESource != "" {
		fail("partial report claims MSE source %q", r.MSESource)
	}
	if !r.Partial && r.MSESource == "" {
		fail("non-partial report without an MSE source")
	}
	deadTotal, dims := 0, 0
	var mseSum float64
	for _, sr := range r.Subspaces {
		deadTotal += sr.DeadCodewords
		dims += sr.Dims
		mseSum += sr.MSE
		if sr.Entries != 1<<sr.Bits {
			fail("subspace %d: %d entries for %d bits", sr.Index, sr.Entries, sr.Bits)
		}
		if len(sr.OccupancyHist) != diag.OccupancyBuckets {
			fail("subspace %d: occupancy histogram has %d buckets, want %d",
				sr.Index, len(sr.OccupancyHist), diag.OccupancyBuckets)
			continue
		}
		histSum := 0
		for _, c := range sr.OccupancyHist {
			histSum += c
		}
		if histSum != sr.Entries {
			fail("subspace %d: occupancy histogram sums to %d, want %d entries",
				sr.Index, histSum, sr.Entries)
		}
		if sr.OccupancyHist[0] != sr.DeadCodewords {
			fail("subspace %d: dead bucket %d != dead codewords %d",
				sr.Index, sr.OccupancyHist[0], sr.DeadCodewords)
		}
		if sr.MaxCodewordShare < 0 || sr.MaxCodewordShare > 1 {
			fail("subspace %d: max codeword share %g outside [0,1]", sr.Index, sr.MaxCodewordShare)
		}
		if sr.EntropyUtilization < 0 || sr.EntropyUtilization > 1+1e-9 {
			fail("subspace %d: entropy utilization %g outside [0,1]", sr.Index, sr.EntropyUtilization)
		}
		if sr.MSE < 0 || sr.Variance < 0 || sr.MSEShare < 0 {
			fail("subspace %d: negative distortion (mse %g, variance %g, share %g)",
				sr.Index, sr.MSE, sr.Variance, sr.MSEShare)
		}
	}
	if deadTotal != r.DeadCodewordsTotal {
		fail("dead codewords total %d != per-subspace sum %d", r.DeadCodewordsTotal, deadTotal)
	}
	if dims != r.ProjectedDim {
		fail("subspace dims sum to %d, want projected dim %d", dims, r.ProjectedDim)
	}
	if !r.Partial && !closeEnough(mseSum, r.TotalMSE) {
		fail("total MSE %g != per-subspace sum %g", r.TotalMSE, mseSum)
	}
	if r.TI.Clusters > 0 {
		// Every encoded vector lives in exactly one cluster, so the mean
		// size times the cluster count must reconstruct N exactly.
		if total := r.TI.MeanSize * float64(r.TI.Clusters); math.Abs(total-float64(r.N)) > 1e-6*float64(r.N)+1e-6 {
			fail("TI cluster sizes account for %.1f vectors, want %d", total, r.N)
		}
		if r.TI.MinSize > r.TI.MaxSize {
			fail("TI min size %d > max size %d", r.TI.MinSize, r.TI.MaxSize)
		}
		if r.TI.Gini < 0 || r.TI.Gini > 1 {
			fail("TI gini %g outside [0,1]", r.TI.Gini)
		}
	}
	if r.Drift != nil && r.Drift.Ratio < 0 {
		fail("negative drift ratio %g", r.Drift.Ratio)
	}
	return bad
}

// closeEnough compares floats accumulated in different orders.
func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(math.Abs(a)+math.Abs(b))+1e-12
}
