package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// TopKEig computes the k largest-magnitude eigenpairs of the symmetric
// matrix a by subspace (block power) iteration with Rayleigh-Ritz
// extraction. The paper (§III-B) notes that for large d, sketching-style
// methods replace the full O(d³) eigendecomposition; this is that path:
// each iteration costs O(d²·k) and a handful of iterations suffice when
// the spectrum decays — exactly the data regime VAQ targets.
func TopKEig(a *Dense, k, iters int, seed int64) (*EigResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: TopKEig needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	d := a.Rows
	if k < 1 || k > d {
		return nil, fmt.Errorf("linalg: TopKEig k=%d out of range [1,%d]", k, d)
	}
	if iters <= 0 {
		iters = 30
	}
	rng := rand.New(rand.NewSource(seed))
	// Random start block, orthonormalized.
	q := NewDense(d, k)
	for i := range q.Data {
		q.Data[i] = rng.NormFloat64()
	}
	orthonormalizeColumns(q)
	for it := 0; it < iters; it++ {
		aq, err := a.Mul(q)
		if err != nil {
			return nil, err
		}
		q = aq
		orthonormalizeColumns(q)
	}
	// Rayleigh-Ritz: B = Qᵀ A Q, eigendecompose, rotate.
	aq, err := a.Mul(q)
	if err != nil {
		return nil, err
	}
	b, err := q.T().Mul(aq)
	if err != nil {
		return nil, err
	}
	small, err := SymEig(b, EigAuto)
	if err != nil {
		return nil, err
	}
	vecs, err := q.Mul(small.Vectors)
	if err != nil {
		return nil, err
	}
	return &EigResult{Values: small.Values, Vectors: vecs}, nil
}

// orthonormalizeColumns runs modified Gram-Schmidt on the columns of q in
// place. Columns that collapse numerically are replaced by fresh canonical
// directions orthogonalized against the previous ones.
func orthonormalizeColumns(q *Dense) {
	d, k := q.Rows, q.Cols
	for j := 0; j < k; j++ {
		for prev := 0; prev < j; prev++ {
			var dot float64
			for i := 0; i < d; i++ {
				dot += q.At(i, j) * q.At(i, prev)
			}
			for i := 0; i < d; i++ {
				q.Set(i, j, q.At(i, j)-dot*q.At(i, prev))
			}
		}
		var norm float64
		for i := 0; i < d; i++ {
			norm += q.At(i, j) * q.At(i, j)
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			fillOrthonormalColumn(q, j)
			continue
		}
		inv := 1 / norm
		for i := 0; i < d; i++ {
			q.Set(i, j, q.At(i, j)*inv)
		}
	}
}
