package isax

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"vaq/internal/dataset"
	"vaq/internal/eval"
	"vaq/internal/vec"
)

func TestNormalQuantile(t *testing.T) {
	// Known values.
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.84134, 0.99998}, // ~1
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 1e-3 {
			t.Fatalf("quantile(%v) = %v want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(normalQuantile(0)) || !math.IsNaN(normalQuantile(1)) {
		t.Fatal("quantile at 0/1 must be NaN")
	}
}

func TestBreakpointsNested(t *testing.T) {
	// Breakpoints at cardinality b are a subset of those at b+1 — the
	// property that makes iSAX words refinable.
	for b := 1; b < maxCardBits; b++ {
		for _, v := range breakpoints[b] {
			found := false
			for _, w := range breakpoints[b+1] {
				if math.Abs(v-w) < 1e-9 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("breakpoint %v at card %d missing at card %d", v, b, b+1)
			}
		}
	}
}

func TestSymbolPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		v := rng.NormFloat64() * 2
		for b := uint8(1); b < maxCardBits; b++ {
			s1 := symbol(v, b)
			s2 := symbol(v, b+1)
			if s2>>1 != s1 {
				t.Fatalf("prefix violated: v=%v card %d sym %d, card %d sym %d", v, b, s1, b+1, s2)
			}
		}
	}
}

func TestComputePAA(t *testing.T) {
	x := []float32{1, 1, 3, 3, 5, 5, 7, 7}
	out := make([]float32, 4)
	computePAA(x, out)
	want := []float32{1, 3, 5, 7}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("paa %v want %v", out, want)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	x := vec.NewMatrix(10, 32)
	if _, err := Build(vec.NewMatrix(0, 32), Config{Segments: 8}); err == nil {
		t.Fatal("empty must fail")
	}
	if _, err := Build(x, Config{Segments: 0}); err == nil {
		t.Fatal("segments=0 must fail")
	}
	if _, err := Build(x, Config{Segments: 64}); err == nil {
		t.Fatal("segments > length must fail")
	}
	if _, err := Build(vec.NewMatrix(10, 100), Config{Segments: 17}); err == nil {
		t.Fatal("segments > 16 must fail")
	}
}

func TestExactSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := dataset.RandomWalk(rng, 1200, 64, 0.5)
	ix, err := Build(x, Config{Segments: 8, LeafCapacity: 40})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1200 {
		t.Fatalf("len %d", ix.Len())
	}
	queries := dataset.NoisyQueries(rng, x, 10, 0.05, 0.2)
	gt, _ := eval.GroundTruth(x, queries, 5)
	for qi := 0; qi < queries.Rows; qi++ {
		res, err := ix.SearchEpsilon(queries.Row(qi), 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := eval.IDs(res)
		want := gt[qi]
		sort.Ints(got)
		w := append([]int(nil), want...)
		sort.Ints(w)
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("query %d: exact search %v != truth %v", qi, got, w)
			}
		}
	}
}

func TestApproxRecallGrowsWithLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := dataset.RandomWalk(rng, 2000, 64, 0.4)
	ix, err := Build(x, Config{Segments: 8, LeafCapacity: 50})
	if err != nil {
		t.Fatal(err)
	}
	if ix.LeafCount() < 10 {
		t.Fatalf("tree barely split: %d leaves", ix.LeafCount())
	}
	queries := dataset.NoisyQueries(rng, x, 15, 0.05, 0.3)
	gt, _ := eval.GroundTruth(x, queries, 10)
	recallAt := func(leaves int) float64 {
		results := make([][]int, queries.Rows)
		for qi := 0; qi < queries.Rows; qi++ {
			res, _ := ix.SearchApprox(queries.Row(qi), 10, leaves)
			results[qi] = eval.IDs(res)
		}
		return eval.Recall(results, gt, 10)
	}
	r1, rAll := recallAt(1), recallAt(ix.LeafCount())
	if rAll < 0.999 {
		t.Fatalf("visiting all leaves must be exact: recall %v", rAll)
	}
	if r1 > rAll+1e-9 {
		t.Fatalf("recall ordering broken: 1 leaf %v vs all %v", r1, rAll)
	}
}

func TestEpsilonTradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := dataset.RandomWalk(rng, 1500, 64, 0.6)
	ix, _ := Build(x, Config{Segments: 8, LeafCapacity: 40})
	queries := dataset.NoisyQueries(rng, x, 10, 0.05, 0.2)
	gt, _ := eval.GroundTruth(x, queries, 10)
	recallAt := func(eps float64) float64 {
		results := make([][]int, queries.Rows)
		for qi := 0; qi < queries.Rows; qi++ {
			res, err := ix.SearchEpsilon(queries.Row(qi), 10, eps)
			if err != nil {
				t.Fatal(err)
			}
			results[qi] = eval.IDs(res)
		}
		return eval.Recall(results, gt, 10)
	}
	exact := recallAt(0)
	if exact < 0.999 {
		t.Fatalf("epsilon=0 must be exact, recall %v", exact)
	}
	loose := recallAt(2.0)
	if loose > exact+1e-9 {
		t.Fatalf("loose epsilon cannot beat exact: %v vs %v", loose, exact)
	}
	if _, err := ix.SearchEpsilon(queries.Row(0), 5, -1); err == nil {
		t.Fatal("negative epsilon must fail")
	}
}

func TestSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := dataset.RandomWalk(rng, 100, 32, 0.5)
	ix, _ := Build(x, Config{Segments: 8, LeafCapacity: 20})
	if _, err := ix.SearchApprox(make([]float32, 3), 5, 1); err == nil {
		t.Fatal("bad query length must fail")
	}
	if _, err := ix.SearchApprox(x.Row(0), 0, 1); err == nil {
		t.Fatal("k=0 must fail")
	}
}

func TestMinDistIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := dataset.RandomWalk(rng, 500, 64, 0.5)
	ix, _ := Build(x, Config{Segments: 8, LeafCapacity: 30})
	q := dataset.NoisyQueries(rng, x, 1, 0.1, 0.1).Row(0)
	qPaa := make([]float32, ix.segments)
	computePAA(q, qPaa)
	for _, lf := range ix.collectLeaves(qPaa) {
		for _, id := range lf.nd.members {
			true_ := vec.SquaredL2(q, x.Row(int(id)))
			if lf.lb > true_+1e-3 {
				t.Fatalf("MINDIST %v exceeds true distance %v for member %d", lf.lb, true_, id)
			}
		}
	}
}
