package quantizer

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"vaq/internal/kmeans"
	"vaq/internal/vec"
)

// Codebooks is a set of per-subspace dictionaries. Books[i] is a
// (2^bits[i]) x Lengths[i] centroid matrix; sizes may differ per subspace
// (that is VAQ's "variable-sized dictionaries", §III-D; PQ/OPQ use equal
// sizes).
type Codebooks struct {
	Sub   Subspaces
	Bits  []int
	Books []*vec.Matrix
}

// TrainConfig controls codebook training.
type TrainConfig struct {
	Seed     int64
	MaxIter  int
	Parallel bool
	// HierarchicalThreshold: subspace dictionaries larger than this are
	// trained hierarchically (paper §III-D uses 2^10). 0 disables.
	HierarchicalThreshold int
}

// TrainCodebooks learns one k-means dictionary per subspace over data laid
// out according to sub, with 2^bits[i] centroids in subspace i.
func TrainCodebooks(data *vec.Matrix, sub Subspaces, bits []int, cfg TrainConfig) (*Codebooks, error) {
	m := sub.M()
	if len(bits) != m {
		return nil, fmt.Errorf("quantizer: %d bit entries for %d subspaces", len(bits), m)
	}
	if sub.Dim() != data.Cols {
		return nil, fmt.Errorf("quantizer: subspaces cover %d dims, data has %d", sub.Dim(), data.Cols)
	}
	if data.Rows == 0 {
		return nil, errors.New("quantizer: empty training data")
	}
	for i, b := range bits {
		if b < 1 || b > 16 {
			return nil, fmt.Errorf("quantizer: subspace %d bits=%d out of range [1,16]", i, b)
		}
	}
	cb := &Codebooks{Sub: sub, Bits: append([]int(nil), bits...), Books: make([]*vec.Matrix, m)}

	type job struct{ i int }
	var wg sync.WaitGroup
	jobs := make(chan job)
	var mu sync.Mutex
	var firstErr error
	workers := runtime.GOMAXPROCS(0)
	if !cfg.Parallel || workers > m {
		workers = 1
		if cfg.Parallel && m > 1 {
			workers = m
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				i := j.i
				subData := data.SelectColumnsRange(sub.Offsets[i], sub.Offsets[i]+sub.Lengths[i])
				res, err := kmeans.Train(subData, kmeans.Config{
					K:                     1 << bits[i],
					Seed:                  cfg.Seed + int64(i)*7919,
					MaxIter:               cfg.MaxIter,
					Parallel:              !cfg.Parallel, // parallelize inside when not across
					HierarchicalThreshold: cfg.HierarchicalThreshold,
				})
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("quantizer: subspace %d: %w", i, err)
					}
					mu.Unlock()
					continue
				}
				cb.Books[i] = res.Centroids
			}
		}()
	}
	for i := 0; i < m; i++ {
		jobs <- job{i}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return cb, nil
}

// Codes stores the encoded dataset: N vectors x M subspace indices. Indices
// are uint16 because VAQ dictionaries can exceed 256 entries (up to 13
// bits in the paper's experiments).
type Codes struct {
	N, M int
	Data []uint16
}

// NewCodes allocates code storage.
func NewCodes(n, m int) *Codes {
	return &Codes{N: n, M: m, Data: make([]uint16, n*m)}
}

// Row returns the code word of vector i.
func (c *Codes) Row(i int) []uint16 { return c.Data[i*c.M : (i+1)*c.M : (i+1)*c.M] }

// Bytes reports the storage footprint of the codes in bytes, counting the
// packed bit width rather than the in-memory uint16 layout (for budget
// accounting in experiments).
func (c *Codes) Bytes(bits []int) int {
	total := 0
	for _, b := range bits {
		total += b
	}
	return (total*c.N + 7) / 8
}

// Encode maps every row of data to its nearest dictionary entry per
// subspace (paper Equation 3; Algorithm 3 lines 9-23).
func (cb *Codebooks) Encode(data *vec.Matrix, parallel bool) (*Codes, error) {
	if data.Cols != cb.Sub.Dim() {
		return nil, fmt.Errorf("quantizer: encode dimension %d, codebooks cover %d", data.Cols, cb.Sub.Dim())
	}
	codes := NewCodes(data.Rows, cb.Sub.M())
	workers := 1
	if parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > data.Rows {
		workers = data.Rows
	}
	var wg sync.WaitGroup
	chunk := (data.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > data.Rows {
			hi = data.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				cb.EncodeVec(data.Row(i), codes.Row(i))
			}
		}(lo, hi)
	}
	wg.Wait()
	return codes, nil
}

// EncodeVec encodes a single full-dimension vector into out (length M).
func (cb *Codebooks) EncodeVec(v []float32, out []uint16) {
	for s := 0; s < cb.Sub.M(); s++ {
		sv := cb.Sub.Of(v, s)
		out[s] = uint16(kmeans.AssignNearest(cb.Books[s], sv))
	}
}

// Decode reconstructs the full-dimension approximation of a code word.
func (cb *Codebooks) Decode(code []uint16, out []float32) {
	for s := 0; s < cb.Sub.M(); s++ {
		copy(out[cb.Sub.Offsets[s]:cb.Sub.Offsets[s]+cb.Sub.Lengths[s]], cb.Books[s].Row(int(code[s])))
	}
}

// ReconstructionError returns the mean squared reconstruction error of the
// codes against the original data (paper Equation 2, normalized by n).
func (cb *Codebooks) ReconstructionError(data *vec.Matrix, codes *Codes) float64 {
	buf := make([]float32, data.Cols)
	var total float64
	for i := 0; i < data.Rows; i++ {
		cb.Decode(codes.Row(i), buf)
		total += float64(vec.SquaredL2(data.Row(i), buf))
	}
	if data.Rows > 0 {
		total /= float64(data.Rows)
	}
	return total
}
