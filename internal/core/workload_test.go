package core

import (
	"bytes"
	"log/slog"
	"math/rand"
	"strings"
	"testing"
	"time"

	"vaq/internal/metrics"
	"vaq/internal/workload"
)

// TestWorkloadRoundTripDeterminism is the PR's acceptance pin: capture a
// workload, replay it against the index that answered it, and every query
// must come back identical — 100% overlap@k, zero distance drift — and the
// log must re-serialize byte-for-byte.
func TestWorkloadRoundTripDeterminism(t *testing.T) {
	ix, x := observeTestIndex(t, Config{})
	cap := ix.EnableCapture(workload.Config{SampleRate: 1})
	if ix.Capture() != cap {
		t.Fatal("Capture() does not return the enabled capture")
	}
	s := ix.NewSearcher()
	const queries = 20
	for i := 0; i < queries; i++ {
		if _, err := s.Search(x.Row(i), 5, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := cap.Len(); got != queries {
		t.Fatalf("captured %d records at rate 1, want %d", got, queries)
	}
	log := cap.Snapshot()
	if log.Fingerprint != ix.ConfigFingerprint() {
		t.Fatalf("log fingerprint %q != index fingerprint %q", log.Fingerprint, ix.ConfigFingerprint())
	}
	if log.Dim != ix.Dim() {
		t.Fatalf("log dim %d != index dim %d", log.Dim, ix.Dim())
	}
	for i := range log.Records {
		if log.Records[i].Projected {
			t.Fatalf("record %d captured projected, want raw (Search path)", i)
		}
	}

	// Serialize → parse → re-serialize must be byte-identical.
	var a, b bytes.Buffer
	if _, err := log.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	back, err := workload.ReadLog(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := back.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("re-serialized log differs from the original bytes")
	}

	// Replay against the same index: exact reproduction.
	rep, diffs, err := workload.Replay(back, ix.ReplayRunner(), workload.Options{
		Thresholds: workload.Thresholds{MinOverlap: 1, MaxDistDrift: 0, DistDriftSet: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != queries {
		t.Fatalf("replayed %d queries, want %d", len(diffs), queries)
	}
	if rep.MeanOverlap != 1 || rep.WorstOverlap != 1 {
		t.Errorf("overlap: mean %v worst %v, want exactly 1", rep.MeanOverlap, rep.WorstOverlap)
	}
	if rep.MaxDistDrift != 0 {
		t.Errorf("distance drift %v on a same-index replay, want 0", rep.MaxDistDrift)
	}
	if rep.ExactMatches != queries {
		t.Errorf("exact matches %d, want %d", rep.ExactMatches, queries)
	}
	if !rep.Passed() {
		t.Errorf("same-index replay failed thresholds: %v", rep.Violations)
	}
}

// TestWorkloadReplayDivergentIndex replays a captured workload against a
// rebuild with a much smaller bit budget: answers must diverge, and the
// overlap threshold must convert that into a reported violation.
func TestWorkloadReplayDivergentIndex(t *testing.T) {
	ix, x := observeTestIndex(t, Config{})
	ix.EnableCapture(workload.Config{SampleRate: 1})
	s := ix.NewSearcher()
	for i := 0; i < 30; i++ {
		if _, err := s.Search(x.Row(i), 10, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	log := ix.Capture().Snapshot()

	// 1 bit per subspace: 2-entry dictionaries cannot reproduce the
	// 48-bit answers.
	coarse, err := Build(x, x, Config{NumSubspaces: 8, Budget: 8, MaxBits: 1, Seed: 907, TIClusters: 30})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.ConfigFingerprint() == log.Fingerprint {
		t.Fatal("coarse rebuild has the same config fingerprint")
	}
	rep, _, err := workload.Replay(log, coarse.ReplayRunner(), workload.Options{
		Thresholds: workload.Thresholds{MinOverlap: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanOverlap >= 1 {
		t.Fatalf("coarse index reproduced the workload exactly (overlap %v)", rep.MeanOverlap)
	}
	if rep.Passed() || len(rep.Violations) == 0 {
		t.Error("divergent replay passed the MinOverlap=1 gate")
	}
}

// TestWorkloadCaptureSampling checks the deterministic stride: rate 1/4
// over 40 queries captures every 4th, and DisableCapture stops recording
// without losing what is already buffered.
func TestWorkloadCaptureSampling(t *testing.T) {
	ix, x := observeTestIndex(t, Config{})
	cap := ix.EnableCapture(workload.Config{SampleRate: 0.25})
	s := ix.NewSearcher()
	for i := 0; i < 40; i++ {
		if _, err := s.Search(x.Row(i), 5, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := cap.Len(); got != 10 {
		t.Fatalf("captured %d records at rate 1/4 over 40 queries, want 10", got)
	}
	ix.DisableCapture()
	if ix.Capture() != nil {
		t.Fatal("Capture() non-nil after DisableCapture")
	}
	for i := 0; i < 8; i++ {
		if _, err := s.Search(x.Row(i), 5, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := cap.Len(); got != 10 {
		t.Fatalf("detached capture grew to %d records", got)
	}
}

// TestWorkloadCaptureProjected pins the projected-query path: searches
// entering through SearchProjected record the projected vector and flag it,
// and the replay runner routes them back through SearchProjected.
func TestWorkloadCaptureProjected(t *testing.T) {
	ix, x := observeTestIndex(t, Config{})
	ix.EnableCapture(workload.Config{SampleRate: 1})
	qz, err := ix.ProjectQuery(x.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	s := ix.NewSearcher()
	want, err := s.SearchProjected(qz, 5, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	log := ix.Capture().Snapshot()
	if len(log.Records) != 1 || !log.Records[0].Projected {
		t.Fatalf("projected search not captured as projected: %+v", log.Records)
	}
	rep, diffs, err := workload.Replay(log, ix.ReplayRunner(), workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanOverlap != 1 || diffs[0].Overlap != 1 {
		t.Errorf("projected replay overlap %v, want 1", rep.MeanOverlap)
	}
	if rep.ExactMatches != 1 || len(log.Records[0].IDs) != len(want) {
		t.Errorf("projected replay not exact: %+v", rep)
	}
}

// TestSLOBreachEventLogged mirrors TestDriftAlertOnDistributionShift for
// the SLO layer: with an impossible latency target every query violates,
// and the vaq.slo event must fire exactly once per budget-exhaustion edge,
// not once per violating query.
func TestSLOBreachEventLogged(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	rng := rand.New(rand.NewSource(907))
	x := skewedData(rng, 1600, 24, 1.2)
	ix, err := Build(x, x, Config{
		NumSubspaces: 8, Budget: 48, Seed: 907, TIClusters: 30,
		Logger: logger,
		SLO:    &metrics.SLO{LatencyTarget: time.Nanosecond, LatencyObjective: 0.9, Window: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := ix.NewSearcher()
	for i := 0; i < 25; i++ {
		if _, err := s.Search(x.Row(i), 5, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	snap := ix.Metrics().SLOSnapshot()
	if snap == nil || !snap.LatencyExhausted {
		t.Fatalf("latency budget not exhausted: %+v", snap)
	}
	if got := strings.Count(buf.String(), "vaq.slo"); got != 1 {
		t.Errorf("vaq.slo logged %d times, want exactly once (edge-triggered)\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "objective=latency") {
		t.Errorf("vaq.slo event missing objective attribute:\n%s", buf.String())
	}
}
