package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vaq/internal/metrics"
)

func mkTrace(total time.Duration) *QueryTrace {
	return &QueryTrace{Start: time.Unix(0, 0), Total: total, Mode: "ti+ea", K: 5}
}

func TestRingWrap(t *testing.T) {
	tr := New(Config{RingSize: 4, SlowThreshold: time.Hour})
	for i := 1; i <= 10; i++ {
		tr.add(mkTrace(time.Duration(i)))
	}
	if tr.Count() != 10 {
		t.Fatalf("Count = %d, want 10", tr.Count())
	}
	rec := tr.Recent()
	if len(rec) != 4 {
		t.Fatalf("Recent kept %d, want ring size 4", len(rec))
	}
	for i, qt := range rec {
		if want := uint64(7 + i); qt.Seq != want {
			t.Errorf("Recent[%d].Seq = %d, want %d (oldest first)", i, qt.Seq, want)
		}
	}
}

func TestSlowReservoir(t *testing.T) {
	tr := New(Config{RingSize: 8, SlowThreshold: 100, Exemplars: 3, Seed: 42})
	tr.add(mkTrace(50)) // below threshold: not an exemplar
	if slow, seen := tr.Slowest(); seen != 0 || len(slow) != 0 {
		t.Fatalf("sub-threshold trace entered the reservoir: %d seen, %d kept", seen, len(slow))
	}
	for i := 0; i < 50; i++ {
		tr.add(mkTrace(time.Duration(100 + i)))
	}
	slow, seen := tr.Slowest()
	if seen != 50 {
		t.Errorf("slowSeen = %d, want 50", seen)
	}
	if len(slow) != 3 {
		t.Fatalf("reservoir kept %d, want 3", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Total > slow[i-1].Total {
			t.Errorf("Slowest not worst-first: %v after %v", slow[i].Total, slow[i-1].Total)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Count() != 0 || tr.Recent() != nil {
		t.Error("nil Tracer reads must be empty")
	}
	if slow, seen := tr.Slowest(); slow != nil || seen != 0 {
		t.Error("nil Tracer Slowest must be empty")
	}
	r := tr.NewRecorder()
	if r != nil {
		t.Fatal("nil Tracer must yield a nil Recorder")
	}
	// Every Recorder method must be a no-op, not a panic.
	r.Begin(time.Millisecond)
	if r.Active() {
		t.Error("nil Recorder is Active")
	}
	if r.Clock() != 0 {
		t.Error("nil Recorder Clock != 0")
	}
	r.Add(Span{Name: SpanScan})
	r.End("ti+ea", 5, metrics.SearchRecord{})
}

func TestRecorderSpanCapAndBackdate(t *testing.T) {
	tr := New(Config{MaxSpans: 2, SlowThreshold: time.Hour})
	r := tr.NewRecorder()
	r.Begin(time.Millisecond) // projection already took 1ms
	for i := 0; i < 5; i++ {
		r.Add(Span{Name: SpanClusterScan})
	}
	r.End("ti+ea", 3, metrics.SearchRecord{Lookups: 9})
	rec := tr.Recent()
	if len(rec) != 1 {
		t.Fatalf("recorded %d traces", len(rec))
	}
	qt := rec[0]
	if len(qt.Spans) != 2 || qt.DroppedSpans != 3 {
		t.Errorf("span cap: kept %d dropped %d, want 2/3", len(qt.Spans), qt.DroppedSpans)
	}
	if qt.Total < time.Millisecond {
		t.Errorf("backdated total %v < 1ms projection", qt.Total)
	}
	if qt.Stats.Lookups != 9 || qt.Mode != "ti+ea" || qt.K != 3 {
		t.Errorf("trace metadata wrong: %+v", qt)
	}
	// The recorder is reusable: a fresh Begin clears spans and drop count.
	r.Begin(0)
	r.End("ea", 1, metrics.SearchRecord{})
	if qt := tr.Recent()[1]; len(qt.Spans) != 0 || qt.DroppedSpans != 0 {
		t.Errorf("Begin did not reset recorder: %+v", qt)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(Config{RingSize: 16, SlowThreshold: 1}) // everything is "slow"
	var wg sync.WaitGroup
	const workers, perWorker = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := tr.NewRecorder()
			for i := 0; i < perWorker; i++ {
				r.Begin(0)
				r.Add(Span{Name: SpanLUTFill})
				r.End("ti+ea", 5, metrics.SearchRecord{})
			}
		}()
	}
	done := make(chan struct{})
	go func() { // concurrent readers against the lock-free ring
		for {
			select {
			case <-done:
				return
			default:
				tr.Recent()
				tr.Slowest()
			}
		}
	}()
	wg.Wait()
	close(done)
	if tr.Count() != workers*perWorker {
		t.Fatalf("Count = %d, want %d", tr.Count(), workers*perWorker)
	}
	if _, seen := tr.Slowest(); seen != workers*perWorker {
		t.Fatalf("slowSeen = %d, want %d", seen, workers*perWorker)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	qt := &QueryTrace{
		Seq: 7, Start: time.Unix(1, 0), Total: time.Millisecond, Mode: "ti+ea", K: 5,
		Stats: metrics.SearchRecord{CodesConsidered: 10, Lookups: 30},
		Spans: []Span{
			{Name: SpanLUTFill, Start: 0, Dur: 50 * time.Microsecond},
			{Name: SpanClusterScan, Start: 60 * time.Microsecond, Dur: 200 * time.Microsecond,
				Cluster: 9, Rank: 0, Count: 4, SkippedTI: 1, Lookups: 12},
		},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*QueryTrace{qt}); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 3 { // query + 2 spans
		t.Fatalf("%d events, want 3", len(events))
	}
	top := events[0]
	if top["name"] != "query" || top["ph"] != "X" || top["dur"].(float64) != 1000 {
		t.Errorf("query event wrong: %v", top)
	}
	if top["tid"].(float64) != 7 {
		t.Errorf("tid = %v, want the query seq", top["tid"])
	}
	var scan map[string]any
	for _, ev := range events {
		if ev["name"] == SpanClusterScan {
			scan = ev
		}
	}
	if scan == nil {
		t.Fatal("cluster_scan event missing")
	}
	args := scan["args"].(map[string]any)
	if args["cluster"].(float64) != 9 || args["lookups"].(float64) != 12 {
		t.Errorf("cluster_scan args wrong: %v", args)
	}
}

// TestWriteChromeTraceShardSpans pins the scatter-gather flame layout: the
// parent query event stays on tid=seq, every shard's wait+scan pair lands
// on its own derived tid (seq<<10|shard+1), and the bound-feedback and
// merge events ride the parent lane with full pruning attribution.
func TestWriteChromeTraceShardSpans(t *testing.T) {
	qt := &QueryTrace{
		Seq: 3, Start: time.Unix(1, 0), Total: time.Millisecond, Mode: "ti+ea", K: 5,
		Spans: []Span{
			{Name: SpanShardWait, Start: 0, Dur: 10 * time.Microsecond, Shard: 0},
			{Name: SpanShardScan, Start: 10 * time.Microsecond, Dur: 400 * time.Microsecond,
				Shard: 0, Count: 20, SkippedTI: 5, AbandonedEA: 2, Lookups: 64, Hits: 4},
			{Name: SpanShardWait, Start: 0, Dur: 15 * time.Microsecond, Shard: 1},
			{Name: SpanShardScan, Start: 15 * time.Microsecond, Dur: 300 * time.Microsecond,
				Shard: 1, Count: 10, Lookups: 32, Hits: 1},
			{Name: SpanBoundFeedback, Start: 200 * time.Microsecond, Shard: 0,
				Bound: 1.25, Count: 1, SkippedTI: 7, AbandonedEA: 3},
			{Name: SpanShardMerge, Start: 420 * time.Microsecond, Dur: 30 * time.Microsecond},
		},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*QueryTrace{qt}); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 7 { // query + 6 spans
		t.Fatalf("%d events, want 7", len(events))
	}
	byName := func(name string, shard float64) map[string]any {
		for _, ev := range events {
			if ev["name"] != name {
				continue
			}
			if args, ok := ev["args"].(map[string]any); ok {
				if s, ok := args["shard"].(float64); ok && s != shard {
					continue
				}
			}
			return ev
		}
		t.Fatalf("event %s shard %v missing", name, shard)
		return nil
	}

	parentTid := events[0]["tid"].(float64)
	if parentTid != 3 {
		t.Fatalf("parent tid = %v, want seq 3", parentTid)
	}
	for shard := 0; shard < 2; shard++ {
		wantTid := float64(3<<10 | shard + 1)
		wait := byName(SpanShardWait, float64(shard))
		scan := byName(SpanShardScan, float64(shard))
		if wait["tid"].(float64) != wantTid || scan["tid"].(float64) != wantTid {
			t.Errorf("shard %d lanes: wait tid %v scan tid %v, want %v",
				shard, wait["tid"], scan["tid"], wantTid)
		}
	}
	scan0 := byName(SpanShardScan, 0)["args"].(map[string]any)
	if scan0["codes_considered"].(float64) != 20 || scan0["skipped_ti"].(float64) != 5 ||
		scan0["abandoned_ea"].(float64) != 2 || scan0["lookups"].(float64) != 64 ||
		scan0["hits"].(float64) != 4 {
		t.Errorf("shard 0 scan attribution wrong: %v", scan0)
	}
	// The feedback event rides the lane of the shard that tightened the
	// bound, so the flame shows who helped whom.
	fb := byName(SpanBoundFeedback, 0)
	if fb["tid"].(float64) != float64(3<<10|1) {
		t.Errorf("bound_feedback tid %v, want shard 0's lane %d", fb["tid"], 3<<10|1)
	}
	fbArgs := fb["args"].(map[string]any)
	if fbArgs["bound"].(float64) != 1.25 || fbArgs["downstream_shards"].(float64) != 1 ||
		fbArgs["downstream_ti_skips"].(float64) != 7 || fbArgs["downstream_ea_abandons"].(float64) != 3 {
		t.Errorf("bound_feedback args wrong: %v", fbArgs)
	}
	if merge := byName(SpanShardMerge, -1); merge["tid"].(float64) != parentTid {
		t.Errorf("shard_merge tid %v, want parent %v", merge["tid"], parentTid)
	}
}

func TestWriteTextShardSpans(t *testing.T) {
	qt := mkTrace(2 * time.Millisecond)
	qt.Seq = 4
	qt.Spans = []Span{
		{Name: SpanShardWait, Dur: time.Microsecond, Shard: 1},
		{Name: SpanShardScan, Start: time.Microsecond, Dur: 500 * time.Microsecond,
			Shard: 1, Count: 12, SkippedTI: 3, AbandonedEA: 1, Lookups: 48, Hits: 2},
		{Name: SpanBoundFeedback, Start: 100 * time.Microsecond, Shard: 1,
			Bound: 0.5, Count: 2, SkippedTI: 9, AbandonedEA: 4},
		{Name: SpanShardMerge, Start: 510 * time.Microsecond, Dur: 20 * time.Microsecond},
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, []*QueryTrace{qt}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		SpanShardWait, SpanShardMerge,
		"shard=1 considered=12 skipped=3 abandoned=1 lookups=48 hits=2",
		"shard=1 bound=0.5 downstream_shards=2 downstream_skips=9 downstream_abandons=4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
}

func TestShardSpanHelper(t *testing.T) {
	for _, name := range []string{SpanShardWait, SpanShardScan, SpanBoundFeedback} {
		if !ShardSpan(name) {
			t.Errorf("ShardSpan(%q) = false", name)
		}
	}
	// shard_merge runs on the gather side: its Shard field is meaningless.
	for _, name := range []string{SpanShardMerge, SpanScan, SpanClusterScan, SpanLUTFill} {
		if ShardSpan(name) {
			t.Errorf("ShardSpan(%q) = true", name)
		}
	}
}

func TestWriteText(t *testing.T) {
	qt := mkTrace(3 * time.Millisecond)
	qt.Seq = 2
	qt.Spans = []Span{{Name: SpanClusterRank, Dur: time.Microsecond, Count: 10}}
	qt.DroppedSpans = 4
	var buf bytes.Buffer
	if err := WriteText(&buf, []*QueryTrace{qt}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"query #2", "mode=ti+ea", SpanClusterRank, "count=10", "+4 spans dropped"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
}

func TestTracesHandler(t *testing.T) {
	tr := New(Config{RingSize: 8, SlowThreshold: 100, Seed: 9})
	tr.add(mkTrace(50))
	tr.add(mkTrace(500))
	Publish("th_test", tr)
	defer Publish("th_test", nil)
	srv := httptest.NewServer(http.HandlerFunc(handleTraces))
	defer srv.Close()

	get := func(query string) (string, *http.Response) {
		t.Helper()
		resp, err := http.Get(srv.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp
	}

	body, resp := get("?name=th_test")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(body, `tracer "th_test": 2 traces recorded`) ||
		!strings.Contains(body, "query #1") || !strings.Contains(body, "query #2") {
		t.Errorf("text dump incomplete:\n%s", body)
	}

	if _, resp := get("?name=no_such_tracer"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown tracer: status %d, want 404", resp.StatusCode)
	}

	body, resp = get("?name=th_test&format=chrome")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("chrome format content type %q", ct)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("chrome endpoint not JSON: %v", err)
	}
	if len(events) != 2 {
		t.Errorf("%d chrome events, want 2", len(events))
	}

	// slow=1 restricts to the exemplar reservoir (only the 500ns trace).
	body, _ = get("?name=th_test&slow=1")
	if !strings.Contains(body, "1 over the") || !strings.Contains(body, "query #2") ||
		strings.Contains(body, "query #1 ") {
		t.Errorf("slow filter wrong:\n%s", body)
	}

	// Unpublished names disappear.
	Publish("th_test", nil)
	if _, resp := get("?name=th_test"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unpublished tracer still served: %d", resp.StatusCode)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.RingSize != 128 || cfg.SlowThreshold != 10*time.Millisecond ||
		cfg.Exemplars != 16 || cfg.MaxSpans != 192 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	tr := New(Config{})
	if got := tr.Config(); got != cfg {
		t.Fatalf("New did not apply defaults: %+v", got)
	}
	_ = fmt.Sprintf("%v", tr.Config()) // Config must stay printable
}
