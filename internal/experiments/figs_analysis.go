package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"vaq/internal/core"
	"vaq/internal/dataset"
	"vaq/internal/eval"
	"vaq/internal/pca"
	"vaq/internal/quantizer"
	"vaq/internal/vec"
)

// RunFig3 reproduces Figure 3: one example series per class for CBF and
// SLC (as ASCII sparklines) and the percentage of variance explained by
// the first 20 principal components. Expected shape: CBF's variance is
// spread out (first 3 PCs ~ 40-60%), SLC's is concentrated (>= 85%).
func RunFig3(w io.Writer, s Scale) error {
	rng := rand.New(rand.NewSource(s.Seed))
	sets := []struct {
		name string
		data *vec.Matrix
	}{
		{"CBF", dataset.CBF(rng, 1000, 128)},
		{"SLC", dataset.SLCLike(rng, 1000, 128)},
	}
	for _, st := range sets {
		fmt.Fprintf(w, "== %s ==\n", st.name)
		for class := 0; class < 3; class++ {
			fmt.Fprintf(w, "example %d: %s\n", class, sparkline(st.data.Row(class*7)))
		}
		model, err := pca.Fit(st.data, pca.Options{})
		if err != nil {
			return err
		}
		ratios := model.ExplainedVarianceRatio()
		fmt.Fprintf(w, "%% variance in first 20 PCs:")
		var cum float64
		for i := 0; i < 20 && i < len(ratios); i++ {
			fmt.Fprintf(w, " %.1f", ratios[i]*100)
			cum += ratios[i]
		}
		fmt.Fprintf(w, "\ncumulative over 20 PCs: %.1f%% (first 3: %.1f%%)\n\n",
			cum*100, (ratios[0]+ratios[1]+ratios[2])*100)
	}
	return nil
}

// sparkline renders a series as a coarse ASCII strip.
func sparkline(x []float32) string {
	const glyphs = " .:-=+*#%@"
	mn, mx := x[0], x[0]
	for _, v := range x {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	span := mx - mn
	if span == 0 {
		span = 1
	}
	step := len(x) / 64
	if step < 1 {
		step = 1
	}
	out := make([]byte, 0, 64)
	for i := 0; i < len(x); i += step {
		level := int(float32(len(glyphs)-1) * (x[i] - mn) / span)
		out = append(out, glyphs[level])
	}
	return string(out)
}

// RunFig4 reproduces Figure 4: recall on CBF and SLC as a function of how
// many subspaces are used, comparing the three importance strategies —
// VAQ (variance-ordered, adaptive bits), OPQ (eigenvalue-allocation
// permutation, uniform bits) and PQ (random permutation of PCs, uniform
// bits). All methods work over PCA-projected data with 32 subspaces.
// Expected shape: VAQ degrades far more gracefully as subspaces are
// omitted, and dominates at every truncation level.
func RunFig4(w io.Writer, s Scale) error {
	const segs, budget, k = 32, 128, 10
	rng := rand.New(rand.NewSource(s.Seed))
	n := 2000
	if s.GalleryTrain < n {
		n = s.GalleryTrain
	}
	sets := []struct {
		name string
		data *vec.Matrix
	}{
		{"CBF", dataset.CBF(rng, n, 128)},
		{"SLC", dataset.SLCLike(rng, n, 128)},
	}
	for _, st := range sets {
		queries := dataset.NoisyQueries(rng, st.data, s.NQ, 0.05, 0.3)
		gt, err := eval.GroundTruth(st.data, queries, k)
		if err != nil {
			return err
		}
		ds := &dataset.Dataset{Name: st.name, Base: st.data, Train: st.data, Queries: queries}
		// VAQ (subspace truncation through SearchOptions.Subspaces).
		vaqIx, err := core.Build(ds.Train, ds.Base, vaqConfig(budget, segs, s.Seed))
		if err != nil {
			return err
		}
		// PQ over randomly permuted PCs and OPQ: built on projected data.
		model, err := pca.Fit(st.data, pca.Options{})
		if err != nil {
			return err
		}
		z, err := model.Project(st.data)
		if err != nil {
			return err
		}
		zq, err := model.Project(queries)
		if err != nil {
			return err
		}
		perm := rand.New(rand.NewSource(s.Seed + 1)).Perm(z.Cols)
		zPerm, err := z.PermuteColumns(perm)
		if err != nil {
			return err
		}
		zqPerm, err := zq.PermuteColumns(perm)
		if err != nil {
			return err
		}
		sub, err := quantizer.UniformSubspaces(z.Cols, segs)
		if err != nil {
			return err
		}
		bits := make([]int, segs)
		for i := range bits {
			bits[i] = budget / segs
		}
		pqCB, err := quantizer.TrainCodebooks(zPerm, sub, bits, trainCfg(s.Seed))
		if err != nil {
			return err
		}
		pqCodes, err := pqCB.Encode(zPerm, true)
		if err != nil {
			return err
		}
		// OPQ: eigenvalue-allocation permutation of PCs.
		opqPerm, err := quantizer.EigenvalueAllocation(model.Eigenvalues, segs)
		if err != nil {
			return err
		}
		zOPQ, err := z.PermuteColumns(opqPerm)
		if err != nil {
			return err
		}
		zqOPQ, err := zq.PermuteColumns(opqPerm)
		if err != nil {
			return err
		}
		opqCB, err := quantizer.TrainCodebooks(zOPQ, sub, bits, trainCfg(s.Seed))
		if err != nil {
			return err
		}
		opqCodes, err := opqCB.Encode(zOPQ, true)
		if err != nil {
			return err
		}
		pqOrder := subspacesByVariance(zPerm, sub)
		opqOrder := subspacesByVariance(zOPQ, sub)

		fmt.Fprintf(w, "== %s (n=%d, %d subspaces, %d bits, recall@%d vs subspaces used) ==\n",
			st.name, n, segs, budget, k)
		fmt.Fprintf(w, "%10s %8s %8s %8s\n", "subspaces", "VAQ", "OPQ", "PQ")
		for _, used := range []int{4, 8, 16, 24, 32} {
			vaqRes := make([][]int, queries.Rows)
			pqRes := make([][]int, queries.Rows)
			opqRes := make([][]int, queries.Rows)
			searcher := vaqIx.NewSearcher()
			for qi := 0; qi < queries.Rows; qi++ {
				r, err := searcher.Search(queries.Row(qi), k, core.SearchOptions{
					Mode: core.ModeHeap, Subspaces: used,
				})
				if err != nil {
					return err
				}
				vaqRes[qi] = eval.IDs(r)
				pqRes[qi] = eval.IDs(scanSubset(pqCodes, pqCB.BuildLUT(zqPerm.Row(qi)), pqOrder[:used], k))
				opqRes[qi] = eval.IDs(scanSubset(opqCodes, opqCB.BuildLUT(zqOPQ.Row(qi)), opqOrder[:used], k))
			}
			fmt.Fprintf(w, "%10d %8.4f %8.4f %8.4f\n", used,
				eval.Recall(vaqRes, gt, k), eval.Recall(opqRes, gt, k), eval.Recall(pqRes, gt, k))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// subspacesByVariance orders subspace indices by descending share of the
// data variance — the "score" used to decide which subspaces to keep when
// omitting (paper Figure 4).
func subspacesByVariance(z *vec.Matrix, sub quantizer.Subspaces) []int {
	vars := vec.ColumnVariances(z)
	scores := make([]float64, sub.M())
	for sI := 0; sI < sub.M(); sI++ {
		for j := sub.Offsets[sI]; j < sub.Offsets[sI]+sub.Lengths[sI]; j++ {
			scores[sI] += vars[j]
		}
	}
	order := make([]int, sub.M())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	return order
}

// scanSubset is the ADC scan restricted to a subset of subspaces.
func scanSubset(codes *quantizer.Codes, lut *quantizer.LUT, subset []int, k int) []vec.Neighbor {
	tk := vec.NewTopK(k)
	m := codes.M
	for i := 0; i < codes.N; i++ {
		row := codes.Data[i*m : (i+1)*m]
		var d float32
		for _, sI := range subset {
			d += lut.Dist[lut.Offsets[sI]+int(row[sI])]
		}
		tk.Push(i, d)
	}
	return tk.Results()
}

// RunTab1 prints Table I, the qualitative specification matrix.
func RunTab1(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "Table I: quantization methods vs four critical specifications (w.r.t. OPQ)")
	fmt.Fprintf(w, "%-18s %10s %11s %9s %9s\n", "method", "no-storage", "no-encoding", "speedup", "recall+")
	rows := []struct {
		name                             string
		storage, encoding, speed, recall string
	}{
		{"PQ", "yes", "yes", "-", "-"},
		{"TC", "yes", "yes", "yes", "-"},
		{"ITQ-LSH", "yes", "yes", "yes", "-"},
		{"Bolt", "yes", "yes", "yes", "-"},
		{"PQFS", "yes", "yes", "yes", "-"},
		{"PQ/OPQ+IMI", "-", "-", "yes", "-"},
		{"LOPQ", "-", "-", "yes", "-"},
		{"AQ/CQ", "-", "-", "-", "yes"},
		{"KSSQ", "-", "-", "-", "yes"},
		{"VAQ (this work)", "yes", "yes", "yes", "yes"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %10s %11s %9s %9s\n", r.name, r.storage, r.encoding, r.speed, r.recall)
	}
	return nil
}

// galleryScores holds per-dataset scores for the 8 method/budget combos of
// Table II and Figure 10.
type galleryScores struct {
	methodNames []string
	recall5     [][]float64 // [dataset][method]
	recall10    [][]float64
	map5        [][]float64
	map10       [][]float64
}

var galleryCache = map[Scale]*galleryScores{}

// computeGalleryScores evaluates Bolt/PQ/OPQ/VAQ at 64-bit/16-subspace and
// 128-bit/32-subspace budgets over the medium-scale gallery.
func computeGalleryScores(s Scale) (*galleryScores, error) {
	if cached, ok := galleryCache[s]; ok {
		return cached, nil
	}
	gallery := dataset.UCRGallery(dataset.GalleryOptions{
		Count: s.GalleryCount, Seed: s.Seed, MaxTrain: s.GalleryTrain, MaxDim: 256, Queries: 30,
	})
	type combo struct {
		name         string
		budget, segs int
		kind         string
	}
	combos := []combo{
		{"Bolt-64", 64, 16, "bolt"}, {"PQ-64", 64, 16, "pq"},
		{"OPQ-64", 64, 16, "opq"}, {"VAQ-64", 64, 16, "vaq"},
		{"Bolt-128", 128, 32, "bolt"}, {"PQ-128", 128, 32, "pq"},
		{"OPQ-128", 128, 32, "opq"}, {"VAQ-128", 128, 32, "vaq"},
	}
	out := &galleryScores{}
	for _, c := range combos {
		out.methodNames = append(out.methodNames, c.name)
	}
	for _, ds := range gallery {
		gt, err := eval.GroundTruth(ds.Base, ds.Queries, 10)
		if err != nil {
			return nil, err
		}
		r5 := make([]float64, len(combos))
		r10 := make([]float64, len(combos))
		m5 := make([]float64, len(combos))
		m10 := make([]float64, len(combos))
		for ci, c := range combos {
			var m *method
			var err error
			switch c.kind {
			case "bolt":
				m, err = buildBolt(c.name, ds, c.budget, s.Seed)
			case "pq":
				m, err = buildPQ(c.name, ds, c.segs, c.budget/c.segs, s.Seed)
			case "opq":
				m, err = buildOPQ(c.name, ds, c.segs, c.budget/c.segs, s.Seed)
			default:
				m, err = buildVAQ(c.name, ds, vaqConfig(c.budget, c.segs, s.Seed),
					core.SearchOptions{VisitFrac: 1.0})
			}
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", c.name, ds.Name, err)
			}
			results, _, err := runQueries(m, ds.Queries, 10)
			if err != nil {
				return nil, err
			}
			r5[ci] = eval.Recall(results, gt, 5)
			r10[ci] = eval.Recall(results, gt, 10)
			m5[ci] = eval.MAP(results, gt, 5)
			m10[ci] = eval.MAP(results, gt, 10)
		}
		out.recall5 = append(out.recall5, r5)
		out.recall10 = append(out.recall10, r10)
		out.map5 = append(out.map5, m5)
		out.map10 = append(out.map10, m10)
	}
	galleryCache[s] = out
	return out, nil
}

// RunTab2 reproduces Table II: average Recall@5/10 and MAP@5/10 across
// the medium-scale gallery at both budgets. Expected shape: within a
// budget VAQ > OPQ > PQ > Bolt, and VAQ-64 is competitive with OPQ-128.
func RunTab2(w io.Writer, s Scale) error {
	scores, err := computeGalleryScores(s)
	if err != nil {
		return err
	}
	n := len(scores.recall5)
	fmt.Fprintf(w, "Table II over %d gallery datasets\n", n)
	fmt.Fprintf(w, "%-12s %8s %8s %8s %8s\n", "method", "Rec@5", "Rec@10", "MAP@5", "MAP@10")
	avg := func(col int, table [][]float64) float64 {
		var sum float64
		for _, row := range table {
			sum += row[col]
		}
		return sum / float64(len(table))
	}
	for ci, name := range scores.methodNames {
		fmt.Fprintf(w, "%-12s %8.5f %8.5f %8.5f %8.5f\n", name,
			avg(ci, scores.recall5), avg(ci, scores.recall10),
			avg(ci, scores.map5), avg(ci, scores.map10))
	}
	return nil
}

// RunFig10 reproduces Figure 10: Friedman average ranks over the gallery
// (Recall@5) with the Nemenyi critical difference, plus the paper's
// pairwise Wilcoxon checks. Expected shape: VAQ-128 ranked first and
// significantly ahead; VAQ-64 statistically tied with OPQ-128.
func RunFig10(w io.Writer, s Scale) error {
	scores, err := computeGalleryScores(s)
	if err != nil {
		return err
	}
	ranks, chi2, p, err := eval.FriedmanTest(scores.recall5)
	if err != nil {
		return err
	}
	cd, err := eval.NemenyiCD(len(scores.methodNames), len(scores.recall5))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Friedman over %d datasets x %d methods (Recall@5): chi2=%.2f p=%.3g\n",
		len(scores.recall5), len(scores.methodNames), chi2, p)
	fmt.Fprintf(w, "Nemenyi critical difference (alpha=0.05): %.3f\n\n", cd)
	type ranked struct {
		name string
		rank float64
	}
	list := make([]ranked, len(ranks))
	for i := range ranks {
		list[i] = ranked{scores.methodNames[i], ranks[i]}
	}
	sort.Slice(list, func(a, b int) bool { return list[a].rank < list[b].rank })
	for pos, r := range list {
		fmt.Fprintf(w, "%2d. %-10s average rank %.3f\n", pos+1, r.name, r.rank)
	}
	fmt.Fprintln(w)
	// Pairwise Wilcoxon tests the paper highlights.
	col := func(name string) []float64 {
		idx := -1
		for i, n := range scores.methodNames {
			if n == name {
				idx = i
			}
		}
		out := make([]float64, len(scores.recall5))
		for i, row := range scores.recall5 {
			out[i] = row[idx]
		}
		return out
	}
	pairs := [][2]string{
		{"VAQ-128", "OPQ-128"}, {"VAQ-64", "OPQ-128"}, {"VAQ-64", "PQ-128"},
	}
	for _, pr := range pairs {
		a, b := col(pr[0]), col(pr[1])
		wins := 0
		for i := range a {
			if a[i] > b[i] {
				wins++
			}
		}
		_, pv, err := eval.WilcoxonSignedRank(a, b)
		if err != nil {
			fmt.Fprintf(w, "Wilcoxon %s vs %s: %v (wins %d/%d)\n", pr[0], pr[1], err, wins, len(a))
			continue
		}
		fmt.Fprintf(w, "Wilcoxon %s vs %s: p=%.4g, %s wins %d/%d datasets\n",
			pr[0], pr[1], pv, pr[0], wins, len(a))
	}
	return nil
}
