package metrics

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"sync"
)

var (
	publishMu sync.Mutex
	published = map[string]bool{}
	registry  sync.Map // expvar name -> *IndexMetrics
)

// Publish registers the registry under name in the process-wide expvar
// namespace, so GET /debug/vars shows a live JSON snapshot. Publishing
// the same name again rebinds it to the new registry instead of
// panicking (expvar.Publish panics on duplicates, which is hostile to
// tests and index reloads): the expvar Func reads through an indirection
// map, so only the first call for a name touches expvar itself.
func Publish(name string, m *IndexMetrics) {
	publishMu.Lock()
	defer publishMu.Unlock()
	registry.Store(name, m)
	if published[name] {
		return
	}
	if expvar.Get(name) != nil {
		panic(fmt.Sprintf("metrics: expvar name %q taken by a non-metrics var", name))
	}
	expvar.Publish(name, expvar.Func(func() any {
		v, ok := registry.Load(name)
		if !ok {
			return Snapshot{}
		}
		return v.(*IndexMetrics).Snapshot()
	}))
	published[name] = true
}

// ServeDebug starts an HTTP server on addr (e.g. "localhost:6060" or
// ":0" for an ephemeral port) exposing /debug/vars (expvar) and
// /debug/pprof/* from http.DefaultServeMux. It returns the running
// server with Addr set to the actual listen address; shut it down with
// srv.Close. This is the one-flag observability hook for the cmd tools.
func ServeDebug(addr string) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: http.DefaultServeMux}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return srv, nil
}
