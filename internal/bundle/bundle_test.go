package bundle

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"vaq/internal/diag"
	"vaq/internal/metrics"
	"vaq/internal/workload"
)

// testRecorder arms a recorder over a fresh metrics registry, alert bus,
// and a small pre-filled workload ring.
func testRecorder(t *testing.T, cfg Config) (*Recorder, *metrics.IndexMetrics) {
	t.Helper()
	m := metrics.NewSized(5, 4)
	m.RecordSearch(metrics.SearchRecord{CodesConsidered: 64, Lookups: 10}, 120*time.Microsecond)
	cap := workload.NewCapture(workload.Config{
		MaxRecords: 8, Ring: true, Fingerprint: "cafe0123", Dim: 2,
	})
	for i := 0; i < 12; i++ {
		cap.Add(&workload.Record{
			K: 10, Query: []float32{float32(i), 1},
			IDs: []int32{int32(i)}, Dists: []float32{0.5},
		})
	}
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	rec, err := New(cfg, Info{Name: "test_index", Fingerprint: "cafe0123", Shards: 0}, Hooks{
		Metrics:  m,
		Alerts:   m.Alerts(),
		Workload: cap.Snapshot,
		Reports: func() []*diag.Report {
			return []*diag.Report{{N: 100, Dim: 2, Subspaces: make([]diag.SubspaceReport, 1)}}
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { rec.Close() }) //nolint:errcheck // already-closed is fine
	return rec, m
}

func TestManualTriggerWritesValidBundle(t *testing.T) {
	rec, _ := testRecorder(t, Config{})
	man, err := rec.Trigger("unit-test")
	if err != nil {
		t.Fatalf("Trigger: %v", err)
	}
	if man.FormatVersion != FormatVersion {
		t.Fatalf("manifest version = %d, want %d", man.FormatVersion, FormatVersion)
	}
	if man.Trigger.Source != "manual" || man.Trigger.Reason != "unit-test" {
		t.Fatalf("trigger = %+v", man.Trigger)
	}
	if man.WorkloadRecords != 8 {
		t.Fatalf("WorkloadRecords = %d, want 8 (ring capacity)", man.WorkloadRecords)
	}
	// The canonical member set for a recorder with workload + report hooks
	// but no tracer.
	want := []string{"metrics.json", "history.json", "metrics.prom",
		"alerts.json", "workload.vaqwl", "report.json", "runtime.json"}
	if len(man.Files) != len(want) {
		t.Fatalf("members = %v", man.Files)
	}
	for i, f := range man.Files {
		if f.Name != want[i] {
			t.Fatalf("member %d = %q, want %q (canonical order)", i, f.Name, want[i])
		}
		if f.Bytes <= 0 || len(f.SHA256) != 64 {
			t.Fatalf("member %q integrity record incomplete: %+v", f.Name, f)
		}
	}
	got, err := Validate(man.Dir)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got.Seq != man.Seq || got.Fingerprint != "cafe0123" {
		t.Fatalf("Validate returned %+v", got)
	}
}

func TestAlertEdgeWritesExactlyOneBundle(t *testing.T) {
	rec, m := testRecorder(t, Config{TriggerDelay: time.Millisecond})
	src := m.Alerts().Source("vaq.skew")
	// Repeated breaches while latched must not re-trigger.
	for i := 0; i < 5; i++ {
		src.Set(true)
	}
	waitFor(t, func() bool { return rec.Status().BundlesWritten == 1 })
	// Recovery re-arms; the next breach is a second incident.
	src.Set(false)
	src.Set(true)
	waitFor(t, func() bool { return rec.Status().BundlesWritten == 2 })

	mans, err := List(rec.Dir())
	if err != nil || len(mans) != 2 {
		t.Fatalf("List = %v, %v (want 2 bundles)", mans, err)
	}
	for _, man := range mans {
		if man.Trigger.Source != "vaq.skew" || man.Trigger.Reason != "alert" {
			t.Fatalf("trigger = %+v", man.Trigger)
		}
		if _, err := Validate(man.Dir); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	}
	if mans[0].Seq >= mans[1].Seq {
		t.Fatalf("List order: seqs %d, %d", mans[0].Seq, mans[1].Seq)
	}
}

func TestRecoveryEdgeDoesNotTrigger(t *testing.T) {
	rec, m := testRecorder(t, Config{TriggerDelay: time.Millisecond})
	src := m.Alerts().Source("vaq.slo.latency")
	src.Set(true)
	waitFor(t, func() bool { return rec.Status().BundlesWritten == 1 })
	src.Set(false)
	time.Sleep(20 * time.Millisecond)
	if got := rec.Status().BundlesWritten; got != 1 {
		t.Fatalf("recovery edge wrote a bundle: %d written", got)
	}
}

func TestMaxBundlesCapsAlertTriggers(t *testing.T) {
	rec, m := testRecorder(t, Config{TriggerDelay: time.Millisecond, MaxBundles: 2})
	src := m.Alerts().Source("vaq.skew")
	for i := 0; i < 4; i++ {
		src.Set(true)
		waitFor(t, func() bool {
			st := rec.Status()
			return st.BundlesWritten+st.TriggersSkipped == uint64(i+1)
		})
		src.Set(false)
	}
	st := rec.Status()
	if st.BundlesWritten != 2 || st.TriggersSkipped != 2 {
		t.Fatalf("written %d skipped %d, want 2/2", st.BundlesWritten, st.TriggersSkipped)
	}
	// Manual triggers bypass the cap.
	if _, err := rec.Trigger(""); err != nil {
		t.Fatalf("manual Trigger past cap: %v", err)
	}
}

func TestCloseFlushesPendingTriggers(t *testing.T) {
	// A long TriggerDelay would hold the bundle for 10s; Close must flush
	// it immediately instead.
	rec, m := testRecorder(t, Config{TriggerDelay: 10 * time.Second})
	m.Alerts().Source("vaq.skew").Set(true)
	start := time.Now()
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Close took %v, should flush without the trigger delay", d)
	}
	mans, err := List(rec.Dir())
	if err != nil || len(mans) != 1 {
		t.Fatalf("List after Close = %v, %v (want the flushed bundle)", mans, err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	rec, _ := testRecorder(t, Config{})
	man, err := rec.Trigger("corrupt-me")
	if err != nil {
		t.Fatalf("Trigger: %v", err)
	}
	path := filepath.Join(man.Dir, "metrics.json")
	if err := os.WriteFile(path, []byte(`{"tampered":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(man.Dir); err == nil || !strings.Contains(err.Error(), "metrics.json") {
		t.Fatalf("Validate on tampered bundle = %v, want metrics.json error", err)
	}
}

func TestValidateRejectsFutureVersion(t *testing.T) {
	rec, _ := testRecorder(t, Config{})
	man, err := rec.Trigger("")
	if err != nil {
		t.Fatalf("Trigger: %v", err)
	}
	raw, _ := os.ReadFile(filepath.Join(man.Dir, ManifestName))
	var loose map[string]any
	if err := json.Unmarshal(raw, &loose); err != nil {
		t.Fatal(err)
	}
	loose["format_version"] = FormatVersion + 1
	raw, _ = json.Marshal(loose)
	if err := os.WriteFile(filepath.Join(man.Dir, ManifestName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(man.Dir); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("Validate on future version = %v, want version error", err)
	}
}

func TestListSkipsIncompleteBundles(t *testing.T) {
	rec, _ := testRecorder(t, Config{})
	if _, err := rec.Trigger(""); err != nil {
		t.Fatal(err)
	}
	// A bundle mid-write has members but no manifest yet.
	incomplete := filepath.Join(rec.Dir(), "bundle-999999-vaq.skew")
	if err := os.MkdirAll(incomplete, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(incomplete, "metrics.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	mans, err := List(rec.Dir())
	if err != nil || len(mans) != 1 {
		t.Fatalf("List = %d manifests, %v (want 1, incomplete skipped)", len(mans), err)
	}
}

func TestConcurrentTriggerAndSnapshot(t *testing.T) {
	rec, m := testRecorder(t, Config{TriggerDelay: time.Millisecond, SnapshotInterval: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := rec.Trigger("race"); err != nil {
					t.Errorf("Trigger: %v", err)
				}
				m.RecordSearch(metrics.SearchRecord{CodesConsidered: 32}, time.Duration(g+1)*time.Microsecond)
				m.Alerts().Source("vaq.skew").Set(i%2 == 0)
			}
		}(g)
	}
	wg.Wait()
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	mans, err := List(rec.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(mans) < 20 {
		t.Fatalf("only %d bundles after 20 manual triggers", len(mans))
	}
	seen := map[uint64]bool{}
	for _, man := range mans {
		if seen[man.Seq] {
			t.Fatalf("duplicate bundle seq %d", man.Seq)
		}
		seen[man.Seq] = true
		if _, err := Validate(man.Dir); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	}
}

func TestSanitizeSource(t *testing.T) {
	for in, want := range map[string]string{
		"vaq.skew":        "vaq.skew",
		"vaq.slo.latency": "vaq.slo.latency",
		"":                "manual",
		"weird/../name":   "weird-..-name",
		"a b\tc":          "a-b-c",
	} {
		if got := sanitizeSource(in); got != want {
			t.Errorf("sanitizeSource(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPublishEndpoint(t *testing.T) {
	rec, _ := testRecorder(t, Config{})
	Publish("ep_index", rec)
	defer Publish("ep_index", nil)

	// ?trigger=1 writes a manual bundle and the response lists it.
	req := httptest.NewRequest("GET", "/debug/vaq/bundle?index=ep_index&trigger=1&reason=ep-test", nil)
	w := httptest.NewRecorder()
	handleBundle(w, req)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var views map[string]indexView
	if err := json.Unmarshal(w.Body.Bytes(), &views); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	view, ok := views["ep_index"]
	if !ok {
		t.Fatalf("response missing ep_index: %v", views)
	}
	if view.Status.Index != "test_index" || view.Status.BundlesWritten != 1 {
		t.Fatalf("status = %+v", view.Status)
	}
	if len(view.Bundles) != 1 || view.Bundles[0].Trigger.Reason != "ep-test" {
		t.Fatalf("bundles = %+v", view.Bundles)
	}

	// Unknown names 404; removed names too.
	w = httptest.NewRecorder()
	handleBundle(w, httptest.NewRequest("GET", "/debug/vaq/bundle?index=nope", nil))
	if w.Code != 404 {
		t.Fatalf("unknown index: status %d", w.Code)
	}
	Publish("ep_index", nil)
	w = httptest.NewRecorder()
	handleBundle(w, httptest.NewRequest("GET", "/debug/vaq/bundle?index=ep_index", nil))
	if w.Code != 404 {
		t.Fatalf("removed index: status %d", w.Code)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
