package history

import (
	"math"
	"sync"
	"testing"
	"time"
)

// testSeries shapes a series with small, test-friendly tiers: raw ring of
// rawCap points, 100ms mid buckets, 1s long buckets.
func testSeries(kind Kind, rawCap int) *Series {
	return newSeries("s", kind, rawCap, 512, 512, 100*time.Millisecond, time.Second)
}

// TestDownsamplingInvariants drives appends across bucket boundaries and
// checks every closed bucket in both tiers obeys the aggregate invariants,
// for both series kinds and several value shapes.
func TestDownsamplingInvariants(t *testing.T) {
	const t0 = int64(1_000_000_000) // ms; divisible by both bucket widths
	cases := []struct {
		name   string
		kind   Kind
		stepMs int64
		n      int
		val    func(i int) float64
	}{
		{"counter/monotone", Counter, 10, 400, func(i int) float64 { return float64(i * 3) }},
		{"counter/with-reset", Counter, 10, 400, func(i int) float64 {
			if i >= 200 {
				return float64((i - 200) * 5)
			}
			return float64(i * 5)
		}},
		{"gauge/oscillating", Gauge, 25, 300, func(i int) float64 { return math.Sin(float64(i) / 7) }},
		{"gauge/flat", Gauge, 50, 100, func(i int) float64 { return 42 }},
		{"gauge/irregular-cadence", Gauge, 173, 80, func(i int) float64 { return float64(i % 13) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSeries(tc.kind, 1<<16) // raw never laps: full ground truth retained
			for i := 0; i < tc.n; i++ {
				s.append(t0+int64(i)*tc.stepMs, tc.val(i))
			}
			raw := s.rawPoints()
			if len(raw) != tc.n {
				t.Fatalf("raw retained %d points, want %d", len(raw), tc.n)
			}
			for tier, width := range map[string]int64{"mid": s.midBucket, "long": s.longBucket} {
				var buckets []Bucket
				var open Bucket
				if tier == "mid" {
					buckets, open = s.mid.snapshot(), s.openMid
				} else {
					buckets, open = s.long.snapshot(), s.openLong
				}
				closedCount := uint64(0)
				for i, b := range buckets {
					if b.Start%width != 0 {
						t.Errorf("%s bucket %d start %d not aligned to %dms", tier, i, b.Start, width)
					}
					if b.End != b.Start+width {
						t.Errorf("%s bucket %d end %d, want start+%dms", tier, i, b.End, width)
					}
					if b.Count == 0 {
						t.Errorf("%s bucket %d empty", tier, i)
					}
					if b.Min > b.Max || b.First < b.Min || b.First > b.Max || b.Last < b.Min || b.Last > b.Max {
						t.Errorf("%s bucket %d envelope broken: %+v", tier, i, b)
					}
					mean := b.Sum / float64(b.Count)
					if mean < b.Min-1e-9 || mean > b.Max+1e-9 {
						t.Errorf("%s bucket %d mean %g outside [%g, %g]", tier, i, mean, b.Min, b.Max)
					}
					if i > 0 && b.Start < buckets[i-1].End {
						t.Errorf("%s buckets %d/%d overlap or regress", tier, i-1, i)
					}
					closedCount += b.Count
				}
				// Closed buckets plus the open one account for every append.
				if got := closedCount + open.Count; got != uint64(tc.n) {
					t.Errorf("%s tier accounts for %d samples, want %d", tier, got, tc.n)
				}
				// Re-check the ground truth per bucket against the raw points.
				for i, b := range buckets {
					var want Bucket
					for _, p := range raw {
						if p.TS >= b.Start && p.TS < b.End {
							want.fold(p.Val)
						}
					}
					if want.Count != b.Count || want.Min != b.Min || want.Max != b.Max ||
						want.First != b.First || want.Last != b.Last ||
						math.Abs(want.Sum-b.Sum) > 1e-9 {
						t.Errorf("%s bucket %d = %+v, recomputed %+v", tier, i, b, want)
					}
				}
			}
		})
	}
}

func TestBucketPointSemantics(t *testing.T) {
	b := Bucket{Start: 0, End: 100}
	for _, v := range []float64{10, 30, 20} {
		b.fold(v)
	}
	if p := b.point(Counter); p.Val != 20 || p.TS != 100 {
		t.Fatalf("counter point %+v, want Last=20 at End", p)
	}
	if p := b.point(Gauge); p.Val != 20 || p.TS != 100 {
		t.Fatalf("gauge point %+v, want mean=20 at End", p)
	}
}

// TestRawRingLap laps the raw ring and checks only the newest points
// survive, in order, with the conservatively-discarded boundary slot.
func TestRawRingLap(t *testing.T) {
	const capacity, total = 8, 20
	s := testSeries(Gauge, capacity)
	for i := 0; i < total; i++ {
		s.append(int64(1000+i), float64(i))
	}
	pts := s.rawPoints()
	// Quiescent writer: indices (total-capacity, total) minus the one
	// boundary slot the validator can't prove stable.
	if len(pts) != capacity-1 {
		t.Fatalf("retained %d points after lap, want %d", len(pts), capacity-1)
	}
	for i, p := range pts {
		wantIdx := total - capacity + 1 + i
		if p.TS != int64(1000+wantIdx) || p.Val != float64(wantIdx) {
			t.Fatalf("point %d = %+v, want index %d", i, p, wantIdx)
		}
	}
}

// TestRangeTierMerge laps a tiny raw ring and checks Range splices
// downsampled buckets in front of the surviving raw points without
// overlap, keeping the merged sequence time-ordered and (for a counter)
// monotone.
func TestRangeTierMerge(t *testing.T) {
	const t0 = int64(1_000_000_000)
	s := testSeries(Counter, 4)
	const n = 100
	for i := 0; i < n; i++ {
		s.append(t0+int64(i)*10, float64(i))
	}
	pts := s.Range(0, 0)
	if len(pts) <= 4 {
		t.Fatalf("merged range has %d points; want downsampled history in front of raw", len(pts))
	}
	raw := s.rawPoints()
	oldestRaw := raw[0].TS
	sawDownsampled := false
	for i, p := range pts {
		if i > 0 && p.TS < pts[i-1].TS {
			t.Fatalf("merged range regresses at %d: %d < %d", i, p.TS, pts[i-1].TS)
		}
		if i > 0 && p.Val < pts[i-1].Val {
			t.Fatalf("counter range not monotone at %d: %g < %g", i, p.Val, pts[i-1].Val)
		}
		if p.TS < oldestRaw {
			sawDownsampled = true
		}
	}
	if !sawDownsampled {
		t.Fatal("no downsampled points before the raw tier")
	}
	// Bounded range honors both ends.
	from, to := t0+200, t0+400
	for _, p := range s.Range(from, to) {
		if p.TS < from || p.TS > to {
			t.Fatalf("bounded range leaked point at %d outside [%d, %d]", p.TS, from, to)
		}
	}
}

func TestDeltaOverWindowReset(t *testing.T) {
	s := testSeries(Counter, 64)
	base := time.UnixMilli(1_000_000_000)
	vals := []float64{0, 10, 20, 5, 15} // 20 -> 5 is a reset
	for i, v := range vals {
		s.append(base.Add(time.Duration(i)*time.Second).UnixMilli(), v)
	}
	now := base.Add(4 * time.Second)
	delta, covered := s.DeltaOverWindow(now, 10*time.Second)
	if want := 10.0 + 10 + 5 + 10; delta != want {
		t.Fatalf("delta %g, want %g (reset counts from zero)", delta, want)
	}
	if covered != 4*time.Second {
		t.Fatalf("covered %s, want 4s", covered)
	}
	if rate := s.RateOverWindow(now, 10*time.Second); math.Abs(rate-35.0/4) > 1e-9 {
		t.Fatalf("rate %g, want 8.75", rate)
	}
	// A window catching only the newest point has no deltas.
	delta, covered = s.DeltaOverWindow(now, time.Millisecond)
	if delta != 0 || covered != 0 {
		t.Fatalf("single-point window: delta %g covered %s, want zeros", delta, covered)
	}
}

func TestSeriesLast(t *testing.T) {
	s := testSeries(Gauge, 8)
	if _, ok := s.Last(); ok {
		t.Fatal("empty series reported a last point")
	}
	s.append(123, 4.5)
	p, ok := s.Last()
	if !ok || p.TS != 123 || p.Val != 4.5 {
		t.Fatalf("last = %+v ok=%v", p, ok)
	}
}

// TestSeriesConcurrentReaders hammers one writer against many readers;
// under -race this proves the single-writer/multi-reader contract, and the
// assertions prove no torn pair or stale slot escapes validation.
func TestSeriesConcurrentReaders(t *testing.T) {
	s := newSeries("c", Counter, 32, 16, 16, 20*time.Millisecond, 200*time.Millisecond)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the single writer
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// ts = i, val = i: any torn pair shows up as ts != val.
			s.append(i, float64(i))
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				// Raw points carry ts == val, so a torn ts/val pair that
				// escaped cursor validation is directly visible.
				for _, p := range s.rawPoints() {
					if p.Val != float64(p.TS) {
						t.Errorf("torn read escaped: ts=%d val=%g", p.TS, p.Val)
						return
					}
				}
				// The merged view must stay time-ordered under load
				// (downsampled points are bucket aggregates, not ts == val).
				pts := s.Range(0, 0)
				for k := 1; k < len(pts); k++ {
					if pts[k].TS < pts[k-1].TS {
						t.Errorf("reader saw regressing timestamps")
						return
					}
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
