package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"vaq/internal/core"
	"vaq/internal/dataset"
	"vaq/internal/metrics"
)

// benchParams configures the machine-readable search benchmark
// (vaqbench -json).
type benchParams struct {
	Dataset   string  `json:"dataset"`
	N         int     `json:"n"`
	NQ        int     `json:"nq"`
	Seed      int64   `json:"seed"`
	Subspaces int     `json:"subspaces"`
	Budget    int     `json:"budget"`
	K         int     `json:"k"`
	VisitFrac float64 `json:"visit_frac"`
	Workers   int     `json:"workers"`
	Passes    int     `json:"passes"`
}

// benchSummary is the JSON document vaqbench -json emits: everything a
// cross-PR perf tracker needs to plot build cost, throughput, tail
// latency and prune effectiveness over time.
type benchSummary struct {
	Params benchParams         `json:"params"`
	Build  metrics.BuildReport `json:"build"`
	Search struct {
		Queries       uint64  `json:"queries"`
		WallSeconds   float64 `json:"wall_seconds"`
		QPS           float64 `json:"qps"`
		LatencyP50Ns  int64   `json:"latency_p50_ns"`
		LatencyP95Ns  int64   `json:"latency_p95_ns"`
		LatencyP99Ns  int64   `json:"latency_p99_ns"`
		LatencyMeanNs int64   `json:"latency_mean_ns"`
		TIPruneRate   float64 `json:"ti_prune_rate"`
		EAAbandonRate float64 `json:"ea_abandon_rate"`
	} `json:"search"`
	Metrics metrics.Snapshot `json:"metrics"`
}

// runJSONBench builds an index over a synthetic dataset, drives the query
// workload through a worker pool of reusable Searchers, and writes the
// summary to path ("-" for stdout).
func runJSONBench(path string, p benchParams) error {
	ds, err := dataset.Large(p.Dataset, p.N, p.NQ, p.Seed)
	if err != nil {
		return err
	}
	ix, err := core.Build(ds.Train, ds.Base, core.Config{
		NumSubspaces: p.Subspaces,
		Budget:       p.Budget,
		Seed:         p.Seed,
	})
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	metrics.Publish("vaqbench_index", ix.Metrics())

	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	if p.Passes < 1 {
		p.Passes = 1
	}
	opt := core.SearchOptions{Mode: core.ModeTIEA, VisitFrac: p.VisitFrac}
	nq := ds.Queries.Rows

	// Warmup pass (dictionary LUT allocation, page faults), then reset so
	// the summary reflects steady state only.
	runPool(ix, ds, p.K, opt, p.Workers)
	ix.Metrics().Reset()

	start := time.Now()
	for pass := 0; pass < p.Passes; pass++ {
		runPool(ix, ds, p.K, opt, p.Workers)
	}
	wall := time.Since(start)

	var sum benchSummary
	sum.Params = p
	sum.Build = ix.BuildReport()
	sum.Metrics = ix.Metrics().Snapshot()
	sum.Search.Queries = sum.Metrics.Queries
	sum.Search.WallSeconds = wall.Seconds()
	sum.Search.QPS = float64(p.Passes*nq) / wall.Seconds()
	sum.Search.LatencyP50Ns = int64(sum.Metrics.Latency.Quantile(0.50))
	sum.Search.LatencyP95Ns = int64(sum.Metrics.Latency.Quantile(0.95))
	sum.Search.LatencyP99Ns = int64(sum.Metrics.Latency.Quantile(0.99))
	sum.Search.LatencyMeanNs = int64(sum.Metrics.Latency.Mean())
	sum.Search.TIPruneRate = sum.Metrics.TIPruneRate()
	sum.Search.EAAbandonRate = sum.Metrics.EAAbandonRate()

	b, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %.0f qps, p50 %s, p95 %s, p99 %s, TI prune %.1f%%, EA abandon %.1f%%\n",
		path, sum.Search.QPS,
		time.Duration(sum.Search.LatencyP50Ns),
		time.Duration(sum.Search.LatencyP95Ns),
		time.Duration(sum.Search.LatencyP99Ns),
		100*sum.Search.TIPruneRate, 100*sum.Search.EAAbandonRate)
	return nil
}

// runPool runs every query once across workers reusable Searchers.
func runPool(ix *core.Index, ds *dataset.Dataset, k int, opt core.SearchOptions, workers int) {
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := ix.NewSearcher()
			for qi := range next {
				if _, err := s.Search(ds.Queries.Row(qi), k, opt); err != nil {
					fmt.Fprintf(os.Stderr, "vaqbench: query %d: %v\n", qi, err)
				}
			}
		}()
	}
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		next <- qi
	}
	close(next)
	wg.Wait()
}
