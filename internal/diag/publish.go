package diag

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// The process-wide report registry behind /debug/vaq/report, mirroring the
// tracer registry in internal/trace: Publish rebinds an existing name
// instead of erroring, so index reloads and tests stay simple. The
// registry stores providers, not reports — a report is recomputed on every
// scrape, so the endpoint always reflects the current index state
// (including vectors threaded in by Add since the last look).
var providers sync.Map // name -> func() *Report

// Publish registers provider under name for the /debug/vaq/report handler
// (installed on http.DefaultServeMux at package init, like net/http/pprof
// does — metrics.ServeDebug serves that mux). Publishing a nil provider
// removes the name.
func Publish(name string, provider func() *Report) {
	if provider == nil {
		providers.Delete(name)
		return
	}
	providers.Store(name, provider)
}

func init() {
	http.HandleFunc("/debug/vaq/report", handleReport)
}

// handleReport serves the registered providers. Query parameters:
//
//	?index=X       only the index published as X (default: all)
//	?format=text   human-readable dump; default is JSON, one object per
//	               published index keyed by name
func handleReport(w http.ResponseWriter, r *http.Request) {
	wantName := r.URL.Query().Get("index")
	var names []string
	providers.Range(func(k, _ any) bool {
		if wantName == "" || k.(string) == wantName {
			names = append(names, k.(string))
		}
		return true
	})
	sort.Strings(names)
	if wantName != "" && len(names) == 0 {
		http.Error(w, fmt.Sprintf("no index published as %q", wantName), http.StatusNotFound)
		return
	}
	reports := make(map[string]*Report, len(names))
	for _, name := range names {
		v, ok := providers.Load(name)
		if !ok {
			continue
		}
		reports[name] = v.(func() *Report)()
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, name := range names {
			if rep := reports[name]; rep != nil {
				fmt.Fprintf(w, "== index %q\n", name)
				WriteText(w, rep) //nolint:errcheck // best-effort HTTP body
				fmt.Fprintln(w)
			}
		}
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(reports) //nolint:errcheck // best-effort HTTP body
}
