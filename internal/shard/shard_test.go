package shard

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"vaq/internal/core"
	"vaq/internal/vec"
	"vaq/internal/workload"
)

func testData(tb testing.TB, n, d int, seed int64) *vec.Matrix {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := &vec.Matrix{Rows: n, Cols: d, Data: make([]float32, n*d)}
	for i := range m.Data {
		// Decaying per-dimension scale so the PCA spectrum is skewed the
		// way the variance-aware allocation expects.
		col := i % d
		scale := float32(1.0) / (1.0 + 0.05*float32(col))
		m.Data[i] = scale * float32(rng.NormFloat64())
	}
	return m
}

func testConfig() core.Config {
	return core.Config{NumSubspaces: 8, Budget: 48, Seed: 42}
}

func mustBuild(tb testing.TB, data *vec.Matrix, cfg core.Config, opts Options) *Index {
	tb.Helper()
	x, err := Build(data, data, cfg, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return x
}

// TestSingleShardBitIdentity is the degenerate-case pin: S=1 must answer
// every query bit-identically to an unsharded core index, and serialize
// the identical single-index byte stream inside its envelope.
func TestSingleShardBitIdentity(t *testing.T) {
	data := testData(t, 600, 32, 1)
	cfg := testConfig()
	single, err := core.Build(data, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := mustBuild(t, data, cfg, Options{Shards: 1})
	if x.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", x.Shards())
	}
	queries := testData(t, 30, 32, 2)
	for _, opt := range []core.SearchOptions{
		{},
		{Mode: core.ModeHeap},
		{Mode: core.ModeEA},
		{Mode: core.ModeTIEA, VisitFrac: 1.0},
		{Subspaces: 4},
	} {
		s := single.NewSearcher()
		for qi := 0; qi < queries.Rows; qi++ {
			q := queries.Row(qi)
			want, err := s.Search(q, 10, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := x.Search(q, 10, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("opt %+v query %d: %d results, want %d", opt, qi, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
					t.Fatalf("opt %+v query %d rank %d: got (%d, %v), want (%d, %v)",
						opt, qi, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
				}
			}
		}
	}
	// The S=1 shard's inner stream must be byte-identical to the
	// unsharded index's serialized form.
	var a, b bytes.Buffer
	if _, err := single.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Shard(0).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("S=1 shard stream differs from unsharded stream (%d vs %d bytes)", b.Len(), a.Len())
	}
	if x.ConfigFingerprint() != single.ConfigFingerprint() {
		t.Fatalf("S=1 fingerprint %q != unsharded %q", x.ConfigFingerprint(), single.ConfigFingerprint())
	}
}

// TestShardedExhaustiveEquivalence pins the scatter-gather merge and the
// cross-shard threshold feedback against ground truth: under exhaustive
// settings (ModeHeap, and ModeTIEA at VisitFrac 1.0) the quantized
// distances are exact ADC sums over codes identical to the unsharded
// build, so a sharded search must return exactly the unsharded result
// list — same ids, same distances, same order — for any shard count.
func TestShardedExhaustiveEquivalence(t *testing.T) {
	data := testData(t, 700, 32, 3)
	cfg := testConfig()
	single, err := core.Build(data, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := testData(t, 25, 32, 4)
	for _, shards := range []int{2, 4, 7} {
		x := mustBuild(t, data, cfg, Options{Shards: shards})
		for _, opt := range []core.SearchOptions{
			{Mode: core.ModeHeap},
			{Mode: core.ModeTIEA, VisitFrac: 1.0},
			{Mode: core.ModeEA},
		} {
			s := single.NewSearcher()
			for qi := 0; qi < queries.Rows; qi++ {
				q := queries.Row(qi)
				want, err := s.Search(q, 20, opt)
				if err != nil {
					t.Fatal(err)
				}
				got, err := x.Search(q, 20, opt)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("S=%d opt %+v query %d: %d results, want %d", shards, opt, qi, len(got), len(want))
				}
				for i := range want {
					if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
						t.Fatalf("S=%d opt %+v query %d rank %d: got (%d, %v), want (%d, %v)",
							shards, opt, qi, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
					}
				}
			}
		}
	}
}

// TestMergeTopK covers the k-way merge edge cases directly.
func TestMergeTopK(t *testing.T) {
	nb := func(id int, d float32) vec.Neighbor { return vec.Neighbor{ID: id, Dist: d} }
	cases := []struct {
		name  string
		lists [][]vec.Neighbor
		k     int
		want  []vec.Neighbor
	}{
		{
			name: "k larger than any shard population",
			lists: [][]vec.Neighbor{
				{nb(0, 1), nb(2, 3)},
				{nb(1, 2)},
			},
			k:    10,
			want: []vec.Neighbor{nb(0, 1), nb(1, 2), nb(2, 3)},
		},
		{
			name: "duplicate distances across shards break ties by id",
			lists: [][]vec.Neighbor{
				{nb(5, 1.5), nb(9, 2.5)},
				{nb(2, 1.5), nb(7, 2.5)},
				{nb(4, 1.5)},
			},
			k:    5,
			want: []vec.Neighbor{nb(2, 1.5), nb(4, 1.5), nb(5, 1.5), nb(7, 2.5), nb(9, 2.5)},
		},
		{
			name:  "empty and nil lists",
			lists: [][]vec.Neighbor{nil, {}, {nb(3, 0.5)}, nil},
			k:     4,
			want:  []vec.Neighbor{nb(3, 0.5)},
		},
		{
			name:  "all empty",
			lists: [][]vec.Neighbor{nil, {}},
			k:     3,
			want:  []vec.Neighbor{},
		},
		{
			name: "k truncates interleaved lists",
			lists: [][]vec.Neighbor{
				{nb(0, 1), nb(2, 3), nb(4, 5)},
				{nb(1, 2), nb(3, 4), nb(5, 6)},
			},
			k:    4,
			want: []vec.Neighbor{nb(0, 1), nb(1, 2), nb(2, 3), nb(3, 4)},
		},
	}
	for _, tc := range cases {
		got := mergeTopK(tc.lists, tc.k)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: %d results, want %d", tc.name, len(got), len(tc.want))
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("%s: rank %d = %+v, want %+v", tc.name, i, got[i], tc.want[i])
			}
		}
	}
}

// TestShardClamp pins S > n clamping: no empty shard is ever built.
func TestShardClamp(t *testing.T) {
	data := testData(t, 5, 16, 5)
	cfg := core.Config{NumSubspaces: 4, Budget: 16, Seed: 1}
	x := mustBuild(t, data, cfg, Options{Shards: 64})
	if x.Shards() != 5 {
		t.Fatalf("Shards() = %d, want clamp to n=5", x.Shards())
	}
	res, err := x.Search(data.Row(0), 5, core.SearchOptions{Mode: core.ModeHeap})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("%d results, want all 5", len(res))
	}
	if res[0].ID != 0 {
		t.Fatalf("nearest to row 0 is %d, want 0", res[0].ID)
	}
	// k beyond the total population returns everything, once.
	res, err = x.Search(data.Row(0), 50, core.SearchOptions{Mode: core.ModeHeap})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("k>n: %d results, want 5", len(res))
	}
	seen := map[int]bool{}
	for _, r := range res {
		if seen[r.ID] {
			t.Fatalf("duplicate id %d in merged results", r.ID)
		}
		seen[r.ID] = true
	}
}

// TestAddRoutingAndSearch pins Add: global ids are contiguous, the
// assignment policies route where they promise, and added vectors are
// immediately findable through the merged search.
func TestAddRoutingAndSearch(t *testing.T) {
	data := testData(t, 200, 16, 6)
	cfg := core.Config{NumSubspaces: 4, Budget: 20, Seed: 7}
	x := mustBuild(t, data, cfg, Options{Shards: 4})
	batch := testData(t, 3, 16, 7)
	first, err := x.Add(batch)
	if err != nil {
		t.Fatal(err)
	}
	if first != 200 {
		t.Fatalf("first id = %d, want 200", first)
	}
	if x.Len() != 203 {
		t.Fatalf("Len() = %d, want 203", x.Len())
	}
	// Each added vector must be its own (quantized) nearest neighbor.
	for i := 0; i < batch.Rows; i++ {
		res, err := x.Search(batch.Row(i), 1, core.SearchOptions{Mode: core.ModeHeap})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].ID != first+i {
			t.Fatalf("added vector %d not found: got %+v, want id %d", i, res, first+i)
		}
	}

	// Least-loaded keeps shard sizes within one batch of each other.
	y := mustBuild(t, data, cfg, Options{Shards: 4, Policy: PolicyLeastLoaded})
	for i := 0; i < 8; i++ {
		if _, err := y.Add(testData(t, 1, 16, int64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	lens := y.ShardLens()
	min, max := lens[0], lens[0]
	for _, l := range lens[1:] {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max-min > 1 {
		t.Fatalf("least-loaded shard sizes diverged: %v", lens)
	}
}

// TestConcurrentAddSearch exercises the lock-free Add path under the race
// detector: concurrent batched Adds across shards interleaved with
// concurrent searches must stay consistent (every reserved id range lands
// exactly once, results never reference unknown ids).
func TestConcurrentAddSearch(t *testing.T) {
	data := testData(t, 300, 16, 8)
	cfg := core.Config{NumSubspaces: 4, Budget: 20, Seed: 9}
	x := mustBuild(t, data, cfg, Options{Shards: 4})
	const (
		adders   = 4
		batches  = 5
		rows     = 3
		searches = 40
	)
	var wg sync.WaitGroup
	firsts := make([][]int, adders)
	for a := 0; a < adders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				first, err := x.Add(testData(t, rows, 16, int64(1000+a*100+b)))
				if err != nil {
					t.Error(err)
					return
				}
				firsts[a] = append(firsts[a], first)
			}
		}(a)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		q := testData(t, 1, 16, 999).Row(0)
		for i := 0; i < searches; i++ {
			res, err := x.Search(q, 10, core.SearchOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			n := x.Len()
			for _, r := range res {
				if r.ID < 0 || r.ID >= n+adders*batches*rows {
					t.Errorf("result id %d out of range", r.ID)
					return
				}
			}
		}
	}()
	wg.Wait()
	wantLen := 300 + adders*batches*rows
	if x.Len() != wantLen {
		t.Fatalf("Len() = %d, want %d", x.Len(), wantLen)
	}
	// Reserved id ranges are disjoint and cover [300, wantLen).
	seen := map[int]bool{}
	for _, fs := range firsts {
		for _, f := range fs {
			for i := 0; i < rows; i++ {
				if seen[f+i] {
					t.Fatalf("id %d assigned twice", f+i)
				}
				seen[f+i] = true
			}
		}
	}
	if len(seen) != adders*batches*rows {
		t.Fatalf("%d ids assigned, want %d", len(seen), adders*batches*rows)
	}
	// After the dust settles every id must be retrievable exactly once.
	res, err := x.Search(data.Row(0), wantLen, core.SearchOptions{Mode: core.ModeHeap})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != wantLen {
		t.Fatalf("full scan returned %d, want %d", len(res), wantLen)
	}
	all := map[int]bool{}
	for _, r := range res {
		if all[r.ID] {
			t.Fatalf("duplicate id %d in full merged scan", r.ID)
		}
		all[r.ID] = true
	}
}

// TestSearchDuringAddMappingRace hammers the window between core.Add
// releasing the shard's write lock and the local-to-global mapping being
// published: a racing full scan that sees the new codes must also see a
// mapping long enough to cover their local ids, or ids[nb.ID] panics.
// S=1 pins every search to the shard being mutated to maximize pressure.
func TestSearchDuringAddMappingRace(t *testing.T) {
	data := testData(t, 64, 8, 30)
	cfg := core.Config{NumSubspaces: 2, Budget: 8, Seed: 31}
	x := mustBuild(t, data, cfg, Options{Shards: 1})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		q := testData(t, 1, 8, 32).Row(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := x.Search(q, 1024, core.SearchOptions{Mode: core.ModeHeap})
			if err != nil {
				t.Error(err)
				return
			}
			n := x.Len()
			for _, r := range res {
				if r.ID < 0 || r.ID >= n {
					t.Errorf("result id %d out of range (len %d)", r.ID, n)
					return
				}
			}
		}
	}()
	for b := 0; b < 80; b++ {
		if _, err := x.Add(testData(t, 2, 8, int64(100+b))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestMappingCoversCodesInvariant pins Add's publication order
// deterministically: at the first moment a batch's codes are visible to
// searches, the local-to-global mapping must already cover their local
// ids (the hammer test above can only hit the mis-ordered window by
// scheduling luck; this hook checks it on every Add).
func TestMappingCoversCodesInvariant(t *testing.T) {
	data := testData(t, 48, 8, 33)
	cfg := core.Config{NumSubspaces: 2, Budget: 8, Seed: 34}
	x := mustBuild(t, data, cfg, Options{Shards: 2})
	defer func() { testHookPostEncode = nil }()
	testHookPostEncode = func(st *shardState) {
		if ids := *st.ids.Load(); len(ids) < st.ix.Len() {
			t.Errorf("codes visible before mapping: %d ids < %d codes", len(ids), st.ix.Len())
		}
	}
	for b := 0; b < 10; b++ {
		if _, err := x.Add(testData(t, 3, 8, int64(200+b))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTightenBoundZero pins the cross-shard bound encoding: a genuine
// k-th distance of exactly 0.0 must be representable and distinct from
// the "no bound yet" state, and bounds must only ever shrink.
func TestTightenBoundZero(t *testing.T) {
	var b atomic.Uint64
	tightenBound(&b, 2.5)
	if v := b.Load(); v == 0 || math.Float32frombits(uint32(v)) != 2.5 {
		t.Fatalf("bound after tighten(2.5): %#x", b.Load())
	}
	tightenBound(&b, 0)
	if v := b.Load(); v == 0 {
		t.Fatal("a 0.0 bound collapsed into the unset state")
	} else if got := math.Float32frombits(uint32(v)); got != 0 {
		t.Fatalf("bound after tighten(0) decodes to %v, want 0", got)
	}
	tightenBound(&b, 1.0)
	if got := math.Float32frombits(uint32(b.Load())); got != 0 {
		t.Fatalf("looser bound overwrote tighter: %v", got)
	}
}

// TestDuplicateHeavyBoundTies: with every vector identical, each shard's
// k-th distance equals the global one, so the fed-back bound sits exactly
// on every candidate. Admission rejects strictly-greater only, so all
// modes must still return k results in (dist, global id) order.
func TestDuplicateHeavyBoundTies(t *testing.T) {
	base := testData(t, 1, 16, 40)
	data := &vec.Matrix{Rows: 256, Cols: 16, Data: make([]float32, 0, 256*16)}
	for i := 0; i < 256; i++ {
		data.Data = append(data.Data, base.Row(0)...)
	}
	cfg := core.Config{NumSubspaces: 4, Budget: 20, Seed: 41}
	x := mustBuild(t, data, cfg, Options{Shards: 4})
	for _, mode := range []core.SearchMode{core.ModeHeap, core.ModeEA, core.ModeTIEA} {
		res, err := x.Search(base.Row(0), 32, core.SearchOptions{Mode: mode, VisitFrac: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 32 {
			t.Fatalf("mode %v: %d results, want 32", mode, len(res))
		}
		for i, r := range res {
			if r.ID != i {
				t.Fatalf("mode %v rank %d: id %d, want %d (id-stable tie-break)", mode, i, r.ID, i)
			}
			if r.Dist != res[0].Dist {
				t.Fatalf("mode %v rank %d: dist %v != %v among duplicates", mode, i, r.Dist, res[0].Dist)
			}
		}
	}
}

// TestAddOverflowGuard: reserving ids past the int32 mapping space must
// fail loudly instead of wrapping negative, without consuming ids.
func TestAddOverflowGuard(t *testing.T) {
	data := testData(t, 32, 8, 50)
	cfg := core.Config{NumSubspaces: 2, Budget: 8, Seed: 51}
	x := mustBuild(t, data, cfg, Options{Shards: 2})
	x.nextID.Store(math.MaxInt32 - 1)
	if _, err := x.Add(testData(t, 4, 8, 52)); err == nil {
		t.Fatal("Add past the int32 global id space did not error")
	}
	if got := x.nextID.Load(); got != math.MaxInt32-1 {
		t.Fatalf("failed Add moved nextID to %d", got)
	}
	// The last batch that still fits ([MaxInt32-1, MaxInt32]) is accepted.
	first, err := x.Add(testData(t, 2, 8, 53))
	if err != nil {
		t.Fatal(err)
	}
	if first != math.MaxInt32-1 {
		t.Fatalf("first id %d, want %d", first, math.MaxInt32-1)
	}
	if _, err := x.Add(testData(t, 1, 8, 54)); err == nil {
		t.Fatal("Add of one more row past MaxInt32 did not error")
	}
}

// TestHostileIDCountRead: a container claiming a huge id mapping backed by
// almost no bytes must error out of the chunked reader instead of
// allocating the claimed length up front.
func TestHostileIDCountRead(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(shardMagic)
	for _, v := range []uint64{shardFormatVersion, 1, 0, 100} {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	// Claim 2^30 ids (4 GiB) but provide only 64 bytes of payload.
	if err := binary.Write(&buf, binary.LittleEndian, uint64(1<<30)); err != nil {
		t.Fatal(err)
	}
	buf.Write(make([]byte, 64))
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("hostile id count did not error")
	}
}

// TestSerializeRoundTrip pins the VAQS container: save/load preserves
// results, fingerprints, shapes, and survives post-Add non-monotone id
// mappings.
func TestSerializeRoundTrip(t *testing.T) {
	data := testData(t, 400, 24, 10)
	cfg := core.Config{NumSubspaces: 6, Budget: 30, Seed: 11}
	x := mustBuild(t, data, cfg, Options{Shards: 3})
	if _, err := x.Add(testData(t, 4, 24, 12)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.vaqs")
	if err := x.Save(path); err != nil {
		t.Fatal(err)
	}
	y, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if y.Shards() != x.Shards() || y.Len() != x.Len() || y.Dim() != x.Dim() {
		t.Fatalf("loaded shape (%d, %d, %d) != original (%d, %d, %d)",
			y.Shards(), y.Len(), y.Dim(), x.Shards(), x.Len(), x.Dim())
	}
	if y.ConfigFingerprint() != x.ConfigFingerprint() {
		t.Fatalf("fingerprint changed across save/load: %q vs %q", y.ConfigFingerprint(), x.ConfigFingerprint())
	}
	queries := testData(t, 15, 24, 13)
	for qi := 0; qi < queries.Rows; qi++ {
		q := queries.Row(qi)
		want, err := x.Search(q, 12, core.SearchOptions{Mode: core.ModeTIEA, VisitFrac: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		got, err := y.Search(q, 12, core.SearchOptions{Mode: core.ModeTIEA, VisitFrac: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d rank %d: %+v != %+v", qi, i, got[i], want[i])
			}
		}
	}
	// Truncated stream must fail loudly, not mis-parse.
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("reading a truncated container did not fail")
	}
}

// TestShardedReplayOverlap is the scatter-gather merge gate: a workload
// captured on an unsharded index replays through a sharded one with full
// overlap at exhaustive settings.
func TestShardedReplayOverlap(t *testing.T) {
	data := testData(t, 500, 24, 14)
	cfg := core.Config{NumSubspaces: 6, Budget: 30, Seed: 15}
	single, err := core.Build(data, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cap := single.EnableCapture(workload.Config{SampleRate: 1})
	s := single.NewSearcher()
	queries := testData(t, 20, 24, 16)
	for qi := 0; qi < queries.Rows; qi++ {
		if _, err := s.Search(queries.Row(qi), 10, core.SearchOptions{VisitFrac: 1.0}); err != nil {
			t.Fatal(err)
		}
	}
	log := cap.Snapshot()
	x := mustBuild(t, data, cfg, Options{Shards: 4})
	rep, _, err := workload.Replay(log, x.ReplayRunner(), workload.Options{
		Thresholds: workload.Thresholds{MinOverlap: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("sharded replay failed: %+v", rep.Violations)
	}
	if rep.MeanOverlap != 1.0 {
		t.Fatalf("mean overlap %v, want 1.0", rep.MeanOverlap)
	}
}

// TestMergedMetrics pins the merged registry semantics: one query across
// S shards records once, with per-shard pruning work summed.
func TestMergedMetrics(t *testing.T) {
	data := testData(t, 400, 16, 17)
	cfg := core.Config{NumSubspaces: 4, Budget: 20, Seed: 18}
	x := mustBuild(t, data, cfg, Options{Shards: 4})
	const queries = 10
	q := testData(t, queries, 16, 19)
	for qi := 0; qi < queries; qi++ {
		if _, err := x.Search(q.Row(qi), 5, core.SearchOptions{Mode: core.ModeHeap}); err != nil {
			t.Fatal(err)
		}
	}
	snap := x.Metrics().Snapshot()
	if snap.Queries != queries {
		t.Fatalf("merged registry has %d queries, want %d (one per global query)", snap.Queries, queries)
	}
	// ModeHeap considers every code in every shard: the merged counter
	// must equal the full dataset per query.
	if want := uint64(queries * 400); snap.CodesConsidered != want {
		t.Fatalf("merged CodesConsidered = %d, want %d", snap.CodesConsidered, want)
	}
	var perShard uint64
	for i := 0; i < x.Shards(); i++ {
		perShard += x.Shard(i).Metrics().Snapshot().Queries
	}
	if want := uint64(queries * x.Shards()); perShard != want {
		t.Fatalf("per-shard registries total %d queries, want %d", perShard, want)
	}
	// Validation errors are counted on the merged registry.
	if _, err := x.Search(q.Row(0), 0, core.SearchOptions{}); err == nil {
		t.Fatal("k=0 did not error")
	}
	if got := x.Metrics().Snapshot().Errors; got != 1 {
		t.Fatalf("merged Errors = %d, want 1", got)
	}
}

// TestInitialThresholdSafety drives the threshold feedback hard: an
// externally injected bound equal to the true kth distance must not evict
// boundary ties, and a sharded search under heavy feedback still matches
// ground truth (covered per-mode in TestShardedExhaustiveEquivalence;
// here the injection plumbing is pinned directly).
func TestInitialThresholdSafety(t *testing.T) {
	data := testData(t, 300, 16, 20)
	cfg := core.Config{NumSubspaces: 4, Budget: 20, Seed: 21}
	single, err := core.Build(data, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := testData(t, 1, 16, 22).Row(0)
	s := single.NewSearcher()
	want, err := s.Search(q, 10, core.SearchOptions{Mode: core.ModeHeap})
	if err != nil {
		t.Fatal(err)
	}
	kth := want[len(want)-1].Dist
	for _, mode := range []core.SearchMode{core.ModeHeap, core.ModeEA, core.ModeTIEA} {
		opt := core.SearchOptions{Mode: mode, VisitFrac: 1.0, InitialThreshold: kth}
		got, err := s.Search(q, 10, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("mode %v with bound=kth returned %d results, want %d", mode, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("mode %v with bound=kth rank %d: %+v != %+v", mode, i, got[i], want[i])
			}
		}
	}
}
