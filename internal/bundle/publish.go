package bundle

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// The process-wide recorder registry behind /debug/vaq/bundle, mirroring
// the report registry in internal/diag: Publish rebinds an existing name
// instead of erroring, so index reloads and tests stay simple.
var recorders sync.Map // name -> *Recorder

// Publish registers rec under name for the /debug/vaq/bundle handler
// (installed on http.DefaultServeMux at package init — metrics.ServeDebug
// serves that mux). Publishing a nil recorder removes the name.
func Publish(name string, rec *Recorder) {
	if rec == nil {
		recorders.Delete(name)
		return
	}
	recorders.Store(name, rec)
}

func init() {
	http.HandleFunc("/debug/vaq/bundle", handleBundle)
}

// indexView is one published recorder's slice of the endpoint response:
// its live status plus the manifests of the bundles under its directory.
type indexView struct {
	Status  Status      `json:"status"`
	Bundles []*Manifest `json:"bundles"`
}

// handleBundle serves the registered flight recorders. Query parameters:
//
//	?index=X     only the recorder published as X (default: all)
//	?trigger=1   write a manual bundle on each selected recorder first
//	             (?reason=... names it); the response then includes it
func handleBundle(w http.ResponseWriter, r *http.Request) {
	wantName := r.URL.Query().Get("index")
	var names []string
	recorders.Range(func(k, _ any) bool {
		if wantName == "" || k.(string) == wantName {
			names = append(names, k.(string))
		}
		return true
	})
	sort.Strings(names)
	if wantName != "" && len(names) == 0 {
		http.Error(w, fmt.Sprintf("no flight recorder published as %q", wantName), http.StatusNotFound)
		return
	}
	trigger := r.URL.Query().Get("trigger") != ""
	reason := r.URL.Query().Get("reason")
	if reason == "" {
		reason = "http"
	}
	views := make(map[string]indexView, len(names))
	for _, name := range names {
		v, ok := recorders.Load(name)
		if !ok {
			continue
		}
		rec := v.(*Recorder)
		if trigger {
			if _, err := rec.Trigger(reason); err != nil {
				http.Error(w, fmt.Sprintf("trigger %q: %v", name, err), http.StatusInternalServerError)
				return
			}
		}
		mans, err := List(rec.Dir())
		if err != nil {
			http.Error(w, fmt.Sprintf("list %q: %v", name, err), http.StatusInternalServerError)
			return
		}
		views[name] = indexView{Status: rec.Status(), Bundles: mans}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(views) //nolint:errcheck // best-effort HTTP body
}
