// Package kmeans implements Lloyd's k-means with k-means++ seeding, the
// dictionary-learning workhorse of every product-quantization method in
// this repository (paper §II-C: "The cornerstone k-means method satisfies
// these conditions and is the prevalent choice for dictionary learning").
//
// It additionally provides the two specializations VAQ needs:
//
//   - Hierarchical training for very large dictionaries (paper §III-D: for
//     subspaces assigned more than 2^10 centroids, run k-means with a small
//     k and split each cluster again).
//   - One-dimensional k-means over sorted values (used to cluster the
//     per-dimension variances into non-uniform subspaces, paper §III-B).
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"vaq/internal/vec"
)

// Config controls training.
type Config struct {
	// K is the number of centroids. Required, >= 1.
	K int
	// MaxIter bounds Lloyd iterations (default 25).
	MaxIter int
	// Tolerance stops iterating when the relative decrease of the
	// quantization error falls below it (default 1e-4).
	Tolerance float64
	// Seed makes training deterministic.
	Seed int64
	// Parallel enables multi-goroutine assignment for large inputs.
	Parallel bool
	// HierarchicalThreshold: when K exceeds it, train hierarchically —
	// first k-means with K=HierarchicalBranch, then recursively split
	// each cluster. 0 disables hierarchy.
	HierarchicalThreshold int
	// HierarchicalBranch is the top-level k in hierarchical mode
	// (default 64 = 2^6, as in the paper).
	HierarchicalBranch int
}

// Result is a trained codebook.
type Result struct {
	// Centroids is a K x d matrix.
	Centroids *vec.Matrix
	// Assign[i] is the centroid index of training row i.
	Assign []int
	// Inertia is the final sum of squared distances to assigned centroids.
	Inertia float64
	// Iterations actually performed.
	Iterations int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxIter <= 0 {
		out.MaxIter = 25
	}
	if out.Tolerance <= 0 {
		out.Tolerance = 1e-4
	}
	if out.HierarchicalBranch <= 0 {
		out.HierarchicalBranch = 64
	}
	return out
}

// Train runs k-means on x.
func Train(x *vec.Matrix, cfg Config) (*Result, error) {
	c := cfg.withDefaults()
	if c.K < 1 {
		return nil, fmt.Errorf("kmeans: K must be >= 1, got %d", c.K)
	}
	if x.Rows == 0 {
		return nil, errors.New("kmeans: empty training set")
	}
	if c.HierarchicalThreshold > 0 && c.K > c.HierarchicalThreshold {
		return trainHierarchical(x, c)
	}
	return trainFlat(x, c)
}

func trainFlat(x *vec.Matrix, c Config) (*Result, error) {
	n, d := x.Rows, x.Cols
	k := c.K
	if k > n {
		k = n // cannot have more distinct centroids than points
	}
	rng := rand.New(rand.NewSource(c.Seed))
	centroids := seedPlusPlus(x, k, rng)
	assign := make([]int, n)
	dists := make([]float32, n)
	prevInertia := math.Inf(1)
	iters := 0
	for iter := 0; iter < c.MaxIter; iter++ {
		iters = iter + 1
		inertia := assignAll(x, centroids, assign, dists, c.Parallel)
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([]float64, k*d)
		for i := 0; i < n; i++ {
			a := assign[i]
			counts[a]++
			row := x.Row(i)
			s := sums[a*d : (a+1)*d]
			for j, v := range row {
				s[j] += float64(v)
			}
		}
		for cI := 0; cI < k; cI++ {
			if counts[cI] == 0 {
				// Empty cluster: re-seed at the point farthest from
				// its centroid (standard repair).
				far := farthestPoint(dists)
				copy(centroids.Row(cI), x.Row(far))
				dists[far] = 0
				continue
			}
			inv := 1 / float64(counts[cI])
			cr := centroids.Row(cI)
			s := sums[cI*d : (cI+1)*d]
			for j := range cr {
				cr[j] = float32(s[j] * inv)
			}
		}
		if prevInertia-inertia <= c.Tolerance*math.Max(prevInertia, 1e-30) && iter > 0 {
			prevInertia = inertia
			break
		}
		prevInertia = inertia
	}
	finalInertia := assignAll(x, centroids, assign, dists, c.Parallel)
	return &Result{Centroids: centroids, Assign: assign, Inertia: finalInertia, Iterations: iters}, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ strategy.
func seedPlusPlus(x *vec.Matrix, k int, rng *rand.Rand) *vec.Matrix {
	n, d := x.Rows, x.Cols
	centroids := vec.NewMatrix(k, d)
	first := rng.Intn(n)
	copy(centroids.Row(0), x.Row(first))
	if k == 1 {
		return centroids
	}
	minDist := make([]float64, n)
	for i := 0; i < n; i++ {
		minDist[i] = float64(vec.SquaredL2(x.Row(i), centroids.Row(0)))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, dd := range minDist {
			total += dd
		}
		var chosen int
		if total <= 0 {
			chosen = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			var acc float64
			chosen = n - 1
			for i, dd := range minDist {
				acc += dd
				if acc >= target {
					chosen = i
					break
				}
			}
		}
		copy(centroids.Row(c), x.Row(chosen))
		for i := 0; i < n; i++ {
			dd := float64(vec.SquaredL2(x.Row(i), centroids.Row(c)))
			if dd < minDist[i] {
				minDist[i] = dd
			}
		}
	}
	return centroids
}

// assignAll assigns every row of x to its nearest centroid, filling assign
// and dists, and returns the total inertia.
func assignAll(x *vec.Matrix, centroids *vec.Matrix, assign []int, dists []float32, parallel bool) float64 {
	n := x.Rows
	workers := 1
	if parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > n/1024+1 {
			workers = n/1024 + 1
		}
	}
	if workers <= 1 {
		return assignRange(x, centroids, assign, dists, 0, n)
	}
	var wg sync.WaitGroup
	partial := make([]float64, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partial[w] = assignRange(x, centroids, assign, dists, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	var total float64
	for _, p := range partial {
		total += p
	}
	return total
}

func assignRange(x, centroids *vec.Matrix, assign []int, dists []float32, lo, hi int) float64 {
	var inertia float64
	k := centroids.Rows
	for i := lo; i < hi; i++ {
		row := x.Row(i)
		best := 0
		bestD := vec.SquaredL2(row, centroids.Row(0))
		for c := 1; c < k; c++ {
			d := vec.SquaredL2(row, centroids.Row(c))
			if d < bestD {
				bestD = d
				best = c
			}
		}
		assign[i] = best
		dists[i] = bestD
		inertia += float64(bestD)
	}
	return inertia
}

func farthestPoint(dists []float32) int {
	best, bestD := 0, float32(-1)
	for i, d := range dists {
		if d > bestD {
			bestD = d
			best = i
		}
	}
	return best
}

// trainHierarchical trains a large codebook by first clustering into
// HierarchicalBranch groups and then splitting each group into its
// proportional share of the K centroids (paper §III-D).
func trainHierarchical(x *vec.Matrix, c Config) (*Result, error) {
	top := c
	top.K = c.HierarchicalBranch
	top.HierarchicalThreshold = 0
	if top.K > c.K {
		top.K = c.K
	}
	coarse, err := trainFlat(x, top)
	if err != nil {
		return nil, err
	}
	kTop := coarse.Centroids.Rows
	// Group member indices per coarse cluster.
	groups := make([][]int, kTop)
	for i, a := range coarse.Assign {
		groups[a] = append(groups[a], i)
	}
	// Allocate sub-centroid counts proportionally to cluster sizes, at
	// least 1 each, summing exactly to K.
	subK := make([]int, kTop)
	remaining := c.K
	for g := range groups {
		subK[g] = 1
		remaining--
	}
	for remaining > 0 {
		// Largest remainder: give the next centroid to the group with the
		// highest members-per-centroid ratio.
		best, bestRatio := 0, -1.0
		for g := range groups {
			ratio := float64(len(groups[g])) / float64(subK[g])
			if ratio > bestRatio {
				bestRatio = ratio
				best = g
			}
		}
		subK[best]++
		remaining--
	}
	d := x.Cols
	centroids := vec.NewMatrix(c.K, d)
	offsets := make([]int, kTop)
	next := 0
	for g := range groups {
		offsets[g] = next
		if len(groups[g]) == 0 {
			// Empty coarse cluster: keep its centroid as the single
			// representative so indexes remain valid.
			copy(centroids.Row(next), coarse.Centroids.Row(g))
			next += subK[g]
			continue
		}
		sub := x.SelectRowsCopy(groups[g])
		cfg := c
		cfg.K = subK[g]
		cfg.HierarchicalThreshold = 0
		cfg.Seed = c.Seed + int64(g) + 1
		res, err := trainFlat(sub, cfg)
		if err != nil {
			return nil, err
		}
		for j := 0; j < res.Centroids.Rows; j++ {
			copy(centroids.Row(next+j), res.Centroids.Row(j))
		}
		// If the subset had fewer points than subK[g], pad duplicate rows
		// with the coarse centroid so every slot is a valid vector.
		for j := res.Centroids.Rows; j < subK[g]; j++ {
			copy(centroids.Row(next+j), coarse.Centroids.Row(g))
		}
		next += subK[g]
	}
	assign := make([]int, x.Rows)
	dists := make([]float32, x.Rows)
	inertia := assignAll(x, centroids, assign, dists, c.Parallel)
	return &Result{Centroids: centroids, Assign: assign, Inertia: inertia, Iterations: coarse.Iterations}, nil
}

// AssignNearest returns the index of the centroid nearest to v.
func AssignNearest(centroids *vec.Matrix, v []float32) int {
	best := 0
	bestD := vec.SquaredL2(v, centroids.Row(0))
	for c := 1; c < centroids.Rows; c++ {
		d := vec.SquaredL2(v, centroids.Row(c))
		if d < bestD {
			bestD = d
			best = c
		}
	}
	return best
}
