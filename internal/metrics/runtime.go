package metrics

import (
	"fmt"
	"io"
	"math"
	rtm "runtime/metrics"
)

// runtimeSamples maps the runtime/metrics names we sample onto exported
// Prometheus families. Sampling happens at scrape time (no background
// goroutine): runtime/metrics reads are cheap and a scrape is the only
// consumer. Histogram-kind metrics (GC pauses) are folded into a _total
// sum approximated by bucket midpoints plus an event count.
var runtimeSamples = []struct {
	metric string // runtime/metrics name
	name   string // exported family name
	help   string
	typ    string // "gauge" or "counter"
}{
	{"/memory/classes/heap/objects:bytes", "vaq_runtime_heap_bytes",
		"Bytes occupied by live heap objects plus dead objects not yet swept.", "gauge"},
	{"/sched/goroutines:goroutines", "vaq_runtime_goroutines",
		"Live goroutines.", "gauge"},
	{"/gc/cycles/total:gc-cycles", "vaq_runtime_gc_cycles_total",
		"Completed GC cycles.", "counter"},
	{"/gc/pauses:seconds", "vaq_runtime_gc_pause_seconds_total",
		"Approximate cumulative stop-the-world pause time (histogram bucket midpoints).", "counter"},
}

// WriteRuntimeMetrics appends process-level runtime health (heap bytes,
// goroutines, GC cycles and pause time) to a Prometheus scrape. These are
// per-process, not per-index, so they carry no index label. Metrics a
// given Go runtime does not export are skipped silently.
func WriteRuntimeMetrics(w io.Writer) error {
	samples := make([]rtm.Sample, len(runtimeSamples))
	for i, rs := range runtimeSamples {
		samples[i].Name = rs.metric
	}
	rtm.Read(samples)
	for i, rs := range runtimeSamples {
		v := samples[i].Value
		switch v.Kind() {
		case rtm.KindUint64:
			if err := writeTypedHeader(w, rs.name, rs.help, rs.typ); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", rs.name, v.Uint64()); err != nil {
				return err
			}
		case rtm.KindFloat64:
			if err := writeTypedHeader(w, rs.name, rs.help, rs.typ); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %g\n", rs.name, v.Float64()); err != nil {
				return err
			}
		case rtm.KindFloat64Histogram:
			sum, count := histogramApproxSum(v.Float64Histogram())
			if err := writeTypedHeader(w, rs.name, rs.help, rs.typ); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %g\n", rs.name, sum); err != nil {
				return err
			}
			events := rs.name + "_events"
			if err := writeTypedHeader(w, events, rs.help+" (event count)", "counter"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", events, count); err != nil {
				return err
			}
		default:
			// KindBad: this runtime does not export the metric; skip.
		}
	}
	return nil
}

// histogramApproxSum approximates the sum of a runtime/metrics histogram
// by weighting each bucket's count with its midpoint (unbounded edge
// buckets fall back to their finite boundary).
func histogramApproxSum(h *rtm.Float64Histogram) (sum float64, count uint64) {
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		count += c
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := (lo + hi) / 2
		if math.IsInf(lo, -1) {
			mid = hi
		} else if math.IsInf(hi, +1) {
			mid = lo
		}
		sum += mid * float64(c)
	}
	return sum, count
}
