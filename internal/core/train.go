package core

import (
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"time"

	"vaq/internal/diag"
	"vaq/internal/linalg"
	"vaq/internal/metrics"
	"vaq/internal/pca"
	"vaq/internal/quantizer"
	"vaq/internal/vec"
)

// Trained is the outcome of the learning half of a build: the PCA rotation,
// the balanced subspace layout, the adaptive bit allocation and the trained
// dictionaries — everything that depends only on the training sample, none
// of the per-dataset state. It is immutable once returned, so one Trained
// can encode many partitions concurrently (EncodeIndex is safe to call from
// multiple goroutines): a sharded build trains once on a shared sample and
// fans the per-shard encodes out in parallel, guaranteeing every shard
// quantizes against the same codebooks and therefore produces comparable
// distances.
type Trained struct {
	cfg      Config // defaults applied and validated
	model    *pca.Model
	ratios   []float64
	subVar   []float64
	bits     []int
	cb       *quantizer.Codebooks
	queryDim int
	// trainZ is the projected training matrix, kept so Build can reuse it
	// as the dataset projection when train == data (the historical fast
	// path — dropping it would change nothing but waste a projection).
	trainZ *vec.Matrix
	// report carries the training-phase timings (PCA, Allocation,
	// Training); trainWall the wall clock of the whole Train call, folded
	// into each encoded index's Total.
	report    metrics.BuildReport
	trainWall time.Duration
}

// Train runs the learning half of Build on the training sample: PCA
// (Algorithm 1), subspace construction and partial balancing (§III-B/C),
// bit allocation (Algorithm 2) and dictionary training (Algorithm 3 lines
// 1-23). The result encodes datasets via EncodeIndex.
func Train(train *vec.Matrix, cfg Config) (*Trained, error) {
	cfg = cfg.withDefaults()
	if train == nil || train.Rows == 0 {
		return nil, errors.New("core: empty train matrix")
	}
	d := train.Cols
	m := cfg.NumSubspaces
	if m < 1 || m > d {
		return nil, fmt.Errorf("core: NumSubspaces=%d invalid for %d dimensions", m, d)
	}
	if cfg.ScanLayout != LayoutBlocked && cfg.ScanLayout != LayoutRowMajor {
		return nil, fmt.Errorf("core: unknown ScanLayout %d", cfg.ScanLayout)
	}
	if cfg.AccuracyMode != AccuracyExact && cfg.AccuracyMode != AccuracyFast {
		return nil, fmt.Errorf("core: unknown AccuracyMode %d", cfg.AccuracyMode)
	}
	if cfg.AccuracyMode == AccuracyFast && cfg.ScanLayout != LayoutBlocked {
		return nil, errors.New("core: AccuracyFast requires LayoutBlocked")
	}
	var report metrics.BuildReport
	trainStart := time.Now()

	// Step 1 (Algorithm 1): eigendecomposition, descending eigenvalues.
	phase := time.Now()
	model, err := pca.Fit(train, pca.Options{Center: cfg.CenterPCA, Method: linalg.EigAuto})
	if err != nil {
		return nil, err
	}
	report.PCA = time.Since(phase)
	ratios := model.ExplainedVarianceRatio()

	// Step 2 (§III-B): subspace lengths (uniform or variance-clustered).
	lengths, err := buildSubspaceLengths(ratios, m, cfg.NonUniform)
	if err != nil {
		return nil, err
	}

	// Step 3 (§III-C): partial balancing permutation of the PCs.
	if !cfg.DisablePartialBalance {
		perm := partialBalance(ratios, lengths)
		if err := model.PermuteComponents(perm); err != nil {
			return nil, err
		}
		ratios = applyPermutationFloat64(ratios, perm)
	}
	subVar := subspaceVariances(ratios, lengths)

	// Step 4 (Algorithm 2): adaptive bit allocation.
	phase = time.Now()
	bits, err := allocateBits(cfg.Alloc, allocParams{
		Weights:        subVar,
		Budget:         cfg.Budget,
		MinBits:        cfg.MinBits,
		MaxBits:        cfg.MaxBits,
		TargetVariance: cfg.TargetVariance,
		Extra:          cfg.AllocConstraints,
	})
	if err != nil {
		return nil, err
	}
	report.Allocation = time.Since(phase)

	// Step 5 (Algorithm 3 lines 1-23): project the sample and train the
	// variable-size dictionaries.
	trainZ, err := model.Project(train)
	if err != nil {
		return nil, err
	}
	sub, err := quantizer.FromLengths(lengths)
	if err != nil {
		return nil, err
	}
	phase = time.Now()
	cb, err := quantizer.TrainCodebooks(trainZ, sub, bits, quantizer.TrainConfig{
		Seed:                  cfg.Seed,
		MaxIter:               cfg.KMeansIters,
		Parallel:              true,
		HierarchicalThreshold: cfg.HierarchicalThreshold,
	})
	if err != nil {
		return nil, err
	}
	report.Training = time.Since(phase)
	return &Trained{
		cfg:       cfg,
		model:     model,
		ratios:    ratios,
		subVar:    subVar,
		bits:      bits,
		cb:        cb,
		queryDim:  d,
		trainZ:    trainZ,
		report:    report,
		trainWall: time.Since(trainStart),
	}, nil
}

// Dim reports the input dimensionality the trained model expects.
func (t *Trained) Dim() int { return t.queryDim }

// Config returns the build configuration with defaults applied.
func (t *Trained) Config() Config { return t.cfg }

// EncodeIndex quantizes data against the trained dictionaries and
// assembles a fully searchable Index (codes, TI skip structure, scan
// layouts, diagnostics baseline). Safe for concurrent use: a single
// Trained can encode independent partitions in parallel.
func (t *Trained) EncodeIndex(data *vec.Matrix) (*Index, error) {
	return t.encodeIndex(data, nil)
}

// encodeIndex is EncodeIndex with an optional precomputed projection of
// data (Build passes the training projection through when train == data).
func (t *Trained) encodeIndex(data, dataZ *vec.Matrix) (*Index, error) {
	cfg := t.cfg
	if data == nil || data.Rows == 0 {
		return nil, errors.New("core: empty data matrix")
	}
	if data.Cols != t.queryDim {
		return nil, fmt.Errorf("core: data dim %d != trained dim %d", data.Cols, t.queryDim)
	}
	report := t.report
	encodeStart := time.Now()
	var err error
	if dataZ == nil {
		dataZ, err = t.model.Project(data)
		if err != nil {
			return nil, err
		}
	}
	phase := time.Now()
	codes, err := t.cb.Encode(dataZ, true)
	if err != nil {
		return nil, err
	}
	report.Encoding = time.Since(phase)

	// Step 6 (Algorithm 3 lines 24-48): TI cluster structure.
	clusterCount := cfg.TIClusters
	if clusterCount == 0 {
		clusterCount = data.Rows / 64
		if clusterCount > 1000 {
			clusterCount = 1000
		}
		if clusterCount < 1 {
			clusterCount = 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 104729))
	phase = time.Now()
	ti := buildTIIndex(t.cb, codes, clusterCount, cfg.TIPrefixSubspaces, rng)
	report.TIClustering = time.Since(phase)

	// Step 7: derive the scan-optimized physical layout (cluster-
	// contiguous, blocked-transposed, uint8 where dictionaries allow).
	var blocked *blockedStore
	var fast *fastStore
	if cfg.ScanLayout == LayoutBlocked {
		phase = time.Now()
		blocked = buildBlockedStore(t.cb, codes, ti)
		if cfg.AccuracyMode == AccuracyFast {
			fast = buildFastStore(t.cb, codes, ti, cfg.Seed, nil)
		}
		report.Layout = time.Since(phase)
	}
	// Step 8: the diagnostics baseline — the Build-time IndexReport. The
	// projected dataset is still on hand here, so the distortion fields
	// are exact; Diagnose carries them forward once dataZ is gone.
	phase = time.Now()
	baseRep := diag.Compute(diag.Input{
		N: data.Rows, Dim: t.queryDim, Bits: t.bits, VarianceShares: t.subVar,
		Codebooks: t.cb, Codes: codes, ClusterSizes: ti.sizes(), Projected: dataZ,
	})
	report.Diagnostics = time.Since(phase)
	report.Total = t.trainWall + time.Since(encodeStart)

	m := cfg.NumSubspaces
	var reg *metrics.IndexMetrics
	if !cfg.DisableMetrics {
		// Sized for attribution (a query abandons after 0..m lookups) and
		// for the per-subspace drift gauges.
		reg = metrics.NewSized(m+1, m)
	}
	ix := &Index{
		cfg:      cfg,
		model:    t.model,
		ratios:   t.ratios,
		subVar:   t.subVar,
		bits:     t.bits,
		cb:       t.cb,
		codes:    codes,
		ti:       ti,
		blocked:  blocked,
		fast:     fast,
		n:        data.Rows,
		queryDim: t.queryDim,
		metrics:  reg,
		report:   report,
	}
	if cfg.RecallSampleRate > 0 {
		ix.retained = dataZ
		ix.recallEvery = sampleStride(cfg.RecallSampleRate)
	}
	if cfg.SLO != nil && reg != nil {
		reg.ConfigureSLO(*cfg.SLO, ix.sloBreach)
	}
	ix.initDiagnostics(baseRep)
	ix.SetProfileLabel("vaq")
	if cfg.Logger != nil {
		cfg.Logger.Info("vaq.build",
			slog.Int("n", data.Rows), slog.Int("dim", t.queryDim),
			slog.Int("subspaces", m), slog.Int("budget", cfg.Budget),
			slog.Int("ti_clusters", len(ti.clusters)),
			slog.String("layout", cfg.ScanLayout.String()),
			slog.String("accuracy", cfg.AccuracyMode.String()),
			slog.Duration("pca", report.PCA),
			slog.Duration("allocation", report.Allocation),
			slog.Duration("training", report.Training),
			slog.Duration("encoding", report.Encoding),
			slog.Duration("ti_clustering", report.TIClustering),
			slog.Duration("layout_build", report.Layout),
			slog.Duration("diagnostics", report.Diagnostics),
			slog.Duration("total", report.Total))
	}
	return ix, nil
}
