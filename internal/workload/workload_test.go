package workload

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testRecord(i int) Record {
	return Record{
		LatencyNs: int64(1000 * (i + 1)),
		TraceSeq:  uint64(i),
		K:         10,
		Mode:      int32(i % 3),
		VisitFrac: 0.25,
		Subspaces: 0,
		Projected: i%2 == 1,
		Query:     []float32{float32(i), float32(i) * 0.5, -1.25},
		IDs:       []int32{int32(i), int32(i + 1)},
		Dists:     []float32{0.5, 1.5},
	}
}

func TestSampleStride(t *testing.T) {
	cases := []struct {
		rate float64
		want uint64
	}{
		{0, 1}, {1, 1}, {2, 1}, {0.5, 2}, {0.25, 4}, {1.0 / 64, 64}, {0.01, 100},
	}
	for _, c := range cases {
		if got := SampleStride(c.rate); got != c.want {
			t.Errorf("SampleStride(%v) = %d, want %d", c.rate, got, c.want)
		}
	}
}

func TestCaptureStrideDeterministic(t *testing.T) {
	c := NewCapture(Config{SampleRate: 0.25, MaxRecords: 64})
	sampled := 0
	for i := 0; i < 64; i++ {
		if c.ShouldSample() {
			sampled++
		}
	}
	if sampled != 16 {
		t.Fatalf("sampled %d of 64 at rate 1/4, want 16", sampled)
	}
}

func TestCaptureBounded(t *testing.T) {
	c := NewCapture(Config{MaxRecords: 4})
	for i := 0; i < 10; i++ {
		r := testRecord(i)
		c.Add(&r)
	}
	if got := c.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := c.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	l := c.Snapshot()
	if len(l.Records) != 4 {
		t.Fatalf("snapshot has %d records, want 4", len(l.Records))
	}
	for i, r := range l.Records {
		if r.TraceSeq != uint64(i) {
			t.Fatalf("record %d out of capture order: seq %d", i, r.TraceSeq)
		}
		if r.OffsetNs < 0 {
			t.Fatalf("record %d has negative offset", i)
		}
	}
}

func TestCaptureConcurrent(t *testing.T) {
	c := NewCapture(Config{MaxRecords: 128})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				if c.ShouldSample() {
					r := testRecord(g*32 + i)
					c.Add(&r)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got != 128 {
		t.Fatalf("Len = %d, want 128", got)
	}
	if got := c.Dropped(); got != 8*32-128 {
		t.Fatalf("Dropped = %d, want %d", got, 8*32-128)
	}
}

func TestLogRoundTripByteIdentical(t *testing.T) {
	l := &Log{
		Version:     FormatVersion,
		Fingerprint: "deadbeef01234567",
		Dim:         3,
	}
	for i := 0; i < 17; i++ {
		r := testRecord(i)
		r.OffsetNs = int64(i) * 1_000_000
		l.Records = append(l.Records, r)
	}
	var a bytes.Buffer
	if _, err := l.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLog(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint != l.Fingerprint || back.Dim != l.Dim || len(back.Records) != len(l.Records) {
		t.Fatalf("header mismatch after round trip: %+v", back)
	}
	var b bytes.Buffer
	if _, err := back.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("re-serialized log differs: %d vs %d bytes", a.Len(), b.Len())
	}
	for i := range l.Records {
		got, want := back.Records[i], l.Records[i]
		if got.LatencyNs != want.LatencyNs || got.Projected != want.Projected ||
			got.K != want.K || got.Mode != want.Mode || got.VisitFrac != want.VisitFrac {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, got, want)
		}
	}
}

func TestReadLogRejectsGarbage(t *testing.T) {
	if _, err := ReadLog(bytes.NewReader([]byte("VAQDxxxxxxxxxxx"))); err == nil {
		t.Fatal("wrong magic accepted")
	}
	var buf bytes.Buffer
	l := &Log{Fingerprint: "fp", Dim: 2}
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // version
	if _, err := ReadLog(bytes.NewReader(raw)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := ReadLog(bytes.NewReader(buf.Bytes()[:6])); err == nil {
		t.Fatal("truncated log accepted")
	}
}

func TestLogSaveLoad(t *testing.T) {
	path := t.TempDir() + "/w.vaqwl"
	l := &Log{Fingerprint: "fp01", Dim: 3, Records: []Record{testRecord(0), testRecord(1)}}
	if err := l.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint != "fp01" || len(back.Records) != 2 {
		t.Fatalf("loaded log mismatch: %+v", back)
	}
}

func TestReplayIdentical(t *testing.T) {
	l := &Log{Dim: 3}
	for i := 0; i < 20; i++ {
		l.Records = append(l.Records, testRecord(i))
	}
	run := func(r *Record) ([]int32, []float32, error) {
		return append([]int32(nil), r.IDs...), append([]float32(nil), r.Dists...), nil
	}
	rep, diffs, err := Replay(l, run, Options{Thresholds: Thresholds{MinOverlap: 1, MaxDistDrift: 0, DistDriftSet: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("identical replay failed thresholds: %v", rep.Violations)
	}
	if rep.MeanOverlap != 1 || rep.WorstOverlap != 1 || rep.MaxDistDrift != 0 {
		t.Fatalf("identical replay not exact: %+v", rep)
	}
	if rep.ExactMatches != len(l.Records) {
		t.Fatalf("ExactMatches = %d, want %d", rep.ExactMatches, len(l.Records))
	}
	if len(diffs) != len(l.Records) {
		t.Fatalf("got %d diffs", len(diffs))
	}
}

func TestReplayDivergence(t *testing.T) {
	l := &Log{Dim: 3, Records: []Record{
		{K: 2, Query: []float32{1}, IDs: []int32{1, 2}, Dists: []float32{1, 2}},
		{K: 2, Query: []float32{2}, IDs: []int32{3, 4}, Dists: []float32{1, 2}},
	}}
	run := func(r *Record) ([]int32, []float32, error) {
		if r.IDs[0] == 1 {
			return []int32{1, 9}, []float32{1.1, 5}, nil // half overlap, 10% drift on id 1
		}
		return []int32{3, 4}, []float32{1, 2}, nil
	}
	rep, _, err := Replay(l, run, Options{Thresholds: Thresholds{MinOverlap: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatal("divergent replay passed a MinOverlap=1 gate")
	}
	if want := 0.75; rep.MeanOverlap != want {
		t.Fatalf("MeanOverlap = %v, want %v", rep.MeanOverlap, want)
	}
	if rep.WorstOverlap != 0.5 || rep.WorstQuery != 0 {
		t.Fatalf("worst = %v at %d, want 0.5 at 0", rep.WorstOverlap, rep.WorstQuery)
	}
	if rep.MaxDistDrift < 0.0999 || rep.MaxDistDrift > 0.1001 {
		t.Fatalf("MaxDistDrift = %v, want ~0.1", rep.MaxDistDrift)
	}
	if rep.ExactMatches != 1 {
		t.Fatalf("ExactMatches = %d, want 1", rep.ExactMatches)
	}
}

func TestReplayErrorsCountAndGate(t *testing.T) {
	l := &Log{Records: []Record{testRecord(0)}}
	run := func(r *Record) ([]int32, []float32, error) { return nil, nil, fmt.Errorf("boom") }
	rep, diffs, err := Replay(l, run, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 1 || rep.Passed() {
		t.Fatalf("errored replay must fail: %+v", rep)
	}
	if diffs[0].Err == nil {
		t.Fatal("diff lost the error")
	}
}

func TestReplayPaced(t *testing.T) {
	l := &Log{Records: []Record{
		{OffsetNs: 0, IDs: []int32{1}, Dists: []float32{1}},
		{OffsetNs: int64(30 * time.Millisecond), IDs: []int32{1}, Dists: []float32{1}},
	}}
	run := func(r *Record) ([]int32, []float32, error) { return r.IDs, r.Dists, nil }
	start := time.Now()
	if _, _, err := Replay(l, run, Options{Paced: true}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("paced replay finished in %v, want >= ~30ms", el)
	}
}

func TestPercentile(t *testing.T) {
	d := []time.Duration{5, 1, 4, 2, 3}
	if p := percentile(d, 0.5); p != 3 {
		t.Fatalf("p50 = %v", p)
	}
	if p := percentile(d, 0.99); p != 5 {
		t.Fatalf("p99 = %v", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %v", p)
	}
}

func TestNilCaptureSafe(t *testing.T) {
	var c *Capture
	if c.ShouldSample() {
		t.Fatal("nil capture sampled")
	}
	c.Add(&Record{})
	if c.Len() != 0 || c.Dropped() != 0 || c.Snapshot() != nil || c.Stride() != 0 {
		t.Fatal("nil capture not inert")
	}
}

func TestCaptureRingKeepsNewest(t *testing.T) {
	c := NewCapture(Config{MaxRecords: 4, Ring: true})
	for i := 0; i < 10; i++ {
		r := testRecord(i)
		c.Add(&r)
	}
	if got := c.Len(); got != 4 {
		t.Fatalf("ring Len = %d, want 4", got)
	}
	if got := c.Dropped(); got != 6 {
		t.Fatalf("ring Dropped = %d, want 6 overwrites", got)
	}
	log := c.Snapshot()
	if len(log.Records) != 4 {
		t.Fatalf("ring snapshot has %d records, want 4", len(log.Records))
	}
	// The newest 4 records are 6..9, oldest first.
	for i, r := range log.Records {
		if want := uint64(6 + i); r.TraceSeq != want {
			t.Fatalf("ring record %d has seq %d, want %d", i, r.TraceSeq, want)
		}
	}
	for i := 1; i < len(log.Records); i++ {
		if log.Records[i].OffsetNs < log.Records[i-1].OffsetNs {
			t.Fatalf("ring snapshot out of offset order at %d", i)
		}
	}
}

func TestCaptureRingUnwrappedMatchesBounded(t *testing.T) {
	c := NewCapture(Config{MaxRecords: 8, Ring: true})
	for i := 0; i < 5; i++ {
		r := testRecord(i)
		c.Add(&r)
	}
	log := c.Snapshot()
	if len(log.Records) != 5 || c.Dropped() != 0 {
		t.Fatalf("unwrapped ring: %d records, %d dropped", len(log.Records), c.Dropped())
	}
	for i, r := range log.Records {
		if r.TraceSeq != uint64(i) {
			t.Fatalf("unwrapped ring record %d has seq %d", i, r.TraceSeq)
		}
	}
}

func TestCaptureRingConcurrent(t *testing.T) {
	c := NewCapture(Config{MaxRecords: 16, Ring: true})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r := testRecord(g*500 + i)
				c.Add(&r)
			}
		}(g)
	}
	wg.Wait()
	log := c.Snapshot()
	if len(log.Records) != 16 {
		t.Fatalf("concurrent ring snapshot has %d records, want 16", len(log.Records))
	}
	if got := c.Sampled(); got != 2000 {
		t.Fatalf("Sampled = %d, want 2000", got)
	}
}
