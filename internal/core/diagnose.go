package core

import (
	"context"
	"log/slog"
	"runtime/pprof"
	"time"

	"vaq/internal/alert"
	"vaq/internal/diag"
	"vaq/internal/quantizer"
)

// driftEWMAWindow is the smoothing horizon (in vectors) of the
// quantization-drift estimator: an Add batch of b vectors moves the
// per-subspace EWMA by weight b/(b+driftEWMAWindow), so the gauge reflects
// roughly the last ~1k incoming vectors regardless of batch sizing.
const driftEWMAWindow = 1024

// sizes returns the TI cluster member counts (the balance input of the
// IndexReport).
func (ti *tiIndex) sizes() []int {
	s := make([]int, len(ti.clusters))
	for i, members := range ti.clusters {
		s[i] = len(members)
	}
	return s
}

// diagInputLocked assembles the read-only view Compute needs. Callers hold
// at least ix.mu.RLock.
func (ix *Index) diagInputLocked() diag.Input {
	return diag.Input{
		N:              ix.n,
		Dim:            ix.queryDim,
		Bits:           ix.bits,
		VarianceShares: ix.subVar,
		Codebooks:      ix.cb,
		Codes:          ix.codes,
		ClusterSizes:   ix.ti.sizes(),
		Projected:      ix.retained,
	}
}

// Diagnose computes a point-in-time IndexReport: utilization and TI
// balance are always recomputed from the current codes; the distortion
// fields come from the retained projected vectors when the index has them
// (MSESource "fresh", covering everything Add appended), else from the
// Build-time baseline (MSESource "build-baseline"), else the report is
// Partial (a loaded index retains neither). Safe to call concurrently
// with Search and Add.
func (ix *Index) Diagnose() *diag.Report {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	rep := diag.Compute(ix.diagInputLocked())
	rep.GeneratedAt = time.Now()
	switch {
	case !rep.Partial:
		rep.MSESource = diag.MSEFresh
	case ix.baseline != nil:
		// No retained vectors, but the Build-time distortion accounting is
		// still on hand: carry it forward explicitly instead of reporting
		// zeroed MSE fields. Vectors added since Build are not reflected
		// here — that is what the drift gauges watch.
		rep.Partial = false
		rep.MSESource = diag.MSEBaseline
		rep.TotalMSE = ix.baseline.TotalMSE
		rep.TotalVariance = ix.baseline.TotalVariance
		rep.MSEShare = ix.baseline.MSEShare
		for s := range rep.Subspaces {
			if s < len(ix.baseline.Subspaces) {
				b := &ix.baseline.Subspaces[s]
				rep.Subspaces[s].Variance = b.Variance
				rep.Subspaces[s].MSE = b.MSE
				rep.Subspaces[s].MSEShare = b.MSEShare
			}
		}
	}
	if ix.baselineMSE != nil {
		rep.Drift = ix.driftReportLocked()
	}
	rep.SLO = ix.metrics.SLOSnapshot()
	return rep
}

// driftReportLocked snapshots the EWMA drift state for a report. Callers
// hold at least ix.mu.RLock.
func (ix *Index) driftReportLocked() *diag.DriftReport {
	ratio := driftRatio(ix.driftEWMA, ix.baselineMSE)
	return &diag.DriftReport{
		Ratio:           ratio,
		AlertRatio:      ix.cfg.DriftAlertRatio,
		Alert:           ix.cfg.DriftAlertRatio > 0 && ratio > ix.cfg.DriftAlertRatio,
		SubspaceMSEEWMA: append([]float64(nil), ix.driftEWMA...),
		BaselineMSE:     append([]float64(nil), ix.baselineMSE...),
	}
}

// driftRatio is total EWMA MSE over total baseline MSE (1 = no drift). A
// zero baseline (exact reconstruction everywhere) cannot drift downward,
// so any positive EWMA there reports as ratio 1 + ewma to stay finite.
func driftRatio(ewma, baseline []float64) float64 {
	var e, b float64
	for _, v := range ewma {
		e += v
	}
	for _, v := range baseline {
		b += v
	}
	if b <= 0 {
		if e <= 0 {
			return 1
		}
		return 1 + e
	}
	return e / b
}

// initDiagnostics computes the Build-time baseline report and seeds the
// drift estimator and the registry's drift gauges from it. Called once at
// the end of Build with the projected dataset still on hand.
func (ix *Index) initDiagnostics(rep *diag.Report) {
	rep.GeneratedAt = time.Now()
	rep.MSESource = diag.MSEFresh
	ix.baseline = rep
	ix.baselineMSE = make([]float64, len(rep.Subspaces))
	for s := range rep.Subspaces {
		ix.baselineMSE[s] = rep.Subspaces[s].MSE
	}
	ix.driftEWMA = append([]float64(nil), ix.baselineMSE...)
	ix.metrics.SetSubspaceMSE(ix.driftEWMA)
	ix.metrics.SetDrift(1, false)
	ix.metrics.SetDeadCodewords(uint64(rep.DeadCodewordsTotal))
}

// driftSourceLocked returns the vaq.drift alert latch, creating it on
// first use: on the metrics alert bus when the index has a registry (so
// drift edges reach bus subscribers like the flight recorder), standalone
// otherwise (the latch — and its slog event — must keep working under
// DisableMetrics). Callers hold ix.mu.Lock; only foldDriftLocked touches
// ix.driftSrc, so the lazy write is single-threaded.
func (ix *Index) driftSourceLocked() *alert.Source {
	if ix.driftSrc == nil {
		if b := ix.metrics.Alerts(); b != nil {
			ix.driftSrc = b.Source("vaq.drift")
		} else {
			ix.driftSrc = alert.NewSource("vaq.drift")
		}
	}
	return ix.driftSrc
}

// foldDriftLocked folds one Add batch's per-subspace squared
// reconstruction error into the EWMA drift estimator, refreshes the
// registry gauges, and emits the vaq.drift slog event when the ratio
// first crosses Config.DriftAlertRatio (the edge latch lives on the alert
// bus, so the crossing also reaches bus subscribers and re-arms on
// recovery). Callers hold ix.mu.Lock.
func (ix *Index) foldDriftLocked(batchSqErr []float64, batch int) {
	alpha := float64(batch) / (float64(batch) + driftEWMAWindow)
	for s := range ix.driftEWMA {
		ix.driftEWMA[s] = (1-alpha)*ix.driftEWMA[s] + alpha*batchSqErr[s]/float64(batch)
	}
	ratio := driftRatio(ix.driftEWMA, ix.baselineMSE)
	alerting := ix.cfg.DriftAlertRatio > 0 && ratio > ix.cfg.DriftAlertRatio
	dead := countDeadCodewords(ix.cb, ix.codes)
	ix.metrics.SetSubspaceMSE(ix.driftEWMA)
	ix.metrics.SetDrift(ratio, alerting)
	ix.metrics.SetDeadCodewords(uint64(dead))
	if ix.driftSourceLocked().Set(alerting) && ix.cfg.Logger != nil {
		ix.cfg.Logger.Warn("vaq.drift",
			slog.Float64("ratio", ratio),
			slog.Float64("alert_ratio", ix.cfg.DriftAlertRatio),
			slog.Int("n", ix.n),
			slog.Int("dead_codewords", dead))
	}
}

// sloBreach is the metrics.BreachFunc Build installs for Config.SLO: one
// vaq.slo slog event per budget-exhaustion edge (the metrics layer latches
// the edge, so this fires exactly once per crossing and re-arms on
// recovery). Called from the query path — one structured log line, nothing
// else.
func (ix *Index) sloBreach(kind string, remaining, burn float64) {
	if ix.cfg.Logger == nil {
		return
	}
	ix.cfg.Logger.Warn("vaq.slo",
		slog.String("objective", kind),
		slog.Float64("budget_remaining", remaining),
		slog.Float64("burn_rate", burn))
}

// countDeadCodewords counts dictionary entries no code references, summed
// over subspaces. One pass over the codes; Add calls it after each batch
// (Add already pays an O(n·m) blocked-layout rebuild, so this does not
// change its complexity).
func countDeadCodewords(cb *quantizer.Codebooks, codes *quantizer.Codes) int {
	m := cb.Sub.M()
	used := make([][]bool, m)
	total := 0
	for s := 0; s < m; s++ {
		used[s] = make([]bool, cb.Books[s].Rows)
		total += cb.Books[s].Rows
	}
	live := 0
	for i := 0; i < codes.N; i++ {
		row := codes.Row(i)
		for s := 0; s < m; s++ {
			c := int(row[s])
			if c < len(used[s]) && !used[s][c] {
				used[s][c] = true
				live++
			}
		}
	}
	return total - live
}

// profileCtxs hold the precomputed pprof label sets the query path
// switches between, one per search phase. Precomputing them means
// enabling profiling labels costs pprof.SetGoroutineLabels calls (a
// pointer store into the g) instead of per-query context allocation.
type profileCtxs struct {
	project, lut, scan context.Context
	// clear restores the unlabeled state after a query.
	clear context.Context
}

// SetProfileLabel (re)builds the pprof label contexts with the given
// index label — call it with the name the index is published under so
// CPU profiles split by index AND phase (vaq_phase = project | lut_fill
// | scan). No-op unless Config.ProfileLabels is set. Safe while queries
// are in flight: running queries keep the label set they loaded.
func (ix *Index) SetProfileLabel(index string) {
	if !ix.cfg.ProfileLabels {
		return
	}
	base := context.Background()
	mk := func(phase string) context.Context {
		return pprof.WithLabels(base, pprof.Labels("vaq_phase", phase, "index", index))
	}
	ix.profCtx.Store(&profileCtxs{
		project: mk("project"),
		lut:     mk("lut_fill"),
		scan:    mk("scan"),
		clear:   base,
	})
}

// EnableProfileLabels turns profiling labels on after the fact — the hook
// for indexes loaded from disk, whose on-disk format carries no runtime
// knobs — and labels profiles with the given index name. Not safe to call
// concurrently with itself; safe while queries are in flight.
func (ix *Index) EnableProfileLabels(index string) {
	ix.cfg.ProfileLabels = true
	ix.SetProfileLabel(index)
}
