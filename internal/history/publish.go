package history

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// The process-wide collector registry behind /debug/vaq/history, mirroring
// the report registry in internal/diag: Publish rebinds an existing name
// instead of erroring, so index reloads and tests stay simple.
var collectors sync.Map // name -> *Collector

// Publish registers c under name for the /debug/vaq/history handler
// (installed on http.DefaultServeMux at package init — metrics.ServeDebug
// serves that mux). Publishing nil removes the name.
func Publish(name string, c *Collector) {
	if c == nil {
		collectors.Delete(name)
		return
	}
	collectors.Store(name, c)
}

func init() {
	http.HandleFunc("/debug/vaq/history", handleHistory)
}

// handleHistory serves the registered collectors. Query parameters:
//
//	?index=X       only the collector published as X (default: all)
//	?format=text   per-series ASCII-sparkline view (vaqtop polls this);
//	               default is JSON, one frozen Dump per collector keyed
//	               by name
//	?series=S      JSON only: instead of full dumps, serve merged Range
//	               points for series S per target
//	?window=D      with ?series: restrict the range to the trailing D
//	               (Go duration, e.g. 5m); default all retained
func handleHistory(w http.ResponseWriter, r *http.Request) {
	wantName := r.URL.Query().Get("index")
	var names []string
	collectors.Range(func(k, _ any) bool {
		if wantName == "" || k.(string) == wantName {
			names = append(names, k.(string))
		}
		return true
	})
	sort.Strings(names)
	if wantName != "" && len(names) == 0 {
		http.Error(w, fmt.Sprintf("no history collector published as %q", wantName), http.StatusNotFound)
		return
	}
	load := func(name string) *Collector {
		v, ok := collectors.Load(name)
		if !ok {
			return nil
		}
		return v.(*Collector)
	}

	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, name := range names {
			if c := load(name); c != nil {
				RenderText(w, c.Dump())
				fmt.Fprintln(w)
			}
		}
		return
	}

	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")

	if series := r.URL.Query().Get("series"); series != "" {
		var fromMs int64
		if ws := r.URL.Query().Get("window"); ws != "" {
			window, err := time.ParseDuration(ws)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad window %q: %v", ws, err), http.StatusBadRequest)
				return
			}
			fromMs = time.Now().Add(-window).UnixMilli()
		}
		// collector -> target -> points
		ranges := make(map[string]map[string][]Point, len(names))
		for _, name := range names {
			c := load(name)
			if c == nil {
				continue
			}
			perTarget := make(map[string][]Point)
			for _, tn := range c.Targets() {
				if s := c.Series(tn, series); s != nil {
					perTarget[tn] = s.Range(fromMs, 0)
				}
			}
			ranges[name] = perTarget
		}
		enc.Encode(ranges) //nolint:errcheck // best-effort HTTP body
		return
	}

	dumps := make(map[string]*Dump, len(names))
	for _, name := range names {
		if c := load(name); c != nil {
			dumps[name] = c.Dump()
		}
	}
	enc.Encode(dumps) //nolint:errcheck // best-effort HTTP body
}
