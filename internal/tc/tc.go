// Package tc implements the Transform Coding baseline (Brandt, CVPR'10;
// paper Table I and §II-C): PCA followed by per-component SCALAR
// quantization, with bits allocated across components by greedy marginal
// variance reduction. TC is the closest ancestor of VAQ — adaptive bit
// allocation over a decorrelating transform — but with one-dimensional
// quantizers instead of vector dictionaries per subspace, which is why it
// trails OPQ/VAQ in accuracy.
package tc

import (
	"fmt"
	"math"
	"sort"

	"vaq/internal/pca"
	"vaq/internal/vec"
)

// Index is a built transform-coding index.
type Index struct {
	model *pca.Model
	// bits[j] is the number of bits of PCA component j (0 = dropped).
	bits []int
	// boundaries and centers per used component: quantizer level centers
	// are the component's per-bin means.
	centers [][]float32 // centers[j][level]
	codes   []uint16    // n x used (flattened), indices into centers
	used    []int       // component js with bits > 0, in PCA order
	n       int
	dim     int
}

// Config controls Build.
type Config struct {
	// Budget is total bits per vector.
	Budget int
	// MaxBitsPerComponent caps a single component (default 8).
	MaxBitsPerComponent int
}

// lloydMaxMSE[b] is the mean squared error of an optimal (Lloyd-Max)
// b-bit scalar quantizer on a unit-variance Gaussian (Jayant & Noll,
// "Digital Coding of Waveforms", Table 4.8). The naive high-rate rule
// D(b) = 4^-b over-values low rates — it credits the first bit with a 4x
// distortion reduction when an optimal 1-level-per-sign quantizer only
// achieves 1-2/π ≈ 0.363 — which is exactly why a greedy allocator using
// it never drops a component: the first bit anywhere always looks cheap.
// Beyond the tabulated rates the 6 dB/bit asymptote is accurate.
var lloydMaxMSE = []float64{1, 0.3634, 0.1175, 0.03454, 0.009497, 0.002499, 0.0006462, 0.0001659}

// marginalGain is the distortion removed by giving component j (variance
// v, currently b bits) one more bit.
func marginalGain(v float64, b int) float64 {
	if b+1 < len(lloydMaxMSE) {
		return v * (lloydMaxMSE[b] - lloydMaxMSE[b+1])
	}
	// High-rate tail: each extra bit divides the residual by 4.
	last := len(lloydMaxMSE) - 1
	cur := lloydMaxMSE[last] * math.Pow(0.25, float64(b-last))
	return v * cur * 0.75
}

// Build fits PCA on train, allocates the bit budget greedily (each bit
// goes to the component with the largest marginal distortion reduction
// under the Lloyd-Max Gaussian rate-distortion curve — reverse
// water-filling, paper §II-C), learns scalar quantizers from the training
// distribution, and encodes data. Components whose variance never earns a
// bit are dropped entirely: TC's dimensionality-reduction behaviour.
func Build(train, data *vec.Matrix, cfg Config) (*Index, error) {
	if cfg.Budget < 1 {
		return nil, fmt.Errorf("tc: budget %d must be >= 1", cfg.Budget)
	}
	if cfg.MaxBitsPerComponent <= 0 {
		cfg.MaxBitsPerComponent = 8
	}
	if train.Cols != data.Cols {
		return nil, fmt.Errorf("tc: train dim %d != data dim %d", train.Cols, data.Cols)
	}
	model, err := pca.Fit(train, pca.Options{Center: true})
	if err != nil {
		return nil, err
	}
	d := train.Cols
	bits := make([]int, d)
	for b := 0; b < cfg.Budget; b++ {
		best, bestGain := -1, 0.0
		for j := 0; j < d; j++ {
			if bits[j] >= cfg.MaxBitsPerComponent {
				continue
			}
			if g := marginalGain(model.Eigenvalues[j], bits[j]); best == -1 || g > bestGain {
				best, bestGain = j, g
			}
		}
		if best == -1 {
			break
		}
		bits[best]++
	}
	ix := &Index{model: model, bits: bits, n: data.Rows, dim: d}
	for j := 0; j < d; j++ {
		if bits[j] > 0 {
			ix.used = append(ix.used, j)
		}
	}
	// Project training data once to learn quantile-based scalar levels.
	zTrain, err := model.Project(train)
	if err != nil {
		return nil, err
	}
	ix.centers = make([][]float32, len(ix.used))
	for uj, j := range ix.used {
		levels := 1 << bits[j]
		col := make([]float32, zTrain.Rows)
		for i := 0; i < zTrain.Rows; i++ {
			col[i] = zTrain.At(i, j)
		}
		sort.Slice(col, func(a, b int) bool { return col[a] < col[b] })
		centers := make([]float32, levels)
		for l := 0; l < levels; l++ {
			lo := l * len(col) / levels
			hi := (l + 1) * len(col) / levels
			if hi == lo {
				hi = lo + 1
				if hi > len(col) {
					lo, hi = len(col)-1, len(col)
				}
			}
			var sum float64
			for _, v := range col[lo:hi] {
				sum += float64(v)
			}
			centers[l] = float32(sum / float64(hi-lo))
		}
		ix.centers[uj] = centers
	}
	// Encode data.
	zData := zTrain
	if data != train {
		zData, err = model.Project(data)
		if err != nil {
			return nil, err
		}
	}
	ix.codes = make([]uint16, data.Rows*len(ix.used))
	for i := 0; i < data.Rows; i++ {
		row := zData.Row(i)
		base := i * len(ix.used)
		for uj, j := range ix.used {
			ix.codes[base+uj] = nearestLevel(ix.centers[uj], row[j])
		}
	}
	return ix, nil
}

// nearestLevel finds the closest center by binary search over the sorted
// center list (centers are monotone because they are quantile means).
func nearestLevel(centers []float32, v float32) uint16 {
	lo := sort.Search(len(centers), func(i int) bool { return centers[i] >= v })
	if lo == len(centers) {
		return uint16(lo - 1)
	}
	if lo == 0 {
		return 0
	}
	if math.Abs(float64(centers[lo]-v)) < math.Abs(float64(v-centers[lo-1])) {
		return uint16(lo)
	}
	return uint16(lo - 1)
}

// Len reports the number of encoded vectors.
func (ix *Index) Len() int { return ix.n }

// Dim reports the expected query dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Bits returns the per-PCA-component allocation (a copy).
func (ix *Index) Bits() []int { return append([]int(nil), ix.bits...) }

// Search returns the approximate k nearest neighbors by ADC over the
// scalar quantizers (squared distances over the used components; dropped
// components are ignored, the dimensionality-reduction loss TC accepts).
func (ix *Index) Search(q []float32, k int) ([]vec.Neighbor, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("tc: query dim %d, index dim %d", len(q), ix.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("tc: k must be >= 1, got %d", k)
	}
	zq, err := ix.model.ProjectVec(q)
	if err != nil {
		return nil, err
	}
	// Per-component lookup tables.
	offsets := make([]int, len(ix.used)+1)
	total := 0
	for uj := range ix.used {
		offsets[uj] = total
		total += len(ix.centers[uj])
	}
	offsets[len(ix.used)] = total
	lut := make([]float32, total)
	for uj, j := range ix.used {
		qv := zq[j]
		for l, c := range ix.centers[uj] {
			dl := qv - c
			lut[offsets[uj]+l] = dl * dl
		}
	}
	tk := vec.NewTopK(k)
	w := len(ix.used)
	for i := 0; i < ix.n; i++ {
		base := i * w
		var d float32
		for uj := 0; uj < w; uj++ {
			d += lut[offsets[uj]+int(ix.codes[base+uj])]
		}
		tk.Push(i, d)
	}
	return tk.Results(), nil
}
