// Quickstart: build a VAQ index over random vectors and run a query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"vaq"
)

func main() {
	// 10,000 vectors of dimension 64 with a decaying variance profile —
	// the kind of spectrum skew VAQ exploits.
	rng := rand.New(rand.NewSource(1))
	n, d := 10000, 64
	data := make([][]float32, n)
	for i := range data {
		row := make([]float32, d)
		for j := range row {
			row[j] = float32(rng.NormFloat64()) / float32(j+1)
		}
		data[i] = row
	}

	// 128 bits per vector across 16 subspaces; everything else defaulted.
	ix, err := vaq.Build(data, vaq.Config{
		NumSubspaces: 16,
		Budget:       128,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := ix.Stats()
	fmt.Printf("indexed %d vectors at %d bytes of codes\n", stats.N, stats.CodeBytes)
	fmt.Printf("adaptive bit allocation: %v\n", stats.BitsPerSubspace)

	// Record per-query spans; a 1ns threshold makes every query a
	// "slow" exemplar so the dump below always has something to show.
	tr := ix.EnableTracing(vaq.TraceConfig{SlowThreshold: time.Nanosecond})

	// Query with a perturbed database vector.
	q := append([]float32(nil), data[4242]...)
	for j := range q {
		q[j] += float32(rng.NormFloat64()) * 0.01
	}
	results, err := ix.Search(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-5 neighbors (id, squared distance):")
	for _, r := range results {
		fmt.Printf("  %6d  %.5f\n", r.ID, r.Dist)
	}

	// Where did that query spend its time? Print the slowest exemplar's
	// span breakdown (projection, LUT fill, cluster ranking, scans).
	if slow, _ := tr.Slowest(); len(slow) > 0 {
		fmt.Printf("\nslowest traced query (total %s, %d spans):\n",
			slow[0].Total, len(slow[0].Spans))
		for i, sp := range slow[0].Spans {
			if i == 10 {
				fmt.Printf("  ... %d more spans\n", len(slow[0].Spans)-i)
				break
			}
			fmt.Printf("  %-14s %8s", sp.Name, sp.Dur)
			if sp.Name == vaq.SpanClusterScan {
				fmt.Printf("  cluster=%d rank=%d lookups=%d", sp.Cluster, sp.Rank, sp.Lookups)
			}
			fmt.Println()
		}
	}
}
