package vaq

import (
	"net/http"
	"time"

	"vaq/internal/metrics"
)

// SLO declares service-level objectives for an index — a tail-latency
// target (LatencyTarget met by LatencyObjective of windowed queries) and/or
// a minimum windowed observed recall (MinRecall, fed by
// Config.RecallSampleRate). Set it via Config.SLO; read the evaluation via
// MetricsSnapshot.SLO. See the field docs in internal/metrics.SLO.
type SLO = metrics.SLO

// SLOSnapshot is the point-in-time SLO evaluation: the declared objectives
// plus the windowed error-budget gauges (budget remaining, burn rate,
// exhaustion latches). Negative budget = objective broken.
type SLOSnapshot = metrics.SLOSnapshot

// ShardedSnapshot is the scatter-gather telemetry of a ShardedIndex:
// per-shard critical-path and final-top-k hit attribution, the windowed
// skew-ratio and load-imbalance gauges, the straggler-delta histogram,
// and the skew-alert latch. See the field docs in
// internal/metrics.ShardedSnapshot.
type ShardedSnapshot = metrics.ShardedSnapshot

// MetricsSnapshot is a point-in-time view of an index's query telemetry:
// totals of the per-query SearchStats counters across every Searcher plus
// latency percentiles from a fixed-bucket histogram. All fields are
// cumulative since Build (or the last ResetMetrics).
type MetricsSnapshot struct {
	// Queries is the number of completed searches; Errors the number of
	// searches rejected by validation (bad k, bad dimension).
	Queries uint64 `json:"queries"`
	Errors  uint64 `json:"errors"`
	// ClustersVisited..Lookups are the summed SearchStats counters.
	ClustersVisited  uint64 `json:"clusters_visited"`
	CodesConsidered  uint64 `json:"codes_considered"`
	CodesSkippedTI   uint64 `json:"codes_skipped_ti"`
	CodesAbandonedEA uint64 `json:"codes_abandoned_ea"`
	Lookups          uint64 `json:"lookups"`
	// TIPruneRate and EAAbandonRate are the fractions of considered codes
	// eliminated by the triangle-inequality bound / cut short by early
	// abandoning (the Figure 7 pruning currency).
	TIPruneRate   float64 `json:"ti_prune_rate"`
	EAAbandonRate float64 `json:"ea_abandon_rate"`
	// AbandonDepths attributes early abandons to the lookup count at which
	// they happened: AbandonDepths[i] totals codes cut short after exactly
	// i table lookups. TISkipsByRank attributes triangle-inequality pruning
	// to the visit rank of the cluster it happened in (the last bucket
	// clamps the tail). Nil when metrics are disabled.
	AbandonDepths []uint64 `json:"abandon_depths,omitempty"`
	TISkipsByRank []uint64 `json:"ti_skips_by_rank,omitempty"`
	// RecallSamples counts queries audited by the online recall estimator
	// (Config.RecallSampleRate); ObservedRecall is the measured recall@k
	// over those samples (0 when nothing was sampled).
	RecallSamples  uint64  `json:"recall_samples,omitempty"`
	ObservedRecall float64 `json:"observed_recall,omitempty"`
	// LatencyP50/P95/P99/Mean summarize per-query wall time. Bucketed
	// estimates: exponential buckets bound the error by 2x.
	LatencyP50  time.Duration `json:"latency_p50_ns"`
	LatencyP95  time.Duration `json:"latency_p95_ns"`
	LatencyP99  time.Duration `json:"latency_p99_ns"`
	LatencyMean time.Duration `json:"latency_mean_ns"`
	// SubspaceMSE is the per-subspace EWMA reconstruction error of vectors
	// folded in by Add (seeded with the Build baseline); DriftRatio is its
	// total over the baseline total (1 = no drift); DriftAlert reports
	// whether the ratio currently exceeds Config.DriftAlertRatio.
	// DeadCodewords counts dictionary entries no live code references.
	// Nil/zero for indexes loaded from disk (the baseline is runtime-only).
	SubspaceMSE   []float64 `json:"subspace_mse,omitempty"`
	DriftRatio    float64   `json:"drift_ratio,omitempty"`
	DeadCodewords uint64    `json:"dead_codewords,omitempty"`
	DriftAlert    bool      `json:"drift_alert,omitempty"`
	// SLO is the error-budget evaluation of Config.SLO (nil when no
	// objectives are configured).
	SLO *SLOSnapshot `json:"slo,omitempty"`
	// Sharded is the scatter-gather telemetry of a ShardedIndex (nil on
	// unsharded indexes and when metrics are disabled).
	Sharded *ShardedSnapshot `json:"sharded,omitempty"`
}

func toSnapshot(s metrics.Snapshot) MetricsSnapshot {
	return MetricsSnapshot{
		Queries:          s.Queries,
		Errors:           s.Errors,
		ClustersVisited:  s.ClustersVisited,
		CodesConsidered:  s.CodesConsidered,
		CodesSkippedTI:   s.CodesSkippedTI,
		CodesAbandonedEA: s.CodesAbandonedEA,
		Lookups:          s.Lookups,
		TIPruneRate:      s.TIPruneRate(),
		EAAbandonRate:    s.EAAbandonRate(),
		AbandonDepths:    s.AbandonDepths,
		TISkipsByRank:    s.TISkipsByRank,
		RecallSamples:    s.RecallSamples,
		ObservedRecall:   s.ObservedRecall(),
		LatencyP50:       s.Latency.Quantile(0.50),
		LatencyP95:       s.Latency.Quantile(0.95),
		LatencyP99:       s.Latency.Quantile(0.99),
		LatencyMean:      s.Latency.Mean(),
		SubspaceMSE:      s.SubspaceMSE,
		DriftRatio:       s.DriftRatio,
		DeadCodewords:    s.DeadCodewords,
		DriftAlert:       s.DriftAlert,
		SLO:              s.SLO,
		Sharded:          s.Sharded,
	}
}

// Metrics returns the current aggregated query telemetry. It is cheap
// (atomic loads) and safe to call while queries are in flight. The zero
// snapshot is returned when metrics are disabled.
func (ix *Index) Metrics() MetricsSnapshot {
	return toSnapshot(ix.inner.Metrics().Snapshot())
}

// ResetMetrics zeroes the telemetry registry (benchmark warmup, test
// isolation). Not atomic with respect to in-flight queries.
func (ix *Index) ResetMetrics() { ix.inner.Metrics().Reset() }

// BuildReport is the wall-clock cost of each index-construction phase.
type BuildReport struct {
	// Total is end-to-end Build time; the remaining fields are the major
	// phases (their sum is slightly below Total — the gap is projection
	// and glue).
	Total time.Duration `json:"total"`
	// PCA is the eigendecomposition of the training matrix.
	PCA time.Duration `json:"pca"`
	// Allocation is the bit-budget solve (MILP / transform coding /
	// uniform).
	Allocation time.Duration `json:"allocation"`
	// Training is per-subspace dictionary learning (k-means).
	Training time.Duration `json:"training"`
	// Encoding is dataset quantization against the trained dictionaries.
	Encoding time.Duration `json:"encoding"`
	// TIClustering is the triangle-inequality skip-structure build.
	TIClustering time.Duration `json:"ti_clustering"`
	// Layout is the derivation of the scan-optimized blocked code layout
	// (zero when the row-major layout was requested).
	Layout time.Duration `json:"layout"`
	// Diagnostics is the Build-time IndexReport baseline computation.
	Diagnostics time.Duration `json:"diagnostics"`
}

// BuildReport returns the per-phase timings captured when this index was
// built. Indexes loaded from disk report zero durations.
func (ix *Index) BuildReport() BuildReport {
	r := ix.inner.BuildReport()
	return BuildReport{
		Total:        r.Total,
		PCA:          r.PCA,
		Allocation:   r.Allocation,
		Training:     r.Training,
		Encoding:     r.Encoding,
		TIClustering: r.TIClustering,
		Layout:       r.Layout,
		Diagnostics:  r.Diagnostics,
	}
}

// PublishExpvar registers this index's live metrics under name in the
// process-wide expvar namespace (GET /debug/vars). Publishing the same
// name again rebinds it to this index. No-op effect when metrics are
// disabled (the published snapshot stays zero).
func (ix *Index) PublishExpvar(name string) {
	metrics.Publish(name, ix.inner.Metrics())
	ix.inner.SetProfileLabel(name)
}

// ServeDebug starts an HTTP server on addr (e.g. "localhost:6060", or
// ":0" for an ephemeral port) exposing expvar (/debug/vars), pprof
// (/debug/pprof/), Prometheus text-format metrics (/debug/vaq/metrics,
// fed by PublishExpvar), query traces (/debug/vaq/traces, fed by
// PublishTrace) and index-quality reports (/debug/vaq/report, fed by
// PublishDiagnostics) from the default mux. The returned server's Addr field
// holds the actual listen address; shut it down with its Close method.
// Combine with (*Index).PublishExpvar to watch an index live.
func ServeDebug(addr string) (*http.Server, error) {
	return metrics.ServeDebug(addr)
}
