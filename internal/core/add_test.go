package core

import (
	"math/rand"
	"testing"

	"vaq/internal/vec"
)

func TestAddVectorsSearchable(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	x := skewedData(rng, 1000, 16, 1.2)
	ix, err := Build(x.SliceRows(0, 700), x.SliceRows(0, 700), Config{
		NumSubspaces: 4, Budget: 32, Seed: 51, TIClusters: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	extra := x.SliceRows(700, 1000)
	firstID, err := ix.Add(extra)
	if err != nil {
		t.Fatal(err)
	}
	if firstID != 700 {
		t.Fatalf("first id %d", firstID)
	}
	if ix.Len() != 1000 {
		t.Fatalf("len %d", ix.Len())
	}
	// Added vectors must be findable by querying with themselves.
	hits := 0
	for trial := 0; trial < 20; trial++ {
		qi := 700 + rng.Intn(300)
		res, err := ix.SearchWith(x.Row(qi), 10, SearchOptions{VisitFrac: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.ID == qi {
				hits++
				break
			}
		}
	}
	if hits < 15 {
		t.Fatalf("added vectors self-recall %d/20", hits)
	}
	// Original vectors still searchable.
	res, err := ix.Search(x.Row(3), 5)
	if err != nil || len(res) != 5 {
		t.Fatalf("original search after Add: %v %v", res, err)
	}
}

func TestAddPreservesClusterOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	x := skewedData(rng, 600, 16, 1.0)
	ix, err := Build(x.SliceRows(0, 400), x.SliceRows(0, 400), Config{
		NumSubspaces: 4, Budget: 24, Seed: 52, TIClusters: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Add(x.SliceRows(400, 600)); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, members := range ix.ti.clusters {
		total += len(members)
		for j := 1; j < len(members); j++ {
			if members[j].dist < members[j-1].dist {
				t.Fatalf("cluster ordering broken after Add")
			}
		}
	}
	if total != 600 {
		t.Fatalf("cluster membership %d, want 600", total)
	}
	// Pruning modes must still agree exactly after insertion.
	q := x.Row(450)
	heap, _ := ix.SearchWith(q, 8, SearchOptions{Mode: ModeHeap})
	tiea, _ := ix.SearchWith(q, 8, SearchOptions{Mode: ModeTIEA, VisitFrac: 1})
	for i := range heap {
		if heap[i] != tiea[i] {
			t.Fatalf("modes disagree after Add: %v vs %v", heap[i], tiea[i])
		}
	}
}

func TestAddErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	x := skewedData(rng, 200, 8, 1.0)
	ix, err := Build(x, x, Config{NumSubspaces: 2, Budget: 8, Seed: 53, TIClusters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Add(vec.NewMatrix(2, 9)); err == nil {
		t.Fatal("wrong dimension must fail")
	}
	id, err := ix.Add(nil)
	if err != nil || id != 200 {
		t.Fatalf("nil add should no-op: %d %v", id, err)
	}
	id, err = ix.Add(vec.NewMatrix(0, 8))
	if err != nil || id != 200 {
		t.Fatalf("empty add should no-op: %d %v", id, err)
	}
}
