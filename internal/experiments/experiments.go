// Package experiments regenerates every table and figure of the VAQ paper
// (see DESIGN.md for the per-experiment index). Each experiment writes a
// plain-text report: the same rows/series the paper plots, so the shapes
// can be compared directly. cmd/vaqbench is the CLI front-end and the
// repository's root bench_test.go exposes one testing.B benchmark per
// experiment.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"vaq/internal/dataset"
	"vaq/internal/eval"
	"vaq/internal/vec"
)

// Scale selects experiment sizes. Quick keeps everything under a couple of
// minutes for CI; Full approaches the paper's relative scales.
type Scale struct {
	// N is the base-vector count for the large datasets.
	N int
	// NQ is the query count.
	NQ int
	// GalleryCount is the number of medium-scale datasets (paper: 128).
	GalleryCount int
	// GalleryTrain caps gallery dataset sizes.
	GalleryTrain int
	// Seed for all data generation.
	Seed int64
}

// QuickScale is sized for tests and smoke runs.
var QuickScale = Scale{N: 8000, NQ: 25, GalleryCount: 16, GalleryTrain: 600, Seed: 42}

// DefaultScale is the recorded-experiment setting (EXPERIMENTS.md): the
// full 128-dataset gallery, with the large datasets scaled to what a
// single core traverses in minutes.
var DefaultScale = Scale{N: 20000, NQ: 50, GalleryCount: 128, GalleryTrain: 500, Seed: 42}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, s Scale) error
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "fig1", Title: "Figure 1: quantization methods at 4 bits/subspace (recall@100 + scan time)", Run: RunFig1},
		{ID: "fig3", Title: "Figure 3: CBF vs SLC variance spectra (top-20 PCs)", Run: RunFig3},
		{ID: "fig4", Title: "Figure 4: recall when omitting subspaces (CBF, SLC)", Run: RunFig4},
		{ID: "fig6", Title: "Figure 6: MAP@100 and query time vs PQ/OPQ/ITQ-LSH on five datasets", Run: RunFig6},
		{ID: "fig7", Title: "Figure 7: pruning ablation (Heap, EA, TI+EA-0.25, TI+EA-0.1)", Run: RunFig7},
		{ID: "fig8", Title: "Figure 8: VAQ vs hardware-accelerated methods (Bolt, PQFS)", Run: RunFig8},
		{ID: "fig9", Title: "Figure 9: uniform/clustered subspaces x uniform/adaptive bits", Run: RunFig9},
		{ID: "tab1", Title: "Table I: qualitative specification matrix", Run: RunTab1},
		{ID: "tab2", Title: "Table II: average Recall/MAP over the medium-scale gallery", Run: RunTab2},
		{ID: "fig10", Title: "Figure 10: Friedman/Nemenyi ranking across the gallery", Run: RunFig10},
		{ID: "fig11", Title: "Figure 11: VAQ vs iSAX2+/DSTree/IMI+OPQ (recall vs query time)", Run: RunFig11},
		{ID: "fig12", Title: "Figure 12: VAQ vs HNSW over PQ codes (preprocessing vs query)", Run: RunFig12},
		{ID: "ablation-alloc", Title: "Ablation: MILP vs transform-coding vs uniform allocation", Run: RunAblationAlloc},
		{ID: "ablation-ti", Title: "Ablation: TI visit-fraction sweep", Run: RunAblationTI},
		{ID: "scale", Title: "Scaling: build/query cost vs dataset size (VAQ vs PQ)", Run: RunScale},
		{ID: "extra-baselines", Title: "Extra baselines: TC, VQ and E2LSH vs VAQ", Run: RunExtraBaselines},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// searchFunc answers one query with k approximate neighbors.
type searchFunc func(q []float32, k int) ([]int, error)

// method is a built, timed, searchable index.
type method struct {
	name         string
	buildSeconds float64
	search       searchFunc
}

// buildTimed wraps an index construction with wall-clock timing.
func buildTimed(name string, build func() (searchFunc, error)) (*method, error) {
	start := time.Now()
	search, err := build()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &method{name: name, buildSeconds: time.Since(start).Seconds(), search: search}, nil
}

// runQueries executes the workload and reports results plus the average
// per-query seconds.
func runQueries(m *method, queries *vec.Matrix, k int) ([][]int, float64, error) {
	results := make([][]int, queries.Rows)
	start := time.Now()
	for qi := 0; qi < queries.Rows; qi++ {
		ids, err := m.search(queries.Row(qi), k)
		if err != nil {
			return nil, 0, fmt.Errorf("%s query %d: %w", m.name, qi, err)
		}
		results[qi] = ids
	}
	avg := time.Since(start).Seconds() / float64(queries.Rows)
	return results, avg, nil
}

// measured is one evaluated method row.
type measured struct {
	name         string
	recall       float64
	mapScore     float64
	avgQuerySec  float64
	buildSeconds float64
}

// evaluate runs and scores one method against ground truth at k.
func evaluate(m *method, queries *vec.Matrix, gt [][]int, k int) (measured, error) {
	results, avg, err := runQueries(m, queries, k)
	if err != nil {
		return measured{}, err
	}
	return measured{
		name:         m.name,
		recall:       eval.Recall(results, gt, k),
		mapScore:     eval.MAP(results, gt, k),
		avgQuerySec:  avg,
		buildSeconds: m.buildSeconds,
	}, nil
}

// printTable writes measured rows with a speedup column relative to ref
// (pass "" to omit).
func printTable(w io.Writer, rows []measured, refName string) {
	var ref float64
	for _, r := range rows {
		if r.name == refName {
			ref = r.avgQuerySec
		}
	}
	fmt.Fprintf(w, "%-24s %9s %9s %12s %12s", "method", "recall", "MAP", "query(ms)", "build(s)")
	if refName != "" {
		fmt.Fprintf(w, " %10s", "speedup")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %9.4f %9.4f %12.4f %12.2f",
			r.name, r.recall, r.mapScore, r.avgQuerySec*1000, r.buildSeconds)
		if refName != "" && r.avgQuerySec > 0 {
			fmt.Fprintf(w, " %9.2fx", ref/r.avgQuerySec)
		}
		fmt.Fprintln(w)
	}
}

// largeDataset builds one of the five large stand-ins at the given scale,
// with exact ground truth at k.
func largeDataset(name string, s Scale, k int) (*dataset.Dataset, [][]int, error) {
	ds, err := dataset.Large(name, s.N, s.NQ, s.Seed)
	if err != nil {
		return nil, nil, err
	}
	gt, err := eval.GroundTruth(ds.Base, ds.Queries, k)
	if err != nil {
		return nil, nil, err
	}
	return ds, gt, nil
}

// rerank reorders candidate ids by true distance to q and keeps the top k.
func rerank(base *vec.Matrix, q []float32, ids []int, k int) []int {
	type scored struct {
		id   int
		dist float32
	}
	list := make([]scored, len(ids))
	for i, id := range ids {
		list[i] = scored{id, vec.SquaredL2(q, base.Row(id))}
	}
	sort.Slice(list, func(a, b int) bool { return list[a].dist < list[b].dist })
	if k > len(list) {
		k = len(list)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = list[i].id
	}
	return out
}
