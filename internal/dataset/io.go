package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"vaq/internal/vec"
)

var magicDataset = [4]byte{'V', 'A', 'Q', 'D'}

// WriteTo serializes the dataset (name + three matrices).
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := w.Write(magicDataset[:])
	total += int64(n)
	if err != nil {
		return total, err
	}
	name := []byte(d.Name)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(name)))
	n, err = w.Write(lenBuf[:])
	total += int64(n)
	if err != nil {
		return total, err
	}
	n, err = w.Write(name)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, m := range []*vec.Matrix{d.Base, d.Train, d.Queries} {
		nn, err := m.WriteTo(w)
		total += nn
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Read deserializes a dataset written by WriteTo.
func Read(r io.Reader) (*Dataset, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if magic != magicDataset {
		return nil, errors.New("dataset: bad magic")
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading name length: %w", err)
	}
	nameLen := binary.LittleEndian.Uint32(lenBuf[:])
	if nameLen > 4096 {
		return nil, fmt.Errorf("dataset: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, fmt.Errorf("dataset: reading name: %w", err)
	}
	d := &Dataset{Name: string(name)}
	var err error
	if d.Base, err = vec.ReadMatrix(r); err != nil {
		return nil, fmt.Errorf("dataset: base: %w", err)
	}
	if d.Train, err = vec.ReadMatrix(r); err != nil {
		return nil, fmt.Errorf("dataset: train: %w", err)
	}
	if d.Queries, err = vec.ReadMatrix(r); err != nil {
		return nil, fmt.Errorf("dataset: queries: %w", err)
	}
	return d, nil
}

// Save writes the dataset to a file.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := d.WriteTo(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a dataset from a file.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}
