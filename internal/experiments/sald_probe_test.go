package experiments

import (
	"os"
	"testing"

	"vaq/internal/core"
)

// TestProbeSALDNonUniform is a tuning aid (see TestProbeSmoothness):
// compares uniform vs non-uniform subspaces at the Figure 6 SALD
// configuration. Run with VAQ_PROBE=1.
func TestProbeSALDNonUniform(t *testing.T) {
	if os.Getenv("VAQ_PROBE") == "" {
		t.Skip("probe disabled (set VAQ_PROBE=1)")
	}
	s := Scale{N: 20000, NQ: 50, Seed: 42}
	const k = 100
	ds, gt, err := largeDataset("SALD", s, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, nonUniform := range []bool{false, true} {
		cfg := vaqConfig(256, 32, 42)
		cfg.NonUniform = nonUniform
		m, err := buildVAQ("VAQ", ds, cfg, core.SearchOptions{VisitFrac: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		row, err := evaluate(m, ds.Queries, gt, k)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("nonUniform=%v: recall %.4f MAP %.4f (%.2fms, build %.1fs)",
			nonUniform, row.recall, row.mapScore, row.avgQuerySec*1000, row.buildSeconds)
	}
}
