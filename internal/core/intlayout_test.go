package core

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"vaq/internal/kmeans"
	"vaq/internal/vec"
)

// verifyFastStore checks the integer store is an exact image of the
// canonical codes: every cluster member appears at its TI position with
// its scan code — the canonical index, or its coarse remap where the
// dictionary was coarsened — through both storage classes including the
// packed nibbles, and every padding lane of a tail block holds code 0.
func verifyFastStore(t *testing.T, ix *Index) {
	t.Helper()
	fs := ix.fast
	if fs == nil {
		t.Fatal("index has no fast store")
	}
	seen := make([]bool, ix.n)
	for c, members := range ix.ti.clusters {
		cStart := int(fs.start[c])
		if int(fs.start[c+1])-cStart != len(members) {
			t.Fatalf("cluster %d: fast span %d, members %d", c, int(fs.start[c+1])-cStart, len(members))
		}
		base := int(fs.blockBase[c])
		wantBlocks := (len(members) + blockLanes - 1) / blockLanes
		if int(fs.blockBase[c+1])-base != wantBlocks {
			t.Fatalf("cluster %d: %d blocks, want %d", c, int(fs.blockBase[c+1])-base, wantBlocks)
		}
		for mi, e := range members {
			if int(fs.perm[cStart+mi]) != e.id {
				t.Fatalf("cluster %d pos %d: perm %d, want member id %d", c, mi, fs.perm[cStart+mi], e.id)
			}
			if seen[e.id] {
				t.Fatalf("id %d appears twice in fast store", e.id)
			}
			seen[e.id] = true
			row := ix.codes.Row(e.id)
			blk := base + mi/blockLanes
			lane := mi % blockLanes
			for s := 0; s < fs.m; s++ {
				want := int(row[s])
				if rm := fs.remap[s]; rm != nil {
					want = int(rm[row[s]])
				}
				if got := fs.codeAt(blk, lane, s); got != want {
					t.Fatalf("id %d subspace %d (class %d): fast %d, want %d",
						e.id, s, fs.class[s], got, want)
				}
			}
		}
		// Tail-block padding lanes must be zero so they accumulate the
		// deterministic table[0] and are never pushed.
		if tail := len(members) % blockLanes; tail != 0 {
			blk := base + len(members)/blockLanes
			for lane := tail; lane < blockLanes; lane++ {
				for s := 0; s < fs.m; s++ {
					if got := fs.codeAt(blk, lane, s); got != 0 {
						t.Fatalf("cluster %d pad lane %d subspace %d: code %d, want 0", c, lane, s, got)
					}
				}
			}
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("id %d missing from fast store", id)
		}
	}
}

// The fast store must be an exact, fully-covering image of the canonical
// codes under a mixed allocation that exercises both the packed 4-bit and
// the uint8 classes, odd cluster sizes included.
func TestFastStoreMatchesCanonicalCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	x := skewedData(rng, 1100, 16, 1.1)
	ix, err := Build(x, x, Config{
		NumSubspaces: 8, Budget: 30, MinBits: 2, MaxBits: 6,
		Seed: 401, TIClusters: 17, AccuracyMode: AccuracyFast,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := ix.fast
	if fs.nP == 0 {
		t.Fatal("expected packed 4-bit subspaces under a 30-bit budget")
	}
	if fs.n8 == 0 {
		t.Fatal("expected unpacked uint8 subspaces under MaxBits=6")
	}
	verifyFastStore(t, ix)
}

// Dictionaries with more than 16 entries must NOT pack: MinBits=5 forces
// every dictionary past 16 entries, so the packed class stays empty and
// everything lands in the uint8 class.
func TestFastStorePackFallbackOver16Entries(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	x := skewedData(rng, 900, 16, 1.0)
	ix, err := Build(x, x, Config{
		NumSubspaces: 4, Budget: 24, MinBits: 5, MaxBits: 7,
		Seed: 403, TIClusters: 12, AccuracyMode: AccuracyFast,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := ix.fast
	if fs.nP != 0 {
		t.Fatalf("%d subspaces packed despite >16-entry dictionaries", fs.nP)
	}
	if fs.n8 != 4 {
		t.Fatalf("uint8 class has %d subspaces, want 4", fs.n8)
	}
	if len(fs.dataP) != 0 {
		t.Fatalf("packed store holds %d bytes with no packed subspaces", len(fs.dataP))
	}
	verifyFastStore(t, ix)
}

// Wide dictionaries (over 8 bits) must coarsen to 256-entry scan
// dictionaries with a valid nearest-centroid remap, so every subspace
// code fits one byte — and Add must reuse the trained coarse books
// instead of retraining them.
func TestFastStoreWideCodesCoarsen(t *testing.T) {
	rng := rand.New(rand.NewSource(407))
	x := skewedData(rng, 800, 16, 1.0)
	extra := skewedData(rng, 120, 16, 1.0)
	ix, err := Build(x, x, Config{
		NumSubspaces: 4, Budget: 38, MinBits: 9, MaxBits: 10,
		Seed: 407, TIClusters: 10, KMeansIters: 8, AccuracyMode: AccuracyFast,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := ix.fast
	if fs.coarsenedSubspaces() == 0 {
		t.Fatal("expected coarsened subspaces under MinBits=9")
	}
	for s := 0; s < fs.m; s++ {
		book := ix.cb.Books[s]
		if fs.books[s].Rows > coarseEntries {
			t.Fatalf("subspace %d: scan dictionary has %d entries, want <= %d", s, fs.books[s].Rows, coarseEntries)
		}
		rm := fs.remap[s]
		if book.Rows > coarseEntries {
			if rm == nil {
				t.Fatalf("subspace %d: wide dictionary (%d entries) has no remap", s, book.Rows)
			}
			if len(rm) != book.Rows {
				t.Fatalf("subspace %d: remap covers %d codes, want %d", s, len(rm), book.Rows)
			}
			for c := 0; c < book.Rows; c++ {
				if want := kmeans.AssignNearest(fs.books[s], book.Row(c)); int(rm[c]) != want {
					t.Fatalf("subspace %d code %d: remap %d, nearest coarse centroid %d", s, c, rm[c], want)
				}
			}
		} else if rm != nil {
			t.Fatalf("subspace %d: narrow dictionary (%d entries) was remapped", s, book.Rows)
		}
	}
	verifyFastStore(t, ix)

	// Add rebuilds the block data but must donate the coarse dictionaries
	// (they depend only on the immutable codebooks and seed).
	books, remaps := append([]*vec.Matrix(nil), fs.books...), append([][]uint8(nil), fs.remap...)
	if _, err := ix.Add(extra); err != nil {
		t.Fatal(err)
	}
	for s := range books {
		if ix.fast.books[s] != books[s] {
			t.Fatalf("subspace %d: Add retrained the coarse dictionary", s)
		}
		if len(remaps[s]) > 0 && &ix.fast.remap[s][0] != &remaps[s][0] {
			t.Fatalf("subspace %d: Add rebuilt the remap", s)
		}
	}
	verifyFastStore(t, ix)
}

// Add must rebuild the fast store from the grown code set and re-threaded
// clusters, preserving the exact-image invariant.
func TestFastStoreRebuiltAfterAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	x := skewedData(rng, 700, 16, 1.0)
	extra := skewedData(rng, 230, 16, 1.0)
	ix, err := Build(x, x, Config{
		NumSubspaces: 8, Budget: 30, MinBits: 2, MaxBits: 6,
		Seed: 409, TIClusters: 11, AccuracyMode: AccuracyFast,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Add(extra); err != nil {
		t.Fatal(err)
	}
	if len(ix.fast.perm) != 930 {
		t.Fatalf("fast store not rebuilt after Add: %d positions, want 930", len(ix.fast.perm))
	}
	verifyFastStore(t, ix)
	if res, err := ix.Search(x.Row(5), 10); err != nil || len(res) != 10 {
		t.Fatalf("post-Add fast search: %d results, err %v", len(res), err)
	}
}

// The uint8 quantizer must keep per-subspace resolution under adversarial
// range skew: a huge-span table gets a capped shift instead of saturating,
// tiny-span tables lose resolution (never the big ones), NaN entries pin
// to "far", and degenerate tables disable the integer path's abandoning
// instead of corrupting it.
func TestIntLUTQuantizeShifts(t *testing.T) {
	offsets := []int{0, 4, 8, 10}
	dist := []float32{
		0, 1e30, 5e29, 1e-3, // huge range: 2^99 < span <= 2^100
		2, 2.5, 3, 2, // tiny range: quantized away under the capped spread
		7, 7, // constant table
	}
	var il intLUT
	il.quantize(dist, offsets, 3)
	if il.delta != 0+2+7 {
		t.Fatalf("delta %v, want 9", il.delta)
	}
	if il.scale <= 0 {
		t.Fatalf("scale %v, want > 0", il.scale)
	}
	// Exponent spread 100-1 exceeds rMaxShift, so Eref = 100-12 = 88: the
	// huge table takes the full shift, the others are clamped to Eref.
	if il.shift[0] != rMaxShift || il.shift[1] != 0 || il.shift[2] != 0 {
		t.Fatalf("shifts %v, want [%d 0 0]", il.shift, rMaxShift)
	}
	// The huge table keeps its resolution: frexp puts span/2^E in
	// [0.5, 1), so the max quantized value lands in [128, 255) — NOT
	// pinned at 255 — and the stored entries carry the shift pre-applied
	// (value q<<r with the low r bits zero).
	q1 := il.dist[1] >> rMaxShift
	if il.dist[0] != 0 || q1 < 128 || q1 >= 255 || il.dist[1] != q1<<rMaxShift {
		t.Fatalf("wide table quantized to %v, want [0, (128..254)<<%d, _, 0]", il.dist[:4], rMaxShift)
	}
	if il.dist[2] == 0 || il.dist[2] >= il.dist[1] {
		t.Fatalf("half-range entry %d, want in (0, %d)", il.dist[2], il.dist[1])
	}
	if il.dist[3] != 0 {
		t.Fatalf("tiny value quantized to %d, want 0", il.dist[3])
	}
	// Tables live at uniform lutStride offsets: subspace 1's four entries
	// at [lutStride, ...), subspace 2's two at [2*lutStride, ...). The
	// small tables' quanta are 2^88-sized: everything collapses to 0.
	for s := 1; s <= 2; s++ {
		for i := 0; i < offsets[s+1]-offsets[s]; i++ {
			if q := il.dist[s*lutStride+i]; q != 0 {
				t.Fatalf("subspace %d entry %d quantized to %d, want 0 (range below the capped spread)", s, i, q)
			}
		}
	}
	// The degenerate third table contributes no rounding error (exact
	// zeros), so only the two live shifts feed the slack.
	if want := uint32(1<<rMaxShift+1)/2 + 1; il.slack != want {
		t.Fatalf("slack %d, want %d", il.slack, want)
	}

	// A single exactly-representable table checks round-to-nearest without
	// float noise: span 4 = 0.5*2^3, so qscale = 255/8 and 2 maps to
	// round(63.75) = 64.
	il.quantize([]float32{0, 2, 4}, []int{0, 3}, 1)
	if il.dist[0] != 0 || il.dist[1] != 64 || il.dist[2] != 128 {
		t.Fatalf("midpoint table quantized to %v, want [0 64 128]", il.dist[:3])
	}
	if il.slack != 1 {
		t.Fatalf("single-subspace slack %d, want 1", il.slack)
	}

	// NaN entries must read as maximally far, not as 0.
	nan := float32(math.NaN())
	il.quantize([]float32{0, nan, 1}, []int{0, 3}, 1)
	if il.dist[1] != 255 {
		t.Fatalf("NaN entry quantized to %d, want 255", il.dist[1])
	}

	// An infinite span degenerates: scale 0, all-zero tables, threshold
	// disabled (intNoAbandon abandons nothing).
	inf := float32(math.Inf(1))
	il.quantize([]float32{1, inf, 2}, []int{0, 3}, 1)
	if il.scale != 0 || il.inv != 0 {
		t.Fatalf("infinite span: scale %v inv %v, want 0/0", il.scale, il.inv)
	}
	for i, q := range il.dist {
		if q != 0 {
			t.Fatalf("degenerate entry %d quantized to %d, want 0", i, q)
		}
	}
	if got := il.thresholdInt(1e6); got != intNoAbandon {
		t.Fatalf("degenerate threshold %d, want intNoAbandon", got)
	}
	if il.dequantize(0) != 1 {
		t.Fatalf("degenerate dequantize %v, want delta 1", il.dequantize(0))
	}

	// Constant tables everywhere degenerate the same way.
	il.quantize([]float32{4, 4, 4, 4}, []int{0, 2, 4}, 2)
	if il.scale != 0 || il.delta != 8 {
		t.Fatalf("constant tables: scale %v delta %v, want 0/8", il.scale, il.delta)
	}
}

// thresholdInt must clamp at both ends: best-so-far below delta keeps only
// the rounding slack, and huge thresholds saturate to intNoAbandon (which
// must itself stay below 1<<31 for the sign-bit triage) instead of hitting
// Go's implementation-specific out-of-range float conversion.
func TestIntLUTThresholdClamps(t *testing.T) {
	il := intLUT{delta: 10, scale: 2, inv: 0.5, slack: 7}
	if got := il.thresholdInt(5); got != 7 {
		t.Fatalf("below-delta threshold %d, want slack 7", got)
	}
	if got := il.thresholdInt(float32(math.NaN())); got != 7 {
		t.Fatalf("NaN threshold %d, want slack 7", got)
	}
	if got := il.thresholdInt(3.4e38); got != intNoAbandon {
		t.Fatalf("huge threshold %d, want intNoAbandon", got)
	}
	if intNoAbandon>>31 != 0 {
		t.Fatal("intNoAbandon must fit in 31 bits for the sign-bit triage")
	}
	if got := il.thresholdInt(20); got != 20+7 {
		t.Fatalf("threshold %d, want (20-10)*2+7 = 27", got)
	}
}

// The integer TIEA and heap kernels must stay close to the exact kernels:
// identical codes, only the scan metric differs, so the top-10 overlap on
// a well-conditioned dataset should be near-perfect — and because the
// integer scan's survivors are re-ranked with exact float arithmetic,
// every id both kernels return must carry a bit-identical distance.
func TestFastKernelRecallAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(419))
	x := skewedData(rng, 2500, 32, 1.2)
	for _, tc := range []struct {
		name       string
		cfg        Config
		minOverlap float64
	}{
		// Narrow dictionaries: no coarsening, the only error source is the
		// uint8 quantization of the scan tables.
		{"narrow", Config{NumSubspaces: 8, Budget: 56, Seed: 419, TIClusters: 40}, 0.9},
		// Wide dictionaries: the scan runs on coarsened 256-entry
		// dictionaries; the remap costs some candidate-set accuracy.
		{"coarsened", Config{NumSubspaces: 4, Budget: 38, MinBits: 9, MaxBits: 10,
			Seed: 419, TIClusters: 40, KMeansIters: 8}, 0.8},
	} {
		cfg := tc.cfg
		exact, err := Build(x, x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.AccuracyMode = AccuracyFast
		fast, err := Build(x, x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if tc.name == "coarsened" && fast.fast.coarsenedSubspaces() == 0 {
			t.Fatal("coarsened case trained no coarse dictionaries")
		}
		qs := layoutQuerySet(rng, x, 20)
		for _, opt := range []SearchOptions{
			{Mode: ModeTIEA, VisitFrac: 0.5},
			{Mode: ModeHeap},
		} {
			se, sf := exact.NewSearcher(), fast.NewSearcher()
			overlapSum := 0.0
			for qi := 0; qi < qs.Rows; qi++ {
				re, err := se.Search(qs.Row(qi), 10, opt)
				if err != nil {
					t.Fatal(err)
				}
				rf, err := sf.Search(qs.Row(qi), 10, opt)
				if err != nil {
					t.Fatal(err)
				}
				if len(rf) != 10 {
					t.Fatalf("fast kernel returned %d results, want 10", len(rf))
				}
				got := make(map[int]float32, len(rf))
				for _, nb := range rf {
					got[nb.ID] = nb.Dist
				}
				hits := 0
				for _, nb := range re {
					d, ok := got[nb.ID]
					if !ok {
						continue
					}
					hits++
					if d != nb.Dist {
						t.Fatalf("%s opt %+v id %d: fast distance %v, exact %v (rerank must be bit-identical)",
							tc.name, opt, nb.ID, d, nb.Dist)
					}
				}
				overlapSum += float64(hits) / 10
			}
			if avg := overlapSum / float64(qs.Rows); avg < tc.minOverlap {
				t.Fatalf("%s opt %+v: mean overlap@10 %.3f vs exact, want >= %.2f", tc.name, opt, avg, tc.minOverlap)
			}
		}
	}
}

// ModeEA and truncated-Subspaces queries must fall back to the exact
// kernels bit-for-bit: an AccuracyFast index answers them identically to
// an exact one.
func TestFastIndexFallbackPathsAreExact(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	x := skewedData(rng, 1500, 24, 1.1)
	cfg := Config{NumSubspaces: 6, Budget: 42, Seed: 421, TIClusters: 25}
	exact, err := Build(x, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.AccuracyMode = AccuracyFast
	fast, err := Build(x, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs := layoutQuerySet(rng, x, 10)
	for _, opt := range []SearchOptions{
		{Mode: ModeEA},
		{Mode: ModeTIEA, VisitFrac: 0.5, Subspaces: 4}, // degrades to EA
		{Mode: ModeHeap, Subspaces: 3},
	} {
		se, sf := exact.NewSearcher(), fast.NewSearcher()
		for qi := 0; qi < qs.Rows; qi++ {
			re, err := se.Search(qs.Row(qi), 10, opt)
			if err != nil {
				t.Fatal(err)
			}
			rf, err := sf.Search(qs.Row(qi), 10, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(re, rf) {
				t.Fatalf("query %d opt %+v: fallback path diverged\nexact: %v\nfast:  %v", qi, opt, re, rf)
			}
			if !reflect.DeepEqual(se.LastStats(), sf.LastStats()) {
				t.Fatalf("query %d opt %+v: fallback stats diverged", qi, opt)
			}
		}
	}
}

// SetAccuracyMode is the runtime toggle: fast builds the store, exact
// drops it, and a deserialized index (which always starts exact — the
// store is derived, never serialized) can opt in after loading.
func TestSetAccuracyModeAndSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(431))
	x := skewedData(rng, 1000, 16, 1.0)
	ix, err := Build(x, x, Config{
		NumSubspaces: 4, Budget: 28, Seed: 431, TIClusters: 15, AccuracyMode: AccuracyFast,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ix.fast == nil {
		t.Fatal("AccuracyFast build left no fast store")
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Accuracy() != AccuracyExact || loaded.fast != nil {
		t.Fatalf("loaded index: accuracy %v fast=%v, want exact/nil (mode is runtime-only)",
			loaded.Accuracy(), loaded.fast != nil)
	}
	if err := loaded.SetAccuracyMode(AccuracyFast); err != nil {
		t.Fatal(err)
	}
	if loaded.Accuracy() != AccuracyFast || loaded.fast == nil {
		t.Fatal("SetAccuracyMode(fast) did not build the store")
	}
	verifyFastStore(t, loaded)
	if res, err := loaded.Search(x.Row(3), 5); err != nil || len(res) != 5 {
		t.Fatalf("fast search on loaded index: %d results, err %v", len(res), err)
	}
	if err := loaded.SetAccuracyMode(AccuracyExact); err != nil {
		t.Fatal(err)
	}
	if loaded.fast != nil {
		t.Fatal("SetAccuracyMode(exact) kept the store")
	}
	if err := loaded.SetAccuracyMode(AccuracyMode(9)); err == nil {
		t.Fatal("unknown AccuracyMode accepted")
	}
}

// Build must reject accuracy modes outside the enum and the fast mode on
// the row-major layout (the integer store derives from the blocked one).
func TestBuildRejectsBadAccuracyConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(433))
	x := skewedData(rng, 200, 8, 1.0)
	if _, err := Build(x, x, Config{NumSubspaces: 2, Budget: 10, Seed: 433, AccuracyMode: AccuracyMode(9)}); err == nil {
		t.Fatal("Build accepted an unknown AccuracyMode")
	}
	_, err := Build(x, x, Config{
		NumSubspaces: 2, Budget: 10, Seed: 433,
		ScanLayout: LayoutRowMajor, AccuracyMode: AccuracyFast,
	})
	if err == nil {
		t.Fatal("Build accepted AccuracyFast on LayoutRowMajor")
	}
	ix, err := Build(x, x, Config{NumSubspaces: 2, Budget: 10, Seed: 433, ScanLayout: LayoutRowMajor})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SetAccuracyMode(AccuracyFast); err == nil {
		t.Fatal("SetAccuracyMode(fast) accepted on a row-major index")
	}
}

// The fast-mode fingerprint must differ from exact (different answers)
// while the exact fingerprint stays byte-stable against pre-int-kernel
// baselines (the field is omitempty).
func TestFingerprintCarriesAccuracyMode(t *testing.T) {
	rng := rand.New(rand.NewSource(439))
	x := skewedData(rng, 400, 8, 1.0)
	cfg := Config{NumSubspaces: 2, Budget: 10, Seed: 439, TIClusters: 5}
	exact, err := Build(x, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.AccuracyMode = AccuracyFast
	fast, err := Build(x, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exact.ConfigFingerprint() == fast.ConfigFingerprint() {
		t.Fatal("exact and fast configs share a fingerprint")
	}
}
