package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestTopKEigMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Symmetric PSD matrix with a decaying spectrum (covariance-like).
	d := 40
	g := NewDense(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			g.Set(i, j, rng.NormFloat64()/math.Sqrt(float64(j+1)))
		}
	}
	a, err := g.T().Mul(g)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SymEig(a, EigAuto)
	if err != nil {
		t.Fatal(err)
	}
	k := 6
	top, err := TopKEig(a, k, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Values) != k {
		t.Fatalf("got %d values", len(top.Values))
	}
	for i := 0; i < k; i++ {
		rel := math.Abs(top.Values[i]-full.Values[i]) / (1 + full.Values[i])
		if rel > 1e-6 {
			t.Fatalf("eigenvalue %d: %v vs %v", i, top.Values[i], full.Values[i])
		}
	}
	// Eigenvectors satisfy A v = lambda v.
	for j := 0; j < k; j++ {
		v := top.Vectors.Col(j)
		av, _ := a.MulVec(v)
		for i := 0; i < d; i++ {
			if math.Abs(av[i]-top.Values[j]*v[i]) > 1e-5*(1+math.Abs(top.Values[j])) {
				t.Fatalf("A·v != λ·v at (%d,%d)", j, i)
			}
		}
	}
	// Orthonormal columns.
	for a1 := 0; a1 < k; a1++ {
		for b1 := a1; b1 < k; b1++ {
			var dot float64
			for i := 0; i < d; i++ {
				dot += top.Vectors.At(i, a1) * top.Vectors.At(i, b1)
			}
			want := 0.0
			if a1 == b1 {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("not orthonormal at (%d,%d): %v", a1, b1, dot)
			}
		}
	}
}

func TestTopKEigErrors(t *testing.T) {
	if _, err := TopKEig(NewDense(2, 3), 1, 10, 1); err == nil {
		t.Fatal("non-square must fail")
	}
	if _, err := TopKEig(Identity(3), 0, 10, 1); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := TopKEig(Identity(3), 4, 10, 1); err == nil {
		t.Fatal("k>d must fail")
	}
}

func TestTopKEigFullRank(t *testing.T) {
	// k = d should reproduce the full decomposition.
	a, _ := DenseFromRows([][]float64{{4, 1}, {1, 3}})
	top, err := TopKEig(a, 2, 80, 2)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := SymEig(a, EigAuto)
	for i := range full.Values {
		if math.Abs(top.Values[i]-full.Values[i]) > 1e-8 {
			t.Fatalf("values %v vs %v", top.Values, full.Values)
		}
	}
}
