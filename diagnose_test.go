package vaq

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestDiagnosePublicSurface drives the diagnostics API the way an operator
// would: build, Diagnose, render both formats, publish, and scrape the
// /debug/vaq/report endpoint — then confirm drift lands in the metrics
// snapshot after out-of-distribution Adds.
func TestDiagnosePublicSurface(t *testing.T) {
	ix, data := metricsTestIndex(t, 1500, 16, Config{
		NumSubspaces: 8, Budget: 48, Seed: 11, DriftAlertRatio: 1.5,
	})
	rep := ix.Diagnose()
	if rep == nil || rep.Partial {
		t.Fatalf("fresh build: report %+v, want non-partial", rep)
	}
	if rep.MSESource != MSESourceBaseline && rep.MSESource != MSESourceFresh {
		t.Fatalf("unexpected MSE source %q", rep.MSESource)
	}
	if rep.N != ix.Len() || len(rep.Subspaces) != 8 {
		t.Fatalf("report shape: n=%d subspaces=%d", rep.N, len(rep.Subspaces))
	}
	var text bytes.Buffer
	if err := WriteReportText(&text, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "ti clusters") {
		t.Fatalf("text rendering missing balance section:\n%s", text.String())
	}

	ix.PublishDiagnostics("vaq_diag_public")
	defer UnpublishDiagnostics("vaq_diag_public")
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vaq/report?index=vaq_diag_public", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d err %v", resp.StatusCode, err)
	}
	var scraped map[string]*IndexReport
	if err := json.Unmarshal(body, &scraped); err != nil {
		t.Fatalf("scrape not JSON: %v\n%s", err, body)
	}
	if got := scraped["vaq_diag_public"]; got == nil || got.N != ix.Len() {
		t.Fatalf("scraped report %+v, want n=%d", got, ix.Len())
	}

	// Shift the distribution hard; the drift gauges must reach the public
	// metrics snapshot and the report's drift block must alert.
	shifted := make([][]float32, 200)
	for i := range shifted {
		v := make([]float32, 16)
		for j := range v {
			v[j] = data[i][j]*10 + 5
		}
		shifted[i] = v
	}
	for batch := 0; batch < 8; batch++ {
		if _, err := ix.Add(shifted); err != nil {
			t.Fatal(err)
		}
	}
	snap := ix.Metrics()
	if snap.DriftRatio <= 1.5 || !snap.DriftAlert {
		t.Fatalf("post-shift snapshot: ratio %g alert %v, want alerting", snap.DriftRatio, snap.DriftAlert)
	}
	if len(snap.SubspaceMSE) != 8 {
		t.Fatalf("snapshot has %d subspace MSE gauges, want 8", len(snap.SubspaceMSE))
	}
	drift := ix.Diagnose().Drift
	if drift == nil || !drift.Alert || drift.Ratio != snap.DriftRatio {
		t.Fatalf("report drift %+v disagrees with snapshot ratio %g", drift, snap.DriftRatio)
	}
}
