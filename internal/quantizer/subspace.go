// Package quantizer provides the product-quantization machinery shared by
// PQ, OPQ, Bolt, PQFS, IMI and VAQ: subspace layouts over the data
// dimensions, per-subspace codebooks (possibly of different sizes), code
// storage, asymmetric-distance lookup tables and the exhaustive ADC scan
// (paper §II-C and Figure 2).
package quantizer

import (
	"fmt"
)

// Subspaces describes how the d data dimensions decompose into m
// contiguous, non-overlapping subspaces. Subspace i covers columns
// [Offsets[i], Offsets[i]+Lengths[i]).
type Subspaces struct {
	Offsets []int
	Lengths []int
}

// UniformSubspaces splits d dimensions into m subspaces of (nearly) equal
// length. When m does not divide d, earlier subspaces get the extra
// dimension, matching how the paper pads q = d/m.
func UniformSubspaces(d, m int) (Subspaces, error) {
	if m < 1 || d < 1 {
		return Subspaces{}, fmt.Errorf("quantizer: need d >= 1 and m >= 1, got d=%d m=%d", d, m)
	}
	if m > d {
		return Subspaces{}, fmt.Errorf("quantizer: m=%d subspaces exceed d=%d dimensions", m, d)
	}
	base, rem := d/m, d%m
	s := Subspaces{Offsets: make([]int, m), Lengths: make([]int, m)}
	off := 0
	for i := 0; i < m; i++ {
		l := base
		if i < rem {
			l++
		}
		s.Offsets[i] = off
		s.Lengths[i] = l
		off += l
	}
	return s, nil
}

// FromLengths builds a subspace layout from explicit segment lengths.
func FromLengths(lengths []int) (Subspaces, error) {
	if len(lengths) == 0 {
		return Subspaces{}, fmt.Errorf("quantizer: empty subspace lengths")
	}
	s := Subspaces{Offsets: make([]int, len(lengths)), Lengths: append([]int(nil), lengths...)}
	off := 0
	for i, l := range lengths {
		if l < 1 {
			return Subspaces{}, fmt.Errorf("quantizer: subspace %d has non-positive length %d", i, l)
		}
		s.Offsets[i] = off
		off += l
	}
	return s, nil
}

// M returns the number of subspaces.
func (s Subspaces) M() int { return len(s.Lengths) }

// Dim returns the total dimensionality covered.
func (s Subspaces) Dim() int {
	if len(s.Lengths) == 0 {
		return 0
	}
	last := len(s.Lengths) - 1
	return s.Offsets[last] + s.Lengths[last]
}

// Of slices subspace i out of a full-dimension vector.
func (s Subspaces) Of(v []float32, i int) []float32 {
	return v[s.Offsets[i] : s.Offsets[i]+s.Lengths[i]]
}
