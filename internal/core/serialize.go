package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"time"

	"vaq/internal/linalg"
	"vaq/internal/metrics"
	"vaq/internal/pca"
	"vaq/internal/quantizer"
	"vaq/internal/vec"
)

// Serialization format (little-endian):
//
//	magic "VAQI", version u16
//	config block (fixed-width fields; v2 appends ScanLayout)
//	pca: eigenvalues []f64, components Dense, hasMean u8 [+ mean []f64]
//	layout: m u32, lengths []u32, bits []u32, ratios []f64, subVar []f64
//	codebooks: m matrices
//	codes: n u64, m u32, data []u16
//	ti: prefixSubspaces u32, centroids Matrix, clusters: count u32,
//	    then per cluster: len u32, entries (id u32, dist f32)
//
// The codes are always stored canonically (row-major, original id order);
// the blocked scan layout is a deterministic function of the codes and the
// TI structure, so it is rebuilt on load rather than serialized. Version 1
// predates ScanLayout: v1 streams still load and get the default layout.
var magicIndex = [4]byte{'V', 'A', 'Q', 'I'}

const indexVersion = 2

// WriteTo serializes the index so it can be reloaded without retraining.
// Safe to call concurrently with queries and Diagnose; it excludes Add.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	start := time.Now()
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	err := ix.writeBody(bw, indexVersion)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil && ix.cfg.Logger != nil {
		ix.cfg.Logger.Info("vaq.serialize",
			slog.Int("n", ix.n),
			slog.Int64("bytes", cw.n),
			slog.Duration("total", time.Since(start)))
	}
	return cw.n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func writeF64(w io.Writer, v float64) error { return writeU64(w, math.Float64bits(v)) }

func readF64(r io.Reader) (float64, error) {
	u, err := readU64(r)
	return math.Float64frombits(u), err
}

// writeBody emits the serialized index at the requested format version.
// Version 1 (the pre-ScanLayout format) is kept writable so tests can
// prove legacy streams still load.
func (ix *Index) writeBody(w io.Writer, version uint64) error {
	if _, err := w.Write(magicIndex[:]); err != nil {
		return err
	}
	if err := writeU64(w, version); err != nil {
		return err
	}
	// Config (only the fields needed to answer queries identically).
	cfg := ix.cfg
	vals := []uint64{
		uint64(cfg.NumSubspaces), uint64(cfg.Budget), uint64(cfg.MinBits),
		uint64(cfg.MaxBits), uint64(cfg.TIClusters), uint64(cfg.TIPrefixSubspaces),
		uint64(cfg.EACheckEvery), uint64(cfg.Seed), boolU64(cfg.NonUniform),
		boolU64(cfg.DisablePartialBalance), boolU64(cfg.CenterPCA), uint64(cfg.Alloc),
	}
	if version >= 2 {
		vals = append(vals, uint64(cfg.ScanLayout))
	}
	for _, v := range vals {
		if err := writeU64(w, v); err != nil {
			return err
		}
	}
	if err := writeF64(w, cfg.TargetVariance); err != nil {
		return err
	}
	if err := writeF64(w, cfg.DefaultVisitFrac); err != nil {
		return err
	}
	// PCA model.
	if err := linalg.WriteFloat64s(w, ix.model.Eigenvalues); err != nil {
		return err
	}
	if _, err := ix.model.Components.WriteTo(w); err != nil {
		return err
	}
	hasMean := uint64(0)
	if ix.model.Mean != nil {
		hasMean = 1
	}
	if err := writeU64(w, hasMean); err != nil {
		return err
	}
	if hasMean == 1 {
		if err := linalg.WriteFloat64s(w, ix.model.Mean); err != nil {
			return err
		}
	}
	// Layout.
	m := ix.cb.Sub.M()
	if err := writeU64(w, uint64(m)); err != nil {
		return err
	}
	for _, l := range ix.cb.Sub.Lengths {
		if err := writeU64(w, uint64(l)); err != nil {
			return err
		}
	}
	for _, b := range ix.bits {
		if err := writeU64(w, uint64(b)); err != nil {
			return err
		}
	}
	if err := linalg.WriteFloat64s(w, ix.ratios); err != nil {
		return err
	}
	if err := linalg.WriteFloat64s(w, ix.subVar); err != nil {
		return err
	}
	// Codebooks.
	for _, book := range ix.cb.Books {
		if _, err := book.WriteTo(w); err != nil {
			return err
		}
	}
	// Codes.
	if err := writeU64(w, uint64(ix.codes.N)); err != nil {
		return err
	}
	if err := writeU64(w, uint64(ix.codes.M)); err != nil {
		return err
	}
	buf := make([]byte, 2*len(ix.codes.Data))
	for i, c := range ix.codes.Data {
		binary.LittleEndian.PutUint16(buf[2*i:], c)
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	// TI structure.
	if err := writeU64(w, uint64(ix.ti.prefixSubspaces)); err != nil {
		return err
	}
	if _, err := ix.ti.centroids.WriteTo(w); err != nil {
		return err
	}
	if err := writeU64(w, uint64(len(ix.ti.clusters))); err != nil {
		return err
	}
	for _, members := range ix.ti.clusters {
		if err := writeU64(w, uint64(len(members))); err != nil {
			return err
		}
		eb := make([]byte, 8*len(members))
		for i, e := range members {
			binary.LittleEndian.PutUint32(eb[8*i:], uint32(e.id))
			binary.LittleEndian.PutUint32(eb[8*i+4:], math.Float32bits(e.dist))
		}
		if _, err := w.Write(eb); err != nil {
			return err
		}
	}
	// Trailer.
	return writeU64(w, uint64(ix.queryDim))
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ReadLogged is Read with structured logging: the loaded index adopts l as
// its maintenance logger (serialized streams carry no logger — it is a
// runtime knob) and the load itself is logged. nil l behaves like Read.
func ReadLogged(r io.Reader, l *slog.Logger) (*Index, error) {
	start := time.Now()
	ix, err := Read(r)
	if err != nil {
		if l != nil {
			l.Error("vaq.read", slog.String("error", err.Error()))
		}
		return nil, err
	}
	ix.cfg.Logger = l
	if l != nil {
		l.Info("vaq.read",
			slog.Int("n", ix.n),
			slog.Int("dim", ix.queryDim),
			slog.Int("subspaces", ix.cb.Sub.M()),
			slog.String("layout", ix.cfg.ScanLayout.String()),
			slog.Duration("total", time.Since(start)))
	}
	return ix, nil
}

// Read deserializes an index written by WriteTo.
func Read(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading index magic: %w", err)
	}
	if magic != magicIndex {
		return nil, errors.New("core: bad index magic")
	}
	version, err := readU64(br)
	if err != nil {
		return nil, err
	}
	if version < 1 || version > indexVersion {
		return nil, fmt.Errorf("core: unsupported index version %d", version)
	}
	var cfgVals [12]uint64
	for i := range cfgVals {
		if cfgVals[i], err = readU64(br); err != nil {
			return nil, err
		}
	}
	cfg := Config{
		NumSubspaces:          int(cfgVals[0]),
		Budget:                int(cfgVals[1]),
		MinBits:               int(cfgVals[2]),
		MaxBits:               int(cfgVals[3]),
		TIClusters:            int(cfgVals[4]),
		TIPrefixSubspaces:     int(cfgVals[5]),
		EACheckEvery:          int(cfgVals[6]),
		Seed:                  int64(cfgVals[7]),
		NonUniform:            cfgVals[8] == 1,
		DisablePartialBalance: cfgVals[9] == 1,
		CenterPCA:             cfgVals[10] == 1,
		Alloc:                 AllocStrategy(cfgVals[11]),
	}
	if version >= 2 {
		layoutU, err := readU64(br)
		if err != nil {
			return nil, err
		}
		cfg.ScanLayout = ScanLayout(layoutU)
		if cfg.ScanLayout != LayoutBlocked && cfg.ScanLayout != LayoutRowMajor {
			return nil, fmt.Errorf("core: unknown ScanLayout %d", layoutU)
		}
	}
	// v1 predates ScanLayout; the zero value is the blocked default.
	if cfg.TargetVariance, err = readF64(br); err != nil {
		return nil, err
	}
	if cfg.DefaultVisitFrac, err = readF64(br); err != nil {
		return nil, err
	}
	// PCA model.
	eigenvalues, err := linalg.ReadFloat64s(br)
	if err != nil {
		return nil, fmt.Errorf("core: eigenvalues: %w", err)
	}
	components, err := linalg.ReadDense(br)
	if err != nil {
		return nil, fmt.Errorf("core: components: %w", err)
	}
	model := &pca.Model{Dim: components.Rows, Eigenvalues: eigenvalues, Components: components}
	hasMean, err := readU64(br)
	if err != nil {
		return nil, err
	}
	if hasMean == 1 {
		if model.Mean, err = linalg.ReadFloat64s(br); err != nil {
			return nil, err
		}
	}
	// Layout.
	mU, err := readU64(br)
	if err != nil {
		return nil, err
	}
	m := int(mU)
	if m <= 0 || m > 1<<16 {
		return nil, fmt.Errorf("core: implausible subspace count %d", m)
	}
	lengths := make([]int, m)
	for i := range lengths {
		v, err := readU64(br)
		if err != nil {
			return nil, err
		}
		lengths[i] = int(v)
	}
	bits := make([]int, m)
	for i := range bits {
		v, err := readU64(br)
		if err != nil {
			return nil, err
		}
		bits[i] = int(v)
	}
	ratios, err := linalg.ReadFloat64s(br)
	if err != nil {
		return nil, err
	}
	subVar, err := linalg.ReadFloat64s(br)
	if err != nil {
		return nil, err
	}
	sub, err := quantizer.FromLengths(lengths)
	if err != nil {
		return nil, err
	}
	books := make([]*vec.Matrix, m)
	for i := range books {
		if books[i], err = vec.ReadMatrix(br); err != nil {
			return nil, fmt.Errorf("core: codebook %d: %w", i, err)
		}
	}
	cb := &quantizer.Codebooks{Sub: sub, Bits: bits, Books: books}
	// Codes.
	nU, err := readU64(br)
	if err != nil {
		return nil, err
	}
	mCodes, err := readU64(br)
	if err != nil {
		return nil, err
	}
	if int(mCodes) != m {
		return nil, fmt.Errorf("core: code width %d != %d subspaces", mCodes, m)
	}
	n := int(nU)
	if n < 0 || n > 1<<34 {
		return nil, fmt.Errorf("core: implausible vector count %d", n)
	}
	codes := quantizer.NewCodes(n, m)
	buf := make([]byte, 2*len(codes.Data))
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("core: codes: %w", err)
	}
	for i := range codes.Data {
		codes.Data[i] = binary.LittleEndian.Uint16(buf[2*i:])
	}
	// TI structure.
	prefixU, err := readU64(br)
	if err != nil {
		return nil, err
	}
	centroids, err := vec.ReadMatrix(br)
	if err != nil {
		return nil, fmt.Errorf("core: TI centroids: %w", err)
	}
	clusterCount, err := readU64(br)
	if err != nil {
		return nil, err
	}
	if clusterCount > uint64(n)+1 {
		return nil, fmt.Errorf("core: implausible TI cluster count %d", clusterCount)
	}
	ti := &tiIndex{
		prefixSubspaces: int(prefixU),
		prefixDim:       centroids.Cols,
		centroids:       centroids,
		clusters:        make([][]tiEntry, clusterCount),
	}
	for c := range ti.clusters {
		lenU, err := readU64(br)
		if err != nil {
			return nil, err
		}
		if lenU > uint64(n) {
			return nil, fmt.Errorf("core: implausible TI cluster size %d", lenU)
		}
		members := make([]tiEntry, lenU)
		eb := make([]byte, 8*lenU)
		if _, err := io.ReadFull(br, eb); err != nil {
			return nil, err
		}
		for i := range members {
			members[i].id = int(binary.LittleEndian.Uint32(eb[8*i:]))
			members[i].dist = math.Float32frombits(binary.LittleEndian.Uint32(eb[8*i+4:]))
		}
		ti.clusters[c] = members
	}
	queryDim, err := readU64(br)
	if err != nil {
		return nil, err
	}
	// The blocked layout is derived, not stored: rebuild it here so the
	// loaded index scans exactly like a freshly built one.
	var blocked *blockedStore
	if cfg.ScanLayout == LayoutBlocked {
		blocked = buildBlockedStore(cb, codes, ti)
	}
	return &Index{
		cfg:      cfg,
		model:    model,
		ratios:   ratios,
		subVar:   subVar,
		bits:     bits,
		cb:       cb,
		codes:    codes,
		ti:       ti,
		blocked:  blocked,
		n:        n,
		queryDim: int(queryDim),
		// DisableMetrics is a runtime knob, not part of the on-disk
		// format: loaded indexes always get a fresh registry (sized for
		// pruning attribution and drift gauges; see metrics.NewSized).
		// The diagnostics baseline and drift state are runtime-only too:
		// a loaded index Diagnoses as Partial until retrained.
		metrics: metrics.NewSized(m+1, m),
	}, nil
}

// Save writes the index to a file.
func (ix *Index) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads an index from a file.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
