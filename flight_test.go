package vaq

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestFlightRecorderAlertBundleEndToEnd breaches the latency SLO on a live
// index with the recorder armed and checks the full chain: exactly one
// bundle per breach edge (no re-fire while latched), a manifest that
// validates, and an embedded workload log that replays same-index with
// 100% overlap — the acceptance loop CI's bundle-smoke job runs against a
// live vaqsearch process.
func TestFlightRecorderAlertBundleEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := genData(rng, 1200, 24)
	ix, err := Build(data, Config{
		NumSubspaces: 6, Budget: 36, Seed: 3, TIClusters: 20,
		// Every query violates a 1ns target; the budget exhausts on the
		// second and never recovers, so vaq.slo.latency fires exactly once.
		SLO: &SLO{LatencyTarget: time.Nanosecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rec, err := ix.EnableFlightRecorder("test_index", BundleConfig{
		Dir:                dir,
		TriggerDelay:       50 * time.Millisecond,
		WorkloadSampleRate: 1, // capture every query: the replay gate below wants records
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.EnableFlightRecorder("again", BundleConfig{Dir: dir}); err == nil {
		t.Fatal("second EnableFlightRecorder should error while armed")
	}

	for qi := 0; qi < 40; qi++ {
		if _, err := ix.Search(data[qi*13], 10); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && rec.Status().BundlesWritten == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if err := ix.DisableFlightRecorder(); err != nil {
		t.Fatalf("DisableFlightRecorder: %v", err)
	}

	mans, err := ListBundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(mans) != 1 {
		t.Fatalf("%d bundles after one breach edge, want exactly 1", len(mans))
	}
	man, err := ValidateBundle(mans[0].Dir)
	if err != nil {
		t.Fatalf("ValidateBundle: %v", err)
	}
	if man.Trigger.Source != "vaq.slo.latency" {
		t.Fatalf("trigger source %q, want vaq.slo.latency", man.Trigger.Source)
	}
	if man.Fingerprint != ix.ConfigFingerprint() {
		t.Fatalf("bundle fingerprint %s != index %s", man.Fingerprint, ix.ConfigFingerprint())
	}
	if man.WorkloadRecords == 0 {
		t.Fatal("bundle carries no workload records despite full sampling")
	}

	// Same-index replay of the embedded workload must be a perfect match.
	log, err := LoadWorkloadLog(man.Dir + "/workload.vaqwl")
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := ix.ReplayWorkload(log, ReplayOptions{
		Thresholds: ReplayThresholds{MinOverlap: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() || rep.MeanOverlap != 1 {
		t.Fatalf("same-index replay overlap %.4f (passed=%v), want 1.0", rep.MeanOverlap, rep.Passed())
	}
}

// TestFlightRecorderRacesMetricsAndTraffic hammers manual bundle triggers
// against concurrent Search, Add and ResetMetrics — the race detector run
// proves the recorder's freeze path (metrics snapshot, Diagnose under the
// index read lock, workload-ring snapshot, alert-bus reads) is safe
// against every mutation path, and that ResetMetrics mid-flight never
// wedges a latch.
func TestFlightRecorderRacesMetricsAndTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := genData(rng, 900, 24)
	ix, err := Build(data, Config{
		NumSubspaces: 6, Budget: 36, Seed: 9, TIClusters: 20,
		SLO: &SLO{LatencyTarget: time.Nanosecond, Window: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ix.EnableFlightRecorder("race_index", BundleConfig{
		Dir:              t.TempDir(),
		TriggerDelay:     time.Millisecond,
		SnapshotInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 15
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := rec.Trigger("race"); err != nil {
				t.Errorf("Trigger: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*10; i++ {
			if _, err := ix.Search(data[i%len(data)], 5); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		batchRng := rand.New(rand.NewSource(77))
		for i := 0; i < rounds; i++ {
			if _, err := ix.Add(genData(batchRng, 15, 24)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			ix.ResetMetrics()
		}
	}()
	wg.Wait()
	if err := ix.DisableFlightRecorder(); err != nil {
		t.Fatalf("DisableFlightRecorder: %v", err)
	}

	mans, err := ListBundles(rec.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(mans) < rounds {
		t.Fatalf("%d bundles, want at least the %d manual triggers", len(mans), rounds)
	}
	for _, m := range mans {
		if _, err := ValidateBundle(m.Dir); err != nil {
			t.Fatalf("bundle written under race is invalid: %v", err)
		}
	}

	// ResetMetrics re-armed the SLO latch; fresh traffic must be able to
	// breach it again (the bus survives resets, sources keep identity).
	bus := ix.Alerts()
	src := bus.Lookup("vaq.slo.latency")
	if src == nil {
		t.Fatal("vaq.slo.latency missing from the bus")
	}
	ix.ResetMetrics()
	before := src.Fires()
	for qi := 0; qi < 20; qi++ {
		if _, err := ix.Search(data[qi], 5); err != nil {
			t.Fatal(err)
		}
	}
	if src.Fires() != before+1 {
		t.Fatalf("latch did not re-fire after ResetMetrics: %d fires, had %d", src.Fires(), before)
	}
}

// TestShardedFlightRecorderSkewBundle drives the sharded skew latch and
// checks the sharded recorder path: the bundle carries the shard count and
// the merged-result workload, and exactly one bundle lands per edge.
func TestShardedFlightRecorderSkewBundle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := genData(rng, 900, 24)
	sx, err := BuildSharded(data, Config{
		NumSubspaces: 6, Budget: 36, Seed: 21, Shards: 3,
		// Per-query skew ratio slowest*S/total is >= 1 by construction, so
		// threshold 1 latches on the first scatter and never recovers.
		ShardSkewAlertRatio: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rec, err := sx.EnableFlightRecorder("sharded_index", BundleConfig{
		Dir:                dir,
		TriggerDelay:       50 * time.Millisecond,
		WorkloadSampleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 30; qi++ {
		if _, err := sx.Search(data[qi*7], 10); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && rec.Status().BundlesWritten == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if err := sx.DisableFlightRecorder(); err != nil {
		t.Fatalf("DisableFlightRecorder: %v", err)
	}

	mans, err := ListBundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(mans) != 1 {
		t.Fatalf("%d bundles after one skew edge, want exactly 1", len(mans))
	}
	man, err := ValidateBundle(mans[0].Dir)
	if err != nil {
		t.Fatalf("ValidateBundle: %v", err)
	}
	if man.Trigger.Source != "vaq.skew" {
		t.Fatalf("trigger source %q, want vaq.skew", man.Trigger.Source)
	}
	if man.Shards != 3 {
		t.Fatalf("bundle shards %d, want 3", man.Shards)
	}
	log, err := LoadWorkloadLog(man.Dir + "/workload.vaqwl")
	if err != nil {
		t.Fatal(err)
	}
	if log.Shards != 3 {
		t.Fatalf("workload log shards %d, want 3", log.Shards)
	}
	rep, _, err := sx.ReplayWorkload(log, ReplayOptions{
		Thresholds: ReplayThresholds{MinOverlap: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() || rep.MeanOverlap != 1 {
		t.Fatalf("same-index sharded replay overlap %.4f (passed=%v), want 1.0", rep.MeanOverlap, rep.Passed())
	}
}
