package quantizer

import (
	"vaq/internal/vec"
)

// LUT caches, for one query, the squared Euclidean distances between each
// query subvector and every dictionary item of that subspace — the
// asymmetric distance computation tables of paper Figure 2 step 3 and
// Algorithm 4 lines 5-13. Tables for different subspaces may have
// different sizes, so they are stored flattened with per-subspace offsets.
type LUT struct {
	M       int
	Offsets []int
	Dist    []float32
}

// BuildLUT computes the ADC lookup table for query q.
func (cb *Codebooks) BuildLUT(q []float32) *LUT {
	m := cb.Sub.M()
	offsets := make([]int, m+1)
	total := 0
	for s := 0; s < m; s++ {
		offsets[s] = total
		total += cb.Books[s].Rows
	}
	offsets[m] = total
	lut := &LUT{M: m, Offsets: offsets, Dist: make([]float32, total)}
	cb.FillLUT(q, lut)
	return lut
}

// FillLUT recomputes an existing table in place for a new query, avoiding
// per-query allocation on the batch path. Table construction is on the
// per-query critical path (Algorithm 4 lines 5-13), so the common short
// subspace lengths walk the dictionary storage directly instead of paying
// a slice + call round trip per entry; every path keeps SquaredL2's exact
// float association, so tables are bit-identical regardless of length.
func (cb *Codebooks) FillLUT(q []float32, lut *LUT) {
	for s := 0; s < cb.Sub.M(); s++ {
		FillTable(cb.Sub.Of(q, s), cb.Books[s], lut.Dist[lut.Offsets[s]:lut.Offsets[s+1]])
	}
}

// FillTable computes one subspace's distance table for query subvector qs
// against an arbitrary dictionary matrix — the single-subspace core of
// FillLUT, exported so derived scan stores (coarsened dictionaries) can
// build their own tables with the same float association.
func FillTable(qs []float32, book *vec.Matrix, out []float32) {
	switch len(qs) {
	case 4:
		fillLUT4(qs, book.Data, out)
	case 8:
		fillLUT8(qs, book.Data, out)
	default:
		for c := 0; c < book.Rows; c++ {
			out[c] = vec.SquaredL2(qs, book.Row(c))
		}
	}
}

// fillLUT4 computes one subspace's table for 4-dimensional entries.
// Identical arithmetic to SquaredL2 at n=4: four independent products
// summed left to right.
func fillLUT4(qs []float32, rows []float32, out []float32) {
	q0, q1, q2, q3 := qs[0], qs[1], qs[2], qs[3]
	for c := range out {
		r := rows[c*4 : c*4+4 : c*4+4]
		t0 := q0 - r[0]
		t1 := q1 - r[1]
		t2 := q2 - r[2]
		t3 := q3 - r[3]
		out[c] = t0*t0 + t1*t1 + t2*t2 + t3*t3
	}
}

// fillLUT8 computes one subspace's table for 8-dimensional entries with
// SquaredL2's association: per-lane partial sums over two 4-wide rounds,
// then d0+d1+d2+d3.
func fillLUT8(qs []float32, rows []float32, out []float32) {
	for c := range out {
		r := rows[c*8 : c*8+8 : c*8+8]
		var d0, d1, d2, d3 float32
		t0 := qs[0] - r[0]
		t1 := qs[1] - r[1]
		t2 := qs[2] - r[2]
		t3 := qs[3] - r[3]
		d0 += t0 * t0
		d1 += t1 * t1
		d2 += t2 * t2
		d3 += t3 * t3
		t0 = qs[4] - r[4]
		t1 = qs[5] - r[5]
		t2 = qs[6] - r[6]
		t3 = qs[7] - r[7]
		d0 += t0 * t0
		d1 += t1 * t1
		d2 += t2 * t2
		d3 += t3 * t3
		out[c] = d0 + d1 + d2 + d3
	}
}

// Table returns the table slice of subspace s.
func (l *LUT) Table(s int) []float32 { return l.Dist[l.Offsets[s]:l.Offsets[s+1]] }

// Distance accumulates the full approximate squared distance of code word
// c against the table.
func (l *LUT) Distance(code []uint16) float32 {
	var d float32
	for s, c := range code {
		d += l.Dist[l.Offsets[s]+int(c)]
	}
	return d
}

// ScanADC performs the exhaustive asymmetric-distance scan over all codes,
// returning the k nearest neighbors by approximate squared distance. This
// is the query path of plain PQ/OPQ (paper Figure 2 step 3-4).
func ScanADC(codes *Codes, lut *LUT, k int) []vec.Neighbor {
	tk := vec.NewTopK(k)
	m := codes.M
	for i := 0; i < codes.N; i++ {
		row := codes.Data[i*m : (i+1)*m]
		var d float32
		for s := 0; s < m; s++ {
			d += lut.Dist[lut.Offsets[s]+int(row[s])]
		}
		tk.Push(i, d)
	}
	return tk.Results()
}
