// Time-series similarity search: the workload the paper's introduction
// motivates. Builds VAQ over z-normalized series (a CBF-style dataset and
// a smooth light-curve-style dataset), shows how the adaptive bit
// allocation reacts to each spectrum, and measures recall against the
// exact scan.
//
//	go run ./examples/timeseries
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"vaq"
	"vaq/internal/dataset"
	"vaq/internal/vec"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	sets := []struct {
		name string
		gen  func() [][]float32
	}{
		{"CBF (noisy, spread spectrum)", func() [][]float32 {
			return toRows(dataset.CBF(rng, 4000, 128))
		}},
		{"SLC-like (smooth, skewed spectrum)", func() [][]float32 {
			return toRows(dataset.SLCLike(rng, 4000, 128))
		}},
	}
	for _, set := range sets {
		data := set.gen()
		fmt.Printf("== %s ==\n", set.name)
		ix, err := vaq.Build(data, vaq.Config{
			NumSubspaces: 16,
			Budget:       128,
			Seed:         7,
		})
		if err != nil {
			log.Fatal(err)
		}
		stats := ix.Stats()
		fmt.Printf("bit allocation:   %v\n", stats.BitsPerSubspace)
		fmt.Printf("variance shares:  %s\n", fmtShares(stats.SubspaceVariances))

		// Recall against an exact scan for 30 perturbed queries.
		const k = 10
		hits, total := 0, 0
		for trial := 0; trial < 30; trial++ {
			q := perturb(rng, data[rng.Intn(len(data))])
			truth := exactTopK(data, q, k)
			res, err := ix.Search(q, k)
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range res {
				if truth[r.ID] {
					hits++
				}
				total++
			}
		}
		fmt.Printf("recall@%d = %.3f\n\n", k, float64(hits)/float64(total))
	}
}

func toRows(m *vec.Matrix) [][]float32 {
	out := make([][]float32, m.Rows)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

func perturb(rng *rand.Rand, x []float32) []float32 {
	q := append([]float32(nil), x...)
	for j := range q {
		q[j] += float32(rng.NormFloat64()) * 0.05
	}
	return q
}

func exactTopK(data [][]float32, q []float32, k int) map[int]bool {
	type scored struct {
		id int
		d  float64
	}
	list := make([]scored, len(data))
	for i, row := range data {
		var d float64
		for j := range row {
			t := float64(q[j] - row[j])
			d += t * t
		}
		list[i] = scored{i, d}
	}
	sort.Slice(list, func(a, b int) bool { return list[a].d < list[b].d })
	out := make(map[int]bool, k)
	for i := 0; i < k; i++ {
		out[list[i].id] = true
	}
	return out
}

func fmtShares(v []float64) string {
	s := ""
	for _, x := range v {
		s += fmt.Sprintf("%.2f ", x)
	}
	return s
}
