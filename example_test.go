package vaq_test

import (
	"fmt"
	"math/rand"
	"os"

	"vaq"
)

func makeData(n, d int) [][]float32 {
	rng := rand.New(rand.NewSource(7))
	data := make([][]float32, n)
	for i := range data {
		row := make([]float32, d)
		for j := range row {
			row[j] = float32(rng.NormFloat64()) / float32(j+1)
		}
		data[i] = row
	}
	return data
}

// Searching many queries at once with a worker pool.
func ExampleIndex_SearchBatch() {
	data := makeData(2000, 16)
	ix, err := vaq.Build(data, vaq.Config{NumSubspaces: 4, Budget: 32, Seed: 7})
	if err != nil {
		panic(err)
	}
	queries := data[:3]
	results, err := ix.SearchBatch(queries, 2, vaq.SearchOptions{}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(results), len(results[0]))
	// Output: 3 2
}

// Persisting a trained index and reloading it without retraining.
func ExampleIndex_Save() {
	data := makeData(1000, 16)
	ix, err := vaq.Build(data, vaq.Config{NumSubspaces: 4, Budget: 24, Seed: 7})
	if err != nil {
		panic(err)
	}
	dir, err := os.MkdirTemp("", "vaq-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := dir + "/index.vaqi"
	if err := ix.Save(path); err != nil {
		panic(err)
	}
	loaded, err := vaq.Load(path)
	if err != nil {
		panic(err)
	}
	fmt.Println(loaded.Len() == ix.Len())
	// Output: true
}

// Constraining the bit allocation: cap the most important subspace.
func ExampleConfig_allocConstraints() {
	data := makeData(1500, 16)
	coeffs := make([]float64, 4)
	coeffs[0] = 1 // the most important subspace's bit variable
	ix, err := vaq.Build(data, vaq.Config{
		NumSubspaces: 4,
		Budget:       24,
		Seed:         7,
		AllocConstraints: []vaq.BitConstraint{
			{Coeffs: coeffs, Sense: vaq.LE, RHS: 7},
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(ix.Stats().BitsPerSubspace[0] <= 7)
	// Output: true
}
