package core

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := skewedData(rng, 800, 24, 1.2)
	ix, err := Build(x, x, Config{
		NumSubspaces: 6, Budget: 48, Seed: 21, TIClusters: 20, NonUniform: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	nBytes, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nBytes != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", nBytes, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ix.Len() || got.Dim() != ix.Dim() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.Len(), got.Dim(), ix.Len(), ix.Dim())
	}
	gotBits, wantBits := got.Bits(), ix.Bits()
	for i := range wantBits {
		if gotBits[i] != wantBits[i] {
			t.Fatalf("bits mismatch: %v vs %v", gotBits, wantBits)
		}
	}
	if got.TIClusterCount() != ix.TIClusterCount() {
		t.Fatalf("cluster count %d vs %d", got.TIClusterCount(), ix.TIClusterCount())
	}
	// Identical answers across every mode.
	for trial := 0; trial < 10; trial++ {
		q := append([]float32(nil), x.Row(rng.Intn(x.Rows))...)
		for j := range q {
			q[j] += float32(rng.NormFloat64() * 0.05)
		}
		for _, opt := range []SearchOptions{
			{Mode: ModeHeap},
			{Mode: ModeEA},
			{Mode: ModeTIEA, VisitFrac: 0.3},
		} {
			a, err := ix.SearchWith(q, 7, opt)
			if err != nil {
				t.Fatal(err)
			}
			b, err := got.SearchWith(q, 7, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("result lengths differ")
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("mode %v result %d: %v vs %v", opt.Mode, i, a[i], b[i])
				}
			}
		}
	}
}

func TestIndexFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := skewedData(rng, 300, 16, 1.0)
	ix, err := Build(x, x, Config{NumSubspaces: 4, Budget: 24, Seed: 22, TIClusters: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/index.vaqi"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	res1, _ := ix.Search(x.Row(5), 3)
	res2, _ := got.Search(x.Row(5), 3)
	for i := range res1 {
		if res1[i] != res2[i] {
			t.Fatalf("file round trip answers differ: %v vs %v", res1, res2)
		}
	}
	if _, err := Load(path + ".missing"); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input must fail")
	}
	if _, err := Read(bytes.NewReader([]byte("NOTANINDEXATALL!"))); err == nil {
		t.Fatal("bad magic must fail")
	}
	// Truncated stream: write a valid index and chop it.
	rng := rand.New(rand.NewSource(23))
	x := skewedData(rng, 100, 8, 1.0)
	ix, err := Build(x, x, Config{NumSubspaces: 2, Budget: 8, Seed: 23, TIClusters: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int{2, 3, 10} {
		cut := buf.Len() / frac
		if _, err := Read(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncated stream (1/%d) must fail", frac)
		}
	}
	// Corrupted version.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[4] = 0xFF
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version must fail")
	}
}
