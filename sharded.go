package vaq

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"

	"vaq/internal/core"
	"vaq/internal/shard"
	"vaq/internal/vec"
	"vaq/internal/workload"
)

func coreOptions(opt SearchOptions) core.SearchOptions {
	return core.SearchOptions{
		Mode:      opt.Mode,
		VisitFrac: opt.VisitFrac,
		Subspaces: opt.Subspaces,
	}
}

// ShardPolicy selects how a sharded index routes Add batches to shards.
type ShardPolicy = shard.Policy

// Shard assignment policies.
const (
	// ShardRoundRobin rotates whole batches across shards (default).
	ShardRoundRobin = shard.PolicyRoundRobin
	// ShardLeastLoaded sends each batch to the currently smallest shard.
	ShardLeastLoaded = shard.PolicyLeastLoaded
)

// ShardedIndex is a VAQ index partitioned across Config.Shards independent
// shards that share one trained model. Builds encode shards in parallel;
// Search scatters the query to per-shard searchers on a bounded worker
// pool, feeds the running global k-th distance back to not-yet-started
// shards as an early-abandon threshold, and merges the per-shard top-k
// lists in the same strict (distance, id) order the single index uses —
// with Shards=1 results and serialized shard payloads are bit-identical to
// an unsharded Index. Add reserves global ids with one atomic counter and
// routes each batch to one shard by ShardPolicy, so concurrent Adds only
// contend when they land on the same shard.
type ShardedIndex struct {
	inner *shard.Index
}

// BuildSharded trains one model over data and encodes it across
// cfg.Shards parallel shards. cfg.Shards <= 1 builds a single shard.
func BuildSharded(data [][]float32, cfg Config) (*ShardedIndex, error) {
	m, err := vec.FromRows(data)
	if err != nil {
		return nil, fmt.Errorf("vaq: %w", err)
	}
	return buildShardedMatrices(m, m, cfg)
}

// BuildShardedWithTrainingSet trains on train and encodes data across
// cfg.Shards parallel shards.
func BuildShardedWithTrainingSet(train, data [][]float32, cfg Config) (*ShardedIndex, error) {
	tm, err := vec.FromRows(train)
	if err != nil {
		return nil, fmt.Errorf("vaq: train: %w", err)
	}
	dm, err := vec.FromRows(data)
	if err != nil {
		return nil, fmt.Errorf("vaq: data: %w", err)
	}
	return buildShardedMatrices(tm, dm, cfg)
}

func buildShardedMatrices(train, data *vec.Matrix, cfg Config) (*ShardedIndex, error) {
	s := cfg.Shards
	if s < 1 {
		s = 1
	}
	inner, err := shard.Build(train, data, cfg.toCore(), shard.Options{
		Shards:         s,
		Policy:         cfg.ShardPolicy,
		SkewAlertRatio: cfg.ShardSkewAlertRatio,
	})
	if err != nil {
		return nil, fmt.Errorf("vaq: %w", err)
	}
	return &ShardedIndex{inner: inner}, nil
}

// Len reports the total number of encoded vectors across all shards.
func (ix *ShardedIndex) Len() int { return ix.inner.Len() }

// Dim reports the expected query dimensionality.
func (ix *ShardedIndex) Dim() int { return ix.inner.Dim() }

// Shards reports the number of shards actually built (Config.Shards
// clamped to the dataset size).
func (ix *ShardedIndex) Shards() int { return ix.inner.Shards() }

// ShardLens reports each shard's current vector count — useful for
// watching how the assignment policy balances ingest.
func (ix *ShardedIndex) ShardLens() []int { return ix.inner.ShardLens() }

// Search returns the approximate k nearest neighbors of q with default
// options, merged across all shards.
func (ix *ShardedIndex) Search(q []float32, k int) ([]Result, error) {
	return ix.SearchWith(q, k, SearchOptions{})
}

// SearchWith returns the approximate k nearest neighbors under explicit
// options, merged across all shards.
func (ix *ShardedIndex) SearchWith(q []float32, k int, opt SearchOptions) ([]Result, error) {
	res, err := ix.inner.Search(q, k, coreOptions(opt))
	if err != nil {
		return nil, fmt.Errorf("vaq: %w", err)
	}
	return toResults(res), nil
}

// SearchBatch answers many queries in query order, fanning them out
// across workers outer goroutines (each query additionally scatters to
// per-shard searchers). Error semantics match Index.SearchBatch: k < 1 is
// rejected up front, per-query faults keep their slot nil and come back
// joined.
func (ix *ShardedIndex) SearchBatch(queries [][]float32, k int, opt SearchOptions, workers int) ([][]Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("vaq: k must be >= 1, got %d", k)
	}
	n := len(queries)
	out := make([][]Result, n)
	if n == 0 {
		return out, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	qErrs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range next {
				res, err := ix.SearchWith(queries[qi], k, opt)
				if err != nil {
					qErrs[qi] = fmt.Errorf("vaq: query %d: %w", qi, err)
					continue
				}
				out[qi] = res
			}
		}()
	}
	for qi := 0; qi < n; qi++ {
		next <- qi
	}
	close(next)
	wg.Wait()
	return out, errors.Join(qErrs...)
}

// Add encodes new vectors into one shard chosen by the assignment policy
// and returns the first global id assigned. Ids are reserved atomically,
// so concurrent Adds proceed in parallel and only batches routed to the
// same shard serialize.
func (ix *ShardedIndex) Add(vectors [][]float32) (int, error) {
	m, err := vec.FromRows(vectors)
	if err != nil {
		return 0, fmt.Errorf("vaq: %w", err)
	}
	first, err := ix.inner.Add(m)
	if err != nil {
		return 0, fmt.Errorf("vaq: %w", err)
	}
	return first, nil
}

// Metrics returns the merged telemetry snapshot: one record per query,
// per-shard pruning counters summed, latency measured end-to-end around
// the scatter-gather. Zero-valued when Config.DisableMetrics was set.
func (ix *ShardedIndex) Metrics() MetricsSnapshot {
	if m := ix.inner.Metrics(); m != nil {
		return toSnapshot(m.Snapshot())
	}
	return MetricsSnapshot{}
}

// ResetMetrics zeroes the merged registry and every per-shard registry.
func (ix *ShardedIndex) ResetMetrics() {
	ix.inner.Metrics().Reset()
	for i := 0; i < ix.inner.Shards(); i++ {
		ix.inner.Shard(i).Metrics().Reset()
	}
}

// PublishExpvar registers the merged registry on /debug/vars (and the
// Prometheus endpoint) under name, and each per-shard registry under
// name/shard-i.
func (ix *ShardedIndex) PublishExpvar(name string) { ix.inner.PublishExpvar(name) }

// PublishDiagnostics registers every shard's index-quality report under
// name/shard-i for GET /debug/vaq/report?index=....
func (ix *ShardedIndex) PublishDiagnostics(name string) { ix.inner.PublishDiagnostics(name) }

// ConfigFingerprint is the stable short hash identifying the
// search-relevant configuration. With one shard it equals the unsharded
// fingerprint (the degenerate case answers bit-identically); with more it
// derives a sharded fingerprint from it.
func (ix *ShardedIndex) ConfigFingerprint() string { return ix.inner.ConfigFingerprint() }

// EnableTracing installs a fresh per-query tracer on the sharded index
// and returns it. From the next query on, every search files one parent
// QueryTrace whose spans carry a Shard id: per shard a SpanShardWait
// (queue delay on the scatter worker pool) and a SpanShardScan (the
// shard's whole search with its TI/EA/lookup attribution and final top-k
// hits inline), one SpanBoundFeedback per cross-shard bound tightening
// (crediting the prunes it enabled downstream), and a trailing
// SpanShardMerge. Disabled, tracing costs the scatter path one pointer
// check per query.
func (ix *ShardedIndex) EnableTracing(cfg TraceConfig) *Tracer {
	return ix.inner.EnableTracing(cfg)
}

// DisableTracing detaches the sharded index's tracer; queries already in
// flight may still file one last trace.
func (ix *ShardedIndex) DisableTracing() { ix.inner.DisableTracing() }

// Tracer returns the active tracer, or nil when tracing is disabled.
func (ix *ShardedIndex) Tracer() *Tracer { return ix.inner.Tracer() }

// AttachTracer points the sharded query path at an existing tracer (nil
// detaches), so several indexes can aggregate into one ring.
func (ix *ShardedIndex) AttachTracer(t *Tracer) { ix.inner.AttachTracer(t) }

// EnableCapture installs a workload capture buffer on the merged query
// path and returns it. Sampled queries record the merged global result
// list — the scatter-gather ground truth — and the log's provenance
// carries the sharded config fingerprint and the shard count, so a replay
// can gate merge correctness across rebuilds with different Shards
// values. Off by default; off, the scatter path pays one pointer load.
func (ix *ShardedIndex) EnableCapture(cfg CaptureConfig) *WorkloadCapture {
	return ix.inner.EnableCapture(cfg)
}

// DisableCapture detaches the capture buffer; records already stored stay
// readable through the WorkloadCapture EnableCapture returned.
func (ix *ShardedIndex) DisableCapture() { ix.inner.DisableCapture() }

// Capture returns the active workload capture, or nil when capture is
// off.
func (ix *ShardedIndex) Capture() *WorkloadCapture { return ix.inner.Capture() }

// ReplayWorkload re-runs a captured workload log through the sharded
// scatter-gather path and diffs the merged answers against the recorded
// ones — the merge-correctness gate: a log captured on an unsharded index
// replayed here measures exactly how far sharded merging diverges.
func (ix *ShardedIndex) ReplayWorkload(l *WorkloadLog, opt ReplayOptions) (*ReplayReport, []ReplayQueryDiff, error) {
	rep, diffs, err := workload.Replay(l, ix.inner.ReplayRunner(), opt)
	if err != nil {
		return nil, nil, fmt.Errorf("vaq: %w", err)
	}
	return rep, diffs, nil
}

// WriteTo serializes the sharded index: a "VAQS" envelope (shard count,
// assignment policy, id mappings) around one versioned single-index
// stream per shard.
func (ix *ShardedIndex) WriteTo(w io.Writer) (int64, error) { return ix.inner.WriteTo(w) }

// ReadSharded deserializes a sharded index written by WriteTo.
func ReadSharded(r io.Reader) (*ShardedIndex, error) { return ReadShardedLogged(r, nil) }

// ReadShardedLogged is ReadSharded with a structured logger attached to
// the loaded index's maintenance paths. nil behaves like ReadSharded.
func ReadShardedLogged(r io.Reader, l *slog.Logger) (*ShardedIndex, error) {
	inner, err := shard.ReadLogged(r, l)
	if err != nil {
		return nil, fmt.Errorf("vaq: %w", err)
	}
	return &ShardedIndex{inner: inner}, nil
}

// Save writes the sharded index to a file (atomic rename).
func (ix *ShardedIndex) Save(path string) error { return ix.inner.Save(path) }

// LoadSharded reads a sharded index from a file.
func LoadSharded(path string) (*ShardedIndex, error) {
	inner, err := shard.Load(path)
	if err != nil {
		return nil, fmt.Errorf("vaq: %w", err)
	}
	return &ShardedIndex{inner: inner}, nil
}
