// Package isax implements an iSAX2+-style tree index (Camerra et al.;
// paper §II-C and Figure 11): series are summarized by PAA, discretized
// into iSAX words with per-segment variable cardinality, and organized in a
// tree whose leaves split by promoting one segment to the next cardinality.
// Queries descend by lower bound (the classic MINDIST_PAA_iSAX), visiting
// either a fixed number of leaves (the "ng-approximate" mode of [37]) or
// running a best-first search with an epsilon-relaxed bound.
package isax

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"vaq/internal/vec"
)

// maxCardBits is the deepest per-segment cardinality (2^8 symbols).
const maxCardBits = 8

// breakpoints[b] holds the 2^b - 1 standard-normal breakpoints separating
// 2^b equiprobable regions; computed once at package init.
var breakpoints [maxCardBits + 1][]float64

func init() {
	for b := 1; b <= maxCardBits; b++ {
		card := 1 << b
		bp := make([]float64, card-1)
		for i := 1; i < card; i++ {
			bp[i-1] = normalQuantile(float64(i) / float64(card))
		}
		breakpoints[b] = bp
	}
}

// normalQuantile inverts the standard normal CDF (Acklam's rational
// approximation; |error| < 1.15e-9, ample for SAX breakpoints).
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := []float64{-39.69683028665376, 220.9460984245205, -275.9285104469687,
		138.3577518672690, -30.66479806614716, 2.506628277459239}
	b := []float64{-54.47609879822406, 161.5858368580409, -155.6989798598866,
		66.80131188771972, -13.28068155288572}
	c := []float64{-0.007784894002430293, -0.3223964580411365, -2.400758277161838,
		-2.549732539343734, 4.374664141464968, 2.938163982698783}
	d := []float64{0.007784695709041462, 0.3224671290700398, 2.445134137142996,
		3.754408661907416}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// Config controls Build.
type Config struct {
	// Segments is the PAA word length (paper-style default 16).
	Segments int
	// LeafCapacity is the split threshold (default 100).
	LeafCapacity int
}

// node is a tree node. Leaves hold member ids; internal nodes hold two
// children produced by promoting segment splitSeg one cardinality bit.
type node struct {
	// card[s] is the cardinality (in bits) this node's word uses per
	// segment; word[s] is the symbol under that cardinality.
	card []uint8
	word []uint16
	// leaf members (nil for internal nodes).
	members []int32
	// split info for internal nodes.
	splitSeg int
	children [2]*node
}

// Index is a built iSAX tree.
type Index struct {
	data     *vec.Matrix
	segments int
	leafCap  int
	root     *node // synthetic root over first-bit words
	rootKids map[uint16]*node
	paa      []float32 // n x segments
	n        int
	segLen   float64
}

// Build constructs the tree over z-normalized (or any) series.
func Build(data *vec.Matrix, cfg Config) (*Index, error) {
	if data.Rows == 0 {
		return nil, fmt.Errorf("isax: empty data")
	}
	if cfg.Segments < 1 || cfg.Segments > data.Cols {
		return nil, fmt.Errorf("isax: Segments=%d invalid for length %d", cfg.Segments, data.Cols)
	}
	if cfg.Segments > 16 {
		return nil, fmt.Errorf("isax: Segments=%d exceeds 16 (root word key width)", cfg.Segments)
	}
	if cfg.LeafCapacity <= 0 {
		cfg.LeafCapacity = 100
	}
	ix := &Index{
		data:     data,
		segments: cfg.Segments,
		leafCap:  cfg.LeafCapacity,
		rootKids: make(map[uint16]*node),
		paa:      make([]float32, data.Rows*cfg.Segments),
		n:        data.Rows,
		segLen:   float64(data.Cols) / float64(cfg.Segments),
	}
	for i := 0; i < data.Rows; i++ {
		computePAA(data.Row(i), ix.paaRow(i))
	}
	for i := 0; i < data.Rows; i++ {
		ix.insert(int32(i))
	}
	return ix, nil
}

func (ix *Index) paaRow(i int) []float32 {
	return ix.paa[i*ix.segments : (i+1)*ix.segments]
}

// computePAA fills out with the piecewise aggregate approximation of x.
func computePAA(x []float32, out []float32) {
	d := len(x)
	w := len(out)
	for s := 0; s < w; s++ {
		lo := s * d / w
		hi := (s + 1) * d / w
		if hi == lo {
			hi = lo + 1
		}
		var sum float64
		for j := lo; j < hi; j++ {
			sum += float64(x[j])
		}
		out[s] = float32(sum / float64(hi-lo))
	}
}

// symbol maps a PAA value to its SAX symbol at the given cardinality bits.
func symbol(v float64, bits uint8) uint16 {
	bp := breakpoints[bits]
	// Binary search: number of breakpoints below v.
	idx := sort.SearchFloat64s(bp, v)
	return uint16(idx)
}

// Len reports the number of indexed series.
func (ix *Index) Len() int { return ix.n }

func (ix *Index) insert(id int32) {
	paa := ix.paaRow(int(id))
	// Root children keyed by the full 1-bit word.
	var key uint16
	for s := 0; s < ix.segments; s++ {
		key = key<<1 | symbol(float64(paa[s]), 1)&1
	}
	nd, ok := ix.rootKids[key]
	if !ok {
		card := make([]uint8, ix.segments)
		word := make([]uint16, ix.segments)
		for s := 0; s < ix.segments; s++ {
			card[s] = 1
			word[s] = symbol(float64(paa[s]), 1)
		}
		nd = &node{card: card, word: word}
		ix.rootKids[key] = nd
	}
	ix.insertInto(nd, id)
}

func (ix *Index) insertInto(nd *node, id int32) {
	for nd.children[0] != nil {
		paa := ix.paaRow(int(id))
		s := nd.splitSeg
		bit := symbol(float64(paa[s]), nd.children[0].card[s]) & 1
		nd = nd.children[bit]
	}
	nd.members = append(nd.members, id)
	if len(nd.members) > ix.leafCap {
		ix.split(nd)
	}
}

// split promotes one segment's cardinality by a bit and redistributes the
// leaf's members between the two refined children (iSAX 2.0 node split).
func (ix *Index) split(nd *node) {
	// Choose the segment whose members' PAA values have the highest
	// variance among segments that can still be refined.
	best, bestVar := -1, -1.0
	for s := 0; s < ix.segments; s++ {
		if nd.card[s] >= maxCardBits {
			continue
		}
		var mean, ss float64
		for _, id := range nd.members {
			mean += float64(ix.paaRow(int(id))[s])
		}
		mean /= float64(len(nd.members))
		for _, id := range nd.members {
			d := float64(ix.paaRow(int(id))[s]) - mean
			ss += d * d
		}
		if ss > bestVar {
			bestVar = ss
			best = s
		}
	}
	if best == -1 {
		return // cannot refine further; oversized leaf is allowed
	}
	nd.splitSeg = best
	newBits := nd.card[best] + 1
	for b := 0; b < 2; b++ {
		card := append([]uint8(nil), nd.card...)
		word := append([]uint16(nil), nd.word...)
		card[best] = newBits
		word[best] = nd.word[best]<<1 | uint16(b)
		nd.children[b] = &node{card: card, word: word}
	}
	members := nd.members
	nd.members = nil
	for _, id := range members {
		paa := ix.paaRow(int(id))
		bit := symbol(float64(paa[best]), newBits) & 1
		ix.insertInto(nd.children[bit], id)
	}
}

// minDistSq computes the squared MINDIST_PAA_iSAX lower bound between a
// query's PAA and a node's iSAX word.
func (ix *Index) minDistSq(qPaa []float32, nd *node) float32 {
	var sum float64
	for s := 0; s < ix.segments; s++ {
		bits := nd.card[s]
		bp := breakpoints[bits]
		sym := int(nd.word[s])
		var lo, hi float64
		if sym == 0 {
			lo = math.Inf(-1)
		} else {
			lo = bp[sym-1]
		}
		if sym == len(bp) {
			hi = math.Inf(1)
		} else {
			hi = bp[sym]
		}
		q := float64(qPaa[s])
		var gap float64
		if q < lo {
			gap = lo - q
		} else if q > hi {
			gap = q - hi
		}
		sum += gap * gap
	}
	return float32(ix.segLen * sum)
}

// leafRef pairs a leaf with its lower bound for ordering.
type leafRef struct {
	nd *node
	lb float32
}

// collectLeaves gathers every leaf with its bound for the query.
func (ix *Index) collectLeaves(qPaa []float32) []leafRef {
	var out []leafRef
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.children[0] == nil {
			if len(nd.members) > 0 {
				out = append(out, leafRef{nd, ix.minDistSq(qPaa, nd)})
			}
			return
		}
		walk(nd.children[0])
		walk(nd.children[1])
	}
	for _, nd := range ix.rootKids {
		walk(nd)
	}
	return out
}

// SearchApprox visits the visitLeaves leaves with the smallest lower bound
// and ranks their members by true distance (squared Euclidean). This is
// the ng-approximate search mode the paper evaluates in Figure 11.
func (ix *Index) SearchApprox(q []float32, k, visitLeaves int) ([]vec.Neighbor, error) {
	if err := ix.checkQuery(q, k); err != nil {
		return nil, err
	}
	if visitLeaves < 1 {
		visitLeaves = 1
	}
	qPaa := make([]float32, ix.segments)
	computePAA(q, qPaa)
	leaves := ix.collectLeaves(qPaa)
	sort.Slice(leaves, func(a, b int) bool { return leaves[a].lb < leaves[b].lb })
	if visitLeaves > len(leaves) {
		visitLeaves = len(leaves)
	}
	tk := vec.NewTopK(k)
	for _, lf := range leaves[:visitLeaves] {
		for _, id := range lf.nd.members {
			tk.Push(int(id), vec.SquaredL2(q, ix.data.Row(int(id))))
		}
	}
	return tk.Results(), nil
}

type lbHeap []leafRef

func (h lbHeap) Len() int            { return len(h) }
func (h lbHeap) Less(i, j int) bool  { return h[i].lb < h[j].lb }
func (h lbHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lbHeap) Push(x interface{}) { *h = append(*h, x.(leafRef)) }
func (h *lbHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SearchEpsilon runs best-first search over leaves, pruning a leaf when
// its lower bound times (1+epsilon) exceeds the current k-th best
// distance. epsilon = 0 yields exact nearest neighbors; larger values
// answer faster with bounded error (the "Epsilon" variants of Figure 11).
func (ix *Index) SearchEpsilon(q []float32, k int, epsilon float64) ([]vec.Neighbor, error) {
	if err := ix.checkQuery(q, k); err != nil {
		return nil, err
	}
	if epsilon < 0 {
		return nil, fmt.Errorf("isax: epsilon must be >= 0, got %v", epsilon)
	}
	qPaa := make([]float32, ix.segments)
	computePAA(q, qPaa)
	leaves := ix.collectLeaves(qPaa)
	h := lbHeap(leaves)
	heap.Init(&h)
	tk := vec.NewTopK(k)
	relax := float32(1 + epsilon)
	for h.Len() > 0 {
		lf := heap.Pop(&h).(leafRef)
		if tk.Full() && lf.lb*relax*relax >= tk.Threshold() {
			break // every remaining leaf has an even larger bound
		}
		for _, id := range lf.nd.members {
			tk.Push(int(id), vec.SquaredL2(q, ix.data.Row(int(id))))
		}
	}
	return tk.Results(), nil
}

func (ix *Index) checkQuery(q []float32, k int) error {
	if len(q) != ix.data.Cols {
		return fmt.Errorf("isax: query length %d, index length %d", len(q), ix.data.Cols)
	}
	if k < 1 {
		return fmt.Errorf("isax: k must be >= 1, got %d", k)
	}
	return nil
}

// LeafCount reports the number of non-empty leaves (useful for tests and
// experiment logs).
func (ix *Index) LeafCount() int {
	count := 0
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.children[0] == nil {
			if len(nd.members) > 0 {
				count++
			}
			return
		}
		walk(nd.children[0])
		walk(nd.children[1])
	}
	for _, nd := range ix.rootKids {
		walk(nd)
	}
	return count
}
