package quantizer

import (
	"fmt"

	"vaq/internal/vec"
)

// PQ is plain Product Quantization (Jégou et al., paper §II-C): uniform
// subspaces, equal dictionary sizes, exhaustive ADC scan at query time.
type PQ struct {
	cb    *Codebooks
	codes *Codes
	n     int
}

// PQConfig configures TrainPQ.
type PQConfig struct {
	// M is the number of subspaces.
	M int
	// BitsPerSubspace is the dictionary size exponent (8 is the literature
	// default; Bolt-style settings use 4).
	BitsPerSubspace int
	Train           TrainConfig
}

// TrainPQ learns dictionaries on train and encodes data with them.
// train and data may be the same matrix.
func TrainPQ(train, data *vec.Matrix, cfg PQConfig) (*PQ, error) {
	if train.Cols != data.Cols {
		return nil, fmt.Errorf("quantizer: train dim %d != data dim %d", train.Cols, data.Cols)
	}
	sub, err := UniformSubspaces(train.Cols, cfg.M)
	if err != nil {
		return nil, err
	}
	bits := make([]int, cfg.M)
	for i := range bits {
		bits[i] = cfg.BitsPerSubspace
	}
	cb, err := TrainCodebooks(train, sub, bits, cfg.Train)
	if err != nil {
		return nil, err
	}
	codes, err := cb.Encode(data, true)
	if err != nil {
		return nil, err
	}
	return &PQ{cb: cb, codes: codes, n: data.Rows}, nil
}

// Codebooks exposes the trained dictionaries.
func (p *PQ) Codebooks() *Codebooks { return p.cb }

// Codes exposes the encoded dataset.
func (p *PQ) Codes() *Codes { return p.codes }

// Len reports the number of encoded vectors.
func (p *PQ) Len() int { return p.n }

// Search returns the approximate k nearest neighbors of q (squared
// distances).
func (p *PQ) Search(q []float32, k int) ([]vec.Neighbor, error) {
	if len(q) != p.cb.Sub.Dim() {
		return nil, fmt.Errorf("quantizer: query dim %d, index dim %d", len(q), p.cb.Sub.Dim())
	}
	lut := p.cb.BuildLUT(q)
	return ScanADC(p.codes, lut, k), nil
}
