// Tuning walkthrough: how VAQ's knobs trade accuracy for speed and space.
// Sweeps the bit budget and allocation strategy on a skewed-spectrum
// dataset and prints the resulting allocations, recall and query time —
// a miniature of the paper's Figures 7 and 9 in example form.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"vaq"
	"vaq/internal/dataset"
	"vaq/internal/eval"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	base := dataset.RandomWalk(rng, 15000, 128, 0.7) // SALD-like skew
	queries := dataset.NoisyQueries(rng, base, 30, 0.05, 0.3)
	rows := make([][]float32, base.Rows)
	for i := range rows {
		rows[i] = base.Row(i)
	}
	const k = 10
	gt, err := eval.GroundTruth(base, queries, k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- budget sweep (16 subspaces, MILP allocation, visit 25%) ---")
	fmt.Printf("%8s %10s %10s %12s\n", "budget", "recall@10", "ms/query", "code bytes")
	for _, budget := range []int{32, 64, 128, 192} {
		ix, err := vaq.Build(rows, vaq.Config{NumSubspaces: 16, Budget: budget, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		rec, ms := measure(ix, queries.Rows, func(qi int) ([]vaq.Result, error) {
			return ix.Search(queries.Row(qi), k)
		}, gt, k, queries)
		fmt.Printf("%8d %10.3f %10.3f %12d\n", budget, rec, ms, ix.Stats().CodeBytes)
	}

	fmt.Println("\n--- allocation strategies (128 bits, 16 subspaces) ---")
	for _, alloc := range []struct {
		name string
		a    vaq.AllocStrategy
	}{
		{"MILP (paper)", vaq.AllocMILP},
		{"transform-coding", vaq.AllocTransformCoding},
		{"uniform (PQ-style)", vaq.AllocUniform},
	} {
		ix, err := vaq.Build(rows, vaq.Config{
			NumSubspaces: 16, Budget: 128, Alloc: alloc.a, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		rec, ms := measure(ix, queries.Rows, func(qi int) ([]vaq.Result, error) {
			return ix.Search(queries.Row(qi), k)
		}, gt, k, queries)
		fmt.Printf("%-20s bits=%v recall=%.3f %.3fms\n",
			alloc.name, ix.Stats().BitsPerSubspace, rec, ms)
	}

	fmt.Println("\n--- visit-fraction sweep (128 bits) ---")
	ix, err := vaq.Build(rows, vaq.Config{NumSubspaces: 16, Budget: 128, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	searcher := ix.NewSearcher()
	for _, visit := range []float64{0.05, 0.10, 0.25, 0.50, 1.00} {
		v := visit
		rec, ms := measure(ix, queries.Rows, func(qi int) ([]vaq.Result, error) {
			return searcher.Search(queries.Row(qi), k, vaq.SearchOptions{VisitFrac: v})
		}, gt, k, queries)
		st := searcher.LastStats() // instrumentation of the last query
		fmt.Printf("visit %4.0f%%: recall=%.3f %.3fms  (considered %d, TI-skipped %d, EA-abandoned %d, lookups %d)\n",
			v*100, rec, ms, st.CodesConsidered, st.CodesSkippedTI, st.CodesAbandonedEA, st.Lookups)
	}
}

type queryFn func(qi int) ([]vaq.Result, error)

func measure(ix *vaq.Index, nq int, run queryFn, gt [][]int, k int, queries interface{ Row(int) []float32 }) (float64, float64) {
	results := make([][]int, nq)
	start := time.Now()
	for qi := 0; qi < nq; qi++ {
		res, err := run(qi)
		if err != nil {
			log.Fatal(err)
		}
		ids := make([]int, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		results[qi] = ids
	}
	ms := time.Since(start).Seconds() / float64(nq) * 1000
	return eval.Recall(results, gt, k), ms
}
