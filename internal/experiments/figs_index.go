package experiments

import (
	"fmt"
	"io"
	"time"

	"vaq/internal/core"
	"vaq/internal/dstree"
	"vaq/internal/eval"
	"vaq/internal/hnsw"
	"vaq/internal/imi"
	"vaq/internal/isax"
	"vaq/internal/quantizer"
	"vaq/internal/vec"
)

// RunFig11 reproduces Figure 11: VAQ's data-skipping scan against the
// tree indexes iSAX2+ and DSTree (ng-approximate and epsilon variants)
// and IMI+OPQ, on the SALD stand-in. Quantization methods retrieve R in
// {k..10k} candidates and re-rank them with the original data; trees vary
// visited leaves / epsilon. Reported: recall@100 and average query time.
// Expected shape: VAQ dominates the speedup-vs-recall frontier; IMI
// improves OPQ's runtime but caps its recall.
func RunFig11(w io.Writer, s Scale) error {
	const k = 100
	ds, gt, err := largeDataset("SALD", s, k)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== SALD (n=%d d=%d, recall@%d, re-ranked with raw data) ==\n",
		ds.Base.Rows, ds.Dim(), k)
	fmt.Fprintf(w, "%-28s %9s %12s %12s\n", "method", "recall", "query(ms)", "build(s)")

	emit := func(name string, buildSec float64, search searchFunc) error {
		m := &method{name: name, buildSeconds: buildSec, search: search}
		row, err := evaluate(m, ds.Queries, gt, k)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-28s %9.4f %12.4f %12.2f\n", row.name, row.recall,
			row.avgQuerySec*1000, row.buildSeconds)
		return nil
	}

	// VAQ with candidate re-ranking.
	start := time.Now()
	vaqIx, err := core.Build(ds.Train, ds.Base, vaqConfig(256, 32, s.Seed))
	if err != nil {
		return err
	}
	vaqBuild := time.Since(start).Seconds()
	for _, r := range []int{k, 2 * k, 5 * k, 10 * k} {
		searcher := vaqIx.NewSearcher()
		rr := r
		err := emit(fmt.Sprintf("VAQ-0.1 rerank-%d", rr), vaqBuild, func(q []float32, kk int) ([]int, error) {
			res, err := searcher.Search(q, rr, core.SearchOptions{Mode: core.ModeTIEA, VisitFrac: 0.1})
			if err != nil {
				return nil, err
			}
			return rerank(ds.Base, q, eval.IDs(res), kk), nil
		})
		if err != nil {
			return err
		}
	}

	// IMI over OPQ with candidate re-ranking.
	start = time.Now()
	imiIx, err := imi.Build(ds.Train, ds.Base, imi.Config{
		CoarseBits: 6,
		OPQ:        quantizer.OPQConfig{M: 32, BitsPerSubspace: 8, Train: trainCfg(s.Seed)},
		Seed:       s.Seed,
	})
	if err != nil {
		return err
	}
	imiBuild := time.Since(start).Seconds()
	for _, cand := range []int{5 * k, 20 * k, 50 * k} {
		cc := cand
		err := emit(fmt.Sprintf("IMI+OPQ cand-%d", cc), imiBuild, func(q []float32, kk int) ([]int, error) {
			res, err := imiIx.Search(q, 10*kk, cc)
			if err != nil {
				return nil, err
			}
			return rerank(ds.Base, q, eval.IDs(res), kk), nil
		})
		if err != nil {
			return err
		}
	}

	// iSAX2+-style tree.
	start = time.Now()
	isaxIx, err := isax.Build(ds.Base, isax.Config{Segments: 16, LeafCapacity: 100})
	if err != nil {
		return err
	}
	isaxBuild := time.Since(start).Seconds()
	for _, leaves := range []int{1, 8, 64} {
		ll := leaves
		err := emit(fmt.Sprintf("iSAX2+ ng-%d", ll), isaxBuild, func(q []float32, kk int) ([]int, error) {
			res, err := isaxIx.SearchApprox(q, kk, ll)
			if err != nil {
				return nil, err
			}
			return eval.IDs(res), nil
		})
		if err != nil {
			return err
		}
	}
	for _, eps := range []float64{2, 1, 0} {
		ee := eps
		err := emit(fmt.Sprintf("iSAX2+ eps-%.1f", ee), isaxBuild, func(q []float32, kk int) ([]int, error) {
			res, err := isaxIx.SearchEpsilon(q, kk, ee)
			if err != nil {
				return nil, err
			}
			return eval.IDs(res), nil
		})
		if err != nil {
			return err
		}
	}

	// DSTree-style index.
	start = time.Now()
	dsIx, err := dstree.Build(ds.Base, dstree.Config{Segments: 16, LeafCapacity: 100})
	if err != nil {
		return err
	}
	dsBuild := time.Since(start).Seconds()
	for _, leaves := range []int{1, 8, 64} {
		ll := leaves
		err := emit(fmt.Sprintf("DSTree ng-%d", ll), dsBuild, func(q []float32, kk int) ([]int, error) {
			res, err := dsIx.SearchApprox(q, kk, ll)
			if err != nil {
				return nil, err
			}
			return eval.IDs(res), nil
		})
		if err != nil {
			return err
		}
	}
	for _, eps := range []float64{2, 1, 0} {
		ee := eps
		err := emit(fmt.Sprintf("DSTree eps-%.1f", ee), dsBuild, func(q []float32, kk int) ([]int, error) {
			res, err := dsIx.SearchEpsilon(q, kk, ee)
			if err != nil {
				return nil, err
			}
			return eval.IDs(res), nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// RunFig12 reproduces Figure 12 on the SIFT stand-in: VAQ versus HNSW
// built over PQ-encoded data (the graph indexes the PQ reconstructions),
// both at a 256-bit budget. Reported: preprocessing time, MAP@100 and
// query time, across each method's knob (visit fraction for VAQ, M and
// efSearch for HNSW). Expected shape: HNSW wins raw query latency at high
// accuracy but needs an order of magnitude more preprocessing; VAQ's MAP
// at its best settings is comparable.
func RunFig12(w io.Writer, s Scale) error {
	const k = 100
	ds, gt, err := largeDataset("SIFT", s, k)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== SIFT (n=%d, 256-bit budget, MAP@%d) ==\n", ds.Base.Rows, k)
	fmt.Fprintf(w, "%-24s %9s %9s %12s %14s\n", "method", "MAP", "recall", "query(ms)", "preprocess(s)")

	// VAQ across visit fractions.
	start := time.Now()
	vaqIx, err := core.Build(ds.Train, ds.Base, vaqConfig(256, 32, s.Seed))
	if err != nil {
		return err
	}
	vaqBuild := time.Since(start).Seconds()
	for _, frac := range []float64{0.05, 0.10, 0.25} {
		ff := frac
		searcher := vaqIx.NewSearcher()
		m := &method{
			name:         fmt.Sprintf("VAQ visit-%.2f", ff),
			buildSeconds: vaqBuild,
			search: func(q []float32, kk int) ([]int, error) {
				res, err := searcher.Search(q, kk, core.SearchOptions{Mode: core.ModeTIEA, VisitFrac: ff})
				if err != nil {
					return nil, err
				}
				return eval.IDs(res), nil
			},
		}
		row, err := evaluate(m, ds.Queries, gt, k)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-24s %9.4f %9.4f %12.4f %14.2f\n",
			row.name, row.mapScore, row.recall, row.avgQuerySec*1000, row.buildSeconds)
	}

	// HNSW over PQ-reconstructed vectors.
	start = time.Now()
	pq, err := quantizer.TrainPQ(ds.Train, ds.Base, quantizer.PQConfig{
		M: 32, BitsPerSubspace: 8, Train: trainCfg(s.Seed),
	})
	if err != nil {
		return err
	}
	recon := vec.NewMatrix(ds.Base.Rows, ds.Dim())
	for i := 0; i < ds.Base.Rows; i++ {
		pq.Codebooks().Decode(pq.Codes().Row(i), recon.Row(i))
	}
	pqSeconds := time.Since(start).Seconds()
	for _, mm := range []int{8, 16} {
		start = time.Now()
		graph, err := hnsw.Build(recon, hnsw.Config{
			M: mm, EFConstruction: 128, Seed: s.Seed, Heuristic: true,
		})
		if err != nil {
			return err
		}
		build := pqSeconds + time.Since(start).Seconds()
		for _, efs := range []int{100, 200} {
			ee := efs
			m := &method{
				name:         fmt.Sprintf("HNSW(PQ) M=%d efs=%d", mm, ee),
				buildSeconds: build,
				search: func(q []float32, kk int) ([]int, error) {
					res, err := graph.Search(q, kk, ee)
					if err != nil {
						return nil, err
					}
					return eval.IDs(res), nil
				},
			}
			row, err := evaluate(m, ds.Queries, gt, k)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-24s %9.4f %9.4f %12.4f %14.2f\n",
				row.name, row.mapScore, row.recall, row.avgQuerySec*1000, row.buildSeconds)
		}
	}
	return nil
}
