package linalg

import (
	"math"
)

// SVDResult holds a thin singular value decomposition A = U diag(S) Vᵀ with
// singular values sorted descending. For an n x m input with r =
// min(n, m): U is n x r, S has length r, V is m x r.
type SVDResult struct {
	U *Dense
	S []float64
	V *Dense
}

// SVD computes a thin singular value decomposition via the symmetric
// eigendecomposition of the smaller Gram matrix. This is accurate to about
// sqrt(machine epsilon) for the smallest singular values, which is plenty
// for the rotation updates (OPQ, ITQ) that use it: those only need the
// orthogonal factors.
func SVD(a *Dense) (*SVDResult, error) {
	n, m := a.Rows, a.Cols
	if n == 0 || m == 0 {
		return &SVDResult{U: NewDense(n, 0), S: nil, V: NewDense(m, 0)}, nil
	}
	if n >= m {
		// Eigen of AᵀA (m x m): A = U S Vᵀ with V the eigenvectors.
		at := a.T()
		ata, err := at.Mul(a)
		if err != nil {
			return nil, err
		}
		eig, err := SymEig(ata, EigAuto)
		if err != nil {
			return nil, err
		}
		r := m
		s := make([]float64, r)
		for i := 0; i < r; i++ {
			v := eig.Values[i]
			if v < 0 {
				v = 0
			}
			s[i] = math.Sqrt(v)
		}
		v := eig.Vectors
		av, err := a.Mul(v)
		if err != nil {
			return nil, err
		}
		u := NewDense(n, r)
		for j := 0; j < r; j++ {
			if s[j] > 1e-12*s[0] && s[j] > 0 {
				inv := 1 / s[j]
				for i := 0; i < n; i++ {
					u.Set(i, j, av.At(i, j)*inv)
				}
			} else {
				// Null-space direction: synthesize a unit column
				// orthogonal to the previous ones so U stays
				// orthonormal enough for rotation updates.
				fillOrthonormalColumn(u, j)
			}
		}
		return &SVDResult{U: u, S: s, V: v}, nil
	}
	// n < m: decompose the transpose and swap factors.
	res, err := SVD(a.T())
	if err != nil {
		return nil, err
	}
	return &SVDResult{U: res.V, S: res.S, V: res.U}, nil
}

// fillOrthonormalColumn writes into column j of u a unit vector orthogonal
// to columns [0, j) using Gram-Schmidt over canonical basis candidates.
func fillOrthonormalColumn(u *Dense, j int) {
	n := u.Rows
	col := make([]float64, n)
	for try := 0; try < n; try++ {
		for i := range col {
			col[i] = 0
		}
		col[try] = 1
		for prev := 0; prev < j; prev++ {
			var dot float64
			for i := 0; i < n; i++ {
				dot += col[i] * u.At(i, prev)
			}
			for i := 0; i < n; i++ {
				col[i] -= dot * u.At(i, prev)
			}
		}
		var norm float64
		for _, v := range col {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm > 1e-6 {
			for i := 0; i < n; i++ {
				u.Set(i, j, col[i]/norm)
			}
			return
		}
	}
	// Degenerate (should not happen for j < n); leave zeros.
}

// OrthoProcrustes returns the orthogonal matrix R minimizing ||A - B·R||_F
// given the cross-covariance M = BᵀA, i.e. R = U·Vᵀ... precisely: with
// SVD M = U S Vᵀ, the minimizer is R = U Vᵀ. Used by OPQ and ITQ updates.
func OrthoProcrustes(m *Dense) (*Dense, error) {
	svd, err := SVD(m)
	if err != nil {
		return nil, err
	}
	vt := svd.V.T()
	return svd.U.Mul(vt)
}
