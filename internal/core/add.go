package core

import (
	"fmt"
	"log/slog"
	"math"
	"sort"
	"time"

	"vaq/internal/vec"
)

// Add encodes new raw vectors with the already-trained model and
// dictionaries and threads them into the triangle-inequality skip
// structure, keeping each cluster's distance ordering intact. The new
// vectors receive ids Len(), Len()+1, ... in input order; the first
// assigned id is returned.
//
// Dictionaries and the PCA rotation are NOT retrained — the paper's
// encoding model is train-once — so heavy distribution drift degrades
// accuracy the same way it would for any PQ system.
func (ix *Index) Add(vectors *vec.Matrix) (firstID int, err error) {
	if vectors == nil || vectors.Rows == 0 {
		return ix.n, nil
	}
	start := time.Now()
	if vectors.Cols != ix.queryDim {
		return 0, fmt.Errorf("core: Add dimension %d, index dimension %d", vectors.Cols, ix.queryDim)
	}
	z, err := ix.model.Project(vectors)
	if err != nil {
		return 0, err
	}
	// Mutation starts here: exclude queries, Diagnose and WriteTo (they
	// hold read locks). The projection above only reads the immutable
	// model, so it stays outside the critical section.
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.retained != nil {
		// Keep the shadow-exact recall sampler's ground truth complete: the
		// retained matrix must cover every id the approximate scan can
		// return. Append reallocates, so searchers holding the old matrix
		// stay valid.
		grownZ := &vec.Matrix{Rows: ix.retained.Rows + z.Rows, Cols: ix.retained.Cols}
		grownZ.Data = make([]float32, 0, grownZ.Rows*grownZ.Cols)
		grownZ.Data = append(grownZ.Data, ix.retained.Data...)
		grownZ.Data = append(grownZ.Data, z.Data...)
		ix.retained = grownZ
	}
	firstID = ix.n
	m := ix.cb.Sub.M()
	code := make([]uint16, m)
	prefixBuf := make([]float32, ix.ti.prefixDim)
	// Per-subspace squared reconstruction error of this batch, folded
	// into the drift EWMA below (only when Build left a baseline).
	var batchSqErr []float64
	if ix.baselineMSE != nil {
		batchSqErr = make([]float64, m)
	}
	// Grow code storage.
	grown := make([]uint16, (ix.n+vectors.Rows)*m)
	copy(grown, ix.codes.Data)
	ix.codes.Data = grown
	for i := 0; i < vectors.Rows; i++ {
		id := ix.n + i
		ix.cb.EncodeVec(z.Row(i), code)
		copy(ix.codes.Data[id*m:(id+1)*m], code)
		if batchSqErr != nil {
			zi := z.Row(i)
			for s := 0; s < m; s++ {
				zs := ix.cb.Sub.Of(zi, s)
				batchSqErr[s] += float64(vec.SquaredL2(zs, ix.cb.Books[s].Row(int(code[s]))))
			}
		}
		// Assign to the nearest TI centroid in prefix space.
		decodePrefix(ix.cb, code, ix.ti.prefixSubspaces, prefixBuf)
		best, bestD := 0, vec.SquaredL2(prefixBuf, ix.ti.centroids.Row(0))
		for c := 1; c < ix.ti.centroids.Rows; c++ {
			if d := vec.SquaredL2(prefixBuf, ix.ti.centroids.Row(c)); d < bestD {
				bestD = d
				best = c
			}
		}
		entry := tiEntry{id: id, dist: float32(math.Sqrt(float64(bestD)))}
		members := ix.ti.clusters[best]
		pos := sort.Search(len(members), func(j int) bool {
			return members[j].dist >= entry.dist
		})
		members = append(members, tiEntry{})
		copy(members[pos+1:], members[pos:])
		members[pos] = entry
		ix.ti.clusters[best] = members
	}
	ix.codes.N += vectors.Rows
	ix.n += vectors.Rows
	// The blocked scan copy is derived from codes+clusters, so it must be
	// rebuilt wholesale: insertions shift every later member of a cluster,
	// which reshuffles block lanes. O(n*m) per Add call — Add is a
	// maintenance path, not a hot path, so simplicity wins over an
	// incremental rebuild.
	if ix.blocked != nil {
		ix.blocked = buildBlockedStore(ix.cb, ix.codes, ix.ti)
	}
	if ix.fast != nil {
		// The coarse scan dictionaries depend only on the (immutable)
		// codebooks and seed, so the rebuild donates them via prev and only
		// the block data is re-derived.
		ix.fast = buildFastStore(ix.cb, ix.codes, ix.ti, ix.cfg.Seed, ix.fast)
	}
	if batchSqErr != nil {
		ix.foldDriftLocked(batchSqErr, vectors.Rows)
	}
	if ix.cfg.Logger != nil {
		ix.cfg.Logger.Info("vaq.add",
			slog.Int("added", vectors.Rows),
			slog.Int("first_id", firstID),
			slog.Int("n", ix.n),
			slog.Duration("total", time.Since(start)))
	}
	return firstID, nil
}
