package vaq_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"vaq"
)

// TestFullLifecycle drives the public API end to end: build from a
// training sample, persist, reload, insert online, and answer a batch
// workload — asserting recall against an exact scan at each stage.
func TestFullLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n, d := 3000, 32
	data := make([][]float32, n)
	for i := range data {
		row := make([]float32, d)
		for j := range row {
			scale := 1 / math.Sqrt(float64(j+1))
			row[j] = float32((float64(rng.Intn(3)-1)*2 + rng.NormFloat64()*0.3) * scale)
		}
		data[i] = row
	}
	initial, extra := data[:2500], data[2500:]

	ix, err := vaq.Build(initial, vaq.Config{
		NumSubspaces: 8,
		Budget:       64,
		Seed:         99,
		TIClusters:   40,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Persist and reload.
	path := t.TempDir() + "/lifecycle.vaqi"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	ix, err = vaq.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	// Online insertion after reload.
	firstID, err := ix.Add(extra)
	if err != nil {
		t.Fatal(err)
	}
	if firstID != 2500 || ix.Len() != n {
		t.Fatalf("add after load: firstID=%d len=%d", firstID, ix.Len())
	}

	// Batch workload vs exact ground truth.
	const k, nq = 10, 20
	queries := make([][]float32, nq)
	for qi := range queries {
		q := append([]float32(nil), data[rng.Intn(n)]...)
		for j := range q {
			q[j] += float32(rng.NormFloat64() * 0.03)
		}
		queries[qi] = q
	}
	results, err := ix.SearchBatch(queries, k, vaq.SearchOptions{VisitFrac: 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	hits, total := 0, 0
	for qi, q := range queries {
		truth := exactTop(data, q, k)
		for _, r := range results[qi] {
			total++
			if truth[r.ID] {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(total)
	if recall < 0.55 {
		t.Fatalf("lifecycle recall@%d = %.3f too low", k, recall)
	}
}

func exactTop(data [][]float32, q []float32, k int) map[int]bool {
	type scored struct {
		id int
		d  float64
	}
	list := make([]scored, len(data))
	for i, row := range data {
		var s float64
		for j := range row {
			t := float64(q[j] - row[j])
			s += t * t
		}
		list[i] = scored{i, s}
	}
	sort.Slice(list, func(a, b int) bool { return list[a].d < list[b].d })
	out := make(map[int]bool, k)
	for i := 0; i < k; i++ {
		out[list[i].id] = true
	}
	return out
}
