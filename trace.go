package vaq

import (
	"vaq/internal/trace"
)

// TraceConfig tunes per-query tracing (ring size, slow-query threshold,
// exemplar reservoir size; see the field docs in internal/trace.Config).
// The zero value is usable.
type TraceConfig = trace.Config

// Tracer collects completed QueryTraces: a lock-free ring of the most
// recent queries plus a reservoir of slow-query exemplars. Obtain one with
// Index.EnableTracing; read it with Recent, Slowest and Count.
type Tracer = trace.Tracer

// QueryTrace is one traced query: its timed spans, total wall time, and
// the pruning stats the metrics registry aggregates index-wide.
type QueryTrace = trace.QueryTrace

// TraceSpan is one timed phase of a traced query (projection, LUT fill,
// cluster ranking, per-cluster scan, EA resume).
type TraceSpan = trace.Span

// Names of the spans the query kernels record.
const (
	SpanProject     = trace.SpanProject
	SpanLUTFill     = trace.SpanLUTFill
	SpanClusterRank = trace.SpanClusterRank
	SpanClusterScan = trace.SpanClusterScan
	SpanEAResume    = trace.SpanEAResume
	SpanScan        = trace.SpanScan
)

// Names of the spans a sharded scatter-gather query records
// (ShardedIndex.EnableTracing): per shard a wait and a scan span, one
// bound-feedback event per cross-shard bound tightening, and a trailing
// merge span. Their TraceSpan.Shard field identifies the shard.
const (
	SpanShardWait     = trace.SpanShardWait
	SpanShardScan     = trace.SpanShardScan
	SpanShardMerge    = trace.SpanShardMerge
	SpanBoundFeedback = trace.SpanBoundFeedback
)

// EnableTracing installs a fresh per-query tracer on the index and returns
// it. Searchers created afterwards — including the throwaway ones behind
// Search/SearchWith and SearchBatch workers — record one QueryTrace per
// query; Searchers created earlier keep running untraced (re-point them
// with Searcher.AttachTracer). Tracing costs a few clock reads and one
// allocation per query; disabled, it costs one nil pointer check.
func (ix *Index) EnableTracing(cfg TraceConfig) *Tracer {
	return ix.inner.EnableTracing(cfg)
}

// DisableTracing detaches the index tracer. Existing Searchers keep their
// recorders until recreated or re-pointed.
func (ix *Index) DisableTracing() { ix.inner.DisableTracing() }

// Tracer returns the active tracer, or nil when tracing is disabled.
func (ix *Index) Tracer() *Tracer { return ix.inner.Tracer() }

// AttachTracer re-points this Searcher at t (nil detaches). Searchers pick
// up the index tracer at creation; long-lived ones built before
// EnableTracing use this to opt in without being recreated.
func (s *Searcher) AttachTracer(t *Tracer) { s.inner.AttachTracer(t) }

// PublishTrace registers t under name for the /debug/vaq/traces HTTP
// handler (served by ServeDebug alongside /debug/vars and /debug/pprof/):
// plain text by default, ?format=chrome for Chrome trace-event JSON
// (load in chrome://tracing or Perfetto), ?slow=1 for the slow-query
// exemplars only. Publishing nil removes the name.
func PublishTrace(name string, t *Tracer) { trace.Publish(name, t) }
