package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"vaq/internal/core"
	"vaq/internal/dataset"
	"vaq/internal/diag"
	"vaq/internal/metrics"
)

// benchParams configures the machine-readable search benchmark
// (vaqbench -json).
type benchParams struct {
	Dataset   string  `json:"dataset"`
	N         int     `json:"n"`
	NQ        int     `json:"nq"`
	Seed      int64   `json:"seed"`
	Subspaces int     `json:"subspaces"`
	Budget    int     `json:"budget"`
	MaxBits   int     `json:"max_bits,omitempty"`
	K         int     `json:"k"`
	VisitFrac float64 `json:"visit_frac"`
	Workers   int     `json:"workers"`
	Passes    int     `json:"passes"`
	Layout    string  `json:"layout"` // "blocked", "rowmajor", "both", "int", or "all"
	// Accuracy is the scan arithmetic: "" or "exact" for the float kernels,
	// "fast" for the integer fast-scan kernel. omitempty keeps every
	// exact-mode fingerprint identical to pre-int-kernel summaries.
	Accuracy string `json:"accuracy,omitempty"`
	// RecallRate enables the online recall estimator during the timed
	// passes, so the summary's ObservedRecall is populated and -compare can
	// diff answer quality. omitempty keeps the config fingerprint of
	// recall-free runs identical to older summaries.
	RecallRate float64 `json:"recall_sample,omitempty"`
}

// parseLayout maps the -layout flag value to a core.ScanLayout.
func parseLayout(name string) (core.ScanLayout, error) {
	switch name {
	case "", "blocked":
		return core.LayoutBlocked, nil
	case "rowmajor":
		return core.LayoutRowMajor, nil
	}
	return 0, fmt.Errorf("unknown layout %q (blocked, rowmajor, both, int or all)", name)
}

// parseAccuracy maps the accuracy param to a core.AccuracyMode.
func parseAccuracy(name string) (core.AccuracyMode, error) {
	switch name {
	case "", "exact":
		return core.AccuracyExact, nil
	case "fast":
		return core.AccuracyFast, nil
	}
	return 0, fmt.Errorf("unknown accuracy %q (exact or fast)", name)
}

// accuracyName normalizes a params accuracy string for comparison ("" and
// "exact" are the same mode).
func accuracyName(a string) string {
	if a == "" {
		return "exact"
	}
	return a
}

// benchProvenance records where a summary came from, so numbers from
// different machines, toolchains or configs are never compared as equals
// (the schema is documented in DESIGN.md §7).
type benchProvenance struct {
	// SchemaVersion is bumped whenever the summary document's shape
	// changes incompatibly.
	SchemaVersion int `json:"schema_version"`
	// GoVersion/GOOS/GOARCH identify the toolchain and platform.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GOMAXPROCS and NumCPU pin the parallelism the run had available.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// ConfigFingerprint is a short sha256 of the canonical params JSON:
	// two summaries are comparable iff their fingerprints match.
	ConfigFingerprint string `json:"config_fingerprint"`
	// Layout is the scan layout this run measured.
	Layout string `json:"layout"`
	// Accuracy is the scan arithmetic this run measured ("" = exact).
	Accuracy string `json:"accuracy,omitempty"`
}

// benchSchemaVersion tracks the benchSummary document shape.
const benchSchemaVersion = 2

// provenanceFor stamps the environment and the params fingerprint.
func provenanceFor(p benchParams) benchProvenance {
	canonical, _ := json.Marshal(p) // struct marshal: cannot fail
	sum := sha256.Sum256(canonical)
	return benchProvenance{
		SchemaVersion:     benchSchemaVersion,
		GoVersion:         runtime.Version(),
		GOOS:              runtime.GOOS,
		GOARCH:            runtime.GOARCH,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		NumCPU:            runtime.NumCPU(),
		ConfigFingerprint: hex.EncodeToString(sum[:8]),
		Layout:            p.Layout,
		Accuracy:          p.Accuracy,
	}
}

// benchSummary is the JSON document vaqbench -json emits: everything a
// cross-PR perf tracker needs to plot build cost, throughput, tail
// latency and prune effectiveness over time, plus the provenance needed
// to know which runs are comparable.
type benchSummary struct {
	Params     benchParams         `json:"params"`
	Provenance benchProvenance     `json:"provenance"`
	Build      metrics.BuildReport `json:"build"`
	Search     struct {
		Queries       uint64  `json:"queries"`
		WallSeconds   float64 `json:"wall_seconds"`
		QPS           float64 `json:"qps"`
		LatencyP50Ns  int64   `json:"latency_p50_ns"`
		LatencyP95Ns  int64   `json:"latency_p95_ns"`
		LatencyP99Ns  int64   `json:"latency_p99_ns"`
		LatencyMeanNs int64   `json:"latency_mean_ns"`
		TIPruneRate   float64 `json:"ti_prune_rate"`
		EAAbandonRate float64 `json:"ea_abandon_rate"`
	} `json:"search"`
	Metrics metrics.Snapshot `json:"metrics"`
	// Report is the index-quality IndexReport (-report flag): quantization
	// distortion, codeword utilization and TI balance alongside the perf
	// numbers, so a perf tracker can correlate throughput with quality.
	Report *diag.Report `json:"report,omitempty"`
}

// layoutComparison is the JSON document emitted by -layout both / all: the
// same workload measured once per arm, plus the headline ratios the perf
// tracker watches (blocked TIEA throughput over row-major, and — with the
// -layout all third arm — the integer kernel's throughput over blocked
// exact).
type layoutComparison struct {
	Blocked        *benchSummary `json:"blocked"`
	RowMajor       *benchSummary `json:"rowmajor"`
	TIEAQPSSpeedup float64       `json:"tiea_qps_speedup"`
	// BlockedInt is the -layout all third arm: the blocked layout scanned
	// by the integer fast kernel (accuracy "fast").
	BlockedInt        *benchSummary `json:"blocked_int,omitempty"`
	IntTIEAQPSSpeedup float64       `json:"int_tiea_qps_speedup,omitempty"`
}

// runJSONBench builds an index (or, with -layout both, one per scan
// layout) over a synthetic dataset, drives the query workload through a
// worker pool of reusable Searchers, and writes the summary to path
// ("-" for stdout).
func runJSONBench(path string, p benchParams, withReport bool) error {
	ds, err := dataset.Large(p.Dataset, p.N, p.NQ, p.Seed)
	if err != nil {
		return err
	}
	if p.Layout == "both" || p.Layout == "all" {
		if accuracyName(p.Accuracy) != "exact" {
			return fmt.Errorf("-layout %s runs its own accuracy arms; drop -accuracy", p.Layout)
		}
		pb, pr := p, p
		pb.Layout, pr.Layout = "blocked", "rowmajor"
		blocked, err := runBenchOnce(ds, pb, withReport)
		if err != nil {
			return err
		}
		rowmajor, err := runBenchOnce(ds, pr, withReport)
		if err != nil {
			return err
		}
		cmp := layoutComparison{
			Blocked:        blocked,
			RowMajor:       rowmajor,
			TIEAQPSSpeedup: blocked.Search.QPS / rowmajor.Search.QPS,
		}
		line := fmt.Sprintf("layouts: blocked %.0f qps, rowmajor %.0f qps, speedup %.2fx",
			cmp.Blocked.Search.QPS, cmp.RowMajor.Search.QPS, cmp.TIEAQPSSpeedup)
		if p.Layout == "all" {
			pi := p
			pi.Layout, pi.Accuracy = "blocked", "fast"
			blockedInt, err := runBenchOnce(ds, pi, withReport)
			if err != nil {
				return err
			}
			cmp.BlockedInt = blockedInt
			cmp.IntTIEAQPSSpeedup = blockedInt.Search.QPS / blocked.Search.QPS
			line += fmt.Sprintf(", int %.0f qps (%.2fx over blocked)",
				blockedInt.Search.QPS, cmp.IntTIEAQPSSpeedup)
			if r := blockedInt.Metrics.ObservedRecall(); blockedInt.Metrics.RecallSamples > 0 {
				line += fmt.Sprintf(", int recall %.3f", r)
			}
		}
		return writeJSONDoc(path, cmp, line)
	}
	if p.Layout == "int" {
		// Shorthand for the integer arm alone: blocked layout, fast kernel.
		p.Layout, p.Accuracy = "blocked", "fast"
	}
	sum, err := runBenchOnce(ds, p, withReport)
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%.0f qps, p50 %s, p95 %s, p99 %s, TI prune %.1f%%, EA abandon %.1f%%",
		sum.Search.QPS,
		time.Duration(sum.Search.LatencyP50Ns),
		time.Duration(sum.Search.LatencyP95Ns),
		time.Duration(sum.Search.LatencyP99Ns),
		100*sum.Search.TIPruneRate, 100*sum.Search.EAAbandonRate)
	return writeJSONDoc(path, sum, line)
}

// runBenchOnce builds one index at p's layout and measures the query
// workload against it.
func runBenchOnce(ds *dataset.Dataset, p benchParams, withReport bool) (*benchSummary, error) {
	layout, err := parseLayout(p.Layout)
	if err != nil {
		return nil, err
	}
	accuracy, err := parseAccuracy(p.Accuracy)
	if err != nil {
		return nil, err
	}
	ix, err := core.Build(ds.Train, ds.Base, core.Config{
		NumSubspaces:     p.Subspaces,
		Budget:           p.Budget,
		MaxBits:          p.MaxBits,
		Seed:             p.Seed,
		ScanLayout:       layout,
		AccuracyMode:     accuracy,
		RecallSampleRate: p.RecallRate,
	})
	if err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	metrics.Publish("vaqbench_index", ix.Metrics())

	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	if p.Passes < 1 {
		p.Passes = 1
	}
	opt := core.SearchOptions{Mode: core.ModeTIEA, VisitFrac: p.VisitFrac}
	nq := ds.Queries.Rows
	qz, err := projectQueries(ix, ds)
	if err != nil {
		return nil, err
	}

	// Warmup pass (dictionary LUT allocation, page faults), then reset so
	// the summary reflects steady state only.
	runPool(ix, qz, p.K, opt, p.Workers)
	ix.Metrics().Reset()

	start := time.Now()
	for pass := 0; pass < p.Passes; pass++ {
		runPool(ix, qz, p.K, opt, p.Workers)
	}
	wall := time.Since(start)

	sum := &benchSummary{}
	sum.Params = p
	sum.Provenance = provenanceFor(p)
	sum.Build = ix.BuildReport()
	sum.Metrics = ix.Metrics().Snapshot()
	sum.Search.Queries = sum.Metrics.Queries
	sum.Search.WallSeconds = wall.Seconds()
	sum.Search.QPS = float64(p.Passes*nq) / wall.Seconds()
	sum.Search.LatencyP50Ns = int64(sum.Metrics.Latency.Quantile(0.50))
	sum.Search.LatencyP95Ns = int64(sum.Metrics.Latency.Quantile(0.95))
	sum.Search.LatencyP99Ns = int64(sum.Metrics.Latency.Quantile(0.99))
	sum.Search.LatencyMeanNs = int64(sum.Metrics.Latency.Mean())
	sum.Search.TIPruneRate = sum.Metrics.TIPruneRate()
	sum.Search.EAAbandonRate = sum.Metrics.EAAbandonRate()
	if withReport {
		sum.Report = ix.Diagnose()
	}
	return sum, nil
}

// writeJSONDoc marshals doc to path ("-" for stdout) and prints the
// one-line human summary when writing to a file.
func writeJSONDoc(path string, doc any, line string) error {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s\n", path, line)
	return nil
}

// projectQueries rotates the whole query set into the index's PCA space
// once, so the timed passes measure the index scan path — the thing the
// summary's latency percentiles already cover (RecordSearch starts after
// projection) and the thing -layout both compares.
func projectQueries(ix *core.Index, ds *dataset.Dataset) ([][]float32, error) {
	qz := make([][]float32, ds.Queries.Rows)
	for qi := range qz {
		z, err := ix.ProjectQuery(ds.Queries.Row(qi))
		if err != nil {
			return nil, fmt.Errorf("project query %d: %w", qi, err)
		}
		qz[qi] = z
	}
	return qz, nil
}

// runPool runs every projected query once across workers reusable
// Searchers.
func runPool(ix *core.Index, qz [][]float32, k int, opt core.SearchOptions, workers int) {
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := ix.NewSearcher()
			for qi := range next {
				if _, err := s.SearchProjected(qz[qi], k, opt); err != nil {
					fmt.Fprintf(os.Stderr, "vaqbench: query %d: %v\n", qi, err)
				}
			}
		}()
	}
	for qi := range qz {
		next <- qi
	}
	close(next)
	wg.Wait()
}
