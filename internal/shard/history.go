package shard

import (
	"errors"
	"fmt"
	"log/slog"

	"vaq/internal/history"
	"vaq/internal/metrics"
)

// EnableHistory arms the metrics history collector on the sharded index:
// one background goroutine sampling the merged registry under name and
// every per-shard registry under name/shard-i, so trends (QPS, skew,
// per-shard prune rates) are queryable per target through the shared
// /debug/vaq/history endpoint. Because sampling snapshots the merged
// registry on cadence, the windowed skew-ratio and load-imbalance gauges
// refresh without an external Prometheus scraper.
//
// Burn-rate rules (cfg.Burn, unless cfg.DisableBurn) arm only on the
// merged registry — it is the one carrying the SLO, where latency means
// end-to-end scatter-gather latency. While armed, the instantaneous
// vaq.slo.* edge is delegated to the vaq.burn.* multi-window evaluation.
//
// Errors under DisableMetrics or when a collector is already armed.
func (x *Index) EnableHistory(name string, cfg history.Config) (*history.Collector, error) {
	if x.reg == nil {
		return nil, errors.New("vaq: history collector requires metrics (Options.DisableMetrics is set)")
	}
	if x.hist.Load() != nil {
		return nil, errors.New("vaq: history collector already armed")
	}
	if cfg.OnBurn == nil {
		cfg.OnBurn = x.burnEvent
	}
	c := history.New(name, cfg)
	c.Watch(name, x.reg)
	for i, st := range x.states {
		if m := st.ix.Metrics(); m != nil {
			c.Watch(fmt.Sprintf("%s/shard-%d", name, i), m)
		}
	}
	if !x.hist.CompareAndSwap(nil, c) {
		c.Close()
		return nil, errors.New("vaq: history collector already armed")
	}
	return c, nil
}

// DisableHistory stops the collector after a final sweep and hands SLO
// alerting back to the instantaneous exhaustion edge. No-op when none is
// armed.
func (x *Index) DisableHistory() {
	if c := x.hist.Swap(nil); c != nil {
		c.Close()
	}
}

// History returns the armed collector, or nil.
func (x *Index) History() *history.Collector { return x.hist.Load() }

// burnEvent is the default history.Config.OnBurn for sharded indexes: one
// vaq.burn slog event per burn-rule breach edge, on the collector
// goroutine.
func (x *Index) burnEvent(target string, st metrics.BurnRuleStatus) {
	if x.logger == nil {
		return
	}
	x.logger.Warn("vaq.burn",
		slog.String("target", target),
		slog.String("objective", st.Objective),
		slog.String("rule", st.Rule),
		slog.Float64("burn", st.Burn),
		slog.Float64("short_burn", st.ShortBurn),
		slog.Float64("threshold", st.Threshold),
		slog.String("window", st.Window.String()),
		slog.String("confirm", st.Confirm.String()))
}
