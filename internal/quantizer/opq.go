package quantizer

import (
	"fmt"
	"math"
	"sort"

	"vaq/internal/linalg"
	"vaq/internal/pca"
	"vaq/internal/vec"
)

// OPQ is Optimized Product Quantization (Ge et al.; paper §II-C): it learns
// an orthogonal transform of the data that balances the informativeness of
// the subspaces, then applies plain PQ in the rotated space.
//
// This implementation provides the parametric solution (PCA + eigenvalue
// allocation, the variant the OPQ paper recommends for Gaussian-like data
// and the one whose permutation VAQ §III-C contrasts with) and an optional
// non-parametric refinement loop that alternates codebook training with an
// orthogonal Procrustes update of the rotation.
type OPQ struct {
	pcaModel *pca.Model
	rotation *linalg.Dense // extra non-parametric rotation (may be nil)
	cb       *Codebooks
	codes    *Codes
	n        int
	qbuf     []float32
}

// OPQConfig configures TrainOPQ.
type OPQConfig struct {
	M               int
	BitsPerSubspace int
	// NonParametricIters runs that many rotation-refinement sweeps after
	// the parametric initialization (0 = parametric only).
	NonParametricIters int
	Train              TrainConfig
}

// EigenvalueAllocation returns a permutation of the d PCA dimensions into m
// buckets of equal size that balances the PRODUCT of eigenvalues per bucket
// (the OPQ paper's criterion: minimize the maximum log-product gap).
// Dimensions are considered in descending eigenvalue order and each is
// assigned greedily to the non-full bucket with the smallest current
// log-product. The returned slice perm has the property that new dimension
// j is old dimension perm[j], with buckets laid out contiguously.
func EigenvalueAllocation(eigenvalues []float64, m int) ([]int, error) {
	d := len(eigenvalues)
	if m < 1 || d < m {
		return nil, fmt.Errorf("quantizer: cannot allocate %d dims into %d buckets", d, m)
	}
	// Bucket capacities mirror UniformSubspaces: base d/m, with the first
	// d%m buckets holding one extra dimension.
	type bucket struct {
		logProd float64
		cap     int
		dims    []int
	}
	buckets := make([]bucket, m)
	base, rem := d/m, d%m
	for b := range buckets {
		buckets[b].cap = base
		if b < rem {
			buckets[b].cap++
		}
	}
	// Eigenvalues are expected sorted descending already (pca.Fit output);
	// be safe and sort indices.
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return eigenvalues[idx[a]] > eigenvalues[idx[b]] })
	for _, dim := range idx {
		best := -1
		for b := range buckets {
			if len(buckets[b].dims) >= buckets[b].cap {
				continue
			}
			if best == -1 || buckets[b].logProd < buckets[best].logProd {
				best = b
			}
		}
		ev := eigenvalues[dim]
		if ev < 1e-12 {
			ev = 1e-12 // avoid -Inf products for null directions
		}
		buckets[best].logProd += math.Log(ev)
		buckets[best].dims = append(buckets[best].dims, dim)
	}
	perm := make([]int, 0, d)
	for b := range buckets {
		perm = append(perm, buckets[b].dims...)
	}
	return perm, nil
}

// TrainOPQ fits the rotation on train and encodes data.
func TrainOPQ(train, data *vec.Matrix, cfg OPQConfig) (*OPQ, error) {
	if train.Cols != data.Cols {
		return nil, fmt.Errorf("quantizer: train dim %d != data dim %d", train.Cols, data.Cols)
	}
	model, err := pca.Fit(train, pca.Options{})
	if err != nil {
		return nil, err
	}
	perm, err := EigenvalueAllocation(model.Eigenvalues, cfg.M)
	if err != nil {
		return nil, err
	}
	if err := model.PermuteComponents(perm); err != nil {
		return nil, err
	}
	trainRot, err := model.Project(train)
	if err != nil {
		return nil, err
	}
	sub, err := UniformSubspaces(train.Cols, cfg.M)
	if err != nil {
		return nil, err
	}
	bits := make([]int, cfg.M)
	for i := range bits {
		bits[i] = cfg.BitsPerSubspace
	}
	cb, err := TrainCodebooks(trainRot, sub, bits, cfg.Train)
	if err != nil {
		return nil, err
	}
	var extraRot *linalg.Dense
	if cfg.NonParametricIters > 0 {
		extraRot, cb, err = refineRotation(trainRot, sub, bits, cfg)
		if err != nil {
			return nil, err
		}
	}
	o := &OPQ{pcaModel: model, rotation: extraRot, cb: cb, n: data.Rows,
		qbuf: make([]float32, train.Cols)}
	dataRot, err := o.transform(data)
	if err != nil {
		return nil, err
	}
	codes, err := cb.Encode(dataRot, true)
	if err != nil {
		return nil, err
	}
	o.codes = codes
	return o, nil
}

// refineRotation runs the non-parametric OPQ loop on already-PCA-rotated
// training data: encode, reconstruct, solve the orthogonal Procrustes
// problem R = argmin ||X R - X̂||, apply, retrain.
func refineRotation(trainRot *vec.Matrix, sub Subspaces, bits []int, cfg OPQConfig) (*linalg.Dense, *Codebooks, error) {
	d := trainRot.Cols
	r := linalg.Identity(d)
	current := trainRot.Clone()
	var cb *Codebooks
	var err error
	for iter := 0; iter < cfg.NonParametricIters; iter++ {
		tcfg := cfg.Train
		tcfg.Seed = cfg.Train.Seed + int64(iter+1)
		cb, err = TrainCodebooks(current, sub, bits, tcfg)
		if err != nil {
			return nil, nil, err
		}
		codes, err := cb.Encode(current, true)
		if err != nil {
			return nil, nil, err
		}
		// Reconstruct X̂ and solve Procrustes over M = Xᵀ X̂ (X is the
		// PCA-rotated input, so the learned R composes with PCA).
		xt := linalg.FromFloat32(trainRot).T()
		xhat := linalg.NewDense(trainRot.Rows, d)
		buf := make([]float32, d)
		for i := 0; i < trainRot.Rows; i++ {
			cb.Decode(codes.Row(i), buf)
			row := xhat.Row(i)
			for j, v := range buf {
				row[j] = float64(v)
			}
		}
		m, err := xt.Mul(xhat)
		if err != nil {
			return nil, nil, err
		}
		r, err = linalg.OrthoProcrustes(m)
		if err != nil {
			return nil, nil, err
		}
		// Re-rotate the training data: current = trainRot * R.
		rf := r.ToFloat32()
		for i := 0; i < trainRot.Rows; i++ {
			src := trainRot.Row(i)
			dst := current.Row(i)
			for j := 0; j < d; j++ {
				var s float32
				for k := 0; k < d; k++ {
					s += src[k] * rf.At(k, j)
				}
				dst[j] = s
			}
		}
	}
	// Train final codebooks on the final rotation.
	cb, err = TrainCodebooks(current, sub, bits, cfg.Train)
	if err != nil {
		return nil, nil, err
	}
	return r, cb, nil
}

// transform applies PCA (+ optional refinement rotation) to a matrix.
func (o *OPQ) transform(x *vec.Matrix) (*vec.Matrix, error) {
	z, err := o.pcaModel.Project(x)
	if err != nil {
		return nil, err
	}
	if o.rotation == nil {
		return z, nil
	}
	d := z.Cols
	rf := o.rotation.ToFloat32()
	out := vec.NewMatrix(z.Rows, d)
	for i := 0; i < z.Rows; i++ {
		src := z.Row(i)
		dst := out.Row(i)
		for j := 0; j < d; j++ {
			var s float32
			for k := 0; k < d; k++ {
				s += src[k] * rf.At(k, j)
			}
			dst[j] = s
		}
	}
	return out, nil
}

// TransformQuery rotates a query into the OPQ space.
func (o *OPQ) TransformQuery(q []float32) ([]float32, error) {
	m := &vec.Matrix{Rows: 1, Cols: len(q), Data: q}
	out, err := o.transform(m)
	if err != nil {
		return nil, err
	}
	return out.Row(0), nil
}

// Codebooks exposes the trained dictionaries.
func (o *OPQ) Codebooks() *Codebooks { return o.cb }

// Codes exposes the encoded dataset.
func (o *OPQ) Codes() *Codes { return o.codes }

// Len reports the number of encoded vectors.
func (o *OPQ) Len() int { return o.n }

// Search returns the approximate k nearest neighbors of q.
func (o *OPQ) Search(q []float32, k int) ([]vec.Neighbor, error) {
	if len(q) != o.cb.Sub.Dim() {
		return nil, fmt.Errorf("quantizer: query dim %d, index dim %d", len(q), o.cb.Sub.Dim())
	}
	qr, err := o.TransformQuery(q)
	if err != nil {
		return nil, err
	}
	lut := o.cb.BuildLUT(qr)
	return ScanADC(o.codes, lut, k), nil
}
