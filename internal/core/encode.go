package core

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"vaq/internal/quantizer"
	"vaq/internal/vec"
)

// tiEntry is one encoded vector inside a triangle-inequality cluster:
// its dataset id and its (plain, not squared) distance to the cluster
// centroid in the prefix space.
type tiEntry struct {
	id   int
	dist float32
}

// tiIndex is the data-skipping structure of §III-D/§III-E: encoded vectors
// are partitioned around randomly sampled code vectors ("TI clusters"),
// each member caches its distance to its centroid, and members are kept
// sorted by that distance so a scan can stop early once the triangle bound
// exceeds the best-so-far distance for all remaining members.
type tiIndex struct {
	// prefixSubspaces is how many leading subspaces the centroids span
	// (TIClusterNumSubs in Algorithm 3).
	prefixSubspaces int
	// prefixDim is the dimensionality those subspaces cover.
	prefixDim int
	// centroids is clusterCount x prefixDim.
	centroids *vec.Matrix
	// clusters[c] lists members sorted ascending by distance to centroid.
	clusters [][]tiEntry
}

// buildTIIndex constructs the structure: sample clusterCount codes, decode
// their prefix as centroids, assign every encoded vector to the nearest
// centroid and sort each cluster by the cached distance (Algorithm 3 lines
// 24-48, plus the sorting the text describes).
func buildTIIndex(cb *quantizer.Codebooks, codes *quantizer.Codes, clusterCount, prefixSubspaces int, rng *rand.Rand) *tiIndex {
	n := codes.N
	if clusterCount > n {
		clusterCount = n
	}
	if clusterCount < 1 {
		clusterCount = 1
	}
	m := cb.Sub.M()
	if prefixSubspaces < 1 || prefixSubspaces > m {
		prefixSubspaces = m
	}
	prefixDim := 0
	for s := 0; s < prefixSubspaces; s++ {
		prefixDim += cb.Sub.Lengths[s]
	}
	ti := &tiIndex{
		prefixSubspaces: prefixSubspaces,
		prefixDim:       prefixDim,
		centroids:       vec.NewMatrix(clusterCount, prefixDim),
		clusters:        make([][]tiEntry, clusterCount),
	}
	// Sample distinct codes as centroids (with replacement fallback for
	// tiny datasets, as in Algorithm 3 line 26).
	perm := rng.Perm(n)
	for c := 0; c < clusterCount; c++ {
		code := codes.Row(perm[c])
		decodePrefix(cb, code, prefixSubspaces, ti.centroids.Row(c))
	}
	// Reconstruct every code's prefix once, then assign in parallel.
	assign := make([]int, n)
	dists := make([]float32, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			buf := make([]float32, prefixDim)
			for i := lo; i < hi; i++ {
				decodePrefix(cb, codes.Row(i), prefixSubspaces, buf)
				best, bestD := 0, vec.SquaredL2(buf, ti.centroids.Row(0))
				for c := 1; c < clusterCount; c++ {
					d := vec.SquaredL2(buf, ti.centroids.Row(c))
					if d < bestD {
						bestD = d
						best = c
					}
				}
				assign[i] = best
				dists[i] = float32(math.Sqrt(float64(bestD)))
			}
		}(lo, hi)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		c := assign[i]
		ti.clusters[c] = append(ti.clusters[c], tiEntry{id: i, dist: dists[i]})
	}
	for c := range ti.clusters {
		members := ti.clusters[c]
		sort.Slice(members, func(a, b int) bool {
			if members[a].dist != members[b].dist {
				return members[a].dist < members[b].dist
			}
			return members[a].id < members[b].id
		})
	}
	return ti
}

// decodePrefix reconstructs the first prefixSubspaces subspaces of a code
// into out (length = prefix dimensionality).
func decodePrefix(cb *quantizer.Codebooks, code []uint16, prefixSubspaces int, out []float32) {
	off := 0
	for s := 0; s < prefixSubspaces; s++ {
		l := cb.Sub.Lengths[s]
		copy(out[off:off+l], cb.Books[s].Row(int(code[s])))
		off += l
	}
}

// queryClusterDistancesSq returns the SQUARED distances between the
// projected query's prefix and every TI centroid (Algorithm 4 lines
// 14-17). Squared distances rank clusters identically to plain ones, so
// the per-query root is deferred to the visited clusters only (the
// triangle bound is the sole consumer of plain distances).
func (ti *tiIndex) queryClusterDistancesSq(q []float32, out []float32) []float32 {
	if cap(out) < ti.centroids.Rows {
		out = make([]float32, ti.centroids.Rows)
	}
	out = out[:ti.centroids.Rows]
	prefix := q[:ti.prefixDim]
	for c := 0; c < ti.centroids.Rows; c++ {
		out[c] = vec.SquaredL2(prefix, ti.centroids.Row(c))
	}
	return out
}
