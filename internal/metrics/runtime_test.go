package metrics

import (
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// TestWriteRuntimeMetrics checks the sampler emits every family with a
// parseable, sane value: goroutines at least 1 (we are running on one),
// heap bytes positive, GC counters non-negative.
func TestWriteRuntimeMetrics(t *testing.T) {
	runtime.GC() // make sure at least one cycle and pause exist
	var b strings.Builder
	if err := WriteRuntimeMetrics(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, fam := range []string{
		"vaq_runtime_heap_bytes",
		"vaq_runtime_goroutines",
		"vaq_runtime_gc_cycles_total",
		"vaq_runtime_gc_pause_seconds_total",
	} {
		re := regexp.MustCompile(`(?m)^` + fam + ` ([0-9.e+-]+)$`)
		match := re.FindStringSubmatch(body)
		if match == nil {
			t.Errorf("missing family %s in:\n%s", fam, body)
			continue
		}
		v, err := strconv.ParseFloat(match[1], 64)
		if err != nil {
			t.Errorf("%s value %q: %v", fam, match[1], err)
			continue
		}
		if v < 0 {
			t.Errorf("%s = %g, want >= 0", fam, v)
		}
		if fam == "vaq_runtime_goroutines" && v < 1 {
			t.Errorf("goroutines = %g, want >= 1", v)
		}
		if fam == "vaq_runtime_heap_bytes" && v <= 0 {
			t.Errorf("heap bytes = %g, want > 0", v)
		}
	}
	if !strings.Contains(body, "vaq_runtime_gc_pause_seconds_total_events") {
		t.Errorf("missing pause event count in:\n%s", body)
	}
}

// TestDriftGaugeRoundTrip pins the gauge setters through Snapshot and
// Reset, including nil-safety and shape clamping.
func TestDriftGaugeRoundTrip(t *testing.T) {
	m := NewSized(3, 2)
	m.SetSubspaceMSE([]float64{1.5, 2.5, 99}) // third entry beyond shape: ignored
	m.SetDrift(1.25, true)
	m.SetDeadCodewords(7)
	s := m.Snapshot()
	if len(s.SubspaceMSE) != 2 || s.SubspaceMSE[0] != 1.5 || s.SubspaceMSE[1] != 2.5 {
		t.Errorf("SubspaceMSE = %v", s.SubspaceMSE)
	}
	if s.DriftRatio != 1.25 || !s.DriftAlert || s.DeadCodewords != 7 {
		t.Errorf("drift gauges: ratio=%v alert=%v dead=%d", s.DriftRatio, s.DriftAlert, s.DeadCodewords)
	}
	m.SetDrift(0.5, false)
	if s := m.Snapshot(); s.DriftRatio != 0.5 || s.DriftAlert {
		t.Errorf("gauge overwrite failed: %+v", s)
	}
	m.Reset()
	s = m.Snapshot()
	if s.SubspaceMSE[0] != 0 || s.DriftRatio != 0 || s.DriftAlert || s.DeadCodewords != 0 {
		t.Errorf("Reset left drift gauges: %+v", s)
	}

	var nilM *IndexMetrics
	nilM.SetSubspaceMSE([]float64{1}) // must not panic
	nilM.SetDrift(1, true)
	nilM.SetDeadCodewords(1)
	unshaped := New()
	unshaped.SetSubspaceMSE([]float64{1}) // ignored beyond (empty) shape
	if s := unshaped.Snapshot(); len(s.SubspaceMSE) != 0 {
		t.Errorf("unshaped registry grew gauges: %+v", s)
	}
}
