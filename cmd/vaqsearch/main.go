// Command vaqsearch builds a VAQ index over a dataset file written by
// cmd/datagen and runs its query workload, reporting accuracy against the
// exact ground truth and the per-query latency.
//
// Usage:
//
//	datagen -name SALD -n 20000 -nq 50 -out sald.vaqd
//	vaqsearch -data sald.vaqd -budget 256 -subspaces 32 -k 100 -visit 0.1
//	vaqsearch -data sald.vaqd -shards 8                      # sharded scatter-gather
//	vaqsearch -data sald.vaqd -metrics-addr localhost:6060   # live expvar/pprof
//	vaqsearch -data sald.vaqd -metrics-addr :6060 -trace -recall-sample 0.1 -hold 5m
//
// With -metrics-addr the debug mux also serves /debug/vaq/metrics
// (Prometheus text), /debug/vaq/report (the index-quality IndexReport,
// recomputed per scrape; ?format=text for a human-readable dump) and,
// with -trace, /debug/vaq/traces (per-query spans; ?format=chrome for a
// chrome://tracing export). With -shards > 1 the per-shard breakdown —
// merged scatter telemetry plus one block per shard — is additionally
// served at /debug/vaq/shards, and -trace files one parent trace per
// query with a wait/scan span pair per shard.
//
// With -bundle-dir the flight recorder is armed: every alert breach edge
// (vaq.drift, vaq.skew, vaq.slo.*, vaq.burn.*) freezes the recent context
// — metrics, windowed history, alert history, traces, a replayable .vaqwl
// of recent queries, the IndexReport — into an incident bundle under that
// directory (inspect with vaqdiag -bundle; /debug/vaq/bundle lists bundles
// and ?trigger=1 writes a manual one). Bundles pending at SIGINT/SIGTERM
// are flushed before exit, like the capture log.
//
// With -history the metrics history collector is armed: per-series tiered
// trend retention served at /debug/vaq/history (JSON and ?format=text
// sparklines, per-shard targets under -shards), and — when an SLO is
// configured — multi-window burn-rate alerting (vaq.burn.latency.fast/slow
// on -burn-fast/-burn-slow windows) in place of the instantaneous
// exhaustion edge. -top with -hold live-renders the trend view in the
// terminal (see also cmd/vaqtop for polling a remote vaqsearch), and
// -churn keeps round-robin queries flowing during the hold so the trends
// and burn windows have live traffic to show.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"vaq/internal/bundle"
	"vaq/internal/core"
	"vaq/internal/dataset"
	"vaq/internal/diag"
	"vaq/internal/eval"
	"vaq/internal/history"
	"vaq/internal/metrics"
	"vaq/internal/shard"
	"vaq/internal/trace"
	"vaq/internal/workload"
)

func main() {
	var (
		dataPath    = flag.String("data", "", "dataset file from cmd/datagen (required)")
		budget      = flag.Int("budget", 256, "bit budget per vector")
		subspaces   = flag.Int("subspaces", 32, "number of subspaces")
		minBits     = flag.Int("minbits", 1, "minimum bits per subspace")
		maxBits     = flag.Int("maxbits", 13, "maximum bits per subspace")
		k           = flag.Int("k", 100, "neighbors per query")
		visit       = flag.Float64("visit", 0.25, "fraction of TI clusters visited")
		nonUnif     = flag.Bool("nonuniform", false, "cluster dimensions into non-uniform subspaces")
		layoutName  = flag.String("layout", "blocked", "scan layout: blocked (cache-optimized, default) or rowmajor (legacy)")
		accStr      = flag.String("accuracy", "exact", "scan arithmetic: exact or fast (integer kernel, blocked layout only)")
		seed        = flag.Int64("seed", 42, "build seed")
		shards      = flag.Int("shards", 1, "shard count: >1 builds a sharded scatter-gather index (parallel encode, concurrent per-shard search, merged top-k)")
		metricsAddr = flag.String("metrics-addr", "", "serve expvar (/debug/vars), pprof (/debug/pprof/) and /debug/vaq/{metrics,traces} on this address")
		traceOn     = flag.Bool("trace", false, "record per-query spans and publish them at /debug/vaq/traces")
		traceSlow   = flag.Duration("trace-slow", 10*time.Millisecond, "queries at or above this duration enter the slow-exemplar reservoir")
		recallRate  = flag.Float64("recall-sample", 0, "fraction of queries shadow-checked against an exact scan (0 disables)")
		hold        = flag.Duration("hold", 0, "keep the process (and -metrics-addr endpoints) alive this long after the workload (SIGINT/SIGTERM exits early)")
		capturePath = flag.String("capture", "", "record sampled queries to this .vaqwl workload log (replay with cmd/vaqreplay)")
		captureRate = flag.Float64("capture-rate", 1, "fraction of queries captured (deterministic stride; 1 = all)")
		bundleDir   = flag.String("bundle-dir", "", "arm the flight recorder: write an incident bundle under this directory on every alert breach edge (inspect with vaqdiag -bundle, replay with vaqreplay)")
		sloP99      = flag.Duration("slo-p99", 0, "latency SLO: 99% of windowed queries must finish within this duration (0 disables)")
		sloRecall   = flag.Float64("slo-recall", 0, "recall SLO: minimum windowed observed recall (needs -recall-sample; 0 disables)")
		skewAlert   = flag.Float64("skew-alert", 0, "shard-skew alert threshold: fire vaq.skew when the windowed mean skew ratio reaches this (needs -shards > 1; 0 disables)")
		historyOn   = flag.Bool("history", false, "arm the metrics history collector: tiered trend retention served at /debug/vaq/history; with an SLO, multi-window burn-rate alerts (vaq.burn.*) replace the instantaneous exhaustion edge")
		historyInt  = flag.Duration("history-interval", time.Second, "history sampling cadence (needs -history)")
		burnFast    = flag.Duration("burn-fast", 5*time.Minute, "fast burn-rate window (threshold 14.4x the allowed error rate; needs -history and an SLO)")
		burnSlow    = flag.Duration("burn-slow", time.Hour, "slow burn-rate window (threshold 6x the allowed error rate; needs -history and an SLO)")
		topMode     = flag.Bool("top", false, "with -hold: live-render per-index (and per-shard) history trend lines to stdout (implies -history)")
		churn       = flag.Duration("churn", 0, "with -hold: keep issuing round-robin dataset queries at this interval during the hold, so trend series and burn-rate windows see live traffic (0 disables)")
	)
	flag.Parse()
	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "vaqsearch: -data is required")
		os.Exit(2)
	}
	var layout core.ScanLayout
	switch *layoutName {
	case "blocked":
		layout = core.LayoutBlocked
	case "rowmajor":
		layout = core.LayoutRowMajor
	default:
		fmt.Fprintf(os.Stderr, "vaqsearch: unknown layout %q (blocked or rowmajor)\n", *layoutName)
		os.Exit(2)
	}
	var accuracy core.AccuracyMode
	switch *accStr {
	case "", "exact":
		accuracy = core.AccuracyExact
	case "fast":
		accuracy = core.AccuracyFast
	default:
		fmt.Fprintf(os.Stderr, "vaqsearch: unknown accuracy %q (exact or fast)\n", *accStr)
		os.Exit(2)
	}
	if *metricsAddr != "" {
		srv, err := metrics.ServeDebug(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vaqsearch: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "vaqsearch: serving metrics on http://%s/debug/vars\n", srv.Addr)
	}
	ds, err := dataset.Load(*dataPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vaqsearch: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dataset %s: %d vectors, dim %d, %d queries\n",
		ds.Name, ds.Base.Rows, ds.Dim(), ds.Queries.Rows)

	cfg := core.Config{
		NumSubspaces:     *subspaces,
		Budget:           *budget,
		MinBits:          *minBits,
		MaxBits:          *maxBits,
		NonUniform:       *nonUnif,
		Seed:             *seed,
		ScanLayout:       layout,
		AccuracyMode:     accuracy,
		RecallSampleRate: *recallRate,
	}
	if *sloP99 > 0 || *sloRecall > 0 {
		cfg.SLO = &metrics.SLO{LatencyTarget: *sloP99, MinRecall: *sloRecall}
	}
	if cfg.SLO != nil || *skewAlert > 0 {
		// Surface the vaq.slo / vaq.skew breach events on stderr (Warn level
		// keeps the build/maintenance Info logs quiet).
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "vaqsearch: -shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	if *topMode {
		*historyOn = true
	}
	if *shards > 1 {
		runSharded(ds, cfg, shardedRun{
			shards:      *shards,
			k:           *k,
			visit:       *visit,
			hold:        *hold,
			traceOn:     *traceOn,
			traceSlow:   *traceSlow,
			capturePath: *capturePath,
			captureRate: *captureRate,
			skewAlert:   *skewAlert,
			bundleDir:   *bundleDir,
			history:     *historyOn,
			historyInt:  *historyInt,
			burnFast:    *burnFast,
			burnSlow:    *burnSlow,
			top:         *topMode,
			churn:       *churn,
		})
		return
	}
	start := time.Now()
	ix, err := core.Build(ds.Train, ds.Base, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vaqsearch: build: %v\n", err)
		os.Exit(1)
	}
	rep := ix.BuildReport()
	fmt.Printf("built in %.2fs: bits=%v, %d TI clusters, %d code bytes\n",
		time.Since(start).Seconds(), ix.Bits(), ix.TIClusterCount(), ix.CodeBytes())
	fmt.Printf("build phases: pca=%s alloc=%s train=%s encode=%s ti=%s\n",
		rep.PCA.Round(time.Millisecond), rep.Allocation.Round(time.Millisecond),
		rep.Training.Round(time.Millisecond), rep.Encoding.Round(time.Millisecond),
		rep.TIClustering.Round(time.Millisecond))
	metrics.Publish("vaqsearch_index", ix.Metrics())
	diag.Publish("vaqsearch_index", ix.Diagnose)
	drep := ix.Diagnose()
	entries := 0
	for _, sr := range drep.Subspaces {
		entries += sr.Entries
	}
	fmt.Printf("diagnostics: mse_share=%.4f (%s), dead codewords %d/%d, TI gini %.2f, imbalance %.1fx\n",
		drep.MSEShare, drep.MSESource, drep.DeadCodewordsTotal, entries,
		drep.TI.Gini, drep.TI.ImbalanceRatio)
	var tr *trace.Tracer
	if *traceOn {
		tr = ix.EnableTracing(trace.Config{SlowThreshold: *traceSlow})
		trace.Publish("vaqsearch_index", tr)
	}

	// Workload capture, flushed exactly once — on the normal exit path or
	// from the signal handler, whichever comes first, so an interrupted
	// -hold still leaves a replayable log behind.
	var flushOnce sync.Once
	flushCapture := func() {
		if *capturePath == "" {
			return
		}
		flushOnce.Do(func() {
			cap := ix.Capture()
			if cap == nil {
				return
			}
			log := cap.Snapshot()
			if err := log.Save(*capturePath); err != nil {
				fmt.Fprintf(os.Stderr, "vaqsearch: capture: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "vaqsearch: captured %d of %d sampled queries (%d dropped) to %s (fingerprint %s)\n",
				len(log.Records), cap.Sampled(), cap.Dropped(), *capturePath, log.Fingerprint)
		})
	}
	// Flight-recorder shutdown, also exactly once: Close drains pending
	// alert-triggered bundles, so an interrupted -hold still leaves every
	// incident on disk — the same contract as the capture flush.
	var bundleOnce sync.Once
	flushBundle := func() {
		if *bundleDir == "" {
			return
		}
		bundleOnce.Do(func() {
			rec := ix.FlightRecorder()
			if rec == nil {
				return
			}
			if err := rec.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "vaqsearch: bundle: %v\n", err)
			}
			st := rec.Status()
			fmt.Fprintf(os.Stderr, "vaqsearch: flight recorder wrote %d incident bundle(s) under %s\n",
				st.BundlesWritten, st.Dir)
		})
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "vaqsearch: %s — flushing capture and bundles, exiting\n", sig)
		flushCapture()
		flushBundle()
		os.Exit(130)
	}()
	if *capturePath != "" {
		ix.EnableCapture(workload.Config{SampleRate: *captureRate})
	}
	if *bundleDir != "" {
		rec, err := ix.EnableFlightRecorder("vaqsearch_index", bundle.Config{Dir: *bundleDir})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vaqsearch: flight recorder: %v\n", err)
			os.Exit(1)
		}
		bundle.Publish("vaqsearch_index", rec)
		fmt.Fprintf(os.Stderr, "vaqsearch: flight recorder armed — incident bundles under %s\n", *bundleDir)
	}
	var col *history.Collector
	if *historyOn {
		var err error
		col, err = ix.EnableHistory("vaqsearch_index", historyConfig(*historyInt, *burnFast, *burnSlow))
		if err != nil {
			fmt.Fprintf(os.Stderr, "vaqsearch: history: %v\n", err)
			os.Exit(1)
		}
		history.Publish("vaqsearch_index", col)
		fmt.Fprintf(os.Stderr, "vaqsearch: history collector armed (interval %s) — trends at /debug/vaq/history\n", col.Interval())
	}

	gt, err := eval.GroundTruth(ds.Base, ds.Queries, *k)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vaqsearch: ground truth: %v\n", err)
		os.Exit(1)
	}
	searcher := ix.NewSearcher()
	results := make([][]int, ds.Queries.Rows)
	start = time.Now()
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		res, err := searcher.Search(ds.Queries.Row(qi), *k, core.SearchOptions{
			Mode: core.ModeTIEA, VisitFrac: *visit,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vaqsearch: query %d: %v\n", qi, err)
			os.Exit(1)
		}
		results[qi] = eval.IDs(res)
	}
	elapsed := time.Since(start)
	fmt.Printf("recall@%d = %.4f, MAP@%d = %.4f, avg query %.3fms\n",
		*k, eval.Recall(results, gt, *k),
		*k, eval.MAP(results, gt, *k),
		elapsed.Seconds()/float64(ds.Queries.Rows)*1000)
	snap := ix.Metrics().Snapshot()
	fmt.Printf("metrics: %d queries, p50 %s, p95 %s, p99 %s, TI prune %.1f%%, EA abandon %.1f%%, %d lookups\n",
		snap.Queries,
		snap.Latency.Quantile(0.50).Round(time.Microsecond),
		snap.Latency.Quantile(0.95).Round(time.Microsecond),
		snap.Latency.Quantile(0.99).Round(time.Microsecond),
		100*snap.TIPruneRate(), 100*snap.EAAbandonRate(), snap.Lookups)
	if snap.RecallSamples > 0 {
		fmt.Printf("online recall: %.4f over %d sampled queries\n",
			snap.ObservedRecall(), snap.RecallSamples)
	}
	if slo := snap.SLO; slo != nil {
		status := "ok"
		if slo.LatencyExhausted || slo.RecallExhausted {
			status = "BREACH"
		}
		fmt.Printf("slo: latency budget %.3f remaining (burn %.2f, %d/%d violations), recall budget %.3f — %s\n",
			slo.LatencyBudgetRemaining, slo.BurnRate, slo.LatencyViolations,
			slo.WindowQueries, slo.RecallBudgetRemaining, status)
	}
	if tr != nil {
		if slow, seen := tr.Slowest(); len(slow) > 0 {
			fmt.Printf("slowest traced query (%d over the %s threshold):\n", seen, *traceSlow)
			trace.WriteText(os.Stdout, slow[:1])
		} else {
			fmt.Printf("no query exceeded the %s slow threshold (%d traced)\n",
				*traceSlow, tr.Count())
		}
	}
	flushCapture()
	churnSearcher := ix.NewSearcher()
	stopChurn := startChurn(*churn, *hold, ds, func(q []float32) {
		_, _ = churnSearcher.Search(q, *k, core.SearchOptions{
			Mode: core.ModeTIEA, VisitFrac: *visit,
		})
	})
	holdLoop(*hold, *topMode, col, sigCh)
	stopChurn()
	flushBundle()
}

// startChurn keeps background queries flowing during -hold so windowed
// gauges, trend series and burn-rate confirmation windows see live traffic
// instead of flat counters. The returned stop function joins the traffic
// goroutine; it is a no-op when churn is disabled.
func startChurn(every, hold time.Duration, ds *dataset.Dataset, search func(q []float32)) func() {
	if every <= 0 || hold <= 0 || ds.Queries.Rows == 0 {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for qi := 0; ; qi++ {
			select {
			case <-stop:
				return
			case <-t.C:
				search(ds.Queries.Row(qi % ds.Queries.Rows))
			}
		}
	}()
	fmt.Fprintf(os.Stderr, "vaqsearch: churn armed — one query per %s during hold\n", every)
	return func() { close(stop); <-done }
}

// historyConfig shapes the vaqsearch collector: the fast/slow burn windows
// keep the default SRE thresholds (14.4x / 6x), only the window lengths
// are tunable from the command line.
func historyConfig(interval, fast, slow time.Duration) history.Config {
	return history.Config{
		Interval: interval,
		Burn: []history.BurnRule{
			{Name: "fast", Window: fast, Threshold: 14.4},
			{Name: "slow", Window: slow, Threshold: 6},
		},
	}
}

// holdLoop keeps the process alive for hold; with -top it additionally
// live-renders the history sparkline view every 2s (the same text the
// /debug/vaq/history?format=text endpoint serves).
func holdLoop(hold time.Duration, top bool, col *history.Collector, sigCh chan os.Signal) {
	if hold <= 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "vaqsearch: holding for %s (ctrl-c to exit)\n", hold)
	deadline := time.After(hold)
	if !top || col == nil {
		select {
		case <-deadline:
		case sig := <-sigCh:
			// The handler goroutine may win the race for the signal; either
			// path flushes once and exits.
			fmt.Fprintf(os.Stderr, "vaqsearch: %s — exiting hold\n", sig)
		}
		return
	}
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-deadline:
			return
		case sig := <-sigCh:
			fmt.Fprintf(os.Stderr, "vaqsearch: %s — exiting hold\n", sig)
			return
		case <-tick.C:
			fmt.Print("\033[2J\033[H") // clear screen, home cursor
			history.RenderText(os.Stdout, col.Dump())
		}
	}
}

// shardedRun bundles the -shards >1 run parameters.
type shardedRun struct {
	shards      int
	k           int
	visit       float64
	hold        time.Duration
	traceOn     bool
	traceSlow   time.Duration
	capturePath string
	captureRate float64
	skewAlert   float64
	bundleDir   string
	history     bool
	historyInt  time.Duration
	burnFast    time.Duration
	burnSlow    time.Duration
	top         bool
	churn       time.Duration
}

// runSharded is the -shards >1 path: build a scatter-gather index sharing
// one trained model, run the query workload as a single outer stream
// (each query fans out to per-shard searchers internally), and report
// accuracy plus the merged end-to-end telemetry, the slowest-shard
// attribution, and (with -trace / -capture) the sharded parent traces and
// a replayable workload log. Per-shard registries and diagnostics are
// published under vaqsearch_index/shard-i; the per-shard breakdown lives
// at /debug/vaq/shards.
func runSharded(ds *dataset.Dataset, cfg core.Config, run shardedRun) {
	start := time.Now()
	x, err := shard.Build(ds.Train, ds.Base, cfg, shard.Options{
		Shards:         run.shards,
		SkewAlertRatio: run.skewAlert,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vaqsearch: sharded build: %v\n", err)
		os.Exit(1)
	}
	rep := x.BuildReports()[0]
	fmt.Printf("built %d shards in %.2fs (shard sizes %v): bits=%v\n",
		x.Shards(), time.Since(start).Seconds(), x.ShardLens(), x.Shard(0).Bits())
	fmt.Printf("shared training: pca=%s alloc=%s train=%s; shard-0 encode=%s ti=%s\n",
		rep.PCA.Round(time.Millisecond), rep.Allocation.Round(time.Millisecond),
		rep.Training.Round(time.Millisecond), rep.Encoding.Round(time.Millisecond),
		rep.TIClustering.Round(time.Millisecond))
	x.PublishExpvar("vaqsearch_index")
	x.PublishDiagnostics("vaqsearch_index")
	var tr *trace.Tracer
	if run.traceOn {
		tr = x.EnableTracing(trace.Config{SlowThreshold: run.traceSlow})
		trace.Publish("vaqsearch_index", tr)
	}

	// Workload capture, flushed exactly once — on the normal exit path or
	// from the signal handler, whichever comes first, so an interrupted
	// -hold still leaves a replayable log behind.
	var flushOnce sync.Once
	flushCapture := func() {
		if run.capturePath == "" {
			return
		}
		flushOnce.Do(func() {
			cap := x.Capture()
			if cap == nil {
				return
			}
			log := cap.Snapshot()
			if err := log.Save(run.capturePath); err != nil {
				fmt.Fprintf(os.Stderr, "vaqsearch: capture: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "vaqsearch: captured %d of %d sampled queries (%d dropped) to %s (fingerprint %s, %d shards)\n",
				len(log.Records), cap.Sampled(), cap.Dropped(), run.capturePath,
				log.Fingerprint, log.Shards)
		})
	}
	// Flight-recorder shutdown, also exactly once (same contract as the
	// unsharded path: Close drains pending alert-triggered bundles).
	var bundleOnce sync.Once
	flushBundle := func() {
		if run.bundleDir == "" {
			return
		}
		bundleOnce.Do(func() {
			rec := x.FlightRecorder()
			if rec == nil {
				return
			}
			if err := rec.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "vaqsearch: bundle: %v\n", err)
			}
			st := rec.Status()
			fmt.Fprintf(os.Stderr, "vaqsearch: flight recorder wrote %d incident bundle(s) under %s\n",
				st.BundlesWritten, st.Dir)
		})
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "vaqsearch: %s — flushing capture and bundles, exiting\n", sig)
		flushCapture()
		flushBundle()
		os.Exit(130)
	}()
	if run.capturePath != "" {
		x.EnableCapture(workload.Config{SampleRate: run.captureRate})
	}
	if run.bundleDir != "" {
		rec, err := x.EnableFlightRecorder("vaqsearch_index", bundle.Config{Dir: run.bundleDir})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vaqsearch: flight recorder: %v\n", err)
			os.Exit(1)
		}
		bundle.Publish("vaqsearch_index", rec)
		fmt.Fprintf(os.Stderr, "vaqsearch: flight recorder armed — incident bundles under %s\n", run.bundleDir)
	}
	var col *history.Collector
	if run.history {
		var err error
		col, err = x.EnableHistory("vaqsearch_index", historyConfig(run.historyInt, run.burnFast, run.burnSlow))
		if err != nil {
			fmt.Fprintf(os.Stderr, "vaqsearch: history: %v\n", err)
			os.Exit(1)
		}
		history.Publish("vaqsearch_index", col)
		fmt.Fprintf(os.Stderr, "vaqsearch: history collector armed (interval %s, %d targets) — trends at /debug/vaq/history\n",
			col.Interval(), len(col.Targets()))
	}

	gt, err := eval.GroundTruth(ds.Base, ds.Queries, run.k)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vaqsearch: ground truth: %v\n", err)
		os.Exit(1)
	}
	results := make([][]int, ds.Queries.Rows)
	start = time.Now()
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		res, err := x.Search(ds.Queries.Row(qi), run.k, core.SearchOptions{
			Mode: core.ModeTIEA, VisitFrac: run.visit,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vaqsearch: query %d: %v\n", qi, err)
			os.Exit(1)
		}
		results[qi] = eval.IDs(res)
	}
	elapsed := time.Since(start)
	fmt.Printf("recall@%d = %.4f, MAP@%d = %.4f, avg query %.3fms\n",
		run.k, eval.Recall(results, gt, run.k),
		run.k, eval.MAP(results, gt, run.k),
		elapsed.Seconds()/float64(ds.Queries.Rows)*1000)
	snap := x.Metrics().Snapshot()
	fmt.Printf("merged metrics: %d queries, p50 %s, p95 %s, p99 %s, TI prune %.1f%%, EA abandon %.1f%%, %d lookups\n",
		snap.Queries,
		snap.Latency.Quantile(0.50).Round(time.Microsecond),
		snap.Latency.Quantile(0.95).Round(time.Microsecond),
		snap.Latency.Quantile(0.99).Round(time.Microsecond),
		100*snap.TIPruneRate(), 100*snap.EAAbandonRate(), snap.Lookups)
	if sh := snap.Sharded; sh != nil {
		slowest, total := 0, uint64(0)
		for i, c := range sh.CriticalPath {
			total += c
			if c > sh.CriticalPath[slowest] {
				slowest = i
			}
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(sh.CriticalPath[slowest]) / float64(total)
		}
		fmt.Printf("shards: slowest shard %d (critical path of %.0f%% of queries), skew ratio %.2f, load imbalance %.2f, straggler delta p99 %s\n",
			slowest, pct, sh.SkewRatio, sh.LoadImbalance,
			sh.StragglerDelta.Quantile(0.99).Round(time.Microsecond))
		if sh.SkewAlertRatio > 0 && sh.SkewAlert {
			fmt.Printf("shards: SKEW ALERT — windowed skew ratio %.2f at or above threshold %.2f\n",
				sh.SkewRatio, sh.SkewAlertRatio)
		}
	}
	if slo := snap.SLO; slo != nil {
		status := "ok"
		if slo.LatencyExhausted || slo.RecallExhausted {
			status = "BREACH"
		}
		fmt.Printf("slo: latency budget %.3f remaining (burn %.2f, %d/%d violations) — %s\n",
			slo.LatencyBudgetRemaining, slo.BurnRate, slo.LatencyViolations,
			slo.WindowQueries, status)
	}
	if tr != nil {
		if slow, seen := tr.Slowest(); len(slow) > 0 {
			fmt.Printf("slowest traced query (%d over the %s threshold):\n", seen, run.traceSlow)
			trace.WriteText(os.Stdout, slow[:1])
		} else {
			fmt.Printf("no query exceeded the %s slow threshold (%d traced)\n",
				run.traceSlow, tr.Count())
		}
	}
	flushCapture()
	stopChurn := startChurn(run.churn, run.hold, ds, func(q []float32) {
		_, _ = x.Search(q, run.k, core.SearchOptions{
			Mode: core.ModeTIEA, VisitFrac: run.visit,
		})
	})
	holdLoop(run.hold, run.top, col, sigCh)
	stopChurn()
	flushBundle()
}
