package bundle

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vaq/internal/history"
	"vaq/internal/workload"
)

// Validate checks one bundle directory end to end: the manifest parses and
// its format version is known, every listed member exists with the
// recorded byte count and sha256, every .json member is well-formed JSON,
// the history dump (when present) parses against its schema with monotonic
// per-series timestamps, and the workload log (when present) decodes and
// carries exactly the record count the manifest claims. Returns the
// manifest (Dir filled) on success; the first failure is returned as an
// error naming the member.
func Validate(dir string) (*Manifest, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if man.FormatVersion > FormatVersion {
		return nil, fmt.Errorf("bundle %s: format version %d is newer than supported %d",
			dir, man.FormatVersion, FormatVersion)
	}
	if man.FormatVersion < 1 {
		return nil, fmt.Errorf("bundle %s: bad format version %d", dir, man.FormatVersion)
	}
	for _, f := range man.Files {
		if f.Name == ManifestName || strings.ContainsAny(f.Name, "/\\") {
			return nil, fmt.Errorf("bundle %s: illegal member name %q", dir, f.Name)
		}
		path := filepath.Join(dir, f.Name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("bundle %s: %w", dir, err)
		}
		if int64(len(data)) != f.Bytes {
			return nil, fmt.Errorf("bundle %s: %s: %d bytes, manifest says %d",
				dir, f.Name, len(data), f.Bytes)
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != f.SHA256 {
			return nil, fmt.Errorf("bundle %s: %s: sha256 mismatch (got %s, manifest says %s)",
				dir, f.Name, got, f.SHA256)
		}
		if strings.HasSuffix(f.Name, ".json") && !json.Valid(data) {
			return nil, fmt.Errorf("bundle %s: %s: invalid JSON", dir, f.Name)
		}
		if f.Name == "history.json" {
			var dump history.Dump
			if err := json.Unmarshal(data, &dump); err != nil {
				return nil, fmt.Errorf("bundle %s: %s: %w", dir, f.Name, err)
			}
			if err := history.ValidateDump(&dump); err != nil {
				return nil, fmt.Errorf("bundle %s: %s: %w", dir, f.Name, err)
			}
		}
		if f.Name == "workload.vaqwl" {
			log, err := workload.LoadLog(path)
			if err != nil {
				return nil, fmt.Errorf("bundle %s: %s: %w", dir, f.Name, err)
			}
			if len(log.Records) != man.WorkloadRecords {
				return nil, fmt.Errorf("bundle %s: %s: %d records, manifest says %d",
					dir, f.Name, len(log.Records), man.WorkloadRecords)
			}
			if man.Fingerprint != "" && log.Fingerprint != man.Fingerprint {
				return nil, fmt.Errorf("bundle %s: %s: fingerprint %s, manifest says %s",
					dir, f.Name, log.Fingerprint, man.Fingerprint)
			}
		}
	}
	return man, nil
}

// readManifest loads and parses dir's manifest without member checks.
func readManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("bundle %s: %w", dir, err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("bundle %s: %s: %w", dir, ManifestName, err)
	}
	man.Dir = dir
	return &man, nil
}

// List loads the manifests of every complete bundle directly under root
// (directories holding a manifest.json; incomplete or foreign directories
// are skipped), ordered by sequence then creation time. Manifests are read
// but not integrity-checked — use Validate per bundle for that.
func List(root string) ([]*Manifest, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []*Manifest
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		man, err := readManifest(filepath.Join(root, e.Name()))
		if err != nil {
			continue
		}
		out = append(out, man)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Seq != out[b].Seq {
			return out[a].Seq < out[b].Seq
		}
		return out[a].CreatedAt.Before(out[b].CreatedAt)
	})
	return out, nil
}

// Fprint writes a human-readable one-bundle summary, the vaqdiag -bundle
// text rendering.
func (m *Manifest) Fprint(w io.Writer) {
	fmt.Fprintf(w, "bundle %s\n", m.Dir)
	fmt.Fprintf(w, "  format v%d  seq %d  created %s\n",
		m.FormatVersion, m.Seq, m.CreatedAt.Format("2006-01-02T15:04:05Z07:00"))
	fmt.Fprintf(w, "  index %q  fingerprint %s  shards %d  %s\n",
		m.Index, m.Fingerprint, m.Shards, m.GoVersion)
	fmt.Fprintf(w, "  trigger %s (%s) alert_seq %d at %s\n",
		m.Trigger.Source, m.Trigger.Reason, m.Trigger.AlertSeq,
		m.Trigger.Time.Format("15:04:05.000"))
	fmt.Fprintf(w, "  workload records %d\n", m.WorkloadRecords)
	for _, f := range m.Files {
		fmt.Fprintf(w, "  %-20s %8d bytes  sha256 %s\n", f.Name, f.Bytes, f.SHA256[:16])
	}
}
