package vaq

import (
	"fmt"
	"io"
	"log/slog"

	"vaq/internal/core"
)

// WriteTo serializes the index (model, dictionaries, codes and skip
// structure) so it can be reloaded without retraining. The format is
// versioned; Read rejects unknown versions.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	return ix.inner.WriteTo(w)
}

// Read deserializes an index written by WriteTo.
func Read(r io.Reader) (*Index, error) {
	inner, err := core.Read(r)
	if err != nil {
		return nil, fmt.Errorf("vaq: %w", err)
	}
	return &Index{inner: inner}, nil
}

// ReadLogged is Read with structured logging: the load is logged to l and
// the returned index adopts l for its maintenance paths (Add, WriteTo) —
// serialized streams carry no logger, it is a runtime knob. nil l behaves
// exactly like Read.
func ReadLogged(r io.Reader, l *slog.Logger) (*Index, error) {
	inner, err := core.ReadLogged(r, l)
	if err != nil {
		return nil, fmt.Errorf("vaq: %w", err)
	}
	return &Index{inner: inner}, nil
}

// SetLogger replaces the structured logger used by the maintenance paths
// (Add, WriteTo). nil discards.
func (ix *Index) SetLogger(l *slog.Logger) { ix.inner.SetLogger(l) }

// Save writes the index to a file.
func (ix *Index) Save(path string) error {
	return ix.inner.Save(path)
}

// Load reads an index from a file.
func Load(path string) (*Index, error) {
	inner, err := core.Load(path)
	if err != nil {
		return nil, fmt.Errorf("vaq: %w", err)
	}
	return &Index{inner: inner}, nil
}
