package vaq

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// SearchBatch answers many queries, distributing them across worker
// goroutines (one reusable Searcher each). Results are returned in query
// order. workers <= 0 uses runtime.GOMAXPROCS(0).
//
// Malformed input (k < 1, a query with the wrong dimensionality) is
// rejected up front with a nil result slice. Errors raised while
// executing individual queries do not abort the batch: every other query
// still runs, its result is kept, and its telemetry is recorded; the
// failed slots are nil in the returned slice and the per-query errors
// come back joined (errors.Join) with their query indices.
func (ix *Index) SearchBatch(queries [][]float32, k int, opt SearchOptions, workers int) ([][]Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("vaq: k must be >= 1, got %d", k)
	}
	n := len(queries)
	out := make([][]Result, n)
	if n == 0 {
		return out, nil
	}
	for i, q := range queries {
		if len(q) != ix.Dim() {
			return nil, fmt.Errorf("vaq: query %d has dimension %d, index has %d", i, len(q), ix.Dim())
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	qErrs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := ix.NewSearcher()
			for qi := range next {
				res, err := s.Search(queries[qi], k, opt)
				if err != nil {
					qErrs[qi] = fmt.Errorf("vaq: query %d: %w", qi, err)
					continue
				}
				out[qi] = res
			}
		}()
	}
	for qi := 0; qi < n; qi++ {
		next <- qi
	}
	close(next)
	wg.Wait()
	return out, errors.Join(qErrs...)
}
