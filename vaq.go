// Package vaq is a Go implementation of Variance-Aware Quantization
// (Paparrizos et al., "Fast Adaptive Similarity Search through
// Variance-Aware Quantization", ICDE 2022): an approximate
// nearest-neighbor method that encodes vectors with per-subspace
// dictionaries whose sizes adapt to the variance each subspace explains,
// and answers queries with hardware-oblivious data skipping (triangle
// inequality over precomputed cluster distances) cascaded with
// early-abandoned table lookups.
//
// Quick start:
//
//	ix, err := vaq.Build(data, vaq.Config{NumSubspaces: 16, Budget: 128})
//	if err != nil { ... }
//	results, err := ix.Search(query, 10)
//
// data is a slice of equal-length []float32 vectors; results come back as
// (id, squared distance) pairs sorted by distance. See the examples/
// directory for richer usage and the internal packages for the substrates
// (PCA, k-means, the MILP bit-allocation solver, baseline quantizers and
// tree indexes) that power the experiment suite in cmd/vaqbench.
//
// # Concurrency and observability
//
// An Index is safe for concurrent reads: run one Searcher per goroutine,
// or use SearchBatch, which fans queries out across worker goroutines
// (workers <= 0 means runtime.GOMAXPROCS(0) workers). Every query — from
// Search, a Searcher, or SearchBatch — is folded into a lock-free
// index-wide registry; Metrics returns its snapshot (query counts,
// latency percentiles, the paper's §III-E prune counters), BuildReport
// the per-phase build timings, and PublishExpvar/ServeDebug expose both
// over HTTP for live inspection. Set Config.DisableMetrics to opt out.
package vaq

import (
	"errors"
	"fmt"
	"log/slog"

	"vaq/internal/core"
	"vaq/internal/milp"
	"vaq/internal/vec"
)

// Result is one search answer: a database vector id and its distance to
// the query. Distances are squared Euclidean in the quantized space —
// comparable within one result list, monotone in the true distance up to
// quantization error.
type Result struct {
	ID   int
	Dist float32
}

// AllocStrategy selects how the bit budget is split across subspaces.
type AllocStrategy = core.AllocStrategy

// Allocation strategies.
const (
	// AllocMILP solves the paper's constrained integer program (default).
	AllocMILP = core.AllocMILP
	// AllocTransformCoding uses the closed-form reverse-water-filling rule.
	AllocTransformCoding = core.AllocTransformCoding
	// AllocUniform assigns Budget/NumSubspaces bits everywhere (the
	// PQ/OPQ ablation baseline).
	AllocUniform = core.AllocUniform
)

// BitConstraint is an extra linear constraint over the per-subspace bit
// variables, composed with the paper's C1-C4 by the MILP allocator:
// Σ Coeffs[i]·bits[i]  Sense  RHS. One coefficient per subspace, ordered by
// subspace importance. This is the extension point §III-C motivates —
// workload-aware storage or latency requirements become allocation
// constraints instead of a new optimizer.
type BitConstraint = core.BitConstraint

// ConstraintSense is the direction of a BitConstraint.
type ConstraintSense = milp.Sense

// Constraint senses.
const (
	LE = milp.LE // Σ coeffs·bits <= RHS
	GE = milp.GE // Σ coeffs·bits >= RHS
	EQ = milp.EQ // Σ coeffs·bits == RHS
)

// ScanLayout selects the physical layout the query kernels scan.
type ScanLayout = core.ScanLayout

// Scan layouts.
const (
	// LayoutBlocked (default) scans a cache-optimized copy of the codes:
	// cluster-contiguous, group-transposed in small blocks, uint8 where
	// dictionaries fit. Results and prune stats are identical to
	// LayoutRowMajor.
	LayoutBlocked = core.LayoutBlocked
	// LayoutRowMajor scans the canonical row-major codes directly (the
	// legacy layout, kept for A/B benchmarking).
	LayoutRowMajor = core.LayoutRowMajor
)

// AccuracyMode selects the arithmetic the scan kernels run in.
type AccuracyMode = core.AccuracyMode

// Accuracy modes.
const (
	// AccuracyExact (default) keeps the bit-identical float32 kernels.
	AccuracyExact = core.AccuracyExact
	// AccuracyFast scans an integer companion store: per-query uint8
	// lookup tables (learned scale/offset, saturating) over packed 4-bit /
	// uint8 / uint16 codes, with early-abandon thresholds quantized into
	// the integer domain. Faster, with a small recall cost that
	// RecallSampleRate and workload replay can measure. Requires
	// LayoutBlocked; ModeEA and truncated-Subspaces queries transparently
	// fall back to the exact kernels.
	AccuracyFast = core.AccuracyFast
)

// SearchMode selects the query-time pruning strategy.
type SearchMode = core.SearchMode

// Search modes.
const (
	// ModeTIEA is full VAQ: triangle-inequality data skipping plus
	// early-abandoned lookups (default).
	ModeTIEA = core.ModeTIEA
	// ModeEA scans all codes with early abandoning only.
	ModeEA = core.ModeEA
	// ModeHeap is the plain exhaustive ADC scan.
	ModeHeap = core.ModeHeap
)

// Config holds build parameters. NumSubspaces and Budget are required;
// every other field has a sensible default (see the field comments in
// internal/core.Config for the paper sections each knob comes from).
type Config struct {
	// NumSubspaces is the number of subspaces (m). Required.
	NumSubspaces int
	// Budget is the total bits per encoded vector. Required.
	Budget int
	// MinBits and MaxBits bound per-subspace dictionary sizes
	// (defaults 1 and 13, the paper's evaluation setting).
	MinBits int
	MaxBits int
	// NonUniform clusters dimensions of similar variance into
	// unequal-length subspaces.
	NonUniform bool
	// DisablePartialBalance turns off importance spreading (ablation).
	DisablePartialBalance bool
	// Alloc selects the allocation strategy (default AllocMILP).
	Alloc AllocStrategy
	// AllocConstraints are extra linear constraints for the MILP allocator
	// (one coefficient per subspace; ignored by other strategies).
	AllocConstraints []BitConstraint
	// TargetVariance is the C1 coverage threshold (default 0.99).
	TargetVariance float64
	// TIClusters is the number of data-skipping clusters
	// (0 = auto: min(1000, n/64)).
	TIClusters int
	// TIPrefixSubspaces is how many leading subspaces the skip clusters
	// span (0 = all).
	TIPrefixSubspaces int
	// DefaultVisitFrac is the default fraction of clusters visited per
	// query (default 0.25).
	DefaultVisitFrac float64
	// CenterPCA subtracts column means before the eigendecomposition.
	CenterPCA bool
	// Seed makes the build deterministic.
	Seed int64
	// KMeansIters bounds dictionary-training iterations (default 25).
	KMeansIters int
	// DisableMetrics turns off the index-wide query telemetry registry
	// (see Index.Metrics). Recording costs a few atomic adds per query,
	// so the default is on.
	DisableMetrics bool
	// ScanLayout selects the physical layout the query kernels scan
	// (default LayoutBlocked; LayoutRowMajor keeps the legacy scan for
	// A/B comparison). Both return identical results and prune stats.
	ScanLayout ScanLayout
	// AccuracyMode selects the scan arithmetic (default AccuracyExact).
	// AccuracyFast runs the integer fast-scan kernel — uint8-quantized
	// lookup tables over packed codes — trading a small, measurable recall
	// cost for throughput. Requires ScanLayout == LayoutBlocked.
	// Runtime-only: not serialized; loaded indexes start exact.
	AccuracyMode AccuracyMode
	// RecallSampleRate enables the online recall estimator: roughly this
	// fraction of queries (deterministic stride sampling, so 0.01 means
	// every 100th query) is additionally answered by an exact scan over the
	// retained projected dataset, and the overlap folds into the metrics
	// registry (MetricsSnapshot.ObservedRecall). The sampled queries pay the
	// full exact-scan cost, and the index retains its projected vectors
	// (4*n*dim bytes), so pick a small rate. 0 disables (default).
	// Runtime-only: not serialized; loaded indexes have sampling off.
	RecallSampleRate float64
	// Logger receives structured build/maintenance logs (Build, Add,
	// WriteTo) via log/slog. nil discards (default). Runtime-only: not
	// serialized.
	Logger *slog.Logger
	// DriftAlertRatio sets the quantization-drift alert threshold: when
	// the EWMA reconstruction MSE of vectors folded in by Add exceeds this
	// multiple of the Build-time baseline (e.g. 1.5 = alert at 50% excess
	// distortion), a vaq.drift log event fires and the vaq_drift_alert
	// gauge sets. 0 disables alerting; the drift gauges update either way.
	// Runtime-only: not serialized.
	DriftAlertRatio float64
	// ProfileLabels tags query goroutines with runtime/pprof labels
	// (vaq_phase = project | lut_fill | scan) so CPU profiles attribute
	// samples to search phases; PublishDiagnostics sets the index label.
	// Off by default; see also Index.EnableProfileLabels for indexes
	// loaded from disk. Runtime-only: not serialized.
	ProfileLabels bool
	// Shards partitions the dataset across this many independent indexes
	// that share one trained model (rotation, bit allocation and
	// dictionaries are learned once on the training sample, so per-shard
	// distances are directly comparable). Consumed by BuildSharded: shards
	// encode in parallel at build time, queries scatter across them on a
	// worker pool and gather through a deterministic top-k merge, and Add
	// routes whole batches to one shard so concurrent ingest stops
	// serializing on a single write lock. 0 or 1 means one shard (S=1
	// answers bit-identically to an unsharded Build). Ignored by Build.
	Shards int
	// ShardPolicy selects how Add routes batches to shards (default
	// ShardRoundRobin). Only meaningful with Shards > 1.
	ShardPolicy ShardPolicy
	// ShardSkewAlertRatio sets the shard-skew alert threshold on a sharded
	// index: when the windowed mean skew ratio — each query's slowest
	// shard latency over its mean shard latency (1 = perfectly balanced,
	// Shards = one shard does all the work) — reaches this value, a
	// vaq.skew log event fires once and the vaq_skew_alert gauge sets
	// until the window recovers, mirroring the drift and SLO alerts.
	// 0 disables the alert; the skew telemetry itself is always on when
	// metrics are. Only meaningful with Shards > 1. Runtime-only: not
	// serialized.
	ShardSkewAlertRatio float64
	// SLO declares service-level objectives — a tail-latency target and/or
	// a minimum observed recall — evaluated online over sliding windows of
	// recent traffic. Error budgets are exported through
	// MetricsSnapshot.SLO, the Prometheus gauges
	// (vaq_slo_latency_budget_remaining, vaq_slo_recall_budget_remaining,
	// vaq_slo_burn_rate) and the index report; crossing into budget
	// exhaustion emits one vaq.slo log event per crossing (edge-triggered,
	// re-arms on recovery) via Logger. The recall objective needs
	// RecallSampleRate > 0 to feed samples. nil disables (default).
	// Requires metrics (no effect under DisableMetrics). Runtime-only:
	// not serialized.
	SLO *SLO
}

// SearchOptions tune a single query.
type SearchOptions struct {
	// Mode selects the pruning strategy (default ModeTIEA).
	Mode SearchMode
	// VisitFrac overrides the fraction of skip clusters visited
	// (0 = the index default). 1.0 makes the search exactly equivalent
	// to an exhaustive scan of the encoded data.
	VisitFrac float64
	// Subspaces limits distance accumulation to the first n subspaces
	// (0 = all); used for dimensionality-reduction style trade-offs.
	Subspaces int
}

// Index is a built VAQ index over an encoded dataset.
type Index struct {
	inner *core.Index
}

func (c Config) toCore() core.Config {
	return core.Config{
		NumSubspaces:          c.NumSubspaces,
		Budget:                c.Budget,
		MinBits:               c.MinBits,
		MaxBits:               c.MaxBits,
		NonUniform:            c.NonUniform,
		DisablePartialBalance: c.DisablePartialBalance,
		Alloc:                 c.Alloc,
		AllocConstraints:      c.AllocConstraints,
		TargetVariance:        c.TargetVariance,
		TIClusters:            c.TIClusters,
		TIPrefixSubspaces:     c.TIPrefixSubspaces,
		DefaultVisitFrac:      c.DefaultVisitFrac,
		CenterPCA:             c.CenterPCA,
		Seed:                  c.Seed,
		KMeansIters:           c.KMeansIters,
		DisableMetrics:        c.DisableMetrics,
		ScanLayout:            c.ScanLayout,
		AccuracyMode:          c.AccuracyMode,
		RecallSampleRate:      c.RecallSampleRate,
		Logger:                c.Logger,
		DriftAlertRatio:       c.DriftAlertRatio,
		ProfileLabels:         c.ProfileLabels,
		SLO:                   c.SLO,
	}
}

// Build trains a VAQ index over data (each row one vector, all rows the
// same length) and encodes all of it. Build learns from the data itself;
// use BuildWithTrainingSet to learn from a sample.
func Build(data [][]float32, cfg Config) (*Index, error) {
	m, err := vec.FromRows(data)
	if err != nil {
		return nil, fmt.Errorf("vaq: %w", err)
	}
	return buildMatrices(m, m, cfg)
}

// BuildWithTrainingSet trains dictionaries on train and encodes data.
func BuildWithTrainingSet(train, data [][]float32, cfg Config) (*Index, error) {
	tm, err := vec.FromRows(train)
	if err != nil {
		return nil, fmt.Errorf("vaq: train: %w", err)
	}
	dm, err := vec.FromRows(data)
	if err != nil {
		return nil, fmt.Errorf("vaq: data: %w", err)
	}
	return buildMatrices(tm, dm, cfg)
}

// BuildFlat trains an index over n vectors of dimension d stored
// contiguously in row-major order (no copy is made; the caller must not
// mutate data afterwards).
func BuildFlat(data []float32, n, d int, cfg Config) (*Index, error) {
	if n <= 0 || d <= 0 || len(data) != n*d {
		return nil, errors.New("vaq: flat data must have length n*d with n, d > 0")
	}
	m := &vec.Matrix{Rows: n, Cols: d, Data: data}
	return buildMatrices(m, m, cfg)
}

func buildMatrices(train, data *vec.Matrix, cfg Config) (*Index, error) {
	inner, err := core.Build(train, data, cfg.toCore())
	if err != nil {
		return nil, fmt.Errorf("vaq: %w", err)
	}
	return &Index{inner: inner}, nil
}

// Len reports the number of encoded vectors.
func (ix *Index) Len() int { return ix.inner.Len() }

// Dim reports the expected query dimensionality.
func (ix *Index) Dim() int { return ix.inner.Dim() }

// Search returns the approximate k nearest neighbors of q with the index's
// default pruning settings.
func (ix *Index) Search(q []float32, k int) ([]Result, error) {
	return ix.SearchWith(q, k, SearchOptions{})
}

// SearchWith returns the approximate k nearest neighbors under explicit
// options.
func (ix *Index) SearchWith(q []float32, k int, opt SearchOptions) ([]Result, error) {
	res, err := ix.inner.SearchWith(q, k, core.SearchOptions{
		Mode:      opt.Mode,
		VisitFrac: opt.VisitFrac,
		Subspaces: opt.Subspaces,
	})
	if err != nil {
		return nil, fmt.Errorf("vaq: %w", err)
	}
	return toResults(res), nil
}

func toResults(res []vec.Neighbor) []Result {
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = Result{ID: r.ID, Dist: r.Dist}
	}
	return out
}

// Stats describes a built index.
type Stats struct {
	// N is the number of encoded vectors; Dim the input dimensionality.
	N, Dim int
	// BitsPerSubspace is the adaptive allocation, most important
	// subspace first.
	BitsPerSubspace []int
	// SubspaceLengths is the number of (PCA) dimensions per subspace.
	SubspaceLengths []int
	// SubspaceVariances is each subspace's share of explained variance.
	SubspaceVariances []float64
	// CodeBytes is the packed size of the encoded dataset.
	CodeBytes int
	// TIClusters is the number of data-skipping clusters built.
	TIClusters int
	// Layout is the physical scan layout the query kernels use.
	Layout ScanLayout
	// Accuracy is the scan arithmetic mode the query kernels use.
	Accuracy AccuracyMode
}

// Stats returns a description of the trained index — the adaptive bit
// allocation, the subspace layout and the storage footprint.
func (ix *Index) Stats() Stats {
	return Stats{
		N:                 ix.inner.Len(),
		Dim:               ix.inner.Dim(),
		BitsPerSubspace:   ix.inner.Bits(),
		SubspaceLengths:   ix.inner.SubspaceLengths(),
		SubspaceVariances: ix.inner.SubspaceVariances(),
		CodeBytes:         ix.inner.CodeBytes(),
		TIClusters:        ix.inner.TIClusterCount(),
		Layout:            ix.inner.Layout(),
		Accuracy:          ix.inner.Accuracy(),
	}
}

// SetAccuracyMode switches the scan arithmetic at runtime — the opt-in
// hook for indexes loaded from disk, whose serialized form carries no
// accuracy mode (the integer store is derived, never stored). Switching
// to AccuracyFast builds the integer store; switching back to
// AccuracyExact drops it. In-flight queries finish on the mode they
// started with.
func (ix *Index) SetAccuracyMode(mode AccuracyMode) error {
	if err := ix.inner.SetAccuracyMode(mode); err != nil {
		return fmt.Errorf("vaq: %w", err)
	}
	return nil
}

// SearchStats instruments one query: how much work each pruning layer
// saved (see the field docs in internal/core.SearchStats).
type SearchStats = core.SearchStats

// Searcher is a reusable per-goroutine query context that avoids the
// per-query allocation of lookup tables. Not safe for concurrent use;
// create one per goroutine.
type Searcher struct {
	inner *core.Searcher
}

// LastStats reports the pruning instrumentation of the most recent query
// run through this Searcher.
func (s *Searcher) LastStats() SearchStats { return s.inner.LastStats() }

// NewSearcher returns a reusable query context for this index.
func (ix *Index) NewSearcher() *Searcher {
	return &Searcher{inner: ix.inner.NewSearcher()}
}

// Search runs one query through the reusable context.
func (s *Searcher) Search(q []float32, k int, opt SearchOptions) ([]Result, error) {
	res, err := s.inner.Search(q, k, core.SearchOptions{
		Mode:      opt.Mode,
		VisitFrac: opt.VisitFrac,
		Subspaces: opt.Subspaces,
	})
	if err != nil {
		return nil, fmt.Errorf("vaq: %w", err)
	}
	return toResults(res), nil
}
