package vaq

import (
	"io"

	"vaq/internal/diag"
)

// IndexReport is a point-in-time quality assessment of a built index: per
// subspace, the variance the allocator weighted it by, the bits it got,
// the quantization MSE it produces (absolute and as a share of the
// subspace's energy), and codeword-utilization statistics (entropy, dead
// codewords, a log2 occupancy histogram); index-wide, the total
// reconstruction error against the exact projected vectors, the
// triangle-inequality cluster balance, and the online drift status. The
// JSON schema is documented in DESIGN.md §7.
type IndexReport = diag.Report

// SubspaceReport is the per-subspace slice of an IndexReport.
type SubspaceReport = diag.SubspaceReport

// TIBalanceReport summarizes how evenly the triangle-inequality clusters
// split the dataset (min/max/mean sizes, Gini coefficient, imbalance).
type TIBalanceReport = diag.TIBalanceReport

// DriftReport is the online quantization-drift status: the EWMA
// reconstruction MSE of vectors folded in by Add, per subspace and as a
// ratio over the Build-time baseline.
type DriftReport = diag.DriftReport

// Values of IndexReport.MSESource.
const (
	// MSESourceFresh: the distortion fields were recomputed against
	// retained projected vectors covering the whole current dataset
	// (the index was built with RecallSampleRate > 0, so it retains
	// them; Add keeps the retained set complete).
	MSESourceFresh = diag.MSEFresh
	// MSESourceBaseline: the distortion fields are carried forward from
	// the Build-time baseline; vectors added since Build are reflected
	// only in the drift gauges.
	MSESourceBaseline = diag.MSEBaseline
)

// Diagnose computes a fresh IndexReport. Codeword utilization and cluster
// balance are always recomputed from the live index; the distortion (MSE)
// fields come from retained projected vectors when available, else from
// the Build-time baseline, else the report is explicitly Partial (an
// index loaded from disk retains neither — the baseline is runtime-only).
// Cost: one pass over the codes, plus one pass over the projected vectors
// when they are retained. Safe to call concurrently with Search and Add.
func (ix *Index) Diagnose() *IndexReport { return ix.inner.Diagnose() }

// PublishDiagnostics registers this index under name for the
// /debug/vaq/report HTTP handler (served by ServeDebug alongside
// /debug/vars, /debug/vaq/metrics and /debug/vaq/traces): JSON by
// default, ?format=text for a human-readable dump, ?index=NAME to select
// one index. The report is recomputed on every scrape, so it always
// reflects the current index state. It also labels this index's CPU
// profile samples with name when Config.ProfileLabels is on.
func (ix *Index) PublishDiagnostics(name string) {
	ix.inner.SetProfileLabel(name)
	diag.Publish(name, func() *IndexReport { return ix.inner.Diagnose() })
}

// UnpublishDiagnostics removes a name registered by PublishDiagnostics.
func UnpublishDiagnostics(name string) { diag.Publish(name, nil) }

// WriteReportText renders an IndexReport as the human-readable table the
// /debug/vaq/report?format=text endpoint and the vaqdiag CLI print.
func WriteReportText(w io.Writer, r *IndexReport) error { return diag.WriteText(w, r) }

// EnableProfileLabels turns on runtime/pprof phase labels (vaq_phase =
// project | lut_fill | scan, index = the given name) for an index whose
// build config did not request them — typically one loaded from disk,
// since ProfileLabels is a runtime knob that is never serialized. CPU
// profiles taken from /debug/pprof/profile then attribute samples to
// search phases. Safe while queries are in flight.
func (ix *Index) EnableProfileLabels(name string) { ix.inner.EnableProfileLabels(name) }
