// Image-descriptor search: a SIFT-like workload with a separate training
// sample, comparing VAQ against exact search and reporting the
// compression achieved. This is the "encode once, search in memory"
// deployment the paper targets (paper §I).
//
//	go run ./examples/imagedescriptors
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"vaq"
	"vaq/internal/dataset"
	"vaq/internal/eval"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	// 30k database descriptors, trained on a 10k sample.
	base := dataset.SyntheticSIFT(rng, 30000, 128)
	train := base.SliceRows(0, 10000)
	queries := dataset.NoisyQueries(rng, base, 40, 0.02, 0.2)

	trainRows := make([][]float32, train.Rows)
	for i := range trainRows {
		trainRows[i] = train.Row(i)
	}
	baseRows := make([][]float32, base.Rows)
	for i := range baseRows {
		baseRows[i] = base.Row(i)
	}

	start := time.Now()
	ix, err := vaq.BuildWithTrainingSet(trainRows, baseRows, vaq.Config{
		NumSubspaces: 16,
		Budget:       128,
		Seed:         3,
	})
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	stats := ix.Stats()
	rawBytes := base.Rows * base.Cols * 4
	fmt.Printf("encoded %d descriptors: %d KB -> %d KB (%.0fx compression) in %.1fs\n",
		stats.N, rawBytes/1024, stats.CodeBytes/1024,
		float64(rawBytes)/float64(stats.CodeBytes), buildTime.Seconds())
	fmt.Printf("bit allocation: %v\n", stats.BitsPerSubspace)

	// Exact ground truth for the query workload.
	const k = 10
	gt, err := eval.GroundTruth(base, queries, k)
	if err != nil {
		log.Fatal(err)
	}

	for _, visit := range []float64{0.10, 0.25, 1.00} {
		results := make([][]int, queries.Rows)
		start := time.Now()
		for qi := 0; qi < queries.Rows; qi++ {
			res, err := ix.SearchWith(queries.Row(qi), k, vaq.SearchOptions{VisitFrac: visit})
			if err != nil {
				log.Fatal(err)
			}
			ids := make([]int, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			results[qi] = ids
		}
		elapsed := time.Since(start).Seconds() / float64(queries.Rows)
		fmt.Printf("visit %.0f%% of clusters: recall@%d = %.3f, %.2fms/query\n",
			visit*100, k, eval.Recall(results, gt, k), elapsed*1000)
	}
}
