package vaq

import (
	"vaq/internal/alert"
	"vaq/internal/bundle"
)

// BundleConfig tunes a flight recorder: the bundle directory, the
// metric-snapshot ring cadence/size, the post-trigger delay, the automatic
// bundle cap, and the shape of the workload ring installed when no capture
// is attached (see the field docs in internal/bundle.Config).
type BundleConfig = bundle.Config

// FlightRecorder is an armed incident recorder: it watches the index's
// alert bus and freezes recent context into incident bundles. Obtain one
// with EnableFlightRecorder; it also supports manual Trigger and exposes a
// point-in-time Status.
type FlightRecorder = bundle.Recorder

// BundleManifest is an incident bundle's completion marker: format
// version, index provenance, the trigger, and per-file integrity records.
// The bundle layout is documented in DESIGN.md.
type BundleManifest = bundle.Manifest

// ValidateBundle integrity-checks one incident-bundle directory (manifest
// version, per-file sizes and sha256s, JSON well-formedness, workload-log
// decode) and returns its manifest.
func ValidateBundle(dir string) (*BundleManifest, error) { return bundle.Validate(dir) }

// ListBundles loads the manifests of every complete bundle under root,
// ordered by sequence.
func ListBundles(root string) ([]*BundleManifest, error) { return bundle.List(root) }

// AlertBus is the index's registry of named edge-latched alert sources
// (vaq.drift, vaq.skew, vaq.slo.latency, vaq.slo.recall). Subscribers see
// one event per breach/recovery edge; the flight recorder is its built-in
// consumer.
type AlertBus = alert.Bus

// AlertEvent is one breach or recovery edge published on the AlertBus.
type AlertEvent = alert.Event

// AlertStatus is one alert source's point-in-time state.
type AlertStatus = alert.Status

// Alerts returns the index's alert bus, or nil when metrics are disabled.
// Drift and SLO latches publish their breach/recovery edges here.
func (ix *Index) Alerts() *AlertBus { return ix.inner.Metrics().Alerts() }

// EnableFlightRecorder arms a flight recorder on the index: on any alert
// breach edge (or FlightRecorder.Trigger), the recent context — metrics
// snapshot and windowed history, alert history, query traces, a replayable
// .vaqwl of recent sampled queries, the IndexReport, runtime stats — is
// frozen into a versioned incident bundle under cfg.Dir. name is stamped
// into each bundle's provenance. When no workload capture is attached, a
// ring-shaped one is installed so bundles always carry a replayable log.
// Armed but idle, the query path cost is unchanged (the recorder
// subscribes to the alert bus; it is never consulted per query). Disarm
// with DisableFlightRecorder.
func (ix *Index) EnableFlightRecorder(name string, cfg BundleConfig) (*FlightRecorder, error) {
	return ix.inner.EnableFlightRecorder(name, cfg)
}

// DisableFlightRecorder disarms the flight recorder, flushing pending
// alert-triggered bundles first. No-op when none is armed.
func (ix *Index) DisableFlightRecorder() error { return ix.inner.DisableFlightRecorder() }

// FlightRecorder returns the armed recorder, or nil.
func (ix *Index) FlightRecorder() *FlightRecorder { return ix.inner.FlightRecorder() }

// Alerts returns the sharded index's alert bus (vaq.skew, vaq.slo.*), or
// nil when metrics are disabled.
func (ix *ShardedIndex) Alerts() *AlertBus { return ix.inner.Metrics().Alerts() }

// EnableFlightRecorder arms a flight recorder on the sharded index — same
// contract as the unsharded one, with the bundle's workload log carrying
// the merged (global) result lists and shard count, so the embedded
// .vaqwl replays through the same scatter shape.
func (ix *ShardedIndex) EnableFlightRecorder(name string, cfg BundleConfig) (*FlightRecorder, error) {
	return ix.inner.EnableFlightRecorder(name, cfg)
}

// DisableFlightRecorder disarms the flight recorder, flushing pending
// alert-triggered bundles first. No-op when none is armed.
func (ix *ShardedIndex) DisableFlightRecorder() error { return ix.inner.DisableFlightRecorder() }

// FlightRecorder returns the armed recorder, or nil.
func (ix *ShardedIndex) FlightRecorder() *FlightRecorder { return ix.inner.FlightRecorder() }
