package vaq

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
)

func metricsTestIndex(t testing.TB, n, d int, cfg Config) (*Index, [][]float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	data := make([][]float32, n)
	for i := range data {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(rng.NormFloat64()) / float32(j+1)
		}
		data[i] = v
	}
	ix, err := Build(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix, data
}

// TestBatchMetricsMatchSerialReplay is the race-detector workhorse: many
// workers hammer the shared registry through SearchBatch, and the
// aggregated counters must equal the sum of per-query SearchStats from a
// serial replay of the same workload (each query's stats are independent
// of execution order, so the totals are deterministic).
func TestBatchMetricsMatchSerialReplay(t *testing.T) {
	ix, data := metricsTestIndex(t, 2000, 24, Config{NumSubspaces: 8, Budget: 64, Seed: 5})
	queries := data[:300]
	opt := SearchOptions{VisitFrac: 0.5}

	if _, err := ix.SearchBatch(queries, 10, opt, 8); err != nil {
		t.Fatal(err)
	}
	batch := ix.Metrics()

	// Serial replay through one Searcher, summing LastStats per query.
	// Runs after the batch snapshot was taken, so its own recording
	// cannot contaminate the comparison.
	s := ix.NewSearcher()
	var want MetricsSnapshot
	for qi, q := range queries {
		if _, err := s.Search(q, 10, opt); err != nil {
			t.Fatalf("replay query %d: %v", qi, err)
		}
		st := s.LastStats()
		want.Queries++
		want.ClustersVisited += uint64(st.ClustersVisited)
		want.CodesConsidered += uint64(st.CodesConsidered)
		want.CodesSkippedTI += uint64(st.CodesSkippedTI)
		want.CodesAbandonedEA += uint64(st.CodesAbandonedEA)
		want.Lookups += uint64(st.Lookups)
	}

	if batch.Queries != want.Queries {
		t.Errorf("queries: batch %d, serial %d", batch.Queries, want.Queries)
	}
	if batch.ClustersVisited != want.ClustersVisited {
		t.Errorf("clusters visited: batch %d, serial %d", batch.ClustersVisited, want.ClustersVisited)
	}
	if batch.CodesConsidered != want.CodesConsidered {
		t.Errorf("codes considered: batch %d, serial %d", batch.CodesConsidered, want.CodesConsidered)
	}
	if batch.CodesSkippedTI != want.CodesSkippedTI {
		t.Errorf("codes skipped TI: batch %d, serial %d", batch.CodesSkippedTI, want.CodesSkippedTI)
	}
	if batch.CodesAbandonedEA != want.CodesAbandonedEA {
		t.Errorf("codes abandoned EA: batch %d, serial %d", batch.CodesAbandonedEA, want.CodesAbandonedEA)
	}
	if batch.Lookups != want.Lookups {
		t.Errorf("lookups: batch %d, serial %d", batch.Lookups, want.Lookups)
	}
	if batch.Errors != 0 {
		t.Errorf("unexpected errors counted: %d", batch.Errors)
	}
	if batch.LatencyP50 <= 0 || batch.LatencyMean <= 0 {
		t.Errorf("latency percentiles missing: %+v", batch)
	}
}

func TestMetricsDisabled(t *testing.T) {
	ix, data := metricsTestIndex(t, 500, 8, Config{NumSubspaces: 4, Budget: 16, Seed: 5, DisableMetrics: true})
	if _, err := ix.Search(data[0], 5); err != nil {
		t.Fatal(err)
	}
	if snap := ix.Metrics(); snap.Queries != 0 || snap.Lookups != 0 {
		t.Fatalf("disabled metrics still recorded: %+v", snap)
	}
	ix.ResetMetrics() // must not panic on a nil registry
}

func TestMetricsCountErrors(t *testing.T) {
	ix, data := metricsTestIndex(t, 500, 8, Config{NumSubspaces: 4, Budget: 16, Seed: 5})
	if _, err := ix.Search(data[0], 0); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := ix.Search(make([]float32, 3), 5); err == nil {
		t.Fatal("bad dim must fail")
	}
	snap := ix.Metrics()
	if snap.Errors != 2 {
		t.Fatalf("errors = %d, want 2", snap.Errors)
	}
	if snap.Queries != 0 {
		t.Fatalf("failed searches counted as queries: %d", snap.Queries)
	}
	ix.ResetMetrics()
	if snap := ix.Metrics(); snap.Errors != 0 {
		t.Fatalf("reset left errors = %d", snap.Errors)
	}
}

func TestBuildReportPopulated(t *testing.T) {
	ix, _ := metricsTestIndex(t, 1500, 16, Config{NumSubspaces: 8, Budget: 48, Seed: 5})
	rep := ix.BuildReport()
	if rep.Total <= 0 {
		t.Fatalf("total build time %v", rep.Total)
	}
	phases := rep.PCA + rep.Allocation + rep.Training + rep.Encoding + rep.TIClustering
	if phases <= 0 || phases > rep.Total {
		t.Fatalf("phase sum %v vs total %v", phases, rep.Total)
	}
	if rep.Training <= 0 || rep.Encoding <= 0 {
		t.Fatalf("dictionary phases missing: %+v", rep)
	}
}

func TestPublishExpvarServesIndexMetrics(t *testing.T) {
	ix, data := metricsTestIndex(t, 500, 8, Config{NumSubspaces: 4, Budget: 16, Seed: 5})
	if _, err := ix.Search(data[1], 3); err != nil {
		t.Fatal(err)
	}
	ix.PublishExpvar("vaq_public_test_index")
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"vaq_public_test_index"`) {
		t.Fatalf("expvar output missing index metrics")
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("unmarshal /debug/vars: %v", err)
	}
	var snap struct {
		Queries uint64 `json:"queries"`
	}
	if err := json.Unmarshal(vars["vaq_public_test_index"], &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Queries != 1 {
		t.Fatalf("served queries = %d, want 1", snap.Queries)
	}
}

// TestSearchBatchErrorContract pins the documented batch semantics: a
// fully valid batch returns a nil error (errors.Join of no errors); k < 1
// is rejected up front; and per-query faults fail only their own slot —
// the rest of the batch completes with results and telemetry, each failed
// query increments the registry's error counter exactly once (not once per
// batch), and the joined error names every failed index.
func TestSearchBatchErrorContract(t *testing.T) {
	ix, data := metricsTestIndex(t, 600, 8, Config{NumSubspaces: 4, Budget: 16, Seed: 5})
	queries := data[:40]
	out, err := ix.SearchBatch(queries, 5, SearchOptions{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range out {
		if len(res) != 5 {
			t.Fatalf("query %d: %d results", i, len(res))
		}
	}
	if out, err := ix.SearchBatch(queries, 0, SearchOptions{}, 4); err == nil || out != nil {
		t.Fatalf("k=0 must fail upfront, got out=%v err=%v", out != nil, err)
	}

	// Mixed batch: two wrong-dimension queries among good ones.
	badA := 3
	mixed := make([][]float32, 0, len(queries)+2)
	mixed = append(mixed, queries[:badA]...)
	mixed = append(mixed, make([]float32, 3))
	mixed = append(mixed, queries[badA:]...)
	mixed = append(mixed, make([]float32, 1))
	badB := len(mixed) - 1

	before := ix.Metrics()
	out, err = ix.SearchBatch(mixed, 5, SearchOptions{}, 4)
	if err == nil {
		t.Fatal("mixed batch must return the joined per-query errors")
	}
	if out == nil {
		t.Fatal("mixed batch must still return the good results")
	}
	for _, bad := range []int{badA, badB} {
		if out[bad] != nil {
			t.Errorf("failed query %d has non-nil results", bad)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("query %d", bad)) {
			t.Errorf("joined error does not name query %d: %v", bad, err)
		}
	}
	for i, res := range out {
		if i == badA || i == badB {
			continue
		}
		if len(res) != 5 {
			t.Errorf("good query %d: %d results", i, len(res))
		}
	}
	diff := ix.Metrics()
	if got := diff.Errors - before.Errors; got != 2 {
		t.Errorf("errors counted = %d, want exactly one per failed query (2)", got)
	}
	if got := diff.Queries - before.Queries; got != uint64(len(queries)) {
		t.Errorf("good queries recorded = %d, want %d", got, len(queries))
	}
}
