package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"vaq/internal/core"
	"vaq/internal/diag"
	"vaq/internal/trace"
	"vaq/internal/vec"
	"vaq/internal/workload"
)

// TestShardedTraceSpans pins the parent-trace shape for one scatter:
// Workers:1 serializes the shards, so after the first shard fills the
// tracker every later fold runs under a published bound and at least one
// bound-feedback event is guaranteed.
func TestShardedTraceSpans(t *testing.T) {
	data := testData(t, 800, 24, 23)
	cfg := core.Config{NumSubspaces: 6, Budget: 30, Seed: 24}
	x := mustBuild(t, data, cfg, Options{Shards: 4, Workers: 1})
	tr := x.EnableTracing(trace.Config{})
	q := testData(t, 1, 24, 25).Row(0)
	res, err := x.Search(q, 10, core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := tr.Recent()
	if len(rec) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(rec))
	}
	qt := rec[0]
	if qt.K != 10 {
		t.Errorf("trace K = %d, want 10", qt.K)
	}

	// One wait + one scan span per shard, shards 0..3 each exactly once.
	scans := map[int]trace.Span{}
	waits := map[int]trace.Span{}
	var feedback, merges []trace.Span
	for _, sp := range qt.Spans {
		switch sp.Name {
		case trace.SpanShardScan:
			if _, dup := scans[sp.Shard]; dup {
				t.Errorf("duplicate scan span for shard %d", sp.Shard)
			}
			scans[sp.Shard] = sp
		case trace.SpanShardWait:
			waits[sp.Shard] = sp
		case trace.SpanBoundFeedback:
			feedback = append(feedback, sp)
		case trace.SpanShardMerge:
			merges = append(merges, sp)
		default:
			t.Errorf("unexpected span %q in a sharded parent trace", sp.Name)
		}
	}
	if len(scans) != 4 || len(waits) != 4 {
		t.Fatalf("got %d scan / %d wait spans, want 4 each", len(scans), len(waits))
	}
	if len(merges) != 1 {
		t.Fatalf("got %d merge spans, want 1", len(merges))
	}
	if len(feedback) == 0 {
		t.Fatal("no bound-feedback event in a 4-shard sequential scatter")
	}

	// The per-shard scan attribution must sum to the merged stats the
	// trace carries, and the hit attribution must partition the answer.
	var considered, lookups int
	var hits int
	for si := 0; si < 4; si++ {
		sp := scans[si]
		considered += sp.Count
		lookups += sp.Lookups
		hits += sp.Hits
		if sp.Start != waits[si].Dur {
			t.Errorf("shard %d scan starts at %v, wait ends at %v", si, sp.Start, waits[si].Dur)
		}
		if sp.Dur < 0 {
			t.Errorf("shard %d negative scan duration %v", si, sp.Dur)
		}
	}
	if considered != qt.Stats.CodesConsidered {
		t.Errorf("scan spans consider %d codes, merged stats say %d", considered, qt.Stats.CodesConsidered)
	}
	if lookups != qt.Stats.Lookups {
		t.Errorf("scan spans did %d lookups, merged stats say %d", lookups, qt.Stats.Lookups)
	}
	if hits != len(res) {
		t.Errorf("hit attribution sums to %d, want the full answer %d", hits, len(res))
	}

	// Feedback accounting: every shard that started under a published
	// bound is credited to exactly one event.
	var downstream int
	for _, fb := range feedback {
		if fb.Shard < 0 || fb.Shard >= 4 {
			t.Errorf("feedback from shard %d", fb.Shard)
		}
		if fb.Bound <= 0 {
			t.Errorf("feedback bound %v, want > 0", fb.Bound)
		}
		downstream += fb.Count
	}
	// Workers:1 and len(shard 0) >= k guarantee shards 1..3 all start
	// under a bound.
	if downstream != 3 {
		t.Errorf("feedback credits %d downstream shards, want 3", downstream)
	}

	// Disabling detaches the tracer: subsequent queries record nothing.
	x.DisableTracing()
	if _, err := x.Search(q, 10, core.SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Count(); got != 1 {
		t.Errorf("tracer saw %d queries after DisableTracing, want 1", got)
	}
	if x.Tracer() != nil {
		t.Error("Tracer() non-nil after DisableTracing")
	}
}

// TestShardedCaptureReplay drives the full loop the acceptance criteria
// name: capture on a sharded index, round-trip the log through the v2
// codec, replay against the same index (exact), and replay against
// rebuilds with different shard counts in exhaustive mode (still exact,
// because exhaustive scatter answers are shard-count invariant).
func TestShardedCaptureReplay(t *testing.T) {
	data := testData(t, 500, 24, 26)
	cfg := core.Config{NumSubspaces: 6, Budget: 30, Seed: 27}
	x := mustBuild(t, data, cfg, Options{Shards: 3})
	c := x.EnableCapture(workload.Config{SampleRate: 1})
	queries := testData(t, 15, 24, 28)
	for qi := 0; qi < queries.Rows; qi++ {
		if _, err := x.Search(queries.Row(qi), 10, core.SearchOptions{VisitFrac: 1.0}); err != nil {
			t.Fatal(err)
		}
	}
	x.DisableCapture()
	if x.Capture() != nil {
		t.Error("Capture() non-nil after DisableCapture")
	}
	log := c.Snapshot()
	if len(log.Records) != queries.Rows {
		t.Fatalf("captured %d records, want %d", len(log.Records), queries.Rows)
	}
	if log.Shards != 3 {
		t.Fatalf("log.Shards = %d, want the capturing index's 3", log.Shards)
	}
	if log.Fingerprint != x.ConfigFingerprint() {
		t.Errorf("log fingerprint %q != index %q", log.Fingerprint, x.ConfigFingerprint())
	}

	// Round-trip through the on-disk codec: shard provenance survives.
	path := filepath.Join(t.TempDir(), "sharded.vaqwl")
	if err := log.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := workload.LoadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Shards != 3 || len(loaded.Records) != len(log.Records) {
		t.Fatalf("round trip lost provenance: shards=%d records=%d", loaded.Shards, len(loaded.Records))
	}

	// Same index: bit-exact replay.
	rep, _, err := workload.Replay(loaded, x.ReplayRunner(), workload.Options{
		Thresholds: workload.Thresholds{MinOverlap: 1.0, MaxDistDrift: 0, DistDriftSet: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() || rep.ExactMatches != rep.Queries {
		t.Fatalf("same-index replay diverged: %+v", rep)
	}

	// Different scatter shapes: exhaustive answers are invariant, so the
	// 3-shard capture replays exactly on 1-, 2- and 5-shard rebuilds.
	for _, s := range []int{1, 2, 5} {
		y := mustBuild(t, data, cfg, Options{Shards: s})
		rep, _, err := workload.Replay(loaded, y.ReplayRunner(), workload.Options{
			Thresholds: workload.Thresholds{MinOverlap: 1.0},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Passed() {
			t.Fatalf("replay across scatter shapes (3 captured -> %d replayed) failed: %+v", s, rep.Violations)
		}
		if rep.MeanOverlap != 1.0 {
			t.Fatalf("shards=%d mean overlap %v, want 1.0", s, rep.MeanOverlap)
		}
	}
}

// TestShardsReport pins Report(): scatter shape, per-shard registry
// excerpts, and the merged attribution columns.
func TestShardsReport(t *testing.T) {
	data := testData(t, 400, 16, 29)
	cfg := core.Config{NumSubspaces: 4, Budget: 20, Seed: 30}
	x := mustBuild(t, data, cfg, Options{Shards: 4})
	q := testData(t, 8, 16, 31)
	for qi := 0; qi < q.Rows; qi++ {
		if _, err := x.Search(q.Row(qi), 5, core.SearchOptions{Mode: core.ModeHeap}); err != nil {
			t.Fatal(err)
		}
	}
	rep := x.Report()
	if rep.Shards != 4 || rep.Len != 400 || len(rep.PerShard) != 4 {
		t.Fatalf("report shape: %+v", rep)
	}
	if rep.Merged == nil {
		t.Fatal("report missing merged scatter telemetry")
	}
	if rep.Merged.WindowQueries != 8 {
		t.Errorf("merged window has %d queries, want 8", rep.Merged.WindowQueries)
	}
	var lenSum int
	var critical, hits, queries uint64
	for i, sr := range rep.PerShard {
		if sr.Shard != i {
			t.Errorf("PerShard[%d].Shard = %d", i, sr.Shard)
		}
		lenSum += sr.Len
		critical += sr.CriticalPath
		hits += sr.Hits
		queries += sr.Queries
		if sr.Queries != 8 {
			t.Errorf("shard %d registry has %d queries, want 8", i, sr.Queries)
		}
		if sr.CodesConsidered == 0 {
			t.Errorf("shard %d considered no codes under ModeHeap", i)
		}
	}
	if lenSum != 400 {
		t.Errorf("per-shard lens sum to %d, want 400", lenSum)
	}
	if critical != 8 {
		t.Errorf("critical-path attributions sum to %d, want one per query (8)", critical)
	}
	if hits != 8*5 {
		t.Errorf("hit attributions sum to %d, want k per query (40)", hits)
	}
}

// TestShardsHandler covers the /debug/vaq/shards HTTP surface: JSON map
// keyed by name, index filtering, 404 on unknown, and the text format.
func TestShardsHandler(t *testing.T) {
	data := testData(t, 300, 16, 32)
	cfg := core.Config{NumSubspaces: 4, Budget: 20, Seed: 33}
	x := mustBuild(t, data, cfg, Options{Shards: 2})
	if _, err := x.Search(testData(t, 1, 16, 34).Row(0), 5, core.SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	Publish("sh_test", x)
	defer Publish("sh_test", nil)
	srv := httptest.NewServer(http.HandlerFunc(handleShards))
	defer srv.Close()

	get := func(query string) (string, int) {
		t.Helper()
		resp, err := http.Get(srv.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.StatusCode
	}

	body, code := get("?index=sh_test")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var reports map[string]*ShardsReport
	if err := json.Unmarshal([]byte(body), &reports); err != nil {
		t.Fatalf("response is not the JSON report map: %v\n%s", err, body)
	}
	if rep := reports["sh_test"]; rep == nil || rep.Shards != 2 || len(rep.PerShard) != 2 {
		t.Fatalf("report payload wrong: %+v", reports)
	}

	if _, code := get("?index=no_such"); code != http.StatusNotFound {
		t.Errorf("unknown index: status %d, want 404", code)
	}

	body, code = get("?index=sh_test&format=text")
	if code != http.StatusOK {
		t.Fatalf("text format: status %d", code)
	}
	for _, want := range []string{`== sharded index "sh_test"`, "shards=2", "skew_ratio=", "shard 0", "shard 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("text dump missing %q:\n%s", want, body)
		}
	}
}

// benchShardedTracing measures the sharded hot path with tracing off
// (the atomic tracer/capture pointer loads are the only additions over
// PR 7) versus on (per-shard clocks + parent trace assembly). Compare:
//
//	go test ./internal/shard -bench='ShardedTracing(Off|On)' -count=10 | benchstat
//
// The Off arm is the acceptance bar: within noise of the pre-tracing
// scatter path.
func benchShardedTracing(b *testing.B, traceOn bool) {
	data := testData(b, 8000, 32, 40)
	x := mustBuild(b, data, testConfig(), Options{Shards: 4})
	if traceOn {
		x.EnableTracing(trace.Config{})
	}
	queries := testData(b, 64, 32, 41)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries.Row(i % queries.Rows)
		if _, err := x.Search(q, 10, core.SearchOptions{Mode: core.ModeTIEA, VisitFrac: 0.25}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedTracingOff(b *testing.B) { benchShardedTracing(b, false) }
func BenchmarkShardedTracingOn(b *testing.B)  { benchShardedTracing(b, true) }

// TestConcurrentDiagnoseAddSearch runs diagnostics publication against
// live Add and Search traffic: the -race gate for the observability
// surfaces the satellite demands.
func TestConcurrentDiagnoseAddSearch(t *testing.T) {
	data := testData(t, 400, 16, 35)
	cfg := core.Config{NumSubspaces: 4, Budget: 20, Seed: 36}
	x := mustBuild(t, data, cfg, Options{Shards: 3, SkewAlertRatio: 100})
	x.EnableTracing(trace.Config{RingSize: 16})
	queries := testData(t, 8, 16, 37)
	adds := testData(t, 60, 16, 38)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // diagnostics reader: scrapes while traffic is live
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				x.Diagnose()
				x.PublishDiagnostics("cdas_test")
				x.Report()
				x.Metrics().Snapshot()
			}
		}
	}()

	var workers sync.WaitGroup
	workers.Add(1)
	go func() { // writer: one vector per batch, every batch a fresh matrix
		defer workers.Done()
		for i := 0; i < adds.Rows; i++ {
			row := adds.Row(i)
			m := &vec.Matrix{Rows: 1, Cols: len(row), Data: append([]float32(nil), row...)}
			if _, err := x.Add(m); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < 2; w++ { // searchers
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 50; i++ {
				q := queries.Row(i % queries.Rows)
				if _, err := x.Search(q, 5, core.SearchOptions{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { workers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent observability test wedged")
	}
	close(stop)
	readers.Wait()
	for i := 0; i < x.Shards(); i++ {
		diag.Publish(fmt.Sprintf("cdas_test/shard-%d", i), nil)
	}
	if got := x.Len(); got != 400+adds.Rows {
		t.Fatalf("Len = %d after adds, want %d", got, 400+adds.Rows)
	}
}
