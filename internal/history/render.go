package history

import (
	"fmt"
	"io"
	"time"
)

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders points as a fixed-width ASCII-art trend line, scaling
// to the series' own min/max (a flat series renders as a low bar). Points
// are bucketed left-to-right across the covered time span, so gaps keep
// their width.
func Sparkline(pts []Point, width int) string {
	if len(pts) == 0 || width <= 0 {
		return ""
	}
	lo, hi := pts[0].Val, pts[0].Val
	for _, p := range pts {
		if p.Val < lo {
			lo = p.Val
		}
		if p.Val > hi {
			hi = p.Val
		}
	}
	t0, t1 := pts[0].TS, pts[len(pts)-1].TS
	span := t1 - t0
	// Column means over the covered span.
	sums := make([]float64, width)
	counts := make([]int, width)
	for _, p := range pts {
		col := 0
		if span > 0 {
			col = int(int64(width-1) * (p.TS - t0) / span)
		}
		sums[col] += p.Val
		counts[col]++
	}
	out := make([]rune, 0, width)
	for i := 0; i < width; i++ {
		if counts[i] == 0 {
			out = append(out, ' ')
			continue
		}
		v := sums[i] / float64(counts[i])
		level := 0
		if hi > lo {
			level = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if level < 0 {
			level = 0
		}
		if level >= len(sparkRunes) {
			level = len(sparkRunes) - 1
		}
		out = append(out, sparkRunes[level])
	}
	return string(out)
}

// seriesLine formats one series as a fixed-layout text row: name, newest
// value, sparkline over the merged range, envelope, and point count.
func seriesLine(name, kind string, pts []Point, width int) string {
	if len(pts) == 0 {
		return fmt.Sprintf("  %-24s %12s  (no data)", name, "-")
	}
	lo, hi := pts[0].Val, pts[0].Val
	for _, p := range pts {
		if p.Val < lo {
			lo = p.Val
		}
		if p.Val > hi {
			hi = p.Val
		}
	}
	last := pts[len(pts)-1].Val
	return fmt.Sprintf("  %-24s %12.4g  %s  [%.4g .. %.4g] n=%d %s",
		name, last, Sparkline(pts, width), lo, hi, len(pts), kind)
}

// dumpPoints flattens one dumped series back into its merged Range view:
// long buckets where mid doesn't reach, mid buckets where raw doesn't,
// then the raw points.
func dumpPoints(s *SeriesDump) []Point {
	kind := Gauge
	if s.Kind == "counter" {
		kind = Counter
	}
	oldestRaw := int64(1<<63 - 1)
	if len(s.Raw) > 0 {
		oldestRaw = s.Raw[0].TS
	}
	oldestMid := int64(1<<63 - 1)
	if len(s.Mid) > 0 {
		oldestMid = s.Mid[0].Start
	}
	out := make([]Point, 0, len(s.Raw)+len(s.Mid))
	for _, b := range s.Long {
		if b.End > oldestMid || b.End > oldestRaw {
			continue
		}
		out = append(out, b.point(kind))
	}
	for _, b := range s.Mid {
		if b.End > oldestRaw {
			continue
		}
		out = append(out, b.point(kind))
	}
	return append(out, s.Raw...)
}

// RenderText writes the dump as the /debug/vaq/history?format=text view:
// one block per target, one sparkline row per series.
func RenderText(w io.Writer, d *Dump) {
	fmt.Fprintf(w, "== %s == interval %s, %d samples, captured %s\n",
		d.Collector, time.Duration(d.IntervalMs)*time.Millisecond, d.Samples,
		time.UnixMilli(d.CapturedAtMs).UTC().Format(time.RFC3339))
	for _, t := range d.Targets {
		fmt.Fprintf(w, "-- %s --\n", t.Name)
		for i := range t.Series {
			s := &t.Series[i]
			fmt.Fprintln(w, seriesLine(s.Name, s.Kind, dumpPoints(s), 40))
		}
	}
}

// WriteTrends writes the compact per-series trend summary vaqdiag prints
// for a bundle's history.json: first → last with the envelope, no
// sparklines (diag output is grep-oriented).
func WriteTrends(w io.Writer, d *Dump) {
	for _, t := range d.Targets {
		for i := range t.Series {
			s := &t.Series[i]
			pts := dumpPoints(s)
			if len(pts) == 0 {
				continue
			}
			lo, hi := pts[0].Val, pts[0].Val
			for _, p := range pts {
				if p.Val < lo {
					lo = p.Val
				}
				if p.Val > hi {
					hi = p.Val
				}
			}
			span := time.Duration(pts[len(pts)-1].TS-pts[0].TS) * time.Millisecond
			fmt.Fprintf(w, "    %s/%s: %.4g -> %.4g over %s (min %.4g, max %.4g, n=%d)\n",
				t.Name, s.Name, pts[0].Val, pts[len(pts)-1].Val, span.Round(time.Millisecond),
				lo, hi, len(pts))
		}
	}
}
