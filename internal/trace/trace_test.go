package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vaq/internal/metrics"
)

func mkTrace(total time.Duration) *QueryTrace {
	return &QueryTrace{Start: time.Unix(0, 0), Total: total, Mode: "ti+ea", K: 5}
}

func TestRingWrap(t *testing.T) {
	tr := New(Config{RingSize: 4, SlowThreshold: time.Hour})
	for i := 1; i <= 10; i++ {
		tr.add(mkTrace(time.Duration(i)))
	}
	if tr.Count() != 10 {
		t.Fatalf("Count = %d, want 10", tr.Count())
	}
	rec := tr.Recent()
	if len(rec) != 4 {
		t.Fatalf("Recent kept %d, want ring size 4", len(rec))
	}
	for i, qt := range rec {
		if want := uint64(7 + i); qt.Seq != want {
			t.Errorf("Recent[%d].Seq = %d, want %d (oldest first)", i, qt.Seq, want)
		}
	}
}

func TestSlowReservoir(t *testing.T) {
	tr := New(Config{RingSize: 8, SlowThreshold: 100, Exemplars: 3, Seed: 42})
	tr.add(mkTrace(50)) // below threshold: not an exemplar
	if slow, seen := tr.Slowest(); seen != 0 || len(slow) != 0 {
		t.Fatalf("sub-threshold trace entered the reservoir: %d seen, %d kept", seen, len(slow))
	}
	for i := 0; i < 50; i++ {
		tr.add(mkTrace(time.Duration(100 + i)))
	}
	slow, seen := tr.Slowest()
	if seen != 50 {
		t.Errorf("slowSeen = %d, want 50", seen)
	}
	if len(slow) != 3 {
		t.Fatalf("reservoir kept %d, want 3", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Total > slow[i-1].Total {
			t.Errorf("Slowest not worst-first: %v after %v", slow[i].Total, slow[i-1].Total)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Count() != 0 || tr.Recent() != nil {
		t.Error("nil Tracer reads must be empty")
	}
	if slow, seen := tr.Slowest(); slow != nil || seen != 0 {
		t.Error("nil Tracer Slowest must be empty")
	}
	r := tr.NewRecorder()
	if r != nil {
		t.Fatal("nil Tracer must yield a nil Recorder")
	}
	// Every Recorder method must be a no-op, not a panic.
	r.Begin(time.Millisecond)
	if r.Active() {
		t.Error("nil Recorder is Active")
	}
	if r.Clock() != 0 {
		t.Error("nil Recorder Clock != 0")
	}
	r.Add(Span{Name: SpanScan})
	r.End("ti+ea", 5, metrics.SearchRecord{})
}

func TestRecorderSpanCapAndBackdate(t *testing.T) {
	tr := New(Config{MaxSpans: 2, SlowThreshold: time.Hour})
	r := tr.NewRecorder()
	r.Begin(time.Millisecond) // projection already took 1ms
	for i := 0; i < 5; i++ {
		r.Add(Span{Name: SpanClusterScan})
	}
	r.End("ti+ea", 3, metrics.SearchRecord{Lookups: 9})
	rec := tr.Recent()
	if len(rec) != 1 {
		t.Fatalf("recorded %d traces", len(rec))
	}
	qt := rec[0]
	if len(qt.Spans) != 2 || qt.DroppedSpans != 3 {
		t.Errorf("span cap: kept %d dropped %d, want 2/3", len(qt.Spans), qt.DroppedSpans)
	}
	if qt.Total < time.Millisecond {
		t.Errorf("backdated total %v < 1ms projection", qt.Total)
	}
	if qt.Stats.Lookups != 9 || qt.Mode != "ti+ea" || qt.K != 3 {
		t.Errorf("trace metadata wrong: %+v", qt)
	}
	// The recorder is reusable: a fresh Begin clears spans and drop count.
	r.Begin(0)
	r.End("ea", 1, metrics.SearchRecord{})
	if qt := tr.Recent()[1]; len(qt.Spans) != 0 || qt.DroppedSpans != 0 {
		t.Errorf("Begin did not reset recorder: %+v", qt)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(Config{RingSize: 16, SlowThreshold: 1}) // everything is "slow"
	var wg sync.WaitGroup
	const workers, perWorker = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := tr.NewRecorder()
			for i := 0; i < perWorker; i++ {
				r.Begin(0)
				r.Add(Span{Name: SpanLUTFill})
				r.End("ti+ea", 5, metrics.SearchRecord{})
			}
		}()
	}
	done := make(chan struct{})
	go func() { // concurrent readers against the lock-free ring
		for {
			select {
			case <-done:
				return
			default:
				tr.Recent()
				tr.Slowest()
			}
		}
	}()
	wg.Wait()
	close(done)
	if tr.Count() != workers*perWorker {
		t.Fatalf("Count = %d, want %d", tr.Count(), workers*perWorker)
	}
	if _, seen := tr.Slowest(); seen != workers*perWorker {
		t.Fatalf("slowSeen = %d, want %d", seen, workers*perWorker)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	qt := &QueryTrace{
		Seq: 7, Start: time.Unix(1, 0), Total: time.Millisecond, Mode: "ti+ea", K: 5,
		Stats: metrics.SearchRecord{CodesConsidered: 10, Lookups: 30},
		Spans: []Span{
			{Name: SpanLUTFill, Start: 0, Dur: 50 * time.Microsecond},
			{Name: SpanClusterScan, Start: 60 * time.Microsecond, Dur: 200 * time.Microsecond,
				Cluster: 9, Rank: 0, Count: 4, SkippedTI: 1, Lookups: 12},
		},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*QueryTrace{qt}); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 3 { // query + 2 spans
		t.Fatalf("%d events, want 3", len(events))
	}
	top := events[0]
	if top["name"] != "query" || top["ph"] != "X" || top["dur"].(float64) != 1000 {
		t.Errorf("query event wrong: %v", top)
	}
	if top["tid"].(float64) != 7 {
		t.Errorf("tid = %v, want the query seq", top["tid"])
	}
	var scan map[string]any
	for _, ev := range events {
		if ev["name"] == SpanClusterScan {
			scan = ev
		}
	}
	if scan == nil {
		t.Fatal("cluster_scan event missing")
	}
	args := scan["args"].(map[string]any)
	if args["cluster"].(float64) != 9 || args["lookups"].(float64) != 12 {
		t.Errorf("cluster_scan args wrong: %v", args)
	}
}

func TestWriteText(t *testing.T) {
	qt := mkTrace(3 * time.Millisecond)
	qt.Seq = 2
	qt.Spans = []Span{{Name: SpanClusterRank, Dur: time.Microsecond, Count: 10}}
	qt.DroppedSpans = 4
	var buf bytes.Buffer
	if err := WriteText(&buf, []*QueryTrace{qt}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"query #2", "mode=ti+ea", SpanClusterRank, "count=10", "+4 spans dropped"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
}

func TestTracesHandler(t *testing.T) {
	tr := New(Config{RingSize: 8, SlowThreshold: 100, Seed: 9})
	tr.add(mkTrace(50))
	tr.add(mkTrace(500))
	Publish("th_test", tr)
	defer Publish("th_test", nil)
	srv := httptest.NewServer(http.HandlerFunc(handleTraces))
	defer srv.Close()

	get := func(query string) (string, *http.Response) {
		t.Helper()
		resp, err := http.Get(srv.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp
	}

	body, resp := get("?name=th_test")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(body, `tracer "th_test": 2 traces recorded`) ||
		!strings.Contains(body, "query #1") || !strings.Contains(body, "query #2") {
		t.Errorf("text dump incomplete:\n%s", body)
	}

	if _, resp := get("?name=no_such_tracer"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown tracer: status %d, want 404", resp.StatusCode)
	}

	body, resp = get("?name=th_test&format=chrome")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("chrome format content type %q", ct)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("chrome endpoint not JSON: %v", err)
	}
	if len(events) != 2 {
		t.Errorf("%d chrome events, want 2", len(events))
	}

	// slow=1 restricts to the exemplar reservoir (only the 500ns trace).
	body, _ = get("?name=th_test&slow=1")
	if !strings.Contains(body, "1 over the") || !strings.Contains(body, "query #2") ||
		strings.Contains(body, "query #1 ") {
		t.Errorf("slow filter wrong:\n%s", body)
	}

	// Unpublished names disappear.
	Publish("th_test", nil)
	if _, resp := get("?name=th_test"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unpublished tracer still served: %d", resp.StatusCode)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.RingSize != 128 || cfg.SlowThreshold != 10*time.Millisecond ||
		cfg.Exemplars != 16 || cfg.MaxSpans != 192 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	tr := New(Config{})
	if got := tr.Config(); got != cfg {
		t.Fatalf("New did not apply defaults: %+v", got)
	}
	_ = fmt.Sprintf("%v", tr.Config()) // Config must stay printable
}
