// Package hnsw implements the Hierarchical Navigable Small World graph
// index (Malkov & Yashunin; paper §II-C "State of the Art" and Figure 12).
// It is a from-scratch implementation of the standard algorithm: an
// exponentially-leveled multi-layer proximity graph, greedy descent through
// the upper layers, beam search (efSearch) at the base layer, and the
// neighbor-selection heuristic that keeps graphs navigable on clustered
// data.
package hnsw

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"vaq/internal/vec"
)

// Config controls graph construction.
type Config struct {
	// M is the out-degree target for upper layers (base layer allows 2M).
	M int
	// EFConstruction is the beam width during insertion.
	EFConstruction int
	// Seed drives level sampling.
	Seed int64
	// Heuristic enables the diversity-aware neighbor selection of the
	// HNSW paper (select-neighbors-heuristic); plain closest-M otherwise.
	Heuristic bool
}

// Index is a built HNSW graph over an in-memory vector matrix.
type Index struct {
	data       *vec.Matrix
	links      [][][]int32 // links[level][node] = neighbor ids
	maxLevel   int
	entryPoint int32
	m          int
	mMax0      int
	efC        int
	levelMult  float64
	rng        *rand.Rand
	n          int
}

// Build constructs the graph by inserting every row of data.
func Build(data *vec.Matrix, cfg Config) (*Index, error) {
	if data.Rows == 0 {
		return nil, fmt.Errorf("hnsw: empty data")
	}
	if cfg.M < 2 {
		return nil, fmt.Errorf("hnsw: M must be >= 2, got %d", cfg.M)
	}
	if cfg.EFConstruction < cfg.M {
		return nil, fmt.Errorf("hnsw: EFConstruction %d must be >= M %d", cfg.EFConstruction, cfg.M)
	}
	ix := &Index{
		data:       data,
		m:          cfg.M,
		mMax0:      2 * cfg.M,
		efC:        cfg.EFConstruction,
		levelMult:  1 / math.Log(float64(cfg.M)),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		entryPoint: -1,
		maxLevel:   -1,
		n:          data.Rows,
	}
	for i := 0; i < data.Rows; i++ {
		ix.insert(int32(i), cfg.Heuristic)
	}
	return ix, nil
}

// Len reports the number of indexed vectors.
func (ix *Index) Len() int { return ix.n }

func (ix *Index) dist(a, b int32) float32 {
	return vec.SquaredL2(ix.data.Row(int(a)), ix.data.Row(int(b)))
}

func (ix *Index) distQ(q []float32, b int32) float32 {
	return vec.SquaredL2(q, ix.data.Row(int(b)))
}

func (ix *Index) randomLevel() int {
	return int(math.Floor(-math.Log(ix.rng.Float64()+1e-12) * ix.levelMult))
}

// candidate heaps: a min-heap on distance for expansion and a max-heap for
// the result set.
type candidate struct {
	id   int32
	dist float32
}

type minHeap []candidate

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type maxHeap []candidate

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// searchLayer runs the beam search of the HNSW paper at one layer,
// returning up to ef closest found nodes.
func (ix *Index) searchLayer(q []float32, entry int32, ef, level int, visited map[int32]bool) []candidate {
	for k := range visited {
		delete(visited, k)
	}
	d0 := ix.distQ(q, entry)
	cands := minHeap{{entry, d0}}
	results := maxHeap{{entry, d0}}
	visited[entry] = true
	for len(cands) > 0 {
		c := heap.Pop(&cands).(candidate)
		if len(results) >= ef && c.dist > results[0].dist {
			break
		}
		for _, nb := range ix.links[level][c.id] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			d := ix.distQ(q, nb)
			if len(results) < ef || d < results[0].dist {
				heap.Push(&cands, candidate{nb, d})
				heap.Push(&results, candidate{nb, d})
				if len(results) > ef {
					heap.Pop(&results)
				}
			}
		}
	}
	out := make([]candidate, len(results))
	copy(out, results)
	return out
}

// selectNeighbors picks up to m links for a new node. With the heuristic
// enabled, a candidate is kept only if it is closer to the query than to
// every already-kept neighbor (diversity pruning).
func (ix *Index) selectNeighbors(cands []candidate, m int, heuristic bool) []int32 {
	// Sort ascending by distance (insertion sort; candidate sets are small).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].dist < cands[j-1].dist; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	if !heuristic {
		out := make([]int32, 0, m)
		for _, c := range cands {
			if len(out) == m {
				break
			}
			out = append(out, c.id)
		}
		return out
	}
	out := make([]int32, 0, m)
	for _, c := range cands {
		if len(out) == m {
			break
		}
		keep := true
		for _, kept := range out {
			if ix.dist(c.id, kept) < c.dist {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, c.id)
		}
	}
	// Backfill with closest skipped candidates if under-full.
	if len(out) < m {
		have := make(map[int32]bool, len(out))
		for _, id := range out {
			have[id] = true
		}
		for _, c := range cands {
			if len(out) == m {
				break
			}
			if !have[c.id] {
				out = append(out, c.id)
			}
		}
	}
	return out
}

func (ix *Index) insert(id int32, heuristic bool) {
	level := ix.randomLevel()
	for len(ix.links) <= level {
		layer := make([][]int32, ix.n)
		ix.links = append(ix.links, layer)
	}
	if ix.entryPoint < 0 {
		ix.entryPoint = id
		ix.maxLevel = level
		return
	}
	q := ix.data.Row(int(id))
	visited := make(map[int32]bool)
	ep := ix.entryPoint
	// Greedy descent through layers above the node's level.
	for l := ix.maxLevel; l > level; l-- {
		changed := true
		d := ix.distQ(q, ep)
		for changed {
			changed = false
			for _, nb := range ix.links[l][ep] {
				if nd := ix.distQ(q, nb); nd < d {
					d = nd
					ep = nb
					changed = true
				}
			}
		}
	}
	// Connect on each layer from min(level, maxLevel) down to 0.
	top := level
	if top > ix.maxLevel {
		top = ix.maxLevel
	}
	for l := top; l >= 0; l-- {
		cands := ix.searchLayer(q, ep, ix.efC, l, visited)
		mm := ix.m
		if l == 0 {
			mm = ix.mMax0
		}
		neighbors := ix.selectNeighbors(cands, ix.m, heuristic)
		ix.links[l][id] = neighbors
		for _, nb := range neighbors {
			ix.links[l][nb] = append(ix.links[l][nb], id)
			if len(ix.links[l][nb]) > mm {
				// Shrink: keep the mm closest links of nb.
				shrink := make([]candidate, 0, len(ix.links[l][nb]))
				for _, x := range ix.links[l][nb] {
					shrink = append(shrink, candidate{x, ix.dist(nb, x)})
				}
				ix.links[l][nb] = ix.selectNeighbors(shrink, mm, heuristic)
			}
		}
		if len(cands) > 0 {
			// Next layer starts from the best found here.
			best := cands[0]
			for _, c := range cands[1:] {
				if c.dist < best.dist {
					best = c
				}
			}
			ep = best.id
		}
	}
	if level > ix.maxLevel {
		ix.maxLevel = level
		ix.entryPoint = id
	}
}

// Search returns the approximate k nearest neighbors of q using beam width
// efSearch (>= k).
func (ix *Index) Search(q []float32, k, efSearch int) ([]vec.Neighbor, error) {
	if len(q) != ix.data.Cols {
		return nil, fmt.Errorf("hnsw: query dim %d, index dim %d", len(q), ix.data.Cols)
	}
	if k < 1 {
		return nil, fmt.Errorf("hnsw: k must be >= 1, got %d", k)
	}
	if efSearch < k {
		efSearch = k
	}
	ep := ix.entryPoint
	for l := ix.maxLevel; l > 0; l-- {
		changed := true
		d := ix.distQ(q, ep)
		for changed {
			changed = false
			for _, nb := range ix.links[l][ep] {
				if nd := ix.distQ(q, nb); nd < d {
					d = nd
					ep = nb
					changed = true
				}
			}
		}
	}
	visited := make(map[int32]bool)
	cands := ix.searchLayer(q, ep, efSearch, 0, visited)
	tk := vec.NewTopK(k)
	for _, c := range cands {
		tk.Push(int(c.id), c.dist)
	}
	return tk.Results(), nil
}
