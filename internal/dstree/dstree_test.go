package dstree

import (
	"math/rand"
	"sort"
	"testing"

	"vaq/internal/dataset"
	"vaq/internal/eval"
	"vaq/internal/vec"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(vec.NewMatrix(0, 32), Config{}); err == nil {
		t.Fatal("empty must fail")
	}
	if _, err := Build(vec.NewMatrix(5, 4), Config{Segments: 8}); err == nil {
		t.Fatal("segments > length must fail")
	}
}

func TestTreeSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := dataset.RandomWalk(rng, 1000, 64, 0.5)
	ix, err := Build(x, Config{Segments: 8, LeafCapacity: 50})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1000 {
		t.Fatalf("len %d", ix.Len())
	}
	if ix.LeafCount() < 8 {
		t.Fatalf("tree barely split: %d leaves", ix.LeafCount())
	}
}

func TestLowerBoundValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := dataset.RandomWalk(rng, 600, 64, 0.5)
	ix, _ := Build(x, Config{Segments: 8, LeafCapacity: 40})
	q := dataset.NoisyQueries(rng, x, 1, 0.1, 0.1).Row(0)
	qStats := make([]segStats, ix.segments)
	ix.computeStats(q, qStats)
	var walk func(nd *node)
	walk = func(nd *node) {
		lb := ix.lowerBoundSq(qStats, nd)
		if nd.children[0] != nil {
			walk(nd.children[0])
			walk(nd.children[1])
			return
		}
		for _, id := range nd.members {
			true_ := vec.SquaredL2(q, x.Row(int(id)))
			if lb > true_+1e-2 {
				t.Fatalf("EAPCA bound %v exceeds true %v", lb, true_)
			}
		}
	}
	walk(ix.root)
}

func TestExactSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := dataset.RandomWalk(rng, 1200, 64, 0.5)
	ix, _ := Build(x, Config{Segments: 8, LeafCapacity: 40})
	queries := dataset.NoisyQueries(rng, x, 10, 0.05, 0.2)
	gt, _ := eval.GroundTruth(x, queries, 5)
	for qi := 0; qi < queries.Rows; qi++ {
		res, err := ix.SearchEpsilon(queries.Row(qi), 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := eval.IDs(res)
		sort.Ints(got)
		want := append([]int(nil), gt[qi]...)
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d: %v != %v", qi, got, want)
			}
		}
	}
}

func TestApproxMonotoneInLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := dataset.RandomWalk(rng, 2000, 64, 0.4)
	ix, _ := Build(x, Config{Segments: 8, LeafCapacity: 50})
	queries := dataset.NoisyQueries(rng, x, 12, 0.05, 0.3)
	gt, _ := eval.GroundTruth(x, queries, 10)
	recallAt := func(leaves int) float64 {
		results := make([][]int, queries.Rows)
		for qi := 0; qi < queries.Rows; qi++ {
			res, _ := ix.SearchApprox(queries.Row(qi), 10, leaves)
			results[qi] = eval.IDs(res)
		}
		return eval.Recall(results, gt, 10)
	}
	rAll := recallAt(ix.LeafCount())
	if rAll < 0.999 {
		t.Fatalf("all leaves must be exact: %v", rAll)
	}
	r1 := recallAt(1)
	if r1 > rAll+1e-9 {
		t.Fatalf("1 leaf cannot beat all leaves: %v vs %v", r1, rAll)
	}
	// Approximate search should still find a decent share in one leaf
	// (the most promising leaf by lower bound).
	if r1 < 0.05 {
		t.Fatalf("1-leaf recall implausibly low: %v", r1)
	}
}

func TestSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := dataset.RandomWalk(rng, 100, 32, 0.5)
	ix, _ := Build(x, Config{Segments: 8, LeafCapacity: 20})
	if _, err := ix.SearchApprox(make([]float32, 3), 5, 1); err == nil {
		t.Fatal("bad query length must fail")
	}
	if _, err := ix.SearchApprox(x.Row(0), 0, 1); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := ix.SearchEpsilon(x.Row(0), 5, -0.5); err == nil {
		t.Fatal("negative epsilon must fail")
	}
}

func TestIdenticalSeriesLeaf(t *testing.T) {
	// All-identical data cannot split; must stay a single (oversized) leaf
	// and still answer queries.
	x := vec.NewMatrix(300, 32)
	for i := 0; i < 300; i++ {
		for j := 0; j < 32; j++ {
			x.Set(i, j, float32(j))
		}
	}
	ix, err := Build(x, Config{Segments: 4, LeafCapacity: 50})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.SearchEpsilon(x.Row(0), 3, 0)
	if err != nil || len(res) != 3 {
		t.Fatalf("degenerate search: %v %v", res, err)
	}
	if res[0].Dist != 0 {
		t.Fatalf("identical series distance %v", res[0].Dist)
	}
}
