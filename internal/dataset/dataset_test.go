package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"vaq/internal/pca"
	"vaq/internal/vec"
)

func TestLargeSpecs(t *testing.T) {
	for _, spec := range LargeSpecs {
		ds, err := Large(spec.Name, 300, 10, 42)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if ds.Dim() != spec.Dim {
			t.Fatalf("%s: dim %d want %d", spec.Name, ds.Dim(), spec.Dim)
		}
		if ds.Base.Rows != 300 || ds.Queries.Rows != 10 {
			t.Fatalf("%s: shapes %d %d", spec.Name, ds.Base.Rows, ds.Queries.Rows)
		}
		if ds.Train != ds.Base {
			t.Fatalf("%s: train should alias base", spec.Name)
		}
	}
	if _, err := Large("NOPE", 10, 1, 1); err == nil {
		t.Fatal("unknown name must fail")
	}
}

func TestLargeDeterministic(t *testing.T) {
	a, _ := Large("SIFT", 100, 5, 7)
	b, _ := Large("SIFT", 100, 5, 7)
	if !a.Base.Equal(b.Base) || !a.Queries.Equal(b.Queries) {
		t.Fatal("same seed must reproduce data")
	}
	c, _ := Large("SIFT", 100, 5, 8)
	if a.Base.Equal(c.Base) {
		t.Fatal("different seed should differ")
	}
}

func TestSyntheticSIFTRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := SyntheticSIFT(rng, 200, 128)
	for _, v := range x.Data {
		if v < 0 || v > 255 || v != float32(math.Floor(float64(v))) {
			t.Fatalf("SIFT value %v out of quantized [0,255]", v)
		}
	}
}

func TestSyntheticDEEPUnitNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := SyntheticDEEP(rng, 100, 96)
	for i := 0; i < x.Rows; i++ {
		n := vec.Norm(x.Row(i))
		if math.Abs(float64(n)-1) > 1e-5 {
			t.Fatalf("row %d norm %v", i, n)
		}
	}
}

func TestRandomWalkZNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := RandomWalk(rng, 50, 128, 0.5)
	for i := 0; i < x.Rows; i++ {
		r := x.Row(i)
		var sum, ss float64
		for _, v := range r {
			sum += float64(v)
			ss += float64(v) * float64(v)
		}
		if math.Abs(sum/128) > 1e-4 || math.Abs(ss/128-1) > 1e-3 {
			t.Fatalf("row %d not z-normalized: mean %v var %v", i, sum/128, ss/128)
		}
	}
}

// The property the paper builds on (Figure 3): smooth data (SLC-like) must
// concentrate more variance in the first PCs than noisy data (CBF).
func TestSpectrumSkewOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cbf := CBF(rng, 400, 128)
	slc := SLCLike(rng, 400, 128)
	top3 := func(x *vec.Matrix) float64 {
		m, err := pca.Fit(x, pca.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r := m.ExplainedVarianceRatio()
		return r[0] + r[1] + r[2]
	}
	cbfTop, slcTop := top3(cbf), top3(slc)
	if slcTop <= cbfTop {
		t.Fatalf("SLC top-3 PCs explain %v, CBF %v; expected SLC >> CBF", slcTop, cbfTop)
	}
	// Paper's Figure 3: SLC ~85% in first 3, CBF ~60%. Loose bounds:
	if slcTop < 0.6 {
		t.Fatalf("SLC spectrum not skewed enough: %v", slcTop)
	}
}

func TestRandomWalkSmoothnessControlsSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rough := RandomWalk(rng, 300, 64, 0.1)
	smooth := RandomWalk(rng, 300, 64, 0.9)
	top := func(x *vec.Matrix) float64 {
		m, err := pca.Fit(x, pca.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r := m.ExplainedVarianceRatio()
		return r[0] + r[1] + r[2] + r[3]
	}
	if top(smooth) <= top(rough) {
		t.Fatalf("smoothness should increase spectrum skew: %v vs %v", top(smooth), top(rough))
	}
}

func TestNoisyQueriesShapeAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := RandomWalk(rng, 200, 64, 0.5)
	q := NoisyQueries(rng, base, 10, 0.01, 0.2)
	if q.Rows != 10 || q.Cols != 64 {
		t.Fatalf("shape %dx%d", q.Rows, q.Cols)
	}
	// Queries must stay in the data's general range (not garbage).
	for _, v := range q.Data {
		if math.Abs(float64(v)) > 50 {
			t.Fatalf("query value %v out of range", v)
		}
	}
}

func TestUCRGallery(t *testing.T) {
	gallery := UCRGallery(GalleryOptions{Count: 16, Seed: 9, MaxTrain: 400, MaxDim: 128, Queries: 5})
	if len(gallery) != 16 {
		t.Fatalf("gallery size %d", len(gallery))
	}
	seenFamilies := map[string]bool{}
	for _, ds := range gallery {
		if ds.Base.Rows == 0 || ds.Base.Cols == 0 {
			t.Fatalf("%s: empty", ds.Name)
		}
		if ds.Base.Rows > 400 || ds.Base.Cols > 128 {
			t.Fatalf("%s: caps exceeded %dx%d", ds.Name, ds.Base.Rows, ds.Base.Cols)
		}
		if ds.Queries.Rows != 5 {
			t.Fatalf("%s: queries %d", ds.Name, ds.Queries.Rows)
		}
		// z-normalized rows.
		r := ds.Base.Row(0)
		var sum float64
		for _, v := range r {
			sum += float64(v)
		}
		if math.Abs(sum/float64(len(r))) > 1e-3 {
			t.Fatalf("%s: row not z-normalized (mean %v)", ds.Name, sum/float64(len(r)))
		}
		for _, f := range FamilyNames {
			if len(ds.Name) > 8 && containsSub(ds.Name, f) {
				seenFamilies[f] = true
			}
		}
	}
	if len(seenFamilies) < 8 {
		t.Fatalf("only %d families seen", len(seenFamilies))
	}
	// Deterministic.
	again := UCRGallery(GalleryOptions{Count: 16, Seed: 9, MaxTrain: 400, MaxDim: 128, Queries: 5})
	for i := range gallery {
		if !gallery[i].Base.Equal(again[i].Base) {
			t.Fatalf("gallery not deterministic at %d", i)
		}
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestGenerateFamilyFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := GenerateFamily("unknown-family", rng, 20, 32)
	if x.Rows != 20 || x.Cols != 32 {
		t.Fatalf("fallback shape %dx%d", x.Rows, x.Cols)
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := &Dataset{
		Name:    "roundtrip-test",
		Base:    RandomWalk(rng, 20, 16, 0.5),
		Train:   RandomWalk(rng, 10, 16, 0.5),
		Queries: RandomWalk(rng, 5, 16, 0.5),
	}
	var buf bytes.Buffer
	if _, err := ds.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != ds.Name || !got.Base.Equal(ds.Base) ||
		!got.Train.Equal(ds.Train) || !got.Queries.Equal(ds.Queries) {
		t.Fatal("round trip mismatch")
	}
	if _, err := Read(bytes.NewReader([]byte("BAD!....."))); err == nil {
		t.Fatal("bad magic must fail")
	}
}

func TestSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ds := &Dataset{
		Name:    "file-test",
		Base:    CBF(rng, 10, 32),
		Train:   CBF(rng, 10, 32),
		Queries: CBF(rng, 3, 32),
	}
	path := t.TempDir() + "/ds.bin"
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "file-test" || !got.Base.Equal(ds.Base) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := Load(path + ".missing"); err == nil {
		t.Fatal("missing file must fail")
	}
}
