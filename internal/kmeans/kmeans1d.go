package kmeans

import (
	"errors"
	"fmt"
	"math"
)

// Segment1D clusters a slice of values that is sorted in DESCENDING order
// into k contiguous segments, minimizing the within-segment sum of squared
// deviations. This is exactly 1-D k-means on sorted data (where optimal
// clusters are always contiguous), solved exactly by dynamic programming.
//
// VAQ uses it to group dimensions with similar explained variance into
// non-uniform subspaces (paper §III-B, "Clustering of Dimensions"). The
// returned slice holds the segment lengths, summing to len(values); every
// segment is non-empty.
func Segment1D(values []float64, k int) ([]int, error) {
	n := len(values)
	if k < 1 {
		return nil, fmt.Errorf("kmeans: Segment1D needs k >= 1, got %d", k)
	}
	if n == 0 {
		return nil, errors.New("kmeans: Segment1D needs a non-empty input")
	}
	if k > n {
		return nil, fmt.Errorf("kmeans: Segment1D k=%d exceeds %d values", k, n)
	}
	for i := 1; i < n; i++ {
		if values[i] > values[i-1]+1e-12 {
			return nil, fmt.Errorf("kmeans: Segment1D input not sorted descending at %d", i)
		}
	}
	// Prefix sums for O(1) segment cost: cost(i, j) = sum of squared
	// deviations of values[i:j] from their mean.
	pre := make([]float64, n+1)
	pre2 := make([]float64, n+1)
	for i, v := range values {
		pre[i+1] = pre[i] + v
		pre2[i+1] = pre2[i] + v*v
	}
	cost := func(i, j int) float64 { // [i, j)
		cnt := float64(j - i)
		s := pre[j] - pre[i]
		s2 := pre2[j] - pre2[i]
		c := s2 - s*s/cnt
		if c < 0 {
			return 0
		}
		return c
	}
	const inf = math.MaxFloat64
	// dp[c][j]: minimal cost to split values[0:j] into c segments.
	dp := make([][]float64, k+1)
	cut := make([][]int, k+1)
	for c := range dp {
		dp[c] = make([]float64, n+1)
		cut[c] = make([]int, n+1)
		for j := range dp[c] {
			dp[c][j] = inf
		}
	}
	dp[0][0] = 0
	for c := 1; c <= k; c++ {
		for j := c; j <= n; j++ {
			// Last segment starts at i; every earlier segment must be
			// non-empty, so i >= c-1.
			for i := c - 1; i < j; i++ {
				if dp[c-1][i] == inf {
					continue
				}
				v := dp[c-1][i] + cost(i, j)
				if v < dp[c][j] {
					dp[c][j] = v
					cut[c][j] = i
				}
			}
		}
	}
	lengths := make([]int, k)
	j := n
	for c := k; c >= 1; c-- {
		i := cut[c][j]
		lengths[c-1] = j - i
		j = i
	}
	return lengths, nil
}
