package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketFor(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{time.Hour, 32},
		{200 * time.Hour, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	for i := 0; i < histBuckets; i++ {
		if got := bucketFor(BucketUpperBound(i)); got != i {
			t.Errorf("upper bound of bucket %d lands in %d", i, got)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v", got)
	}
	// 100 samples at ~1ms, 10 at ~100ms: p50 must sit near 1ms and p99
	// near 100ms (within the 2x bucket resolution).
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 110 {
		t.Fatalf("count %d", s.Count)
	}
	p50 := s.Quantile(0.50)
	if p50 < 500*time.Microsecond || p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 50*time.Millisecond || p99 > 200*time.Millisecond {
		t.Errorf("p99 = %v, want ~100ms", p99)
	}
	if mean := s.Mean(); mean < 5*time.Millisecond || mean > 15*time.Millisecond {
		t.Errorf("mean = %v, want ~10ms", mean)
	}
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.SumNs != 0 {
		t.Fatalf("reset left %+v", s)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var m *IndexMetrics
	m.RecordSearch(SearchRecord{Lookups: 5}, time.Millisecond)
	m.RecordError()
	m.Reset()
	if s := m.Snapshot(); s.Queries != 0 || s.Lookups != 0 {
		t.Fatalf("nil registry snapshot %+v", s)
	}
}

func TestRecordAndSnapshotSub(t *testing.T) {
	m := New()
	m.RecordSearch(SearchRecord{ClustersVisited: 2, CodesConsidered: 100, CodesSkippedTI: 40, CodesAbandonedEA: 30, Lookups: 500}, time.Millisecond)
	before := m.Snapshot()
	m.RecordSearch(SearchRecord{CodesConsidered: 50, CodesSkippedTI: 10, Lookups: 200}, time.Millisecond)
	m.RecordError()
	d := m.Snapshot().Sub(before)
	if d.Queries != 1 || d.Errors != 1 || d.CodesConsidered != 50 || d.CodesSkippedTI != 10 || d.Lookups != 200 {
		t.Fatalf("diff %+v", d)
	}
	s := m.Snapshot()
	if got := s.TIPruneRate(); got < 0.33 || got > 0.34 {
		t.Errorf("TI prune rate %v, want 50/150", got)
	}
	if got := s.EAAbandonRate(); got != 0.2 {
		t.Errorf("EA abandon rate %v, want 30/150", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	m := New()
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.RecordSearch(SearchRecord{CodesConsidered: 3, Lookups: 7}, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Queries != goroutines*per {
		t.Fatalf("queries %d, want %d", s.Queries, goroutines*per)
	}
	if s.Lookups != goroutines*per*7 {
		t.Fatalf("lookups %d", s.Lookups)
	}
	if s.Latency.Count != goroutines*per {
		t.Fatalf("latency count %d", s.Latency.Count)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	m := New()
	m.RecordSearch(SearchRecord{CodesConsidered: 9, Lookups: 18}, 3*time.Millisecond)
	b, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.CodesConsidered != 9 || back.Lookups != 18 || back.Latency.Count != 1 {
		t.Fatalf("round trip %+v", back)
	}
}

func TestPublishAndServeDebug(t *testing.T) {
	m := New()
	m.RecordSearch(SearchRecord{Lookups: 42}, time.Millisecond)
	Publish("vaq_test_index", m)
	// Republish with a fresh registry: must rebind, not panic.
	m2 := New()
	m2.RecordSearch(SearchRecord{Lookups: 7}, time.Millisecond)
	Publish("vaq_test_index", m2)

	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/vars: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"vaq_test_index"`) {
		t.Fatalf("expvar output missing published metrics: %s", body)
	}
	var vars struct {
		Index Snapshot `json:"vaq_test_index"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("unmarshal /debug/vars: %v", err)
	}
	if vars.Index.Lookups != 7 {
		t.Fatalf("rebound registry not served: got lookups=%d, want 7", vars.Index.Lookups)
	}
	// pprof index must be wired up too.
	resp2, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: %d", resp2.StatusCode)
	}
}
