package vec

import (
	"bytes"
	"testing"
)

// FuzzReadMatrix ensures the deserializer never panics or over-allocates
// on corrupt input — it must fail cleanly or produce a valid matrix.
func FuzzReadMatrix(f *testing.F) {
	// Seed with a valid serialization and some mutations.
	m := NewMatrix(3, 2)
	for i := range m.Data {
		m.Data[i] = float32(i)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("VAQ1"))
	truncated := append([]byte(nil), valid[:len(valid)-3]...)
	f.Add(truncated)
	huge := append([]byte(nil), valid...)
	huge[4] = 0xFF
	huge[11] = 0xFF
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadMatrix(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got.Rows < 0 || got.Cols < 0 || len(got.Data) != got.Rows*got.Cols {
			t.Fatalf("invalid matrix accepted: %dx%d len %d", got.Rows, got.Cols, len(got.Data))
		}
	})
}
