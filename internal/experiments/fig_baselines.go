package experiments

import (
	"fmt"
	"io"

	"vaq/internal/core"
	"vaq/internal/eval"
	"vaq/internal/lsh"
	"vaq/internal/quantizer"
	"vaq/internal/rvq"
	"vaq/internal/tc"
)

// RunExtraBaselines compares VAQ against the remaining Table I lineage on
// the SIFT stand-in: Transform Coding (the scalar-quantization ancestor of
// adaptive allocation), plain VQ (single dictionary), RVQ (the additive
// AQ/CQ family: better reconstruction, higher encode/query cost), and a
// data-independent E2LSH baseline (§II-B). Expected shape: VAQ and RVQ
// lead in accuracy at equal budget, with RVQ paying the encoding/storage
// overheads Table I records; TC > VQ; LSH needs many tables and still
// trails the learned methods.
func RunExtraBaselines(w io.Writer, s Scale) error {
	const budget, segs, k = 128, 16, 100
	ds, gt, err := largeDataset("SIFT", s, k)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== SIFT (n=%d, %d-bit budget where applicable, recall@%d) ==\n",
		ds.Base.Rows, budget, k)

	vaqM, err := buildVAQ("VAQ", ds, vaqConfig(budget, segs, s.Seed),
		core.SearchOptions{VisitFrac: 0.25})
	if err != nil {
		return err
	}
	tcM, err := buildTimed("TC", func() (searchFunc, error) {
		ix, err := tc.Build(ds.Train, ds.Base, tc.Config{Budget: budget})
		if err != nil {
			return nil, err
		}
		return func(q []float32, kk int) ([]int, error) {
			res, err := ix.Search(q, kk)
			if err != nil {
				return nil, err
			}
			return eval.IDs(res), nil
		}, nil
	})
	if err != nil {
		return err
	}
	vqM, err := buildTimed("VQ", func() (searchFunc, error) {
		// VQ cannot reach 128 bits (2^128 centroids); use its practical
		// ceiling, a single 12-bit dictionary, as the paper's §II-C
		// discussion implies.
		ix, err := quantizer.TrainVQ(ds.Train, ds.Base, quantizer.VQConfig{
			Bits: 12, Train: trainCfg(s.Seed),
		})
		if err != nil {
			return nil, err
		}
		return func(q []float32, kk int) ([]int, error) {
			res, err := ix.Search(q, kk)
			if err != nil {
				return nil, err
			}
			return eval.IDs(res), nil
		}, nil
	})
	if err != nil {
		return err
	}
	rvqM, err := buildTimed("RVQ(AQ-family)", func() (searchFunc, error) {
		// Same code budget (Stages x 8 bits = budget), plus RVQ's extra
		// stored norm — the storage overhead Table I charges AQ/CQ with.
		ix, err := rvq.Build(ds.Train, ds.Base, rvq.Config{
			Stages: budget / 8, BitsPerStage: 8, Seed: s.Seed, MaxIter: 20,
		})
		if err != nil {
			return nil, err
		}
		return func(q []float32, kk int) ([]int, error) {
			res, err := ix.Search(q, kk)
			if err != nil {
				return nil, err
			}
			return eval.IDs(res), nil
		}, nil
	})
	if err != nil {
		return err
	}
	lshM, err := buildTimed("E2LSH", func() (searchFunc, error) {
		ix, err := lsh.Build(ds.Base, lsh.Config{Tables: 12, Hashes: 8, Probes: 3, Seed: s.Seed})
		if err != nil {
			return nil, err
		}
		return func(q []float32, kk int) ([]int, error) {
			res, err := ix.Search(q, kk)
			if err != nil {
				return nil, err
			}
			return eval.IDs(res), nil
		}, nil
	})
	if err != nil {
		return err
	}
	var rows []measured
	for _, m := range []*method{vaqM, tcM, vqM, rvqM, lshM} {
		row, err := evaluate(m, ds.Queries, gt, k)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	printTable(w, rows, "VAQ")
	fmt.Fprintln(w, "\nnote: E2LSH ranks candidates with exact distances (standard usage), so")
	fmt.Fprintln(w, "its recall reflects candidate coverage, not quantization error; its cost")
	fmt.Fprintln(w, "is the uncompressed vectors plus 12 hash tables.")
	return nil
}
