package itq

import (
	"math/rand"
	"testing"

	"vaq/internal/vec"
)

func gaussian(rng *rand.Rand, n, d int) *vec.Matrix {
	x := vec.NewMatrix(n, d)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return x
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := gaussian(rng, 50, 8)
	if _, err := Build(x, x, Config{Bits: 0}); err == nil {
		t.Fatal("bits=0 must fail")
	}
	if _, err := Build(x, x, Config{Bits: 9}); err == nil {
		t.Fatal("bits > d must fail")
	}
	if _, err := Build(x, vec.NewMatrix(5, 4), Config{Bits: 4}); err == nil {
		t.Fatal("dim mismatch must fail")
	}
}

func TestCodesAreBinaryAndStable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := gaussian(rng, 300, 16)
	ix, err := Build(x, x, Config{Bits: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 300 || ix.Dim() != 16 || ix.Bits() != 16 {
		t.Fatalf("shape %d %d %d", ix.Len(), ix.Dim(), ix.Bits())
	}
	// Identical query must have Hamming distance 0 to its own code.
	res, err := ix.Search(x.Row(12), 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := 0; i < x.Rows; i++ {
		if res[0].Dist == 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("self query should find a zero-distance code, got %v", res[0])
	}
}

func TestHammingNeighborhoodQuality(t *testing.T) {
	// Clustered data: items in the same cluster should mostly share codes
	// closer than items in other clusters.
	rng := rand.New(rand.NewSource(3))
	n, d := 600, 16
	x := vec.NewMatrix(n, d)
	labels := make([]int, n)
	centers := gaussian(rng, 4, d)
	for i := 0; i < n; i++ {
		c := rng.Intn(4)
		labels[i] = c
		row := x.Row(i)
		for j := 0; j < d; j++ {
			row[j] = centers.At(c, j)*4 + float32(rng.NormFloat64()*0.3)
		}
	}
	ix, err := Build(x, x, Config{Bits: 16, Seed: 3, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	total := 0
	for trial := 0; trial < 30; trial++ {
		qi := rng.Intn(n)
		res, err := ix.Search(x.Row(qi), 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			total++
			if labels[r.ID] == labels[qi] {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.8 {
		t.Fatalf("Hamming neighbors agree with clusters only %.2f", frac)
	}
}

func TestSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := gaussian(rng, 100, 8)
	ix, err := Build(x, x, Config{Bits: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(make([]float32, 3), 5); err == nil {
		t.Fatal("bad dim must fail")
	}
	if _, err := ix.Search(x.Row(0), 0); err == nil {
		t.Fatal("k=0 must fail")
	}
}

func TestMultiWordCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := gaussian(rng, 200, 80)
	ix, err := Build(x, x, Config{Bits: 80, Seed: 5, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.Search(x.Row(0), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d", len(res))
	}
	if res[0].Dist != 0 {
		t.Fatalf("self query distance %v", res[0].Dist)
	}
}
