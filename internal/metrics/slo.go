package metrics

import (
	"math"
	"sync/atomic"
	"time"

	"vaq/internal/alert"
)

// SLO declares service-level objectives for one index, evaluated online
// over sliding windows of recent traffic. The two objectives are
// independent: LatencyTarget+LatencyObjective bound tail latency ("99% of
// queries under 2ms"), MinRecall bounds observed answer quality (needs the
// recall estimator, Config.RecallSampleRate, to feed samples). Each maps to
// an error budget: the fraction of the window still allowed to misbehave
// before the objective is broken. Budgets are exported as gauges
// (vaq_slo_latency_budget_remaining, vaq_slo_recall_budget_remaining,
// vaq_slo_burn_rate) and crossing into exhaustion fires one edge-triggered
// breach callback (core turns it into the vaq.slo slog event).
type SLO struct {
	// LatencyTarget is the per-query latency objective (scan path, the
	// same window the latency histogram observes). 0 disables the latency
	// objective.
	LatencyTarget time.Duration
	// LatencyObjective is the fraction of windowed queries that must meet
	// LatencyTarget (default 0.99 — a p99 target).
	LatencyObjective float64
	// MinRecall is the minimum acceptable windowed observed recall from
	// the shadow-exact estimator. 0 disables the recall objective.
	MinRecall float64
	// Window is the latency sliding window in queries (default 4096).
	Window int
	// RecallWindow is the recall sliding window in samples (default 256).
	RecallWindow int
}

func (s SLO) withDefaults() SLO {
	if s.LatencyObjective <= 0 || s.LatencyObjective >= 1 {
		s.LatencyObjective = 0.99
	}
	if s.Window <= 0 {
		s.Window = 4096
	}
	if s.RecallWindow <= 0 {
		s.RecallWindow = 256
	}
	return s
}

// BreachFunc is called exactly once per budget-exhaustion edge: when a
// budget crosses from spent-or-better (>= 0) to broken (< 0). kind is
// "latency" or "recall"; remaining is the (negative) budget fraction and burn the
// current burn rate. Called from the query path — keep it cheap and
// non-blocking (core's implementation emits one slog event).
type BreachFunc func(kind string, remaining, burn float64)

// sloState is the lock-free sliding-window evaluator behind an SLO. Rings
// are updated with Swap so the windowed totals stay consistent without
// locks; a slot being overwritten gives its old value back, and the delta
// adjusts the running total.
type sloState struct {
	cfg      SLO
	onBreach BreachFunc
	targetNs int64

	seen       atomic.Uint64 // latency observations ever
	latBad     atomic.Int64  // violations currently in the window
	violations atomic.Uint64 // latency violations ever (history burn-rate input)
	latSlots   []atomic.Uint32

	recSeen  atomic.Uint64   // recall samples ever
	recHits  atomic.Int64    // hits currently in the window
	recExp   atomic.Int64    // expected currently in the window
	recSlots []atomic.Uint64 // hits<<32 | expected

	// latSrc / recSrc are the budget-exhaustion latches, registered on the
	// registry's alert bus as vaq.slo.latency / vaq.slo.recall.
	latSrc *alert.Source
	recSrc *alert.Source
}

// ConfigureSLO installs (or replaces) the objectives evaluated by this
// registry. onBreach may be nil. A nil registry ignores the call.
func (m *IndexMetrics) ConfigureSLO(cfg SLO, onBreach BreachFunc) {
	if m == nil {
		return
	}
	cfg = cfg.withDefaults()
	s := &sloState{
		cfg:      cfg,
		onBreach: onBreach,
		targetNs: cfg.LatencyTarget.Nanoseconds(),
		latSlots: make([]atomic.Uint32, cfg.Window),
		recSlots: make([]atomic.Uint64, cfg.RecallWindow),
		latSrc:   m.Alerts().Source("vaq.slo.latency"),
		recSrc:   m.Alerts().Source("vaq.slo.recall"),
	}
	// Reconfiguring restarts the windows, so the latches re-arm too (the
	// sources themselves persist on the bus, keeping their firing history).
	s.latSrc.Reset()
	s.recSrc.Reset()
	m.slo.Store(s)
}

// SLOConfig returns the effective (defaulted) objectives, or nil when none
// are configured.
func (m *IndexMetrics) SLOConfig() *SLO {
	if m == nil {
		return nil
	}
	s := m.slo.Load()
	if s == nil {
		return nil
	}
	cfg := s.cfg
	return &cfg
}

// observeLatency folds one query latency into the sliding window and, unless
// a history collector has delegated SLO alerting to its multi-window
// burn-rate evaluation, evaluates the instantaneous budget edge.
func (s *sloState) observeLatency(d time.Duration, delegated bool) {
	if s.targetNs <= 0 {
		return
	}
	idx := (s.seen.Add(1) - 1) % uint64(len(s.latSlots))
	var v uint32
	if d.Nanoseconds() > s.targetNs {
		v = 1
		s.violations.Add(1)
	}
	old := s.latSlots[idx].Swap(v)
	if delta := int64(v) - int64(old); delta != 0 {
		s.latBad.Add(delta)
	}
	if delegated {
		return
	}
	rem, burn := s.latencyBudget()
	s.edge(s.latSrc, "latency", rem, burn)
}

// observeRecall folds one shadow-exact sample into the sliding window and,
// unless delegated to burn-rate evaluation, evaluates the recall budget
// edge.
func (s *sloState) observeRecall(hits, expected int, delegated bool) {
	if s.cfg.MinRecall <= 0 || expected <= 0 {
		return
	}
	idx := (s.recSeen.Add(1) - 1) % uint64(len(s.recSlots))
	packed := uint64(uint32(hits))<<32 | uint64(uint32(expected))
	old := s.recSlots[idx].Swap(packed)
	s.recHits.Add(int64(hits) - int64(old>>32))
	s.recExp.Add(int64(expected) - int64(old&0xffffffff))
	if delegated {
		return
	}
	rem, _ := s.recallBudget()
	s.edge(s.recSrc, "recall", rem, 0)
}

// edge latches budget exhaustion on the shared alert.Source: the callback
// fires once when remaining crosses below zero (0 = budget exactly spent,
// still inside the objective), the latch re-arms when the budget recovers,
// and both edges publish to the registry's alert bus.
func (s *sloState) edge(src *alert.Source, kind string, remaining, burn float64) {
	if src.Set(remaining < 0) && s.onBreach != nil {
		s.onBreach(kind, remaining, burn)
	}
}

// latencyBudget computes the remaining latency error budget and the burn
// rate over the current window. The budget is the fraction of allowed
// violations not yet spent: with objective 0.99 over a 4096-query window,
// ~41 violations are allowed; remaining = (allowed - bad) / allowed. Burn
// rate is the observed violation rate over the allowed rate (1.0 = spending
// exactly the budget, sustainable; >1 = the budget is burning down).
func (s *sloState) latencyBudget() (remaining, burn float64) {
	if s.targetNs <= 0 {
		return 1, 0
	}
	window := s.seen.Load()
	if window == 0 {
		return 1, 0
	}
	if window > uint64(len(s.latSlots)) {
		window = uint64(len(s.latSlots))
	}
	bad := float64(s.latBad.Load())
	allowedRate := 1 - s.cfg.LatencyObjective
	allowed := allowedRate * float64(window)
	if allowed < 1 {
		allowed = 1 // tiny windows: tolerate at least one violation
	}
	remaining = (allowed - bad) / allowed
	burn = (bad / float64(window)) / allowedRate
	return clampBudget(remaining), burn
}

// recallBudget computes the remaining recall error budget over the current
// window: the observed recall's headroom above MinRecall, normalized by the
// total headroom (1 - MinRecall). 1 = perfect recall, 0 = exactly at the
// objective, negative = below it. No samples yet = full budget (no data is
// not a breach).
func (s *sloState) recallBudget() (remaining, observed float64) {
	if s.cfg.MinRecall <= 0 {
		return 1, 0
	}
	exp := s.recExp.Load()
	if exp <= 0 {
		return 1, 0
	}
	observed = float64(s.recHits.Load()) / float64(exp)
	headroom := 1 - s.cfg.MinRecall
	if headroom < 1e-9 {
		headroom = 1e-9 // MinRecall == 1: any miss exhausts the budget
	}
	return clampBudget((observed - s.cfg.MinRecall) / headroom), observed
}

// clampBudget bounds a budget gauge to [-1, 1] so a deeply blown objective
// doesn't swing dashboards to -inf.
func clampBudget(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	if math.IsNaN(v) {
		return 1
	}
	return v
}

// reset re-zeroes the sliding windows and re-arms the edge latches.
func (s *sloState) reset() {
	if s == nil {
		return
	}
	s.seen.Store(0)
	s.latBad.Store(0)
	s.violations.Store(0)
	for i := range s.latSlots {
		s.latSlots[i].Store(0)
	}
	s.recSeen.Store(0)
	s.recHits.Store(0)
	s.recExp.Store(0)
	for i := range s.recSlots {
		s.recSlots[i].Store(0)
	}
	s.latSrc.Reset()
	s.recSrc.Reset()
}

// SLOSnapshot is a point-in-time view of the SLO evaluation: the declared
// objectives plus the windowed budget gauges.
type SLOSnapshot struct {
	LatencyTarget    time.Duration `json:"latency_target_ns"`
	LatencyObjective float64       `json:"latency_objective"`
	MinRecall        float64       `json:"min_recall,omitempty"`
	Window           int           `json:"window"`
	RecallWindow     int           `json:"recall_window,omitempty"`
	// WindowQueries / LatencyViolations describe the current latency
	// window: observations in it and how many broke the target.
	// LatencyViolationsTotal is cumulative since configuration (reset-aware
	// counter; the history collector's burn-rate input).
	WindowQueries          uint64 `json:"window_queries"`
	LatencyViolations      uint64 `json:"latency_violations"`
	LatencyViolationsTotal uint64 `json:"latency_violations_total"`
	// LatencyBudgetRemaining is the unspent fraction of the allowed
	// violations (1 = untouched, <= 0 = objective broken); BurnRate the
	// violation rate over the allowed rate (> 1 burns the budget down).
	LatencyBudgetRemaining float64 `json:"latency_budget_remaining"`
	BurnRate               float64 `json:"burn_rate"`
	// WindowRecall is the observed recall over the recall window (0 when
	// no samples); RecallBudgetRemaining its normalized headroom above
	// MinRecall.
	WindowRecallSamples   uint64  `json:"window_recall_samples,omitempty"`
	WindowRecall          float64 `json:"window_recall,omitempty"`
	RecallBudgetRemaining float64 `json:"recall_budget_remaining"`
	// LatencyExhausted / RecallExhausted report the edge latches: true
	// while the corresponding budget sits below zero.
	LatencyExhausted bool `json:"latency_exhausted,omitempty"`
	RecallExhausted  bool `json:"recall_exhausted,omitempty"`
}

// SLOSnapshot returns the current SLO evaluation, or nil when no objectives
// are configured (including on a nil registry).
func (m *IndexMetrics) SLOSnapshot() *SLOSnapshot {
	if m == nil {
		return nil
	}
	s := m.slo.Load()
	if s == nil {
		return nil
	}
	out := &SLOSnapshot{
		LatencyTarget:    s.cfg.LatencyTarget,
		LatencyObjective: s.cfg.LatencyObjective,
		MinRecall:        s.cfg.MinRecall,
		Window:           s.cfg.Window,
		RecallWindow:     s.cfg.RecallWindow,
	}
	window := s.seen.Load()
	if window > uint64(len(s.latSlots)) {
		window = uint64(len(s.latSlots))
	}
	out.WindowQueries = window
	if bad := s.latBad.Load(); bad > 0 {
		out.LatencyViolations = uint64(bad)
	}
	out.LatencyViolationsTotal = s.violations.Load()
	out.LatencyBudgetRemaining, out.BurnRate = s.latencyBudget()
	recWin := s.recSeen.Load()
	if recWin > uint64(len(s.recSlots)) {
		recWin = uint64(len(s.recSlots))
	}
	out.WindowRecallSamples = recWin
	out.RecallBudgetRemaining, out.WindowRecall = s.recallBudget()
	out.LatencyExhausted = s.latSrc.Firing()
	out.RecallExhausted = s.recSrc.Firing()
	return out
}
