package pca

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vaq/internal/vec"
)

// anisotropic builds data whose first axis has far more variance.
func anisotropic(rng *rand.Rand, n, d int, scales []float64) *vec.Matrix {
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		for j := 0; j < d; j++ {
			r[j] = float32(rng.NormFloat64() * scales[j])
		}
	}
	return x
}

func TestFitSortedEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := anisotropic(rng, 2000, 4, []float64{10, 5, 1, 0.1})
	m, err := Fit(x, Options{Center: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if m.Eigenvalues[i] > m.Eigenvalues[i-1] {
			t.Fatalf("not sorted: %v", m.Eigenvalues)
		}
	}
	// Largest eigenvalue should be near 100 (variance of first axis).
	if m.Eigenvalues[0] < 70 || m.Eigenvalues[0] > 130 {
		t.Fatalf("first eigenvalue %v, want ~100", m.Eigenvalues[0])
	}
	// First component should be aligned with the first canonical axis.
	if math.Abs(m.Components.At(0, 0)) < 0.95 {
		t.Fatalf("first component %v not aligned with axis 0", m.Components.Col(0))
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(vec.NewMatrix(0, 3), Options{}); err == nil {
		t.Fatal("empty input must fail")
	}
}

func TestExplainedVarianceRatioSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := anisotropic(rng, 500, 6, []float64{3, 2, 1, 1, 0.5, 0.1})
	m, err := Fit(x, Options{Center: true})
	if err != nil {
		t.Fatal(err)
	}
	r := m.ExplainedVarianceRatio()
	var sum float64
	for _, v := range r {
		if v < 0 {
			t.Fatalf("negative ratio %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ratios sum to %v", sum)
	}
}

func TestExplainedVarianceRatioDegenerate(t *testing.T) {
	m := &Model{Dim: 3, Eigenvalues: []float64{0, 0, 0}}
	r := m.ExplainedVarianceRatio()
	for _, v := range r {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("degenerate profile should be uniform: %v", r)
		}
	}
}

func TestProjectPreservesDistances(t *testing.T) {
	// Orthonormal projection onto the full basis preserves pairwise
	// Euclidean distances (rotation invariance).
	rng := rand.New(rand.NewSource(3))
	x := anisotropic(rng, 50, 8, []float64{4, 3, 2, 2, 1, 1, 0.5, 0.2})
	m, err := Fit(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	z, err := m.Project(x)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		i, j := rng.Intn(50), rng.Intn(50)
		orig := float64(vec.L2(x.Row(i), x.Row(j)))
		proj := float64(vec.L2(z.Row(i), z.Row(j)))
		if math.Abs(orig-proj) > 1e-3*(1+orig) {
			t.Fatalf("distance not preserved: %v vs %v", orig, proj)
		}
	}
}

func TestProjectVarianceConcentration(t *testing.T) {
	// After projection, the first column must carry the largest variance.
	rng := rand.New(rand.NewSource(4))
	x := anisotropic(rng, 1000, 5, []float64{1, 1, 8, 1, 1})
	m, err := Fit(x, Options{Center: true})
	if err != nil {
		t.Fatal(err)
	}
	z, err := m.Project(x)
	if err != nil {
		t.Fatal(err)
	}
	vars := vec.ColumnVariances(z)
	for j := 1; j < 5; j++ {
		if vars[j] > vars[0] {
			t.Fatalf("projected variance not concentrated: %v", vars)
		}
	}
	// And must decrease monotonically (within noise tolerance).
	for j := 1; j < 5; j++ {
		if vars[j] > vars[j-1]*1.05+1e-9 {
			t.Fatalf("projected variances not descending: %v", vars)
		}
	}
}

func TestProjectVec(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := anisotropic(rng, 100, 4, []float64{2, 1, 1, 1})
	m, _ := Fit(x, Options{Center: true})
	z, _ := m.Project(x)
	single, err := m.ProjectVec(x.Row(7))
	if err != nil {
		t.Fatal(err)
	}
	for j := range single {
		if math.Abs(float64(single[j]-z.At(7, j))) > 1e-6 {
			t.Fatalf("ProjectVec mismatch at %d", j)
		}
	}
	if _, err := m.ProjectVec([]float32{1}); err == nil {
		t.Fatal("wrong dimension must fail")
	}
}

func TestProjectDimensionError(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := anisotropic(rng, 10, 3, []float64{1, 1, 1})
	m, _ := Fit(x, Options{})
	if _, err := m.Project(vec.NewMatrix(2, 5)); err == nil {
		t.Fatal("wrong dimension must fail")
	}
}

func TestPermuteComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := anisotropic(rng, 300, 3, []float64{3, 2, 1})
	m, _ := Fit(x, Options{Center: true})
	orig := m.Clone()
	if err := m.PermuteComponents([]int{2, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if m.Eigenvalues[0] != orig.Eigenvalues[2] || m.Eigenvalues[1] != orig.Eigenvalues[0] {
		t.Fatalf("eigenvalues not permuted: %v vs %v", m.Eigenvalues, orig.Eigenvalues)
	}
	for i := 0; i < 3; i++ {
		if m.Components.At(i, 0) != orig.Components.At(i, 2) {
			t.Fatal("components not permuted")
		}
	}
	if err := m.PermuteComponents([]int{0, 0, 1}); err == nil {
		t.Fatal("duplicate permutation must fail")
	}
	if err := m.PermuteComponents([]int{0}); err == nil {
		t.Fatal("short permutation must fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := anisotropic(rng, 100, 3, []float64{1, 1, 1})
	m, _ := Fit(x, Options{Center: true})
	c := m.Clone()
	c.Eigenvalues[0] = -99
	c.Components.Set(0, 0, -99)
	c.Mean[0] = -99
	if m.Eigenvalues[0] == -99 || m.Components.At(0, 0) == -99 || m.Mean[0] == -99 {
		t.Fatal("clone shares storage")
	}
}

// Property: total eigenvalue mass equals total column variance
// (trace preservation through the eigendecomposition).
func TestEigenvalueMassProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 20
		d := rng.Intn(8) + 2
		x := vec.NewMatrix(n, d)
		for i := range x.Data {
			x.Data[i] = float32(rng.NormFloat64())
		}
		m, err := Fit(x, Options{Center: true})
		if err != nil {
			return false
		}
		var evSum float64
		for _, v := range m.Eigenvalues {
			evSum += v
		}
		var varSum float64
		for _, v := range vec.ColumnVariances(x) {
			varSum += v
		}
		return math.Abs(evSum-varSum) < 1e-6*(1+varSum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
