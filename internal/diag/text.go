package diag

import (
	"fmt"
	"io"
)

// WriteText renders the report for humans: a header with the overall
// quality numbers, one row per subspace, and the cluster-balance and drift
// summaries. The layout is what cmd/vaqdiag prints and what
// /debug/vaq/report?format=text serves.
func WriteText(w io.Writer, r *Report) error {
	if _, err := fmt.Fprintf(w, "index: n=%d dim=%d projected_dim=%d subspaces=%d\n",
		r.N, r.Dim, r.ProjectedDim, len(r.Subspaces)); err != nil {
		return err
	}
	switch {
	case r.Partial:
		fmt.Fprintf(w, "distortion: unavailable (partial report: no projected vectors retained — rebuild or enable recall sampling)\n")
	default:
		fmt.Fprintf(w, "distortion (%s): total MSE %.6g over variance %.6g = %.2f%% of signal lost\n",
			r.MSESource, r.TotalMSE, r.TotalVariance, 100*r.MSEShare)
	}
	fmt.Fprintf(w, "dead codewords: %d total\n\n", r.DeadCodewordsTotal)

	fmt.Fprintf(w, "%-4s %-5s %-5s %-8s %-10s %-10s %-9s %-6s %-9s %-9s\n",
		"sub", "dims", "bits", "entries", "var_share", "mse", "mse_share", "dead", "entropy", "max_share")
	for i := range r.Subspaces {
		s := &r.Subspaces[i]
		mse, share := "-", "-"
		if !r.Partial {
			mse = fmt.Sprintf("%.4g", s.MSE)
			share = fmt.Sprintf("%.4f", s.MSEShare)
		}
		if _, err := fmt.Fprintf(w, "%-4d %-5d %-5d %-8d %-10.5f %-10s %-9s %-6d %-9.2f %-9.4f\n",
			s.Index, s.Dims, s.Bits, s.Entries, s.VarianceShare, mse, share,
			s.DeadCodewords, s.UtilizationEntropyBits, s.MaxCodewordShare); err != nil {
			return err
		}
	}

	ti := r.TI
	fmt.Fprintf(w, "\nti clusters: %d (min %d, max %d, mean %.1f, empty %d), gini %.3f, imbalance %.2fx\n",
		ti.Clusters, ti.MinSize, ti.MaxSize, ti.MeanSize, ti.EmptyClusters, ti.Gini, ti.ImbalanceRatio)
	if d := r.Drift; d != nil {
		status := "ok"
		if d.Alert {
			status = "ALERT"
		}
		if _, err := fmt.Fprintf(w, "drift: ratio %.3f (alert threshold %g) — %s\n",
			d.Ratio, d.AlertRatio, status); err != nil {
			return err
		}
	}
	if s := r.SLO; s != nil {
		status := "ok"
		if s.LatencyExhausted || s.RecallExhausted {
			status = "BREACH"
		}
		if _, err := fmt.Fprintf(w, "slo: latency budget %.3f (burn %.2f, %d/%d violations), recall budget %.3f — %s\n",
			s.LatencyBudgetRemaining, s.BurnRate, s.LatencyViolations, s.WindowQueries,
			s.RecallBudgetRemaining, status); err != nil {
			return err
		}
	}
	return nil
}
