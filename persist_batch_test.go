package vaq

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestPublicSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := genData(rng, 600, 16)
	ix, err := Build(data, Config{NumSubspaces: 4, Budget: 32, Seed: 31, TIClusters: 12})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/public.vaqi"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ix.Search(data[9], 5)
	b, _ := got.Search(data[9], 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("answers differ after load: %v vs %v", a, b)
		}
	}
	sa, sb := ix.Stats(), got.Stats()
	if sa.N != sb.N || sa.CodeBytes != sb.CodeBytes || sa.TIClusters != sb.TIClusters {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	if _, err := Load(path + ".nope"); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestPublicWriteToRead(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	data := genData(rng, 300, 8)
	ix, err := Build(data, Config{NumSubspaces: 2, Budget: 12, Seed: 32, TIClusters: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage must fail")
	}
}

func TestSearchBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	data := genData(rng, 1000, 16)
	ix, err := Build(data, Config{NumSubspaces: 4, Budget: 32, Seed: 33, TIClusters: 20})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]float32, 17)
	for i := range queries {
		q := append([]float32(nil), data[rng.Intn(len(data))]...)
		for j := range q {
			q[j] += float32(rng.NormFloat64() * 0.02)
		}
		queries[i] = q
	}
	opt := SearchOptions{VisitFrac: 1}
	batch, err := ix.SearchBatch(queries, 5, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("batch length %d", len(batch))
	}
	for i, q := range queries {
		serial, err := ix.SearchWith(q, 5, opt)
		if err != nil {
			t.Fatal(err)
		}
		for j := range serial {
			if batch[i][j] != serial[j] {
				t.Fatalf("query %d rank %d: %v vs %v", i, j, batch[i][j], serial[j])
			}
		}
	}
}

func TestSearchBatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	data := genData(rng, 200, 8)
	ix, err := Build(data, Config{NumSubspaces: 2, Budget: 8, Seed: 34, TIClusters: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.SearchBatch([][]float32{data[0]}, 0, SearchOptions{}, 1); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := ix.SearchBatch([][]float32{{1, 2}}, 3, SearchOptions{}, 1); err == nil {
		t.Fatal("bad dimension must fail")
	}
	empty, err := ix.SearchBatch(nil, 3, SearchOptions{}, 1)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v %v", empty, err)
	}
	// workers <= 0 uses default; workers > n clamps.
	res, err := ix.SearchBatch([][]float32{data[1]}, 2, SearchOptions{}, -1)
	if err != nil || len(res) != 1 || len(res[0]) != 2 {
		t.Fatalf("default workers: %v %v", res, err)
	}
}
