package core

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync/atomic"

	"sync"

	"vaq/internal/alert"
	"vaq/internal/bundle"
	"vaq/internal/diag"
	"vaq/internal/history"
	"vaq/internal/metrics"
	"vaq/internal/pca"
	"vaq/internal/quantizer"
	"vaq/internal/trace"
	"vaq/internal/vec"
	"vaq/internal/workload"
)

// Config holds all VAQ build parameters (Algorithm 5 inputs).
type Config struct {
	// NumSubspaces (m) is the number of subspaces. Required.
	NumSubspaces int
	// Budget is the total number of bits per encoded vector. Required.
	Budget int
	// MinBits / MaxBits bound the per-subspace dictionary size exponent
	// (paper evaluation: 1 and 13). Defaults: 1 and min(13, Budget).
	MinBits int
	MaxBits int
	// NonUniform clusters dimensions of similar variance into
	// unequal-length subspaces (§III-B). Off = uniform lengths.
	NonUniform bool
	// DisablePartialBalance turns off the importance-spreading swaps of
	// §III-C (enabled by default; disabling is an ablation).
	DisablePartialBalance bool
	// Alloc selects the bit-allocation strategy (default AllocMILP).
	Alloc AllocStrategy
	// AllocConstraints are extra linear constraints over the per-subspace
	// bit variables, composed with C1-C4 by the MILP allocator (ignored by
	// the other strategies). One coefficient per subspace.
	AllocConstraints []BitConstraint
	// TargetVariance is C1's coverage threshold (default 0.99).
	TargetVariance float64
	// TIClusters is the number of triangle-inequality clusters (paper
	// default 1000; 0 = auto: min(1000, max(1, n/64))).
	TIClusters int
	// TIPrefixSubspaces is how many leading subspaces TI centroids span
	// (TIClusterNumSubs; 0 = all).
	TIPrefixSubspaces int
	// DefaultVisitFrac is the fraction of TI clusters visited when a
	// Search call does not override it (paper evaluates 0.25 and 0.10;
	// default 0.25). 1.0 scans every cluster and is then exactly
	// equivalent to the EA scan.
	DefaultVisitFrac float64
	// EACheckEvery controls how often the early-abandon test runs while
	// accumulating subspace distances (paper: every 4 subspaces).
	EACheckEvery int
	// CenterPCA subtracts column means before the eigendecomposition.
	// The paper's Algorithm 1 works on the raw second-moment matrix of
	// z-normalized data, so the default is false.
	CenterPCA bool
	// Seed drives all randomized steps.
	Seed int64
	// KMeansIters bounds dictionary training iterations (default 25).
	KMeansIters int
	// HierarchicalThreshold switches dictionary training to hierarchical
	// k-means above this size (paper: 2^10; 0 = default 1024).
	HierarchicalThreshold int
	// DisableMetrics turns off the index-wide query telemetry registry.
	// Recording costs a handful of atomic adds per query (measurably
	// under 2% of a search), so the default is on.
	DisableMetrics bool
	// ScanLayout selects the physical layout the query kernels scan
	// (default LayoutBlocked: cluster-contiguous blocked-transposed codes
	// with a uint8 fast path; LayoutRowMajor keeps the legacy row-major
	// scan for A/B benchmarking). Both layouts return identical results
	// and prune stats.
	ScanLayout ScanLayout
	// AccuracyMode selects the scan arithmetic (default AccuracyExact:
	// the bit-identical float32 kernels). AccuracyFast derives an integer
	// companion store from the blocked layout — uint8-quantized lookup
	// tables, 4-bit codes packed two per byte where dictionaries fit 16
	// entries — trading a small, measured recall cost for scan throughput.
	// Requires LayoutBlocked. Runtime-only, never serialized: loaded
	// indexes start exact and opt in via SetAccuracyMode.
	AccuracyMode AccuracyMode
	// RecallSampleRate enables the online recall estimator: roughly this
	// fraction of queries (deterministically every round(1/rate)-th) is
	// shadow-verified by an exact scan over the retained projected
	// vectors, and the observed recall@k folds into the metrics registry.
	// Enabling it makes Build and Add retain the projected dataset
	// (4*n*d bytes) and adds the exact-scan cost to sampled queries. 0
	// disables. Runtime-only: neither the rate nor the retained vectors
	// are serialized, so loaded indexes start with sampling off.
	RecallSampleRate float64
	// Logger receives structured build/maintenance logs (phase timings of
	// Build, Add, WriteTo). nil discards. Runtime-only, never serialized.
	Logger *slog.Logger
	// DriftAlertRatio is the quantization-drift alert threshold: when the
	// EWMA reconstruction MSE of vectors folded in by Add exceeds this
	// multiple of the Build-time baseline MSE, a vaq.drift slog event is
	// emitted and the alert gauge set (e.g. 1.5 = alert at 50% excess
	// distortion). 0 disables alerting; the drift gauges update either
	// way. Runtime-only, never serialized.
	DriftAlertRatio float64
	// SLO declares service-level objectives (tail-latency target, minimum
	// observed recall) evaluated online over sliding windows of recent
	// traffic; see metrics.SLO. Budgets are exported as gauges alongside
	// the other metrics, and crossing into exhaustion emits one vaq.slo
	// slog event per crossing (edge-triggered, re-arms on recovery). The
	// recall objective needs RecallSampleRate > 0 to feed samples. Needs
	// metrics (no effect under DisableMetrics). Runtime-only, never
	// serialized.
	SLO *metrics.SLO
	// ProfileLabels tags query goroutines with runtime/pprof labels
	// (vaq_phase = project | lut_fill | scan, plus an index label set via
	// SetProfileLabel) so CPU profiles attribute samples to search phases.
	// Off by default: when off the query path pays one atomic load; when
	// on, three goroutine-label stores per query. Runtime-only, never
	// serialized.
	ProfileLabels bool
}

func (c Config) withDefaults() Config {
	if c.MinBits == 0 {
		c.MinBits = 1
	}
	if c.MaxBits == 0 {
		c.MaxBits = 13
		if c.Budget < 13 {
			c.MaxBits = c.Budget
		}
	}
	if c.TargetVariance == 0 {
		c.TargetVariance = 0.99
	}
	if c.DefaultVisitFrac == 0 {
		c.DefaultVisitFrac = 0.25
	}
	if c.EACheckEvery <= 0 {
		c.EACheckEvery = 4
	}
	if c.HierarchicalThreshold == 0 {
		c.HierarchicalThreshold = 1024
	}
	return c
}

// Index is a built VAQ index over an encoded dataset.
type Index struct {
	cfg      Config
	model    *pca.Model
	ratios   []float64 // post-balance per-dimension variance shares
	subVar   []float64 // per-subspace variance shares
	bits     []int
	cb       *quantizer.Codebooks
	codes    *quantizer.Codes
	ti       *tiIndex
	blocked  *blockedStore // scan-optimized copy; nil under LayoutRowMajor
	fast     *fastStore    // integer-kernel store; nil unless AccuracyFast
	n        int
	queryDim int
	metrics  *metrics.IndexMetrics
	report   metrics.BuildReport
	// tracer, when set, hands every newly created Searcher a span
	// recorder; atomic so EnableTracing is safe while queries are in
	// flight (in-flight Searchers keep their current recorder).
	tracer atomic.Pointer[trace.Tracer]
	// capture, when set, receives a sampled fraction of queries (vector,
	// options, results, latency) for workload replay; atomic for the same
	// reason as tracer. Off = one pointer load per query.
	capture atomic.Pointer[workload.Capture]
	// flight is the armed incident recorder (EnableFlightRecorder); atomic
	// for the same reason as tracer. The query path never touches it — it
	// subscribes to the metrics alert bus instead.
	flight atomic.Pointer[bundle.Recorder]
	// hist is the armed metrics history collector (EnableHistory); atomic
	// for the same reason as tracer. Samples on its own goroutine — the
	// query path never touches it.
	hist atomic.Pointer[history.Collector]
	// retained holds the projected dataset rows for the shadow-exact
	// recall estimator (nil unless RecallSampleRate > 0); recallEvery is
	// the sampling stride and recallCtr the query counter driving it.
	retained    *vec.Matrix
	recallEvery uint64
	recallCtr   atomic.Uint64
	// mu orders index mutation against readers: Add holds the write lock;
	// queries, Diagnose and WriteTo hold read locks. Uncontended RLock is
	// tens of nanoseconds against queries hundreds of microseconds long.
	mu sync.RWMutex
	// baseline is the Build-time IndexReport (nil on loaded indexes — the
	// diagnostics baseline is runtime-only, never serialized); baselineMSE
	// its per-subspace MSE, driftEWMA the EWMA of incoming-vector MSE that
	// Add folds against it, and driftSrc the vaq.drift edge latch (on the
	// metrics alert bus when metrics are on, standalone otherwise; created
	// lazily under the write lock by driftSourceLocked).
	baseline    *diag.Report
	baselineMSE []float64
	driftEWMA   []float64
	driftSrc    *alert.Source
	// profCtx holds precomputed pprof label sets (nil unless
	// Config.ProfileLabels; see SetProfileLabel).
	profCtx atomic.Pointer[profileCtxs]
}

// Build trains a VAQ index: PCA (Algorithm 1), subspace construction and
// partial balancing, bit allocation (Algorithm 2), variable-size dictionary
// encoding and TI clustering (Algorithm 3). train supplies the learning
// sample; data is the set that gets encoded and searched (they may be the
// same matrix). Build is Train followed by Trained.EncodeIndex; callers
// that encode several partitions against one shared training sample (the
// sharded build path) use those halves directly.
func Build(train, data *vec.Matrix, cfg Config) (*Index, error) {
	if train == nil || data == nil || train.Rows == 0 || data.Rows == 0 {
		return nil, errors.New("core: empty train or data matrix")
	}
	if train.Cols != data.Cols {
		return nil, fmt.Errorf("core: train dim %d != data dim %d", train.Cols, data.Cols)
	}
	t, err := Train(train, cfg)
	if err != nil {
		return nil, err
	}
	var dataZ *vec.Matrix
	if data == train {
		// Reuse the training projection instead of projecting data again.
		dataZ = t.trainZ
	}
	return t.encodeIndex(data, dataZ)
}

// sampleStride converts a sampling fraction into the deterministic
// every-Nth stride the recall estimator uses (rate 1.0 → every query).
func sampleStride(rate float64) uint64 {
	if rate >= 1 {
		return 1
	}
	return uint64(math.Round(1 / rate))
}

// Len reports the number of encoded vectors.
func (ix *Index) Len() int { return ix.n }

// Dim reports the expected query dimensionality.
func (ix *Index) Dim() int { return ix.queryDim }

// Bits returns the per-subspace bit allocation (a copy).
func (ix *Index) Bits() []int { return append([]int(nil), ix.bits...) }

// SubspaceLengths returns the per-subspace dimension counts (a copy).
func (ix *Index) SubspaceLengths() []int {
	return append([]int(nil), ix.cb.Sub.Lengths...)
}

// SubspaceVariances returns each subspace's share of the explained
// variance after partial balancing (a copy).
func (ix *Index) SubspaceVariances() []float64 {
	return append([]float64(nil), ix.subVar...)
}

// Codebooks exposes the trained dictionaries (read-only use).
func (ix *Index) Codebooks() *quantizer.Codebooks { return ix.cb }

// Codes exposes the encoded dataset (read-only use).
func (ix *Index) Codes() *quantizer.Codes { return ix.codes }

// CodeBytes reports the packed size of the encoded dataset in bytes.
func (ix *Index) CodeBytes() int { return ix.codes.Bytes(ix.bits) }

// TIClusterCount reports how many triangle-inequality clusters were built.
func (ix *Index) TIClusterCount() int { return len(ix.ti.clusters) }

// Layout reports the physical scan layout the query kernels use.
func (ix *Index) Layout() ScanLayout { return ix.cfg.ScanLayout }

// Accuracy reports the scan arithmetic mode the query kernels use.
func (ix *Index) Accuracy() AccuracyMode { return ix.cfg.AccuracyMode }

// SetAccuracyMode switches the scan arithmetic at runtime — the opt-in
// hook for loaded indexes, whose on-disk format carries no accuracy mode
// (the integer store is derived, never serialized). Switching to
// AccuracyFast builds the store from the canonical codes; switching back
// to AccuracyExact drops it. Takes the write lock: in-flight queries
// finish on the mode they started with.
func (ix *Index) SetAccuracyMode(mode AccuracyMode) error {
	if mode != AccuracyExact && mode != AccuracyFast {
		return fmt.Errorf("core: unknown AccuracyMode %d", mode)
	}
	if mode == AccuracyFast && ix.cfg.ScanLayout != LayoutBlocked {
		return errors.New("core: AccuracyFast requires LayoutBlocked")
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.cfg.AccuracyMode = mode
	if mode == AccuracyFast {
		if ix.fast == nil {
			ix.fast = buildFastStore(ix.cb, ix.codes, ix.ti, ix.cfg.Seed, nil)
		}
	} else {
		ix.fast = nil
	}
	return nil
}

// Metrics returns the index-wide query telemetry registry shared by every
// Searcher of this index, or nil when Config.DisableMetrics was set. The
// registry is safe for concurrent use.
func (ix *Index) Metrics() *metrics.IndexMetrics { return ix.metrics }

// BuildReport returns the wall-clock cost of each build phase. Loaded
// (deserialized) indexes report zero durations: the report describes a
// Build call, not the index state.
func (ix *Index) BuildReport() metrics.BuildReport { return ix.report }

// EnableTracing installs a fresh per-query span tracer built from cfg and
// returns it. Searchers created afterwards (including the throwaway ones
// behind Index.Search/SearchWith) record a QueryTrace per query; Searchers
// created earlier keep running untraced. Safe to call while queries are in
// flight.
func (ix *Index) EnableTracing(cfg trace.Config) *trace.Tracer {
	t := trace.New(cfg)
	ix.tracer.Store(t)
	return t
}

// DisableTracing detaches the index tracer; existing Searchers keep their
// recorders until replaced.
func (ix *Index) DisableTracing() { ix.tracer.Store(nil) }

// Tracer returns the active tracer, or nil when tracing is disabled.
func (ix *Index) Tracer() *trace.Tracer { return ix.tracer.Load() }

// SetLogger replaces the structured logger used by Add and WriteTo —
// the hook for indexes loaded from disk, whose on-disk config carries no
// logger. nil discards.
func (ix *Index) SetLogger(l *slog.Logger) { ix.cfg.Logger = l }

// RecallSampling reports the effective shadow-exact sampling stride: every
// n-th query is verified (0 = sampling disabled — never configured, or the
// index was loaded from disk, which drops the retained vectors).
func (ix *Index) RecallSampling() (everyNth uint64) {
	if ix.retained == nil {
		return 0
	}
	return ix.recallEvery
}

// ProjectQuery rotates a raw query into the index's PCA space. Exposed for
// benchmarks that amortize projection across search modes.
func (ix *Index) ProjectQuery(q []float32) ([]float32, error) {
	if len(q) != ix.queryDim {
		return nil, fmt.Errorf("core: query dim %d, index dim %d", len(q), ix.queryDim)
	}
	return ix.model.ProjectVec(q)
}
