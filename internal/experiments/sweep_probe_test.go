package experiments

import (
	"math/rand"
	"os"
	"testing"

	"vaq/internal/core"
	"vaq/internal/dataset"
	"vaq/internal/eval"
)

// TestProbeSmoothness is a tuning aid, not a regression test: it prints
// VAQ-vs-PQ recall across the RandomWalk smoothness knob at the Figure 6
// configuration (256 bits, 32 subspaces), which is how the generator
// settings in dataset.Large were calibrated (see DESIGN.md "Generator
// rationale"). Run explicitly with:
//
//	VAQ_PROBE=1 go test ./internal/experiments -run TestProbeSmoothness -v
func TestProbeSmoothness(t *testing.T) {
	if os.Getenv("VAQ_PROBE") == "" {
		t.Skip("probe disabled (set VAQ_PROBE=1)")
	}
	const n, nq, k = 8000, 25, 100
	for _, sm := range []float64{0.3, 0.5, 0.65, 0.75, 0.9} {
		rng := rand.New(rand.NewSource(42))
		base := dataset.RandomWalk(rng, n, 128, sm)
		queries := dataset.NoisyQueries(rng, base, nq, 0.02, 0.3)
		ds := &dataset.Dataset{Name: "probe", Base: base, Train: base, Queries: queries}
		gt, err := eval.GroundTruth(base, queries, k)
		if err != nil {
			t.Fatal(err)
		}
		vaqM, err := buildVAQ("VAQ", ds, vaqConfig(256, 32, 42),
			core.SearchOptions{VisitFrac: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		pqM, err := buildPQ("PQ", ds, 32, 8, 42)
		if err != nil {
			t.Fatal(err)
		}
		v, err := evaluate(vaqM, queries, gt, k)
		if err != nil {
			t.Fatal(err)
		}
		p, err := evaluate(pqM, queries, gt, k)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("smoothness %.2f: VAQ %.4f (%.2fms)  PQ %.4f (%.2fms)",
			sm, v.recall, v.avgQuerySec*1000, p.recall, p.avgQuerySec*1000)
	}
}
