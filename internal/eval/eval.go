// Package eval provides the evaluation harness: exact ground truth
// (parallel brute force), the paper's two accuracy measures (Recall and
// Mean Average Precision, §IV "Evaluation Measures"), and the statistical
// machinery of §IV "Statistical Analysis" (Wilcoxon signed-rank, Friedman,
// and Nemenyi critical differences).
package eval

import (
	"fmt"
	"runtime"
	"sync"

	"vaq/internal/vec"
)

// GroundTruth computes, for every query, the ids of its k exact nearest
// neighbors under squared Euclidean distance, in ascending order.
func GroundTruth(base, queries *vec.Matrix, k int) ([][]int, error) {
	if base.Cols != queries.Cols {
		return nil, fmt.Errorf("eval: base dim %d != query dim %d", base.Cols, queries.Cols)
	}
	if k < 1 {
		return nil, fmt.Errorf("eval: k must be >= 1, got %d", k)
	}
	if k > base.Rows {
		k = base.Rows
	}
	out := make([][]int, queries.Rows)
	workers := runtime.GOMAXPROCS(0)
	if workers > queries.Rows {
		workers = queries.Rows
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk := vec.NewTopK(k)
			for qi := range next {
				tk.Reset()
				q := queries.Row(qi)
				for i := 0; i < base.Rows; i++ {
					tk.Push(i, vec.SquaredL2(q, base.Row(i)))
				}
				res := tk.Results()
				ids := make([]int, len(res))
				for j, r := range res {
					ids[j] = r.ID
				}
				out[qi] = ids
				tk = vec.NewTopK(k) // Reset keeps capacity; re-new for clarity
			}
		}()
	}
	for qi := 0; qi < queries.Rows; qi++ {
		next <- qi
	}
	close(next)
	wg.Wait()
	return out, nil
}

// Recall computes the paper's workload recall: the average over queries of
// (|returned ∩ true top-k| / k). results[i] holds the ids returned for
// query i (only the first k entries are considered).
func Recall(results [][]int, truth [][]int, k int) float64 {
	if len(results) == 0 {
		return 0
	}
	var total float64
	for i, res := range results {
		t := truth[i]
		kk := k
		if kk > len(t) {
			kk = len(t)
		}
		if kk == 0 {
			continue
		}
		trueSet := make(map[int]struct{}, kk)
		for _, id := range t[:kk] {
			trueSet[id] = struct{}{}
		}
		hits := 0
		upto := k
		if upto > len(res) {
			upto = len(res)
		}
		for _, id := range res[:upto] {
			if _, ok := trueSet[id]; ok {
				hits++
			}
		}
		total += float64(hits) / float64(kk)
	}
	return total / float64(len(results))
}

// MAP computes the paper's mean average precision at k: for each query,
// AP = (Σ_r P(r)·rel(r)) / k where P(r) is the precision among the first r
// returned items and rel(r) is 1 when the r-th returned item is a true
// neighbor.
func MAP(results [][]int, truth [][]int, k int) float64 {
	if len(results) == 0 {
		return 0
	}
	var total float64
	for i, res := range results {
		t := truth[i]
		kk := k
		if kk > len(t) {
			kk = len(t)
		}
		if kk == 0 {
			continue
		}
		trueSet := make(map[int]struct{}, kk)
		for _, id := range t[:kk] {
			trueSet[id] = struct{}{}
		}
		hits := 0
		var ap float64
		upto := k
		if upto > len(res) {
			upto = len(res)
		}
		for r, id := range res[:upto] {
			if _, ok := trueSet[id]; ok {
				hits++
				ap += float64(hits) / float64(r+1)
			}
		}
		total += ap / float64(kk)
	}
	return total / float64(len(results))
}

// IDs extracts the neighbor ids from a search result.
func IDs(res []vec.Neighbor) []int {
	out := make([]int, len(res))
	for i, r := range res {
		out[i] = r.ID
	}
	return out
}
