// Package workload captures sampled production queries into a replayable
// log. Where internal/metrics aggregates what already happened and
// internal/trace explains single queries, workload makes the traffic itself
// portable: a Capture hooks into the query path (deterministic atomic-stride
// sampling, lock-free append into a bounded buffer), a Log serializes the
// sample to a versioned compact binary file (.vaqwl) tagged with the index's
// config fingerprint, and Replay re-runs the log against any index — the
// same one, or a rebuild under different parameters — diffing every answer
// against the recorded ground truth (overlap@k, distance drift, latency
// delta). Stdlib-only and dependency-free, so internal/core can import it.
package workload

import (
	"sort"
	"sync/atomic"
	"time"
)

// Record is one captured query with the answer the serving index returned
// at capture time — the ground truth a replay diffs against.
type Record struct {
	// OffsetNs is the query's start offset from the capture's start, used
	// by paced replay to reproduce the recorded arrival spacing.
	OffsetNs int64
	// LatencyNs is the recorded scan latency (projection excluded, the
	// same window the metrics histogram observes).
	LatencyNs int64
	// TraceSeq is the QueryTrace sequence number assigned by the tracer
	// when tracing was on at capture time (0 = untraced), so a log entry
	// can be correlated with its span-level exemplar.
	TraceSeq uint64
	// K, Mode, VisitFrac and Subspaces reproduce the SearchOptions the
	// query ran under. Mode is the integer value of core.SearchMode; this
	// package stays dependency-free, so it does not name the type.
	K         int32
	Mode      int32
	VisitFrac float64
	Subspaces int32
	// Projected marks a query captured via SearchProjected: Query is then
	// already in the index's PCA space and must be replayed the same way.
	Projected bool
	// Query is the query vector (raw unless Projected).
	Query []float32
	// IDs and Dists are the recorded result list, nearest first.
	IDs   []int32
	Dists []float32
}

// Config tunes a Capture.
type Config struct {
	// SampleRate is the fraction of queries captured; like the recall
	// estimator, it is realized as a deterministic every-round(1/rate)-th
	// stride, not a coin flip (<=0 or >=1 means every query).
	SampleRate float64
	// MaxRecords bounds the capture buffer (default 65536). Once full,
	// further sampled queries are counted in Dropped and discarded — the
	// hot path never blocks and never reallocates.
	MaxRecords int
	// Ring turns the bounded buffer into a ring over the newest MaxRecords
	// sampled queries: instead of discarding once full, Add overwrites the
	// oldest record (each overwrite still counts in Dropped). This is the
	// flight-recorder shape — "the last N queries before the incident" —
	// where the default fill-once shape is the capture-a-session shape.
	Ring bool
	// Fingerprint tags the log with the capturing index's config
	// fingerprint (core fills this in EnableCapture).
	Fingerprint string
	// Dim is the raw query dimensionality of the capturing index.
	Dim int
	// Shards is the capturing index's shard count (internal/shard fills
	// this in EnableCapture; 0 = unsharded), stored in the log's
	// provenance so a replay knows which scatter shape produced the
	// recorded answers.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.MaxRecords <= 0 {
		c.MaxRecords = 65536
	}
	return c
}

// Capture is a lock-free bounded recorder of sampled queries. All methods
// are safe for concurrent use from any number of Searchers, and every
// recording method is nil-safe so the disabled cost at a call site is one
// pointer check.
type Capture struct {
	cfg     Config
	stride  uint64
	start   time.Time
	ctr     atomic.Uint64
	next    atomic.Uint64
	dropped atomic.Uint64
	slots   []atomic.Pointer[Record]
}

// NewCapture returns an empty capture buffer. The capture clock (record
// offsets) starts now.
func NewCapture(cfg Config) *Capture {
	cfg = cfg.withDefaults()
	return &Capture{
		cfg:    cfg,
		stride: SampleStride(cfg.SampleRate),
		start:  time.Now(),
		slots:  make([]atomic.Pointer[Record], cfg.MaxRecords),
	}
}

// SampleStride converts a sampling fraction into the deterministic
// every-Nth stride (rate <= 0 or >= 1 → every query), mirroring the recall
// estimator's scheme.
func SampleStride(rate float64) uint64 {
	if rate <= 0 || rate >= 1 {
		return 1
	}
	s := uint64(1/rate + 0.5)
	if s < 1 {
		s = 1
	}
	return s
}

// ShouldSample reports whether the current query is on the sampling stride.
// One atomic add per query when capture is enabled.
func (c *Capture) ShouldSample() bool {
	if c == nil {
		return false
	}
	return c.ctr.Add(1)%c.stride == 0
}

// Add files one record, stamping its offset on the capture clock. Past
// MaxRecords the record is dropped and counted (fill-once mode) or
// overwrites the oldest record (Ring mode); the buffer never grows.
func (c *Capture) Add(r *Record) {
	if c == nil || r == nil {
		return
	}
	r.OffsetNs = time.Since(c.start).Nanoseconds()
	slot := c.next.Add(1) - 1
	if slot >= uint64(len(c.slots)) {
		c.dropped.Add(1)
		if !c.cfg.Ring {
			return
		}
		slot %= uint64(len(c.slots))
	}
	c.slots[slot].Store(r)
}

// Len reports how many records have been stored so far.
func (c *Capture) Len() int {
	if c == nil {
		return 0
	}
	n := c.next.Load()
	if n > uint64(len(c.slots)) {
		n = uint64(len(c.slots))
	}
	// Stored slots may trail the reservation counter for an instant while
	// a writer is between Add's reservation and Store; count only visible
	// records so Len agrees with what Snapshot would return.
	count := 0
	for i := uint64(0); i < n; i++ {
		if c.slots[i].Load() != nil {
			count++
		}
	}
	return count
}

// Sampled reports how many queries passed the sampling stride (stored +
// dropped).
func (c *Capture) Sampled() uint64 {
	if c == nil {
		return 0
	}
	return c.next.Load()
}

// Dropped reports how many sampled queries were discarded because the
// buffer was full.
func (c *Capture) Dropped() uint64 {
	if c == nil {
		return 0
	}
	return c.dropped.Load()
}

// Stride reports the effective sampling stride (1 = every query).
func (c *Capture) Stride() uint64 {
	if c == nil {
		return 0
	}
	return c.stride
}

// Snapshot assembles the captured records, in capture order (oldest first,
// which in Ring mode means starting past the newest overwrite), into a Log
// ready for serialization. Concurrent Adds during the snapshot may or may
// not be included (slots still mid-Store are skipped); the returned Log
// aliases the stored records, which are never mutated after Add.
func (c *Capture) Snapshot() *Log {
	if c == nil {
		return nil
	}
	total := c.next.Load()
	n := total
	if n > uint64(len(c.slots)) {
		n = uint64(len(c.slots))
	}
	var first uint64
	if c.cfg.Ring && total > n {
		// The ring wrapped: the oldest retained record sits at the slot the
		// next Add would claim. Records racing the snapshot can make slot
		// order disagree with offset order near the seam, so re-sort below.
		first = total % n
	}
	recs := make([]Record, 0, n)
	for i := uint64(0); i < n; i++ {
		if r := c.slots[(first+i)%uint64(len(c.slots))].Load(); r != nil {
			recs = append(recs, *r)
		}
	}
	if first != 0 {
		sort.SliceStable(recs, func(a, b int) bool {
			return recs[a].OffsetNs < recs[b].OffsetNs
		})
	}
	return &Log{
		Version:     FormatVersion,
		Fingerprint: c.cfg.Fingerprint,
		Dim:         c.cfg.Dim,
		Shards:      c.cfg.Shards,
		Records:     recs,
	}
}
