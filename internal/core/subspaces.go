// Package core implements Variance-Aware Quantization (VAQ), the primary
// contribution of the paper: PCA-derived subspaces with importance-ordered
// dimensions (§III-B), partial importance balancing plus constrained
// adaptive bit allocation (§III-C, Algorithm 2), variable-sized dictionary
// encoding with triangle-inequality cluster structure (§III-D,
// Algorithm 3), and query execution with data skipping and early
// abandoning (§III-E, Algorithm 4). The end-to-end pipeline (Algorithm 5)
// lives in vaq.go.
package core

import (
	"fmt"

	"vaq/internal/kmeans"
)

// buildSubspaceLengths decides how many (PCA-ordered) dimensions each of
// the m subspaces receives.
//
// Uniform mode mirrors PQ/OPQ (q = d/m with the remainder spread over the
// leading subspaces). Non-uniform mode clusters the sorted variance ratios
// with exact 1-D k-means so that dimensions explaining similar portions of
// the variance share a subspace (paper §III-B, "Clustering of Dimensions"),
// then repairs the subspace importance ordering.
func buildSubspaceLengths(ratios []float64, m int, nonUniform bool) ([]int, error) {
	d := len(ratios)
	if m < 1 || m > d {
		return nil, fmt.Errorf("core: cannot build %d subspaces over %d dimensions", m, d)
	}
	if !nonUniform {
		base, rem := d/m, d%m
		lengths := make([]int, m)
		for i := range lengths {
			lengths[i] = base
			if i < rem {
				lengths[i]++
			}
		}
		return lengths, nil
	}
	lengths, err := kmeans.Segment1D(ratios, m)
	if err != nil {
		return nil, fmt.Errorf("core: clustering dimension variances: %w", err)
	}
	repairImportanceOrdering(ratios, lengths)
	return lengths, nil
}

// repairImportanceOrdering enforces that subspace variance sums are
// non-increasing by moving dimensions from the right-adjacent subspace into
// the violating one (paper §III-B, "Preserving Subspace Importance
// Ordering"). ratios must be sorted descending; lengths is adjusted in
// place. Because dimensions are sorted, a repair always exists.
func repairImportanceOrdering(ratios []float64, lengths []int) {
	m := len(lengths)
	sums := make([]float64, m)
	start := 0
	for i, l := range lengths {
		for j := start; j < start+l; j++ {
			sums[i] += ratios[j]
		}
		start += l
	}
	for pass := 0; pass < len(ratios); pass++ {
		changed := false
		start = 0
		for i := 0; i < m-1; i++ {
			for sums[i] < sums[i+1] && lengths[i+1] > 1 {
				// Move the first (largest) dimension of subspace i+1 to
				// the end of subspace i.
				moved := ratios[start+lengths[i]]
				lengths[i]++
				lengths[i+1]--
				sums[i] += moved
				sums[i+1] -= moved
				changed = true
			}
			start += lengths[i]
		}
		if !changed {
			return
		}
	}
}

// subspaceVariances sums the per-dimension variance ratios inside each
// subspace (paper Equation 5 with the normalized eigenvalue energies of
// Equation 6).
func subspaceVariances(ratios []float64, lengths []int) []float64 {
	out := make([]float64, len(lengths))
	start := 0
	for i, l := range lengths {
		for j := start; j < start+l; j++ {
			out[i] += ratios[j]
		}
		start += l
	}
	return out
}
