package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyScale keeps the full experiment sweep fast enough for CI.
var tinyScale = Scale{N: 1500, NQ: 8, GalleryCount: 8, GalleryTrain: 250, Seed: 7}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{"fig1", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
		"tab1", "tab2", "fig10", "fig11", "fig12", "ablation-alloc", "ablation-ti", "scale", "extra-baselines"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Title == "" || reg[i].Run == nil {
			t.Fatalf("registry[%d] incomplete", i)
		}
	}
	if _, ok := Find("fig7"); !ok {
		t.Fatal("Find should locate fig7")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find should miss unknown ids")
	}
}

// Each experiment must run end-to-end at tiny scale and produce the
// markers its table carries.
func TestAllExperimentsSmoke(t *testing.T) {
	markers := map[string][]string{
		"fig1":            {"SIFT", "DEEP", "SALD", "VAQ", "PQFS", "speedup"},
		"fig3":            {"CBF", "SLC", "variance in first 20 PCs"},
		"fig4":            {"CBF", "SLC", "subspaces", "VAQ", "OPQ", "PQ"},
		"fig6":            {"ASTRO", "SEISMIC", "ITQ-LSH", "MAP"},
		"fig7":            {"Heap", "EA", "TI+EA-0.25", "TI+EA-0.1"},
		"fig8":            {"Bolt", "PQFS", "speedup@recall"},
		"fig9":            {"uniform-subs", "clustered-subs", "adaptive-bits"},
		"tab1":            {"VAQ (this work)", "KSSQ"},
		"tab2":            {"VAQ-128", "OPQ-64", "Rec@5", "MAP@10"},
		"fig10":           {"Friedman", "Nemenyi", "Wilcoxon", "average rank"},
		"fig11":           {"VAQ-0.1", "IMI+OPQ", "iSAX2+", "DSTree", "eps-0.0"},
		"fig12":           {"VAQ visit-0.05", "HNSW(PQ) M=8", "preprocess"},
		"ablation-alloc":  {"milp", "transform-coding", "uniform", "allocation["},
		"ablation-ti":     {"visit-0.05", "visit-1.00"},
		"scale":           {"VAQ-0.1", "PQ", "build(s)"},
		"extra-baselines": {"TC", "VQ", "E2LSH", "VAQ"},
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, tinyScale); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 50 {
				t.Fatalf("%s output suspiciously short:\n%s", e.ID, out)
			}
			for _, m := range markers[e.ID] {
				if !strings.Contains(out, m) {
					t.Fatalf("%s output missing %q:\n%s", e.ID, m, out)
				}
			}
		})
	}
}

// The headline claims of the paper must hold in shape at tiny scale on the
// gallery: VAQ >= OPQ >= PQ >= Bolt on average Recall@5 at equal budget.
func TestGalleryShapeOrdering(t *testing.T) {
	scores, err := computeGalleryScores(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	avg := make(map[string]float64)
	for ci, name := range scores.methodNames {
		var sum float64
		for _, row := range scores.recall5 {
			sum += row[ci]
		}
		avg[name] = sum / float64(len(scores.recall5))
	}
	// Allow small noise at tiny scale, but the ordering must hold broadly.
	const slack = 0.03
	if avg["VAQ-128"]+slack < avg["OPQ-128"] {
		t.Fatalf("VAQ-128 (%v) should beat OPQ-128 (%v)", avg["VAQ-128"], avg["OPQ-128"])
	}
	if avg["OPQ-128"]+2*slack < avg["PQ-128"] {
		t.Fatalf("OPQ-128 (%v) should be at least near PQ-128 (%v)", avg["OPQ-128"], avg["PQ-128"])
	}
	if avg["PQ-128"]+slack < avg["Bolt-128"] {
		t.Fatalf("PQ-128 (%v) should beat Bolt-128 (%v)", avg["PQ-128"], avg["Bolt-128"])
	}
	if avg["VAQ-64"]+slack < avg["PQ-64"] {
		t.Fatalf("VAQ-64 (%v) should beat PQ-64 (%v)", avg["VAQ-64"], avg["PQ-64"])
	}
}
