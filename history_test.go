package vaq

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistoryEndToEnd drives the public history surface on an index whose
// every query violates its latency SLO: arming, trend series, the
// multi-window burn-rate handoff (vaq.burn replaces the instantaneous
// vaq.slo edge while armed), dump validation, and disarming.
func TestHistoryEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := genData(rng, 900, 24)
	ix, err := Build(data, Config{
		NumSubspaces: 6, Budget: 36, Seed: 11, TIClusters: 20,
		SLO: &SLO{LatencyTarget: time.Nanosecond, Window: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	col, err := ix.EnableHistory("hist_index", HistoryConfig{
		Interval: 10 * time.Millisecond,
		Burn: []BurnRule{
			{Name: "fast", Window: 300 * time.Millisecond, Confirm: 50 * time.Millisecond, Threshold: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ix.History() != col {
		t.Fatal("History() does not return the armed collector")
	}
	if _, err := ix.EnableHistory("again", HistoryConfig{}); err == nil {
		t.Fatal("second EnableHistory should error while armed")
	}

	// Wait for the collector's arming sweep to delegate the SLO edge
	// before any violating traffic, so the legacy latch cannot fire in the
	// gap.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !ix.inner.Metrics().SLODelegated() {
		time.Sleep(time.Millisecond)
	}
	if !ix.inner.Metrics().SLODelegated() {
		t.Fatal("collector never delegated the SLO edge")
	}

	// Violating traffic until the fast burn rule is eligible and fires.
	deadline = time.Now().Add(5 * time.Second)
	bus := ix.Alerts()
	for time.Now().Before(deadline) && !bus.Lookup("vaq.burn.latency.fast").Firing() {
		for i := 0; i < 10; i++ {
			if _, err := ix.Search(data[i], 5); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !bus.Lookup("vaq.burn.latency.fast").Firing() {
		t.Fatal("vaq.burn.latency.fast never fired under sustained violation")
	}
	if bus.Lookup("vaq.slo.latency").Firing() {
		t.Fatal("instantaneous SLO edge fired while burn rules were armed")
	}

	// The trend store is queryable through the collector.
	s := col.Series("hist_index", "queries")
	if s == nil {
		t.Fatal("queries series missing")
	}
	if p, ok := s.Last(); !ok || p.Val == 0 {
		t.Fatalf("queries series last = %+v ok=%v", p, ok)
	}
	d := col.Dump()
	if err := ValidateHistoryDump(d); err != nil {
		t.Fatalf("live dump invalid: %v", err)
	}
	if d.Collector != "hist_index" {
		t.Fatalf("dump collector %q", d.Collector)
	}

	ix.DisableHistory()
	if ix.History() != nil {
		t.Fatal("DisableHistory left the collector armed")
	}
	// The instantaneous edge is back in charge: fresh violating traffic
	// pages through vaq.slo.latency again.
	ix.ResetMetrics()
	for i := 0; i < 20; i++ {
		if _, err := ix.Search(data[i], 5); err != nil {
			t.Fatal(err)
		}
	}
	if !bus.Lookup("vaq.slo.latency").Firing() {
		t.Fatal("instantaneous SLO edge did not resume after DisableHistory")
	}
}

// TestHistoryRacesMetricsAndTraffic runs the collector's background
// sampler against concurrent Search, Add and ResetMetrics — the race
// detector run proves the lock-free series writes and the snapshot reads
// are safe against every mutation path, and the dump taken afterwards
// still validates.
func TestHistoryRacesMetricsAndTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := genData(rng, 900, 24)
	ix, err := Build(data, Config{
		NumSubspaces: 6, Budget: 36, Seed: 13, TIClusters: 20,
		SLO: &SLO{LatencyTarget: time.Nanosecond, Window: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	col, err := ix.EnableHistory("race_hist", HistoryConfig{Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 15
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*10; i++ {
			if _, err := ix.Search(data[i%len(data)], 5); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		batchRng := rand.New(rand.NewSource(78))
		for i := 0; i < rounds; i++ {
			if _, err := ix.Add(genData(batchRng, 15, 24)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			ix.ResetMetrics()
			time.Sleep(time.Millisecond)
		}
	}()
	go func() { // concurrent readers of the store under write load
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if s := col.Series("race_hist", "queries"); s != nil {
				pts := s.Range(0, 0)
				for k := 1; k < len(pts); k++ {
					if pts[k].TS < pts[k-1].TS {
						t.Error("range regressed under concurrent sampling")
						return
					}
				}
			}
			_ = col.Dump()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	d := col.Dump()
	if err := ValidateHistoryDump(d); err != nil {
		t.Fatalf("dump after race invalid: %v", err)
	}
	ix.DisableHistory()
}

// TestShardedHistoryWatchesEveryShard checks the scatter-gather wiring:
// one collector samples the merged registry and one target per shard, and
// the text render carries all of them.
func TestShardedHistoryWatchesEveryShard(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	data := genData(rng, 900, 32)
	sx, err := BuildSharded(data, Config{NumSubspaces: 8, Budget: 48, Seed: 17, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	col, err := sx.EnableHistory("sharded_hist", HistoryConfig{Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sx.DisableHistory()

	for qi := 0; qi < 30; qi++ {
		if _, err := sx.Search(data[qi], 5); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"sharded_hist", "sharded_hist/shard-0", "sharded_hist/shard-1", "sharded_hist/shard-2", "sharded_hist/shard-3"}
	deadline := time.Now().Add(2 * time.Second)
	for {
		got := col.Targets()
		if len(got) == len(want) {
			ok := true
			for i := range want {
				ok = ok && got[i] == want[i]
			}
			if ok {
				break
			}
			t.Fatalf("targets %v, want %v", got, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("targets %v, want %v", got, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Every shard target accumulates samples (queries may be zero on a
	// pruned shard, but the series itself must exist and have points).
	deadline = time.Now().Add(2 * time.Second)
	for _, name := range want {
		for {
			s := col.Series(name, "queries")
			if s != nil {
				if _, ok := s.Last(); ok {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("target %s has no sampled queries series", name)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	var sb strings.Builder
	d := col.Dump()
	if err := ValidateHistoryDump(d); err != nil {
		t.Fatal(err)
	}
	if len(d.Targets) != 5 {
		t.Fatalf("dump has %d targets, want 5", len(d.Targets))
	}
	for _, td := range d.Targets {
		sb.WriteString(td.Name)
		sb.WriteByte('\n')
	}
	for _, name := range want {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("dump missing target %s", name)
		}
	}
}
