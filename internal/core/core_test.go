package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vaq/internal/vec"
)

// skewedData produces data whose PCA spectrum decays like 1/(j+1)^p —
// the skew VAQ exploits (paper §III-C).
func skewedData(rng *rand.Rand, n, d int, power float64) *vec.Matrix {
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		for j := 0; j < d; j++ {
			scale := math.Pow(float64(j+1), -power)
			center := float64(rng.Intn(3)-1) * 2 * scale
			r[j] = float32(center + rng.NormFloat64()*0.3*scale)
		}
	}
	return x
}

func TestBuildSubspaceLengthsUniform(t *testing.T) {
	ratios := []float64{0.4, 0.3, 0.15, 0.1, 0.04, 0.01}
	l, err := buildSubspaceLengths(ratios, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if l[0] != 2 || l[1] != 2 || l[2] != 2 {
		t.Fatalf("lengths %v", l)
	}
	l, err = buildSubspaceLengths(ratios[:5], 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if l[0] != 2 || l[1] != 2 || l[2] != 1 {
		t.Fatalf("lengths %v", l)
	}
	if _, err := buildSubspaceLengths(ratios, 0, false); err == nil {
		t.Fatal("m=0 must fail")
	}
	if _, err := buildSubspaceLengths(ratios, 9, false); err == nil {
		t.Fatal("m>d must fail")
	}
}

func TestBuildSubspaceLengthsNonUniform(t *testing.T) {
	// Strong variance clusters: {0.5, 0.45} then tail.
	ratios := []float64{0.5, 0.45, 0.02, 0.015, 0.01, 0.005}
	l, err := buildSubspaceLengths(ratios, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 2 || l[0]+l[1] != 6 {
		t.Fatalf("lengths %v", l)
	}
	if l[0] != 2 {
		t.Fatalf("expected head subspace of 2 high-variance dims, got %v", l)
	}
	sums := subspaceVariances(ratios, l)
	if sums[0] < sums[1] {
		t.Fatalf("importance ordering violated: %v", sums)
	}
}

func TestRepairImportanceOrdering(t *testing.T) {
	// One huge dim alone, then many mid dims summing above it.
	ratios := []float64{10, 4, 4, 4, 1, 1}
	lengths := []int{1, 3, 2} // sums: 10, 12, 2 -> violation between 0 and 1
	repairImportanceOrdering(ratios, lengths)
	sums := subspaceVariances(ratios, lengths)
	for i := 1; i < len(sums); i++ {
		if sums[i] > sums[i-1]+1e-12 {
			t.Fatalf("still violated: lengths %v sums %v", lengths, sums)
		}
	}
	total := 0
	for _, l := range lengths {
		if l < 1 {
			t.Fatalf("empty subspace: %v", lengths)
		}
		total += l
	}
	if total != 6 {
		t.Fatalf("dims lost: %v", lengths)
	}
}

// Property: repaired lengths always give non-increasing subspace sums and
// preserve the dimension count for any descending-sorted ratios.
func TestRepairOrderingProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := rng.Intn(30) + 4
		m := int(mRaw)%(d/2+1) + 1
		ratios := make([]float64, d)
		for i := range ratios {
			ratios[i] = rng.Float64()
		}
		// sort descending
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if ratios[j] > ratios[i] {
					ratios[i], ratios[j] = ratios[j], ratios[i]
				}
			}
		}
		lengths, err := buildSubspaceLengths(ratios, m, true)
		if err != nil {
			return false
		}
		sums := subspaceVariances(ratios, lengths)
		total := 0
		for i, l := range lengths {
			if l < 1 {
				return false
			}
			total += l
			if i > 0 && sums[i] > sums[i-1]+1e-9 {
				return false
			}
		}
		return total == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPartialBalanceInvariants(t *testing.T) {
	ratios := []float64{0.4, 0.2, 0.1, 0.08, 0.07, 0.06, 0.05, 0.04}
	lengths := []int{2, 2, 2, 2}
	perm := partialBalance(ratios, lengths)
	// Must be a permutation.
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[p] = true
	}
	balanced := applyPermutationFloat64(ratios, perm)
	sums := subspaceVariances(balanced, lengths)
	for i := 1; i < len(sums); i++ {
		if sums[i] > sums[i-1]+1e-12 {
			t.Fatalf("global ordering violated: %v", sums)
		}
	}
	// Balancing must not increase imbalance (stddev of subspace sums).
	origSums := subspaceVariances(ratios, lengths)
	if stddev(sums) > stddev(origSums)+1e-12 {
		t.Fatalf("imbalance increased: %v -> %v", origSums, sums)
	}
	// The best PC of each subspace must stay in place: position 0 holds
	// original dim 0.
	if perm[0] != 0 {
		t.Fatalf("first PC moved: %v", perm)
	}
}

func stddev(v []float64) float64 {
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	var ss float64
	for _, x := range v {
		ss += (x - mean) * (x - mean)
	}
	return math.Sqrt(ss / float64(len(v)))
}

// Property: partialBalance always yields a permutation that preserves the
// global subspace-importance ordering and never increases imbalance.
func TestPartialBalanceProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(mRaw)%6 + 2
		perSub := rng.Intn(4) + 1
		d := m * perSub
		ratios := make([]float64, d)
		for i := range ratios {
			ratios[i] = rng.Float64() + 0.001
		}
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if ratios[j] > ratios[i] {
					ratios[i], ratios[j] = ratios[j], ratios[i]
				}
			}
		}
		lengths := make([]int, m)
		for i := range lengths {
			lengths[i] = perSub
		}
		perm := partialBalance(ratios, lengths)
		seen := make([]bool, d)
		for _, p := range perm {
			if p < 0 || p >= d || seen[p] {
				return false
			}
			seen[p] = true
		}
		balanced := applyPermutationFloat64(ratios, perm)
		sums := subspaceVariances(balanced, lengths)
		for i := 1; i < m; i++ {
			if sums[i] > sums[i-1]+1e-9 {
				return false
			}
		}
		return stddev(sums) <= stddev(subspaceVariances(ratios, lengths))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateMILPBasics(t *testing.T) {
	p := allocParams{
		Weights:        []float64{0.5, 0.25, 0.15, 0.1},
		Budget:         20,
		MinBits:        1,
		MaxBits:        8,
		TargetVariance: 0.99,
	}
	bits, err := allocateBits(AllocMILP, p)
	if err != nil {
		t.Fatal(err)
	}
	checkAllocation(t, bits, p)
	// More important subspaces must get at least as many bits.
	if bits[0] < bits[3] {
		t.Fatalf("allocation not importance-ordered: %v", bits)
	}
	// The first subspace should get strictly more than uniform (5).
	if bits[0] <= 5 {
		t.Fatalf("adaptive allocation should exceed uniform on skewed weights: %v", bits)
	}
}

func checkAllocation(t *testing.T, bits []int, p allocParams) {
	t.Helper()
	if len(bits) != len(p.Weights) {
		t.Fatalf("allocation length %d want %d", len(bits), len(p.Weights))
	}
	sum := 0
	for i, b := range bits {
		if b < p.MinBits || b > p.MaxBits {
			t.Fatalf("bits[%d]=%d outside [%d,%d]: %v", i, b, p.MinBits, p.MaxBits, bits)
		}
		if i > 0 && b > bits[i-1] {
			t.Fatalf("allocation not monotone: %v", bits)
		}
		sum += b
	}
	if sum != p.Budget {
		t.Fatalf("allocation sums to %d want %d: %v", sum, p.Budget, bits)
	}
}

func TestAllocateMILPTightBudgets(t *testing.T) {
	// Feasibility edge: budget exactly m*MinBits.
	p := allocParams{Weights: []float64{0.6, 0.4}, Budget: 2, MinBits: 1, MaxBits: 8, TargetVariance: 0.99}
	bits, err := allocateBits(AllocMILP, p)
	if err != nil {
		t.Fatal(err)
	}
	checkAllocation(t, bits, p)
	// Budget exactly m*MaxBits.
	p = allocParams{Weights: []float64{0.6, 0.4}, Budget: 16, MinBits: 1, MaxBits: 8, TargetVariance: 0.99}
	bits, err = allocateBits(AllocMILP, p)
	if err != nil {
		t.Fatal(err)
	}
	checkAllocation(t, bits, p)
	if bits[0] != 8 || bits[1] != 8 {
		t.Fatalf("full budget should saturate: %v", bits)
	}
}

func TestAllocateMILPCapRelaxation(t *testing.T) {
	// The case where proportional caps alone are infeasible: very skewed
	// weights, high budget; solver must relax caps and still succeed.
	p := allocParams{Weights: []float64{0.95, 0.05}, Budget: 8, MinBits: 1, MaxBits: 4, TargetVariance: 0.99}
	bits, err := allocateBits(AllocMILP, p)
	if err != nil {
		t.Fatal(err)
	}
	checkAllocation(t, bits, p)
	if bits[0] != 4 || bits[1] != 4 {
		t.Fatalf("only feasible allocation is (4,4): %v", bits)
	}
}

func TestAllocateMILPTargetVariance(t *testing.T) {
	// With τ = 0.5, only the first subspace participates (w0 covers 60%);
	// the rest must sit at MinBits.
	p := allocParams{
		Weights:        []float64{0.6, 0.2, 0.1, 0.1},
		Budget:         10,
		MinBits:        1,
		MaxBits:        8,
		TargetVariance: 0.5,
	}
	bits, err := allocateBits(AllocMILP, p)
	if err != nil {
		t.Fatal(err)
	}
	checkAllocation(t, bits, p)
	if bits[1] != 1 || bits[2] != 1 || bits[3] != 1 {
		t.Fatalf("tail should hold MinBits under tight target: %v", bits)
	}
	if bits[0] != 7 {
		t.Fatalf("head should absorb the rest: %v", bits)
	}
}

func TestAllocateValidation(t *testing.T) {
	base := allocParams{Weights: []float64{0.5, 0.5}, Budget: 8, MinBits: 1, MaxBits: 8, TargetVariance: 0.99}
	bad := base
	bad.Weights = nil
	if _, err := allocateBits(AllocMILP, bad); err == nil {
		t.Fatal("no weights must fail")
	}
	bad = base
	bad.MinBits = 0
	if _, err := allocateBits(AllocMILP, bad); err == nil {
		t.Fatal("MinBits=0 must fail")
	}
	bad = base
	bad.MaxBits = 17
	if _, err := allocateBits(AllocMILP, bad); err == nil {
		t.Fatal("MaxBits=17 must fail")
	}
	bad = base
	bad.Budget = 1
	if _, err := allocateBits(AllocMILP, bad); err == nil {
		t.Fatal("budget below m*MinBits must fail")
	}
	bad = base
	bad.Budget = 17
	if _, err := allocateBits(AllocMILP, bad); err == nil {
		t.Fatal("budget above m*MaxBits must fail")
	}
	bad = base
	bad.TargetVariance = 1.5
	if _, err := allocateBits(AllocMILP, bad); err == nil {
		t.Fatal("bad target variance must fail")
	}
	if _, err := allocateBits(AllocStrategy(99), base); err == nil {
		t.Fatal("unknown strategy must fail")
	}
}

func TestAllocateTransformCoding(t *testing.T) {
	p := allocParams{
		Weights:        []float64{0.55, 0.25, 0.12, 0.08},
		Budget:         24,
		MinBits:        1,
		MaxBits:        10,
		TargetVariance: 0.99,
	}
	bits, err := allocateBits(AllocTransformCoding, p)
	if err != nil {
		t.Fatal(err)
	}
	checkAllocation(t, bits, p)
	if bits[0] <= bits[3] {
		t.Fatalf("water-filling should favour the head: %v", bits)
	}
}

func TestAllocateUniform(t *testing.T) {
	p := allocParams{Weights: []float64{0.4, 0.3, 0.3}, Budget: 10, MinBits: 1, MaxBits: 8, TargetVariance: 0.99}
	bits, err := allocateBits(AllocUniform, p)
	if err != nil {
		t.Fatal(err)
	}
	checkAllocation(t, bits, p)
	if bits[0] != 4 || bits[1] != 3 || bits[2] != 3 {
		t.Fatalf("got %v", bits)
	}
}

// Property: MILP allocation always satisfies C2 (bounds), C3 (budget) and
// the ordering part of C4, for random descending weight profiles.
func TestAllocateMILPProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(12) + 2
		w := make([]float64, m)
		var sum float64
		for i := range w {
			w[i] = rng.Float64() + 0.01
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				if w[j] > w[i] {
					w[i], w[j] = w[j], w[i]
				}
			}
		}
		lo := 1
		hi := rng.Intn(8) + 2
		budget := m*lo + rng.Intn(m*(hi-lo)+1)
		p := allocParams{Weights: w, Budget: budget, MinBits: lo, MaxBits: hi, TargetVariance: 0.95}
		bits, err := allocateBits(AllocMILP, p)
		if err != nil {
			return false
		}
		got := 0
		for i, b := range bits {
			if b < lo || b > hi {
				return false
			}
			if i > 0 && b > bits[i-1] {
				return false
			}
			got += b
		}
		return got == budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAndSearchEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := skewedData(rng, 2000, 32, 1.0)
	ix, err := Build(x, x, Config{
		NumSubspaces: 8,
		Budget:       64,
		Seed:         1,
		TIClusters:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2000 || ix.Dim() != 32 {
		t.Fatalf("index shape %d %d", ix.Len(), ix.Dim())
	}
	bits := ix.Bits()
	sum := 0
	for _, b := range bits {
		sum += b
	}
	if sum != 64 {
		t.Fatalf("bits %v don't sum to budget", bits)
	}
	if got := len(ix.SubspaceLengths()); got != 8 {
		t.Fatalf("subspace count %d", got)
	}
	res, err := ix.Search(x.Row(10), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	// Recall sanity: querying with a database vector, with full cluster
	// visiting, must return it among the nearest answers.
	hits := 0
	for trial := 0; trial < 20; trial++ {
		qi := rng.Intn(2000)
		res, err := ix.SearchWith(x.Row(qi), 10, SearchOptions{VisitFrac: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.ID == qi {
				hits++
				break
			}
		}
	}
	if hits < 15 {
		t.Fatalf("self-recall %d/20 too low", hits)
	}
}

func TestBuildErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := skewedData(rng, 100, 8, 1.0)
	if _, err := Build(nil, x, Config{NumSubspaces: 2, Budget: 8}); err == nil {
		t.Fatal("nil train must fail")
	}
	if _, err := Build(x, vec.NewMatrix(10, 9), Config{NumSubspaces: 2, Budget: 8}); err == nil {
		t.Fatal("dim mismatch must fail")
	}
	if _, err := Build(x, x, Config{NumSubspaces: 0, Budget: 8}); err == nil {
		t.Fatal("m=0 must fail")
	}
	if _, err := Build(x, x, Config{NumSubspaces: 9, Budget: 64}); err == nil {
		t.Fatal("m>d must fail")
	}
	if _, err := Build(x, x, Config{NumSubspaces: 4, Budget: 2}); err == nil {
		t.Fatal("budget below minimum must fail")
	}
}

func TestSearchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := skewedData(rng, 200, 8, 1.0)
	ix, err := Build(x, x, Config{NumSubspaces: 4, Budget: 16, Seed: 3, TIClusters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(make([]float32, 5), 3); err == nil {
		t.Fatal("bad query dim must fail")
	}
	if _, err := ix.Search(x.Row(0), 0); err == nil {
		t.Fatal("k=0 must fail")
	}
	s := ix.NewSearcher()
	if _, err := s.Search(make([]float32, 5), 3, SearchOptions{}); err == nil {
		t.Fatal("searcher bad dim must fail")
	}
	if _, err := s.SearchProjected(make([]float32, 5), 3, SearchOptions{}); err == nil {
		t.Fatal("bad projected dim must fail")
	}
	if _, err := s.SearchProjected(make([]float32, 8), 0, SearchOptions{}); err == nil {
		t.Fatal("k=0 must fail")
	}
}

// The pruning strategies are exact with respect to the ADC scan: Heap, EA
// and TI+EA at VisitFrac=1.0 must return identical distance profiles.
func TestPruningModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := skewedData(rng, 1500, 24, 1.2)
	ix, err := Build(x, x, Config{NumSubspaces: 6, Budget: 48, Seed: 4, TIClusters: 40})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 15; trial++ {
		q := append([]float32(nil), x.Row(rng.Intn(x.Rows))...)
		for j := range q {
			q[j] += float32(rng.NormFloat64() * 0.05)
		}
		heap, err := ix.SearchWith(q, 10, SearchOptions{Mode: ModeHeap})
		if err != nil {
			t.Fatal(err)
		}
		ea, err := ix.SearchWith(q, 10, SearchOptions{Mode: ModeEA})
		if err != nil {
			t.Fatal(err)
		}
		tiea, err := ix.SearchWith(q, 10, SearchOptions{Mode: ModeTIEA, VisitFrac: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		for i := range heap {
			if math.Abs(float64(heap[i].Dist-ea[i].Dist)) > 1e-5*(1+float64(heap[i].Dist)) {
				t.Fatalf("EA distance differs at %d: %v vs %v", i, ea[i], heap[i])
			}
			if math.Abs(float64(heap[i].Dist-tiea[i].Dist)) > 1e-5*(1+float64(heap[i].Dist)) {
				t.Fatalf("TI+EA distance differs at %d: %v vs %v", i, tiea[i], heap[i])
			}
		}
	}
}

// Partial visiting should retain most of the recall of the full scan.
func TestTIVisitFractionRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := skewedData(rng, 3000, 24, 1.2)
	ix, err := Build(x, x, Config{NumSubspaces: 6, Budget: 48, Seed: 5, TIClusters: 60})
	if err != nil {
		t.Fatal(err)
	}
	match := 0
	total := 0
	for trial := 0; trial < 20; trial++ {
		q := append([]float32(nil), x.Row(rng.Intn(x.Rows))...)
		for j := range q {
			q[j] += float32(rng.NormFloat64() * 0.05)
		}
		full, _ := ix.SearchWith(q, 10, SearchOptions{Mode: ModeHeap})
		part, _ := ix.SearchWith(q, 10, SearchOptions{Mode: ModeTIEA, VisitFrac: 0.25})
		ids := map[int]bool{}
		for _, r := range full {
			ids[r.ID] = true
		}
		for _, r := range part {
			total++
			if ids[r.ID] {
				match++
			}
		}
	}
	frac := float64(match) / float64(total)
	if frac < 0.6 {
		t.Fatalf("visit-25%% retains only %.2f of full-scan answers", frac)
	}
}

func TestSubspaceOmission(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := skewedData(rng, 800, 16, 1.5)
	ix, err := Build(x, x, Config{NumSubspaces: 8, Budget: 32, Seed: 6, TIClusters: 20})
	if err != nil {
		t.Fatal(err)
	}
	q := x.Row(3)
	resAll, err := ix.SearchWith(q, 5, SearchOptions{Mode: ModeHeap})
	if err != nil {
		t.Fatal(err)
	}
	resTrunc, err := ix.SearchWith(q, 5, SearchOptions{Subspaces: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(resTrunc) != 5 {
		t.Fatalf("got %d", len(resTrunc))
	}
	// Truncated distances can only be <= full distances.
	if resTrunc[0].Dist > resAll[len(resAll)-1].Dist+1e-5 {
		t.Fatalf("truncated distance exceeds full: %v vs %v", resTrunc[0], resAll)
	}
}

func TestNonUniformAndAblationsBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := skewedData(rng, 1000, 32, 1.5)
	configs := []Config{
		{NumSubspaces: 8, Budget: 64, NonUniform: true, Seed: 7, TIClusters: 20},
		{NumSubspaces: 8, Budget: 64, DisablePartialBalance: true, Seed: 7, TIClusters: 20},
		{NumSubspaces: 8, Budget: 64, Alloc: AllocUniform, Seed: 7, TIClusters: 20},
		{NumSubspaces: 8, Budget: 64, Alloc: AllocTransformCoding, Seed: 7, TIClusters: 20},
		{NumSubspaces: 8, Budget: 64, NonUniform: true, Alloc: AllocTransformCoding, Seed: 7, TIClusters: 20},
	}
	for i, cfg := range configs {
		ix, err := Build(x, x, cfg)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		res, err := ix.Search(x.Row(0), 5)
		if err != nil || len(res) != 5 {
			t.Fatalf("config %d: search %v %v", i, res, err)
		}
	}
}

func TestVariableDictionarySizes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := skewedData(rng, 1500, 16, 2.0)
	ix, err := Build(x, x, Config{
		NumSubspaces: 4,
		Budget:       24,
		MinBits:      2,
		MaxBits:      10,
		Seed:         8,
		TIClusters:   20,
	})
	if err != nil {
		t.Fatal(err)
	}
	bits := ix.Bits()
	// Heavily skewed spectrum must produce a non-uniform allocation.
	uniform := true
	for i := 1; i < len(bits); i++ {
		if bits[i] != bits[0] {
			uniform = false
		}
	}
	if uniform {
		t.Fatalf("expected adaptive allocation on skewed data, got %v", bits)
	}
	// Codebook sizes must match the allocation.
	cb := ix.Codebooks()
	for s, b := range bits {
		if cb.Books[s].Rows != 1<<b {
			t.Fatalf("book %d has %d rows, want %d", s, cb.Books[s].Rows, 1<<b)
		}
	}
	if ix.CodeBytes() != (24*1500+7)/8 {
		t.Fatalf("code bytes %d", ix.CodeBytes())
	}
}

func TestSearcherReuseMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := skewedData(rng, 600, 16, 1.0)
	ix, err := Build(x, x, Config{NumSubspaces: 4, Budget: 32, Seed: 9, TIClusters: 15})
	if err != nil {
		t.Fatal(err)
	}
	s := ix.NewSearcher()
	for trial := 0; trial < 10; trial++ {
		q := x.Row(rng.Intn(600))
		a, err := ix.SearchWith(q, 7, SearchOptions{VisitFrac: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Search(q, 7, SearchOptions{VisitFrac: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d result %d: %v vs %v", trial, i, a[i], b[i])
			}
		}
	}
}

func TestTIClusterCountAuto(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := skewedData(rng, 640, 8, 1.0)
	ix, err := Build(x, x, Config{NumSubspaces: 4, Budget: 16, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.TIClusterCount(); got != 10 {
		t.Fatalf("auto cluster count %d, want n/64=10", got)
	}
}

func TestSearchModeStrings(t *testing.T) {
	if ModeTIEA.String() != "ti+ea" || ModeEA.String() != "ea" || ModeHeap.String() != "heap" {
		t.Fatal("mode strings")
	}
	if SearchMode(9).String() != "unknown" {
		t.Fatal("unknown mode string")
	}
	if AllocMILP.String() != "milp" || AllocUniform.String() != "uniform" ||
		AllocTransformCoding.String() != "transform-coding" || AllocStrategy(9).String() != "unknown" {
		t.Fatal("alloc strings")
	}
}
