package metrics

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promTestRecord is a deterministic workload for the exposition tests.
func promTestRecord(m *IndexMetrics) {
	m.RecordSearch(SearchRecord{
		ClustersVisited:  2,
		CodesConsidered:  10,
		CodesSkippedTI:   4,
		CodesAbandonedEA: 2,
		Lookups:          30,
		AbandonDepths:    []uint32{0, 2, 0},
		TISkipsByRank:    firstRank(4),
	}, 2*time.Millisecond)
	m.RecordRecallSample(4, 5)
	m.RecordError()
}

func firstRank(v uint32) []uint32 {
	r := make([]uint32, ClusterRankBuckets)
	r[0] = v
	return r
}

// TestWritePrometheusGolden pins the full scrape body for a deterministic
// registry: every counter family, the attribution families, and the native
// latency histogram, in the exact order and format a Prometheus scraper
// parses.
func TestWritePrometheusGolden(t *testing.T) {
	m := NewSized(3, 2)
	// One 2ms observation against a 1ms target: the only windowed query
	// violates, spending the whole (floor-of-one) allowance — budget 0,
	// burn rate (1/1)/0.01 = 100. The recall sample (4/5 = 0.8 observed,
	// objective 0.5) leaves (0.8-0.5)/(1-0.5) = 0.6 of the recall budget.
	m.ConfigureSLO(SLO{LatencyTarget: time.Millisecond, MinRecall: 0.5}, nil)
	promTestRecord(m)
	m.SetSubspaceMSE([]float64{0.5, 0.25})
	m.SetDrift(1.5, true)
	m.SetDeadCodewords(3)
	Publish("prom_golden", m)

	var b strings.Builder
	if err := WritePrometheus(&b, "prom_golden"); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	counterVals := []uint64{1, 1, 2, 10, 4, 2, 30, 1, 4, 5}
	var want strings.Builder
	for i, fam := range promCounters {
		fmt.Fprintf(&want, "# HELP %s %s\n# TYPE %s counter\n", fam.name, fam.help, fam.name)
		fmt.Fprintf(&want, "%s{index=%q} %d\n", fam.name, "prom_golden", counterVals[i])
	}
	fmt.Fprintf(&want, "# HELP vaq_subspace_mse Per-subspace EWMA reconstruction MSE of vectors folded in by Add (seeded with the Build-time baseline).\n"+
		"# TYPE vaq_subspace_mse gauge\n"+
		"vaq_subspace_mse{index=\"prom_golden\",subspace=\"0\"} 0.5\n"+
		"vaq_subspace_mse{index=\"prom_golden\",subspace=\"1\"} 0.25\n")
	gaugeVals := []float64{1.5, 3, 1}
	for i, fam := range promGauges {
		fmt.Fprintf(&want, "# HELP %s %s\n# TYPE %s gauge\n", fam.name, fam.help, fam.name)
		fmt.Fprintf(&want, "%s{index=%q} %g\n", fam.name, "prom_golden", gaugeVals[i])
	}
	// Same float64 expressions the evaluator computes (via variables, so
	// they round at runtime like the evaluator does and the %g formatting
	// matches digit-for-digit).
	observed, minRecall, objective := 0.8, 0.5, 0.99
	// The last entry is vaq_slo_breach: budget remaining is exactly 0 (spent
	// but not broken), so the exhaustion latch stays clear.
	sloVals := []float64{0, (observed - minRecall) / (1 - minRecall), 1 / (1 - objective), 0}
	for i, fam := range promSLOGauges {
		fmt.Fprintf(&want, "# HELP %s %s\n# TYPE %s gauge\n", fam.name, fam.help, fam.name)
		fmt.Fprintf(&want, "%s{index=%q} %g\n", fam.name, "prom_golden", sloVals[i])
	}
	want.WriteString("# HELP vaq_ea_abandon_depth_total Codes early-abandoned after exactly this many table lookups.\n" +
		"# TYPE vaq_ea_abandon_depth_total counter\n" +
		"vaq_ea_abandon_depth_total{index=\"prom_golden\",lookups=\"1\"} 2\n")
	want.WriteString("# HELP vaq_ti_skips_by_rank_total Codes TI-pruned inside the rank-th nearest visited cluster (last rank clamps the tail).\n" +
		"# TYPE vaq_ti_skips_by_rank_total counter\n" +
		"vaq_ti_skips_by_rank_total{index=\"prom_golden\",rank=\"0\"} 4\n")
	want.WriteString("# HELP vaq_query_latency_seconds Per-query wall time (scan path).\n" +
		"# TYPE vaq_query_latency_seconds histogram\n")
	// One 2ms observation: cumulative buckets are 0 until its bucket, 1 after.
	obsBucket := bucketFor(2 * time.Millisecond)
	for i := 0; i < histBuckets; i++ {
		cum := 0
		if i >= obsBucket {
			cum = 1
		}
		fmt.Fprintf(&want, "vaq_query_latency_seconds_bucket{index=\"prom_golden\",le=\"%g\"} %d\n",
			BucketUpperBound(i).Seconds(), cum)
	}
	want.WriteString("vaq_query_latency_seconds_bucket{index=\"prom_golden\",le=\"+Inf\"} 1\n")
	fmt.Fprintf(&want, "vaq_query_latency_seconds_sum{index=\"prom_golden\"} %g\n", 0.002)
	want.WriteString("vaq_query_latency_seconds_count{index=\"prom_golden\"} 1\n")

	if got != want.String() {
		t.Errorf("scrape body mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want.String())
	}
}

// TestPrometheusHandler covers the HTTP surface: content type, index
// filtering, 404 on unknown names, and counter monotonicity across scrapes
// while traffic arrives.
func TestPrometheusHandler(t *testing.T) {
	m := NewSized(3, 2)
	promTestRecord(m)
	Publish("prom_handler", m)
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	scrape := func(query string) (string, *http.Response) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s/debug/vaq/metrics%s", srv.Addr, query))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp
	}

	body, resp := scrape("?index=prom_handler")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
		t.Errorf("content type %q, want %q", ct, PrometheusContentType)
	}
	if !strings.Contains(body, "vaq_runtime_goroutines") || !strings.Contains(body, "vaq_runtime_heap_bytes") {
		t.Errorf("scrape missing runtime sampler families:\n%s", body)
	}
	queriesRe := regexp.MustCompile(`vaq_queries_total\{index="prom_handler"\} (\d+)`)
	match := queriesRe.FindStringSubmatch(body)
	if match == nil {
		t.Fatalf("scrape missing vaq_queries_total:\n%s", body)
	}
	first, _ := strconv.ParseUint(match[1], 10, 64)

	// Unknown index: 404.
	if _, resp := scrape("?index=no_such_index"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown index: status %d, want 404", resp.StatusCode)
	}

	// Unfiltered scrape includes the published index.
	if body, _ := scrape(""); !strings.Contains(body, `index="prom_handler"`) {
		t.Errorf("unfiltered scrape missing published index")
	}

	// Counters are monotone across scrapes under continued traffic.
	promTestRecord(m)
	body, _ = scrape("?index=prom_handler")
	match = queriesRe.FindStringSubmatch(body)
	if match == nil {
		t.Fatalf("second scrape missing vaq_queries_total")
	}
	second, _ := strconv.ParseUint(match[1], 10, 64)
	if second <= first {
		t.Errorf("vaq_queries_total not monotone: %d then %d", first, second)
	}
}

func TestRecordSearchAttributionFold(t *testing.T) {
	m := NewSized(4, 3)
	m.RecordSearch(SearchRecord{
		CodesAbandonedEA: 3,
		AbandonDepths:    []uint32{0, 2, 0, 1},
		TISkipsByRank:    firstRank(7),
	}, time.Millisecond)
	m.RecordSearch(SearchRecord{
		CodesAbandonedEA: 1,
		AbandonDepths:    []uint32{0, 0, 1, 0},
		TISkipsByRank:    firstRank(2),
	}, time.Millisecond)
	s := m.Snapshot()
	if want := []uint64{0, 2, 1, 1}; !equalU64(s.AbandonDepths, want) {
		t.Errorf("AbandonDepths = %v, want %v", s.AbandonDepths, want)
	}
	if s.TISkipsByRank[0] != 9 {
		t.Errorf("TISkipsByRank[0] = %d, want 9", s.TISkipsByRank[0])
	}

	// Mismatched attribution shape is ignored, scalar counters still fold.
	m.RecordSearch(SearchRecord{CodesAbandonedEA: 5, AbandonDepths: []uint32{1}}, time.Millisecond)
	s = m.Snapshot()
	if s.CodesAbandonedEA != 9 {
		t.Errorf("CodesAbandonedEA = %d, want 9", s.CodesAbandonedEA)
	}
	if s.AbandonDepths[0] != 0 {
		t.Errorf("mismatched-shape attribution was folded: %v", s.AbandonDepths)
	}

	// Sub diffs attribution element-wise; Reset zeroes it.
	prev := s
	m.RecordSearch(SearchRecord{AbandonDepths: []uint32{0, 1, 0, 0}, TISkipsByRank: firstRank(1)}, time.Millisecond)
	d := m.Snapshot().Sub(prev)
	if d.AbandonDepths[1] != 1 || d.TISkipsByRank[0] != 1 || d.Queries != 1 {
		t.Errorf("Sub diff wrong: %+v", d)
	}
	m.Reset()
	s = m.Snapshot()
	if s.AbandonDepths[1] != 0 || s.TISkipsByRank[0] != 0 {
		t.Errorf("Reset left attribution: %+v", s)
	}
}

func TestRecallRecording(t *testing.T) {
	m := New()
	m.RecordRecallSample(3, 5)
	m.RecordRecallSample(4, 5)
	s := m.Snapshot()
	if s.RecallSamples != 2 || s.RecallHits != 7 || s.RecallExpected != 10 {
		t.Fatalf("recall counters: %+v", s)
	}
	if got := s.ObservedRecall(); got != 0.7 {
		t.Errorf("ObservedRecall = %v, want 0.7", got)
	}
	m.RecordRecallSample(1, 0) // expected<=0 must be a no-op
	if s := m.Snapshot(); s.RecallSamples != 2 {
		t.Errorf("expected<=0 sample was recorded")
	}
	var nilM *IndexMetrics
	nilM.RecordRecallSample(1, 1) // must not panic
	if (Snapshot{}).ObservedRecall() != 0 {
		t.Errorf("empty snapshot recall != 0")
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
