// Package linalg implements the dense float64 linear algebra this project
// needs for training: covariance matrices, symmetric eigendecomposition
// (two algorithms: cyclic Jacobi, and Householder tridiagonalization with
// implicit-shift QL), and singular value decomposition built on top of the
// symmetric solver. It is written from scratch on the standard library,
// trades peak speed for robustness, and is property-tested against the
// defining identities (A·v = λ·v, Vᵀ·V = I, A = U·Σ·Vᵀ).
package linalg

import (
	"fmt"
	"math"

	"vaq/internal/vec"
)

// Dense is a row-major n x m float64 matrix.
type Dense struct {
	Rows int
	Cols int
	Data []float64
}

// NewDense allocates a zeroed rows x cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// DenseFromRows copies the given rows into a new matrix.
func DenseFromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return &Dense{}, nil
	}
	d := len(rows[0])
	m := NewDense(len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("linalg: row %d has length %d, want %d", i, len(r), d)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols] }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j, v := range r {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Mul returns m * b.
func (m *Dense) Mul(b *Dense) (*Dense, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		ro := out.Row(i)
		for k, aik := range ri {
			if aik == 0 {
				continue
			}
			bk := b.Row(k)
			for j, bkj := range bk {
				ro[j] += aik * bkj
			}
		}
	}
	return out, nil
}

// MulVec returns m * x as a new vector.
func (m *Dense) MulVec(x []float64) ([]float64, error) {
	if m.Cols != len(x) {
		return nil, fmt.Errorf("linalg: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		var s float64
		for j, v := range r {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Col extracts column j as a new slice.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// MaxAbsDiff returns the largest absolute elementwise difference between two
// same-shaped matrices; useful in tests.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	var m float64
	for i, v := range a.Data {
		d := math.Abs(v - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}

// FromFloat32 converts a vec.Matrix into a Dense copy.
func FromFloat32(m *vec.Matrix) *Dense {
	out := NewDense(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// ToFloat32 converts a Dense into a vec.Matrix copy.
func (m *Dense) ToFloat32() *vec.Matrix {
	out := vec.NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// Covariance computes the d x d covariance matrix of the n x d float32 data
// matrix x (population normalization, matching the paper's Equation 4).
// If center is true the per-column mean is subtracted first; the paper's
// Algorithm 1 uses the uncentered second-moment matrix XᵀX on z-normalized
// data, so callers choose.
func Covariance(x *vec.Matrix, center bool) *Dense {
	n, d := x.Rows, x.Cols
	cov := NewDense(d, d)
	if n == 0 || d == 0 {
		return cov
	}
	means := make([]float64, d)
	if center {
		means = vec.ColumnMeans(x)
	}
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		for j := 0; j < d; j++ {
			row[j] = float64(r[j]) - means[j]
		}
		for a := 0; a < d; a++ {
			va := row[a]
			if va == 0 {
				continue
			}
			ca := cov.Row(a)
			for b := a; b < d; b++ {
				ca[b] += va * row[b]
			}
		}
	}
	inv := 1 / float64(n)
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.At(a, b) * inv
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov
}
