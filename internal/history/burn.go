package history

import (
	"fmt"
	"time"

	"vaq/internal/alert"
	"vaq/internal/metrics"
)

// BurnRule is one window of the canonical multi-window multi-burn-rate SLO
// alert (the Google SRE shape): the alert for this rule fires while the
// error-budget burn rate over Window AND over the short Confirm window both
// sit at or above Threshold. The long window makes the alert significant
// (a real fraction of the budget is gone), the short window makes it
// current (the burn is still happening, so recovery resets it quickly) —
// together they replace the instantaneous exhaustion latch, which was
// noisy on spikes and blind to slow burns.
type BurnRule struct {
	// Name labels the rule ("fast", "slow") in source names
	// (vaq.burn.latency.<name>) and exported gauges.
	Name string
	// Window is the long evaluation window.
	Window time.Duration
	// Confirm is the short confirmation window (default Window/12, the
	// SRE-canonical pairing: 5m confirms 1h, 30m confirms 6h).
	Confirm time.Duration
	// Threshold is the burn rate (observed violation rate over the allowed
	// rate; 1.0 spends the budget exactly on schedule) at or above which
	// the rule fires.
	Threshold float64
}

func (r BurnRule) withDefaults() BurnRule {
	if r.Confirm <= 0 {
		r.Confirm = r.Window / 12
	}
	if r.Confirm < time.Second {
		r.Confirm = time.Second
	}
	if r.Threshold <= 0 {
		r.Threshold = 1
	}
	return r
}

// DefaultBurnRules is the two-window ladder armed when Config.Burn is nil:
// a fast burn (14.4x over 5m — a 2%-of-monthly-budget-per-hour page) and a
// slow burn (6x over 1h — a significant sustained burn a spike cannot
// trip).
func DefaultBurnRules() []BurnRule {
	return []BurnRule{
		{Name: "fast", Window: 5 * time.Minute, Threshold: 14.4},
		{Name: "slow", Window: time.Hour, Threshold: 6},
	}
}

// burnObjective is one objective's (latency or recall) evaluation state:
// the violation/base series it reads and one alert source per rule.
type burnObjective struct {
	objective   string // "latency" or "recall"
	allowedRate float64
	srcs        []*alert.Source // parallel to the rule set
}

// burnTarget is the burn evaluation armed on one watched registry with a
// configured SLO. Owned by the collector goroutine.
type burnTarget struct {
	rules      []BurnRule
	objectives []*burnObjective
}

// armBurn registers the per-rule alert sources on the target's bus for
// every configured objective and flips the registry's instantaneous SLO
// edge into delegated mode. Called by the collector goroutine once the
// watched registry has a configured SLO.
func (c *Collector) armBurn(t *target, cfg *metrics.SLO) {
	bt := &burnTarget{rules: make([]BurnRule, len(c.cfg.Burn))}
	for i, r := range c.cfg.Burn {
		bt.rules[i] = r.withDefaults()
	}
	bus := t.m.Alerts()
	arm := func(objective string, allowedRate float64) {
		o := &burnObjective{objective: objective, allowedRate: allowedRate}
		for _, r := range bt.rules {
			o.srcs = append(o.srcs, bus.Source(fmt.Sprintf("vaq.burn.%s.%s", objective, r.Name)))
		}
		bt.objectives = append(bt.objectives, o)
	}
	if cfg.LatencyTarget > 0 {
		arm("latency", 1-cfg.LatencyObjective)
	}
	if cfg.MinRecall > 0 {
		arm("recall", 1-cfg.MinRecall)
	}
	t.burn = bt
	t.m.DelegateSLOEdges(true)
}

// violationDelta returns one objective's violation and base-event deltas
// over the trailing window, plus the covered span.
func (t *target) violationDelta(objective string, now time.Time, window time.Duration) (vio, base float64, covered time.Duration) {
	switch objective {
	case "latency":
		v := t.lookup("slo_latency_violations")
		b := t.lookup("queries")
		if v == nil || b == nil {
			return 0, 0, 0
		}
		vio, covered = v.DeltaOverWindow(now, window)
		base, _ = b.DeltaOverWindow(now, window)
	case "recall":
		h := t.lookup("recall_hits")
		e := t.lookup("recall_expected")
		if h == nil || e == nil {
			return 0, 0, 0
		}
		hits, cov := h.DeltaOverWindow(now, window)
		exp, _ := e.DeltaOverWindow(now, window)
		vio, base, covered = exp-hits, exp, cov
	}
	return vio, base, covered
}

// burnOver computes one objective's burn rate over a window: the observed
// violation rate divided by the allowed rate (1.0 = spending the budget
// exactly on schedule).
func (t *target) burnOver(o *burnObjective, now time.Time, window time.Duration) (burn float64, covered time.Duration) {
	vio, base, covered := t.violationDelta(o.objective, now, window)
	if base <= 0 || o.allowedRate <= 0 {
		return 0, covered
	}
	return (vio / base) / o.allowedRate, covered
}

// evaluateBurn runs the multi-window evaluation for one target: each
// (objective, rule) pair computes its long- and short-window burn, gates on
// coverage (a rule is eligible only once retained history spans at least
// half its window — a cold store must not page), drives the edge latch,
// and publishes the combined status back into the registry for Prometheus
// export. Collector-goroutine only.
func (c *Collector) evaluateBurn(t *target, now time.Time) {
	bt := t.burn
	status := make([]metrics.BurnRuleStatus, 0, len(bt.objectives)*len(bt.rules))
	for _, o := range bt.objectives {
		for i, r := range bt.rules {
			long, covered := t.burnOver(o, now, r.Window)
			short, _ := t.burnOver(o, now, r.Confirm)
			eligible := covered >= r.Window/2
			firing := eligible && long >= r.Threshold && short >= r.Threshold
			st := metrics.BurnRuleStatus{
				Objective: o.objective,
				Rule:      r.Name,
				Window:    r.Window,
				Confirm:   r.Confirm,
				Threshold: r.Threshold,
				Burn:      long,
				ShortBurn: short,
				Covered:   covered,
				Eligible:  eligible,
				Firing:    firing,
			}
			if o.srcs[i].Set(firing) && c.cfg.OnBurn != nil {
				c.cfg.OnBurn(t.name, st)
			}
			st.Firing = o.srcs[i].Firing()
			status = append(status, st)
		}
	}
	t.m.SetBurn(&metrics.BurnSnapshot{UpdatedAt: now, Rules: status})
}
