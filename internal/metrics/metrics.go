// Package metrics is the observability substrate for the VAQ index: an
// atomic, concurrency-safe registry aggregating per-query pruning
// counters (the paper's §III-E SearchStats currency) and fixed-bucket
// latency histograms across all searchers of an index, plus build-phase
// timing and an expvar/pprof serving hook. Everything is stdlib-only and
// the hot recording path is lock-free (a handful of atomic adds), so it
// can stay enabled in production.
package metrics

import (
	"math"
	"sync/atomic"
	"time"

	"vaq/internal/alert"
)

// ClusterRankBuckets is the number of visit-rank buckets the TI-skip
// attribution keeps: bucket r counts codes pruned inside the r-th nearest
// visited cluster, with ranks past the last bucket clamped into it. 64
// covers the full visit list at the paper's default (1000 clusters x 0.25
// visit fraction ranks 0..249 → the tail shares the last bucket) while
// keeping the per-query fold bounded.
const ClusterRankBuckets = 64

// SearchRecord carries one query's pruning counters into the registry. It
// mirrors core.SearchStats field-for-field (enforced by a reflection test
// in internal/core); the duplication keeps this package dependency-free so
// every layer (core, the public API, the cmd tools) can import it without
// cycles.
type SearchRecord struct {
	ClustersVisited  int
	CodesConsidered  int
	CodesSkippedTI   int
	CodesAbandonedEA int
	Lookups          int
	AbandonDepths    []uint32
	TISkipsByRank    []uint32
}

// IndexMetrics aggregates query telemetry for one index. All methods are
// safe for concurrent use and nil-safe: a nil *IndexMetrics records
// nothing, which is how metrics are disabled without branching at call
// sites beyond a single pointer check.
type IndexMetrics struct {
	queries          atomic.Uint64
	errors           atomic.Uint64
	clustersVisited  atomic.Uint64
	codesConsidered  atomic.Uint64
	codesSkippedTI   atomic.Uint64
	codesAbandonedEA atomic.Uint64
	lookups          atomic.Uint64
	latency          Histogram
	// Pruning attribution (sized at construction by NewSized; empty for
	// New, whose callers predate attribution): abandonDepths[i] totals
	// codes early-abandoned after exactly i table lookups, tiSkipsByRank[r]
	// totals codes TI-pruned inside the r-th nearest visited cluster.
	abandonDepths []atomic.Uint64
	tiSkipsByRank []atomic.Uint64
	// Online recall estimator totals (RecordRecallSample).
	recallSamples  atomic.Uint64
	recallHits     atomic.Uint64
	recallExpected atomic.Uint64
	// Quantization-drift gauges (SetSubspaceMSE / SetDrift): the
	// per-subspace EWMA of incoming-vector reconstruction MSE, the ratio of
	// its total to the Build-time baseline, the current dead-codeword
	// count, and whether the ratio sits above the configured alert
	// threshold. Gauges, not counters: each Set overwrites. Float values
	// are stored as math.Float64bits in atomic.Uint64.
	subspaceMSE   []atomic.Uint64
	driftRatio    atomic.Uint64
	deadCodewords atomic.Uint64
	driftAlert    atomic.Uint32
	// slo, when set (ConfigureSLO), evaluates declarative latency/recall
	// objectives over sliding windows of the recorded traffic. Off = one
	// pointer load per RecordSearch. sloDelegated, when true, hands
	// objective alerting to a history collector's multi-window burn-rate
	// evaluation: the windows keep updating but the instantaneous
	// exhaustion edge stays quiet.
	slo          atomic.Pointer[sloState]
	sloDelegated atomic.Bool
	// burn, when set (SetBurn), is the latest multi-window burn-rate
	// evaluation written back by the history collector, exported as the
	// vaq_burn_* Prometheus families.
	burn atomic.Pointer[BurnSnapshot]
	// sharded, when set (ConfigureSharded), holds the scatter-gather
	// straggler/skew telemetry a merged sharded registry feeds through
	// RecordScatter. Off = one pointer load per call.
	sharded atomic.Pointer[shardedState]
	// alerts is the per-index alert bus every edge-triggered detector
	// (vaq.drift, vaq.skew, vaq.slo.*) registers its latch on, created
	// lazily by Alerts so zero-value registries stay cheap.
	alerts atomic.Pointer[alert.Bus]
}

// Alerts returns the registry's alert bus, creating it on first use. The
// bus is where the index's edge-triggered detectors register their named
// latches (alert.Source) and where consumers — the flight recorder, a
// rebuild loop, tests — subscribe to breach/recovery edges. nil on a nil
// registry.
func (m *IndexMetrics) Alerts() *alert.Bus {
	if m == nil {
		return nil
	}
	if b := m.alerts.Load(); b != nil {
		return b
	}
	b := alert.NewBus()
	if m.alerts.CompareAndSwap(nil, b) {
		return b
	}
	return m.alerts.Load()
}

// New returns an empty registry without attribution histograms (their
// shape depends on the index: use NewSized when the subspace count is
// known).
func New() *IndexMetrics { return &IndexMetrics{} }

// NewSized returns an empty registry whose pruning-attribution histograms
// hold depths abandonment-depth counters (one per possible lookup count,
// i.e. subspaces+1) and ClusterRankBuckets visit-rank counters, plus
// subspaces per-subspace drift gauges.
func NewSized(depths, subspaces int) *IndexMetrics {
	if depths < 0 {
		depths = 0
	}
	if subspaces < 0 {
		subspaces = 0
	}
	return &IndexMetrics{
		abandonDepths: make([]atomic.Uint64, depths),
		tiSkipsByRank: make([]atomic.Uint64, ClusterRankBuckets),
		subspaceMSE:   make([]atomic.Uint64, subspaces),
	}
}

// SetSubspaceMSE overwrites the per-subspace drift gauges (EWMA of
// incoming-vector reconstruction MSE). Values beyond the registry's
// subspace shape are ignored, as are calls on a nil or unshaped registry.
func (m *IndexMetrics) SetSubspaceMSE(mse []float64) {
	if m == nil {
		return
	}
	for i, v := range mse {
		if i >= len(m.subspaceMSE) {
			return
		}
		m.subspaceMSE[i].Store(math.Float64bits(v))
	}
}

// SetDrift overwrites the drift-ratio gauge (EWMA total MSE over the
// Build-time baseline; 1 = no drift) and the alert gauge.
func (m *IndexMetrics) SetDrift(ratio float64, alert bool) {
	if m == nil {
		return
	}
	m.driftRatio.Store(math.Float64bits(ratio))
	var a uint32
	if alert {
		a = 1
	}
	m.driftAlert.Store(a)
}

// SetDeadCodewords overwrites the dead-codeword gauge (dictionary entries
// no code currently references, summed over subspaces).
func (m *IndexMetrics) SetDeadCodewords(n uint64) {
	if m == nil {
		return
	}
	m.deadCodewords.Store(n)
}

// RecordSearch folds one completed query into the registry. Attribution
// slices are folded entry-wise (skipping zeros: per query only a handful
// of depths and ranks are hot) and ignored when their length does not
// match the registry's shape.
func (m *IndexMetrics) RecordSearch(r SearchRecord, d time.Duration) {
	if m == nil {
		return
	}
	m.queries.Add(1)
	m.clustersVisited.Add(uint64(r.ClustersVisited))
	m.codesConsidered.Add(uint64(r.CodesConsidered))
	m.codesSkippedTI.Add(uint64(r.CodesSkippedTI))
	m.codesAbandonedEA.Add(uint64(r.CodesAbandonedEA))
	m.lookups.Add(uint64(r.Lookups))
	if len(r.AbandonDepths) == len(m.abandonDepths) {
		for i, v := range r.AbandonDepths {
			if v != 0 {
				m.abandonDepths[i].Add(uint64(v))
			}
		}
	}
	if len(r.TISkipsByRank) == len(m.tiSkipsByRank) {
		for i, v := range r.TISkipsByRank {
			if v != 0 {
				m.tiSkipsByRank[i].Add(uint64(v))
			}
		}
	}
	m.latency.Observe(d)
	if s := m.slo.Load(); s != nil {
		s.observeLatency(d, m.sloDelegated.Load())
	}
}

// RecordRecallSample folds one shadow-exact comparison into the online
// recall estimate: hits of expected true neighbors were present in the
// approximate answer.
func (m *IndexMetrics) RecordRecallSample(hits, expected int) {
	if m == nil || expected <= 0 {
		return
	}
	m.recallSamples.Add(1)
	m.recallHits.Add(uint64(hits))
	m.recallExpected.Add(uint64(expected))
	if s := m.slo.Load(); s != nil {
		s.observeRecall(hits, expected, m.sloDelegated.Load())
	}
}

// RecordError counts a query that failed validation or execution.
func (m *IndexMetrics) RecordError() {
	if m == nil {
		return
	}
	m.errors.Add(1)
}

// Reset zeroes every counter and the histogram. Not atomic with respect
// to concurrent recording; intended for benchmarks and tests.
func (m *IndexMetrics) Reset() {
	if m == nil {
		return
	}
	m.queries.Store(0)
	m.errors.Store(0)
	m.clustersVisited.Store(0)
	m.codesConsidered.Store(0)
	m.codesSkippedTI.Store(0)
	m.codesAbandonedEA.Store(0)
	m.lookups.Store(0)
	for i := range m.abandonDepths {
		m.abandonDepths[i].Store(0)
	}
	for i := range m.tiSkipsByRank {
		m.tiSkipsByRank[i].Store(0)
	}
	m.recallSamples.Store(0)
	m.recallHits.Store(0)
	m.recallExpected.Store(0)
	for i := range m.subspaceMSE {
		m.subspaceMSE[i].Store(0)
	}
	m.driftRatio.Store(0)
	m.deadCodewords.Store(0)
	m.driftAlert.Store(0)
	m.slo.Load().reset()
	m.sharded.Load().reset()
	m.burn.Store(nil)
	// Re-arm every alert latch on the bus (the SLO and sharded resets above
	// already re-armed theirs; this additionally covers detectors owned by
	// other layers, e.g. core's vaq.drift): the windows were zeroed, so a
	// persisting condition should fire — and trigger — again.
	m.alerts.Load().ResetAll()
	m.latency.Reset()
}

// Snapshot returns a point-in-time copy of all counters. A nil registry
// yields the zero snapshot.
func (m *IndexMetrics) Snapshot() Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	s.Queries = m.queries.Load()
	s.Errors = m.errors.Load()
	s.ClustersVisited = m.clustersVisited.Load()
	s.CodesConsidered = m.codesConsidered.Load()
	s.CodesSkippedTI = m.codesSkippedTI.Load()
	s.CodesAbandonedEA = m.codesAbandonedEA.Load()
	s.Lookups = m.lookups.Load()
	if len(m.abandonDepths) > 0 {
		s.AbandonDepths = make([]uint64, len(m.abandonDepths))
		for i := range m.abandonDepths {
			s.AbandonDepths[i] = m.abandonDepths[i].Load()
		}
	}
	if len(m.tiSkipsByRank) > 0 {
		s.TISkipsByRank = make([]uint64, len(m.tiSkipsByRank))
		for i := range m.tiSkipsByRank {
			s.TISkipsByRank[i] = m.tiSkipsByRank[i].Load()
		}
	}
	s.RecallSamples = m.recallSamples.Load()
	s.RecallHits = m.recallHits.Load()
	s.RecallExpected = m.recallExpected.Load()
	if len(m.subspaceMSE) > 0 {
		s.SubspaceMSE = make([]float64, len(m.subspaceMSE))
		for i := range m.subspaceMSE {
			s.SubspaceMSE[i] = math.Float64frombits(m.subspaceMSE[i].Load())
		}
	}
	s.DriftRatio = math.Float64frombits(m.driftRatio.Load())
	s.DeadCodewords = m.deadCodewords.Load()
	s.DriftAlert = m.driftAlert.Load() == 1
	s.SLO = m.SLOSnapshot()
	s.Sharded = m.ShardedSnapshot()
	s.Burn = m.Burn()
	s.Latency = m.latency.Snapshot()
	return s
}

// Snapshot is an immutable copy of an IndexMetrics, suitable for JSON
// export and for diffing (see Sub).
type Snapshot struct {
	Queries          uint64 `json:"queries"`
	Errors           uint64 `json:"errors"`
	ClustersVisited  uint64 `json:"clusters_visited"`
	CodesConsidered  uint64 `json:"codes_considered"`
	CodesSkippedTI   uint64 `json:"codes_skipped_ti"`
	CodesAbandonedEA uint64 `json:"codes_abandoned_ea"`
	Lookups          uint64 `json:"lookups"`
	// AbandonDepths[i] totals codes early-abandoned after exactly i table
	// lookups (nonzero entries sit at multiples of Config.EACheckEvery);
	// TISkipsByRank[r] totals codes TI-pruned inside the r-th nearest
	// visited cluster (rank clamped to the last bucket). Nil when the
	// registry was built without attribution shape (New vs NewSized).
	AbandonDepths []uint64 `json:"abandon_depths,omitempty"`
	TISkipsByRank []uint64 `json:"ti_skips_by_rank,omitempty"`
	// RecallSamples/Hits/Expected are the shadow-exact recall estimator
	// totals: over RecallSamples sampled queries, RecallHits of
	// RecallExpected true neighbors appeared in the approximate answers.
	RecallSamples  uint64 `json:"recall_samples,omitempty"`
	RecallHits     uint64 `json:"recall_hits,omitempty"`
	RecallExpected uint64 `json:"recall_expected,omitempty"`
	// SubspaceMSE is the per-subspace EWMA drift gauge (reconstruction MSE
	// of vectors folded in by Add, seeded with the Build-time baseline);
	// DriftRatio its total over the baseline total (1 = no drift, 0 =
	// unknown, e.g. a loaded index with no baseline); DeadCodewords the
	// current count of unused dictionary entries; DriftAlert whether
	// DriftRatio sits above the configured alert threshold. Gauges: Sub
	// keeps the newer snapshot's values as-is.
	SubspaceMSE   []float64 `json:"subspace_mse,omitempty"`
	DriftRatio    float64   `json:"drift_ratio,omitempty"`
	DeadCodewords uint64    `json:"dead_codewords,omitempty"`
	DriftAlert    bool      `json:"drift_alert,omitempty"`
	// SLO is the sliding-window objective evaluation (nil unless
	// ConfigureSLO was called). A gauge block: Sub keeps the newer value.
	SLO *SLOSnapshot `json:"slo,omitempty"`
	// Sharded is the scatter-gather straggler/skew telemetry (nil unless
	// ConfigureSharded was called — i.e. for all single-index registries).
	// Sub keeps the newer value.
	Sharded *ShardedSnapshot `json:"sharded,omitempty"`
	// Burn is the latest multi-window burn-rate evaluation (nil unless a
	// history collector is armed on this registry). Sub keeps the newer
	// value.
	Burn    *BurnSnapshot     `json:"burn,omitempty"`
	Latency HistogramSnapshot `json:"latency"`
}

// Sub returns the counter-wise difference s - prev (histogram excluded:
// bucket-wise subtraction of a live histogram is rarely meaningful, so the
// newer snapshot's histogram is kept as-is).
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := s
	out.Queries -= prev.Queries
	out.Errors -= prev.Errors
	out.ClustersVisited -= prev.ClustersVisited
	out.CodesConsidered -= prev.CodesConsidered
	out.CodesSkippedTI -= prev.CodesSkippedTI
	out.CodesAbandonedEA -= prev.CodesAbandonedEA
	out.Lookups -= prev.Lookups
	if len(s.AbandonDepths) == len(prev.AbandonDepths) {
		out.AbandonDepths = make([]uint64, len(s.AbandonDepths))
		for i := range s.AbandonDepths {
			out.AbandonDepths[i] = s.AbandonDepths[i] - prev.AbandonDepths[i]
		}
	}
	if len(s.TISkipsByRank) == len(prev.TISkipsByRank) {
		out.TISkipsByRank = make([]uint64, len(s.TISkipsByRank))
		for i := range s.TISkipsByRank {
			out.TISkipsByRank[i] = s.TISkipsByRank[i] - prev.TISkipsByRank[i]
		}
	}
	out.RecallSamples -= prev.RecallSamples
	out.RecallHits -= prev.RecallHits
	out.RecallExpected -= prev.RecallExpected
	return out
}

// ObservedRecall is the shadow-exact recall estimate: the fraction of true
// nearest neighbors the approximate answers contained, over all sampled
// queries (0 when nothing was sampled).
func (s Snapshot) ObservedRecall() float64 {
	if s.RecallExpected == 0 {
		return 0
	}
	return float64(s.RecallHits) / float64(s.RecallExpected)
}

// TIPruneRate is the fraction of considered codes eliminated by the
// triangle-inequality bound before any table lookup.
func (s Snapshot) TIPruneRate() float64 {
	if s.CodesConsidered == 0 {
		return 0
	}
	return float64(s.CodesSkippedTI) / float64(s.CodesConsidered)
}

// EAAbandonRate is the fraction of considered codes whose lookup
// accumulation was cut short by early abandoning.
func (s Snapshot) EAAbandonRate() float64 {
	if s.CodesConsidered == 0 {
		return 0
	}
	return float64(s.CodesAbandonedEA) / float64(s.CodesConsidered)
}

// BuildReport is the wall-clock cost of each build phase (Algorithm 5's
// stages). Captured once at Build time and immutable afterwards.
type BuildReport struct {
	// Total is end-to-end Build time (>= the sum of the phases below;
	// the gap is glue: matrix projection, validation, copies).
	Total time.Duration `json:"total"`
	// PCA is the eigendecomposition of the training matrix (Algorithm 1).
	PCA time.Duration `json:"pca"`
	// Allocation is the bit-budget solve (Algorithm 2: MILP, transform
	// coding, or uniform).
	Allocation time.Duration `json:"allocation"`
	// Training is per-subspace dictionary learning (k-means, Algorithm 3).
	Training time.Duration `json:"training"`
	// Encoding is dataset quantization against the trained dictionaries.
	Encoding time.Duration `json:"encoding"`
	// TIClustering is the triangle-inequality skip-structure build
	// (Algorithm 3 lines 24-48).
	TIClustering time.Duration `json:"ti_clustering"`
	// Layout is the derivation of the scan-optimized physical code
	// layout (cluster-contiguous blocked transposition; zero when the
	// legacy row-major layout was requested).
	Layout time.Duration `json:"layout"`
	// Diagnostics is the Build-time IndexReport baseline computation
	// (utilization pass plus exact distortion accounting).
	Diagnostics time.Duration `json:"diagnostics"`
}
